// Autopilot shard placement: skewed load heats one shard of a coupled
// expression, the placement controller detects it from live load
// signals (asks/s, queue depth, memo hit rate), and live-migrates the
// hot shard onto a spare follower — under continuous client traffic,
// with zero client-visible errors.
//
// The pieces are the control-plane/data-plane split of the placement
// package: every gateway serves from a shared versioned RouteTable, the
// Rebalancer is both the controller's LoadSource (parallel per-shard
// Stats fan-out) and its Mover (the live-migration pipeline), and the
// Controller holds its fire through EWMA smoothing, hysteresis and a
// cooldown before committing to a move.
//
// Run with: go run ./examples/autopilot
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/ix"
)

// Two pipelines sharing an audit action: shard 0 takes the ingest
// firehose, shard 1 the occasional reports — the skew the autopilot is
// there to notice.
const constraint = "(ingest | audit)* @ (report | audit)*"

type node struct {
	m   *manager.Manager
	srv *manager.Server
}

func startNode(e *ix.Expr, opts manager.Options) *node {
	// Every node carries its own registry: the ask meter behind it is the
	// controller's primary load signal.
	opts.Metrics = obs.NewRegistry()
	m, err := manager.New(e, opts)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return &node{m: m, srv: manager.NewServer(m, ln)}
}

func (n *node) stop() {
	n.srv.Close()
	n.m.Close()
}

func printLoads(reb *cluster.Rebalancer) {
	loads, err := reb.Loads(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range loads {
		fmt.Printf("  shard %d at %s: %.1f asks/s (queue %d, memo hit %.0f%%)\n",
			l.Shard, l.Primary, l.AskRate, l.QueueDepth, 100*l.MemoHitRate)
	}
}

func main() {
	e := ix.MustParse(constraint)
	parts := cluster.Partition(e)

	// One primary per shard, plus an idle spare follower for shard 0 —
	// the node the autopilot may move the hot shard onto. SyncReplicas
	// keeps the migration's zero-loss contract.
	nodes := make([]*node, len(parts))
	rows := make([][]string, len(parts))
	for i, part := range parts {
		nodes[i] = startNode(part, manager.Options{SyncReplicas: true})
		rows[i] = []string{nodes[i].srv.Addr()}
	}
	spare := startNode(parts[0], manager.Options{Follower: true})
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
		spare.stop()
	}()

	// The gateway serves from a shared versioned route table; a fleet of
	// gateways would follow the same table and see the move together.
	table := placement.MustRouteTable(rows)
	gw, err := cluster.NewReplicatedGateway(e, nil, cluster.GatewayOptions{RouteTable: table})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	reb := gw.Rebalancer()

	// Skewed traffic: four workers hammer ingest (shard 0), one ambles
	// through reports (shard 1). Every request must succeed — the drain
	// window during the migration is retried below the client, never
	// surfaced.
	ingest, report := ix.MustAction("ingest"), ix.MustAction("report")
	ctx, stopTraffic := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var requests, errors atomic.Int64
	worker := func(a ix.Action, pause time.Duration) {
		defer wg.Done()
		for ctx.Err() == nil {
			if err := gw.Request(context.Background(), a); err != nil {
				errors.Add(1)
				log.Printf("request %s: %v", a, err)
			}
			requests.Add(1)
			time.Sleep(pause)
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go worker(ingest, 2*time.Millisecond)
	}
	wg.Add(1)
	go worker(report, 100*time.Millisecond)

	// Let the ask meters accumulate a window, then show the skew.
	time.Sleep(3 * time.Second)
	fmt.Println("per-shard load before (skewed on purpose):")
	printLoads(reb)

	// The autopilot: poll fast, demand 3 consecutive hot polls, migrate
	// the hot shard onto its spare. Shard 1 has no spare — if it ever
	// looked hot the controller would hold, not flail.
	ctrl := placement.NewController(reb, reb, placement.ControllerOptions{
		Interval: 250 * time.Millisecond,
		HotPolls: 3,
		Cooldown: 30 * time.Second,
		Spares:   [][]string{{spare.srv.Addr()}, nil},
	})
	actx, stopCtrl := context.WithCancel(context.Background())
	defer stopCtrl()
	go ctrl.Run(actx)
	fmt.Println("\nautopilot running...")

	deadline := time.Now().Add(30 * time.Second)
	for ctrl.Status().Migrations == 0 {
		if time.Now().After(deadline) {
			log.Fatal("autopilot never migrated")
		}
		time.Sleep(100 * time.Millisecond)
	}
	for _, d := range ctrl.Plans() {
		fmt.Printf("  %s: %s\n", d.At.Format("15:04:05.000"), d)
	}

	// The hot shard now serves from the spare; the retired source is out
	// of the route table. Traffic never noticed.
	time.Sleep(2 * time.Second)
	fmt.Println("\nper-shard load after the move:")
	printLoads(reb)
	if addrs, _ := table.Addrs(0); len(addrs) == 1 && addrs[0] == spare.srv.Addr() {
		fmt.Printf("\nroute table gen %d: shard 0 repointed to the spare %s\n",
			table.Gen(), spare.srv.Addr())
	} else {
		log.Fatalf("unexpected shard 0 route: %v", addrs)
	}

	stopTraffic()
	wg.Wait()
	fmt.Printf("%d client requests during detection + live migration, %d errors\n",
		requests.Load(), errors.Load())
	if errors.Load() != 0 {
		log.Fatal("client traffic saw errors")
	}
}
