// Queued coordination: manager and client communicate through the
// persistent message queues the paper prescribes for recoverable
// requests (Sec 7, ref [1]). The example submits requests, crashes the
// client and the server mid-stream, restarts both on the same queue
// files, and shows that every request is settled exactly once.
//
// Run with: go run ./examples/queued
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/ix"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	dir, err := os.MkdirTemp("", "ix-queued")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	reqPath := filepath.Join(dir, "requests.q")
	repPath := filepath.Join(dir, "replies.q")
	journal := filepath.Join(dir, "processed.journal")
	actionLog := filepath.Join(dir, "actions.log")

	constraint := ix.MustParse("all job: (submit(job) - finish(job))*")

	openAll := func() (*ix.Manager, *ix.Queue, *ix.Queue, *ix.QueuedServer) {
		m, err := ix.NewManager(constraint, ix.ManagerOptions{LogPath: actionLog})
		if err != nil {
			log.Fatal(err)
		}
		reqQ, err := ix.OpenQueue(reqPath, ix.QueueOptions{})
		if err != nil {
			log.Fatal(err)
		}
		repQ, err := ix.OpenQueue(repPath, ix.QueueOptions{})
		if err != nil {
			log.Fatal(err)
		}
		srv, err := ix.NewQueuedServer(m, reqQ, repQ, journal)
		if err != nil {
			log.Fatal(err)
		}
		return m, reqQ, repQ, srv
	}

	// --- first incarnation -------------------------------------------
	m, reqQ, repQ, srv := openAll()
	client := ix.NewQueuedClient(reqQ, repQ, "batch1")
	fmt.Println("phase 1: submitting jobs through the durable queues")
	for _, a := range []string{"submit(j1)", "finish(j1)", "submit(j2)"} {
		if err := client.Request(ctx, ix.MustAction(a)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  settled %s\n", a)
	}
	// A duplicate submit is refused by the constraint itself.
	if err := client.Request(ctx, ix.MustAction("submit(j2)")); err != nil {
		fmt.Printf("  submit(j2) again -> denied (%v)\n", ix.ErrDenied)
	}
	fmt.Printf("  manager transitions so far: %d\n", m.Steps())

	// --- crash: everything goes down ---------------------------------
	client.Close()
	srv.Close()
	reqQ.Close()
	repQ.Close()
	m.Close()
	fmt.Println("\n--- crash: manager, server, client and queues closed ---")

	// --- second incarnation: same files, fresh processes ---------------
	m2, reqQ2, repQ2, srv2 := openAll()
	defer func() {
		srv2.Close()
		reqQ2.Close()
		repQ2.Close()
		m2.Close()
	}()
	fmt.Printf("\nphase 2: recovered manager has %d transitions (replayed from the action log)\n", m2.Steps())

	client2 := ix.NewQueuedClient(reqQ2, repQ2, "batch2")
	defer client2.Close()
	if err := client2.Request(ctx, ix.MustAction("finish(j2)")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  settled finish(j2) — the recovered state remembered j2 was open")
	if ok, _ := client2.Try(ctx, ix.MustAction("finish(j2)")); ok {
		log.Fatal("finish(j2) should no longer be permissible")
	}
	fmt.Println("  finish(j2) again -> not permissible (exactly once)")
	if m2.Final() {
		fmt.Println("\nall jobs settled; the confirmed word is complete")
	}
}
