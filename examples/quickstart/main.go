// Quickstart: parse an interaction expression, render its interaction
// graph, and drive the action problem against it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/ix"
)

func main() {
	// A synchronization condition in the text syntax: for every order
	// number p (independently), pick must precede pack, pack must precede
	// ship, and at most two orders may sit between pick and ship at once
	// (a warehouse with two packing stations). The "def" line declares a
	// reusable operator, like the mutex template of Fig 5 of the paper.
	//
	// Note the "?" inside the parallel quantifier: per Table 8 of the
	// paper, "all p: y" has an empty complete-word set unless every
	// branch may contribute the empty word — orders that never occur
	// must be allowed to stay untouched.
	src := `
		def station(body) = mult(2, body*);

		(all p: (pick(p) - pack(p) - ship(p))?)
		@ station(any p: pick(p) - ship(p))
	`
	e := ix.MustParse(src)
	fmt.Println("expression:", e)
	fmt.Println()
	fmt.Println(ix.GraphOf(e).ASCII())

	sys := ix.NewSystem(e)
	step := func(s string) {
		a := ix.MustAction(s)
		if err := sys.Step(a); err != nil {
			fmt.Printf("  %-12s -> rejected\n", s)
			return
		}
		fmt.Printf("  %-12s -> accepted (state size %d)\n", s, sys.StateSize())
	}

	fmt.Println("driving the action problem:")
	step("pick(o1)")
	step("pick(o2)")
	step("pick(o3)") // rejected: both stations busy
	step("pack(o2)") // o2 reaches the packing step
	step("ship(o2)") // frees a station
	step("pick(o3)") // now accepted
	step("ship(o1)") // rejected: o1 is not packed yet
	step("pack(o1)")
	step("ship(o1)")
	step("pack(o3)")
	step("ship(o3)")

	fmt.Println()
	fmt.Println("all orders shipped; word complete:", sys.Final())
	cl, _ := ix.Classify(e)
	fmt.Println("complexity class:", cl)
}
