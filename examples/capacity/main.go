// Capacity coordination over TCP: an interaction manager serves the
// capacity restriction of Fig 6 on a loopback socket; concurrent
// department clients compete for examination slots using the wire
// coordination protocol of Fig 10, and a monitoring client watches a
// subscribed action flip between permissible and non-permissible.
//
// Run with: go run ./examples/capacity
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/manager"
	"repro/internal/paper"
)

func main() {
	ctx := context.Background()

	// Capacity 2 per department to make contention visible.
	m, err := manager.New(paper.Fig6CapacityRestrictionN(2), manager.Options{
		ReservationTimeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := manager.NewServer(m, ln)
	defer srv.Close()
	fmt.Println("interaction manager listening on", srv.Addr())

	// A monitoring client subscribes to the next admission of patient
	// "walkin" — its worklist entry appears and disappears with capacity.
	monitor, err := manager.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer monitor.Close()
	watch := paper.CallAct("walkin", paper.ExamSono)
	sub, err := monitor.Subscribe(ctx, watch)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for inf := range sub.C {
			state := "PERMISSIBLE    "
			if !inf.Permissible {
				state = "NOT permissible"
			}
			fmt.Printf("  [monitor] %s is now %s\n", inf.Action, state)
		}
	}()

	// Five concurrent admission clients race for the two sono slots.
	var wg sync.WaitGroup
	results := make([]string, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := manager.Dial(srv.Addr())
			if err != nil {
				results[i] = err.Error()
				return
			}
			defer c.Close()
			p := paper.Patient(i)
			tk, err := c.Ask(ctx, paper.CallAct(p, paper.ExamSono))
			if err != nil {
				results[i] = fmt.Sprintf("%s: denied (%v)", p, err)
				return
			}
			// "Execute" the admission, then confirm.
			time.Sleep(10 * time.Millisecond)
			if err := c.Confirm(ctx, tk); err != nil {
				results[i] = fmt.Sprintf("%s: confirm failed (%v)", p, err)
				return
			}
			results[i] = fmt.Sprintf("%s: admitted", p)
		}(i)
	}
	wg.Wait()
	fmt.Println("\nadmission race (capacity 2):")
	for _, r := range results {
		fmt.Println(" ", r)
	}

	// Release one slot and watch the monitor's action flip back.
	admitted := ""
	for i := 0; i < 5; i++ {
		p := paper.Patient(i)
		ok, err := monitor.Try(ctx, paper.PerformAct(p, paper.ExamSono))
		if err == nil && ok {
			admitted = p
			break
		}
	}
	if admitted == "" {
		log.Fatal("no admitted patient found")
	}
	fmt.Printf("\ncompleting the examination of %s frees a slot...\n", admitted)
	if err := monitor.Request(ctx, paper.PerformAct(admitted, paper.ExamSono)); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the inform arrive

	st := m.Stats()
	fmt.Printf("\nmanager traffic: %d asks, %d grants, %d denies, %d informs\n",
		st.Asks, st.Grants, st.Denies, st.Informs)
}
