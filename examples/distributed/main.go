// Distributed coordination with recovery: the coupled constraint of
// Fig 7 is split across multiple interaction managers (one per coupling
// operand, as sketched at the end of Sec 7), each persisting its
// confirmed actions to its own action log. The example then simulates a
// crash by discarding the routers and rebuilding them from the logs,
// showing that the recovered ensemble still enforces exactly the same
// state.
//
// Run with: go run ./examples/distributed
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/manager"
	"repro/internal/paper"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "ix-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "actions.log")

	constraint := paper.Fig7Coupled()
	router, err := manager.NewRouter(constraint, manager.Options{LogPath: logPath})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router with %d managers (one per coupling operand)\n\n", len(router.Managers()))

	request := func(r *manager.Router, a interface{ String() string }, act func() error) {
		err := act()
		switch {
		case err == nil:
			fmt.Printf("  %-22s granted by all involved managers\n", a.String())
		case errors.Is(err, manager.ErrDenied):
			fmt.Printf("  %-22s DENIED (reservations rolled back)\n", a.String())
		default:
			log.Fatalf("%s: %v", a, err)
		}
	}

	// Fill the sono department and occupy patient 1.
	fmt.Println("phase 1 — before the crash:")
	for i := 1; i <= 3; i++ {
		a := paper.CallAct(paper.Patient(i), paper.ExamSono)
		request(router, a, func() error { return router.Request(ctx, a) })
	}
	a4 := paper.CallAct(paper.Patient(4), paper.ExamSono)
	request(router, a4, func() error { return router.Request(ctx, a4) }) // capacity
	b1 := paper.CallAct(paper.Patient(1), paper.ExamEndo)
	request(router, b1, func() error { return router.Request(ctx, b1) }) // patient busy

	// Crash: close everything, then recover from the action logs.
	if err := router.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- simulated crash; recovering from action logs ---")

	recovered, err := manager.NewRouter(constraint, manager.Options{LogPath: logPath})
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()

	fmt.Println("\nphase 2 — after recovery (state must be identical):")
	request(recovered, a4, func() error { return recovered.Request(ctx, a4) }) // still over capacity
	request(recovered, b1, func() error { return recovered.Request(ctx, b1) }) // patient still busy
	rel := paper.PerformAct(paper.Patient(1), paper.ExamSono)
	request(recovered, rel, func() error { return recovered.Request(ctx, rel) })
	request(recovered, a4, func() error { return recovered.Request(ctx, a4) }) // slot free now
	request(recovered, b1, func() error { return recovered.Request(ctx, b1) }) // patient free now

	total := 0
	for _, m := range recovered.Managers() {
		total += m.Steps()
	}
	fmt.Printf("\ncommitted transitions across managers (incl. replayed): %d\n", total)
}
