// Sharded coordination cluster with checkpoint recovery: a three-operand
// coupling is split across three interaction-manager shard servers (real
// TCP, one process here for convenience), fronted by a gateway that
// routes actions by the precomputed name index and runs the two-phase
// reserve/confirm grant across the involved shards. Each shard persists
// an action log and checkpoints its engine state every K confirms,
// truncating the log — so when a shard server is killed and restarted
// mid-workload, it recovers its exact state from snapshot + log tail and
// the gateway transparently reconnects.
//
// Run with: go run ./examples/cluster
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/manager"
	"repro/ix"
)

// The pipeline constraint: submissions are approved, approvals executed,
// executions archived. Neighboring stages share an action, so approve
// spans shards 0+1 and exec spans shards 1+2 — every grant of a shared
// action is a distributed two-phase commit.
const pipeline = "(submit - approve)* @ (approve - exec)* @ (exec - archive)*"

type shardProc struct {
	e    *ix.Expr
	opts manager.Options
	addr string
	m    *manager.Manager
	srv  *manager.Server
}

func (sh *shardProc) start() error {
	m, err := manager.New(sh.e, sh.opts)
	if err != nil {
		return err
	}
	addr := sh.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		m.Close()
		return err
	}
	sh.m = m
	sh.srv = manager.NewServer(m, ln)
	sh.addr = sh.srv.Addr()
	return nil
}

func (sh *shardProc) stop() {
	sh.srv.Close()
	sh.m.Close()
}

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "ix-cluster")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	e := ix.MustParse(pipeline)
	parts := ix.PartitionCoupling(e)
	fmt.Printf("coupling split into %d shards:\n", len(parts))

	shards := make([]*shardProc, len(parts))
	addrs := make([]string, len(parts))
	for i, part := range parts {
		shards[i] = &shardProc{e: part, opts: manager.Options{
			LogPath:       filepath.Join(dir, fmt.Sprintf("shard%d.log", i)),
			SnapshotPath:  filepath.Join(dir, fmt.Sprintf("shard%d.snap", i)),
			SnapshotEvery: 2,
			// Group commit: concurrent requests coalesce into one engine
			// advance + one log flush/fsync per batch on each shard.
			BatchMaxSize:  32,
			BatchMaxDelay: 200 * time.Microsecond,
			SyncWrites:    true,
		}}
		if err := shards[i].start(); err != nil {
			log.Fatal(err)
		}
		addrs[i] = shards[i].addr
		fmt.Printf("  shard %d on %s: %s\n", i, addrs[i], part)
	}
	defer func() {
		for _, sh := range shards {
			sh.stop()
		}
	}()

	gw, err := cluster.NewGateway(e, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	if err := gw.Ping(ctx); err != nil {
		log.Fatal(err)
	}

	request := func(name string, wantDenied bool) {
		a := ix.MustAction(name)
		err := gw.Request(ctx, a)
		switch {
		case err == nil && !wantDenied:
			fmt.Printf("  %-8s granted (shards %v)\n", name, gw.Route(a))
		case errors.Is(err, ix.ErrDenied) && wantDenied:
			fmt.Printf("  %-8s DENIED as it must be (reservations rolled back)\n", name)
		case err == nil:
			log.Fatalf("%s: granted but should have been denied", name)
		default:
			log.Fatalf("%s: %v", name, err)
		}
	}

	fmt.Println("\nphase 1 — distributed grants across live shards:")
	request("approve", true) // nothing submitted yet: shard 0 refuses, nothing commits
	request("submit", false)
	request("approve", false) // two-phase across shards 0 and 1
	request("exec", false)    // two-phase across shards 1 and 2
	request("submit", false)
	request("approve", false)

	fmt.Println("\n--- killing shard 1 and restarting it on the same address ---")
	shards[1].stop()
	if err := shards[1].start(); err != nil {
		log.Fatal(err)
	}
	if st := shards[1].m.Stats(); true {
		fmt.Printf("  shard 1 recovered: %d transitions replayed from snapshot+log tail (snapshots written before crash: ≥1, stats reset on restart: %d)\n",
			shards[1].m.Steps(), st.Snapshots)
	}

	fmt.Println("\nphase 2 — the recovered shard enforces its exact pre-crash state:")
	request("approve", true) // shard 1 is mid-round: exec is due, approve is not
	request("exec", true)    // shard 1 grants, shard 2 refuses (archive due): rollback
	request("archive", false)
	request("exec", false) // spans the recovered shard 1 and shard 2
	request("archive", false)
	request("submit", false)
	request("approve", false)

	fmt.Println("\nphase 3 — pipelined batch: one framed multi-op message per shard per round:")
	// A pipeline round as one burst: the gateway ships single-shard
	// actions as one frame per destination shard (submit→0), concurrently,
	// then runs the cross-shard ones (exec spans 1+2, approve spans 0+1)
	// as two-phase grants — far fewer round trips than action-by-action,
	// and each shard group commits its frame with one fsync.
	burst := []ix.Action{
		ix.MustAction("submit"),
		ix.MustAction("exec"),
		ix.MustAction("approve"),
	}
	for i, err := range gw.RequestMany(ctx, burst) {
		if err != nil {
			log.Fatalf("burst slot %d (%s): %v", i, burst[i], err)
		}
		fmt.Printf("  %-8s granted in burst (shards %v)\n", burst[i], gw.Route(burst[i]))
	}

	total := 0
	for i, sh := range shards {
		st := sh.m.Stats()
		total += sh.m.Steps()
		fmt.Printf("\nshard %d: %d transitions, %d snapshots since restart", i, sh.m.Steps(), st.Snapshots)
	}
	fmt.Printf("\ncommitted transitions across the cluster: %d\n", total)
	fmt.Println("cluster demo OK")
}
