// Medical ensemble: the complete scenario of the paper — the two
// examination workflows of Fig 1 executed by the workflow engine, with
// the coupled interaction graph of Fig 7 (patient integrity constraint
// of Fig 3 + department capacity restriction of Fig 6) enforced by an
// interaction manager through the adapted-workflow-engine integration of
// Fig 11.
//
// Watch the worklists: as soon as the patient is called to the
// ultrasonography, the endoscopy call disappears from the assistant's
// worklist and reappears after the examination completes — exactly the
// behaviour the paper's introduction motivates.
//
// Run with: go run ./examples/medical
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/manager"
	"repro/internal/paper"
	"repro/internal/wfms"
)

func main() {
	ctx := context.Background()

	// The coupled interaction graph of Fig 7.
	constraint := paper.Fig7Coupled()
	m, err := manager.New(constraint, manager.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// Adapted workflow engine (right side of Fig 11).
	engine := wfms.NewEngine(wfms.NewManagerCoordinator(m))
	mustRegister(engine, wfms.UltrasonographyDef())
	mustRegister(engine, wfms.EndoscopyDef())

	// One patient, both examinations — the interdependent ensemble.
	patient := "mrs_miller"
	sono, err := engine.Start("ultrasonography", map[string]string{"p": patient, "x": paper.ExamSono})
	if err != nil {
		log.Fatal(err)
	}
	endo, err := engine.Start("endoscopy", map[string]string{"p": patient, "x": paper.ExamEndo})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("started ultrasonography (#%d) and endoscopy (#%d) for %s\n\n", sono, endo, patient)

	assistant := wfms.NewStandardHandler(engine, wfms.RoleAssistant)

	exec := func(inst int, name string) {
		for _, it := range engine.Items() {
			if it.Instance == inst && it.Activity == name {
				if err := engine.Execute(ctx, it.ID); err != nil {
					log.Fatalf("execute %s: %v", name, err)
				}
				fmt.Printf("executed %-22s (instance %d)\n", it.Key(), inst)
				return
			}
		}
		log.Fatalf("activity %s of instance %d not offered", name, inst)
	}
	showAssistantWorklist := func(moment string) {
		fmt.Printf("\nassistant worklist %s:\n", moment)
		items := assistant.List()
		if len(items) == 0 {
			fmt.Println("  (empty)")
		}
		for _, it := range items {
			fmt.Printf("  [%3d] %s\n", it.ID, it.Key())
		}
		fmt.Println()
	}

	// Both workflows proceed through their preprocessing steps.
	for _, inst := range []int{sono, endo} {
		exec(inst, "order")
		exec(inst, "schedule")
	}
	exec(sono, paper.ActPrepare)
	exec(endo, paper.ActInform)
	exec(endo, paper.ActPrepare)

	showAssistantWorklist("before any examination (both calls offered)")

	exec(sono, paper.ActCall)
	showAssistantWorklist("while the ultrasonography runs (endoscopy call disappeared)")

	exec(sono, paper.ActPerform)
	showAssistantWorklist("after the ultrasonography (endoscopy call reappeared)")

	exec(endo, paper.ActCall)
	exec(endo, paper.ActPerform)

	// Postprocessing.
	exec(sono, "write_report")
	exec(sono, "read_report")
	exec(endo, "write_short_report")
	exec(endo, "write_detailed_report")
	exec(endo, "read_short_report")

	fmt.Println()
	for _, inst := range []int{sono, endo} {
		fmt.Printf("instance %d ended: %v\n", inst, engine.Ended(inst))
	}
	st := m.Stats()
	fmt.Printf("\nmanager traffic: %d asks, %d grants, %d denies, %d confirms\n",
		st.Asks, st.Grants, st.Denies, st.Confirms)
}

func mustRegister(e *wfms.Engine, d *wfms.Definition) {
	if err := e.Register(d); err != nil {
		log.Fatal(err)
	}
}
