// Elastic rebalancing runbook: grow the cluster, move a hot shard onto
// the new server under live traffic, retire the old server — with zero
// client-visible errors and zero lost acked actions.
//
// The migration is the Rebalancer's five-step dance over the ordinary
// replication machinery: the fresh server attaches as a follower and
// receives a snapshot resync over the existing replication stream;
// repeated resyncs chase the live commit stream; the source drains (new
// asks answer a retryable sentinel the shard clients wait out, in-flight
// tickets settle); a final sync captures the quiescent source; the
// target is promoted into a fresh epoch whose first frame fences the
// source — the same epoch rule that governs failover. The gateway's
// route table repoints mid-flight, so the concurrent workload never sees
// an error.
//
// Run with: go run ./examples/rebalance
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/manager"
	"repro/ix"
)

// The pipeline constraint: submissions are approved, approvals executed.
// approve spans both shards, so its grants are distributed two-phase
// commits — the protocol that must keep working while shard 0 migrates.
const pipeline = "(submit - approve)* @ (approve - exec)*"

type node struct {
	m   *manager.Manager
	srv *manager.Server
}

func startNode(e *ix.Expr, ln net.Listener, opts manager.Options) *node {
	m, err := manager.New(e, opts)
	if err != nil {
		log.Fatal(err)
	}
	return &node{m: m, srv: manager.NewServer(m, ln)}
}

func (n *node) stop() {
	n.srv.Close()
	n.m.Close()
}

func listen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}

func main() {
	e := ix.MustParse(pipeline)
	parts := cluster.Partition(e)

	// One server per shard to start with (the cluster we are about to
	// grow). SyncReplicas is set so the managers' lazily-grown follower
	// streams ack synchronously — the zero-loss contract.
	nodes := make([]*node, len(parts))
	addrs := make([][]string, len(parts))
	for i, part := range parts {
		ln := listen()
		addrs[i] = []string{ln.Addr().String()}
		nodes[i] = startNode(part, ln, manager.Options{SyncReplicas: true})
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.stop()
			}
		}
	}()

	gw, err := cluster.NewReplicatedGateway(e, addrs, cluster.GatewayOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	ctx := context.Background()
	if err := gw.Ping(ctx); err != nil {
		log.Fatal(err)
	}

	// The live workload: full pipeline rounds, running concurrently with
	// the migration. Every operation gets a generous per-op deadline; a
	// drain window is waited out by the shard client, never surfaced.
	const rounds = 60
	word := []string{"submit", "approve", "exec"}
	var clientErrors atomic.Int64
	halfway := make(chan struct{}) // closed when half the rounds are done
	workloadDone := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(workloadDone)
		for r := 0; r < rounds; r++ {
			if r == rounds/2 {
				close(halfway)
			}
			for _, name := range word {
				opCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
				err := gw.Request(opCtx, ix.MustAction(name))
				cancel()
				if err != nil {
					clientErrors.Add(1)
					log.Printf("round %d: %s: %v", r, name, err)
				}
			}
		}
	}()

	// Mid-workload, the elastic runbook:
	<-halfway
	// 1. Add a server: a fresh empty follower for shard 0's operand.
	ln := listen()
	target := ln.Addr().String()
	fresh := startNode(parts[0], ln, manager.Options{Follower: true, SyncReplicas: true})
	fmt.Printf("--- new server %s up (empty follower) ---\n", target)

	// 2. Migrate the hot shard onto it, retiring the source from the
	//    route table. MigrateShard returns only when the target serves as
	//    primary of a fresh epoch and the old server is fenced.
	oldAddr := addrs[0][0]
	mctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	err = gw.Rebalancer().MigrateShard(mctx, 0, target, cluster.MigrateOptions{Retire: true})
	cancel()
	if err != nil {
		log.Fatalf("migration failed: %v", err)
	}
	fmt.Printf("--- shard 0 migrated %s -> %s: %+v ---\n", oldAddr, target, fresh.m.Status())

	// 3. Retire the old server for real. Traffic — including the healing
	//    of any subscription that lived on it — now flows to the target.
	nodes[0].stop()
	nodes[0] = fresh
	fmt.Println("--- old server stopped ---")

	<-workloadDone
	elapsed := time.Since(start)

	st := fresh.m.Status()
	fmt.Printf("workload: %d rounds (%d actions) in %v, %d client-visible errors\n",
		rounds, rounds*len(word), elapsed.Round(time.Millisecond), clientErrors.Load())
	fmt.Printf("shard 0 now served by %s: role=%s epoch=%d steps=%d\n", target, st.Role, st.Epoch, st.Steps)
	if clientErrors.Load() > 0 {
		log.Fatalf("migration was not transparent: %d errors", clientErrors.Load())
	}
	// Zero lost acked actions: the target holds every shard-0 commit of
	// the whole workload — submit and approve of every round.
	if want := uint64(rounds * 2); st.Steps != want {
		log.Fatalf("shard 0 has %d steps, want %d (lost commits?)", st.Steps, want)
	}
	if st.Role != manager.RolePrimary || st.Epoch == 0 {
		log.Fatalf("target not serving as primary: %+v", st)
	}
	if got := gw.Shards()[0].Addrs(); len(got) != 1 || got[0] != target {
		log.Fatalf("route table not repointed: %v", got)
	}
	fmt.Println("zero lost acked actions, zero client-visible errors — migration transparent")
}
