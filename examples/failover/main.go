// Replicated shards with automatic failover: each operand of a coupled
// expression is served by a replica set — a primary interaction manager
// streaming every committed batch to a follower (sync acks, so an
// acknowledged action is on both replicas before the client hears
// "yes") — and the gateway fails over transparently: when the primary of
// shard 0 is killed mid-workload, the shard client elects the follower,
// promotes it to primary of a fresh epoch, and the workload completes
// without a single client-visible error.
//
// Run with: go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/cluster"
	"repro/internal/manager"
	"repro/ix"
)

// The pipeline constraint: submissions are approved, approvals executed.
// approve spans both shards, so its grants are distributed two-phase
// commits — the protocol that must survive the failover too.
const pipeline = "(submit - approve)* @ (approve - exec)*"

// node is one replica: a manager plus its wire server.
type node struct {
	m   *manager.Manager
	srv *manager.Server
}

func (n *node) stop() {
	n.srv.Close()
	n.m.Close()
}

func main() {
	e := ix.MustParse(pipeline)
	parts := cluster.Partition(e)

	// Bind every listener first so each replica knows its peers' addresses
	// before any manager starts.
	const replicasPerShard = 2
	lns := make([][]net.Listener, len(parts))
	addrs := make([][]string, len(parts))
	for i := range parts {
		for j := 0; j < replicasPerShard; j++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			lns[i] = append(lns[i], ln)
			addrs[i] = append(addrs[i], ln.Addr().String())
		}
	}

	// Start the replicas: index 0 is the initial primary, streaming every
	// commit to its follower and waiting for the ack (SyncReplicas).
	nodes := make([][]*node, len(parts))
	for i, part := range parts {
		for j := 0; j < replicasPerShard; j++ {
			var peers []string
			for k, a := range addrs[i] {
				if k != j {
					peers = append(peers, a)
				}
			}
			m, err := manager.New(part, manager.Options{
				Replicas:     peers,
				SyncReplicas: true,
				Follower:     j != 0,
			})
			if err != nil {
				log.Fatal(err)
			}
			nodes[i] = append(nodes[i], &node{m: m, srv: manager.NewServer(m, lns[i][j])})
		}
	}
	defer func() {
		for _, shard := range nodes {
			for _, n := range shard {
				if n != nil {
					n.stop()
				}
			}
		}
	}()

	gw, err := cluster.NewReplicatedGateway(e, addrs, cluster.GatewayOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	ctx := context.Background()
	if err := gw.Ping(ctx); err != nil {
		log.Fatal(err)
	}

	const rounds = 40
	word := []string{"submit", "approve", "exec"}
	start := time.Now()
	errors := 0
	for r := 0; r < rounds; r++ {
		if r == rounds/2 {
			// The operational runbook, mid-workload:
			//
			// 1. Crash-stop the primary of shard 0.
			fmt.Println("--- killing shard 0 primary ---")
			addr := addrs[0][0]
			nodes[0][0].stop()
			nodes[0][0] = nil
			// 2. Drive the failover with an idempotent probe (retried
			//    across reconnects by design): the first probe burns the
			//    dead connection, the retry elects the follower — the most
			//    advanced reachable replica — and promotes it to primary of
			//    a fresh epoch. The loop is a readiness signal, not a sleep.
			probeCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
			for {
				if ok, err := gw.Try(probeCtx, ix.MustAction("submit")); err == nil && ok {
					break
				} else if probeCtx.Err() != nil {
					log.Fatalf("failover did not complete: ok=%v err=%v", ok, err)
				}
			}
			cancel()
			fmt.Printf("--- follower promoted: %+v ---\n", nodes[0][1].m.Status())
			// 3. Restart the crashed node as a follower on the same
			//    address. The new primary's stream heals it with a full
			//    state snapshot on the next commit, and sync acks flow
			//    again — without this step every commit on shard 0 would
			//    be reported uncertain (strict sync: ALL followers ack).
			ln, err := net.Listen("tcp", addr)
			if err != nil {
				log.Fatal(err)
			}
			m, err := manager.New(parts[0], manager.Options{
				Replicas:     []string{addrs[0][1]},
				SyncReplicas: true,
				Follower:     true,
			})
			if err != nil {
				log.Fatal(err)
			}
			nodes[0][0] = &node{m: m, srv: manager.NewServer(m, ln)}
			fmt.Println("--- old primary restarted as follower ---")
		}
		for _, name := range word {
			if err := gw.Request(ctx, ix.MustAction(name)); err != nil {
				errors++
				log.Printf("round %d: %s: %v", r, name, err)
			}
		}
	}
	elapsed := time.Since(start)

	survivor := nodes[0][1].m
	st := survivor.Status()
	fmt.Printf("workload: %d rounds (%d actions) in %v, %d client-visible errors\n",
		rounds, rounds*len(word), elapsed.Round(time.Millisecond), errors)
	fmt.Printf("shard 0 survivor: role=%s epoch=%d steps=%d (replicated up to the kill, primary after)\n",
		st.Role, st.Epoch, st.Steps)
	if errors > 0 {
		log.Fatalf("failover was not transparent: %d errors", errors)
	}
	// The survivor must hold every shard-0 commit: submit and approve of
	// every round.
	if want := uint64(rounds * 2); st.Steps != want {
		log.Fatalf("shard 0 survivor has %d steps, want %d (lost commits?)", st.Steps, want)
	}
	// And the restarted follower converged: the snapshot resync plus the
	// streamed frames brought it to the same position (sync acks — the
	// last acknowledged commit proves it).
	if fst := nodes[0][0].m.Status(); fst.Steps != st.Steps {
		log.Fatalf("restarted follower at %d steps, primary at %d — resync failed", fst.Steps, st.Steps)
	}
	fmt.Println("zero lost commits, zero client-visible errors, replicas converged — failover transparent")
}
