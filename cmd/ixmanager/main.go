// Command ixmanager runs an interaction manager as a TCP server (the
// central scheduler of Sec 7 / Fig 10).
//
// Usage:
//
//	ixmanager -e 'all p: (call(p) - perform(p))*' -addr :7431 -log actions.log
//
// Clients speak the wire protocol of internal/manager: connections
// negotiate the compact binary framing (v2) at connect time and fall
// back to JSON lines for pre-v2 clients; -protocol json pins the server
// to JSON lines entirely. The ix package's Dial returns a typed client.
// With -log the manager persists confirmed actions and recovers its
// state from the log on restart; -storage-dir selects the segmented
// storage engine instead (sealed log segments, background compaction,
// delta checkpoints). With -multi a top-level coupling
// ("x @ y @ z") is split into one manager per operand behind a shared
// router — actions are granted iff every involved manager grants them.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/ix"
)

func main() {
	var (
		exprSrc  = flag.String("e", "", "interaction expression (text syntax)")
		exprFile = flag.String("f", "", "file containing the expression")
		addr     = flag.String("addr", "127.0.0.1:7431", "listen address")
		logPath  = flag.String("log", "", "action log for persistence/recovery")
		snapPath = flag.String("snapshot", "", "snapshot file for checkpoint recovery (restart replays only the log tail)")
		snapK    = flag.Int("snapshot-every", 1000, "write a checkpoint every K confirms (with -snapshot or -storage-dir)")
		storeDir = flag.String("storage-dir", "", "segmented storage directory (replaces -log/-snapshot): fixed-size sealed log segments, background compaction, delta checkpoints")
		segBytes = flag.Int64("segment-bytes", 0, "seal log segments at this size (with -storage-dir; 0 = 1 MiB)")
		deltaK   = flag.Int("delta-every", 8, "with -storage-dir, write a full checkpoint every K checkpoints and deltas in between (1 = always full)")
		timeout  = flag.Duration("reservation-timeout", 10*time.Second,
			"auto-abort asks not confirmed within this duration")
		batchMax   = flag.Int("batch", 0, "group commit: coalesce up to N concurrent requests per commit (0/1 = off)")
		batchDelay = flag.Duration("batch-delay", 0, "upper bound on the straggler wait of an open batch (default 200µs with -batch)")
		syncWrites = flag.Bool("sync", false, "fsync the action log at every durability point (once per batch with -batch)")
		memoCap    = flag.Int("memo", 0, "hash-consing + transition memoization: bound the memo LRU at N entries (0 = off)")
		replicaCSV = flag.String("replicas", "", "comma-separated follower server addresses to stream commits to")
		syncRepl   = flag.Bool("sync-replicas", false, "acknowledge commits only after every follower acked (no-loss failover)")
		follower   = flag.Bool("follower", false, "start as a read-only follower (writes fail until promoted)")
		metricAddr = flag.String("metrics", "", "serve Prometheus-text metrics over HTTP on this address (path /metrics)")
		protocol   = flag.String("protocol", "binary", "wire protocol: binary (negotiate v2 framing, JSON fallback) or json (JSON lines only)")
	)
	flag.Parse()
	if *protocol != "binary" && *protocol != ix.ProtoJSON {
		fmt.Fprintf(os.Stderr, "ixmanager: unknown -protocol %q (want binary or json)\n", *protocol)
		os.Exit(2)
	}

	src := *exprSrc
	if *exprFile != "" {
		buf, err := os.ReadFile(*exprFile)
		if err != nil {
			fatal(err)
		}
		src = string(buf)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "ixmanager: provide an expression with -e or -f")
		flag.Usage()
		os.Exit(2)
	}
	e, err := ix.Parse(src)
	if err != nil {
		fatal(err)
	}

	var replicas []string
	if *replicaCSV != "" {
		for _, a := range strings.Split(*replicaCSV, ",") {
			replicas = append(replicas, strings.TrimSpace(a))
		}
	}
	reg := ix.NewMetricsRegistry()
	m, err := ix.NewManager(e, ix.ManagerOptions{
		LogPath:             *logPath,
		SnapshotPath:        *snapPath,
		SnapshotEvery:       *snapK,
		StorageDir:          *storeDir,
		SegmentBytes:        *segBytes,
		FullCheckpointEvery: *deltaK,
		ReservationTimeout:  *timeout,
		BatchMaxSize:        *batchMax,
		BatchMaxDelay:       *batchDelay,
		SyncWrites:          *syncWrites,
		MemoCapacity:        *memoCap,
		Replicas:            replicas,
		SyncReplicas:        *syncRepl,
		Follower:            *follower,
		Metrics:             reg,
	})
	if err != nil {
		fatal(err)
	}
	defer m.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := ix.NewCoordServerWith(ix.CoordinatorFor(m), ln,
		ix.ServerOptions{JSONOnly: *protocol == ix.ProtoJSON})
	defer srv.Close()

	fmt.Printf("ixmanager: serving %q on %s", e, srv.Addr())
	switch {
	case *storeDir != "":
		fmt.Printf(" (storage %s, %d actions recovered)", *storeDir, m.Steps())
	case *logPath != "":
		fmt.Printf(" (log %s, %d actions recovered)", *logPath, m.Steps())
	}
	if st := m.Status(); *follower || len(replicas) > 0 {
		fmt.Printf(" [%s, epoch %d, %d replicas]", st.Role, st.Epoch, len(replicas))
	}
	fmt.Println()

	if *metricAddr != "" {
		mln, err := net.Listen("tcp", *metricAddr)
		if err != nil {
			fatal(err)
		}
		defer mln.Close()
		go serveMetrics(mln, reg)
		fmt.Printf("ixmanager: metrics on http://%s/metrics\n", mln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := m.Stats()
	fmt.Printf("ixmanager: shutting down: %d asks, %d grants, %d denies, %d confirms, %d informs\n",
		st.Asks, st.Grants, st.Denies, st.Confirms, st.Informs)
	if cs, ok := m.CacheStats(); ok {
		fmt.Printf("ixmanager: state cache: %d nodes, %d/%d memo hits/misses, %d evictions\n",
			cs.Nodes, cs.MemoHits, cs.MemoMisses, cs.MemoEvictions)
	}
}

// serveMetrics exposes the registry in Prometheus text format.
func serveMetrics(ln net.Listener, reg *ix.MetricsRegistry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	http.Serve(ln, mux)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixmanager:", err)
	os.Exit(2)
}
