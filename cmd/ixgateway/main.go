// Command ixgateway fronts a cluster of ixmanager shard servers: it
// partitions a top-level coupling y1 @ y2 @ ... @ yn by operand, routes
// every action to the shards whose alphabet mentions it, and executes the
// two-phase reserve/confirm grant across them — then serves the result on
// its own address, speaking the same wire protocol as a single manager
// (binary v2 negotiated at connect time, JSON lines as the fallback;
// -protocol json pins the gateway to JSON lines). Clients cannot tell a
// gateway from a manager.
//
// Usage (shard i of the coupling must be served at the i-th address):
//
//	ixmanager -e '(submit - approve)*' -addr :7431 &
//	ixmanager -e '(approve - exec)*'   -addr :7432 &
//	ixgateway -e '(submit - approve)* @ (approve - exec)*' \
//	          -shards 127.0.0.1:7431,127.0.0.1:7432 -addr :7430
//
// A shard may be a replica set: separate the ordered replica addresses
// with '/' (primary first). The gateway then fails over automatically,
// promoting the most advanced surviving replica when the primary dies:
//
//	ixmanager -e '(submit - approve)*' -addr :7431 -replicas 127.0.0.1:7441 -sync-replicas &
//	ixmanager -e '(submit - approve)*' -addr :7441 -follower &
//	ixgateway -e '(submit - approve)* @ (approve - exec)*' \
//	          -shards 127.0.0.1:7431/127.0.0.1:7441,127.0.0.1:7432 -addr :7430
//
// With -admin the gateway additionally serves a JSON-lines admin
// endpoint for elastic rebalancing and observability: live shard
// migration, topology inspection, the versioned route table, per-shard
// load stats, grant traces and autopilot control, no restart required.
// One request per line:
//
//	{"op":"topology"}
//	{"op":"migrate","shard":0,"target":"127.0.0.1:7451","retire":true}
//	{"op":"stats"}
//	{"op":"trace"}
//	{"op":"routes"}
//	{"op":"autopilot","cmd":"status"}   (also: pause, resume, plan)
//
// With -autopilot the gateway runs the placement controller: it polls
// every shard's load signals (asks/s, queue depth, memo hit rate),
// scores them with an EWMA, and live-migrates a persistently hot shard
// onto one of its spares from -autopilot-spares (same syntax as
// -shards: one comma-separated slot per shard, '/' between spares,
// empty slot = no spares for that shard). -autopilot-dry-run plans the
// moves without executing them; pause/resume/plan are served on the
// admin endpoint.
//
// With -metrics the gateway serves its registry (wire traffic, per-shard
// ask rates, two-phase grant outcomes and latencies, migration phase
// durations) in Prometheus text format at http://ADDR/metrics.
//
// The target must already run as a follower (ixmanager -follower) for
// the shard's operand. The migration drains the source, promotes the
// target into a fresh epoch and repoints the gateway's route table —
// in-flight client traffic keeps working throughout.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/ix"
)

func main() {
	var (
		exprSrc   = flag.String("e", "", "coupled interaction expression (text syntax)")
		exprFile  = flag.String("f", "", "file containing the expression")
		shardCSV  = flag.String("shards", "", "comma-separated shard addresses, one per coupling operand; separate replica addresses within a shard with '/'")
		addr      = flag.String("addr", "127.0.0.1:7430", "listen address")
		readRepls  = flag.Bool("read-followers", false, "serve Try probes from follower replicas")
		adminAddr  = flag.String("admin", "", "serve the JSON-lines admin endpoint (migrate/topology/stats/trace) on this address")
		metricAddr = flag.String("metrics", "", "serve Prometheus-text metrics over HTTP on this address (path /metrics)")
		traceCap   = flag.Int("trace", 0, "grant trace ring capacity (0 = default 256, negative = tracing off)")
		protocol   = flag.String("protocol", "binary", "wire protocol: binary (negotiate v2 framing, JSON fallback) or json (JSON lines only)")
		autopilot    = flag.Bool("autopilot", false, "run the autopilot placement controller (hot shards migrate onto -autopilot-spares)")
		autoSpares   = flag.String("autopilot-spares", "", "per-shard spare follower addresses, same syntax as -shards (empty slot = no spares for that shard)")
		autoInterval = flag.Duration("autopilot-interval", 0, "autopilot poll interval (0 = default 2s)")
		autoDryRun   = flag.Bool("autopilot-dry-run", false, "autopilot plans migrations without executing them (implies -autopilot)")
	)
	flag.Parse()
	if *protocol != "binary" && *protocol != ix.ProtoJSON {
		fmt.Fprintf(os.Stderr, "ixgateway: unknown -protocol %q (want binary or json)\n", *protocol)
		os.Exit(2)
	}

	src := *exprSrc
	if *exprFile != "" {
		buf, err := os.ReadFile(*exprFile)
		if err != nil {
			fatal(err)
		}
		src = string(buf)
	}
	if src == "" || *shardCSV == "" {
		fmt.Fprintln(os.Stderr, "ixgateway: provide an expression (-e or -f) and -shards")
		flag.Usage()
		os.Exit(2)
	}
	e, err := ix.Parse(src)
	if err != nil {
		fatal(err)
	}
	shardSpecs := strings.Split(*shardCSV, ",")
	replicas := make([][]string, len(shardSpecs))
	for i, spec := range shardSpecs {
		for _, a := range strings.Split(spec, "/") {
			replicas[i] = append(replicas[i], strings.TrimSpace(a))
		}
	}

	// The gateway serves from a shared, versioned route table (the admin
	// "routes" op dumps it); the autopilot repoints it through live
	// migrations.
	table, err := ix.NewRouteTable(replicas)
	if err != nil {
		fatal(err)
	}
	reg := ix.NewMetricsRegistry()
	gw, err := ix.NewReplicatedGateway(e, nil, ix.GatewayOptions{
		RouteTable:        table,
		ReadFromFollowers: *readRepls,
		Metrics:           reg,
		TraceCapacity:     *traceCap,
	})
	if err != nil {
		fatal(err)
	}
	defer gw.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = gw.Ping(ctx)
	cancel()
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := ix.NewCoordServerWith(gw, ln,
		ix.ServerOptions{JSONOnly: *protocol == ix.ProtoJSON})
	defer srv.Close()

	parts := ix.PartitionCoupling(e)
	fmt.Printf("ixgateway: serving %d-shard coupling on %s\n", len(parts), srv.Addr())
	for i, p := range parts {
		fmt.Printf("  shard %d at %s: %s\n", i, strings.Join(replicas[i], "/"), p)
	}

	var ctrl *ix.Autopilot
	if *autopilot || *autoDryRun {
		spares, err := parseSpares(*autoSpares, len(replicas))
		if err != nil {
			fatal(err)
		}
		reb := gw.Rebalancer()
		ctrl = ix.NewAutopilot(reb, reb, ix.AutopilotOptions{
			Interval: *autoInterval,
			Spares:   spares,
			DryRun:   *autoDryRun,
			Metrics:  reg,
		})
		actx, acancel := context.WithCancel(context.Background())
		defer acancel()
		go ctrl.Run(actx)
		mode := "live"
		if *autoDryRun {
			mode = "dry-run"
		}
		fmt.Printf("ixgateway: autopilot on (%s)\n", mode)
	}

	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal(err)
		}
		defer aln.Close()
		go serveAdmin(aln, gw, ctrl)
		fmt.Printf("ixgateway: admin endpoint on %s\n", aln.Addr())
	}

	if *metricAddr != "" {
		mln, err := net.Listen("tcp", *metricAddr)
		if err != nil {
			fatal(err)
		}
		defer mln.Close()
		go serveMetrics(mln, reg)
		fmt.Printf("ixgateway: metrics on http://%s/metrics\n", mln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("ixgateway: shutting down")
}

// parseSpares parses the -autopilot-spares flag: one comma-separated
// slot per shard, '/' between a slot's spare addresses, an empty slot
// meaning no spares for that shard. An empty flag means no spares at
// all (the autopilot observes and holds).
func parseSpares(spec string, shards int) ([][]string, error) {
	spares := make([][]string, shards)
	if spec == "" {
		return spares, nil
	}
	slots := strings.Split(spec, ",")
	if len(slots) != shards {
		return nil, fmt.Errorf("-autopilot-spares has %d slots, want one per shard (%d)", len(slots), shards)
	}
	for i, slot := range slots {
		for _, a := range strings.Split(slot, "/") {
			if a = strings.TrimSpace(a); a != "" {
				spares[i] = append(spares[i], a)
			}
		}
	}
	return spares, nil
}

// adminMsg is one admin request or reply (JSON lines, one per op).
type adminMsg struct {
	Op     string `json:"op"`
	Shard  int    `json:"shard,omitempty"`
	Target string `json:"target,omitempty"`
	Retire bool   `json:"retire,omitempty"`
	Cmd    string `json:"cmd,omitempty"`

	OK        bool                  `json:"ok,omitempty"`
	Err       string                `json:"error,omitempty"`
	Topology  []ix.ShardTopology    `json:"topology,omitempty"`
	Stats     []ix.ShardStats       `json:"stats,omitempty"`
	Traces    []ix.GrantTrace       `json:"traces,omitempty"`
	Routes    *ix.RouteSnapshot     `json:"routes,omitempty"`
	Autopilot *ix.AutopilotStatus   `json:"autopilot,omitempty"`
	Plan      *ix.AutopilotDecision `json:"plan,omitempty"`
}

// adminAutopilot serves the autopilot admin op: status (the default),
// pause, resume and plan.
func adminAutopilot(ctrl *ix.Autopilot, cmd string) (*ix.AutopilotStatus, *ix.AutopilotDecision, string) {
	if ctrl == nil {
		return nil, nil, "autopilot not enabled (run ixgateway with -autopilot or -autopilot-dry-run)"
	}
	switch cmd {
	case "", "status":
	case "pause":
		ctrl.Pause()
	case "resume":
		ctrl.Resume()
	case "plan":
		d := ctrl.Plan()
		return nil, &d, ""
	default:
		return nil, nil, fmt.Sprintf("unknown autopilot cmd %q (want status, pause, resume or plan)", cmd)
	}
	st := ctrl.Status()
	return &st, nil, ""
}

// serveAdmin answers migrate/topology/stats/trace/routes/autopilot
// requests, one JSON line each. Requests are read line-wise so a
// malformed line earns an error reply instead of poisoning the
// connection.
func serveAdmin(ln net.Listener, gw *ix.Gateway, ctrl *ix.Autopilot) {
	reb := gw.Rebalancer()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			enc := json.NewEncoder(conn)
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" {
					continue
				}
				var req adminMsg
				if err := json.Unmarshal([]byte(line), &req); err != nil {
					if err := enc.Encode(adminMsg{Err: fmt.Sprintf("malformed request: %v", err)}); err != nil {
						return
					}
					continue
				}
				resp := adminMsg{Op: req.Op}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				switch req.Op {
				case "topology":
					tops, err := reb.Topology(ctx)
					resp.Topology = tops
					if err != nil {
						resp.Err = err.Error()
					} else {
						resp.OK = true
					}
				case "migrate":
					if err := reb.MigrateShard(ctx, req.Shard, req.Target,
						ix.MigrateOptions{Retire: req.Retire}); err != nil {
						resp.Err = err.Error()
					} else {
						resp.OK = true
					}
				case "stats":
					stats, err := reb.Stats(ctx)
					resp.Stats = stats
					if err != nil {
						resp.Err = err.Error()
					} else {
						resp.OK = true
					}
				case "trace":
					resp.Traces = gw.Traces()
					resp.OK = true
				case "routes":
					if table := gw.RouteTable(); table != nil {
						snap := table.Snapshot()
						resp.Routes = &snap
						resp.OK = true
					} else {
						resp.Err = "no route table attached"
					}
				case "autopilot":
					resp.Autopilot, resp.Plan, resp.Err = adminAutopilot(ctrl, req.Cmd)
					resp.OK = resp.Err == ""
				default:
					resp.Err = fmt.Sprintf("unknown admin op %q", req.Op)
				}
				cancel()
				if err := enc.Encode(resp); err != nil {
					return
				}
			}
		}(conn)
	}
}

// serveMetrics exposes the gateway's registry in Prometheus text format.
func serveMetrics(ln net.Listener, reg *ix.MetricsRegistry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	http.Serve(ln, mux)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixgateway:", err)
	os.Exit(2)
}
