// Command ixgateway fronts a cluster of ixmanager shard servers: it
// partitions a top-level coupling y1 @ y2 @ ... @ yn by operand, routes
// every action to the shards whose alphabet mentions it, and executes the
// two-phase reserve/confirm grant across them — then serves the result on
// its own address, speaking the same JSON-lines wire protocol as a single
// manager. Clients cannot tell a gateway from a manager.
//
// Usage (shard i of the coupling must be served at the i-th address):
//
//	ixmanager -e '(submit - approve)*' -addr :7431 &
//	ixmanager -e '(approve - exec)*'   -addr :7432 &
//	ixgateway -e '(submit - approve)* @ (approve - exec)*' \
//	          -shards 127.0.0.1:7431,127.0.0.1:7432 -addr :7430
//
// A shard may be a replica set: separate the ordered replica addresses
// with '/' (primary first). The gateway then fails over automatically,
// promoting the most advanced surviving replica when the primary dies:
//
//	ixmanager -e '(submit - approve)*' -addr :7431 -replicas 127.0.0.1:7441 -sync-replicas &
//	ixmanager -e '(submit - approve)*' -addr :7441 -follower &
//	ixgateway -e '(submit - approve)* @ (approve - exec)*' \
//	          -shards 127.0.0.1:7431/127.0.0.1:7441,127.0.0.1:7432 -addr :7430
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/ix"
)

func main() {
	var (
		exprSrc   = flag.String("e", "", "coupled interaction expression (text syntax)")
		exprFile  = flag.String("f", "", "file containing the expression")
		shardCSV  = flag.String("shards", "", "comma-separated shard addresses, one per coupling operand; separate replica addresses within a shard with '/'")
		addr      = flag.String("addr", "127.0.0.1:7430", "listen address")
		readRepls = flag.Bool("read-followers", false, "serve Try probes from follower replicas")
	)
	flag.Parse()

	src := *exprSrc
	if *exprFile != "" {
		buf, err := os.ReadFile(*exprFile)
		if err != nil {
			fatal(err)
		}
		src = string(buf)
	}
	if src == "" || *shardCSV == "" {
		fmt.Fprintln(os.Stderr, "ixgateway: provide an expression (-e or -f) and -shards")
		flag.Usage()
		os.Exit(2)
	}
	e, err := ix.Parse(src)
	if err != nil {
		fatal(err)
	}
	shardSpecs := strings.Split(*shardCSV, ",")
	replicas := make([][]string, len(shardSpecs))
	for i, spec := range shardSpecs {
		for _, a := range strings.Split(spec, "/") {
			replicas[i] = append(replicas[i], strings.TrimSpace(a))
		}
	}

	gw, err := ix.NewReplicatedGateway(e, replicas, ix.GatewayOptions{ReadFromFollowers: *readRepls})
	if err != nil {
		fatal(err)
	}
	defer gw.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = gw.Ping(ctx)
	cancel()
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := ix.NewCoordServer(gw, ln)
	defer srv.Close()

	parts := ix.PartitionCoupling(e)
	fmt.Printf("ixgateway: serving %d-shard coupling on %s\n", len(parts), srv.Addr())
	for i, p := range parts {
		fmt.Printf("  shard %d at %s: %s\n", i, strings.Join(replicas[i], "/"), p)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("ixgateway: shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixgateway:", err)
	os.Exit(2)
}
