// Package cmd_test smoke-tests the command-line tools end to end by
// building and running them as real subprocesses.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one command into a temp dir and returns its path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = ".." // the module root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestIxcheckWordProblem(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := buildTool(t, "ixcheck")

	run := func(args ...string) (string, int) {
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("run: %v", err)
		}
		return string(out), code
	}

	out, code := run("-e", "a - b", "a", "b")
	if code != 0 || !strings.Contains(out, "complete") {
		t.Errorf("complete word: %q (%d)", out, code)
	}
	out, code = run("-e", "a - b", "a")
	if code != 0 || !strings.Contains(out, "partial") {
		t.Errorf("partial word: %q (%d)", out, code)
	}
	out, code = run("-e", "a - b", "b")
	if code != 1 || !strings.Contains(out, "illegal") {
		t.Errorf("illegal word: %q (%d)", out, code)
	}
	out, code = run("-c", "-e", "all p: (call(p))*")
	if code != 0 || !strings.Contains(out, "benign") || !strings.Contains(out, "derivation") {
		t.Errorf("classification: %q (%d)", out, code)
	}
	// Parse errors exit 2 with a position.
	out, code = run("-e", "a - ")
	if code != 2 || !strings.Contains(out, "1:") {
		t.Errorf("parse error: %q (%d)", out, code)
	}
}

func TestIxcheckActionProblem(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := buildTool(t, "ixcheck")
	cmd := exec.Command(bin, "-e", "(a | b - c)*", "-i")
	cmd.Stdin = strings.NewReader("a\nc\nb\nc\n# comment\n\nzzz(\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	got := strings.Split(strings.TrimSpace(string(out)), "\n")
	want := []string{"Accept.", "Reject.", "Accept.", "Accept."}
	if len(got) < len(want) {
		t.Fatalf("output: %q", out)
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("line %d: got %q want %q", i, got[i], w)
		}
	}
	if !strings.Contains(string(out), "Error:") {
		t.Errorf("malformed action should report an error: %q", out)
	}
}

func TestIxgraphRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := buildTool(t, "ixgraph")
	out, err := exec.Command(bin, "-e", "(a | b)*").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "digraph interaction") {
		t.Errorf("DOT output: %q", out)
	}
	out, err = exec.Command(bin, "-ascii", "-e", "(a | b)*").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "iter *") || !strings.Contains(string(out), "[a]") {
		t.Errorf("ASCII output: %q", out)
	}
	// Expression from a file.
	f := filepath.Join(t.TempDir(), "e.ix")
	if err := os.WriteFile(f, []byte("a - b"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-ascii", "-f", f).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "seq") {
		t.Errorf("file input: %v %q", err, out)
	}
}
