// Package cmd_test smoke-tests the command-line tools end to end by
// building and running them as real subprocesses.
package cmd_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/ix"
)

// buildTool compiles one command into a temp dir and returns its path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = ".." // the module root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestIxcheckWordProblem(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := buildTool(t, "ixcheck")

	run := func(args ...string) (string, int) {
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("run: %v", err)
		}
		return string(out), code
	}

	out, code := run("-e", "a - b", "a", "b")
	if code != 0 || !strings.Contains(out, "complete") {
		t.Errorf("complete word: %q (%d)", out, code)
	}
	out, code = run("-e", "a - b", "a")
	if code != 0 || !strings.Contains(out, "partial") {
		t.Errorf("partial word: %q (%d)", out, code)
	}
	out, code = run("-e", "a - b", "b")
	if code != 1 || !strings.Contains(out, "illegal") {
		t.Errorf("illegal word: %q (%d)", out, code)
	}
	out, code = run("-c", "-e", "all p: (call(p))*")
	if code != 0 || !strings.Contains(out, "benign") || !strings.Contains(out, "derivation") {
		t.Errorf("classification: %q (%d)", out, code)
	}
	// Parse errors exit 2 with a position.
	out, code = run("-e", "a - ")
	if code != 2 || !strings.Contains(out, "1:") {
		t.Errorf("parse error: %q (%d)", out, code)
	}
}

func TestIxcheckActionProblem(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := buildTool(t, "ixcheck")
	cmd := exec.Command(bin, "-e", "(a | b - c)*", "-i")
	cmd.Stdin = strings.NewReader("a\nc\nb\nc\n# comment\n\nzzz(\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	got := strings.Split(strings.TrimSpace(string(out)), "\n")
	want := []string{"Accept.", "Reject.", "Accept.", "Accept."}
	if len(got) < len(want) {
		t.Fatalf("output: %q", out)
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("line %d: got %q want %q", i, got[i], w)
		}
	}
	if !strings.Contains(string(out), "Error:") {
		t.Errorf("malformed action should report an error: %q", out)
	}
}

// freePort reserves a loopback port and releases it for a subprocess.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startProc launches a tool subprocess and kills it at cleanup.
func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", filepath.Base(bin), err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// waitPort blocks until the address accepts connections.
func waitPort(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never came up", addr)
}

// adminReply mirrors ixgateway's admin response shape.
type adminReply struct {
	Op        string                `json:"op"`
	OK        bool                  `json:"ok"`
	Err       string                `json:"error"`
	Topology  []ix.ShardTopology    `json:"topology"`
	Stats     []ix.ShardStats       `json:"stats"`
	Traces    []ix.GrantTrace       `json:"traces"`
	Routes    *ix.RouteSnapshot     `json:"routes"`
	Autopilot *ix.AutopilotStatus   `json:"autopilot"`
	Plan      *ix.AutopilotDecision `json:"plan"`
}

// TestIxgatewayAdminEndpoint spins up a two-shard cluster as real
// subprocesses and exercises the gateway's admin endpoint end to end:
// topology, per-shard stats, grant traces, live migration, and the
// error paths (malformed JSON line, unknown op) — plus the Prometheus
// metrics endpoint.
func TestIxgatewayAdminEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	mgrBin := buildTool(t, "ixmanager")
	gwBin := buildTool(t, "ixgateway")

	shard0 := freePort(t)
	shard1 := freePort(t)
	gwAddr := freePort(t)
	admAddr := freePort(t)
	metAddr := freePort(t)

	startProc(t, mgrBin, "-e", "(a - b)*", "-addr", shard0)
	startProc(t, mgrBin, "-e", "(a - c)*", "-addr", shard1)
	waitPort(t, shard0)
	waitPort(t, shard1)
	startProc(t, gwBin,
		"-e", "(a - b)* @ (a - c)*",
		"-shards", shard0+","+shard1,
		"-addr", gwAddr, "-admin", admAddr, "-metrics", metAddr, "-trace", "16",
		"-autopilot-dry-run")
	waitPort(t, gwAddr)
	waitPort(t, admAddr)
	waitPort(t, metAddr)

	// Traffic through the gateway so stats and traces have content.
	cl, err := ix.Dial(gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	a, err := ix.ParseAction("a")
	if err != nil {
		t.Fatal(err)
	}
	tk, err := cl.Ask(ctx, a)
	if err != nil {
		t.Fatalf("ask through gateway: %v", err)
	}
	if err := cl.Confirm(ctx, tk); err != nil {
		t.Fatalf("confirm through gateway: %v", err)
	}

	// Admin conversation, one JSON line per op.
	conn, err := net.Dial("tcp", admAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	roundTrip := func(line string) adminReply {
		t.Helper()
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatalf("admin write: %v", err)
		}
		if !sc.Scan() {
			t.Fatalf("admin read after %q: %v", line, sc.Err())
		}
		var rep adminReply
		if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
			t.Fatalf("admin reply %q: %v", sc.Text(), err)
		}
		return rep
	}

	if rep := roundTrip(`{"op":"topology"}`); !rep.OK || len(rep.Topology) != 2 {
		t.Errorf("topology: %+v", rep)
	}
	rep := roundTrip(`{"op":"stats"}`)
	if !rep.OK || len(rep.Stats) != 2 {
		t.Fatalf("stats: %+v", rep)
	}
	for _, ss := range rep.Stats {
		if ss.Err != "" || ss.Stats.Role != "primary" {
			t.Errorf("shard %d stats: %+v", ss.Shard, ss)
		}
		if ss.Stats.AskRate < 0 || ss.Stats.QueueDepth != 0 {
			t.Errorf("shard %d load: %+v", ss.Shard, ss.Stats)
		}
	}
	// Both shards saw the shared 'a'.
	if rep.Stats[0].Stats.Steps != 1 || rep.Stats[1].Stats.Steps != 1 {
		t.Errorf("shard steps: %d / %d want 1 / 1",
			rep.Stats[0].Stats.Steps, rep.Stats[1].Stats.Steps)
	}
	rep = roundTrip(`{"op":"trace"}`)
	if !rep.OK || len(rep.Traces) == 0 {
		t.Fatalf("trace: %+v", rep)
	}
	var confirmed bool
	for _, tr := range rep.Traces {
		if tr.Outcome == "confirmed" && len(tr.Events) >= 4 {
			confirmed = true
		}
	}
	if !confirmed {
		t.Errorf("no confirmed grant trace: %+v", rep.Traces)
	}

	// The versioned route table: one row per shard, every row at its
	// starting generation.
	rep = roundTrip(`{"op":"routes"}`)
	if !rep.OK || rep.Routes == nil || len(rep.Routes.Shards) != 2 {
		t.Fatalf("routes: %+v", rep)
	}
	genBefore := rep.Routes.Gen
	if r, ok := rep.Routes.Route(0); !ok || len(r.Addrs) != 1 || r.Addrs[0] != shard0 {
		t.Errorf("route 0: %+v", rep.Routes)
	}

	// Autopilot control: status (dry-run mode), pause/resume round-trip,
	// plan, and the unknown-cmd error path.
	rep = roundTrip(`{"op":"autopilot"}`)
	if !rep.OK || rep.Autopilot == nil || !rep.Autopilot.DryRun || rep.Autopilot.Paused {
		t.Fatalf("autopilot status: %+v", rep)
	}
	if rep := roundTrip(`{"op":"autopilot","cmd":"pause"}`); !rep.OK || rep.Autopilot == nil || !rep.Autopilot.Paused {
		t.Errorf("autopilot pause: %+v", rep)
	}
	if rep := roundTrip(`{"op":"autopilot","cmd":"resume"}`); !rep.OK || rep.Autopilot == nil || rep.Autopilot.Paused {
		t.Errorf("autopilot resume: %+v", rep)
	}
	if rep := roundTrip(`{"op":"autopilot","cmd":"plan"}`); !rep.OK || rep.Plan == nil {
		t.Errorf("autopilot plan: %+v", rep)
	}
	if rep := roundTrip(`{"op":"autopilot","cmd":"bogus"}`); rep.OK || !strings.Contains(rep.Err, "unknown autopilot cmd") {
		t.Errorf("autopilot bad cmd: %+v", rep)
	}

	// Error paths: a malformed line gets an error reply and the
	// connection keeps working; an unknown op is rejected by name.
	if rep := roundTrip(`{not json`); rep.Err == "" || !strings.Contains(rep.Err, "malformed") {
		t.Errorf("malformed line: %+v", rep)
	}
	if rep := roundTrip(`{"op":"bogus"}`); rep.Err == "" || !strings.Contains(rep.Err, "unknown admin op") {
		t.Errorf("unknown op: %+v", rep)
	}
	if rep := roundTrip(`{"op":"topology"}`); !rep.OK {
		t.Errorf("connection unusable after malformed line: %+v", rep)
	}

	// Live migration via admin: move shard 0 onto a fresh follower.
	target := freePort(t)
	startProc(t, mgrBin, "-e", "(a - b)*", "-addr", target, "-follower")
	waitPort(t, target)
	if rep := roundTrip(fmt.Sprintf(`{"op":"migrate","shard":0,"target":%q,"retire":true}`, target)); !rep.OK {
		t.Fatalf("migrate: %+v", rep)
	}
	if rep := roundTrip(`{"op":"topology"}`); !rep.OK ||
		len(rep.Topology[0].Addrs) != 1 || rep.Topology[0].Addrs[0] != target {
		t.Errorf("topology after migrate: %+v", rep)
	}
	// The migration repointed the shared route table and bumped its
	// generation.
	rep = roundTrip(`{"op":"routes"}`)
	if !rep.OK || rep.Routes == nil || rep.Routes.Gen <= genBefore {
		t.Fatalf("routes after migrate: %+v", rep)
	}
	if r, ok := rep.Routes.Route(0); !ok || len(r.Addrs) != 1 || r.Addrs[0] != target {
		t.Errorf("route 0 after migrate: %+v", rep.Routes)
	}
	// The migrated shard still serves: finish the round through it.
	b, _ := ix.ParseAction("b")
	if err := cl.Request(ctx, b); err != nil {
		t.Errorf("request b after migration: %v", err)
	}

	// Prometheus endpoint.
	httpc := http.Client{Timeout: 5 * time.Second}
	resp, err := httpc.Get("http://" + metAddr + "/metrics")
	if err != nil {
		t.Fatalf("metrics endpoint: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"ix_gateway_reserves_total",
		"ix_gateway_grant_ns",
		`ix_shard_asks_total{shard="0"}`,
		"ix_migrate_phase_ns",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
}

func TestIxgraphRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := buildTool(t, "ixgraph")
	out, err := exec.Command(bin, "-e", "(a | b)*").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "digraph interaction") {
		t.Errorf("DOT output: %q", out)
	}
	out, err = exec.Command(bin, "-ascii", "-e", "(a | b)*").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "iter *") || !strings.Contains(string(out), "[a]") {
		t.Errorf("ASCII output: %q", out)
	}
	// Expression from a file.
	f := filepath.Join(t.TempDir(), "e.ix")
	if err := os.WriteFile(f, []byte("a - b"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-ascii", "-f", f).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "seq") {
		t.Errorf("file input: %v %q", err, out)
	}
}
