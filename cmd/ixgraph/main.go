// Command ixgraph renders an interaction expression as an interaction
// graph (Sec 2 of the paper): Graphviz DOT on stdout by default, or an
// ASCII tree with -ascii.
//
// Usage:
//
//	ixgraph -e '(a | b - c)*'                 | dot -Tpng > graph.png
//	ixgraph -f constraint.ix -ascii
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/ix"
)

func main() {
	var (
		exprSrc  = flag.String("e", "", "interaction expression (text syntax)")
		exprFile = flag.String("f", "", "file containing the expression")
		ascii    = flag.Bool("ascii", false, "render as ASCII tree instead of DOT")
	)
	flag.Parse()

	src := *exprSrc
	if *exprFile != "" {
		buf, err := os.ReadFile(*exprFile)
		if err != nil {
			fatal(err)
		}
		src = string(buf)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "ixgraph: provide an expression with -e or -f")
		flag.Usage()
		os.Exit(2)
	}
	e, err := ix.Parse(src)
	if err != nil {
		fatal(err)
	}
	g := ix.GraphOf(e)
	if *ascii {
		fmt.Print(g.ASCII())
	} else {
		fmt.Print(g.DOT())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixgraph:", err)
	os.Exit(2)
}
