package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/complexity"
	"repro/internal/expr"
	"repro/internal/manager"
	"repro/internal/paper"
	"repro/internal/semantics"
	"repro/internal/state"
	"repro/internal/wfms"
	"repro/ix"
)

var bg = context.Background()

// --- E1: operational ≡ formal -------------------------------------------

func runE1() {
	exprs := []*expr.Expr{
		ix.MustParse("a - b | a - c"),
		ix.MustParse("(a - b)# & (a | b)*"),
		ix.MustParse("any p: x(p) - y(p)"),
		ix.MustParse("all p: (x(p) - y(p))?"),
		ix.MustParse("syncq p: (x(p) - y(p))*"),
		ix.MustParse("(a - b)* @ (a - c?)*"),
	}
	sigma := []expr.Action{
		expr.ConcreteAct("a"), expr.ConcreteAct("b"), expr.ConcreteAct("c"),
		expr.ConcreteAct("x", "v1"), expr.ConcreteAct("x", "v2"),
		expr.ConcreteAct("y", "v1"),
	}
	rnd := rand.New(rand.NewSource(2001))
	fmt.Println("| expression | words checked | disagreements |")
	fmt.Println("|---|---|---|")
	for _, e := range exprs {
		en := state.MustEngine(e)
		o := semantics.New(e, 5)
		words, bad := 0, 0
		for walk := 0; walk < 200; walk++ {
			var w semantics.Word
			for len(w) < 5 {
				w = append(w, sigma[rnd.Intn(len(sigma))])
				words++
				if int(en.Word(w)) != o.Verdict(w) {
					bad++
				}
				if en.Word(w) == state.Illegal {
					break
				}
			}
		}
		fmt.Printf("| `%s` | %d | %d |\n", e, words, bad)
	}
}

// --- E3/E6/E7: figure scenarios ------------------------------------------

// scenarioRow drives one action and reports the accept/reject decision.
func scenarioRow(en *state.Engine, a expr.Action, apply bool) string {
	ok := en.Try(a)
	if ok && apply {
		if err := en.Step(a); err != nil {
			return "error"
		}
	}
	if ok {
		return "accept"
	}
	return "reject"
}

func runE3() {
	en := state.MustEngine(paper.Fig3PatientConstraint())
	p := paper.Patient(1)
	steps := []struct {
		a     expr.Action
		apply bool
		note  string
	}{
		{paper.PrepareAct(p, paper.ExamSono), true, "preparation is free"},
		{paper.InformAct(p, paper.ExamEndo), true, "information is free"},
		{paper.CallAct(p, paper.ExamSono), true, "first call"},
		{paper.CallAct(p, paper.ExamEndo), false, "second call during exam"},
		{paper.PerformAct(p, paper.ExamSono), true, "exam completes"},
		{paper.CallAct(p, paper.ExamEndo), true, "second call reappears"},
	}
	fmt.Println("| action | decision | paper's claim |")
	fmt.Println("|---|---|---|")
	for _, s := range steps {
		fmt.Printf("| %s | %s | %s |\n", s.a, scenarioRow(en, s.a, s.apply), s.note)
	}
}

func runE6() {
	en := state.MustEngine(paper.Fig6CapacityRestriction())
	fmt.Println("| action | decision | paper's claim |")
	fmt.Println("|---|---|---|")
	for i := 1; i <= 3; i++ {
		a := paper.CallAct(paper.Patient(i), paper.ExamSono)
		fmt.Printf("| %s | %s | slot %d of 3 |\n", a, scenarioRow(en, a, true), i)
	}
	a4 := paper.CallAct(paper.Patient(4), paper.ExamSono)
	fmt.Printf("| %s | %s | capacity exhausted |\n", a4, scenarioRow(en, a4, false))
	ae := paper.CallAct(paper.Patient(4), paper.ExamEndo)
	fmt.Printf("| %s | %s | other department independent |\n", ae, scenarioRow(en, ae, true))
	rel := paper.PerformAct(paper.Patient(1), paper.ExamSono)
	fmt.Printf("| %s | %s | slot freed |\n", rel, scenarioRow(en, rel, true))
	fmt.Printf("| %s | %s | fourth patient admitted |\n", a4, scenarioRow(en, a4, true))
}

func runE7() {
	en := state.MustEngine(paper.Fig7Coupled())
	p1 := paper.Patient(1)
	fmt.Println("| action | decision | constraint responsible |")
	fmt.Println("|---|---|---|")
	pr := paper.PrepareAct(p1, paper.ExamSono)
	fmt.Printf("| %s | %s | only Fig 3 mentions prepare (open world) |\n", pr, scenarioRow(en, pr, true))
	for i := 1; i <= 3; i++ {
		a := paper.CallAct(paper.Patient(i), paper.ExamSono)
		fmt.Printf("| %s | %s | both constraints |\n", a, scenarioRow(en, a, true))
	}
	a4 := paper.CallAct(paper.Patient(4), paper.ExamSono)
	fmt.Printf("| %s | %s | Fig 6 capacity |\n", a4, scenarioRow(en, a4, false))
	be := paper.CallAct(p1, paper.ExamEndo)
	fmt.Printf("| %s | %s | Fig 3 patient busy |\n", be, scenarioRow(en, be, false))
}

// --- E9/E10/E11: growth tables -------------------------------------------

func growthTable(e *expr.Expr, gen func(i int) expr.Action, steps int, at []int) {
	en := state.MustEngine(e)
	cl, _ := complexity.Classify(e)
	fmt.Printf("expression: `%s` — classifier: %v\n\n", e, cl)
	fmt.Println("| actions processed | state size | ns/transition |")
	fmt.Println("|---|---|---|")
	next := 0
	for i := 0; i < steps; i++ {
		a := gen(i)
		t0 := time.Now()
		if err := en.Step(a); err != nil {
			fmt.Printf("| %d | (rejected: %v) | |\n", i, err)
			return
		}
		dt := time.Since(t0)
		if next < len(at) && i+1 == at[next] {
			fmt.Printf("| %d | %d | %d |\n", i+1, en.StateSize(), dt.Nanoseconds())
			next++
		}
	}
}

func runE9() {
	e, gen := complexity.QuasiRegularExpr()
	growthTable(e, gen, 3000, []int{1, 10, 100, 1000, 3000})
	fmt.Println("\nExpected shape (paper Sec 6): constant state size, constant cost.")
}

func runE10() {
	e, gen := complexity.UniformExpr()
	fmt.Println("open branches (every patient called, none completed):")
	fmt.Println()
	growthTable(e, gen, 2000, []int{1, 10, 100, 500, 1000, 2000})
	samples, err := complexity.Measure(e, gen, 600)
	if err == nil {
		an := complexity.Analyze(samples)
		fmt.Printf("\nmeasured growth: %v, log-log degree ≈ %.2f (paper: polynomial, degree rarely > 1–2)\n",
			an.Class, an.Degree)
	}
	fmt.Println("\ncompleted branches (every call followed by its perform — the ρ")
	fmt.Println("optimization reclaims finished branches, Sec 6's \"nearly constant\"):")
	fmt.Println()
	growthTable(e, complexity.ClosedUniformGen(), 2000, []int{1, 10, 100, 1000, 2000})
	fmt.Println("\nstep-by-step benignity derivation for Fig 6 (Sec 6's methodology):")
	fmt.Println("```")
	fmt.Print(complexity.Derive(paper.Fig6CapacityRestriction()))
	fmt.Println("```")
}

func runE11() {
	e, gen := complexity.MalignantExpr()
	growthTable(e, gen, 18, []int{2, 4, 6, 8, 10, 12, 14, 16, 18})
	samples, err := complexity.Measure(e, gen, 18)
	if err == nil {
		an := complexity.Analyze(samples)
		fmt.Printf("\nmeasured growth: %v (doubling ratio over last half ≈ %.1f×)\n", an.Class, an.Ratio)
	}
	fmt.Println("Expected shape (paper Sec 6): exponential — such expressions must be deliberately constructed.")
}

// --- E12: naive vs operational --------------------------------------------

func runE12() {
	// The word alternates a and b but ends with a trailing a, so it is
	// partial, not complete: deciding w ∈ Φ forces the naive procedure to
	// exhaust every shuffle decomposition before failing, which is where
	// its exponential worst case lives. The operational model processes
	// the same word action by action.
	e := ix.MustParse("(a - b)# & (a | b)*")
	word := func(n int) semantics.Word {
		var w semantics.Word
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				w = append(w, expr.ConcreteAct("a"))
			} else {
				w = append(w, expr.ConcreteAct("b"))
			}
		}
		return append(w, expr.ConcreteAct("a"))
	}
	fmt.Printf("expression: `%s`, words (ab)ⁿa\n\n", e)
	fmt.Println("| word length | naive oracle (Table 8) | operational model (Sec 4/5) |")
	fmt.Println("|---|---|---|")
	for _, n := range []int{5, 9, 13, 15, 17, 19} {
		w := word(n - 1)
		t0 := time.Now()
		o := semantics.New(e, n)
		o.Verdict(w)
		naive := time.Since(t0)
		t0 = time.Now()
		en := state.MustEngine(e)
		en.Word([]expr.Action(w))
		oper := time.Since(t0)
		fmt.Printf("| %d | %v | %v |\n", n, naive.Round(time.Microsecond), oper.Round(time.Microsecond))
	}
	fmt.Println("\nExpected shape: the naive decision procedure grows exponentially with the")
	fmt.Println("word length while the state model stays flat — the paper's motivation for Sec 4.")
}

// --- E13: coordination throughput -----------------------------------------

func runE13() {
	e := ix.MustParse("(a | b)*")
	aAct := expr.ConcreteAct("a")

	// In-process, atomic request path.
	m := manager.MustNew(e, manager.Options{})
	const n = 20000
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := m.Request(bg, aAct); err != nil {
			panic(err)
		}
	}
	inproc := time.Since(t0)
	m.Close()

	// In-process, full ask/confirm cycle.
	m2 := manager.MustNew(e, manager.Options{})
	t0 = time.Now()
	for i := 0; i < n; i++ {
		tk, err := m2.Ask(bg, aAct)
		if err != nil {
			panic(err)
		}
		if err := m2.Confirm(tk); err != nil {
			panic(err)
		}
	}
	askConfirm := time.Since(t0)
	m2.Close()

	// Over TCP loopback.
	m3 := manager.MustNew(e, manager.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := manager.NewServer(m3, ln)
	cl, err := manager.Dial(srv.Addr())
	if err != nil {
		panic(err)
	}
	const nn = 3000
	t0 = time.Now()
	for i := 0; i < nn; i++ {
		if err := cl.Request(bg, aAct); err != nil {
			panic(err)
		}
	}
	tcp := time.Since(t0)
	cl.Close()
	srv.Close()
	m3.Close()

	fmt.Println("| path | operations | total | ops/sec |")
	fmt.Println("|---|---|---|---|")
	fmt.Printf("| in-process request (atomic ask+confirm) | %d | %v | %.0f |\n",
		n, inproc.Round(time.Millisecond), float64(n)/inproc.Seconds())
	fmt.Printf("| in-process ask → confirm (critical region) | %d | %v | %.0f |\n",
		n, askConfirm.Round(time.Millisecond), float64(n)/askConfirm.Seconds())
	fmt.Printf("| TCP loopback request | %d | %v | %.0f |\n",
		nn, tcp.Round(time.Millisecond), float64(nn)/tcp.Seconds())
}

// --- E14: subscription fan-out ---------------------------------------------

func runE14() {
	m := manager.MustNew(paper.Fig3PatientConstraint(), manager.Options{})
	defer m.Close()
	const patients = 100
	subs := make([]*manager.Subscription, patients)
	for i := range subs {
		subs[i] = m.Subscribe(paper.CallAct(paper.Patient(i), paper.ExamEndo))
		<-subs[i].C // drain the initial status
	}
	// One transition per patient: each flips exactly its own subscription.
	t0 := time.Now()
	for i := 0; i < patients; i++ {
		if err := m.Request(bg, paper.CallAct(paper.Patient(i), paper.ExamSono)); err != nil {
			panic(err)
		}
	}
	dt := time.Since(t0)
	flips := 0
	for _, s := range subs {
		select {
		case inf := <-s.C:
			if !inf.Permissible {
				flips++
			}
		default:
		}
	}
	st := m.Stats()
	fmt.Println("| metric | value |")
	fmt.Println("|---|---|")
	fmt.Printf("| subscriptions | %d |\n", patients)
	fmt.Printf("| transitions | %d |\n", patients)
	fmt.Printf("| informs sent (excl. initial) | %d |\n", st.Informs-patients)
	fmt.Printf("| targeted flips observed | %d |\n", flips)
	fmt.Printf("| total time | %v |\n", dt.Round(time.Millisecond))
	fmt.Println("\nExpected shape: exactly one inform per flip — informs are sent only on")
	fmt.Println("permissible ↔ non-permissible status changes (Fig 10 subscription protocol).")
}

// --- E15: adaptation strategies ---------------------------------------------

// countingCoord attributes actual manager round trips to one component
// (the engine, or one worklist handler) so E15 can show where the
// messages originate in each Fig 11 architecture. It measures manager
// stats deltas around each call, so locally cached probes cost nothing —
// only real manager traffic counts. Single-threaded use only.
type countingCoord struct {
	inner    wfms.Coordinator
	m        *manager.Manager
	messages *int
}

func msgTotal(st manager.Stats) int {
	return st.Asks + st.Tries + st.Confirms + st.Aborts
}

func (c countingCoord) Try(a expr.Action) bool {
	before := msgTotal(c.m.Stats())
	ok := c.inner.Try(a)
	*c.messages += msgTotal(c.m.Stats()) - before
	return ok
}

func (c countingCoord) Execute(ctx context.Context, a expr.Action, run func() error) error {
	before := msgTotal(c.m.Stats())
	err := c.inner.Execute(ctx, a, run)
	*c.messages += msgTotal(c.m.Stats()) - before
	return err
}

type e15Result struct {
	stats       manager.Stats
	engineMsgs  int
	handlerMsgs int
	components  int
}

// runEnsembleE15 drives the two Fig 1 workflows for one patient to
// completion through the given architecture and reports manager stats
// plus per-component message attribution.
func runEnsembleE15(adaptEngine bool) (e15Result, error) {
	m := manager.MustNew(paper.Fig3PatientConstraint(), manager.Options{})
	defer m.Close()
	var res e15Result

	var e *wfms.Engine
	// Several worklist handlers per role exist in practice (every user
	// desktop runs one); model three medical assistants plus one handler
	// for each remaining role.
	seats := []string{
		wfms.RolePhysician, wfms.RoleClerk, wfms.RoleNurse,
		wfms.RoleAssistant, wfms.RoleAssistant, wfms.RoleAssistant,
	}
	handlers := make([]*wfms.WorklistHandler, len(seats))
	if adaptEngine {
		// Right side of Fig 11: one adapted component, standard handlers.
		e = wfms.NewEngine(countingCoord{inner: wfms.NewManagerCoordinator(m), m: m, messages: &res.engineMsgs})
		for i, r := range seats {
			handlers[i] = wfms.NewStandardHandler(e, r)
		}
		res.components = 1
	} else {
		// Left side: standard engine, every handler adapted. Each handler
		// is its own process in the deployment the paper describes, so
		// each gets its own coordinator (and status cache).
		e = wfms.NewEngine(nil)
		for i, r := range seats {
			handlers[i] = wfms.NewAdaptedHandler(e, r,
				countingCoord{inner: wfms.NewManagerCoordinator(m), m: m, messages: &res.handlerMsgs})
		}
		res.components = len(seats)
	}
	if err := e.Register(wfms.UltrasonographyDef()); err != nil {
		return res, err
	}
	if err := e.Register(wfms.EndoscopyDef()); err != nil {
		return res, err
	}
	if _, err := e.Start("ultrasonography", map[string]string{"p": "pat1", "x": paper.ExamSono}); err != nil {
		return res, err
	}
	if _, err := e.Start("endoscopy", map[string]string{"p": "pat1", "x": paper.ExamEndo}); err != nil {
		return res, err
	}

	// Round-robin the worklists until both instances finish: each round,
	// every handler lists its items (status probes!) and executes the
	// first one that succeeds.
	for rounds := 0; rounds < 200; rounds++ {
		progressed := false
		for _, h := range handlers {
			for _, item := range h.List() {
				if err := h.Execute(bg, item.ID); err == nil {
					progressed = true
					break
				}
			}
		}
		doneAll := true
		for _, id := range e.InstanceIDs() {
			if !e.Ended(id) {
				doneAll = false
			}
		}
		if doneAll {
			res.stats = m.Stats()
			return res, nil
		}
		if !progressed {
			return res, fmt.Errorf("ensemble stuck")
		}
	}
	return res, fmt.Errorf("ensemble did not finish")
}

func runE15() {
	eng, err := runEnsembleE15(true)
	if err != nil {
		fmt.Println("adapted engine run failed:", err)
		return
	}
	wl, err := runEnsembleE15(false)
	if err != nil {
		fmt.Println("adapted worklist run failed:", err)
		return
	}
	fmt.Println("| metric | adapted workflow engine | adapted worklist handlers |")
	fmt.Println("|---|---|---|")
	fmt.Printf("| components talking to the manager | %d | %d |\n", eng.components, wl.components)
	fmt.Printf("| messages from the engine | %d | 0 |\n", eng.engineMsgs)
	fmt.Printf("| messages from worklist handlers | 0 | %d |\n", wl.handlerMsgs)
	fmt.Printf("| manager status probes served | %d | %d |\n", eng.stats.Tries, wl.stats.Tries)
	fmt.Printf("| grants | %d | %d |\n", eng.stats.Grants, wl.stats.Grants)
	fmt.Printf("| confirms (state transitions) | %d | %d |\n", eng.stats.Confirms, wl.stats.Confirms)
	fmt.Println("\nExpected shape (paper Sec 7): with adapted handlers every worklist")
	fmt.Println("handler communicates with the manager (here 6 desktop components instead")
	fmt.Println("of 1 server-side link), introducing the communication overhead and the")
	fmt.Println("mid-protocol-crash exposure the paper describes; the integration is also")
	fmt.Println("not waterproof (see TestAdaptedHandlerLeavesEngineUnchanged), while the")
	fmt.Println("adapted engine vetoes bypass attempts. Transition counts agree: both")
	fmt.Println("architectures execute the same ensemble.")
}

// --- E17: multi-manager -----------------------------------------------------

func runE17() {
	r, err := manager.NewRouter(paper.Fig7Coupled(), manager.Options{})
	if err != nil {
		panic(err)
	}
	defer r.Close()
	const patients = 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	granted, denied := 0, 0
	t0 := time.Now()
	for i := 0; i < patients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := r.Request(bg, paper.CallAct(paper.Patient(i), paper.ExamSono))
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				granted++
			} else {
				denied++
			}
		}(i)
	}
	wg.Wait()
	dt := time.Since(t0)
	fmt.Println("| metric | value |")
	fmt.Println("|---|---|")
	fmt.Printf("| managers (coupling operands) | %d |\n", len(r.Managers()))
	fmt.Printf("| concurrent call requests | %d |\n", patients)
	fmt.Printf("| granted (department capacity 3) | %d |\n", granted)
	fmt.Printf("| denied and rolled back | %d |\n", denied)
	fmt.Printf("| total time | %v |\n", dt.Round(time.Millisecond))
}
