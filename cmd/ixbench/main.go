// Command ixbench regenerates the experiment tables of EXPERIMENTS.md:
// one section per experiment of the paper reproduction (see DESIGN.md
// for the experiment index). Output is Markdown so the results can be
// pasted into EXPERIMENTS.md directly.
//
// Usage:
//
//	ixbench            # run everything
//	ixbench -run E9    # run experiments whose ID contains "E9"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// experiment is one regenerable section.
type experiment struct {
	id    string
	title string
	run   func()
}

var experiments = []experiment{
	{"E1", "operational semantics ≡ formal semantics (randomized check)", runE1},
	{"E3", "Fig 3 patient constraint scenario", runE3},
	{"E6", "Fig 6 capacity restriction scenario", runE6},
	{"E7", "Fig 7 coupling scenario", runE7},
	{"E9", "quasi-regular expressions are harmless (state size / cost)", runE9},
	{"E10", "uniformly quantified expressions are benign", runE10},
	{"E11", "malignant expressions exist", runE11},
	{"E12", "naive algorithm vs operational state model", runE12},
	{"E13", "coordination protocol throughput", runE13},
	{"E14", "subscription protocol fan-out", runE14},
	{"E15", "worklist-handler vs engine adaptation message counts", runE15},
	{"E17", "multi-manager coordination", runE17},
}

func main() {
	sel := flag.String("run", "", "only run experiments whose ID contains this substring")
	flag.Parse()
	ran := 0
	for _, ex := range experiments {
		if *sel != "" && !strings.Contains(ex.id, *sel) {
			continue
		}
		fmt.Printf("## %s — %s\n\n", ex.id, ex.title)
		ex.run()
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ixbench: no experiment matches %q\n", *sel)
		os.Exit(2)
	}
}
