// Command ixcheck solves the word problem and the action problem of
// interaction expressions from the command line (Fig 9 of the paper).
//
// Usage:
//
//	ixcheck -e 'all p: (call(p) - perform(p))*' call(alice) perform(alice)
//	ixcheck -f constraint.ix -i            # interactive action problem
//	echo 'call(alice)' | ixcheck -f constraint.ix -i
//
// With action arguments, ixcheck classifies the word as complete,
// partial or illegal (exit status 0, 0 and 1 respectively). With -i it
// reads one action per line from stdin and answers Accept/Reject,
// mirroring the action() loop of the paper.
//
// ixcheck is also the front door of the deterministic cluster
// simulator (internal/sim):
//
//	ixcheck -explore 10000 -artifacts out/   # sweep seeded chaos schedules
//	ixcheck -replay out/seed42-failover.ixj  # re-run a recorded failure
//
// -explore runs seeded chaos schedules over the in-process simulated
// cluster and writes each failing schedule's journal — the complete
// record of every nondeterministic choice — as an artifact; -replay
// re-executes a journal bit-identically.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/ix"
)

func main() {
	var (
		exprSrc     = flag.String("e", "", "interaction expression (text syntax)")
		exprFile    = flag.String("f", "", "file containing the expression")
		interactive = flag.Bool("i", false, "action problem: read actions line by line from stdin")
		classify    = flag.Bool("c", false, "print the Sec 6 complexity classification and exit")
		showState   = flag.Bool("s", false, "print state size after every action")

		explore   = flag.Int("explore", 0, "run N seeded chaos schedules on the deterministic simulator")
		seedBase  = flag.Int64("seed-base", 0, "first seed of the -explore sweep")
		mix       = flag.String("mix", "all", "fault mix for -explore: failover, migration or all")
		events    = flag.Int("events", 0, "faults per schedule (0 = default 18)")
		jobs      = flag.Int("jobs", 0, "concurrent schedules (0 = 2x GOMAXPROCS)")
		artifacts = flag.String("artifacts", "", "directory for failing schedules' journals and traces")
		replay    = flag.String("replay", "", "re-run the recorded schedule in the given journal file")
		showTrace = flag.Bool("trace", false, "print the schedule trace during -replay")
	)
	flag.Parse()

	if *replay != "" {
		runReplay(*replay, *showTrace)
		return
	}
	if *explore > 0 {
		runExplore(exploreConfig{
			schedules: *explore, seedBase: *seedBase, mix: *mix,
			events: *events, jobs: *jobs, artifacts: *artifacts,
		})
		return
	}

	src := *exprSrc
	if *exprFile != "" {
		buf, err := os.ReadFile(*exprFile)
		if err != nil {
			fatal(err)
		}
		src = string(buf)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "ixcheck: provide an expression with -e or -f")
		flag.Usage()
		os.Exit(2)
	}
	e, err := ix.Parse(src)
	if err != nil {
		fatal(err)
	}

	if *classify {
		cl, reasons := ix.Classify(e)
		fmt.Printf("expression: %s\nclass: %v\n", e, cl)
		for _, r := range reasons {
			fmt.Printf("  - %s\n", r)
		}
		fmt.Println("\nstep-by-step derivation (Sec 6):")
		fmt.Print(ix.Derive(e))
		return
	}

	sys, err := ix.NewSystemErr(e)
	if err != nil {
		fatal(err)
	}

	if *interactive {
		runActionProblem(sys, *showState)
		return
	}

	// Word problem over the argument list.
	var word []ix.Action
	for _, arg := range flag.Args() {
		a, err := ix.ParseAction(arg)
		if err != nil {
			fatal(err)
		}
		word = append(word, a)
	}
	switch sys.Word(word) {
	case ix.Complete:
		fmt.Println("complete")
	case ix.Partial:
		fmt.Println("partial")
	default:
		fmt.Println("illegal")
		os.Exit(1)
	}
}

// runActionProblem is the action() loop of Fig 9: read, decide, apply.
func runActionProblem(sys *ix.System, showState bool) {
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := ix.ParseAction(line)
		if err != nil {
			fmt.Printf("Error: %v\n", err)
			continue
		}
		if err := sys.Step(a); err != nil {
			fmt.Println("Reject.")
		} else if showState {
			fmt.Printf("Accept. (state size %d, final %v)\n", sys.StateSize(), sys.Final())
		} else {
			fmt.Println("Accept.")
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixcheck:", err)
	os.Exit(2)
}
