package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// exploreConfig carries the -explore / -replay flag values from main.
type exploreConfig struct {
	schedules int
	seedBase  int64
	mix       string
	events    int
	jobs      int
	artifacts string
	trace     bool
}

// runExplore sweeps cfg.schedules seeded chaos schedules through the
// deterministic simulator, cfg.jobs at a time. Every failing schedule's
// journal (and trace) is written under cfg.artifacts; the journal is
// the complete reproduction recipe for ixcheck -replay. Exits nonzero
// when any schedule breaks an invariant.
func runExplore(cfg exploreConfig) {
	mixes := []string{cfg.mix}
	if cfg.mix == "all" {
		mixes = []string{"failover", "migration"}
	}
	for _, m := range mixes {
		if _, ok := sim.Mixes[m]; !ok {
			fatal(fmt.Errorf("unknown fault mix %q", m))
		}
	}
	if cfg.jobs <= 0 {
		// Schedules spend part of their wall time in pacer stalls;
		// oversubscribing the CPUs overlaps those across schedules.
		cfg.jobs = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.artifacts != "" {
		if err := os.MkdirAll(cfg.artifacts, 0o755); err != nil {
			fatal(err)
		}
	}

	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, cfg.jobs)
		done     atomic.Int64
		failures atomic.Int64
		mu       sync.Mutex // serializes failure reporting
	)
	for i := 0; i < cfg.schedules; i++ {
		seed := cfg.seedBase + int64(i)
		mix := mixes[i%len(mixes)]
		wg.Add(1)
		sem <- struct{}{}
		go func(seed int64, mix string) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := sim.RunChaos(sim.ChaosConfig{Seed: seed, Mix: mix, Events: cfg.events})
			if err != nil {
				mu.Lock()
				fmt.Fprintf(os.Stderr, "ixcheck: seed %d (%s): %v\n", seed, mix, err)
				mu.Unlock()
				failures.Add(1)
				return
			}
			if n := done.Add(1); n%5000 == 0 {
				fmt.Fprintf(os.Stderr, "ixcheck: %d/%d schedules done\n", n, cfg.schedules)
			}
			if !res.Failed() {
				return
			}
			failures.Add(1)
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "ixcheck: seed %d (%s) FAILED:\n", seed, mix)
			for _, f := range res.Failures {
				fmt.Fprintf(os.Stderr, "  invariant broken: %s\n", f)
			}
			if cfg.artifacts != "" {
				base := filepath.Join(cfg.artifacts, fmt.Sprintf("seed%d-%s", seed, mix))
				if err := res.Journal.WriteFile(base + ".ixj"); err != nil {
					fmt.Fprintf(os.Stderr, "  write journal: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "  journal: %s.ixj (re-run: ixcheck -replay %s.ixj)\n", base, base)
				}
				trace := ""
				for _, l := range res.Trace {
					trace += l + "\n"
				}
				if err := os.WriteFile(base+".trace", []byte(trace), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "  write trace: %v\n", err)
				}
			}
		}(seed, mix)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "ixcheck: %d of %d schedules failed\n", n, cfg.schedules)
		os.Exit(1)
	}
	fmt.Printf("ixcheck: %d schedules passed (seeds %d..%d)\n",
		cfg.schedules, cfg.seedBase, cfg.seedBase+int64(cfg.schedules)-1)
}

// runReplay re-executes a recorded schedule from its journal. The replay
// draws every nondeterministic choice from the journal instead of the
// PRNG and re-records as it goes; a recording that is not byte-identical
// to the input means the simulation diverged and the journal (or the
// code under test) no longer matches. Exits 1 when the replayed
// schedule breaks invariants, 2 on divergence.
func runReplay(path string, showTrace bool) {
	j, err := sim.ReadJournalFile(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying seed=%d events=%d mix=%s transport=%s draws=%d recorded-verdict=%q\n",
		j.Seed, j.Events, j.Mix, j.Transport, len(j.Draws), j.Verdict)
	res, err := sim.RunChaos(sim.ChaosConfig{Replay: j})
	if err != nil {
		fatal(err)
	}
	if showTrace {
		for _, l := range res.Trace {
			fmt.Println(l)
		}
	}
	fmt.Printf("final steps: %v\n", res.Steps)
	replayed := res.Journal
	replayed.Verdict = j.Verdict // verdicts may legitimately differ pre/post fix; compare draws only
	if string(replayed.Encode()) != string(j.Encode()) {
		fmt.Fprintln(os.Stderr, "ixcheck: replay DIVERGED from the recorded journal")
		os.Exit(2)
	}
	if res.Failed() {
		for _, f := range res.Failures {
			fmt.Fprintf(os.Stderr, "ixcheck: invariant broken: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("replay passed: schedule reproduced bit-identically, all invariants hold")
}
