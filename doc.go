// Package repro reproduces "Workflow and Process Synchronization with
// Interaction Expressions and Graphs" (C. Heinlein, ICDE 2001) as a Go
// library. Import repro/ix for the public API; see README.md for the
// architecture and DESIGN.md / EXPERIMENTS.md for the reproduction
// methodology and results. The root package only anchors the module's
// benchmark harness (bench_test.go).
package repro
