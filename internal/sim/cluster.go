package sim

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/expr"
	"repro/internal/manager"
)

// Transport abstracts how a cluster under test is wired: the simulator's
// in-memory network with its logical clock, or real TCP sockets with the
// wall clock. The chaos scenario (chaos.go) is written against this
// interface once and runs on both — the simulator for volume (tens of
// thousands of schedules in seconds), TCP for fidelity (CI soaks over
// real sockets).
type Transport interface {
	// Listen binds a listener; addr "" allocates a fresh address, a
	// non-empty addr rebinds a node's stable endpoint (the restart path).
	Listen(addr string) (net.Listener, error)
	// Dialer is the dial function handed to every Options seam; nil
	// means TCP.
	Dialer() func(addr string) (net.Conn, error)
	// Clock is the time source handed to every Options seam.
	Clock() clock.Clock
	// Name tags journals and artifacts ("sim" or "tcp").
	Name() string
	// Close releases transport resources (the simulator's pacer).
	Close()
}

// SimTransport is the deterministic in-process transport: an in-memory
// Network plus a logical Clock that advances only under the pacer's
// stuck-detector (below).
type SimTransport struct {
	Net *Network
	Clk *Clock

	inOp atomic.Int64 // depth of driver ops in flight; timers only fire inside one
	stop chan struct{}
	wg   sync.WaitGroup
}

// stuckThreshold is how long (real time) the driver must sit inside one
// synchronous operation with zero network activity before the pacer
// concludes the system is waiting on logical time and fires the earliest
// pending timer. Network-byte quiescence alone is NOT a safe idle signal
// — between a server reading a request and writing its reply the wires
// are empty while work is in flight — so the pacer demands a sustained
// stall. Genuine stalls (drain pacing, reservation expiry, ack timeouts
// against partitioned peers) are rare per schedule, so a generous
// threshold costs little and keeps -race runs (where handler steps are
// 10-20x slower) from firing timers under a live handler.
const stuckThreshold = 3 * time.Millisecond

// NewSimTransport builds a fresh simulated network and clock and starts
// the pacer.
func NewSimTransport() *SimTransport {
	tr := &SimTransport{Net: NewNetwork(), Clk: NewClock(), stop: make(chan struct{})}
	tr.wg.Add(1)
	go tr.pace()
	return tr
}

// OpBegin marks the driver entering a synchronous operation (a request,
// a migration, a probe). While no op is in flight logical time is
// frozen: nothing can be waiting on it.
func (tr *SimTransport) OpBegin() { tr.inOp.Add(1) }

// OpEnd marks the operation complete.
func (tr *SimTransport) OpEnd() { tr.inOp.Add(-1) }

// pace is the auto-advance loop: poll on a real-time tick, and once the
// driver has been stuck — inside an op, network quiet, no bytes moved —
// for stuckThreshold, jump logical time to the earliest pending deadline
// and fire it. Wall time decides only *when* the jump happens, never the
// logical order: time moves solely over a provably quiescent system, so
// the resulting schedule is a pure function of the PRNG draws.
func (tr *SimTransport) pace() {
	defer tr.wg.Done()
	tick := time.NewTicker(100 * time.Microsecond) // wallclock-ok: pacer poll, logical order unaffected
	defer tick.Stop()
	var lastAct uint64
	stallStart := time.Now() // wallclock-ok: stuck-detector, logical order unaffected
	for {
		select {
		case <-tr.stop:
			return
		case <-tick.C:
		}
		act := tr.Net.Activity()
		now := time.Now() // wallclock-ok: stuck-detector, logical order unaffected
		if tr.inOp.Load() == 0 || act != lastAct || !tr.Net.Quiet() {
			lastAct = act
			stallStart = now
			continue
		}
		if now.Sub(stallStart) < stuckThreshold {
			continue
		}
		// Fire one deadline, then restart the stall window so the woken
		// goroutine gets to make progress before time moves again.
		tr.Clk.AdvanceToPending()
		stallStart = now
	}
}

func (tr *SimTransport) Listen(addr string) (net.Listener, error) { return tr.Net.Listen(addr) }
func (tr *SimTransport) Dialer() func(string) (net.Conn, error)   { return tr.Net.Dial }
func (tr *SimTransport) Clock() clock.Clock                       { return tr.Clk }
func (tr *SimTransport) Name() string                             { return "sim" }
func (tr *SimTransport) Close() {
	select {
	case <-tr.stop:
	default:
		close(tr.stop)
	}
	tr.wg.Wait()
}

// opTracker is implemented by transports that need op boundaries for
// their pacer; the harness brackets every synchronous driver action.
type opTracker interface {
	OpBegin()
	OpEnd()
}

// TCPTransport runs the same scenarios over real loopback sockets and
// the wall clock.
type TCPTransport struct{}

func (TCPTransport) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return net.Listen("tcp", addr)
}
func (TCPTransport) Dialer() func(string) (net.Conn, error) { return nil }
func (TCPTransport) Clock() clock.Clock                     { return clock.Real }
func (TCPTransport) Name() string                           { return "tcp" }
func (TCPTransport) Close()                                 {}

// ReplSet is one shard's replica set under scenario control: n nodes on
// stable addresses, each streaming to all its peers with synchronous
// replication, crash-stoppable and restartable in place. The library
// twin of the cluster package's test helper, transport-generic.
type ReplSet struct {
	e     *expr.Expr
	tr    Transport
	Addrs []string
	ms    []*manager.Manager
	srvs  []*manager.Server
	base  []manager.Options
}

// NewReplSet binds n listeners up front (so every node knows its
// peers), then starts node 0 as primary and the rest as followers. dir
// holds each node's action log and snapshot (persistence is what makes
// a restarted node rejoin with its acked history, the precondition for
// the zero-loss invariant under out-of-band promotions).
func NewReplSet(e *expr.Expr, n int, tr Transport, dir string, custom func(i int, o *manager.Options)) (*ReplSet, error) {
	rs := &ReplSet{e: e, tr: tr,
		ms: make([]*manager.Manager, n), srvs: make([]*manager.Server, n), base: make([]manager.Options, n)}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := tr.Listen("")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		rs.Addrs = append(rs.Addrs, ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j, a := range rs.Addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		opts := manager.Options{
			Replicas:           peers,
			SyncReplicas:       true,
			Follower:           i != 0,
			Dialer:             tr.Dialer(),
			Clock:              tr.Clock(),
			ReservationTimeout: 2 * time.Second,
		}
		if dir != "" {
			nodeDir := filepath.Join(dir, fmt.Sprintf("node%d", i))
			if err := os.MkdirAll(nodeDir, 0o755); err != nil {
				return nil, err
			}
			opts.LogPath = filepath.Join(nodeDir, "actions.log")
			opts.SnapshotPath = filepath.Join(nodeDir, "state.snap")
			opts.SnapshotEvery = 3
		}
		if custom != nil {
			custom(i, &opts)
		}
		rs.base[i] = opts
		if err := rs.startNode(i, lns[i]); err != nil {
			rs.Close()
			return nil, err
		}
	}
	return rs, nil
}

func (rs *ReplSet) startNode(i int, ln net.Listener) error {
	m, err := manager.New(rs.e, rs.base[i])
	if err != nil {
		return err
	}
	if ln == nil {
		if ln, err = rs.tr.Listen(rs.Addrs[i]); err != nil {
			m.Close()
			return err
		}
	}
	rs.ms[i] = m
	rs.srvs[i] = manager.NewServer(m, ln)
	return nil
}

// StopNode crash-stops node i (no-op if already down).
func (rs *ReplSet) StopNode(i int) {
	if rs.srvs[i] == nil {
		return
	}
	rs.srvs[i].Close()
	rs.ms[i].Close()
	rs.srvs[i], rs.ms[i] = nil, nil
}

// RestartNode brings a crashed node back as a follower on its stable
// address, recovering from its on-disk log and snapshot.
func (rs *ReplSet) RestartNode(i int) error {
	rs.base[i].Follower = true
	return rs.startNode(i, nil)
}

// Managers exposes the replica managers; a nil entry is a dead node.
// The harness is omniscient — it holds the manager objects in process —
// the system under test is not.
func (rs *ReplSet) Managers() []*manager.Manager { return rs.ms }

// Close stops every node.
func (rs *ReplSet) Close() {
	for i := range rs.ms {
		rs.StopNode(i)
	}
}
