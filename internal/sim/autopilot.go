package sim

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/parse"
	"repro/internal/placement"
	"repro/internal/sim/check"
)

// The autopilot scenario: the end-to-end proof that the control plane
// closes the loop. A fleet of stateless gateways shares one
// placement.RouteTable over a two-shard cluster; the driver skews the
// traffic so shard 0's ask rate runs hot, and a placement.Controller —
// ticked explicitly by the schedule, on the simulator's logical clock —
// must detect the hot shard from the live StatsSnapshot signals,
// schedule one live migration onto the shard's spare, and hold still
// through a noisy-but-balanced aftermath (hysteresis and cooldown must
// prevent flapping). A gateway is killed mid-schedule to prove the
// serving tier survives fleet shrink. The check.Ledger closes the book:
// zero lost acked actions, exact step accounting (the schedule is
// fault-free from the client's view, so steps == acked exactly), and
// replica convergence on every route-listed node.
//
// Determinism: traffic is round-based (every commit is a synchronous
// driver op), the controller runs between rounds, meters advance on
// Clock.Advance, and the only randomness — the noisy load trace — is
// drawn from the config's seed. Two runs with one config produce
// byte-identical traces.

// AutopilotExpr is the scenario expression. Both operands iterate
// freely, so no commit is ever denied: a routes to shard 0 only, c to
// shard 1 only, s is coupled (a cross-shard two-phase grant).
const AutopilotExpr = "(a | s)* @ (c | s)*"

// AutopilotConfig parameterizes one autopilot schedule.
type AutopilotConfig struct {
	// Seed drives the noisy-phase load jitter.
	Seed int64
	// Gateways is the serving-tier size; 0 means 3 (the minimum).
	Gateways int
	// WarmRounds is the balanced warm-up; 0 means 5.
	WarmRounds int
	// SkewRounds bounds the hot phase; 0 means 12. The phase ends early
	// once the controller migrates.
	SkewRounds int
	// NoisyRounds is the post-migration noisy-balanced phase; 0 means 25.
	NoisyRounds int
	// Transport runs the scenario over the given transport; nil builds a
	// fresh SimTransport (closed when the run ends). The transport's
	// clock must be the simulated one.
	Transport Transport
}

// AutopilotResult is one schedule's outcome.
type AutopilotResult struct {
	// Decisions is every controller tick's decision, in order.
	Decisions []placement.Decision
	// Migrations counts executed (successful) migrations.
	Migrations int
	// Spread is the controller's final score spread (max/mean; 1 = even).
	Spread float64
	// Trace is the chronological schedule log (byte-identical across
	// runs with one config).
	Trace []string
	// Failures lists broken invariants (empty = schedule passed).
	Failures []string
	// Steps is each shard's final step count.
	Steps []uint64
}

// Failed reports whether any invariant broke.
func (r *AutopilotResult) Failed() bool { return len(r.Failures) > 0 }

// autopilot load shapes, in commits per round: {a, c, s}.
var (
	autoWarmLoad = [3]int{3, 3, 1}
	autoSkewLoad = [3]int{20, 2, 1}
)

// RunAutopilot executes one seeded autopilot schedule.
func RunAutopilot(cfg AutopilotConfig) (*AutopilotResult, error) {
	tr := cfg.Transport
	if tr == nil {
		st := NewSimTransport()
		defer st.Close()
		tr = st
	}
	clk, ok := tr.Clock().(*Clock)
	if !ok {
		return nil, fmt.Errorf("sim: the autopilot scenario needs the simulated clock")
	}
	nGw := cfg.Gateways
	if nGw == 0 {
		nGw = 3
	}
	if nGw < 3 {
		return nil, fmt.Errorf("sim: the autopilot scenario needs ≥ 3 gateways, got %d", nGw)
	}
	warm, skew, noisy := cfg.WarmRounds, cfg.SkewRounds, cfg.NoisyRounds
	if warm == 0 {
		warm = 5
	}
	if skew == 0 {
		skew = 12
	}
	if noisy == 0 {
		noisy = 25
	}

	// Two shards, two replicas each (primary + sync follower). The
	// follower doubles as the shard's migration spare: the controller
	// moves a hot shard's primary onto it, retiring the old server.
	e := parse.MustParse(AutopilotExpr)
	parts := cluster.Partition(e)
	sets := make([]*ReplSet, len(parts))
	rows := make([][]string, len(parts))
	for i, part := range parts {
		var err error
		// Each node carries its own obs registry: StatsSnapshot.AskRate —
		// the controller's primary signal — reads the node's ask meter,
		// which runs on the injected logical clock (deterministic rates).
		metrics := func(_ int, o *manager.Options) { o.Metrics = obs.NewRegistry() }
		if sets[i], err = NewReplSet(part, 2, tr, "", metrics); err != nil {
			return nil, err
		}
		rows[i] = sets[i].Addrs
	}
	defer func() {
		for _, rs := range sets {
			if rs != nil {
				rs.Close()
			}
		}
	}()

	table, err := placement.NewRouteTable(rows)
	if err != nil {
		return nil, err
	}
	gws := make([]*cluster.Gateway, nGw)
	for i := range gws {
		if gws[i], err = cluster.NewReplicatedGateway(e, nil, cluster.GatewayOptions{
			Dialer: tr.Dialer(), Clock: tr.Clock(), RouteTable: table,
		}); err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, gw := range gws {
			if gw != nil {
				gw.Close()
			}
		}
	}()

	// The controller autopilots through gateway 0's Rebalancer (any
	// gateway works — the shared table converges the whole fleet; the
	// schedule kills the last gateway, never this one).
	reb := gws[0].Rebalancer()
	ctrl := placement.NewController(reb, reb, placement.ControllerOptions{
		Alpha:    0.5,
		HotPolls: 2,
		HotRatio: 1.5,
		MinScore: 1,
		Cooldown: 10 * time.Second,
		Spares:   [][]string{{sets[0].Addrs[1]}, {sets[1].Addrs[1]}},
		Clock:    tr.Clock(),
	})

	h := &autoHarness{gws: gws, ledger: check.NewLedger(len(parts))}
	h.ops, _ = tr.(opTracker)
	for i := range gws {
		h.live = append(h.live, i)
	}
	res := &AutopilotResult{Steps: make([]uint64, len(parts))}
	tick := func() placement.Decision {
		var d placement.Decision
		h.op(func() { d = ctrl.Tick(bg) })
		res.Decisions = append(res.Decisions, d)
		h.tracef("tick %d: %s scores=%.4f", len(res.Decisions)-1, d, d.Scores)
		return d
	}

	// Phase 1 — balanced warm-up: the controller must sit still.
	for r := 0; r < warm; r++ {
		h.round(autoWarmLoad)
		clk.Advance(time.Second)
		if d := tick(); d.Action == placement.DecisionMigrate {
			h.failf("warm-up migration: %s", d)
		}
	}

	// Phase 2 — skewed load heats shard 0; a gateway dies mid-phase. The
	// controller must detect the hot shard and execute exactly one
	// migration onto its spare.
	target := sets[0].Addrs[1]
	migrated := false
	for r := 0; r < skew && !migrated; r++ {
		if r == 2 {
			h.killGateway(len(gws) - 1)
		}
		h.round(autoSkewLoad)
		clk.Advance(time.Second)
		d := tick()
		if d.Action != placement.DecisionMigrate {
			continue
		}
		if d.Err != "" {
			h.failf("migration failed: %s", d)
			break
		}
		if d.Shard != 0 || d.Target != target {
			h.failf("migrated the wrong way: %s (want shard 0 -> %s)", d, target)
		}
		migrated = true
		res.Migrations++
	}
	if !migrated && len(h.failures) == 0 {
		h.failf("controller never migrated the hot shard (decisions: %d)", len(res.Decisions))
	}

	if migrated {
		// Every surviving gateway converged to the new route before the
		// migrating call returned — the synchronous fan-out contract.
		for _, i := range h.live {
			if addrs := gws[i].Shards()[0].Addrs(); len(addrs) != 1 || addrs[0] != target {
				h.failf("gateway %d route after migrate: %v, want [%s]", i, addrs, target)
			}
		}
		// Decommission the retired source for good: traffic must not
		// need it.
		sets[0].StopNode(0)
	}

	// Phase 3 — noisy but balanced aftermath: seeded jitter plus
	// single-round spikes. Hysteresis (HotPolls consecutive hot polls)
	// and cooldown must hold — any further migration is flapping.
	rng := rand.New(rand.NewSource(cfg.Seed))
	for r := 0; r < noisy && len(h.failures) == 0; r++ {
		load := [3]int{4 + rng.Intn(4), 4 + rng.Intn(4), 1}
		if r%7 == 3 {
			load[0] = 18 // one-round spike; the EWMA must not chase it
		}
		h.round(load)
		clk.Advance(time.Second)
		if d := tick(); d.Action == placement.DecisionMigrate {
			h.failf("flapping: second migration %s at noisy round %d", d, r)
		}
	}

	// Verdicts. The schedule is fault-free from the client's view (the
	// gateway kill is a clean close between rounds), so every commit
	// acked: unknown must be zero and steps must equal acked exactly.
	st := ctrl.Status()
	res.Spread = st.ScoreSpread
	if len(h.failures) == 0 && (st.ScoreSpread > 1.5 || st.ScoreSpread == 0) {
		h.failf("post-migration score spread %.3f, want (0, 1.5]", st.ScoreSpread)
	}
	for s := range sets {
		if n := h.ledger.UnknownSum(s); n != 0 {
			h.failf("shard %d: %d unknown outcomes in a fault-free schedule", s, n)
		}
	}
	if len(h.failures) == 0 {
		final := make([]check.ShardFinal, len(sets))
		for sIdx, rs := range sets {
			listed := map[string]bool{}
			if addrs, err := table.Addrs(sIdx); err == nil {
				for _, a := range addrs {
					listed[a] = true
				}
			}
			for i, m := range rs.Managers() {
				// Only route-listed nodes count: a retired source is fenced
				// and deliberately behind.
				if m == nil || !listed[rs.Addrs[i]] {
					continue
				}
				final[sIdx].Replicas = append(final[sIdx].Replicas,
					check.Replica{StateKey: m.StateKey(), Steps: m.Status().Steps})
			}
			if len(final[sIdx].Replicas) > 0 {
				res.Steps[sIdx] = final[sIdx].Replicas[0].Steps
			}
		}
		for _, v := range h.ledger.Verify(final, 1, 0) {
			h.failf("%s", v)
		}
		for s := range sets {
			if got, want := res.Steps[s], h.ledger.AckedSum(s); got != want {
				h.failf("shard %d: %d steps != %d acked (fault-free schedule must balance exactly)", s, got, want)
			}
		}
	}
	res.Trace = h.trace
	res.Failures = h.failures
	return res, nil
}

// autoHarness drives the autopilot schedule's traffic across the
// gateway fleet.
type autoHarness struct {
	gws      []*cluster.Gateway
	live     []int // indices of still-open gateways, round-robined
	rr       int
	ops      opTracker
	ledger   *check.Ledger
	trace    []string
	failures []string
}

func (h *autoHarness) op(f func()) {
	if h.ops != nil {
		h.ops.OpBegin()
		defer h.ops.OpEnd()
	}
	f()
}

func (h *autoHarness) tracef(format string, args ...any) {
	h.trace = append(h.trace, fmt.Sprintf(format, args...))
}

func (h *autoHarness) failf(format string, args ...any) {
	h.failures = append(h.failures, fmt.Sprintf(format, args...))
}

// autoShards mirrors the scenario expression's routing.
func autoShards(name string) []int {
	switch name {
	case "a":
		return []int{0}
	case "c":
		return []int{1}
	default: // s, the coupled action
		return []int{0, 1}
	}
}

// commit settles one occurrence of name through the next live gateway.
// The scenario iterates freely, so any error is an invariant failure;
// its outcome is still ledgered as unknown to keep the book sound.
func (h *autoHarness) commit(name string) {
	gw := h.gws[h.live[h.rr%len(h.live)]]
	h.rr++
	var err error
	h.op(func() {
		ctx, cancel := context.WithTimeout(bg, 10*time.Second)
		err = gw.Request(ctx, act(name))
		cancel()
	})
	for _, s := range autoShards(name) {
		if err == nil {
			h.ledger.Ack(s, name)
		} else {
			h.ledger.Unknown(s, name)
		}
	}
	if err != nil {
		h.failf("commit %s: %v", name, err)
	}
}

// round drives one second's traffic: load[0] a's, load[1] c's, load[2]
// coupled s's, round-robined across the live gateways.
func (h *autoHarness) round(load [3]int) {
	h.tracef("round a=%d c=%d s=%d gws=%d", load[0], load[1], load[2], len(h.live))
	for i, name := range []string{"a", "c", "s"} {
		for j := 0; j < load[i]; j++ {
			h.commit(name)
		}
	}
}

// killGateway closes one gateway mid-schedule (clean fleet shrink: the
// table unfollows it, the rest keep serving and converging).
func (h *autoHarness) killGateway(idx int) {
	h.tracef("kill gateway %d", idx)
	h.op(func() { _ = h.gws[idx].Close() })
	kept := h.live[:0]
	for _, i := range h.live {
		if i != idx {
			kept = append(kept, i)
		}
	}
	h.live = kept
}
