package sim

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
)

// Journal is the record of every nondeterministic choice a simulated
// schedule made: the seed, the scenario parameters, and the value of
// each PRNG draw in order. Because the scenario is otherwise
// deterministic (in-memory network, logical clock, synchronous driver),
// the journal is a complete reproduction recipe: replaying it re-derives
// the identical fault schedule and re-runs the identical scenario, and
// re-recording during replay must produce byte-identical output — the
// determinism contract ixcheck -replay and the contract test check.
//
// Encoding: length-prefixed binary records in the wire codec's style
// (PR 7): magic, version, then for each record a uint32 length and a
// tagged payload, everything little-endian.
type Journal struct {
	Seed      int64
	Events    int
	Mix       string // fault mix name ("failover", "migration", ...)
	Transport string // "sim" or "tcp"
	Draws     []uint64
	Verdict   string // "" while running, "pass" or the failure text after
}

const (
	journalMagic   = "IXSJ"
	journalVersion = 1

	recMeta    = 1
	recDraw    = 2
	recVerdict = 3
)

// AppendDraw records one PRNG draw.
func (j *Journal) AppendDraw(v uint64) { j.Draws = append(j.Draws, v) }

// Encode serializes the journal.
func (j *Journal) Encode() []byte {
	var out bytes.Buffer
	out.WriteString(journalMagic)
	out.WriteByte(journalVersion)

	var meta bytes.Buffer
	meta.WriteByte(recMeta)
	binary.Write(&meta, binary.LittleEndian, j.Seed)
	binary.Write(&meta, binary.LittleEndian, uint32(j.Events))
	writeString(&meta, j.Mix)
	writeString(&meta, j.Transport)
	writeRecord(&out, meta.Bytes())

	for _, d := range j.Draws {
		var rec [9]byte
		rec[0] = recDraw
		binary.LittleEndian.PutUint64(rec[1:], d)
		writeRecord(&out, rec[:])
	}

	if j.Verdict != "" {
		var v bytes.Buffer
		v.WriteByte(recVerdict)
		writeString(&v, j.Verdict)
		writeRecord(&out, v.Bytes())
	}
	return out.Bytes()
}

// WriteFile writes the encoded journal to path.
func (j *Journal) WriteFile(path string) error {
	return os.WriteFile(path, j.Encode(), 0o644)
}

// DecodeJournal parses an encoded journal.
func DecodeJournal(data []byte) (*Journal, error) {
	if len(data) < len(journalMagic)+1 || string(data[:len(journalMagic)]) != journalMagic {
		return nil, fmt.Errorf("sim: not a journal (bad magic)")
	}
	if v := data[len(journalMagic)]; v != journalVersion {
		return nil, fmt.Errorf("sim: journal version %d not supported", v)
	}
	data = data[len(journalMagic)+1:]
	j := &Journal{}
	sawMeta := false
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, fmt.Errorf("sim: truncated journal record header")
		}
		n := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < n || n == 0 {
			return nil, fmt.Errorf("sim: truncated journal record")
		}
		rec := data[:n]
		data = data[n:]
		switch rec[0] {
		case recMeta:
			rec = rec[1:]
			if len(rec) < 12 {
				return nil, fmt.Errorf("sim: short meta record")
			}
			j.Seed = int64(binary.LittleEndian.Uint64(rec))
			j.Events = int(binary.LittleEndian.Uint32(rec[8:]))
			rec = rec[12:]
			var err error
			if j.Mix, rec, err = readString(rec); err != nil {
				return nil, err
			}
			if j.Transport, _, err = readString(rec); err != nil {
				return nil, err
			}
			sawMeta = true
		case recDraw:
			if len(rec) != 9 {
				return nil, fmt.Errorf("sim: bad draw record length %d", len(rec))
			}
			j.Draws = append(j.Draws, binary.LittleEndian.Uint64(rec[1:]))
		case recVerdict:
			var err error
			if j.Verdict, _, err = readString(rec[1:]); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sim: unknown journal record type %d", rec[0])
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("sim: journal has no meta record")
	}
	return j, nil
}

// ReadJournalFile reads and parses a journal file.
func ReadJournalFile(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeJournal(data)
}

func writeRecord(out *bytes.Buffer, payload []byte) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	out.Write(n[:])
	out.Write(payload)
}

func writeString(out *bytes.Buffer, s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	out.Write(n[:])
	out.WriteString(s)
}

func readString(data []byte) (string, []byte, error) {
	if len(data) < 4 {
		return "", nil, fmt.Errorf("sim: truncated string")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if uint32(len(data)) < n {
		return "", nil, fmt.Errorf("sim: truncated string body")
	}
	return string(data[:n]), data[n:], nil
}
