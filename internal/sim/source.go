package sim

import (
	"fmt"
	"math/rand"
)

// Source is the single faucet every nondeterministic choice of a
// simulated schedule flows through. In record mode it draws from a
// seeded PRNG and appends each result to the journal; in replay mode it
// returns the journal's recorded values in order (and still appends to
// the output journal, so a replay re-emits a byte-identical record —
// the cheap, complete determinism check).
type Source struct {
	rng    *rand.Rand
	j      *Journal
	replay []uint64
	pos    int
	err    error
}

// NewSource creates a recording source: draws come from seed, results
// are appended to j.
func NewSource(seed int64, j *Journal) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed)), j: j}
}

// NewReplaySource creates a replaying source: draws come from the
// recorded journal, results are appended to out (pass the same Journal
// to round-trip).
func NewReplaySource(recorded *Journal, out *Journal) *Source {
	return &Source{replay: recorded.Draws, j: out}
}

// Intn draws an integer in [0, n).
func (s *Source) Intn(n int) int {
	if s.replay != nil {
		if s.pos >= len(s.replay) {
			s.fail(fmt.Errorf("sim: replay exhausted after %d draws", s.pos))
			return 0
		}
		v := s.replay[s.pos]
		s.pos++
		if v >= uint64(n) {
			s.fail(fmt.Errorf("sim: replayed draw %d out of range [0,%d)", v, n))
			return 0
		}
		s.j.AppendDraw(v)
		return int(v)
	}
	v := uint64(s.rng.Intn(n))
	s.j.AppendDraw(v)
	return int(v)
}

// Err reports the first replay mismatch (nil in record mode and on a
// clean replay).
func (s *Source) Err() error { return s.err }

func (s *Source) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}
