package sim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func pair(t *testing.T, n *Network) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c1, err := n.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return c1, <-accepted
}

func TestNetworkDialAndTransfer(t *testing.T) {
	n := NewNetwork()
	c1, c2 := pair(t, n)
	if _, err := c1.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nr, err := c2.Read(buf)
	if err != nil || string(buf[:nr]) != "hello" {
		t.Fatalf("read %q, %v", buf[:nr], err)
	}
	if !n.Quiet() {
		t.Fatal("network should be quiet after the read drained the buffer")
	}
}

func TestNetworkDialUnknownRefused(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("nowhere"); !errors.Is(err, ErrRefused) {
		t.Fatalf("got %v, want ErrRefused", err)
	}
}

func TestNetworkRebindAfterClose(t *testing.T) {
	n := NewNetwork()
	ln, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if _, err := n.Listen(addr); err == nil {
		t.Fatal("double bind should fail")
	}
	ln.Close()
	if _, err := n.Dial(addr); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial after close: got %v, want ErrRefused", err)
	}
	if _, err := n.Listen(addr); err != nil {
		t.Fatalf("rebind: %v", err)
	}
}

func TestNetworkCloseSeversBothEnds(t *testing.T) {
	n := NewNetwork()
	c1, c2 := pair(t, n)
	c1.Write([]byte("in flight"))
	c1.Close()
	// The peer's pending buffered bytes are discarded (an RST, not a
	// graceful FIN): reads fail, writes fail.
	if _, err := c2.Read(make([]byte, 4)); err != io.EOF {
		t.Fatalf("peer read after close: %v, want EOF", err)
	}
	if _, err := c2.Write([]byte("x")); err == nil {
		t.Fatal("peer write after close should fail")
	}
	if !n.Quiet() {
		t.Fatal("closed conns must not hold the network un-quiet")
	}
}

func TestNetworkPartitionAndHeal(t *testing.T) {
	n := NewNetwork()
	c1, _ := pair(t, n)
	addr := c1.RemoteAddr().String()
	n.Partition(addr)
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("write over a severed conn should fail")
	}
	if _, err := n.Dial(addr); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial into partition: %v, want ErrRefused", err)
	}
	n.Heal(addr)
	c3, err := n.Dial(addr)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c3.Close()
}

func TestNetworkReadDeadline(t *testing.T) {
	n := NewNetwork()
	c1, _ := pair(t, n)
	c1.SetReadDeadline(time.Now().Add(5 * time.Millisecond)) // wallclock-ok: testing the deadline backstop itself
	_, err := c1.Read(make([]byte, 1))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("got %v, want a timeout net.Error", err)
	}
}

func TestNetworkActivityAdvances(t *testing.T) {
	n := NewNetwork()
	before := n.Activity()
	c1, c2 := pair(t, n)
	c1.Write([]byte("x"))
	c2.Read(make([]byte, 1))
	c1.Close()
	if n.Activity() <= before {
		t.Fatal("dial+write+read+close must bump the activity counter")
	}
}
