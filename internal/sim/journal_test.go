package sim

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	j := &Journal{Seed: -7, Events: 18, Mix: "migration", Transport: "sim", Verdict: "pass"}
	for _, d := range []uint64{0, 1, 99, 1 << 40} {
		j.AppendDraw(d)
	}
	got, err := DecodeJournal(j.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, j) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, j)
	}
}

func TestJournalFileRoundTrip(t *testing.T) {
	j := &Journal{Seed: 42, Events: 6, Mix: "failover", Transport: "sim", Draws: []uint64{3, 1, 4}, Verdict: "pass"}
	path := filepath.Join(t.TempDir(), "sched.ixj")
	if err := j.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, j) {
		t.Fatalf("file round trip mismatch:\n got %+v\nwant %+v", got, j)
	}
}

func TestJournalDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": []byte("NOPE\x01"),
		"truncated": func() []byte {
			j := &Journal{Seed: 1, Events: 18, Mix: "failover", Transport: "sim", Draws: []uint64{5}}
			enc := j.Encode()
			return enc[:len(enc)-3]
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeJournal(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestSourceRecordsDraws(t *testing.T) {
	j := &Journal{}
	src := NewSource(99, j)
	var want []uint64
	for i := 0; i < 10; i++ {
		want = append(want, uint64(src.Intn(100)))
	}
	if !reflect.DeepEqual(j.Draws, want) {
		t.Fatalf("journal %v != drawn %v", j.Draws, want)
	}
	if src.Err() != nil {
		t.Fatalf("record mode must not error: %v", src.Err())
	}
}

func TestReplaySourceRoundTrips(t *testing.T) {
	rec := &Journal{}
	src := NewSource(7, rec)
	for i := 0; i < 6; i++ {
		src.Intn(100)
	}
	out := &Journal{}
	rep := NewReplaySource(rec, out)
	for i := 0; i < 6; i++ {
		if got, want := rep.Intn(100), int(rec.Draws[i]); got != want {
			t.Fatalf("draw %d: %d != recorded %d", i, got, want)
		}
	}
	if rep.Err() != nil {
		t.Fatal(rep.Err())
	}
	if !reflect.DeepEqual(out.Draws, rec.Draws) {
		t.Fatal("replay must re-emit the recorded draws")
	}
	// One draw past the end is a hard error.
	rep.Intn(100)
	if rep.Err() == nil {
		t.Fatal("exhausted replay must error")
	}
}
