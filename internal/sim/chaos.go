package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/expr"
	"repro/internal/manager"
	"repro/internal/parse"
	"repro/internal/sim/check"
	"repro/internal/storage"
)

// The chaos scenario, ported from the cluster package's seeded TCP
// harness (PR 4/5) onto the Transport seam: the same code drives the
// sequential pipeline word a b c a b c ... through a replicated 2-shard
// gateway ((a - b)* @ (b - c)*, so every b is a distributed two-phase
// commit) while a schedule of primary kills, follower kills, restarts,
// out-of-band promotions, connection drops and live migrations fires
// between operations. Afterwards the cluster is healed to a clean round
// and the check.Ledger verdicts run: zero lost acked actions, no
// double-applies, replica convergence, global-order agreement.
//
// Every nondeterministic choice — the fault schedule — is drawn through
// a Source, so each run emits a Journal that replays bit-identically.
// Timing never decides correctness: faults are injected between
// synchronous client operations and every wait is a protocol reply, so
// the scenario is deterministic on the simulated transport and merely
// racy-but-sound on TCP.

// ChaosExpr is the pipeline expression the scenario shards.
const ChaosExpr = "(a - b)* @ (b - c)*"

// Mixes: percentage → fault kind, pre-generated per event from one
// uniform draw in [0,100).
const (
	evNone = iota
	evKillPrimary
	evKillFollower
	evRestartDead
	evPromoteFollower
	evDropConn
	evMigrate
)

// MixFailover is the PR 4 fault mix: kills, restarts, promotions, drops.
func MixFailover(p int) int {
	switch {
	case p < 25:
		return evKillPrimary
	case p < 40:
		return evKillFollower
	case p < 65:
		return evRestartDead
	case p < 75:
		return evPromoteFollower
	case p < 90:
		return evDropConn
	}
	return evNone
}

// MixMigration biases towards live migrations while keeping every PR 4
// fault in play (migration-during-kill schedules).
func MixMigration(p int) int {
	switch {
	case p < 15:
		return evKillPrimary
	case p < 25:
		return evKillFollower
	case p < 45:
		return evRestartDead
	case p < 52:
		return evPromoteFollower
	case p < 62:
		return evDropConn
	case p < 92:
		return evMigrate
	}
	return evNone
}

// Mixes maps mix names (as stored in journals) to their event functions.
var Mixes = map[string]func(p int) int{
	"failover":  MixFailover,
	"migration": MixMigration,
}

// ChaosConfig parameterizes one schedule.
type ChaosConfig struct {
	// Seed drives the fault schedule (record mode).
	Seed int64
	// Events is the number of injected faults; 0 means 18 (the TCP
	// harness's budget).
	Events int
	// Mix names the fault mix: "failover" (default) or "migration".
	Mix string
	// Transport runs the scenario over the given transport; nil builds a
	// fresh SimTransport (closed when the run ends).
	Transport Transport
	// Dir holds the nodes' logs and snapshots; "" uses a temporary
	// directory removed when the run ends.
	Dir string
	// MemStorage swaps every node's file-backed log and snapshot for an
	// in-memory storage backend (with delta checkpoints) that models
	// process-crash durability without touching the filesystem. The flag
	// changes only where durable bytes live, never the schedule, so it is
	// not recorded in journals: a journal recorded with MemStorage replays
	// bit-identically without it and vice versa.
	MemStorage bool
	// Replay, if non-nil, ignores Seed/Events/Mix and re-executes the
	// recorded schedule.
	Replay *Journal
}

// ChaosResult is one schedule's outcome.
type ChaosResult struct {
	// Journal records every draw; on replay it must equal the input.
	Journal *Journal
	// Failures lists broken invariants (empty = schedule passed).
	Failures []string
	// Trace is the chronological schedule log (for artifacts).
	Trace []string
	// Steps is each shard's final step count.
	Steps []uint64
}

// Failed reports whether any invariant broke.
func (r *ChaosResult) Failed() bool { return len(r.Failures) > 0 }

// scratchBase picks where schedules keep their nodes' logs and
// snapshots: tmpfs when the host has one (each schedule fsyncs dozens of
// times; on a real disk that is the dominant cost of a run), else the
// default temp dir.
func scratchBase() string {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		return "/dev/shm"
	}
	return ""
}

// RunChaos executes one seeded (or replayed) chaos schedule.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	tr := cfg.Transport
	if tr == nil {
		tr = NewSimTransport()
		defer tr.Close()
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp(scratchBase(), "ixsim"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	events := cfg.Events
	mixName := cfg.Mix
	seed := cfg.Seed
	if cfg.Replay != nil {
		seed, events, mixName = cfg.Replay.Seed, cfg.Replay.Events, cfg.Replay.Mix
	}
	if events == 0 {
		events = 18
	}
	if mixName == "" {
		mixName = "failover"
	}
	mix, ok := Mixes[mixName]
	if !ok {
		return nil, fmt.Errorf("sim: unknown fault mix %q", mixName)
	}

	journal := &Journal{Seed: seed, Events: events, Mix: mixName, Transport: tr.Name()}
	var src *Source
	if cfg.Replay != nil {
		src = NewReplaySource(cfg.Replay, journal)
	} else {
		src = NewSource(seed, journal)
	}

	// With MemStorage every node keeps one Memory backend for the whole
	// schedule: StopNode models a process crash (buffered-but-uncommitted
	// entries die), RestartNode recovers from the surviving durable log
	// and delta-checkpoint chain of the same backend.
	// The hook runs once per node and the ReplSet retains the resulting
	// Options across restarts, so each node's Memory backend persists for
	// the whole schedule.
	var custom func(i int, o *manager.Options)
	if cfg.MemStorage {
		custom = func(i int, o *manager.Options) {
			o.Storage = storage.NewMemory()
			o.LogPath, o.SnapshotPath = "", ""
			o.FullCheckpointEvery = 4
		}
	}

	e := parse.MustParse(ChaosExpr)
	parts := cluster.Partition(e)
	sets := make([]*ReplSet, len(parts))
	for i, part := range parts {
		var err error
		sets[i], err = NewReplSet(part, 2, tr, fmt.Sprintf("%s/shard%d", dir, i), custom)
		if err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, rs := range sets {
			if rs != nil {
				rs.Close()
			}
		}
	}()
	gw, err := cluster.NewReplicatedGateway(e, [][]string{sets[0].Addrs, sets[1].Addrs},
		cluster.GatewayOptions{Dialer: tr.Dialer(), Clock: tr.Clock()})
	if err != nil {
		return nil, err
	}
	defer gw.Close()

	h := &chaosHarness{
		gw: gw, reb: gw.Rebalancer(), sets: sets,
		word:   []string{"a", "b", "c"},
		ledger: check.NewLedger(len(parts)),
	}
	h.ops, _ = tr.(opTracker)

	// Pre-generate the whole schedule so the fault sequence is a pure
	// function of the draws, whatever the outcomes.
	type chaosEvent struct{ kind, shard int }
	evs := make([]chaosEvent, events)
	for i := range evs {
		p := src.Intn(100)
		evs[i] = chaosEvent{kind: mix(p), shard: src.Intn(len(parts))}
	}
	if err := src.Err(); err != nil {
		return nil, err
	}

	for i := 0; i < events; i++ {
		h.inject(evs[i].kind, evs[i].shard)
		if !h.commit(h.word[h.pos%len(h.word)]) {
			break // shard down until heal
		}
		h.advance()
	}

	if !h.heal() {
		h.failf("cluster did not heal to a clean round")
	}

	// Collect the survivors' final positions and run the verdicts. The
	// final clean round ended in sync-acked commits on both shards, so
	// every live replica must be converged.
	res := &ChaosResult{Journal: journal, Trace: h.trace, Steps: make([]uint64, len(sets))}
	if len(h.failures) == 0 {
		final := make([]check.ShardFinal, len(sets))
		for sIdx, rs := range sets {
			for _, m := range rs.Managers() {
				if m == nil {
					continue
				}
				final[sIdx].Replicas = append(final[sIdx].Replicas,
					check.Replica{StateKey: m.StateKey(), Steps: m.Status().Steps})
			}
			if len(final[sIdx].Replicas) > 0 {
				res.Steps[sIdx] = final[sIdx].Replicas[0].Steps
			}
		}
		for _, v := range h.ledger.Verify(final, 2, 2) {
			h.failf("%s", v)
		}
	}
	res.Failures = h.failures
	if res.Failed() {
		journal.Verdict = res.Failures[0]
	} else {
		journal.Verdict = "pass"
	}
	return res, nil
}

// chaosHarness drives one schedule (the library twin of the TCP test
// harness).
type chaosHarness struct {
	gw       *cluster.Gateway
	reb      *cluster.Rebalancer
	sets     []*ReplSet
	ops      opTracker // nil on TCP; sim brackets every synchronous driver action
	word     []string
	pos      int  // next occurrence index into the unbounded word
	occClean bool // last occurrence acked on its first attempt
	ledger   *check.Ledger
	trace    []string
	failures []string
}

// op brackets one synchronous driver action for the pacer: logical
// timers may only fire while the driver is provably stuck inside one.
func (h *chaosHarness) op(f func()) {
	if h.ops != nil {
		h.ops.OpBegin()
		defer h.ops.OpEnd()
	}
	f()
}

var bg = context.Background()

func act(name string) expr.Action { return expr.Act(name) }

func (h *chaosHarness) tracef(format string, args ...any) {
	h.trace = append(h.trace, fmt.Sprintf(format, args...))
}

func (h *chaosHarness) failf(format string, args ...any) {
	h.failures = append(h.failures, fmt.Sprintf(format, args...))
}

// involvedShards mirrors the routing of the pipeline expression.
func involvedShards(name string) []int {
	switch name {
	case "a":
		return []int{0}
	case "b":
		return []int{0, 1}
	default:
		return []int{1}
	}
}

func (h *chaosHarness) ack(name string) {
	for _, s := range involvedShards(name) {
		h.ledger.Ack(s, name)
	}
}

func (h *chaosHarness) unk(name string) {
	for _, s := range involvedShards(name) {
		h.ledger.Unknown(s, name)
	}
}

// commit settles one occurrence of name, tolerating faults: unknown
// outcomes are retried, and a denial means the driver's position and
// some shard's position disagree — an unknown attempt landed invisibly
// (shard ahead) or an earlier un-acked commit evaporated with a failover
// (shard behind; the legal async window of an unacknowledged outcome).
// reconcile levels every involved shard against ground truth. Returns
// false when the occurrence could not be settled yet (shard down until
// the heal phase).
func (h *chaosHarness) commit(name string) bool {
	h.occClean = false
	for attempt := 0; attempt < 10; attempt++ {
		var err error
		h.op(func() {
			ctx, cancel := context.WithTimeout(bg, 5*time.Second)
			err = h.gw.Request(ctx, act(name))
			cancel()
		})
		h.tracef("op %d %s attempt %d: %v", h.pos, name, attempt, err)
		if err == nil {
			h.ack(name)
			h.occClean = attempt == 0
			return true
		}
		if errors.Is(err, manager.ErrDenied) {
			if h.reconcile(name) {
				return true
			}
			continue
		}
		h.unk(name)
	}
	return false
}

// authoritative returns the ground-truth position of shard s: the steps
// of the replica the election would settle on (highest epoch, then
// primaries, then most commits).
func (h *chaosHarness) authoritative(s int) (manager.ReplStatus, bool) {
	var best manager.ReplStatus
	found := false
	for _, m := range h.sets[s].Managers() {
		if m == nil {
			continue
		}
		st := m.Status()
		if !found || cluster.BetterReplica(st, best) {
			best, found = st, true
		}
	}
	return best, found
}

// shardActionAt is the pipeline's per-shard script: shard 0 alternates
// a, b; shard 1 alternates b, c.
func shardActionAt(s, steps int) string {
	if s == 0 {
		if steps%2 == 0 {
			return "a"
		}
		return "b"
	}
	if steps%2 == 0 {
		return "b"
	}
	return "c"
}

// expectedSteps is the position shard s should be at before the current
// occurrence h.pos of the global word.
func (h *chaosHarness) expectedSteps(s int) int {
	full, rem := h.pos/3, h.pos%3
	if s == 0 {
		n := 2 * full
		if rem >= 1 {
			n++ // this round's a is done
		}
		if rem >= 2 {
			n++ // this round's b is done
		}
		return n
	}
	n := 2 * full
	if rem >= 2 {
		n++ // this round's b is done
	}
	return n
}

// reconcile drives every shard involved in the current occurrence to the
// position after it, committing whatever actions the authoritative
// timeline is missing. The writes double as probes: a deposed primary
// refuses them (ErrNotPrimary) and the retry elects the authoritative
// replica — a read probe would instead trust the deposed node's
// divergent, soon-to-be-discarded state. Returns false when a shard
// stayed unreachable (the heal phase will retry).
func (h *chaosHarness) reconcile(name string) bool {
	for _, sIdx := range involvedShards(name) {
		sc := h.gw.Shards()[sIdx]
		settled := false
		for attempt := 0; attempt < 10; attempt++ {
			st, ok := h.authoritative(sIdx)
			if !ok {
				return false // shard fully down
			}
			auth, want := int(st.Steps), h.expectedSteps(sIdx)+1
			if auth >= want {
				if auth > want {
					h.failf("shard %d ahead of the driver: %d steps, expected ≤ %d (duplicated commit)", sIdx, auth, want)
				}
				settled = true
				break
			}
			missing := shardActionAt(sIdx, auth)
			var err error
			h.op(func() {
				ctx, cancel := context.WithTimeout(bg, 5*time.Second)
				err = sc.Request(ctx, act(missing))
				cancel()
			})
			h.tracef("op %d reconcile shard %d (auth %d, want %d) commit %s: %v", h.pos, sIdx, auth, want, missing, err)
			if err == nil {
				h.ledger.Ack(sIdx, missing)
			} else if !errors.Is(err, manager.ErrDenied) {
				h.ledger.Unknown(sIdx, missing)
			}
			// On denial the state moved under us (a deposed node's commit
			// evaporated, or our own unknown attempt landed): re-read the
			// ground truth and continue.
		}
		if !settled {
			return false
		}
	}
	return true
}

// advance moves to the next occurrence.
func (h *chaosHarness) advance() { h.pos++ }

// inject fires one pre-generated fault. The whole injection is one
// driver op: node stops can strand in-flight replication acks and a
// migration drains through logical-time pacing, both of which need the
// pacer live.
func (h *chaosHarness) inject(kind, shard int) {
	h.op(func() { h.injectOne(kind, shard) })
}

func (h *chaosHarness) injectOne(kind, shard int) {
	h.tracef("op %d inject kind=%d shard=%d", h.pos, kind, shard)
	rs := h.sets[shard]
	switch kind {
	case evKillPrimary, evKillFollower:
		wantPrimary := kind == evKillPrimary
		for i, m := range rs.Managers() {
			if m == nil {
				continue
			}
			if (m.Status().Role == manager.RolePrimary) == wantPrimary {
				rs.StopNode(i)
				return
			}
		}
		// No node in the wanted role: kill the first live one.
		for i, m := range rs.Managers() {
			if m != nil {
				rs.StopNode(i)
				return
			}
		}
	case evRestartDead: // restart every dead node (as followers)
		for _, set := range h.sets {
			for i, m := range set.Managers() {
				if m == nil {
					if err := set.RestartNode(i); err != nil {
						h.failf("restart node %d: %v", i, err)
					}
				}
			}
		}
	case evPromoteFollower: // out-of-band promotion (split brain when a primary exists)
		for _, m := range rs.Managers() {
			if m != nil && m.Status().Role == manager.RoleFollower {
				_, _ = m.Promote()
				return
			}
		}
	case evDropConn: // connection drop between gateway and shard
		h.gw.Shards()[shard].DropConn()
	case evMigrate: // live migration: ping-pong the primary onto a live follower
		var target string
		for i, m := range rs.Managers() {
			if m != nil && m.Status().Role == manager.RoleFollower {
				target = rs.Addrs[i]
				break
			}
		}
		if target == "" {
			return // no live follower to migrate onto
		}
		ctx, cancel := context.WithTimeout(bg, 10*time.Second)
		err := h.reb.MigrateShard(ctx, shard, target, cluster.MigrateOptions{})
		cancel()
		h.tracef("op %d migrate shard %d -> %s: %v", h.pos, shard, target, err)
		if err != nil {
			// A migration interrupted by an earlier/concurrent fault must
			// not leave the shard wedged: clear any lingering drain on the
			// survivors (MigrateShard resumes the source itself when it
			// can still reach it; this covers the cases where it cannot).
			for _, m := range rs.Managers() {
				if m != nil {
					_ = m.Resume()
				}
			}
		}
	}
}

// heal restarts everything and drives rounds until one completes with
// every action acked on its first attempt — the certificate that both
// shards are aligned at a round boundary with no outcome outstanding.
func (h *chaosHarness) heal() bool {
	for _, set := range h.sets {
		for i, m := range set.Managers() {
			if m == nil {
				if err := set.RestartNode(i); err != nil {
					h.failf("heal restart node %d: %v", i, err)
					return false
				}
			} else {
				// A migration the schedule interrupted may have left a node
				// draining; the heal phase lifts it (a restart clears the
				// transient drain state anyway, so this only affects
				// survivors).
				_ = m.Resume()
			}
		}
	}
	// Force a fresh election on every shard. A split brain can leave the
	// gateway pinned to a stale, lower-epoch primary that answers — and
	// denies — forever: application-level denials never trigger a
	// re-election, so nothing would move the gateway onto the
	// authoritative (highest-epoch) timeline the harness levels against.
	// Dropping the conn makes the next request re-run the election, which
	// settles on exactly the replica BetterReplica predicts.
	for s := range h.sets {
		h.gw.Shards()[s].DropConn()
	}
	if !h.level() {
		return false
	}
	for round := 0; round < 40; round++ {
		// Settle the current (possibly half-done) occurrence first.
		for !h.atBoundary() {
			if !h.commit(h.word[h.pos%len(h.word)]) {
				return false
			}
			h.advance()
		}
		clean := true
		for _, name := range h.word {
			if !h.commit(name) {
				return false
			}
			clean = clean && h.occClean
			h.advance()
		}
		if clean {
			return true
		}
	}
	return false
}

func (h *chaosHarness) atBoundary() bool { return h.pos%len(h.word) == 0 }

// level drives every shard up to the driver's position before the heal
// rounds run. Denial-triggered reconciliation cannot see a shard that is
// a whole number of rounds behind — (b - c)* at step 10 accepts the same
// word as at step 12 — and exactly that happens when commits whose
// outcome stayed unknown (sync acks to a dead follower) later evaporate
// with an epoch-fenced timeline discard: perfectly legal per-shard, but
// it would silently shear the cross-shard alignment the round-boundary
// assertion certifies. Leveling re-commits the authoritative timeline's
// missing tail, with the usual acked/unknown accounting.
func (h *chaosHarness) level() bool {
	for s := range h.sets {
		leveled := false
		for attempt := 0; attempt < 20; attempt++ {
			st, ok := h.authoritative(s)
			if !ok {
				return false // shard fully down
			}
			auth, want := int(st.Steps), h.expectedSteps(s)
			if auth >= want {
				leveled = true
				break
			}
			missing := shardActionAt(s, auth)
			var err error
			h.op(func() {
				ctx, cancel := context.WithTimeout(bg, 5*time.Second)
				err = h.gw.Shards()[s].Request(ctx, act(missing))
				cancel()
			})
			h.tracef("heal level shard %d (auth %d, want %d) commit %s: %v", s, auth, want, missing, err)
			if err == nil {
				h.ledger.Ack(s, missing)
			} else if !errors.Is(err, manager.ErrDenied) {
				h.ledger.Unknown(s, missing)
			}
		}
		if !leveled {
			return false
		}
	}
	return true
}
