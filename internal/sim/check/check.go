// Package check is the exactly-once / linearizability checker behind
// the chaos harnesses: a ground-truth ledger of what each shard's
// clients were told (acked — the operation definitely committed; unknown
// — the outcome was lost with a connection or a timeout) and the
// invariant verdicts over the cluster's final state.
//
// The contract it certifies, per shard:
//
//   - no lost acked action and no double-apply: the surviving replicas'
//     step count lies in [Σ acked, Σ acked + Σ unknown];
//   - replica convergence: every live replica ends on the identical
//     state key and step count;
//   - global-order agreement at round boundaries: shards executing a
//     lock-step pipeline finish with equal, round-aligned step counts —
//     any lost, duplicated or reordered cross-shard commit breaks the
//     equality.
//
// The harnesses (internal/sim, internal/cluster's TCP chaos suite) feed
// it; its own unit tests pin the verdicts down.
package check

import "fmt"

// Ledger tallies client-visible outcomes per shard per action name.
type Ledger struct {
	acked   []map[string]int
	unknown []map[string]int
}

// NewLedger creates a ledger for n shards.
func NewLedger(n int) *Ledger {
	l := &Ledger{acked: make([]map[string]int, n), unknown: make([]map[string]int, n)}
	for i := 0; i < n; i++ {
		l.acked[i] = map[string]int{}
		l.unknown[i] = map[string]int{}
	}
	return l
}

// Ack records a client-acknowledged commit of name on shard s.
func (l *Ledger) Ack(s int, name string) { l.acked[s][name]++ }

// Unknown records an attempt on shard s whose outcome the client could
// not learn (it may or may not have committed).
func (l *Ledger) Unknown(s int, name string) { l.unknown[s][name]++ }

// AckedSum is the total acked count for shard s.
func (l *Ledger) AckedSum(s int) uint64 { return sum(l.acked[s]) }

// UnknownSum is the total unknown count for shard s.
func (l *Ledger) UnknownSum(s int) uint64 { return sum(l.unknown[s]) }

// Shards is the number of shards the ledger tracks.
func (l *Ledger) Shards() int { return len(l.acked) }

func sum(m map[string]int) uint64 {
	var n uint64
	for _, v := range m {
		n += uint64(v)
	}
	return n
}

// Replica is one live replica's final position.
type Replica struct {
	StateKey string
	Steps    uint64
}

// ShardFinal is a shard's final state: its live replicas.
type ShardFinal struct {
	Replicas []Replica
}

// Violation is one broken invariant.
type Violation struct {
	Shard int // -1 for cross-shard violations
	Msg   string
}

func (v Violation) String() string {
	if v.Shard < 0 {
		return v.Msg
	}
	return fmt.Sprintf("shard %d: %s", v.Shard, v.Msg)
}

// Verify runs every invariant against the final cluster state.
// minReplicas is the replica count each shard must end with (liveness of
// the heal phase); roundLen > 0 additionally asserts the cross-shard
// global-order agreement: all shards at the same step count, divisible
// by roundLen.
func (l *Ledger) Verify(final []ShardFinal, minReplicas int, roundLen uint64) []Violation {
	var out []Violation
	steps := make([]uint64, len(final))
	for s, f := range final {
		if len(f.Replicas) < minReplicas {
			out = append(out, Violation{s, fmt.Sprintf("only %d live replicas, want ≥ %d", len(f.Replicas), minReplicas)})
			continue
		}
		r0 := f.Replicas[0]
		for _, r := range f.Replicas[1:] {
			if r.StateKey != r0.StateKey || r.Steps != r0.Steps {
				out = append(out, Violation{s, fmt.Sprintf("replicas diverged: %d/%s vs %d/%s", r.Steps, r.StateKey, r0.Steps, r0.StateKey)})
			}
		}
		steps[s] = r0.Steps
		acked, unk := l.AckedSum(s), l.UnknownSum(s)
		if r0.Steps < acked {
			out = append(out, Violation{s, fmt.Sprintf("LOST acked actions: %d steps < %d acked", r0.Steps, acked)})
		}
		if r0.Steps > acked+unk {
			out = append(out, Violation{s, fmt.Sprintf("over-applied: %d steps > %d acked + %d unknown", r0.Steps, acked, unk)})
		}
	}
	if roundLen > 0 && len(out) == 0 {
		for s := 1; s < len(steps); s++ {
			if steps[s] != steps[0] {
				out = append(out, Violation{-1, fmt.Sprintf("global-order broken: shard steps %v differ", steps)})
				break
			}
		}
		if len(steps) > 0 && steps[0]%roundLen != 0 {
			out = append(out, Violation{-1, fmt.Sprintf("global-order broken: %d steps not a whole number of %d-step rounds", steps[0], roundLen)})
		}
	}
	return out
}
