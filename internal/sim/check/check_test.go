package check

import (
	"strings"
	"testing"
)

func twoShards(steps0, steps1 uint64) []ShardFinal {
	return []ShardFinal{
		{Replicas: []Replica{{StateKey: "k0", Steps: steps0}, {StateKey: "k0", Steps: steps0}}},
		{Replicas: []Replica{{StateKey: "k1", Steps: steps1}, {StateKey: "k1", Steps: steps1}}},
	}
}

func ackedN(l *Ledger, shard int, n int) {
	for i := 0; i < n; i++ {
		l.Ack(shard, "a")
	}
}

func TestVerifyCleanPass(t *testing.T) {
	l := NewLedger(2)
	ackedN(l, 0, 4)
	ackedN(l, 1, 4)
	if vs := l.Verify(twoShards(4, 4), 2, 2); len(vs) != 0 {
		t.Fatalf("clean state flagged: %v", vs)
	}
}

func TestVerifyUnknownWindow(t *testing.T) {
	// 3 acked + 2 unknown: any step count in [3,5] is legal.
	for steps := uint64(3); steps <= 5; steps++ {
		l := NewLedger(1)
		ackedN(l, 0, 3)
		l.Unknown(0, "a")
		l.Unknown(0, "a")
		final := []ShardFinal{{Replicas: []Replica{{StateKey: "k", Steps: steps}, {StateKey: "k", Steps: steps}}}}
		if vs := l.Verify(final, 2, 0); len(vs) != 0 {
			t.Fatalf("steps=%d inside the unknown window flagged: %v", steps, vs)
		}
	}
}

func TestVerifyLostAcked(t *testing.T) {
	l := NewLedger(1)
	ackedN(l, 0, 5)
	final := []ShardFinal{{Replicas: []Replica{{StateKey: "k", Steps: 4}, {StateKey: "k", Steps: 4}}}}
	vs := l.Verify(final, 2, 0)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "LOST") {
		t.Fatalf("want a LOST violation, got %v", vs)
	}
}

func TestVerifyOverApplied(t *testing.T) {
	l := NewLedger(1)
	ackedN(l, 0, 2)
	l.Unknown(0, "a")
	final := []ShardFinal{{Replicas: []Replica{{StateKey: "k", Steps: 4}, {StateKey: "k", Steps: 4}}}}
	vs := l.Verify(final, 2, 0)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "over-applied") {
		t.Fatalf("want an over-applied violation, got %v", vs)
	}
}

func TestVerifyDivergedReplicas(t *testing.T) {
	l := NewLedger(1)
	ackedN(l, 0, 2)
	final := []ShardFinal{{Replicas: []Replica{{StateKey: "k", Steps: 2}, {StateKey: "other", Steps: 2}}}}
	vs := l.Verify(final, 2, 0)
	if len(vs) == 0 || !strings.Contains(vs[0].Msg, "diverged") {
		t.Fatalf("want a divergence violation, got %v", vs)
	}
}

func TestVerifyTooFewReplicas(t *testing.T) {
	l := NewLedger(1)
	final := []ShardFinal{{Replicas: []Replica{{StateKey: "k", Steps: 0}}}}
	vs := l.Verify(final, 2, 0)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "live replicas") {
		t.Fatalf("want a liveness violation, got %v", vs)
	}
}

func TestVerifyGlobalOrderUnequalSteps(t *testing.T) {
	l := NewLedger(2)
	ackedN(l, 0, 4)
	ackedN(l, 1, 6)
	vs := l.Verify(twoShards(4, 6), 2, 2)
	if len(vs) != 1 || vs[0].Shard != -1 || !strings.Contains(vs[0].Msg, "differ") {
		t.Fatalf("want a cross-shard violation, got %v", vs)
	}
}

func TestVerifyGlobalOrderRoundMisaligned(t *testing.T) {
	l := NewLedger(2)
	ackedN(l, 0, 3)
	ackedN(l, 1, 3)
	vs := l.Verify(twoShards(3, 3), 2, 2)
	if len(vs) != 1 || vs[0].Shard != -1 || !strings.Contains(vs[0].Msg, "rounds") {
		t.Fatalf("want a round-alignment violation, got %v", vs)
	}
}

func TestVerifySkipsCrossShardAfterPerShardFailure(t *testing.T) {
	// A per-shard violation makes cross-shard comparisons meaningless
	// (the step counts are already suspect) — they must not stack.
	l := NewLedger(2)
	ackedN(l, 0, 9)
	ackedN(l, 1, 4)
	vs := l.Verify(twoShards(4, 4), 2, 2)
	if len(vs) != 1 || vs[0].Shard != 0 {
		t.Fatalf("want only the shard-0 violation, got %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	if got := (Violation{Shard: 1, Msg: "boom"}).String(); got != "shard 1: boom" {
		t.Fatalf("got %q", got)
	}
	if got := (Violation{Shard: -1, Msg: "boom"}).String(); got != "boom" {
		t.Fatalf("got %q", got)
	}
}

func TestLedgerSums(t *testing.T) {
	l := NewLedger(2)
	l.Ack(0, "a")
	l.Ack(0, "b")
	l.Unknown(1, "c")
	if l.Shards() != 2 || l.AckedSum(0) != 2 || l.UnknownSum(0) != 0 || l.AckedSum(1) != 0 || l.UnknownSum(1) != 1 {
		t.Fatal("ledger sums wrong")
	}
}
