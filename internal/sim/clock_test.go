package sim

import (
	"testing"
	"time"
)

func TestClockStartsAtEpoch(t *testing.T) {
	c := NewClock()
	if !c.Now().Equal(simEpoch) {
		t.Fatalf("fresh clock at %v, want %v", c.Now(), simEpoch)
	}
	if c.Since(simEpoch) != 0 {
		t.Fatal("no logical time may pass on its own")
	}
}

func TestClockAdvanceFiresInDeadlineOrder(t *testing.T) {
	c := NewClock()
	late := c.NewTimer(2 * time.Second)
	early := c.NewTimer(time.Second)
	c.Advance(3 * time.Second)
	e := <-early.C()
	l := <-late.C()
	if !e.Before(l) {
		t.Fatalf("fire times out of order: early=%v late=%v", e, l)
	}
	if want := simEpoch.Add(3 * time.Second); !c.Now().Equal(want) {
		t.Fatalf("now=%v want %v", c.Now(), want)
	}
}

func TestClockSameDeadlineFiresInCreationOrder(t *testing.T) {
	c := NewClock()
	first := c.NewTimer(time.Second)
	second := c.NewTimer(time.Second)
	c.Advance(time.Second)
	select {
	case <-first.C():
	default:
		t.Fatal("first timer did not fire")
	}
	select {
	case <-second.C():
	default:
		t.Fatal("second timer did not fire")
	}
}

func TestClockTimerStop(t *testing.T) {
	c := NewClock()
	tm := c.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("stop of a pending timer should report true")
	}
	c.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Stop() {
		t.Fatal("second stop should report false")
	}
}

func TestClockZeroTimerFiresImmediately(t *testing.T) {
	c := NewClock()
	tm := c.NewTimer(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("zero-duration timer must fire immediately")
	}
}

func TestClockAdvanceToPending(t *testing.T) {
	c := NewClock()
	if c.AdvanceToPending() {
		t.Fatal("nothing pending, nothing to fire")
	}
	near := c.NewTimer(time.Second)
	far := c.NewTimer(time.Minute)
	if !c.AdvanceToPending() {
		t.Fatal("expected the near deadline to fire")
	}
	select {
	case <-near.C():
	default:
		t.Fatal("near timer did not fire")
	}
	select {
	case <-far.C():
		t.Fatal("far timer fired early")
	default:
	}
	if want := simEpoch.Add(time.Second); !c.Now().Equal(want) {
		t.Fatalf("now=%v want %v (jump to the earliest deadline only)", c.Now(), want)
	}
}

func TestClockAdvanceToPendingSkipsStopped(t *testing.T) {
	c := NewClock()
	tm := c.NewTimer(time.Second)
	tm.Stop()
	if c.AdvanceToPending() {
		t.Fatal("a stopped timer is not pending")
	}
}
