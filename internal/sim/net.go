// In-memory network: the deterministic transport behind the simulator.
// It implements the same net.Conn / net.Listener surface the wire layer
// (internal/manager, internal/cluster) dials, so the whole cluster —
// managers, replication streams, gateway, shard clients — runs unchanged
// over buffered in-process pipes instead of kernel sockets. No kernel
// buffering, no ephemeral ports, no TIME_WAIT: a schedule's network
// behavior is a pure function of what the test injects (drops,
// partitions), and Quiet reports when no byte is in flight — the
// quiescence signal the simulated clock auto-advances on.
package sim

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRefused is returned by Dial for unknown or partitioned addresses.
var ErrRefused = errors.New("sim: connection refused")

// Network is one in-memory network namespace: a set of listeners keyed
// by address and the connections between them.
type Network struct {
	mu        sync.Mutex
	next      int
	listeners map[string]*listener
	parts     map[string]bool // partitioned addresses: dials refused, conns severed
	conns     map[*conn]bool  // both halves of every open connection
	activity  atomic.Uint64   // bumped on every dial, read, write and close
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{
		listeners: make(map[string]*listener),
		parts:     make(map[string]bool),
		conns:     make(map[*conn]bool),
	}
}

// Listen binds a listener. An empty addr allocates a fresh address
// ("sim-N"); a non-empty addr rebinds that exact address — the restart
// path, where a node comes back on its stable endpoint.
func (n *Network) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		n.next++
		addr = fmt.Sprintf("sim-%d", n.next)
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("sim: address %s already bound", addr)
	}
	l := &listener{net: n, addr: addr, backlog: make(chan net.Conn, 64)}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener bound at addr. Unknown and partitioned
// addresses refuse — the in-memory equivalent of ECONNREFUSED, which the
// wire client maps to ErrSendFailed (always safe to retry elsewhere).
func (n *Network) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	if !ok || n.parts[addr] {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
	}
	c1, c2 := n.newPipe(addr)
	n.mu.Unlock()
	n.activity.Add(1)
	if !l.send(c2) {
		c1.Close()
		c2.Close()
		return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
	}
	return c1, nil
}

// Dialer returns the dial function in the shape every Options seam
// (manager.DialOptions, cluster.ShardOptions, ...) accepts.
func (n *Network) Dialer() func(addr string) (net.Conn, error) { return n.Dial }

// Partition isolates addr: new dials to it refuse and every open
// connection touching it is severed. Heal reverses the dial refusal
// (severed connections stay dead — reconnection is the client's job,
// exactly as after a real partition).
func (n *Network) Partition(addr string) {
	n.mu.Lock()
	n.parts[addr] = true
	var victims []*conn
	for c := range n.conns {
		if c.listenerAddr == addr {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Heal lifts the partition of addr.
func (n *Network) Heal(addr string) {
	n.mu.Lock()
	delete(n.parts, addr)
	n.mu.Unlock()
}

// Activity is a monotonic counter bumped by every dial, read, write and
// close. The pacer watches it to tell a genuine stall (counter frozen)
// from a compute gap between wire events (counter moving): bytes alone
// can't — the network is empty between a server reading a request and
// writing its reply, yet the system is anything but idle.
func (n *Network) Activity() uint64 { return n.activity.Load() }

// Quiet reports whether no byte is buffered in any open connection —
// every write has been read by its receiver. The simulated clock only
// auto-advances on a quiet network, so a timer can never fire "while" a
// frame is in flight.
func (n *Network) Quiet() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for c := range n.conns {
		if !c.rd.empty() {
			return false
		}
	}
	return true
}

// newPipe builds a connected pair. Callers hold n.mu.
func (n *Network) newPipe(listenerAddr string) (*conn, *conn) {
	n.next++
	client := fmt.Sprintf("sim-conn-%d", n.next)
	a2b := newHalf()
	b2a := newHalf()
	c1 := &conn{net: n, local: client, remote: listenerAddr, listenerAddr: listenerAddr, rd: b2a, wr: a2b}
	c2 := &conn{net: n, local: listenerAddr, remote: client, listenerAddr: listenerAddr, rd: a2b, wr: b2a}
	c1.peer, c2.peer = c2, c1
	n.conns[c1] = true
	n.conns[c2] = true
	return c1, c2
}

func (n *Network) forget(c *conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

type listener struct {
	net     *Network
	addr    string
	backlog chan net.Conn
	mu      sync.Mutex
	closed  bool
}

// send enqueues an accepted conn, refusing when closed or the backlog
// is full (both map to a refused dial, retryable by the client).
func (l *listener) send(c net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	select {
	case l.backlog <- c:
		return true
	default:
		return false
	}
}

func (l *listener) Accept() (net.Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, fmt.Errorf("sim: listener %s closed", l.addr)
	}
	return c, nil
}

func (l *listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.net.mu.Lock()
	if l.net.listeners[l.addr] == l {
		delete(l.net.listeners, l.addr)
	}
	l.net.mu.Unlock()
	close(l.backlog)
	// Pending never-accepted conns would leak their dialers; sever them.
	for c := range l.backlog {
		c.Close()
	}
	return nil
}

func (l *listener) Addr() net.Addr { return simAddr(l.addr) }

type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }

// half is one direction of a connection: a buffered byte stream with
// blocking reads, closable from either side, with deadline support (a
// deadline only matters when a peer genuinely hangs; healthy sim paths
// never touch it).
type half struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	closed   bool
	deadline time.Time
}

func newHalf() *half {
	h := &half{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *half) empty() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.buf) == 0
}

func (h *half) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, io.ErrClosedPipe
	}
	h.buf = append(h.buf, p...)
	h.cond.Broadcast()
	return len(p), nil
}

func (h *half) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.buf) == 0 {
		if h.closed {
			return 0, io.EOF
		}
		if !h.deadline.IsZero() && !time.Now().Before(h.deadline) { // wallclock-ok: deadline backstop
			return 0, timeoutError{}
		}
		h.cond.Wait()
	}
	n := copy(p, h.buf)
	h.buf = h.buf[n:]
	if len(h.buf) == 0 {
		h.buf = nil
	}
	return n, nil
}

func (h *half) close() {
	h.mu.Lock()
	h.closed = true
	h.buf = nil // RST semantics: in-flight bytes are dropped, not flushed
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *half) setDeadline(t time.Time, wake func()) {
	h.mu.Lock()
	h.deadline = t
	h.mu.Unlock()
	if !t.IsZero() {
		// Arm a real timer to wake blocked readers when the deadline
		// passes. Healthy schedules never reach it (the reply arrives or
		// the conn closes first), so it adds no nondeterminism there.
		d := time.Until(t) // wallclock-ok: deadline backstop
		if d < 0 {
			d = 0
		}
		time.AfterFunc(d, wake) // wallclock-ok: deadline backstop
	}
}

type timeoutError struct{}

func (timeoutError) Error() string   { return "sim: i/o deadline exceeded" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// conn is one endpoint of an in-memory connection.
type conn struct {
	net          *Network
	local        string
	remote       string
	listenerAddr string // the listening side's address (partition targeting)
	peer         *conn
	rd, wr       *half
	closeOnce    sync.Once
}

func (c *conn) Read(p []byte) (int, error) {
	n, err := c.rd.read(p)
	c.net.activity.Add(1)
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	n, err := c.wr.write(p)
	c.net.activity.Add(1)
	return n, err
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.net.activity.Add(1)
		// Closing severs both directions on both ends, like a TCP RST:
		// the peer's pending reads fail, its writes fail, and any
		// buffered bytes are discarded — a dropped frame, which the wire
		// client surfaces as ErrConnLost.
		c.rd.close()
		c.wr.close()
		c.net.forget(c)
		c.net.forget(c.peer)
	})
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return simAddr(c.local) }
func (c *conn) RemoteAddr() net.Addr { return simAddr(c.remote) }

func (c *conn) SetDeadline(t time.Time) error {
	c.rd.setDeadline(t, c.rd.wake)
	return nil
}
func (c *conn) SetReadDeadline(t time.Time) error {
	c.rd.setDeadline(t, c.rd.wake)
	return nil
}
func (c *conn) SetWriteDeadline(t time.Time) error { return nil }

func (h *half) wake() {
	h.mu.Lock()
	h.cond.Broadcast()
	h.mu.Unlock()
}
