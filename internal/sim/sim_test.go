package sim

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
)

// simSeeds is the per-mix schedule count of a full run; override with
// IX_SIM_SEEDS for deeper sweeps (the CI sim-schedule job runs tens of
// thousands through cmd/ixcheck -explore instead).
func simSeeds(t *testing.T) int {
	if s := os.Getenv("IX_SIM_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("IX_SIM_SEEDS: %v", err)
		}
		return n
	}
	if testing.Short() {
		return 40
	}
	return 300
}

// runSeeds sweeps seeds [0,n) through one fault mix on the simulated
// transport, oversubscribing the CPUs (schedules spend part of their
// wall time in pacer stalls, which overlap across schedules).
func runSeeds(t *testing.T, mix string, n int) {
	t.Helper()
	sem := make(chan struct{}, 2*runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for seed := 0; seed < n; seed++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := RunChaos(ChaosConfig{Seed: seed, Mix: mix})
			if err != nil {
				t.Errorf("seed %d: %v", seed, err)
				return
			}
			if res.Failed() {
				var buf bytes.Buffer
				for _, line := range res.Trace {
					fmt.Fprintf(&buf, "  %s\n", line)
				}
				t.Errorf("seed %d: %v\n%s", seed, res.Failures, buf.String())
			}
		}(int64(seed))
	}
	wg.Wait()
}

// TestChaosFailover sweeps seeded kill/restart/promote/drop schedules
// on the simulated transport.
func TestChaosFailover(t *testing.T) { runSeeds(t, "failover", simSeeds(t)) }

// TestChaosMigration sweeps the migration-biased mix.
func TestChaosMigration(t *testing.T) { runSeeds(t, "migration", simSeeds(t)) }

// TestDeterminismContract is the simulator's core promise: the same
// seed produces a byte-identical journal AND an identical final cluster
// state, run after run. The race-soak CI job repeats this under -race,
// where goroutine scheduling is maximally perturbed — wall-clock timing
// may differ wildly between runs, but the logical schedule must not.
func TestDeterminismContract(t *testing.T) {
	seeds := []int64{1, 7, 42, 651, 948} // 651/948 are the historical split-brain wedges
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			type run struct {
				journal []byte
				steps   []uint64
				verdict string
			}
			var runs []run
			for i := 0; i < 3; i++ {
				res, err := RunChaos(ChaosConfig{Seed: seed})
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				runs = append(runs, run{journal: res.Journal.Encode(), steps: res.Steps, verdict: res.Journal.Verdict})
			}
			for i := 1; i < len(runs); i++ {
				if !bytes.Equal(runs[i].journal, runs[0].journal) {
					t.Errorf("run %d journal differs from run 0", i)
				}
				if fmt.Sprint(runs[i].steps) != fmt.Sprint(runs[0].steps) {
					t.Errorf("run %d final steps %v != run 0 %v", i, runs[i].steps, runs[0].steps)
				}
				if runs[i].verdict != runs[0].verdict {
					t.Errorf("run %d verdict %q != run 0 %q", i, runs[i].verdict, runs[0].verdict)
				}
			}
		})
	}
}

// TestChaosMemStorage sweeps chaos schedules with every node on the
// in-memory storage backend (delta-checkpoint chains, simulated crash
// durability) instead of file-backed logs: the same invariants must
// hold, and because the flag changes only where durable bytes live the
// journal of a seed must be byte-identical to the file-backed run's.
func TestChaosMemStorage(t *testing.T) {
	seeds := []int64{0, 1, 7, 42, 651, 948}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			mem, err := RunChaos(ChaosConfig{Seed: seed, MemStorage: true})
			if err != nil {
				t.Fatal(err)
			}
			if mem.Failed() {
				var buf bytes.Buffer
				for _, line := range mem.Trace {
					fmt.Fprintf(&buf, "  %s\n", line)
				}
				t.Fatalf("mem-storage run failed: %v\n%s", mem.Failures, buf.String())
			}
			file, err := RunChaos(ChaosConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mem.Journal.Encode(), file.Journal.Encode()) {
				t.Errorf("mem-storage journal differs from file-backed run")
			}
			if fmt.Sprint(mem.Steps) != fmt.Sprint(file.Steps) {
				t.Errorf("mem-storage final steps %v != file-backed %v", mem.Steps, file.Steps)
			}
		})
	}
}

// TestReplayReproduces runs a recorded schedule back through the replay
// source and demands a byte-identical journal and the same outcome —
// the workflow ixcheck -replay gives a failing CI artifact.
func TestReplayReproduces(t *testing.T) {
	for _, mix := range []string{"failover", "migration"} {
		mix := mix
		t.Run(mix, func(t *testing.T) {
			t.Parallel()
			rec, err := RunChaos(ChaosConfig{Seed: 3, Mix: mix})
			if err != nil {
				t.Fatal(err)
			}
			recEnc := rec.Journal.Encode()
			rep, err := RunChaos(ChaosConfig{Replay: rec.Journal})
			if err != nil {
				t.Fatal(err)
			}
			repEnc := rep.Journal.Encode()
			if !bytes.Equal(recEnc, repEnc) {
				t.Errorf("replayed journal differs from recording")
			}
			if fmt.Sprint(rep.Steps) != fmt.Sprint(rec.Steps) {
				t.Errorf("replayed final steps %v != recorded %v", rep.Steps, rec.Steps)
			}
		})
	}
}

// TestReplayRejectsCorruptJournal: a journal whose draws no longer fit
// the schedule surfaces a replay error instead of silently diverging.
func TestReplayRejectsCorruptJournal(t *testing.T) {
	rec, err := RunChaos(ChaosConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	bad := *rec.Journal
	bad.Draws = append([]uint64(nil), rec.Journal.Draws...)
	bad.Draws[0] = 1 << 40 // out of range for an Intn(100) draw
	if _, err := RunChaos(ChaosConfig{Replay: &bad}); err == nil {
		t.Fatal("expected replay error for out-of-range draw")
	}
	short := *rec.Journal
	short.Draws = short.Draws[:1]
	if _, err := RunChaos(ChaosConfig{Replay: &short}); err == nil {
		t.Fatal("expected replay error for exhausted journal")
	}
}

// TestUnknownMix rejects bad mix names up front.
func TestUnknownMix(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{Seed: 1, Mix: "nope"}); err == nil {
		t.Fatal("expected error for unknown mix")
	}
}
