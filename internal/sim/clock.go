package sim

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/clock"
)

// Clock is the simulator's logical time source, implementing
// clock.Clock. Time never flows on its own: Now advances only when a
// pending timer fires, either through an explicit Advance or through the
// auto-advance pacer, which jumps straight to the earliest pending
// deadline once the network is quiescent. Two properties follow:
//
//   - logical waits are free: a 2ms drain-retry pace or a 2s reservation
//     timeout settles in microseconds of wall time, which is what lets
//     ten thousand chaos schedules finish in seconds;
//   - a timer can never fire "during" a delivery: the pacer only moves
//     time when no byte is in flight, so timeouts race nothing.
//
// Timers at the same deadline fire in creation order (a deterministic
// tiebreak), never concurrently.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers timerHeap
	stop   chan struct{}
	wg     sync.WaitGroup
}

// simEpoch is the fixed instant every simulation starts at. Any constant
// works; an arbitrary real date keeps formatted timestamps readable.
var simEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// NewClock creates a simulated clock at the simulation epoch.
func NewClock() *Clock {
	return &Clock{now: simEpoch, stop: make(chan struct{})}
}

// Now returns the current logical time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the logical time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// After returns a channel that fires once d of logical time has passed.
func (c *Clock) After(d time.Duration) <-chan time.Time { return c.NewTimer(d).C() }

// NewTimer returns a stoppable logical timer.
func (c *Clock) NewTimer(d time.Duration) clock.Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &simTimer{clk: c, ch: make(chan time.Time, 1), when: c.now.Add(d), seq: c.seq}
	c.seq++
	if d <= 0 {
		t.fired = true
		t.ch <- c.now
		return t
	}
	heap.Push(&c.timers, t)
	return t
}

// Advance moves logical time forward by d, firing every timer whose
// deadline is reached, in deadline order.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	c.fireUntilLocked(target)
	c.now = target
	c.mu.Unlock()
}

// fireUntilLocked fires all timers due at or before target.
func (c *Clock) fireUntilLocked(target time.Time) {
	for len(c.timers) > 0 && !c.timers[0].when.After(target) {
		t := heap.Pop(&c.timers).(*simTimer)
		if t.stopped {
			continue
		}
		c.now = t.when
		t.fired = true
		t.ch <- t.when
	}
}

// AdvanceToPending jumps logical time to the earliest pending deadline
// and fires it (plus any timer sharing the deadline), reporting whether
// anything fired. The pacer (SimTransport) calls this when the system
// is provably stuck waiting on logical time.
func (c *Clock) AdvanceToPending() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.timers) > 0 && c.timers[0].stopped {
		heap.Pop(&c.timers)
	}
	if len(c.timers) == 0 {
		return false
	}
	c.fireUntilLocked(c.timers[0].when)
	return true
}

type simTimer struct {
	clk     *Clock
	ch      chan time.Time
	when    time.Time
	seq     uint64
	idx     int
	stopped bool
	fired   bool
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

func (t *simTimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true // lazily removed from the heap
	return true
}

// timerHeap orders timers by deadline, then creation sequence.
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*simTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
