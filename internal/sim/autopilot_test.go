package sim

import (
	"strings"
	"testing"

	"repro/internal/placement"
)

// TestAutopilotEndToEnd is the acceptance schedule: skewed load heats
// shard 0, the controller detects it from live StatsSnapshot signals
// (with hysteresis observed — at least one hold before the move),
// executes exactly one migration onto the spare while a gateway dies
// mid-schedule, and holds still through the noisy aftermath; the ledger
// balances exactly.
func TestAutopilotEndToEnd(t *testing.T) {
	res, err := RunAutopilot(AutopilotConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		tail := res.Trace
		if len(tail) > 25 {
			tail = tail[len(tail)-25:]
		}
		t.Fatalf("failures:\n  %s\ntrace tail:\n  %s",
			strings.Join(res.Failures, "\n  "), strings.Join(tail, "\n  "))
	}
	if res.Migrations != 1 {
		t.Fatalf("migrations = %d, want exactly 1", res.Migrations)
	}
	// Hysteresis must be visible: a hold decision strictly before the
	// migration (the controller did not fire on the first hot poll).
	sawHold, sawMigrate := false, false
	for _, d := range res.Decisions {
		switch d.Action {
		case placement.DecisionHold:
			if !sawMigrate {
				sawHold = true
			}
		case placement.DecisionMigrate:
			sawMigrate = true
		}
	}
	if !sawHold || !sawMigrate {
		t.Fatalf("decision stream lacks hold-then-migrate: %+v", res.Decisions)
	}
	if res.Spread <= 0 || res.Spread > 1.5 {
		t.Fatalf("final score spread = %v, want (0, 1.5]", res.Spread)
	}
	for s, steps := range res.Steps {
		if steps == 0 {
			t.Fatalf("shard %d ended at 0 steps", s)
		}
	}
}

// TestAutopilotDeterministic: one config, two runs, byte-identical
// traces (decisions, scores, routing — everything the schedule logs).
func TestAutopilotDeterministic(t *testing.T) {
	run := func() *AutopilotResult {
		res, err := RunAutopilot(AutopilotConfig{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("failures: %s", strings.Join(res.Failures, "; "))
		}
		return res
	}
	a, b := run(), run()
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace diverges at %d:\n  %s\n  %s", i, a.Trace[i], b.Trace[i])
		}
	}
	if a.Migrations != b.Migrations || a.Spread != b.Spread {
		t.Fatalf("outcomes diverge: %d/%v vs %d/%v", a.Migrations, a.Spread, b.Migrations, b.Spread)
	}
}
