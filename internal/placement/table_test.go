package placement

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// recApplier records every SetShardAddrs call and can reject shards out
// of its configured range, mimicking a gateway built for fewer shards.
type recApplier struct {
	mu     sync.Mutex
	shards int // reject shard >= shards when > 0
	calls  []ShardRoute
}

func (a *recApplier) SetShardAddrs(shard int, addrs []string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.shards > 0 && shard >= a.shards {
		return fmt.Errorf("no shard %d", shard)
	}
	a.calls = append(a.calls, ShardRoute{Shard: shard, Addrs: append([]string(nil), addrs...)})
	return nil
}

func (a *recApplier) take() []ShardRoute {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.calls
	a.calls = nil
	return c
}

func newTestTable(t *testing.T) *RouteTable {
	t.Helper()
	return MustRouteTable([][]string{{"a0", "a1"}, {"b0"}})
}

func TestRouteTableNew(t *testing.T) {
	tb := newTestTable(t)
	if got := tb.Shards(); got != 2 {
		t.Fatalf("Shards() = %d, want 2", got)
	}
	if got := tb.Gen(); got != 1 {
		t.Fatalf("Gen() = %d, want 1", got)
	}
	addrs, err := tb.Addrs(0)
	if err != nil || !reflect.DeepEqual(addrs, []string{"a0", "a1"}) {
		t.Fatalf("Addrs(0) = %v, %v", addrs, err)
	}
	if _, err := tb.Addrs(2); err == nil {
		t.Fatal("Addrs(2) should be out of range")
	}
	if _, err := tb.Addrs(-1); err == nil {
		t.Fatal("Addrs(-1) should be out of range")
	}
	if _, err := NewRouteTable([][]string{{"x"}, {}}); err == nil {
		t.Fatal("NewRouteTable should reject an empty row")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustRouteTable should panic on an empty row")
			}
		}()
		MustRouteTable([][]string{{}})
	}()
}

func TestRouteTableSetAddRemove(t *testing.T) {
	tb := newTestTable(t)

	if err := tb.Set(0, []string{"a0", "a1"}); err != nil {
		t.Fatal(err)
	}
	if tb.Gen() != 1 {
		t.Fatalf("equal Set must not bump gen, got %d", tb.Gen())
	}
	if err := tb.Set(0, nil); err == nil {
		t.Fatal("Set with no endpoints should fail")
	}
	if err := tb.Set(5, []string{"x"}); err == nil {
		t.Fatal("Set out of range should fail")
	}

	if err := tb.Set(0, []string{"a1", "a2"}); err != nil {
		t.Fatal(err)
	}
	snap := tb.Snapshot()
	if snap.Gen != 2 {
		t.Fatalf("table gen = %d, want 2", snap.Gen)
	}
	r0, ok := snap.Route(0)
	if !ok || r0.Gen != 2 || !reflect.DeepEqual(r0.Addrs, []string{"a1", "a2"}) {
		t.Fatalf("Route(0) = %+v, %v", r0, ok)
	}
	if r1, _ := snap.Route(1); r1.Gen != 1 {
		t.Fatalf("untouched shard 1 gen = %d, want 1", r1.Gen)
	}
	if _, ok := snap.Route(9); ok {
		t.Fatal("Route(9) should report missing")
	}

	if err := tb.Add(0, "a2"); err != nil {
		t.Fatal(err)
	}
	if tb.Gen() != 2 {
		t.Fatal("Add of a listed addr must be a no-op")
	}
	if err := tb.Add(1, "b1"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Add(7, "x"); err == nil {
		t.Fatal("Add out of range should fail")
	}
	addrs, _ := tb.Addrs(1)
	if !reflect.DeepEqual(addrs, []string{"b0", "b1"}) {
		t.Fatalf("Addrs(1) = %v", addrs)
	}

	if err := tb.Remove(1, "nope"); err != nil {
		t.Fatal("Remove of an unlisted addr must be a no-op")
	}
	if err := tb.Remove(1, "b0"); err != nil {
		t.Fatal(err)
	}
	addrs, _ = tb.Addrs(1)
	if !reflect.DeepEqual(addrs, []string{"b1"}) {
		t.Fatalf("Addrs(1) after remove = %v", addrs)
	}
	if err := tb.Remove(1, "b1"); err == nil {
		t.Fatal("removing the last endpoint should fail")
	}
	if err := tb.Remove(7, "x"); err == nil {
		t.Fatal("Remove out of range should fail")
	}
}

func TestRouteTableFollow(t *testing.T) {
	tb := newTestTable(t)
	ap := &recApplier{}
	unfollow, err := tb.Follow(ap)
	if err != nil {
		t.Fatal(err)
	}
	// Registration applies the full current table.
	initial := ap.take()
	if len(initial) != 2 || initial[0].Shard != 0 || initial[1].Shard != 1 {
		t.Fatalf("initial apply = %+v", initial)
	}

	// A mutation fans out only the changed row, before Set returns.
	if err := tb.Set(1, []string{"b9"}); err != nil {
		t.Fatal(err)
	}
	got := ap.take()
	if len(got) != 1 || got[0].Shard != 1 || !reflect.DeepEqual(got[0].Addrs, []string{"b9"}) {
		t.Fatalf("fan-out = %+v", got)
	}

	unfollow()
	if err := tb.Set(0, []string{"z"}); err != nil {
		t.Fatal(err)
	}
	if got := ap.take(); len(got) != 0 {
		t.Fatalf("unfollowed applier still received %+v", got)
	}

	// An applier that rejects the initial apply is not registered.
	bad := &recApplier{shards: 1}
	if _, err := tb.Follow(bad); err == nil {
		t.Fatal("Follow should fail when the initial apply fails")
	}
	if err := tb.Set(1, []string{"b10"}); err != nil {
		t.Fatal(err)
	}
	for _, c := range bad.take() {
		if c.Shard == 1 {
			t.Fatal("rejected follower still received fan-out")
		}
	}
}

func TestRouteTableApply(t *testing.T) {
	tb := newTestTable(t)
	ap := &recApplier{}
	if _, err := tb.Follow(ap); err != nil {
		t.Fatal(err)
	}
	ap.take()

	// Newer rows win; stale/equal rows are ignored.
	n, err := tb.Apply(Snapshot{Shards: []ShardRoute{
		{Shard: 0, Gen: 5, Addrs: []string{"n0"}},
		{Shard: 1, Gen: 1, Addrs: []string{"stale"}},
	}})
	if err != nil || n != 1 {
		t.Fatalf("Apply = %d, %v; want 1 row", n, err)
	}
	addrs, _ := tb.Addrs(0)
	if !reflect.DeepEqual(addrs, []string{"n0"}) {
		t.Fatalf("Addrs(0) = %v", addrs)
	}
	addrs, _ = tb.Addrs(1)
	if !reflect.DeepEqual(addrs, []string{"b0"}) {
		t.Fatalf("stale row applied: %v", addrs)
	}
	if got := ap.take(); len(got) != 1 || got[0].Shard != 0 {
		t.Fatalf("fan-out = %+v", got)
	}
	// Local per-shard gen jumped to the row's — a re-apply is a no-op.
	if n, err := tb.Apply(Snapshot{Shards: []ShardRoute{{Shard: 0, Gen: 5, Addrs: []string{"n0"}}}}); err != nil || n != 0 {
		t.Fatalf("re-Apply = %d, %v; want 0 rows", n, err)
	}

	if _, err := tb.Apply(Snapshot{Shards: []ShardRoute{{Shard: 9, Gen: 9, Addrs: []string{"x"}}}}); err == nil {
		t.Fatal("Apply should reject an out-of-range shard")
	}
	if _, err := tb.Apply(Snapshot{Shards: []ShardRoute{{Shard: 0, Gen: 9}}}); err == nil {
		t.Fatal("Apply should reject an empty row")
	}
}

func TestRouteTableWatch(t *testing.T) {
	tb := newTestTable(t)
	ch, cancel := tb.Watch()

	// Two quick changes: a slow watcher sees only the newest snapshot.
	if err := tb.Set(0, []string{"v1"}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Set(0, []string{"v2"}); err != nil {
		t.Fatal(err)
	}
	snap := <-ch
	r0, _ := snap.Route(0)
	if !reflect.DeepEqual(r0.Addrs, []string{"v2"}) {
		t.Fatalf("watch delivered stale snapshot %+v", r0)
	}

	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("canceled watch channel should be closed")
	}
	cancel() // double-cancel is safe

	// Mutations after cancel don't panic on the closed channel.
	if err := tb.Set(0, []string{"v3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteTableMigrateLock(t *testing.T) {
	tb := newTestTable(t)
	unlock := tb.MigrateLock(0)
	acquired := make(chan struct{})
	go func() {
		u := tb.MigrateLock(0)
		close(acquired)
		u()
	}()
	select {
	case <-acquired:
		t.Fatal("second MigrateLock(0) acquired while held")
	default:
	}
	// A different shard's lock is independent.
	tb.MigrateLock(1)()
	unlock()
	<-acquired
}

func TestRouteTableConcurrentMutations(t *testing.T) {
	tb := MustRouteTable([][]string{{"s0"}, {"s1"}, {"s2"}, {"s3"}})
	ap := &recApplier{}
	if _, err := tb.Follow(ap); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := tb.Set(g, []string{fmt.Sprintf("s%d-%d", g, i)}); err != nil {
					panic(err)
				}
				_ = tb.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := tb.Gen(); got != 1+4*25 {
		t.Fatalf("table gen = %d, want %d", got, 1+4*25)
	}
	for g := 0; g < 4; g++ {
		addrs, _ := tb.Addrs(g)
		if want := fmt.Sprintf("s%d-24", g); addrs[0] != want {
			t.Fatalf("shard %d ends at %v, want %s", g, addrs, want)
		}
	}
}

func TestEqualAddrs(t *testing.T) {
	if !equalAddrs([]string{"a", "b"}, []string{"a", "b"}) {
		t.Fatal("equal lists reported unequal")
	}
	if equalAddrs([]string{"a"}, []string{"a", "b"}) || equalAddrs([]string{"a"}, []string{"b"}) {
		t.Fatal("unequal lists reported equal")
	}
}

var errBoom = errors.New("boom")
