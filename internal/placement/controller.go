package placement

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// ShardLoad is one shard's load readout, the control plane's view of
// manager.StatsSnapshot: the three autopilot signals plus identity.
type ShardLoad struct {
	Shard       int     `json:"shard"`
	Primary     string  `json:"primary,omitempty"`
	AskRate     float64 `json:"ask_rate"`
	QueueDepth  int64   `json:"queue_depth"`
	MemoHitRate float64 `json:"memo_hit_rate"`
	Steps       uint64  `json:"steps"`
	// Err marks a shard whose readout failed (unreachable primary); its
	// score is carried over unchanged and it is never picked for a move.
	Err string `json:"err,omitempty"`
}

// LoadSource polls per-shard load. cluster.Rebalancer satisfies it
// (Loads fans Stats out to every shard primary concurrently, best
// effort). Implementations must return one entry per shard, errored
// shards marked via ShardLoad.Err, and may return partial results
// alongside a non-nil error.
type LoadSource interface {
	Loads(ctx context.Context) ([]ShardLoad, error)
}

// Mover executes one live migration. cluster.Rebalancer satisfies it
// with the full attach→drain→promote→retire pipeline.
type Mover interface {
	Move(ctx context.Context, shard int, target string, retire bool) error
}

// Decision actions, in Decision.Action.
const (
	// DecisionNone: no shard qualifies as hot.
	DecisionNone = "none"
	// DecisionHold: a shard is hot but hysteresis is still counting.
	DecisionHold = "hold-hysteresis"
	// DecisionCooldown: a shard is eligible but the last migration is
	// too recent.
	DecisionCooldown = "hold-cooldown"
	// DecisionNoSpare: a shard is eligible but has no spare to move to.
	DecisionNoSpare = "hold-no-spare"
	// DecisionPaused: the controller is paused; it polled and scored but
	// will not act.
	DecisionPaused = "paused"
	// DecisionPlan: dry-run mode; the move was planned, not executed.
	DecisionPlan = "plan"
	// DecisionMigrate: a migration was executed (Err records failure).
	DecisionMigrate = "migrate"
	// DecisionPollFailed: the load poll returned no usable shard data.
	DecisionPollFailed = "poll-failed"
)

// Decision is one control-loop step's outcome: the scores it computed
// and what it did (or held back from doing) about them.
type Decision struct {
	At     time.Time `json:"at"`
	Action string    `json:"action"`
	// Shard/Source/Target describe the (planned or executed) move for
	// plan/migrate and the eligible shard for the hold actions; Shard is
	// -1 when no shard is hot.
	Shard  int    `json:"shard"`
	Source string `json:"source,omitempty"`
	Target string `json:"target,omitempty"`
	// Scores are the post-EWMA per-shard scores; Mean their average.
	Scores []float64 `json:"scores"`
	Mean   float64   `json:"mean"`
	Err    string    `json:"error,omitempty"`
}

// ControllerOptions tune the autopilot.
type ControllerOptions struct {
	// Interval is Run's poll cadence. Zero means 2s.
	Interval time.Duration
	// Alpha is the EWMA smoothing factor in (0, 1]: score =
	// Alpha*load + (1-Alpha)*score. Zero means 0.5.
	Alpha float64
	// QueueWeight scales queue depth into the load score. Zero means 1.
	QueueWeight float64
	// MissWeight scales the memo-miss share of the ask rate into the
	// load score (a shard whose cache misses pays full transition cost
	// for every ask). Zero means 0.5; negative disables the term.
	MissWeight float64
	// HotRatio marks a shard hot when its score exceeds HotRatio times
	// the fleet mean. Zero means 1.5. (Values ≥ 2 are unreachable on a
	// two-shard fleet: one score can never exceed twice the mean of two.)
	HotRatio float64
	// MinScore is the absolute score floor below which no shard is ever
	// hot — an idle cluster must not migrate on ratio noise. Zero means 1.
	MinScore float64
	// HotPolls is the hysteresis: a shard must stay hot for this many
	// consecutive polls before a move is scheduled. Zero means 3.
	HotPolls int
	// Cooldown is the minimum time between two migrations. Zero means 60s.
	Cooldown time.Duration
	// Spares lists, per shard, idle follower endpoints the shard may be
	// migrated onto (a spare must already run as an empty or stale
	// follower serving the shard's expression). A shard with no spares
	// holds instead of moving.
	Spares [][]string
	// RecycleSources returns a retired migration source to its shard's
	// spare pool (the node keeps running and can take the shard back
	// later). Off, a used source leaves the pool for the operator.
	RecycleSources bool
	// DryRun plans moves (Decision/Plans record them) without executing.
	DryRun bool
	// Clock injects the time source (the simulator drives the controller
	// on its logical clock). Nil means the wall clock.
	Clock clock.Clock
	// Metrics, if non-nil, registers the controller's decision metrics.
	Metrics *obs.Registry
	// PlanCapacity bounds the retained decision log. Zero means 64.
	PlanCapacity int
}

// controllerMetrics counts decisions (nil-safe when Metrics is nil).
type controllerMetrics struct {
	polls      *obs.Counter
	pollErrs   *obs.Counter
	holds      *obs.Counter
	plans      *obs.Counter
	migrations *obs.Counter
	failures   *obs.Counter
	migrateNs  *obs.Histogram
}

// Controller is the autopilot: a clock-injected control loop that turns
// the fleet's load signals into migration decisions. Drive it with Run
// (a goroutine polling every Interval) or call Tick directly — the
// deterministic simulator does the latter, so a chaos schedule owns
// exactly when the control loop observes and acts.
type Controller struct {
	src  LoadSource
	mv   Mover
	opts ControllerOptions
	clk  clock.Clock
	cm   controllerMetrics

	mu        sync.Mutex
	scores    []float64
	hotFor    []int
	spares    [][]string
	paused    bool
	migrating bool
	lastMove  time.Time
	moved     bool // lastMove is meaningful
	last      Decision
	decided   bool // last is meaningful
	plans     []Decision
	nPolls    uint64
	nMoves    uint64
	nFailures uint64
}

// NewController builds an autopilot over a load source and a mover
// (both typically one cluster.Rebalancer).
func NewController(src LoadSource, mv Mover, opts ControllerOptions) *Controller {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Alpha <= 0 || opts.Alpha > 1 {
		opts.Alpha = 0.5
	}
	if opts.QueueWeight == 0 {
		opts.QueueWeight = 1
	}
	if opts.MissWeight == 0 {
		opts.MissWeight = 0.5
	}
	if opts.HotRatio <= 0 {
		opts.HotRatio = 1.5
	}
	if opts.MinScore == 0 {
		opts.MinScore = 1
	}
	if opts.HotPolls <= 0 {
		opts.HotPolls = 3
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 60 * time.Second
	}
	if opts.PlanCapacity <= 0 {
		opts.PlanCapacity = 64
	}
	c := &Controller{src: src, mv: mv, opts: opts, clk: clock.Or(opts.Clock)}
	c.spares = make([][]string, len(opts.Spares))
	for i, s := range opts.Spares {
		c.spares[i] = append([]string(nil), s...)
	}
	if reg := opts.Metrics; reg != nil {
		c.cm = controllerMetrics{
			polls:      reg.Counter("ix_autopilot_polls_total"),
			pollErrs:   reg.Counter("ix_autopilot_poll_errors_total"),
			holds:      reg.Counter("ix_autopilot_holds_total"),
			plans:      reg.Counter("ix_autopilot_plans_total"),
			migrations: reg.Counter("ix_autopilot_migrations_total"),
			failures:   reg.Counter("ix_autopilot_migration_failures_total"),
			migrateNs:  reg.Histogram("ix_autopilot_migrate_ns"),
		}
		reg.GaugeFunc("ix_autopilot_paused", func() int64 {
			if c.Paused() {
				return 1
			}
			return 0
		})
		reg.GaugeFunc("ix_autopilot_score_spread_x1000", func() int64 {
			return int64(c.Status().ScoreSpread * 1000)
		})
	}
	return c
}

// Run polls every Interval until ctx is canceled. A Tick that executes
// a migration runs long — that is the one-migration-at-a-time budget:
// the loop cannot schedule a second move while one is in flight.
func (c *Controller) Run(ctx context.Context) {
	for {
		t := c.clk.NewTimer(c.opts.Interval)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C():
		}
		c.Tick(ctx)
	}
}

// load folds one shard readout into the scalar load score: asks/s,
// surcharged by the memo-miss share (a missing cache pays full
// transition cost per ask), plus the queue backlog.
func (c *Controller) load(l ShardLoad) float64 {
	miss := c.opts.MissWeight
	if miss < 0 {
		miss = 0
	}
	return l.AskRate*(1+miss*(1-l.MemoHitRate)) + c.opts.QueueWeight*float64(l.QueueDepth)
}

// Tick runs one control step: poll loads, fold them into the EWMA
// scores, and either schedule a migration or record why not. Migrations
// run synchronously inside the tick (the budget is one at a time by
// construction). The returned Decision is also retained in Plans.
func (c *Controller) Tick(ctx context.Context) Decision {
	loads, err := c.src.Loads(ctx)
	c.cm.polls.Inc()
	if err != nil {
		c.cm.pollErrs.Inc()
	}

	c.mu.Lock()
	c.nPolls++
	now := c.clk.Now()
	d := Decision{At: now, Shard: -1}
	if len(loads) == 0 {
		d.Action = DecisionPollFailed
		if err != nil {
			d.Err = err.Error()
		}
		c.recordLocked(d)
		c.mu.Unlock()
		return d
	}
	if len(c.scores) < len(loads) {
		c.scores = append(c.scores, make([]float64, len(loads)-len(c.scores))...)
		c.hotFor = append(c.hotFor, make([]int, len(loads)-len(c.hotFor))...)
	}
	// EWMA update; an errored shard keeps its score (stale beats zero —
	// a zeroed score would read as "cold" exactly when the shard is in
	// trouble) and cannot be picked this tick.
	usable := 0
	var sum float64
	for i, l := range loads {
		if l.Err == "" {
			c.scores[i] = c.opts.Alpha*c.load(l) + (1-c.opts.Alpha)*c.scores[i]
			usable++
		}
		sum += c.scores[i]
	}
	d.Scores = append([]float64(nil), c.scores...)
	d.Mean = sum / float64(len(c.scores))
	if usable == 0 {
		d.Action = DecisionPollFailed
		if err != nil {
			d.Err = err.Error()
		}
		c.recordLocked(d)
		c.mu.Unlock()
		return d
	}

	// Hot detection with hysteresis: the hottest usable shard must clear
	// both the ratio over the fleet mean and the absolute floor, for
	// HotPolls consecutive ticks.
	hot := -1
	for i := range c.scores {
		if loads[i].Err != "" {
			c.hotFor[i] = 0
			continue
		}
		if c.scores[i] > c.opts.MinScore && c.scores[i] > c.opts.HotRatio*d.Mean {
			c.hotFor[i]++
			if hot < 0 || c.scores[i] > c.scores[hot] {
				hot = i
			}
		} else {
			c.hotFor[i] = 0
		}
	}

	switch {
	case hot < 0:
		d.Action = DecisionNone
	case c.paused:
		d.Shard, d.Source = hot, loads[hot].Primary
		d.Action = DecisionPaused
	case c.hotFor[hot] < c.opts.HotPolls:
		d.Shard, d.Source = hot, loads[hot].Primary
		d.Action = DecisionHold
		c.cm.holds.Inc()
	case c.migrating || (c.moved && now.Sub(c.lastMove) < c.opts.Cooldown):
		d.Shard, d.Source = hot, loads[hot].Primary
		d.Action = DecisionCooldown
		c.cm.holds.Inc()
	case hot >= len(c.spares) || len(c.spares[hot]) == 0:
		d.Shard, d.Source = hot, loads[hot].Primary
		d.Action = DecisionNoSpare
		c.cm.holds.Inc()
	default:
		d.Shard, d.Source = hot, loads[hot].Primary
		d.Target = c.spares[hot][0]
		if c.opts.DryRun {
			d.Action = DecisionPlan
			c.cm.plans.Inc()
			break
		}
		d.Action = DecisionMigrate
		c.spares[hot] = c.spares[hot][1:]
		c.migrating = true
	}

	if d.Action != DecisionMigrate {
		c.recordLocked(d)
		c.mu.Unlock()
		return d
	}
	c.mu.Unlock()

	start := c.clk.Now()
	moveErr := c.mv.Move(ctx, d.Shard, d.Target, true)
	c.cm.migrateNs.ObserveDuration(c.clk.Since(start))

	c.mu.Lock()
	c.migrating = false
	c.lastMove, c.moved = c.clk.Now(), true
	c.hotFor[d.Shard] = 0
	if moveErr != nil {
		d.Err = moveErr.Error()
		c.nFailures++
		c.cm.failures.Inc()
		// The move failed before the promotion (MigrateShard resumes the
		// source on every pre-promotion failure), so the target is still
		// a usable spare.
		c.spares[d.Shard] = append([]string{d.Target}, c.spares[d.Shard]...)
	} else {
		c.nMoves++
		c.cm.migrations.Inc()
		if c.opts.RecycleSources && d.Source != "" {
			c.spares[d.Shard] = append(c.spares[d.Shard], d.Source)
		}
	}
	c.recordLocked(d)
	c.mu.Unlock()
	return d
}

// recordLocked retains d as the latest decision and appends it to the
// bounded plan log. Callers hold c.mu.
func (c *Controller) recordLocked(d Decision) {
	c.last, c.decided = d, true
	c.plans = append(c.plans, d)
	if over := len(c.plans) - c.opts.PlanCapacity; over > 0 {
		c.plans = append(c.plans[:0], c.plans[over:]...)
	}
}

// Plan computes what the controller would do right now from the current
// EWMA state — without polling, acting, or advancing hysteresis. The
// admin "autopilot plan" op serves this.
func (c *Controller) Plan() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := Decision{At: c.clk.Now(), Shard: -1, Scores: append([]float64(nil), c.scores...)}
	if len(c.scores) == 0 {
		d.Action = DecisionNone
		return d
	}
	var sum float64
	for _, s := range c.scores {
		sum += s
	}
	d.Mean = sum / float64(len(c.scores))
	hot := -1
	for i, s := range c.scores {
		if s > c.opts.MinScore && s > c.opts.HotRatio*d.Mean && (hot < 0 || s > c.scores[hot]) {
			hot = i
		}
	}
	switch {
	case hot < 0:
		d.Action = DecisionNone
	case c.paused:
		d.Shard, d.Action = hot, DecisionPaused
	case c.hotFor[hot] < c.opts.HotPolls:
		d.Shard, d.Action = hot, DecisionHold
	case c.migrating || (c.moved && c.clk.Now().Sub(c.lastMove) < c.opts.Cooldown):
		d.Shard, d.Action = hot, DecisionCooldown
	case hot >= len(c.spares) || len(c.spares[hot]) == 0:
		d.Shard, d.Action = hot, DecisionNoSpare
	default:
		d.Shard, d.Target, d.Action = hot, c.spares[hot][0], DecisionPlan
	}
	return d
}

// Pause stops the controller from acting; it keeps polling and scoring
// (the EWMAs stay warm) but every eligible move is recorded as paused.
func (c *Controller) Pause() {
	c.mu.Lock()
	c.paused = true
	c.mu.Unlock()
}

// Resume lifts a pause.
func (c *Controller) Resume() {
	c.mu.Lock()
	c.paused = false
	c.mu.Unlock()
}

// Paused reports whether the controller is paused.
func (c *Controller) Paused() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.paused
}

// Plans returns the retained decision log, oldest first.
func (c *Controller) Plans() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.plans...)
}

// ShardScore is one shard's control-plane view in a Status readout.
type ShardScore struct {
	Shard  int     `json:"shard"`
	Score  float64 `json:"score"`
	HotFor int     `json:"hot_for"`
}

// ControllerStatus is the autopilot's admin readout.
type ControllerStatus struct {
	Paused     bool         `json:"paused"`
	DryRun     bool         `json:"dry_run,omitempty"`
	Migrating  bool         `json:"migrating,omitempty"`
	Polls      uint64       `json:"polls"`
	Migrations uint64       `json:"migrations"`
	Failures   uint64       `json:"failures"`
	Scores     []ShardScore `json:"scores"`
	// ScoreSpread is max/mean of the current scores (1 = perfectly even;
	// 0 when unknown) — the load-balance health number.
	ScoreSpread float64    `json:"score_spread"`
	Spares      [][]string `json:"spares"`
	Last        *Decision  `json:"last,omitempty"`
}

// Status returns the autopilot's current state.
func (c *Controller) Status() ControllerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ControllerStatus{
		Paused: c.paused, DryRun: c.opts.DryRun, Migrating: c.migrating,
		Polls: c.nPolls, Migrations: c.nMoves, Failures: c.nFailures,
	}
	var sum, max float64
	for i, s := range c.scores {
		st.Scores = append(st.Scores, ShardScore{Shard: i, Score: s, HotFor: c.hotFor[i]})
		sum += s
		if s > max {
			max = s
		}
	}
	if len(c.scores) > 0 && sum > 0 {
		st.ScoreSpread = max / (sum / float64(len(c.scores)))
	}
	st.Spares = make([][]string, len(c.spares))
	for i, s := range c.spares {
		st.Spares[i] = append([]string(nil), s...)
	}
	if c.decided {
		d := c.last
		st.Last = &d
	}
	return st
}

// String renders a decision for trace logs.
func (d Decision) String() string {
	switch d.Action {
	case DecisionMigrate, DecisionPlan:
		s := fmt.Sprintf("%s shard %d -> %s", d.Action, d.Shard, d.Target)
		if d.Err != "" {
			s += " (" + d.Err + ")"
		}
		return s
	case DecisionNone, DecisionPollFailed:
		return d.Action
	default:
		return fmt.Sprintf("%s (shard %d)", d.Action, d.Shard)
	}
}
