// Package placement is the cluster's control plane: who serves which
// shard, and who decides when that changes.
//
// The data plane (internal/cluster) executes grants against whatever
// endpoints it currently knows; this package owns that knowledge. A
// RouteTable is the single authoritative mapping shard → ordered replica
// address set, versioned by a monotone per-shard generation, that N
// stateless gateways consume through a watch/apply seam — every topology
// change (failover repair, live migration, retire) propagates to the
// whole gateway fleet instead of silently updating one process's private
// copy. A Controller closes the loop: it polls per-shard load signals
// (asks/s, queue depth, memo hit rate — the three signals
// manager.StatsSnapshot exports), scores them with an EWMA, and
// schedules live migrations under hysteresis, cooldown and a
// one-migration-at-a-time budget.
//
// The package deliberately depends only on clock and obs: the data plane
// satisfies its seams (cluster.Gateway is an Applier,
// cluster.Rebalancer a LoadSource and Mover), never the other way
// around, so control-plane policy can be tested without a single socket.
package placement

import (
	"fmt"
	"sync"
)

// Applier consumes route-table rows: one call per changed shard, with
// the shard's full ordered endpoint list. cluster.Gateway satisfies it
// with SetShardAddrs (the serving connection survives when its endpoint
// stays listed; otherwise the shard client's generation bump routes
// in-flight two-phase grants through the resume path).
type Applier interface {
	SetShardAddrs(shard int, addrs []string) error
}

// ShardRoute is one shard's row: its ordered replica endpoints and the
// monotone generation stamped on the last change.
type ShardRoute struct {
	Shard int      `json:"shard"`
	Gen   uint64   `json:"gen"`
	Addrs []string `json:"addrs"`
}

// Snapshot is an atomic copy of the whole table. Gen is the table
// generation (bumped once per applied change across all shards), the
// rows carry their own per-shard generations.
type Snapshot struct {
	Gen    uint64       `json:"gen"`
	Shards []ShardRoute `json:"shards"`
}

// Route returns shard's row (shared backing array; callers must not
// mutate) and reports whether the snapshot has that shard.
func (s Snapshot) Route(shard int) (ShardRoute, bool) {
	if shard < 0 || shard >= len(s.Shards) {
		return ShardRoute{}, false
	}
	return s.Shards[shard], true
}

// RouteTable is the shared, versioned shard → replica-set mapping. All
// mutations are serialized and fan out synchronously to every follower:
// when Set/Add/Remove/Apply returns, the whole registered fleet has the
// new row. Followers registered later catch up on registration (Follow
// applies the full current table first), so there is no window where a
// gateway serves from a row the table has already replaced.
type RouteTable struct {
	// applyMu serializes mutations *including* their fan-out, so two
	// concurrent changes can never reach followers in different orders.
	// It is held across Applier calls; appliers must not call back into
	// the table.
	applyMu sync.Mutex

	mu        sync.Mutex
	gen       uint64
	shards    []ShardRoute
	nextID    uint64
	followers map[uint64]Applier
	watchers  map[uint64]chan Snapshot

	// migrateMu serializes live migrations per shard across the whole
	// fleet: every Rebalancer over a table-attached gateway locks the
	// shard here, not in its private client, so two gateways can never
	// run concurrent promotions of the same shard (same-epoch double
	// promotion is a split brain).
	migrateMu []sync.Mutex
}

// NewRouteTable builds a table with one row per shard. Every row starts
// at generation 1 and must be non-empty.
func NewRouteTable(addrs [][]string) (*RouteTable, error) {
	t := &RouteTable{
		followers: make(map[uint64]Applier),
		watchers:  make(map[uint64]chan Snapshot),
		migrateMu: make([]sync.Mutex, len(addrs)),
	}
	for i, a := range addrs {
		if len(a) == 0 {
			return nil, fmt.Errorf("placement: shard %d has no endpoints", i)
		}
		t.shards = append(t.shards, ShardRoute{Shard: i, Gen: 1, Addrs: append([]string(nil), a...)})
	}
	t.gen = 1
	return t, nil
}

// MustRouteTable is NewRouteTable that panics on error (tests, examples).
func MustRouteTable(addrs [][]string) *RouteTable {
	t, err := NewRouteTable(addrs)
	if err != nil {
		panic(err)
	}
	return t
}

// Shards returns the number of shards the table routes.
func (t *RouteTable) Shards() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.shards)
}

// Gen returns the table generation.
func (t *RouteTable) Gen() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gen
}

// Snapshot returns an atomic copy of the table.
func (t *RouteTable) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

func (t *RouteTable) snapshotLocked() Snapshot {
	s := Snapshot{Gen: t.gen, Shards: make([]ShardRoute, len(t.shards))}
	for i, r := range t.shards {
		s.Shards[i] = ShardRoute{Shard: i, Gen: r.Gen, Addrs: append([]string(nil), r.Addrs...)}
	}
	return s
}

// Addrs returns a copy of shard's current endpoint list.
func (t *RouteTable) Addrs(shard int) ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if shard < 0 || shard >= len(t.shards) {
		return nil, fmt.Errorf("placement: shard %d out of range (%d shards)", shard, len(t.shards))
	}
	return append([]string(nil), t.shards[shard].Addrs...), nil
}

// Set replaces shard's endpoint list, bumps its generation, and applies
// the new row to every follower before returning. A list equal to the
// current one is a no-op (no generation bump, no fan-out).
func (t *RouteTable) Set(shard int, addrs []string) error {
	t.applyMu.Lock()
	defer t.applyMu.Unlock()
	return t.setLocked(shard, addrs)
}

// setLocked is Set under applyMu (held by the caller).
func (t *RouteTable) setLocked(shard int, addrs []string) error {
	if len(addrs) == 0 {
		return fmt.Errorf("placement: shard %d needs at least one endpoint", shard)
	}
	t.mu.Lock()
	if shard < 0 || shard >= len(t.shards) {
		t.mu.Unlock()
		return fmt.Errorf("placement: shard %d out of range (%d shards)", shard, len(t.shards))
	}
	if equalAddrs(t.shards[shard].Addrs, addrs) {
		t.mu.Unlock()
		return nil
	}
	t.shards[shard].Addrs = append([]string(nil), addrs...)
	t.shards[shard].Gen++
	t.gen++
	row := t.shards[shard]
	followers, snap := t.fanoutLocked()
	t.mu.Unlock()
	t.publish(followers, []ShardRoute{row}, snap)
	return nil
}

// Add appends addr to shard's row (no-op when already listed). Adding
// is always safe mid-flight: a fresh follower never wins an election
// while a live higher-epoch primary exists.
func (t *RouteTable) Add(shard int, addr string) error {
	t.applyMu.Lock()
	defer t.applyMu.Unlock()
	addrs, err := t.Addrs(shard)
	if err != nil {
		return err
	}
	for _, a := range addrs {
		if a == addr {
			return nil
		}
	}
	return t.setLocked(shard, append(addrs, addr))
}

// Remove drops addr from shard's row (the retire step of a migration).
// The last endpoint cannot be removed; an unlisted addr is a no-op.
func (t *RouteTable) Remove(shard int, addr string) error {
	t.applyMu.Lock()
	defer t.applyMu.Unlock()
	addrs, err := t.Addrs(shard)
	if err != nil {
		return err
	}
	kept := addrs[:0]
	for _, a := range addrs {
		if a != addr {
			kept = append(kept, a)
		}
	}
	if len(kept) == len(addrs) {
		return nil
	}
	if len(kept) == 0 {
		return fmt.Errorf("placement: cannot remove shard %d's last endpoint %s", shard, addr)
	}
	return t.setLocked(shard, kept)
}

// Apply merges a snapshot into the table: every row whose generation is
// strictly higher than the local one replaces it (the local generation
// jumps to the row's, keeping it monotone); stale and equal rows are
// ignored. This is how a gateway fleet syncs from another fleet's table
// dump — applying the same snapshot twice, or two snapshots out of
// order, converges to the newest row per shard. It reports how many
// rows were applied.
func (t *RouteTable) Apply(s Snapshot) (int, error) {
	t.applyMu.Lock()
	defer t.applyMu.Unlock()
	t.mu.Lock()
	var changed []ShardRoute
	for _, row := range s.Shards {
		if row.Shard < 0 || row.Shard >= len(t.shards) {
			t.mu.Unlock()
			return 0, fmt.Errorf("placement: snapshot routes shard %d, table has %d shards", row.Shard, len(t.shards))
		}
		if len(row.Addrs) == 0 {
			t.mu.Unlock()
			return 0, fmt.Errorf("placement: snapshot routes shard %d to no endpoints", row.Shard)
		}
		if row.Gen <= t.shards[row.Shard].Gen {
			continue
		}
		t.shards[row.Shard] = ShardRoute{Shard: row.Shard, Gen: row.Gen, Addrs: append([]string(nil), row.Addrs...)}
		changed = append(changed, t.shards[row.Shard])
	}
	if len(changed) == 0 {
		t.mu.Unlock()
		return 0, nil
	}
	t.gen++
	followers, snap := t.fanoutLocked()
	t.mu.Unlock()
	t.publish(followers, changed, snap)
	return len(changed), nil
}

// fanoutLocked copies the follower list and snapshots the table for
// publication outside t.mu (appliers take their own locks).
func (t *RouteTable) fanoutLocked() ([]Applier, Snapshot) {
	followers := make([]Applier, 0, len(t.followers))
	for _, f := range t.followers {
		followers = append(followers, f)
	}
	return followers, t.snapshotLocked()
}

// publish pushes changed rows to followers (synchronously, still under
// applyMu — ordering) and the full snapshot to watchers (latest-wins,
// never blocking).
func (t *RouteTable) publish(followers []Applier, rows []ShardRoute, snap Snapshot) {
	for _, f := range followers {
		for _, row := range rows {
			// The table guarantees in-range shards and non-empty rows, so
			// an applier error means a fleet misconfiguration (wrong shard
			// count) that Follow already rejected; nothing to do here.
			_ = f.SetShardAddrs(row.Shard, row.Addrs)
		}
	}
	// Watcher sends stay under t.mu (they never block — latest-wins on a
	// buffered channel), which excludes the cancel-side close: a send on
	// a closed watch channel is impossible.
	t.mu.Lock()
	for _, ch := range t.watchers {
		select {
		case ch <- snap:
		default:
			// Replace the pending (stale) snapshot with the newest: a slow
			// watcher always observes the latest table.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- snap:
			default:
			}
		}
	}
	t.mu.Unlock()
}

// Follow registers an applier and immediately applies the full current
// table to it, so a gateway constructed from an older snapshot converges
// before the first mutation lands. Every later change is applied
// synchronously, in mutation order, before the mutating call returns.
// Follow fails (and registers nothing) when the initial apply reports an
// error — an applier built for a different shard count.
// The returned function unregisters the applier.
func (t *RouteTable) Follow(ap Applier) (func(), error) {
	t.applyMu.Lock()
	defer t.applyMu.Unlock()
	t.mu.Lock()
	snap := t.snapshotLocked()
	t.mu.Unlock()
	for _, row := range snap.Shards {
		if err := ap.SetShardAddrs(row.Shard, row.Addrs); err != nil {
			return nil, fmt.Errorf("placement: follower rejected shard %d: %w", row.Shard, err)
		}
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.followers[id] = ap
	t.mu.Unlock()
	return func() {
		// applyMu excludes an in-flight publish, so after unfollow
		// returns the applier is guaranteed to receive nothing more.
		t.applyMu.Lock()
		defer t.applyMu.Unlock()
		t.mu.Lock()
		delete(t.followers, id)
		t.mu.Unlock()
	}, nil
}

// Watch returns a channel receiving the table snapshot after every
// change, latest-wins: a slow consumer skips intermediate versions but
// always observes the newest. The returned function cancels the watch
// and closes the channel.
func (t *RouteTable) Watch() (<-chan Snapshot, func()) {
	ch := make(chan Snapshot, 1)
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.watchers[id] = ch
	t.mu.Unlock()
	return ch, func() {
		t.mu.Lock()
		_, ok := t.watchers[id]
		delete(t.watchers, id)
		t.mu.Unlock()
		if ok {
			close(ch)
		}
	}
}

// MigrateLock locks shard for one live migration across every gateway
// attached to this table and returns the unlock. The zero cost of a
// shared table buying fleet-wide migration exclusion is the reason the
// data plane asks the table, not its private client, for this lock.
func (t *RouteTable) MigrateLock(shard int) func() {
	mu := &t.migrateMu[shard]
	mu.Lock()
	return mu.Unlock
}

func equalAddrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
