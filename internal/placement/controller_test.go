package placement

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// scriptSource replays a fixed sequence of load readouts; the last entry
// repeats once the script runs out.
type scriptSource struct {
	mu     sync.Mutex
	script [][]ShardLoad
	err    error
	calls  int
}

func (s *scriptSource) Loads(ctx context.Context) ([]ShardLoad, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.calls
	s.calls++
	if len(s.script) == 0 {
		return nil, s.err
	}
	if i >= len(s.script) {
		i = len(s.script) - 1
	}
	return s.script[i], s.err
}

type recMover struct {
	mu    sync.Mutex
	err   error
	moves []string // "shard->target"
}

func (m *recMover) Move(ctx context.Context, shard int, target string, retire bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !retire {
		panic("controller must retire sources")
	}
	m.moves = append(m.moves, shardMove(shard, target))
	return m.err
}

func (m *recMover) all() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.moves...)
}

func shardMove(shard int, target string) string {
	return string(rune('0'+shard)) + "->" + target
}

// testClock is a manually advanced clock (timers still real, unused by Tick).
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) clock() clock.Clock {
	return clock.Func(func() time.Time {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.now
	})
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func load(shard int, rate float64) ShardLoad {
	return ShardLoad{Shard: shard, Primary: "p" + string(rune('0'+shard)), AskRate: rate, MemoHitRate: 1}
}

// hotCold is a steady readout with shard 0 hot and shard 1 cold.
func hotCold() []ShardLoad { return []ShardLoad{load(0, 100), load(1, 1)} }

func newTestController(src LoadSource, mv Mover, tc *testClock, mut func(*ControllerOptions)) *Controller {
	opts := ControllerOptions{
		Alpha:    1, // no smoothing: tests script exact loads
		HotPolls: 2,
		Cooldown: 10 * time.Second,
		Spares:   [][]string{{"spare0a", "spare0b"}, {"spare1a"}},
		Clock:    tc.clock(),
	}
	if mut != nil {
		mut(&opts)
	}
	return NewController(src, mv, opts)
}

func TestControllerDetectsAndMigrates(t *testing.T) {
	tc := &testClock{}
	src := &scriptSource{script: [][]ShardLoad{hotCold()}}
	mv := &recMover{}
	reg := obs.NewRegistry()
	c := newTestController(src, mv, tc, func(o *ControllerOptions) { o.Metrics = reg })

	d := c.Tick(context.Background())
	if d.Action != DecisionHold || d.Shard != 0 || d.Source != "p0" {
		t.Fatalf("poll 1 = %+v, want hold on shard 0", d)
	}
	if !strings.Contains(d.String(), "shard 0") {
		t.Fatalf("String() = %q", d.String())
	}

	d = c.Tick(context.Background())
	if d.Action != DecisionMigrate || d.Target != "spare0a" || d.Err != "" {
		t.Fatalf("poll 2 = %+v, want migrate to spare0a", d)
	}
	if got := mv.all(); len(got) != 1 || got[0] != shardMove(0, "spare0a") {
		t.Fatalf("moves = %v", got)
	}

	st := c.Status()
	if st.Migrations != 1 || st.Failures != 0 || st.Polls != 2 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Spares[0]) != 1 || st.Spares[0][0] != "spare0b" {
		t.Fatalf("spare not consumed: %+v", st.Spares)
	}
	if st.Last == nil || st.Last.Action != DecisionMigrate {
		t.Fatalf("Last = %+v", st.Last)
	}
	if st.ScoreSpread <= 1 {
		t.Fatalf("skewed scores must have spread > 1, got %v", st.ScoreSpread)
	}
	if reg.Snapshot().Counters["ix_autopilot_migrations_total"] != 1 {
		t.Fatal("migration counter not incremented")
	}

	// The move reset hysteresis; once it is satisfied again, cooldown
	// still holds the next move until the clock advances.
	d = c.Tick(context.Background())
	if d.Action != DecisionHold {
		t.Fatalf("post-migrate tick = %+v, want hold", d)
	}
	d = c.Tick(context.Background())
	if d.Action != DecisionCooldown {
		t.Fatalf("eligible-again tick = %+v, want cooldown", d)
	}
	tc.advance(11 * time.Second)
	d = c.Tick(context.Background())
	if d.Action != DecisionMigrate || d.Target != "spare0b" {
		t.Fatalf("second migrate = %+v", d)
	}

	// Spares exhausted: hold, don't crash.
	tc.advance(11 * time.Second)
	c.Tick(context.Background())
	d = c.Tick(context.Background())
	if d.Action != DecisionNoSpare {
		t.Fatalf("exhausted spares = %+v, want no-spare", d)
	}
}

func TestControllerHysteresisNoFlap(t *testing.T) {
	tc := &testClock{}
	// A single noisy spike, then back to even: hotFor must reset and no
	// migration ever fires.
	even := []ShardLoad{load(0, 10), load(1, 10)}
	src := &scriptSource{script: [][]ShardLoad{even, {load(0, 100), load(1, 1)}, even, even}}
	mv := &recMover{}
	c := newTestController(src, mv, tc, func(o *ControllerOptions) { o.HotPolls = 3 })

	var actions []string
	for i := 0; i < 6; i++ {
		actions = append(actions, c.Tick(context.Background()).Action)
	}
	if got := mv.all(); len(got) != 0 {
		t.Fatalf("noisy trace migrated: %v (actions %v)", got, actions)
	}
	if actions[1] != DecisionHold || actions[2] != DecisionNone {
		t.Fatalf("actions = %v, want spike held then reset", actions)
	}
}

func TestControllerIdleFloor(t *testing.T) {
	tc := &testClock{}
	// Skewed but tiny: MinScore keeps an idle cluster still.
	src := &scriptSource{script: [][]ShardLoad{{load(0, 0.4), load(1, 0.01)}}}
	mv := &recMover{}
	c := newTestController(src, mv, tc, func(o *ControllerOptions) { o.MinScore = 1 })
	for i := 0; i < 4; i++ {
		if d := c.Tick(context.Background()); d.Action != DecisionNone {
			t.Fatalf("idle tick = %+v, want none", d)
		}
	}
}

func TestControllerPauseResumePlanDryRun(t *testing.T) {
	tc := &testClock{}
	src := &scriptSource{script: [][]ShardLoad{hotCold()}}
	mv := &recMover{}
	c := newTestController(src, mv, tc, nil)

	if p := c.Plan(); p.Action != DecisionNone || len(p.Scores) != 0 {
		t.Fatalf("pre-poll Plan = %+v", p)
	}

	c.Pause()
	if !c.Paused() {
		t.Fatal("Paused() = false after Pause")
	}
	for i := 0; i < 4; i++ {
		if d := c.Tick(context.Background()); d.Action != DecisionPaused {
			t.Fatalf("paused tick = %+v", d)
		}
	}
	if p := c.Plan(); p.Action != DecisionPaused {
		t.Fatalf("paused Plan = %+v", p)
	}
	if len(mv.all()) != 0 {
		t.Fatal("paused controller migrated")
	}

	c.Resume()
	// Paused ticks kept the EWMA warm and hysteresis satisfied: Plan now
	// proposes (without acting), the next tick executes.
	if p := c.Plan(); p.Action != DecisionPlan || p.Target != "spare0a" {
		t.Fatalf("post-resume Plan = %+v", p)
	}
	if len(mv.all()) != 0 {
		t.Fatal("Plan must not execute")
	}
	if d := c.Tick(context.Background()); d.Action != DecisionMigrate {
		t.Fatalf("post-resume tick = %+v", d)
	}

	// Dry-run: plans, never moves, spare not consumed.
	src2 := &scriptSource{script: [][]ShardLoad{hotCold()}}
	mv2 := &recMover{}
	c2 := newTestController(src2, mv2, tc, func(o *ControllerOptions) { o.DryRun = true })
	c2.Tick(context.Background())
	d := c2.Tick(context.Background())
	if d.Action != DecisionPlan || d.Target != "spare0a" {
		t.Fatalf("dry-run tick = %+v", d)
	}
	d = c2.Tick(context.Background())
	if d.Action != DecisionPlan || d.Target != "spare0a" {
		t.Fatalf("dry-run must not consume spares: %+v", d)
	}
	if len(mv2.all()) != 0 {
		t.Fatal("dry-run migrated")
	}
	if st := c2.Status(); !st.DryRun {
		t.Fatal("Status().DryRun = false")
	}
}

func TestControllerMoveFailureRestoresSpare(t *testing.T) {
	tc := &testClock{}
	src := &scriptSource{script: [][]ShardLoad{hotCold()}}
	mv := &recMover{err: errBoom}
	c := newTestController(src, mv, tc, nil)

	c.Tick(context.Background())
	d := c.Tick(context.Background())
	if d.Action != DecisionMigrate || d.Err != "boom" {
		t.Fatalf("failed migrate = %+v", d)
	}
	st := c.Status()
	if st.Failures != 1 || st.Migrations != 0 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Spares[0]) != 2 || st.Spares[0][0] != "spare0a" {
		t.Fatalf("failed move must restore the spare: %+v", st.Spares)
	}
	if !strings.Contains(d.String(), "boom") {
		t.Fatalf("String() = %q", d.String())
	}

	// After cooldown the same spare is retried.
	mv.err = nil
	tc.advance(11 * time.Second)
	c.Tick(context.Background())
	d = c.Tick(context.Background())
	if d.Action != DecisionMigrate || d.Target != "spare0a" || d.Err != "" {
		t.Fatalf("retry = %+v", d)
	}
}

func TestControllerRecycleSources(t *testing.T) {
	tc := &testClock{}
	src := &scriptSource{script: [][]ShardLoad{hotCold()}}
	mv := &recMover{}
	c := newTestController(src, mv, tc, func(o *ControllerOptions) { o.RecycleSources = true })
	c.Tick(context.Background())
	c.Tick(context.Background())
	st := c.Status()
	if len(st.Spares[0]) != 2 || st.Spares[0][1] != "p0" {
		t.Fatalf("retired source not recycled: %+v", st.Spares)
	}
}

func TestControllerErroredShardSkipped(t *testing.T) {
	tc := &testClock{}
	// Shard 0 is hot, then its readout fails: the stale score survives
	// but the shard is never picked while errored.
	hot := hotCold()
	errored := []ShardLoad{{Shard: 0, Err: "unreachable"}, load(1, 1)}
	src := &scriptSource{script: [][]ShardLoad{hot, errored, errored}}
	mv := &recMover{}
	c := newTestController(src, mv, tc, func(o *ControllerOptions) { o.HotPolls = 1 })

	if d := c.Tick(context.Background()); d.Action != DecisionMigrate {
		t.Fatalf("tick 1 = %+v", d)
	}
	tc.advance(11 * time.Second)
	d := c.Tick(context.Background())
	if d.Action != DecisionNone {
		t.Fatalf("errored-shard tick = %+v, want none", d)
	}
	if d.Scores[0] == 0 {
		t.Fatal("errored shard's score must carry over, not zero")
	}

	// All shards errored: poll-failed.
	allErr := []ShardLoad{{Shard: 0, Err: "x"}, {Shard: 1, Err: "y"}}
	src2 := &scriptSource{script: [][]ShardLoad{allErr}, err: errBoom}
	c2 := newTestController(src2, mv, tc, nil)
	if d := c2.Tick(context.Background()); d.Action != DecisionPollFailed || d.Err != "boom" {
		t.Fatalf("all-errored tick = %+v", d)
	}
}

func TestControllerPollFailed(t *testing.T) {
	tc := &testClock{}
	src := &scriptSource{err: errBoom}
	c := newTestController(src, &recMover{}, tc, nil)
	d := c.Tick(context.Background())
	if d.Action != DecisionPollFailed || d.Err != "boom" {
		t.Fatalf("tick = %+v", d)
	}
	if d.String() != DecisionPollFailed {
		t.Fatalf("String() = %q", d.String())
	}
	if st := c.Status(); st.Polls != 1 || st.Last == nil {
		t.Fatalf("status = %+v", st)
	}
}

func TestControllerMissAndQueueWeights(t *testing.T) {
	c := NewController(nil, nil, ControllerOptions{QueueWeight: 2, MissWeight: 1})
	// rate 10 with 0% hit → 10*(1+1) = 20; plus queue 3*2 = 26.
	got := c.load(ShardLoad{AskRate: 10, MemoHitRate: 0, QueueDepth: 3})
	if got != 26 {
		t.Fatalf("load = %v, want 26", got)
	}
	// Negative MissWeight disables the miss surcharge.
	c2 := NewController(nil, nil, ControllerOptions{MissWeight: -1})
	if got := c2.load(ShardLoad{AskRate: 10, MemoHitRate: 0}); got != 10 {
		t.Fatalf("load = %v, want 10", got)
	}
}

func TestControllerPlansLogBounded(t *testing.T) {
	tc := &testClock{}
	src := &scriptSource{script: [][]ShardLoad{{load(0, 1), load(1, 1)}}}
	c := newTestController(src, &recMover{}, tc, func(o *ControllerOptions) { o.PlanCapacity = 3 })
	for i := 0; i < 10; i++ {
		c.Tick(context.Background())
	}
	if got := c.Plans(); len(got) != 3 {
		t.Fatalf("plan log len = %d, want 3", len(got))
	}
}

func TestControllerRun(t *testing.T) {
	src := &scriptSource{script: [][]ShardLoad{{load(0, 1), load(1, 1)}}}
	c := NewController(src, &recMover{}, ControllerOptions{Interval: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { c.Run(ctx); close(done) }()
	deadline := time.After(5 * time.Second)
	for c.Status().Polls < 3 {
		select {
		case <-deadline:
			t.Fatal("Run never polled")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
}
