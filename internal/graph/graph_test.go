package graph

import (
	"strings"
	"testing"

	"repro/internal/paper"
	"repro/internal/parse"
)

func TestFromExprCounts(t *testing.T) {
	g := FromExpr(parse.MustParse("a - b"))
	// start, end, a, b
	if len(g.Nodes) != 4 {
		t.Errorf("nodes: got %d want 4", len(g.Nodes))
	}
	// start->a, a->b, b->end
	if len(g.Edges) != 3 {
		t.Errorf("edges: got %d want 3", len(g.Edges))
	}
	if got := g.Actions(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("actions: %v", got)
	}
}

func TestBranchingGraph(t *testing.T) {
	g := FromExpr(parse.MustParse("a | b | c"))
	splits := 0
	for _, n := range g.Nodes {
		if n.Kind == KindSplit || n.Kind == KindJoin {
			splits++
		}
	}
	if splits != 2 {
		t.Errorf("split/join nodes: got %d want 2", splits)
	}
	// start->split, split->a|b|c, a|b|c->join, join->end = 8 edges
	if len(g.Edges) != 8 {
		t.Errorf("edges: got %d want 8", len(g.Edges))
	}
}

func TestIterationLoopEdge(t *testing.T) {
	g := FromExpr(parse.MustParse("(a - b)*"))
	back := 0
	for _, e := range g.Edges {
		if e.Back {
			back++
		}
	}
	if back != 1 {
		t.Errorf("back edges: got %d want 1", back)
	}
}

func TestDOTOutput(t *testing.T) {
	g := FromExpr(paper.Fig6CapacityRestriction())
	dot := g.DOT()
	for _, frag := range []string{
		"digraph interaction",
		"rankdir=LR",
		`label="call($p,$x)"`,
		`label="perform($p,$x)"`,
		"doublecircle", // multiplier / parallel quantifier
		"shape=box",
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output lacks %q:\n%s", frag, dot)
		}
	}
}

func TestASCIIOutput(t *testing.T) {
	g := FromExpr(paper.Fig3PatientConstraint())
	out := g.ASCII()
	for _, frag := range []string{
		"for all p",
		"iter *",
		"or |",
		"for some x",
		"[call($p,$x)]",
		"par-iter #",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("ASCII output lacks %q:\n%s", frag, out)
		}
	}
	if strings.Count(out, "\n") < 5 {
		t.Errorf("ASCII tree suspiciously small:\n%s", out)
	}
}

func TestGraphRoundTripViaSource(t *testing.T) {
	e := paper.Fig7Coupled()
	g := FromExpr(e)
	if !g.Source.Equal(e) {
		t.Error("graph should retain its source expression")
	}
}

func TestEmptyAndMultRender(t *testing.T) {
	g := FromExpr(parse.MustParse("mult(3, a?) - ()"))
	dot := g.DOT()
	if !strings.Contains(dot, `label="3"`) {
		t.Errorf("multiplier label missing:\n%s", dot)
	}
	ascii := g.ASCII()
	if !strings.Contains(ascii, "mult ×3") {
		t.Errorf("mult missing in ASCII:\n%s", ascii)
	}
}
