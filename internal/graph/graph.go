// Package graph implements interaction graphs, the graphical user-
// oriented view of interaction expressions (Sec 2 of the paper).
// Interaction graphs are merely a graphical notation of interaction
// expressions — "just like syntax charts constitute a graphical
// representation of context-free grammars" — so a Graph is constructed
// from an expression and renders it as a left-to-right traversal diagram:
// as Graphviz DOT for faithful drawing, or as an indented ASCII tree for
// terminals.
//
// The visual conventions follow the paper's mnemonics: a single circle
// ("either or") marks disjunction branchings where one branch must be
// chosen, a double circle ("as well as") marks parallel branchings where
// all branches are traversed, and a triple circle marks arbitrarily
// parallel branchings. Quantifier circles carry their parameter,
// multiplier circles their multiplicity.
package graph

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// NodeKind classifies the nodes of an interaction graph.
type NodeKind int

const (
	// KindStart is the graph entry point (left end).
	KindStart NodeKind = iota
	// KindEnd is the graph exit point (right end).
	KindEnd
	// KindAction is an atomic action (drawn as a rectangle).
	KindAction
	// KindSplit opens an operator region (a circle in the paper).
	KindSplit
	// KindJoin closes an operator region.
	KindJoin
)

// Node is one node of an interaction graph.
type Node struct {
	ID    int
	Kind  NodeKind
	Label string  // action text or operator symbol
	Op    expr.Op // for splits/joins: the operator
}

// Edge is a directed edge between two node IDs.
type Edge struct {
	From, To int
	Back     bool // loop-back edge of an iteration
}

// Graph is an interaction graph: a rendering-oriented view of an
// interaction expression. The source expression is retained, making the
// notation round-trip trivially (Sec 2: graphs and expressions are two
// notations for the same thing).
type Graph struct {
	Source *expr.Expr
	Nodes  []Node
	Edges  []Edge
	start  int
	end    int
}

// FromExpr builds the interaction graph of an expression.
func FromExpr(e *expr.Expr) *Graph {
	g := &Graph{Source: e}
	g.start = g.node(KindStart, "start", 0)
	g.end = g.node(KindEnd, "end", 0)
	first, last := g.build(e)
	g.edge(g.start, first, false)
	g.edge(last, g.end, false)
	return g
}

func (g *Graph) node(k NodeKind, label string, op expr.Op) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: k, Label: label, Op: op})
	return id
}

func (g *Graph) edge(from, to int, back bool) {
	g.Edges = append(g.Edges, Edge{From: from, To: to, Back: back})
}

// opSymbol maps operators to the circle mnemonics of the paper.
func opSymbol(e *expr.Expr) string {
	switch e.Op {
	case expr.OpOption:
		return "?"
	case expr.OpSeqIter:
		return "*"
	case expr.OpParIter:
		return "((( )))" // arbitrarily parallel: three circles
	case expr.OpPar:
		return "(( ))" // as well as: double circle
	case expr.OpOr:
		return "( )" // either or: single circle
	case expr.OpAnd:
		return "&"
	case expr.OpSync:
		return "@"
	case expr.OpMult:
		return fmt.Sprintf("%d", e.N)
	case expr.OpAnyQ:
		return "some " + e.Param
	case expr.OpAllQ:
		return "all " + e.Param
	case expr.OpSyncQ:
		return "sync " + e.Param
	case expr.OpConQ:
		return "con " + e.Param
	}
	return e.Op.String()
}

// build emits nodes/edges for e and returns its entry and exit node IDs.
func (g *Graph) build(e *expr.Expr) (first, last int) {
	switch e.Op {
	case expr.OpAtom:
		n := g.node(KindAction, e.Atom.String(), expr.OpAtom)
		return n, n
	case expr.OpEmpty:
		n := g.node(KindSplit, "ε", expr.OpEmpty)
		return n, n
	case expr.OpSeq:
		first = -1
		prev := -1
		for _, k := range e.Kids {
			f, l := g.build(k)
			if first < 0 {
				first = f
			} else {
				g.edge(prev, f, false)
			}
			prev = l
		}
		return first, prev
	case expr.OpOption, expr.OpSeqIter, expr.OpParIter, expr.OpMult,
		expr.OpAnyQ, expr.OpAllQ, expr.OpSyncQ, expr.OpConQ:
		split := g.node(KindSplit, opSymbol(e), e.Op)
		join := g.node(KindJoin, opSymbol(e), e.Op)
		f, l := g.build(e.Kids[0])
		g.edge(split, f, false)
		g.edge(l, join, false)
		if e.Op == expr.OpOption {
			g.edge(split, join, false) // bypass branch
		}
		if e.Op == expr.OpSeqIter {
			g.edge(join, split, true) // loop back
			g.edge(split, join, false)
		}
		return split, join
	case expr.OpPar, expr.OpOr, expr.OpAnd, expr.OpSync:
		split := g.node(KindSplit, opSymbol(e), e.Op)
		join := g.node(KindJoin, opSymbol(e), e.Op)
		for _, k := range e.Kids {
			f, l := g.build(k)
			g.edge(split, f, false)
			g.edge(l, join, false)
		}
		return split, join
	}
	panic(fmt.Sprintf("graph: unknown op %v", e.Op))
}

// Start returns the ID of the entry node.
func (g *Graph) Start() int { return g.start }

// End returns the ID of the exit node.
func (g *Graph) End() int { return g.end }

// Actions returns the labels of all action nodes in emission order.
func (g *Graph) Actions() []string {
	var out []string
	for _, n := range g.Nodes {
		if n.Kind == KindAction {
			out = append(out, n.Label)
		}
	}
	return out
}

// DOT renders the graph in Graphviz dot syntax, rectangles for
// activities and circles for operator nodes, left to right like the
// figures of the paper.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph interaction {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes {
		attr := ""
		switch n.Kind {
		case KindStart:
			attr = "shape=point"
		case KindEnd:
			attr = "shape=doublecircle, label=\"\", width=0.15"
		case KindAction:
			attr = fmt.Sprintf("shape=box, label=%q", n.Label)
		case KindSplit, KindJoin:
			shape := "circle"
			if n.Op == expr.OpPar || n.Op == expr.OpAllQ || n.Op == expr.OpMult {
				shape = "doublecircle"
			}
			if n.Op == expr.OpParIter {
				shape = "tripleoctagon"
			}
			attr = fmt.Sprintf("shape=%s, label=%q, fontsize=10", shape, n.Label)
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, attr)
	}
	for _, e := range g.Edges {
		if e.Back {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, constraint=false];\n", e.From, e.To)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders the expression structure as an indented tree using
// box-drawing characters — the terminal-friendly view of the graph.
func (g *Graph) ASCII() string {
	var b strings.Builder
	renderTree(&b, g.Source, "", true, true)
	return b.String()
}

func treeLabel(e *expr.Expr) string {
	switch e.Op {
	case expr.OpAtom:
		return "[" + e.Atom.String() + "]"
	case expr.OpEmpty:
		return "(ε)"
	case expr.OpOption:
		return "option ?"
	case expr.OpSeq:
		return "seq ─"
	case expr.OpSeqIter:
		return "iter *"
	case expr.OpPar:
		return "par ‖ (as well as)"
	case expr.OpParIter:
		return "par-iter # (arbitrarily parallel)"
	case expr.OpOr:
		return "or | (either or)"
	case expr.OpAnd:
		return "and &"
	case expr.OpSync:
		return "sync @ (coupling)"
	case expr.OpMult:
		return fmt.Sprintf("mult ×%d", e.N)
	case expr.OpAnyQ:
		return "for some " + e.Param
	case expr.OpAllQ:
		return "for all " + e.Param
	case expr.OpSyncQ:
		return "sync over " + e.Param
	case expr.OpConQ:
		return "con over " + e.Param
	}
	return e.Op.String()
}

func renderTree(b *strings.Builder, e *expr.Expr, prefix string, isLast, isRoot bool) {
	if isRoot {
		b.WriteString(treeLabel(e))
		b.WriteByte('\n')
	} else {
		b.WriteString(prefix)
		if isLast {
			b.WriteString("└── ")
		} else {
			b.WriteString("├── ")
		}
		b.WriteString(treeLabel(e))
		b.WriteByte('\n')
		if isLast {
			prefix += "    "
		} else {
			prefix += "│   "
		}
	}
	for i, k := range e.Kids {
		renderTree(b, k, prefix, i == len(e.Kids)-1, false)
	}
}
