package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/expr"
	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/placement"
)

// Gateway coordinates one coupled interaction expression across N remote
// shard servers, one per coupling operand. It implements
// manager.Coordinator, so it can be used like a manager — including being
// served over the wire protocol itself (cmd/ixgateway), which lets
// ordinary clients talk to the cluster without knowing it is one.
//
// An action is permitted iff every shard whose alphabet contains it
// permits it. Grants run in two phases: reservations are taken at every
// involved shard in ascending shard order (a fixed global order, which
// precludes deadlock between concurrent multi-shard grants), then all are
// confirmed — or the ones already granted are aborted when any shard
// refuses.
type Gateway struct {
	parts  []*expr.Expr
	alphas []*expr.Alphabet
	idx    *manager.NameIndex
	shards []*ShardClient

	mu     sync.Mutex
	nextTk manager.Ticket
	grants map[manager.Ticket]grantEntry

	reg     *obs.Registry // nil: metrics disabled
	clk     clock.Clock
	gm      gatewayMetrics
	traces  *traceRing // nil: grant tracing disabled
	traceID atomic.Uint64

	// table, when non-nil, is the shared control-plane route table this
	// gateway follows; unfollow detaches it on Close. Route mutations
	// (migration add/retire) then go through the table so every gateway
	// of the fleet converges, not just this one.
	table    *placement.RouteTable
	unfollow func()
}

// gatewayMetrics counts two-phase protocol outcomes (nil handles no-op).
type gatewayMetrics struct {
	reserves        *obs.Counter
	reserveRefusals *obs.Counter
	confirms        *obs.Counter
	confirmFailures *obs.Counter
	aborts          *obs.Counter
	resumes         *obs.Counter
	grantNs         *obs.Histogram
}

func newGatewayMetrics(reg *obs.Registry) gatewayMetrics {
	return gatewayMetrics{
		reserves:        reg.Counter("ix_gateway_reserves_total"),
		reserveRefusals: reg.Counter("ix_gateway_reserve_refusals_total"),
		confirms:        reg.Counter("ix_gateway_confirms_total"),
		confirmFailures: reg.Counter("ix_gateway_confirm_failures_total"),
		aborts:          reg.Counter("ix_gateway_aborts_total"),
		resumes:         reg.Counter("ix_gateway_resumes_total"),
		grantNs:         reg.Histogram("ix_gateway_grant_ns"),
	}
}

// grantEntry records one gateway-level grant and when it was taken, so
// grants abandoned by dead clients can be expired (their shard-side
// reservations are reclaimed by the managers' own timeouts). The action
// rides along so a confirm interrupted by a shard failover can be
// resumed (re-reserved and committed) on the promoted replica.
type grantEntry struct {
	act    expr.Action
	grants []shardGrant
	at     time.Time
	tr     *GrantTrace // nil when tracing is disabled
}

// grantTTL bounds how long an unsettled gateway grant is remembered. It
// comfortably exceeds any sane reservation timeout: by the time it
// fires, every shard has long aborted the underlying reservations.
const grantTTL = 10 * time.Minute

// shardGrant is one shard's reservation within a gateway-level grant.
// gen is the shard client's failover generation at reserve time: if it
// moved by settle time, the ticket may have died with the old primary
// and an unknown-ticket answer means "resume", not "lost".
type shardGrant struct {
	shard  int
	ticket manager.Ticket
	gen    uint64
}

// Partition splits a coupled expression into its shard operands: the
// operands of a top-level coupling, or the expression itself otherwise.
func Partition(e *expr.Expr) []*expr.Expr {
	if e.Op == expr.OpSync {
		return e.Kids
	}
	return []*expr.Expr{e}
}

// GatewayOptions configure a replicated gateway.
type GatewayOptions struct {
	// ReadFromFollowers routes Try probes to follower replicas (see
	// ShardOptions.ReadFromFollowers).
	ReadFromFollowers bool
	// DrainRetryDelay is handed to every shard client (see
	// ShardOptions.DrainRetryDelay).
	DrainRetryDelay time.Duration
	// Metrics, if non-nil, makes the gateway (and its shard clients)
	// report into the registry: two-phase reserve/confirm outcomes, grant
	// latency, and per-shard asks/drain-waits/failovers/heals.
	Metrics *obs.Registry
	// TraceCapacity sizes the completed-grant trace ring. Zero means
	// DefaultTraceCapacity; negative disables grant tracing.
	TraceCapacity int
	// Dialer replaces the TCP transport for every shard connection (see
	// ShardOptions.Dialer). Nil means TCP.
	Dialer func(addr string) (net.Conn, error)
	// Clock injects the time source for grant TTL expiry, latency metrics
	// and trace timestamps, and is handed to every shard client. Nil
	// means the wall clock.
	Clock clock.Clock
	// RouteTable attaches the gateway to a shared control-plane route
	// table (internal/placement): the gateway's initial shard addresses
	// come from the table (the replicas argument may be nil), every later
	// table change is applied to this gateway before the mutating call
	// returns, and the gateway's own route mutations (migration
	// add/retire) go through the table so the whole fleet converges. The
	// table must route exactly the expression's shard count.
	RouteTable *placement.RouteTable
}

// NewGateway builds a gateway for e whose i-th coupling operand is served
// by the shard at addrs[i]. Shard connections are dialed lazily, so the
// gateway can be constructed before every shard server is up. The
// routing index is precomputed from the operand alphabets; no per-action
// alphabet scan happens at grant time.
func NewGateway(e *expr.Expr, addrs []string) (*Gateway, error) {
	replicas := make([][]string, len(addrs))
	for i, a := range addrs {
		replicas[i] = []string{a}
	}
	return NewReplicatedGateway(e, replicas, GatewayOptions{})
}

// NewReplicatedGateway builds a gateway whose i-th coupling operand is
// served by the replica set replicas[i] (an ordered endpoint list; see
// NewShardClientSet). On a primary failure the shard client elects and
// promotes the most advanced surviving replica and the gateway resumes
// in-flight two-phase grants idempotently: a confirm answered from the
// replicated dedup window settles without re-executing, an unknown
// ticket after a failover re-reserves and commits on the new primary.
func NewReplicatedGateway(e *expr.Expr, replicas [][]string, opts GatewayOptions) (*Gateway, error) {
	parts := Partition(e)
	if opts.RouteTable != nil {
		if got := opts.RouteTable.Shards(); got != len(parts) {
			return nil, fmt.Errorf("cluster: expression has %d shards, route table has %d", len(parts), got)
		}
		// The table is authoritative; a replicas argument is redundant at
		// best and stale at worst, so the attached form takes nil.
		if replicas != nil {
			return nil, fmt.Errorf("cluster: pass nil replicas with RouteTable (the table owns the addresses)")
		}
		snap := opts.RouteTable.Snapshot()
		replicas = make([][]string, len(snap.Shards))
		for i, row := range snap.Shards {
			replicas[i] = row.Addrs
		}
	}
	if len(parts) != len(replicas) {
		return nil, fmt.Errorf("cluster: expression has %d shards, got %d replica sets", len(parts), len(replicas))
	}
	g := &Gateway{parts: parts, grants: make(map[manager.Ticket]grantEntry)}
	g.reg = opts.Metrics
	g.clk = clock.Or(opts.Clock)
	g.gm = newGatewayMetrics(opts.Metrics)
	tcap := opts.TraceCapacity
	if tcap == 0 {
		tcap = DefaultTraceCapacity
	}
	g.traces = newTraceRing(tcap) // nil when tcap < 0
	for i, part := range parts {
		if len(replicas[i]) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no endpoints", i)
		}
		g.alphas = append(g.alphas, expr.AlphabetOf(part))
		g.shards = append(g.shards, NewShardClientSet(replicas[i], ShardOptions{
			ReadFromFollowers: opts.ReadFromFollowers,
			DrainRetryDelay:   opts.DrainRetryDelay,
			Metrics:           opts.Metrics,
			Label:             strconv.Itoa(i),
			Dialer:            opts.Dialer,
			Clock:             opts.Clock,
		}))
	}
	g.idx = manager.NewNameIndex(g.alphas)
	if opts.RouteTable != nil {
		// Register as a follower: the initial full apply resynchronizes the
		// gateway against any table change that landed since the snapshot
		// above, and every later change reaches it before the mutating call
		// returns.
		unfollow, err := opts.RouteTable.Follow(g)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.table, g.unfollow = opts.RouteTable, unfollow
	}
	return g, nil
}

// RouteTable returns the shared route table the gateway follows (nil
// when it owns its addresses privately).
func (g *Gateway) RouteTable() *placement.RouteTable { return g.table }

// routeAdd adds an endpoint to a shard's route — through the shared
// table (converging the whole fleet) when attached, else privately.
func (g *Gateway) routeAdd(shard int, addr string) error {
	if g.table != nil {
		return g.table.Add(shard, addr)
	}
	g.shards[shard].AddAddr(addr)
	return nil
}

// routeRemove drops an endpoint from a shard's route (see routeAdd).
func (g *Gateway) routeRemove(shard int, addr string) error {
	if g.table != nil {
		return g.table.Remove(shard, addr)
	}
	g.shards[shard].RemoveAddr(addr)
	return nil
}

// migrateLock takes the shard's migration exclusion: fleet-wide via the
// shared table when attached (two gateways promoting the same shard
// concurrently would mint two primaries of the same epoch — split
// brain), else this gateway's private per-shard lock.
func (g *Gateway) migrateLock(shard int) func() {
	if g.table != nil {
		return g.table.MigrateLock(shard)
	}
	sc := g.shards[shard]
	sc.migrateMu.Lock()
	return sc.migrateMu.Unlock
}

// MetricsRegistry exposes the gateway's obs registry (nil when metrics
// are disabled); the wire server discovers it via manager.MetricsSource.
func (g *Gateway) MetricsRegistry() *obs.Registry { return g.reg }

// newTrace starts a grant trace when tracing is enabled (nil otherwise;
// GrantTrace methods no-op on nil).
func (g *Gateway) newTrace(a expr.Action) *GrantTrace {
	if g.traces == nil {
		return nil
	}
	return &GrantTrace{
		ID:      g.traceID.Add(1),
		Action:  a.String(),
		Start:   g.clk.Now(),
		Outcome: OutcomePending,
	}
}

// finishTrace stamps the outcome and publishes the trace to the ring.
func (g *Gateway) finishTrace(tr *GrantTrace, outcome string) {
	if tr == nil {
		return
	}
	tr.End = g.clk.Now()
	tr.Outcome = outcome
	g.traces.add(tr)
}

// Traces returns the gateway's grant traces: completed grants from the
// ring (oldest first), then still-pending ask-path grants.
func (g *Gateway) Traces() []GrantTrace {
	out := g.traces.list()
	g.mu.Lock()
	for t, e := range g.grants {
		if e.tr != nil {
			tr := e.tr.clone()
			tr.Ticket = t
			out = append(out, tr)
		}
	}
	g.mu.Unlock()
	return out
}

// Shards returns the shard clients (diagnostics and tests).
func (g *Gateway) Shards() []*ShardClient { return g.shards }

// SetShardAddrs replaces shard i's endpoint list — the gateway-side
// route-table update of a live migration. Requests in flight are not
// dropped: the serving connection survives when its endpoint stays
// listed, and otherwise the shard client's generation bump routes
// outstanding two-phase grants through the resume path (see
// ShardClient.SetAddrs).
func (g *Gateway) SetShardAddrs(shard int, addrs []string) error {
	if shard < 0 || shard >= len(g.shards) {
		return fmt.Errorf("cluster: shard %d out of range (%d shards)", shard, len(g.shards))
	}
	if len(addrs) == 0 {
		return fmt.Errorf("cluster: shard %d needs at least one endpoint", shard)
	}
	g.shards[shard].SetAddrs(addrs)
	return nil
}

// Route returns the ascending shard indices whose alphabet contains a.
func (g *Gateway) Route(a expr.Action) []int { return g.idx.Route(a) }

// Ping verifies every shard is reachable (and dials the connections, so
// later grants start warm).
func (g *Gateway) Ping(ctx context.Context) error {
	for i, sc := range g.shards {
		if _, err := sc.Final(ctx); err != nil {
			return fmt.Errorf("cluster: shard %d (%s): %w", i, sc.Addr(), err)
		}
	}
	return nil
}

// askShards runs phase 1: reservations at every involved shard in
// ascending order, rolling back on the first refusal.
func (g *Gateway) askShards(ctx context.Context, a expr.Action, involved []int, tr *GrantTrace) ([]shardGrant, error) {
	grants := make([]shardGrant, 0, len(involved))
	for _, i := range involved {
		start := g.clk.Now()
		t, err := g.shards[i].Ask(ctx, a)
		tr.event(PhaseReserve, i, t, start, g.clk.Since(start), err)
		if err != nil {
			g.gm.reserveRefusals.Inc()
			g.abortGrants(grants, tr)
			return nil, err
		}
		g.gm.reserves.Inc()
		grants = append(grants, shardGrant{shard: i, ticket: t, gen: g.shards[i].Generation()})
	}
	return grants, nil
}

// abortGrants releases reservations after a refusal. Abort errors are
// secondary (the grant already failed); an unreachable shard's
// reservation falls to its manager's reservation timeout, the paper's
// remedy for clients that die inside the critical region.
func (g *Gateway) abortGrants(grants []shardGrant, tr *GrantTrace) {
	ctx, cancel := context.WithTimeout(context.Background(), shardSettleTimeout)
	defer cancel()
	for _, gr := range grants {
		start := g.clk.Now()
		err := g.shards[gr.shard].Abort(ctx, gr.ticket)
		tr.event(PhaseAbort, gr.shard, gr.ticket, start, g.clk.Since(start), err)
	}
}

// confirmGrants runs phase 2: confirm every reservation in grant order.
// A confirm that comes back ErrUnknownTicket after the shard failed over
// is resumed: the reservation died with the old primary without ever
// committing (under sync replication a committed confirm is answered
// from the promoted follower's replicated dedup window instead), so the
// grant is re-reserved and committed atomically on the new primary. The
// resumes run only after every reservation of this grant is settled:
// a resume is a fresh Ask, and taking one while still holding
// higher-numbered reservations would break the global acquisition order
// that keeps concurrent multi-shard grants deadlock-free.
func (g *Gateway) confirmGrants(ctx context.Context, a expr.Action, grants []shardGrant, tr *GrantTrace) error {
	var firstErr error
	var resume []int
	for _, gr := range grants {
		start := g.clk.Now()
		err := g.shards[gr.shard].Confirm(ctx, gr.ticket)
		tr.event(PhaseConfirm, gr.shard, gr.ticket, start, g.clk.Since(start), err)
		if errors.Is(err, manager.ErrUnknownTicket) && g.shards[gr.shard].Generation() != gr.gen {
			resume = append(resume, gr.shard)
			continue
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, shard := range resume {
		g.gm.resumes.Inc()
		start := g.clk.Now()
		err := g.shards[shard].Request(ctx, a)
		tr.event(PhaseResume, shard, 0, start, g.clk.Since(start), err)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		g.gm.confirms.Inc()
	} else {
		g.gm.confirmFailures.Inc()
	}
	return firstErr
}

// shardSettleTimeout bounds best-effort aborts after a failed grant and
// subscription setup.
const shardSettleTimeout = 10 * time.Second

// Ask reserves a at every involved shard and returns a gateway ticket
// for the combined reservation.
func (g *Gateway) Ask(ctx context.Context, a expr.Action) (manager.Ticket, error) {
	involved := g.idx.Route(a)
	if len(involved) == 0 {
		return 0, fmt.Errorf("%w: %s (not in any shard's alphabet)", manager.ErrDenied, a)
	}
	tr := g.newTrace(a)
	grants, err := g.askShards(ctx, a, involved, tr)
	if err != nil {
		g.finishTrace(tr, OutcomeRefused)
		return 0, err
	}
	now := g.clk.Now()
	g.mu.Lock()
	// Lazily expire grants abandoned by clients that died between Ask and
	// Confirm/Abort, so the map stays bounded over a gateway's lifetime.
	for k, e := range g.grants {
		if now.Sub(e.at) >= grantTTL {
			g.traces.add(e.tr) // keep the abandoned trace, still "pending"
			delete(g.grants, k)
		}
	}
	g.nextTk++
	t := g.nextTk
	if tr != nil {
		tr.Ticket = t
	}
	g.grants[t] = grantEntry{act: a, grants: grants, at: now, tr: tr}
	g.mu.Unlock()
	return t, nil
}

// takeGrants claims the shard reservations behind a gateway ticket.
func (g *Gateway) takeGrants(t manager.Ticket) (grantEntry, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.grants[t]
	if !ok {
		return grantEntry{}, manager.ErrUnknownTicket
	}
	delete(g.grants, t)
	return e, nil
}

// Confirm settles a gateway-level grant: every shard reservation is
// confirmed (resuming across shard failovers; see confirmGrants).
func (g *Gateway) Confirm(ctx context.Context, t manager.Ticket) error {
	e, err := g.takeGrants(t)
	if err != nil {
		return err
	}
	cerr := g.confirmGrants(ctx, e.act, e.grants, e.tr)
	if cerr == nil {
		g.gm.grantNs.ObserveDuration(g.clk.Since(e.at))
		g.finishTrace(e.tr, OutcomeConfirmed)
	} else {
		g.finishTrace(e.tr, OutcomeFailed)
	}
	return cerr
}

// Abort releases a gateway-level grant without a state transition.
func (g *Gateway) Abort(ctx context.Context, t manager.Ticket) error {
	e, err := g.takeGrants(t)
	if err != nil {
		return err
	}
	var firstErr error
	for _, gr := range e.grants {
		start := g.clk.Now()
		aerr := g.shards[gr.shard].Abort(ctx, gr.ticket)
		e.tr.event(PhaseAbort, gr.shard, gr.ticket, start, g.clk.Since(start), aerr)
		if aerr != nil && firstErr == nil {
			firstErr = aerr
		}
	}
	g.gm.aborts.Inc()
	g.finishTrace(e.tr, OutcomeAborted)
	return firstErr
}

// Request performs the atomic distributed grant. A single-shard action
// takes the fast path — the shard manager's own atomic request, one round
// trip; a multi-shard action runs the full two-phase protocol.
func (g *Gateway) Request(ctx context.Context, a expr.Action) error {
	involved := g.idx.Route(a)
	switch len(involved) {
	case 0:
		return fmt.Errorf("%w: %s (not in any shard's alphabet)", manager.ErrDenied, a)
	case 1:
		return g.shards[involved[0]].Request(ctx, a)
	}
	start := g.clk.Now()
	tr := g.newTrace(a)
	grants, err := g.askShards(ctx, a, involved, tr)
	if err != nil {
		g.finishTrace(tr, OutcomeRefused)
		return err
	}
	err = g.confirmGrants(ctx, a, grants, tr)
	if err == nil {
		g.gm.grantNs.ObserveDuration(g.clk.Since(start))
		g.finishTrace(tr, OutcomeConfirmed)
	} else {
		g.finishTrace(tr, OutcomeFailed)
	}
	return err
}

// RequestMany performs a burst of atomic distributed grants and reports
// one error per action (nil = confirmed). Single-shard actions — the
// common case under a well-partitioned coupling — are grouped by
// destination shard and shipped as one framed multi-op message per shard
// per round, with the per-shard frames in flight concurrently; a shard
// running with group commit then settles the whole frame with one fsync.
// Multi-shard actions run the ordinary two-phase grant one by one, after
// the grouped frames, so a burst's cost is one round per shard plus one
// two-phase round per cross-shard action — not one round trip per action.
//
// Actions of the same burst are applied in an arbitrary serial order
// relative to each other (they came from concurrent clients); each is
// individually admitted against the state the earlier ones produced,
// exactly as if the clients had raced their individual Requests.
func (g *Gateway) RequestMany(ctx context.Context, actions []expr.Action) []error {
	errs := make([]error, len(actions))
	perShard := make(map[int][]int) // shard → indices of its single-shard actions
	var multi []int
	for i, a := range actions {
		involved := g.idx.Route(a)
		switch len(involved) {
		case 0:
			errs[i] = fmt.Errorf("%w: %s (not in any shard's alphabet)", manager.ErrDenied, a)
		case 1:
			perShard[involved[0]] = append(perShard[involved[0]], i)
		default:
			multi = append(multi, i)
		}
	}
	var wg sync.WaitGroup
	for shard, idxs := range perShard {
		wg.Add(1)
		go func(shard int, idxs []int) {
			defer wg.Done()
			burst := make([]expr.Action, len(idxs))
			for j, i := range idxs {
				burst[j] = actions[i]
			}
			for j, err := range g.shards[shard].RequestMany(ctx, burst) {
				errs[idxs[j]] = err
			}
		}(shard, idxs)
	}
	wg.Wait()
	for _, i := range multi {
		errs[i] = g.Request(ctx, actions[i])
	}
	return errs
}

// Try reports whether every involved shard currently permits a. The
// shards are probed concurrently.
func (g *Gateway) Try(ctx context.Context, a expr.Action) (bool, error) {
	involved := g.idx.Route(a)
	if len(involved) == 0 {
		return false, nil
	}
	oks := make([]bool, len(involved))
	errs := make([]error, len(involved))
	var wg sync.WaitGroup
	for j, i := range involved {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			oks[j], errs[j] = g.shards[i].Try(ctx, a)
		}(j, i)
	}
	wg.Wait()
	for j := range involved {
		if errs[j] != nil {
			return false, errs[j]
		}
		if !oks[j] {
			return false, nil
		}
	}
	return true, nil
}

// Final reports whether every shard's confirmed word is complete.
func (g *Gateway) Final(ctx context.Context) (bool, error) {
	for _, sc := range g.shards {
		fin, err := sc.Final(ctx)
		if err != nil {
			return false, err
		}
		if !fin {
			return false, nil
		}
	}
	return true, nil
}

// Subscribe aggregates per-shard subscriptions for a: the combined
// status is the conjunction of the involved shards' statuses, and the
// returned channel informs on combined flips. The per-shard streams are
// self-healing: when a shard's primary dies (or the shard migrates), the
// shard client resubscribes through its failover election and the fresh
// subscription's initial inform resynchronizes that shard's slot in the
// conjunction — the subscriber keeps receiving correct informs without
// resubscribing. The channel closes only when the subscription is
// canceled or the gateway is closed. Satisfies manager.Coordinator.
func (g *Gateway) Subscribe(a expr.Action) (<-chan manager.Inform, func(), error) {
	involved := g.idx.Route(a)
	out := make(chan manager.Inform, 16)
	if len(involved) == 0 {
		out <- manager.Inform{Action: a, Permissible: false}
		close(out)
		return out, func() {}, nil
	}
	// The context bounds only the subscription setup round trips; the
	// subscriptions themselves live until canceled (ShardClient.Subscribe
	// binds their lifetime to the cancel function, not to this context).
	ctx, cancelCtx := context.WithTimeout(context.Background(), shardSettleTimeout)
	defer cancelCtx()

	var mu sync.Mutex
	status := make(map[int]bool, len(involved))
	combined, combinedKnown := false, false
	var wg sync.WaitGroup
	cancels := make([]func(), 0, len(involved))
	for _, i := range involved {
		ch, cancel, err := g.shards[i].Subscribe(ctx, a)
		if err != nil {
			for _, c := range cancels {
				c()
			}
			return nil, nil, err
		}
		cancels = append(cancels, cancel)
		wg.Add(1)
		go func(i int, ch <-chan manager.Inform) {
			defer wg.Done()
			for inf := range ch {
				mu.Lock()
				status[i] = inf.Permissible
				now := len(status) == len(involved)
				for _, v := range status {
					now = now && v
				}
				flip := !combinedKnown || now != combined
				combinedKnown = true
				combined = now
				mu.Unlock()
				if flip {
					inf := manager.Inform{Action: a, Permissible: now}
					select {
					case out <- inf:
					default:
						// Drop the oldest pending inform to make room for
						// the newest: a slow subscriber loses intermediate
						// flips but always observes the latest status.
						select {
						case <-out:
						default:
						}
						select {
						case out <- inf:
						default:
						}
					}
				}
			}
		}(i, ch)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	cancelAll := func() {
		for _, c := range cancels {
			c()
		}
	}
	return out, cancelAll, nil
}

// Close releases all shard connections (detaching from the shared route
// table first, so no further fan-out reaches a closed gateway).
// Outstanding gateway tickets become unknown; their shard reservations
// fall to the managers' reservation timeouts.
func (g *Gateway) Close() error {
	if g.unfollow != nil {
		g.unfollow()
		g.unfollow = nil
	}
	var firstErr error
	for _, sc := range g.shards {
		if err := sc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
