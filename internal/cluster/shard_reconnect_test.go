package cluster

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/parse"
)

// ShardClient reconnect behaviour, synchronized on real readiness
// signals instead of sleeps: shard.start returns only after the listener
// is bound (net.Listen is synchronous), and the restart window is closed
// by a channel the workers select on — so the suite is deterministic
// under -race, where wall-clock sleeps routinely under-shoot.

// TestShardClientReconnect: a client survives a shard server crash and
// restart on the same address — idempotent probes fail fast while the
// server is down and resume transparently on a fresh connection once the
// listener is back, against the recovered (snapshot + log tail) state.
func TestShardClientReconnect(t *testing.T) {
	dir := t.TempDir()
	sh := &shard{t: t, e: parse.MustParse("(a - b)*"), opts: manager.Options{
		LogPath:       filepath.Join(dir, "actions.log"),
		SnapshotPath:  filepath.Join(dir, "state.snap"),
		SnapshotEvery: 1,
	}}
	sh.start()
	defer func() { sh.stop() }()

	cl := NewShardClient(sh.addr)
	defer cl.Close()

	if err := cl.Request(bg, act("a")); err != nil {
		t.Fatalf("request a: %v", err)
	}

	// Crash-stop the server. The listener is gone when stop returns, so
	// the client's next dial attempt cannot land in a half-down window.
	sh.stop()
	if ok, err := cl.Try(bg, act("b")); err == nil {
		t.Fatalf("try against a dead shard should fail, got ok=%v", ok)
	}

	// Restart in place on the same address; start returns with the
	// listener bound — the readiness signal, no sleep involved.
	sh.start()

	ok, err := cl.Try(bg, act("b"))
	if err != nil {
		t.Fatalf("try after restart: %v", err)
	}
	if !ok {
		t.Fatal("b should be permissible after recovery (a was confirmed)")
	}
	if got := sh.m.Steps(); got != 1 {
		t.Fatalf("recovered shard steps: got %d want 1", got)
	}
	if err := cl.Request(bg, act("b")); err != nil {
		t.Fatalf("request b after reconnect: %v", err)
	}
}

// TestShardClientReconnectConcurrent hammers one ShardClient from many
// goroutines across a restart: the reconnect path (invalidate + re-dial
// under the client mutex) must be race-free and every worker must make
// progress once the server is back. Workers gate on the restarted
// channel, not on time.
func TestShardClientReconnectConcurrent(t *testing.T) {
	sh := &shard{t: t, e: parse.MustParse("(a | b)*"), opts: manager.Options{}}
	sh.start()
	defer func() { sh.stop() }()

	cl := NewShardClient(sh.addr)
	defer cl.Close()
	if err := cl.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}

	restarted := make(chan struct{})
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Probes during the outage may fail; that is the contract.
			// After the restart signal every worker must succeed within
			// the deadline.
			<-restarted
			deadline := time.Now().Add(10 * time.Second)
			for {
				ok, err := cl.Try(bg, act("a"))
				if err == nil && ok {
					errs[w] = nil
					return
				}
				// A reachable shard answering ok=false is still failure
				// here (a must stay permissible); never leave a nil error
				// behind on the timeout path.
				errs[w] = fmt.Errorf("no progress (ok=%v, err=%v)", ok, err)
				if time.Now().After(deadline) {
					return
				}
			}
		}(w)
	}

	sh.stop()
	sh.start() // listener bound when this returns
	close(restarted)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d never recovered: %v", w, err)
		}
	}
}
