// Package cluster implements the distributed sharded coordination
// subsystem sketched at the end of Sec 7 of the paper: a top-level
// coupling y1 @ y2 @ ... @ yn is semantically a per-alphabet conjunction,
// so each operand can be executed by an independent interaction manager —
// here a remote one behind the JSON-lines TCP protocol of
// internal/manager. A Gateway fronts the shard servers, routes actions by
// a precomputed name index, and runs the two-phase
// reserve-in-global-order/confirm-all grant across the involved shards,
// aborting granted reservations when any shard refuses.
//
// The package talks to shards exclusively through the exported wire
// client of internal/manager, so any process serving the wire protocol
// (cmd/ixmanager, a test server, or another gateway) can be a shard.
package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/manager"
)

// ShardClient is a self-healing wire client for one shard server: it
// dials lazily, detects dead connections and re-dials. Operations whose
// request provably never reached the server (ErrSendFailed) are retried
// transparently on a fresh connection; operations that may have been
// processed (ErrConnLost mid-flight) are retried only if idempotent —
// exactly the queued-request discipline recovery demands.
type ShardClient struct {
	addr string

	mu sync.Mutex
	cl *manager.Client
}

// NewShardClient creates a client for the shard at addr. No connection is
// made until the first operation, so a gateway can be assembled before
// every shard server is up.
func NewShardClient(addr string) *ShardClient {
	return &ShardClient{addr: addr}
}

// Addr returns the shard server address.
func (s *ShardClient) Addr() string { return s.addr }

// client returns the live connection, dialing if necessary.
func (s *ShardClient) client() (*manager.Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cl != nil {
		return s.cl, nil
	}
	cl, err := manager.Dial(s.addr)
	if err != nil {
		return nil, err
	}
	s.cl = cl
	return cl, nil
}

// invalidate discards cl if it is still the current connection, so the
// next operation re-dials. Another goroutine may have reconnected
// already; its fresh connection is left alone.
func (s *ShardClient) invalidate(cl *manager.Client) {
	s.mu.Lock()
	if s.cl == cl {
		s.cl = nil
	}
	s.mu.Unlock()
	cl.Close()
}

// connErr reports whether err indicates a dead connection (as opposed to
// a protocol-level refusal, which must not trigger a reconnect).
func connErr(err error) bool {
	return errors.Is(err, manager.ErrConnLost) || errors.Is(err, manager.ErrSendFailed)
}

// retryable reports whether err may be retried on a fresh connection for
// an operation with the given idempotency.
func retryable(err error, idempotent bool) bool {
	if errors.Is(err, manager.ErrSendFailed) {
		return true // the request never left this machine
	}
	return idempotent && errors.Is(err, manager.ErrConnLost)
}

// do runs op against the current connection, reconnecting and retrying
// once when that is safe.
func (s *ShardClient) do(ctx context.Context, idempotent bool, op func(*manager.Client) error) error {
	for attempt := 0; ; attempt++ {
		cl, err := s.client()
		if err != nil {
			return err
		}
		err = op(cl)
		if err == nil {
			return nil
		}
		if connErr(err) {
			s.invalidate(cl)
		}
		if attempt > 0 || !retryable(err, idempotent) || ctx.Err() != nil {
			return err
		}
	}
}

// Ask reserves a at the shard (step 1/2 of the coordination protocol).
func (s *ShardClient) Ask(ctx context.Context, a expr.Action) (manager.Ticket, error) {
	var t manager.Ticket
	err := s.do(ctx, false, func(cl *manager.Client) error {
		var err error
		t, err = cl.Ask(ctx, a)
		return err
	})
	return t, err
}

// Confirm settles a granted ask. The manager treats a retried confirm of
// its most recently confirmed ticket as success, so a confirm whose
// reply was lost may be retried on a fresh connection without risking a
// double commit.
func (s *ShardClient) Confirm(ctx context.Context, t manager.Ticket) error {
	return s.do(ctx, true, func(cl *manager.Client) error { return cl.Confirm(ctx, t) })
}

// Abort releases a granted ask.
func (s *ShardClient) Abort(ctx context.Context, t manager.Ticket) error {
	return s.do(ctx, false, func(cl *manager.Client) error { return cl.Abort(ctx, t) })
}

// Request runs the atomic ask+confirm at the shard.
func (s *ShardClient) Request(ctx context.Context, a expr.Action) error {
	return s.do(ctx, false, func(cl *manager.Client) error { return cl.Request(ctx, a) })
}

// RequestMany ships a burst of atomic requests to the shard in one framed
// multi-op message and reports one error per action. Like Request the
// burst is not idempotent: only a send that provably never left this
// machine is retried on a fresh connection.
func (s *ShardClient) RequestMany(ctx context.Context, actions []expr.Action) []error {
	var errs []error
	err := s.do(ctx, false, func(cl *manager.Client) error {
		errs = cl.RequestMany(ctx, actions)
		// Surface a transport failure (the same error in every slot) to
		// the retry logic; per-action refusals are final results.
		if len(errs) > 0 && errs[0] != nil && connErr(errs[0]) {
			return errs[0]
		}
		return nil
	})
	if err != nil && errs == nil {
		errs = make([]error, len(actions))
		for i := range errs {
			errs[i] = err
		}
	}
	return errs
}

// Try probes a's status (idempotent: retried across reconnects).
func (s *ShardClient) Try(ctx context.Context, a expr.Action) (bool, error) {
	var ok bool
	err := s.do(ctx, true, func(cl *manager.Client) error {
		var err error
		ok, err = cl.Try(ctx, a)
		return err
	})
	return ok, err
}

// Final reports whether the shard's word is complete (idempotent).
func (s *ShardClient) Final(ctx context.Context) (bool, error) {
	var fin bool
	err := s.do(ctx, true, func(cl *manager.Client) error {
		var err error
		fin, err = cl.Final(ctx)
		return err
	})
	return fin, err
}

// Subscribe opens a subscription at the shard. The returned channel
// closes when the subscription is canceled or the connection dies;
// callers that outlive a reconnect resubscribe to resume informs.
func (s *ShardClient) Subscribe(ctx context.Context, a expr.Action) (<-chan manager.Inform, func(), error) {
	var ch <-chan manager.Inform
	var cancel func()
	err := s.do(ctx, true, func(cl *manager.Client) error {
		sub, err := cl.Subscribe(ctx, a)
		if err != nil {
			return err
		}
		ch = sub.C
		cancel = func() {
			cctx, cdone := context.WithTimeout(context.Background(), 5*time.Second)
			defer cdone()
			_ = cl.Unsubscribe(cctx, sub) // on a dead connection the channel is closed already
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return ch, cancel, nil
}

// Close tears down the connection (a later operation would re-dial).
func (s *ShardClient) Close() error {
	s.mu.Lock()
	cl := s.cl
	s.cl = nil
	s.mu.Unlock()
	if cl != nil {
		return cl.Close()
	}
	return nil
}
