// Package cluster implements the distributed sharded coordination
// subsystem sketched at the end of Sec 7 of the paper: a top-level
// coupling y1 @ y2 @ ... @ yn is semantically a per-alphabet conjunction,
// so each operand can be executed by an independent interaction manager —
// here a remote one behind the JSON-lines TCP protocol of
// internal/manager. A Gateway fronts the shard servers, routes actions by
// a precomputed name index, and runs the two-phase
// reserve-in-global-order/confirm-all grant across the involved shards,
// aborting granted reservations when any shard refuses.
//
// Each shard may be a replica set: an ordered list of servers replicating
// each other (internal/manager's primary/follower streams). The shard
// client elects the most advanced reachable replica — highest epoch, then
// primaries over followers, then most commits — promotes it if it is a
// follower, and fails over automatically when the connection dies or the
// server answers ErrNotPrimary (a deposed primary).
//
// The package talks to shards exclusively through the exported wire
// client of internal/manager, so any process serving the wire protocol
// (cmd/ixmanager, a test server, or another gateway) can be a shard.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/expr"
	"repro/internal/manager"
	"repro/internal/obs"
)

// ShardOptions configure a replica-set shard client.
type ShardOptions struct {
	// ReadFromFollowers routes idempotent status probes (Try, Final) to
	// follower replicas round-robin, offloading the primary. Probes are
	// advisory by nature (the answer can be stale the moment it arrives);
	// with async replication a follower's answer may additionally lag the
	// primary by the un-acked frames.
	ReadFromFollowers bool
	// DrainRetryDelay paces retries against a shard refusing with
	// ErrDraining (a migration is moving it). Zero keeps the historical
	// 2ms; a negative value disables the wait-out entirely, surfacing
	// ErrDraining to the caller — for callers that would rather reroute
	// than block. The wait is always context-cancellable.
	DrainRetryDelay time.Duration
	// Metrics, if non-nil, makes the shard client count asks (as a rate
	// meter), drain-waits, failover elections and subscription heals into
	// the registry. Label tags the metric names (e.g. the shard index) so
	// one gateway registry keeps its shards apart.
	Metrics *obs.Registry
	// Label distinguishes this shard's metrics inside a shared registry;
	// empty leaves the names unlabeled (single-shard setups).
	Label string
	// Dialer replaces the TCP transport for every connection the client
	// opens (elections, read offload, subscriptions). Nil means TCP; the
	// deterministic simulator (internal/sim) injects its in-memory
	// network here.
	Dialer func(addr string) (net.Conn, error)
	// Clock injects the time source for drain-retry pacing and
	// resubscription backoff. Nil means the wall clock.
	Clock clock.Clock
}

// shardMetrics caches the shard client's obs handles (nil-safe no-ops
// when ShardOptions.Metrics is nil).
type shardMetrics struct {
	asks       *obs.Meter
	drainWaits *obs.Counter
	failovers  *obs.Counter
	subHeals   *obs.Counter
}

// shardMetricName tags a base metric name with the shard label.
func shardMetricName(base, label string) string {
	if label == "" {
		return base
	}
	return base + `{shard="` + label + `"}`
}

func newShardMetrics(reg *obs.Registry, label string) shardMetrics {
	return shardMetrics{
		asks:       reg.Meter(shardMetricName("ix_shard_asks", label)),
		drainWaits: reg.Counter(shardMetricName("ix_shard_drain_waits_total", label)),
		failovers:  reg.Counter(shardMetricName("ix_shard_failovers_total", label)),
		subHeals:   reg.Counter(shardMetricName("ix_shard_sub_heals_total", label)),
	}
}

// ShardClient is a self-healing wire client for one shard — a single
// server or an ordered replica set. It dials lazily, detects dead
// connections, and on failure elects (and if necessary promotes) the most
// advanced reachable replica. Operations whose request provably never
// reached a server (ErrSendFailed) are retried transparently; operations
// that may have been processed (ErrConnLost mid-flight) are retried only
// if idempotent — exactly the queued-request discipline recovery demands.
type ShardClient struct {
	opts       ShardOptions
	drainDelay time.Duration // resolved ErrDraining retry pacing
	clk        clock.Clock
	metrics    shardMetrics

	mu     sync.Mutex
	addrs  []string // ordered endpoint list (the shard's route-table row)
	cur    int      // index of the endpoint cl is connected to
	cl     *manager.Client
	gen    uint64 // route-table generation: bumped on failover and endpoint changes
	closed bool

	rmu  sync.Mutex
	rcur int // read rotation cursor (follower offload)
	rcl  *manager.Client

	// smu guards the subscription mux table: one healing wire
	// subscription per distinct action, shared by every local subscriber.
	smu  sync.Mutex
	smux map[string]*subMux

	// migrateMu serializes live migrations of this shard (Rebalancer):
	// concurrent promotions from one epoch would split the brain.
	migrateMu sync.Mutex
}

// NewShardClient creates a client for the single shard server at addr.
// No connection is made until the first operation, so a gateway can be
// assembled before every shard server is up.
func NewShardClient(addr string) *ShardClient {
	return NewShardClientSet([]string{addr}, ShardOptions{})
}

// NewShardClientSet creates a client for an ordered replica set. The
// first reachable, most advanced replica serves; on disconnect the client
// fails over along the list, promoting a follower when no primary is
// left. A single-address set never issues role or promote ops, so it can
// front any Coordinator (e.g. another gateway), like NewShardClient
// always could.
func NewShardClientSet(addrs []string, opts ShardOptions) *ShardClient {
	s := &ShardClient{addrs: addrs, opts: opts, drainDelay: opts.DrainRetryDelay,
		clk: clock.Or(opts.Clock), smux: make(map[string]*subMux)}
	if s.drainDelay == 0 {
		s.drainDelay = drainRetryDelay
	}
	s.metrics = newShardMetrics(opts.Metrics, opts.Label)
	// The ask meter's rate window runs on the injected clock, so
	// per-shard client-side ask rates are deterministic under the
	// simulator's logical clock.
	obs.SetMeterClock(s.metrics.asks, func() int64 { return s.clk.Now().Unix() })
	return s
}

// dial opens one connection through the configured transport (TCP by
// default, the simulator's in-memory network when injected).
func (s *ShardClient) dial(addr string) (*manager.Client, error) {
	return manager.DialWith(addr, manager.DialOptions{Dialer: s.opts.Dialer})
}

// Addr returns the shard's first endpoint (diagnostics).
func (s *ShardClient) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addrs[0]
}

// Addrs returns a copy of the shard's ordered endpoint list.
func (s *ShardClient) Addrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.addrs...)
}

func (s *ShardClient) addrCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.addrs)
}

// Generation counts completed failovers and route-table updates that
// (may have) changed the serving endpoint. A gateway compares
// generations taken at reserve time and at confirm time: a bump in
// between means a ticket may have died with the old primary and the
// grant must be resumed instead of settled.
func (s *ShardClient) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// SetAddrs replaces the endpoint list — the route-table update a live
// migration ends with. The serving connection survives when its endpoint
// is still listed (requests in flight are not dropped); when it is not,
// the connection is invalidated and the generation bumps, so in-flight
// two-phase grants settle through the resume path instead of trusting a
// retired server. The read-offload rotation restarts against the new
// table either way. An empty list is ignored.
func (s *ShardClient) SetAddrs(addrs []string) {
	if len(addrs) == 0 {
		return
	}
	cp := append([]string(nil), addrs...)
	s.mu.Lock()
	cur := -1
	if s.cl != nil {
		curAddr := s.addrs[s.cur]
		for i, a := range cp {
			if a == curAddr {
				cur = i
				break
			}
		}
	}
	s.addrs = cp
	var stale *manager.Client
	if cur >= 0 {
		s.cur = cur
	} else {
		s.cur = 0
		if s.cl != nil {
			stale, s.cl = s.cl, nil
			s.gen++
		}
	}
	s.mu.Unlock()
	if stale != nil {
		stale.Close()
	}
	s.rmu.Lock()
	rcl := s.rcl
	s.rcl, s.rcur = nil, 0
	s.rmu.Unlock()
	if rcl != nil {
		rcl.Close()
	}
}

// AddAddr appends an endpoint to the route table (no-op when already
// listed). Adding is always safe mid-flight: a fresh follower never wins
// an election while a live higher-epoch primary exists.
func (s *ShardClient) AddAddr(addr string) {
	s.mu.Lock()
	for _, a := range s.addrs {
		if a == addr {
			s.mu.Unlock()
			return
		}
	}
	addrs := append(append([]string(nil), s.addrs...), addr)
	s.mu.Unlock()
	s.SetAddrs(addrs)
}

// RemoveAddr drops an endpoint from the route table (the retire step of
// a migration). Removing the serving endpoint invalidates the connection
// and bumps the generation; the last endpoint cannot be removed.
func (s *ShardClient) RemoveAddr(addr string) {
	s.mu.Lock()
	var addrs []string
	for _, a := range s.addrs {
		if a != addr {
			addrs = append(addrs, a)
		}
	}
	s.mu.Unlock()
	s.SetAddrs(addrs)
}

// electTimeout bounds each role probe and promotion during an election.
const electTimeout = 5 * time.Second

// client returns the live connection, electing a replica if necessary.
func (s *ShardClient) client(ctx context.Context) (*manager.Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, manager.ErrClosed
	}
	if s.cl != nil {
		return s.cl, nil
	}
	return s.electLocked(ctx)
}

// electLocked (re)connects: with a single endpoint it plainly dials;
// with a replica set it probes every endpoint's role and adopts the most
// advanced reachable replica — highest epoch first (a deposed primary
// must never win over the node that fenced it), then primaries over
// followers, then the most commits — promoting the winner when the set
// has no primary left. Callers hold s.mu.
func (s *ShardClient) electLocked(ctx context.Context) (*manager.Client, error) {
	if len(s.addrs) == 1 {
		cl, err := s.dial(s.addrs[0])
		if err != nil {
			return nil, err
		}
		s.cl = cl
		return cl, nil
	}
	type candidate struct {
		idx int
		cl  *manager.Client
		st  manager.ReplStatus
	}
	var cands []candidate
	var firstErr error
	for off := 0; off < len(s.addrs); off++ {
		idx := (s.cur + off) % len(s.addrs)
		cl, err := s.dial(s.addrs[idx])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, electTimeout)
		st, err := cl.Role(rctx)
		cancel()
		if err != nil {
			cl.Close()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		cands = append(cands, candidate{idx: idx, cl: cl, st: st})
	}
	if len(cands) == 0 {
		if firstErr == nil {
			firstErr = errors.New("cluster: no replica reachable")
		}
		return nil, fmt.Errorf("%w: %v", manager.ErrSendFailed, firstErr)
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if better(cands[i].st, cands[best].st) {
			best = i
		}
	}
	chosen := cands[best]
	for i, c := range cands {
		if i != best {
			c.cl.Close()
		}
	}
	promoted := false
	if chosen.st.Role != manager.RolePrimary {
		pctx, cancel := context.WithTimeout(ctx, electTimeout)
		_, err := chosen.cl.Promote(pctx)
		cancel()
		if err != nil {
			chosen.cl.Close()
			return nil, fmt.Errorf("cluster: promote %s: %w", s.addrs[chosen.idx], err)
		}
		promoted = true
	}
	// A promotion bumps the generation even on an unchanged endpoint: the
	// new epoch means tickets granted before the election may be gone.
	if chosen.idx != s.cur || promoted {
		s.gen++
		s.metrics.failovers.Inc()
	}
	s.cur = chosen.idx
	s.cl = chosen.cl
	return chosen.cl, nil
}

// BetterReplica reports whether replica status a outranks b in the
// failover election order: highest epoch first (a deposed primary must
// never win over the node that fenced it), then primaries over
// followers, then the most commits. Exported for the chaos harnesses
// (internal/sim), which pick the authoritative surviving replica with
// exactly the client's ordering.
func BetterReplica(a, b manager.ReplStatus) bool { return better(a, b) }

// DropConn severs the client's current primary connection without
// touching the server — a network blip between gateway and shard. The
// next operation redials through the ordinary failover election. Fault
// injection for the chaos harnesses (internal/sim).
func (s *ShardClient) DropConn() {
	s.mu.Lock()
	cl := s.cl
	s.cl = nil
	s.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// better orders replica candidates: epoch, then role, then position.
func better(a, b manager.ReplStatus) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	ap, bp := a.Role == manager.RolePrimary, b.Role == manager.RolePrimary
	if ap != bp {
		return ap
	}
	return a.Steps > b.Steps
}

// invalidate discards cl if it is still the current connection, so the
// next operation re-elects. Another goroutine may have reconnected
// already; its fresh connection is left alone.
func (s *ShardClient) invalidate(cl *manager.Client) {
	s.mu.Lock()
	if s.cl == cl {
		s.cl = nil
	}
	s.mu.Unlock()
	cl.Close()
}

// connErr reports whether err indicates a dead connection (as opposed to
// a protocol-level refusal, which must not trigger a reconnect).
func connErr(err error) bool {
	return errors.Is(err, manager.ErrConnLost) || errors.Is(err, manager.ErrSendFailed)
}

// failoverErr reports whether err should move the client to another
// replica: a dead connection, or a live server refusing writes because
// it is (or was deposed to) a follower.
func failoverErr(err error) bool {
	return connErr(err) || errors.Is(err, manager.ErrNotPrimary)
}

// retryable reports whether err may be retried on a fresh connection for
// an operation with the given idempotency. ErrNotPrimary is always
// retryable: the follower refused before doing anything.
func retryable(err error, idempotent bool) bool {
	if errors.Is(err, manager.ErrSendFailed) || errors.Is(err, manager.ErrNotPrimary) {
		return true // the request was not processed anywhere
	}
	return idempotent && errors.Is(err, manager.ErrConnLost)
}

// drainRetryDelay paces retries against a draining shard: the drain
// window closes when the migration promotes the target, so a short wait
// beats hammering the refusing server — but it sits on the client's
// request latency during a migration, so it stays small. This is the
// default; ShardOptions.DrainRetryDelay overrides it.
const drainRetryDelay = 2 * time.Millisecond

// do runs op against the current connection, failing over and retrying
// when that is safe. A replica set gets one retry per endpoint (a full
// failover sweep); a single server keeps the historical single retry.
// ErrDraining answers are waited out (they are transient by contract —
// a migration is about to repoint the shard) without burning a failover
// attempt; only the context bounds that wait.
func (s *ShardClient) do(ctx context.Context, idempotent bool, op func(*manager.Client) error) error {
	attempts := 0
	for {
		cl, err := s.client(ctx)
		if err == nil {
			err = op(cl)
			if err == nil {
				return nil
			}
			if errors.Is(err, manager.ErrDraining) {
				// Not admitted anywhere: always safe to retry. The server is
				// healthy, so keep the connection — once the target is
				// promoted it answers ErrNotPrimary and the ordinary
				// failover election takes over. A negative DrainRetryDelay
				// opts out of the wait: the caller sees ErrDraining and can
				// reroute instead of blocking on the migration window.
				if s.drainDelay < 0 {
					return err
				}
				s.metrics.drainWaits.Inc()
				t := s.clk.NewTimer(s.drainDelay)
				select {
				case <-ctx.Done():
					t.Stop()
					return err
				case <-t.C():
				}
				continue
			}
			if connErr(err) {
				s.invalidate(cl)
			} else if errors.Is(err, manager.ErrNotPrimary) {
				// The server is alive but deposed; drop the connection and let
				// the election find the replica that fenced it.
				s.invalidate(cl)
			}
		}
		attempts++
		if attempts > s.addrCount() || !retryable(err, idempotent) || ctx.Err() != nil {
			return err
		}
	}
}

// Ask reserves a at the shard (step 1/2 of the coordination protocol).
func (s *ShardClient) Ask(ctx context.Context, a expr.Action) (manager.Ticket, error) {
	s.metrics.asks.Mark(1)
	var t manager.Ticket
	err := s.do(ctx, false, func(cl *manager.Client) error {
		var err error
		t, err = cl.Ask(ctx, a)
		return err
	})
	return t, err
}

// Confirm settles a granted ask. The manager answers a retried confirm of
// a recently settled ticket from its replicated dedup window, so a
// confirm whose reply was lost may be retried on a fresh connection — or
// on the follower promoted after a failover — without risking a double
// commit.
func (s *ShardClient) Confirm(ctx context.Context, t manager.Ticket) error {
	return s.do(ctx, true, func(cl *manager.Client) error { return cl.Confirm(ctx, t) })
}

// Abort releases a granted ask.
func (s *ShardClient) Abort(ctx context.Context, t manager.Ticket) error {
	return s.do(ctx, false, func(cl *manager.Client) error { return cl.Abort(ctx, t) })
}

// Request runs the atomic ask+confirm at the shard.
func (s *ShardClient) Request(ctx context.Context, a expr.Action) error {
	s.metrics.asks.Mark(1)
	return s.do(ctx, false, func(cl *manager.Client) error { return cl.Request(ctx, a) })
}

// RequestMany ships a burst of atomic requests to the shard in one framed
// multi-op message and reports one error per action. Like Request the
// burst is not idempotent: only a send that provably never left this
// machine (or was refused whole by a follower) is retried.
func (s *ShardClient) RequestMany(ctx context.Context, actions []expr.Action) []error {
	s.metrics.asks.Mark(uint64(len(actions)))
	var errs []error
	err := s.do(ctx, false, func(cl *manager.Client) error {
		errs = cl.RequestMany(ctx, actions)
		// Surface a transport failure (the same error in every slot) to
		// the retry logic; per-action refusals are final results. A
		// frame refused whole by a draining manager (nothing admitted)
		// waits the drain window out like a single request would — but
		// only when EVERY slot drained: a nested gateway can mix
		// outcomes, and re-sending a burst with settled slots would
		// double-commit them.
		if len(errs) > 0 && errs[0] != nil && failoverErr(errs[0]) {
			return errs[0]
		}
		allDraining := len(errs) > 0
		for _, e := range errs {
			if !errors.Is(e, manager.ErrDraining) {
				allDraining = false
				break
			}
		}
		if allDraining {
			return errs[0]
		}
		return nil
	})
	if err != nil && errs == nil {
		errs = make([]error, len(actions))
		for i := range errs {
			errs[i] = err
		}
	}
	return errs
}

// Try probes a's status (idempotent: retried across reconnects). With
// ReadFromFollowers the probe is served by a follower replica when one
// answers, offloading the primary.
func (s *ShardClient) Try(ctx context.Context, a expr.Action) (bool, error) {
	var ok bool
	op := func(cl *manager.Client) error {
		var err error
		ok, err = cl.Try(ctx, a)
		return err
	}
	if s.readOffloaded(op) {
		return ok, nil
	}
	err := s.do(ctx, true, op)
	return ok, err
}

// Final reports whether the shard's word is complete (idempotent; served
// by a follower under ReadFromFollowers when one answers).
func (s *ShardClient) Final(ctx context.Context) (bool, error) {
	var fin bool
	op := func(cl *manager.Client) error {
		var err error
		fin, err = cl.Final(ctx)
		return err
	}
	if s.readOffloaded(op) {
		return fin, nil
	}
	err := s.do(ctx, true, op)
	return fin, err
}

// readOffloaded tries to serve a read on a follower connection and
// reports whether it succeeded; any failure falls back to the primary
// path (the next rotation will try another replica). The lock guards
// only the connection swap, not the wire call — the client multiplexes,
// so concurrent offloaded reads share the connection instead of
// convoying behind each other.
func (s *ShardClient) readOffloaded(op func(*manager.Client) error) bool {
	if !s.opts.ReadFromFollowers || s.addrCount() < 2 {
		return false
	}
	s.rmu.Lock()
	cl := s.rcl
	if cl == nil {
		s.mu.Lock()
		primary := s.cur
		addrs := append([]string(nil), s.addrs...)
		s.mu.Unlock()
		for off := 0; off < len(addrs); off++ {
			idx := (s.rcur + off) % len(addrs)
			if idx == primary {
				continue // the whole point is to not bother the primary
			}
			c, err := s.dial(addrs[idx])
			if err != nil {
				continue
			}
			cl, s.rcl = c, c
			s.rcur = idx + 1
			break
		}
	}
	s.rmu.Unlock()
	if cl == nil {
		return false
	}
	if err := op(cl); err != nil {
		s.rmu.Lock()
		if s.rcl == cl {
			s.rcl = nil
		}
		s.rmu.Unlock()
		cl.Close()
		return false
	}
	return true
}

// Subscribe opens a self-healing subscription at the shard: when the
// per-connection stream dies (the primary crashed, the shard migrated),
// the subscription resubscribes through the ordinary failover election
// and keeps delivering — the server's initial inform after each
// resubscription reports the then-current status, so no flip that
// matters is lost across the gap. ctx bounds only the initial setup; the
// subscription itself lives until the cancel function is called (or the
// client is closed), never on the setup context. The returned channel
// closes on cancel or client close.
//
// Subscriptions to the same action share one wire subscription (and one
// healing loop): N local subscribers cost the shard a single stream,
// and a failover heals once per action instead of once per subscriber.
// Joiners get their initial status from the shared stream's cache.
func (s *ShardClient) Subscribe(ctx context.Context, a expr.Action) (<-chan manager.Inform, func(), error) {
	key := a.Key()
	s.smu.Lock()
	defer s.smu.Unlock()
	if mux := s.smux[key]; mux != nil {
		if ch, cancel, ok := mux.join(); ok {
			return ch, cancel, nil
		}
		delete(s.smux, key) // wound down concurrently: open a fresh stream
	}
	inner, cancelInner, err := s.subscribeOnce(ctx, a)
	if err != nil {
		return nil, nil, err
	}
	h := &healingSub{s: s, a: a, out: make(chan manager.Inform, 16), inner: inner, cancelInner: cancelInner}
	h.ctx, h.stop = context.WithCancel(context.Background())
	mux := &subMux{s: s, key: key, h: h, members: make(map[uint64]chan manager.Inform)}
	ch, cancel, _ := mux.join() // registered before forwarding starts: the initial inform is not missable
	s.smux[key] = mux
	go h.run()
	go mux.forward(h.out)
	return ch, cancel, nil
}

// subMux fans one healing shard subscription out to every local
// subscriber of its action.
type subMux struct {
	s   *ShardClient
	key string
	h   *healingSub

	mu      sync.Mutex
	nextID  uint64
	members map[uint64]chan manager.Inform
	known   bool // an inform has arrived; last is meaningful
	last    manager.Inform
	done    bool
}

// join adds a member. It reports false when the mux has already wound
// down (the last member left or the stream ended) and cannot be joined.
func (m *subMux) join() (<-chan manager.Inform, func(), bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return nil, nil, false
	}
	m.nextID++
	id := m.nextID
	ch := make(chan manager.Inform, 16)
	m.members[id] = ch
	if m.known {
		ch <- m.last // fresh buffered channel: never blocks
	}
	return ch, func() { m.leave(id) }, true
}

// leave removes a member; the last one out cancels the shared stream.
func (m *subMux) leave(id uint64) {
	m.mu.Lock()
	ch, ok := m.members[id]
	if !ok {
		m.mu.Unlock() // canceled twice, or the stream closed it already
		return
	}
	delete(m.members, id)
	close(ch)
	empty := len(m.members) == 0
	if empty {
		m.done = true
	}
	m.mu.Unlock()
	if empty {
		m.s.smu.Lock()
		if m.s.smux[m.key] == m {
			delete(m.s.smux, m.key)
		}
		m.s.smu.Unlock()
		m.h.cancel()
	}
}

// forward broadcasts the healing stream to every member with the usual
// drop-oldest policy, then closes the members when the stream ends
// (cancel, or the shard client closed).
func (m *subMux) forward(in <-chan manager.Inform) {
	for inf := range in {
		m.mu.Lock()
		m.known, m.last = true, inf
		for _, ch := range m.members {
			select {
			case ch <- inf:
			default:
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- inf:
				default:
				}
			}
		}
		m.mu.Unlock()
	}
	m.mu.Lock()
	m.done = true
	for id, ch := range m.members {
		delete(m.members, id)
		close(ch)
	}
	m.mu.Unlock()
	m.s.smu.Lock()
	if m.s.smux[m.key] == m {
		delete(m.s.smux, m.key)
	}
	m.s.smu.Unlock()
}

// subscribeOnce opens one subscription on the current (elected)
// connection. The cancel function targets exactly the connection that
// owns the subscription — not whatever connection a later failover
// elected — and uses its own context, so a caller's canceled setup
// context can never tear down a live subscription.
func (s *ShardClient) subscribeOnce(ctx context.Context, a expr.Action) (<-chan manager.Inform, func(), error) {
	var ch <-chan manager.Inform
	var cancel func()
	err := s.do(ctx, true, func(cl *manager.Client) error {
		sub, err := cl.Subscribe(ctx, a)
		if err != nil {
			return err
		}
		ch = sub.C
		cancel = func() {
			cctx, cdone := context.WithTimeout(context.Background(), 5*time.Second)
			defer cdone()
			_ = cl.Unsubscribe(cctx, sub) // on a dead connection the channel is closed already
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return ch, cancel, nil
}

// healingSub forwards one shard subscription across failovers and
// migrations, resubscribing whenever the owning connection dies.
type healingSub struct {
	s   *ShardClient
	a   expr.Action
	out chan manager.Inform
	ctx context.Context // canceled by the subscriber's cancel func

	mu          sync.Mutex
	stop        context.CancelFunc
	inner       <-chan manager.Inform
	cancelInner func() // unsubscribes on the connection owning the current sub
}

// cancel is the subscriber-facing teardown.
func (h *healingSub) cancel() {
	h.stop()
	h.mu.Lock()
	cancelInner := h.cancelInner
	h.mu.Unlock()
	if cancelInner != nil {
		cancelInner()
	}
}

// run forwards informs, healing the stream on unexpected closes.
func (h *healingSub) run() {
	defer close(h.out)
	for {
		h.mu.Lock()
		inner := h.inner
		h.mu.Unlock()
		for inf := range inner {
			select {
			case h.out <- inf:
			default:
				// Drop the oldest pending inform to make room for the
				// newest: a slow subscriber always observes the latest
				// status.
				select {
				case <-h.out:
				default:
				}
				select {
				case h.out <- inf:
				default:
				}
			}
		}
		// The stream ended: canceled, or the owning connection died.
		if h.ctx.Err() != nil {
			return
		}
		if !h.resubscribe() {
			return
		}
	}
}

// resubscribe re-opens the subscription through the failover election,
// retrying with backoff until it succeeds or the subscription is
// canceled (or the shard client closed). The generation the election
// bumps is what distinguishes "the primary moved" from "a network blip";
// either way the fresh subscription's initial inform resynchronizes the
// subscriber with the authoritative status.
func (h *healingSub) resubscribe() bool {
	backoff := drainRetryDelay
	for {
		sctx, cancel := context.WithTimeout(h.ctx, shardSettleTimeout)
		inner, cancelInner, err := h.s.subscribeOnce(sctx, h.a)
		cancel()
		if err == nil {
			h.mu.Lock()
			h.inner, h.cancelInner = inner, cancelInner
			canceled := h.ctx.Err() != nil
			h.mu.Unlock()
			if canceled {
				// Lost the race with cancel: tear the fresh sub down too.
				cancelInner()
				return false
			}
			h.s.metrics.subHeals.Inc()
			return true
		}
		if errors.Is(err, manager.ErrClosed) || h.ctx.Err() != nil {
			return false
		}
		select {
		case <-h.ctx.Done():
			return false
		case <-h.s.clk.After(backoff):
		}
		if backoff *= 2; backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
	}
}

// Close tears down the connections and marks the client closed: later
// operations fail with ErrClosed and self-healing subscriptions end
// (their channels close) instead of redialing a retired shard forever.
func (s *ShardClient) Close() error {
	s.mu.Lock()
	cl := s.cl
	s.cl = nil
	s.closed = true
	s.mu.Unlock()
	s.rmu.Lock()
	rcl := s.rcl
	s.rcl = nil
	s.rmu.Unlock()
	var firstErr error
	if cl != nil {
		firstErr = cl.Close()
	}
	if rcl != nil {
		if err := rcl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
