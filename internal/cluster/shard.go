// Package cluster implements the distributed sharded coordination
// subsystem sketched at the end of Sec 7 of the paper: a top-level
// coupling y1 @ y2 @ ... @ yn is semantically a per-alphabet conjunction,
// so each operand can be executed by an independent interaction manager —
// here a remote one behind the JSON-lines TCP protocol of
// internal/manager. A Gateway fronts the shard servers, routes actions by
// a precomputed name index, and runs the two-phase
// reserve-in-global-order/confirm-all grant across the involved shards,
// aborting granted reservations when any shard refuses.
//
// Each shard may be a replica set: an ordered list of servers replicating
// each other (internal/manager's primary/follower streams). The shard
// client elects the most advanced reachable replica — highest epoch, then
// primaries over followers, then most commits — promotes it if it is a
// follower, and fails over automatically when the connection dies or the
// server answers ErrNotPrimary (a deposed primary).
//
// The package talks to shards exclusively through the exported wire
// client of internal/manager, so any process serving the wire protocol
// (cmd/ixmanager, a test server, or another gateway) can be a shard.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/manager"
)

// ShardOptions configure a replica-set shard client.
type ShardOptions struct {
	// ReadFromFollowers routes idempotent status probes (Try, Final) to
	// follower replicas round-robin, offloading the primary. Probes are
	// advisory by nature (the answer can be stale the moment it arrives);
	// with async replication a follower's answer may additionally lag the
	// primary by the un-acked frames.
	ReadFromFollowers bool
}

// ShardClient is a self-healing wire client for one shard — a single
// server or an ordered replica set. It dials lazily, detects dead
// connections, and on failure elects (and if necessary promotes) the most
// advanced reachable replica. Operations whose request provably never
// reached a server (ErrSendFailed) are retried transparently; operations
// that may have been processed (ErrConnLost mid-flight) are retried only
// if idempotent — exactly the queued-request discipline recovery demands.
type ShardClient struct {
	addrs []string
	opts  ShardOptions

	mu  sync.Mutex
	cur int // index of the endpoint cl is connected to
	cl  *manager.Client
	gen uint64 // failover generation: bumped when the endpoint changes

	rmu  sync.Mutex
	rcur int // read rotation cursor (follower offload)
	rcl  *manager.Client
}

// NewShardClient creates a client for the single shard server at addr.
// No connection is made until the first operation, so a gateway can be
// assembled before every shard server is up.
func NewShardClient(addr string) *ShardClient {
	return NewShardClientSet([]string{addr}, ShardOptions{})
}

// NewShardClientSet creates a client for an ordered replica set. The
// first reachable, most advanced replica serves; on disconnect the client
// fails over along the list, promoting a follower when no primary is
// left. A single-address set never issues role or promote ops, so it can
// front any Coordinator (e.g. another gateway), like NewShardClient
// always could.
func NewShardClientSet(addrs []string, opts ShardOptions) *ShardClient {
	return &ShardClient{addrs: addrs, opts: opts}
}

// Addr returns the shard's first endpoint (diagnostics).
func (s *ShardClient) Addr() string { return s.addrs[0] }

// Addrs returns the shard's ordered endpoint list.
func (s *ShardClient) Addrs() []string { return s.addrs }

// Generation counts completed failovers that changed the serving
// endpoint. A gateway compares generations taken at reserve time and at
// confirm time: a bump in between means a ticket may have died with the
// old primary and the grant must be resumed instead of settled.
func (s *ShardClient) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// electTimeout bounds each role probe and promotion during an election.
const electTimeout = 5 * time.Second

// client returns the live connection, electing a replica if necessary.
func (s *ShardClient) client(ctx context.Context) (*manager.Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cl != nil {
		return s.cl, nil
	}
	return s.electLocked(ctx)
}

// electLocked (re)connects: with a single endpoint it plainly dials;
// with a replica set it probes every endpoint's role and adopts the most
// advanced reachable replica — highest epoch first (a deposed primary
// must never win over the node that fenced it), then primaries over
// followers, then the most commits — promoting the winner when the set
// has no primary left. Callers hold s.mu.
func (s *ShardClient) electLocked(ctx context.Context) (*manager.Client, error) {
	if len(s.addrs) == 1 {
		cl, err := manager.Dial(s.addrs[0])
		if err != nil {
			return nil, err
		}
		s.cl = cl
		return cl, nil
	}
	type candidate struct {
		idx int
		cl  *manager.Client
		st  manager.ReplStatus
	}
	var cands []candidate
	var firstErr error
	for off := 0; off < len(s.addrs); off++ {
		idx := (s.cur + off) % len(s.addrs)
		cl, err := manager.Dial(s.addrs[idx])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, electTimeout)
		st, err := cl.Role(rctx)
		cancel()
		if err != nil {
			cl.Close()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		cands = append(cands, candidate{idx: idx, cl: cl, st: st})
	}
	if len(cands) == 0 {
		if firstErr == nil {
			firstErr = errors.New("cluster: no replica reachable")
		}
		return nil, fmt.Errorf("%w: %v", manager.ErrSendFailed, firstErr)
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if better(cands[i].st, cands[best].st) {
			best = i
		}
	}
	chosen := cands[best]
	for i, c := range cands {
		if i != best {
			c.cl.Close()
		}
	}
	promoted := false
	if chosen.st.Role != manager.RolePrimary {
		pctx, cancel := context.WithTimeout(ctx, electTimeout)
		_, err := chosen.cl.Promote(pctx)
		cancel()
		if err != nil {
			chosen.cl.Close()
			return nil, fmt.Errorf("cluster: promote %s: %w", s.addrs[chosen.idx], err)
		}
		promoted = true
	}
	// A promotion bumps the generation even on an unchanged endpoint: the
	// new epoch means tickets granted before the election may be gone.
	if chosen.idx != s.cur || promoted {
		s.gen++
	}
	s.cur = chosen.idx
	s.cl = chosen.cl
	return chosen.cl, nil
}

// better orders replica candidates: epoch, then role, then position.
func better(a, b manager.ReplStatus) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	ap, bp := a.Role == manager.RolePrimary, b.Role == manager.RolePrimary
	if ap != bp {
		return ap
	}
	return a.Steps > b.Steps
}

// invalidate discards cl if it is still the current connection, so the
// next operation re-elects. Another goroutine may have reconnected
// already; its fresh connection is left alone.
func (s *ShardClient) invalidate(cl *manager.Client) {
	s.mu.Lock()
	if s.cl == cl {
		s.cl = nil
	}
	s.mu.Unlock()
	cl.Close()
}

// connErr reports whether err indicates a dead connection (as opposed to
// a protocol-level refusal, which must not trigger a reconnect).
func connErr(err error) bool {
	return errors.Is(err, manager.ErrConnLost) || errors.Is(err, manager.ErrSendFailed)
}

// failoverErr reports whether err should move the client to another
// replica: a dead connection, or a live server refusing writes because
// it is (or was deposed to) a follower.
func failoverErr(err error) bool {
	return connErr(err) || errors.Is(err, manager.ErrNotPrimary)
}

// retryable reports whether err may be retried on a fresh connection for
// an operation with the given idempotency. ErrNotPrimary is always
// retryable: the follower refused before doing anything.
func retryable(err error, idempotent bool) bool {
	if errors.Is(err, manager.ErrSendFailed) || errors.Is(err, manager.ErrNotPrimary) {
		return true // the request was not processed anywhere
	}
	return idempotent && errors.Is(err, manager.ErrConnLost)
}

// do runs op against the current connection, failing over and retrying
// when that is safe. A replica set gets one retry per endpoint (a full
// failover sweep); a single server keeps the historical single retry.
func (s *ShardClient) do(ctx context.Context, idempotent bool, op func(*manager.Client) error) error {
	for attempt := 0; ; attempt++ {
		cl, err := s.client(ctx)
		if err != nil {
			if attempt >= len(s.addrs) || !retryable(err, idempotent) || ctx.Err() != nil {
				return err
			}
			continue
		}
		err = op(cl)
		if err == nil {
			return nil
		}
		if connErr(err) {
			s.invalidate(cl)
		} else if errors.Is(err, manager.ErrNotPrimary) {
			// The server is alive but deposed; drop the connection and let
			// the election find the replica that fenced it.
			s.invalidate(cl)
		}
		if attempt >= len(s.addrs) || !retryable(err, idempotent) || ctx.Err() != nil {
			return err
		}
	}
}

// Ask reserves a at the shard (step 1/2 of the coordination protocol).
func (s *ShardClient) Ask(ctx context.Context, a expr.Action) (manager.Ticket, error) {
	var t manager.Ticket
	err := s.do(ctx, false, func(cl *manager.Client) error {
		var err error
		t, err = cl.Ask(ctx, a)
		return err
	})
	return t, err
}

// Confirm settles a granted ask. The manager answers a retried confirm of
// a recently settled ticket from its replicated dedup window, so a
// confirm whose reply was lost may be retried on a fresh connection — or
// on the follower promoted after a failover — without risking a double
// commit.
func (s *ShardClient) Confirm(ctx context.Context, t manager.Ticket) error {
	return s.do(ctx, true, func(cl *manager.Client) error { return cl.Confirm(ctx, t) })
}

// Abort releases a granted ask.
func (s *ShardClient) Abort(ctx context.Context, t manager.Ticket) error {
	return s.do(ctx, false, func(cl *manager.Client) error { return cl.Abort(ctx, t) })
}

// Request runs the atomic ask+confirm at the shard.
func (s *ShardClient) Request(ctx context.Context, a expr.Action) error {
	return s.do(ctx, false, func(cl *manager.Client) error { return cl.Request(ctx, a) })
}

// RequestMany ships a burst of atomic requests to the shard in one framed
// multi-op message and reports one error per action. Like Request the
// burst is not idempotent: only a send that provably never left this
// machine (or was refused whole by a follower) is retried.
func (s *ShardClient) RequestMany(ctx context.Context, actions []expr.Action) []error {
	var errs []error
	err := s.do(ctx, false, func(cl *manager.Client) error {
		errs = cl.RequestMany(ctx, actions)
		// Surface a transport failure (the same error in every slot) to
		// the retry logic; per-action refusals are final results.
		if len(errs) > 0 && errs[0] != nil && failoverErr(errs[0]) {
			return errs[0]
		}
		return nil
	})
	if err != nil && errs == nil {
		errs = make([]error, len(actions))
		for i := range errs {
			errs[i] = err
		}
	}
	return errs
}

// Try probes a's status (idempotent: retried across reconnects). With
// ReadFromFollowers the probe is served by a follower replica when one
// answers, offloading the primary.
func (s *ShardClient) Try(ctx context.Context, a expr.Action) (bool, error) {
	var ok bool
	op := func(cl *manager.Client) error {
		var err error
		ok, err = cl.Try(ctx, a)
		return err
	}
	if s.readOffloaded(op) {
		return ok, nil
	}
	err := s.do(ctx, true, op)
	return ok, err
}

// Final reports whether the shard's word is complete (idempotent; served
// by a follower under ReadFromFollowers when one answers).
func (s *ShardClient) Final(ctx context.Context) (bool, error) {
	var fin bool
	op := func(cl *manager.Client) error {
		var err error
		fin, err = cl.Final(ctx)
		return err
	}
	if s.readOffloaded(op) {
		return fin, nil
	}
	err := s.do(ctx, true, op)
	return fin, err
}

// readOffloaded tries to serve a read on a follower connection and
// reports whether it succeeded; any failure falls back to the primary
// path (the next rotation will try another replica). The lock guards
// only the connection swap, not the wire call — the client multiplexes,
// so concurrent offloaded reads share the connection instead of
// convoying behind each other.
func (s *ShardClient) readOffloaded(op func(*manager.Client) error) bool {
	if !s.opts.ReadFromFollowers || len(s.addrs) < 2 {
		return false
	}
	s.rmu.Lock()
	cl := s.rcl
	if cl == nil {
		s.mu.Lock()
		primary := s.cur
		s.mu.Unlock()
		for off := 0; off < len(s.addrs); off++ {
			idx := (s.rcur + off) % len(s.addrs)
			if idx == primary {
				continue // the whole point is to not bother the primary
			}
			c, err := manager.Dial(s.addrs[idx])
			if err != nil {
				continue
			}
			cl, s.rcl = c, c
			s.rcur = idx + 1
			break
		}
	}
	s.rmu.Unlock()
	if cl == nil {
		return false
	}
	if err := op(cl); err != nil {
		s.rmu.Lock()
		if s.rcl == cl {
			s.rcl = nil
		}
		s.rmu.Unlock()
		cl.Close()
		return false
	}
	return true
}

// Subscribe opens a subscription at the shard. The returned channel
// closes when the subscription is canceled or the connection dies;
// callers that outlive a reconnect resubscribe to resume informs.
func (s *ShardClient) Subscribe(ctx context.Context, a expr.Action) (<-chan manager.Inform, func(), error) {
	var ch <-chan manager.Inform
	var cancel func()
	err := s.do(ctx, true, func(cl *manager.Client) error {
		sub, err := cl.Subscribe(ctx, a)
		if err != nil {
			return err
		}
		ch = sub.C
		cancel = func() {
			cctx, cdone := context.WithTimeout(context.Background(), 5*time.Second)
			defer cdone()
			_ = cl.Unsubscribe(cctx, sub) // on a dead connection the channel is closed already
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return ch, cancel, nil
}

// Close tears down the connections (a later operation would re-elect).
func (s *ShardClient) Close() error {
	s.mu.Lock()
	cl := s.cl
	s.cl = nil
	s.mu.Unlock()
	s.rmu.Lock()
	rcl := s.rcl
	s.rcl = nil
	s.rmu.Unlock()
	var firstErr error
	if cl != nil {
		firstErr = cl.Close()
	}
	if rcl != nil {
		if err := rcl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
