package cluster

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/manager"
	"repro/internal/parse"
)

// Deterministic failover tests. Like the PR 3 reconnect suite these
// synchronize on real readiness signals — bound listeners, sync
// replication acks and protocol replies — never on sleeps, so they hold
// under -race on any machine.

// replSet is one shard's replica set under test control: n nodes on
// stable addresses, each streaming to all its peers, restartable in
// place.
type replSet struct {
	t     *testing.T
	e     *expr.Expr
	addrs []string
	lns   []net.Listener
	ms    []*manager.Manager
	srvs  []*manager.Server
	base  []manager.Options // per-node options template
}

// newReplSet binds n listeners up front (so every node knows its peers),
// then starts node 0 as primary and the rest as followers, all with
// synchronous replication.
func newReplSet(t *testing.T, e *expr.Expr, n int, custom func(i int, o *manager.Options)) *replSet {
	t.Helper()
	rs := &replSet{t: t, e: e, ms: make([]*manager.Manager, n), srvs: make([]*manager.Server, n), lns: make([]net.Listener, n), base: make([]manager.Options, n)}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rs.lns[i] = ln
		rs.addrs = append(rs.addrs, ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j, a := range rs.addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		opts := manager.Options{Replicas: peers, SyncReplicas: true, Follower: i != 0}
		if custom != nil {
			custom(i, &opts)
		}
		rs.base[i] = opts
		rs.startNode(i, rs.lns[i])
	}
	t.Cleanup(func() {
		for i := range rs.ms {
			rs.stopNode(i)
		}
	})
	return rs
}

func (rs *replSet) startNode(i int, ln net.Listener) {
	rs.t.Helper()
	m, err := manager.New(rs.e, rs.base[i])
	if err != nil {
		rs.t.Fatal(err)
	}
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", rs.addrs[i])
		if err != nil {
			rs.t.Fatal(err)
		}
	}
	rs.ms[i] = m
	rs.srvs[i] = manager.NewServer(m, ln)
}

// stopNode crash-stops node i (no-op if already down).
func (rs *replSet) stopNode(i int) {
	if rs.srvs[i] == nil {
		return
	}
	rs.srvs[i].Close()
	rs.ms[i].Close()
	rs.srvs[i], rs.ms[i] = nil, nil
}

// restartNode brings a crashed node back as a follower on its address.
func (rs *replSet) restartNode(i int) {
	rs.t.Helper()
	rs.base[i].Follower = true
	rs.startNode(i, nil)
}

// TestShardClientFailoverElectsFollower: the shard client survives a
// primary kill by electing and promoting the follower; subsequent writes
// land on the survivor, and no acknowledged commit is lost (sync acks).
func TestShardClientFailoverElectsFollower(t *testing.T) {
	rs := newReplSet(t, parse.MustParse("(a - b)*"), 2, nil)
	sc := NewShardClientSet(rs.addrs, ShardOptions{})
	defer sc.Close()

	if err := sc.Request(bg, act("a")); err != nil {
		t.Fatalf("request a: %v", err)
	}
	// Crash the primary and bring it straight back as an empty follower
	// (the operational runbook; without it, strict sync acks would report
	// every commit on the survivor uncertain).
	rs.stopNode(0)
	rs.restartNode(0)

	// An idempotent probe drives the failover deterministically: the
	// first attempt burns the dead connection, the retry elects the most
	// advanced replica — the old follower, 2 commits ahead of the
	// restarted node — and promotes it.
	if ok, err := sc.Try(bg, act("b")); err != nil || !ok {
		t.Fatalf("probe across failover: ok=%v err=%v", ok, err)
	}
	// Writes now land on the new primary; its stream heals the restarted
	// node with a snapshot resync, so the sync ack (and thus the commit)
	// succeeds cleanly.
	if err := sc.Request(bg, act("b")); err != nil {
		t.Fatalf("request b after failover: %v", err)
	}
	st := rs.ms[1].Status()
	if st.Role != manager.RolePrimary || st.Epoch == 0 {
		t.Fatalf("survivor not promoted: %+v", st)
	}
	if st.Steps != 2 {
		t.Fatalf("survivor steps: got %d want 2 (a replicated, b committed)", st.Steps)
	}
	if sc.Generation() == 0 {
		t.Fatal("failover should bump the generation")
	}
	// The restarted node converged on the new timeline.
	if got := rs.ms[0].Status(); got.Steps != 2 || got.Role != manager.RoleFollower {
		t.Fatalf("restarted node: %+v (resync failed)", got)
	}
}

// TestFailoverPromotionMidAsk: a reservation outstanding on the primary
// dies with it — the promoted follower starts with a free critical
// region, so the next Ask is granted immediately (no reservation-timeout
// wait), and settling the orphaned gateway ticket resumes the grant on
// the new primary instead of losing it.
func TestFailoverPromotionMidAsk(t *testing.T) {
	e := parse.MustParse("(a - b)* @ (b - c)*")
	parts := Partition(e)
	rs0 := newReplSet(t, parts[0], 2, nil)
	rs1 := newReplSet(t, parts[1], 2, nil)
	gw, err := NewReplicatedGateway(e, [][]string{rs0.addrs, rs1.addrs}, GatewayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	// Reserve b on both shards (the critical regions are now held)...
	tk, err := gw.Ask(bg, act("b"))
	if err != nil {
		t.Fatal(err)
	}
	// ...and kill shard 0's primary mid-protocol (restarting it as an
	// empty follower, per the runbook). Its reservation dies with it; the
	// replicated b commit never happened.
	rs0.stopNode(0)
	rs0.restartNode(0)

	// Settling the ticket resumes: the confirm's dead connection triggers
	// the election (confirms are idempotent, so the retry is transparent),
	// shard 0's promoted follower answers unknown-ticket (the reservation
	// was never replicated), the generation moved, so the gateway
	// re-reserves and commits b there — and shard 1's untouched
	// reservation confirms normally.
	if err := gw.Confirm(bg, tk); err != nil {
		t.Fatalf("confirm across failover: %v", err)
	}
	if got := rs0.ms[1].Status().Steps; got != 2 {
		t.Fatalf("shard 0 survivor steps: got %d want 2 (a, b)", got)
	}
	if got := rs1.ms[0].Status().Steps; got != 1 {
		t.Fatalf("shard 1 steps: got %d want 1 (b)", got)
	}
	// The next Ask must be granted without waiting out any phantom
	// reservation: the promoted follower's region starts free.
	tk2, err := gw.Ask(bg, act("c"))
	if err != nil {
		t.Fatalf("ask after failover: %v", err)
	}
	if err := gw.Confirm(bg, tk2); err != nil {
		t.Fatal(err)
	}
}

// TestConfirmAfterFailoverIdempotent: a confirm that committed and
// replicated, retried after the primary died, is answered from the
// promoted follower's replicated dedup window — success, no double
// apply.
func TestConfirmAfterFailoverIdempotent(t *testing.T) {
	rs := newReplSet(t, parse.MustParse("(a - b)*"), 2, nil)
	sc := NewShardClientSet(rs.addrs, ShardOptions{})
	defer sc.Close()

	if err := sc.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	tk, err := sc.Ask(bg, act("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Confirm(bg, tk); err != nil {
		t.Fatal(err)
	}
	// The reply was delivered here, but a client whose reply got lost
	// would retry — after the primary died and the follower took over.
	rs.stopNode(0)
	if err := sc.Confirm(bg, tk); err != nil {
		t.Fatalf("confirm retry across failover: %v", err)
	}
	st := rs.ms[1].Status()
	if st.Steps != 2 {
		t.Fatalf("survivor steps: got %d want 2 (double apply?)", st.Steps)
	}
	// And b is not permissible again: the word is a b, a is due.
	ok, err := sc.Try(bg, act("b"))
	if err != nil || ok {
		t.Fatalf("try b after idempotent retry: ok=%v err=%v", ok, err)
	}
}

// TestSplitBrainRejection: an out-of-band promotion (a second operator)
// creates a stale primary; its next commit is fenced by the promoted
// follower, it deposes itself, and the shard client's election settles
// on the higher-epoch node — never on the deposed one, whatever the
// endpoint order says.
func TestSplitBrainRejection(t *testing.T) {
	rs := newReplSet(t, parse.MustParse("(a | b)*"), 2, nil)
	sc := NewShardClientSet(rs.addrs, ShardOptions{})
	defer sc.Close()

	if err := sc.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	// Promote the follower behind the client's back.
	if _, err := rs.ms[1].Promote(); err != nil {
		t.Fatal(err)
	}
	// The stale primary's next commit is applied locally but fenced at
	// replication time: uncertain, and the node deposes itself.
	err := sc.Request(bg, act("a"))
	if !errors.Is(err, manager.ErrUncertain) {
		t.Fatalf("fenced commit: want ErrUncertain, got %v", err)
	}
	if st := rs.ms[0].Status(); st.Role != manager.RoleFollower {
		t.Fatalf("stale primary not deposed: %+v", st)
	}
	// The retry elects the true primary (higher epoch) and succeeds; the
	// deposed node's divergent extra commit is discarded by the snapshot
	// resync the new primary's stream performs (sync acks prove it).
	if err := sc.Request(bg, act("b")); err != nil {
		t.Fatalf("request after split-brain resolution: %v", err)
	}
	if rs.ms[0].StateKey() != rs.ms[1].StateKey() {
		t.Fatal("replicas diverged after split-brain resolution")
	}
	if got, want := rs.ms[0].Status().Steps, rs.ms[1].Status().Steps; got != want {
		t.Fatalf("deposed node at %d steps, primary at %d", got, want)
	}
}

// TestConfirmResumeOnDeposedPrimary: a primary deposed *while holding a
// gateway reservation* drops it on demotion — the settling confirm must
// not be answered ErrUnknownTicket by the live-but-deposed node (which
// would strand a partial multi-shard commit); it answers ErrNotPrimary,
// the shard client fails over to the replica that fenced it, and the
// gateway resumes the grant there.
func TestConfirmResumeOnDeposedPrimary(t *testing.T) {
	e := parse.MustParse("(a - b)* @ (b - c)*")
	parts := Partition(e)
	rs0 := newReplSet(t, parts[0], 1, nil) // plain single-server shard
	rs1 := newReplSet(t, parts[1], 2, nil) // replicated shard
	gw, err := NewReplicatedGateway(e, [][]string{rs0.addrs, rs1.addrs}, GatewayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	// Reserve b on both shards; shard 1's reservation sits on its primary.
	tk, err := gw.Ask(bg, act("b"))
	if err != nil {
		t.Fatal(err)
	}
	// Depose shard 1's primary out of band: promote the follower and
	// fence the old primary with an (empty) frame of the new epoch — the
	// demotion drops the outstanding reservation.
	epoch, err := rs1.ms[1].Promote()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs1.ms[0].ApplyReplicated(manager.ReplFrame{Epoch: epoch}); err != nil {
		t.Fatalf("fencing frame: %v", err)
	}
	if st := rs1.ms[0].Status(); st.Role != manager.RoleFollower {
		t.Fatalf("old primary not deposed: %+v", st)
	}
	// Settling the gateway ticket must succeed end to end: shard 0
	// confirms its reservation, shard 1 answers ErrNotPrimary from the
	// deposed node, the client elects the promoted replica (generation
	// bump) and the gateway resumes b there.
	if err := gw.Confirm(bg, tk); err != nil {
		t.Fatalf("confirm across deposal: %v", err)
	}
	if got := rs0.ms[0].Status().Steps; got != 2 {
		t.Fatalf("shard 0 steps: got %d want 2 (a, b)", got)
	}
	if got := rs1.ms[1].Status().Steps; got != 1 {
		t.Fatalf("shard 1 new primary steps: got %d want 1 (resumed b)", got)
	}
	// No partial commit left behind: the round continues normally.
	if err := gw.Request(bg, act("c")); err != nil {
		t.Fatalf("c after resumed b: %v", err)
	}
}

// waitInform drains an aggregated subscription until the wanted status
// arrives (intermediate refinements are fine); every wait is a channel
// receive bounded by a deadline — a deterministic protocol signal, not a
// sleep.
func waitInform(t *testing.T, ch <-chan manager.Inform, want bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case inf, ok := <-ch:
			if !ok {
				t.Fatal("subscription channel closed")
			}
			if inf.Permissible == want {
				return
			}
		case <-deadline:
			t.Fatalf("inform %v timed out", want)
		}
	}
}

// TestSubscriptionSurvivesPrimaryKill is the regression test for the
// stale-conjunction bug: a subscription opened before a primary kill
// must keep delivering correct informs after the failover, without the
// caller resubscribing. Before the fix, the dead shard's stream froze
// its slot in the gateway's conjunction forever (the aggregated channel
// only closed when ALL streams died), so the subscriber observed a
// stale status for good.
func TestSubscriptionSurvivesPrimaryKill(t *testing.T) {
	e := parse.MustParse("(a - b)* @ (b - c)*")
	parts := Partition(e)
	rs0 := newReplSet(t, parts[0], 2, nil)
	rs1 := newReplSet(t, parts[1], 2, nil)
	gw, err := NewReplicatedGateway(e, [][]string{rs0.addrs, rs1.addrs}, GatewayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	ch, cancel, err := gw.Subscribe(act("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Initially b is blocked by shard 0 (a is due): combined false. The
	// frozen-slot value a stale subscription would keep is exactly this
	// false — every true below can only come from a healed stream.
	waitInform(t, ch, false)

	// Kill shard 0's primary mid-subscription. The per-shard stream dies
	// with it; the self-healing subscription must re-elect and resume.
	// (Restarting the node as an empty follower is the runbook step that
	// keeps strict sync acks satisfiable.)
	rs0.stopNode(0)
	rs0.restartNode(0)

	// Drive the write-path failover with an idempotent probe (the
	// runbook's first step; a non-idempotent Request must not retry over
	// a connection that died mid-flight).
	if ok, err := gw.Try(bg, act("a")); err != nil || !ok {
		t.Fatalf("probe across failover: ok=%v err=%v", ok, err)
	}
	// A commit on the promoted survivor flips b permissible on shard 0
	// (shard 1 permits b from the start): combined true proves the
	// subscription healed onto the new primary — a frozen slot would
	// never flip.
	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatalf("request across failover: %v", err)
	}
	waitInform(t, ch, true)

	// The protocol keeps cycling through the healed stream.
	if err := gw.Request(bg, act("b")); err != nil {
		t.Fatal(err)
	}
	waitInform(t, ch, false) // shard 0 needs a again AND shard 1 needs c
	if err := gw.Request(bg, act("c")); err != nil {
		t.Fatal(err)
	}
	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	waitInform(t, ch, true)
}

// TestFollowerServesReads: with ReadFromFollowers the probe traffic is
// answered by follower replicas — even while the primary is down, and
// without triggering a promotion.
func TestFollowerServesReads(t *testing.T) {
	rs := newReplSet(t, parse.MustParse("(a - b)*"), 2, nil)
	sc := NewShardClientSet(rs.addrs, ShardOptions{ReadFromFollowers: true})
	defer sc.Close()

	if err := sc.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	// The probe reflects the replicated state (sync acks: the commit is
	// on the follower before Request returned).
	ok, err := sc.Try(bg, act("b"))
	if err != nil || !ok {
		t.Fatalf("try b: ok=%v err=%v", ok, err)
	}
	if tries := rs.ms[1].Stats().Tries; tries == 0 {
		t.Fatal("probe was not served by the follower")
	}
	before := rs.ms[1].Status()
	// Primary down: reads keep working off the follower replica...
	rs.stopNode(0)
	ok, err = sc.Try(bg, act("b"))
	if err != nil || !ok {
		t.Fatalf("try b with primary down: ok=%v err=%v", ok, err)
	}
	// ...and pure read traffic promotes nobody.
	after := rs.ms[1].Status()
	if after.Role != before.Role || after.Epoch != before.Epoch {
		t.Fatalf("read offload changed the replica's role: %+v → %+v", before, after)
	}
}
