package cluster

import (
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/parse"
)

// startInstrumentedCluster is startCluster with a metrics registry and
// grant tracing wired into a replicated (single-replica) gateway.
func startInstrumentedCluster(t *testing.T, src string, traceCap int) (*Gateway, *obs.Registry) {
	t.Helper()
	e := parse.MustParse(src)
	parts := Partition(e)
	replicas := make([][]string, len(parts))
	var stops []*shard
	for i, part := range parts {
		sh := &shard{t: t, e: part, opts: manager.Options{ReservationTimeout: 2 * time.Second}}
		sh.start()
		replicas[i] = []string{sh.addr}
		stops = append(stops, sh)
	}
	reg := obs.NewRegistry()
	gw, err := NewReplicatedGateway(e, replicas, GatewayOptions{
		Metrics:       reg,
		TraceCapacity: traceCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		gw.Close()
		for _, sh := range stops {
			sh.stop()
		}
	})
	if err := gw.Ping(bg); err != nil {
		t.Fatal(err)
	}
	return gw, reg
}

// TestGatewayMetricsAndTraces: every two-phase grant moves the gateway's
// counters and leaves a ticket-scoped trace with per-shard reserve and
// settle events — confirmed, aborted and refused outcomes alike.
func TestGatewayMetricsAndTraces(t *testing.T) {
	// 'a' is shared between both shards, 'b' and 'c' are single-shard.
	gw, reg := startInstrumentedCluster(t, "(a - b)* @ (a - c)*", 8)

	tk, err := gw.Ask(bg, act("a"))
	if err != nil {
		t.Fatalf("ask a: %v", err)
	}
	if err := gw.Confirm(bg, tk); err != nil {
		t.Fatalf("confirm a: %v", err)
	}
	// Refused: 'a' is not permissible again until b and c happened.
	if _, err := gw.Ask(bg, act("a")); err == nil {
		t.Fatal("expected refusal for second a")
	}
	// Aborted: reserve b, then roll it back.
	tk2, err := gw.Ask(bg, act("b"))
	if err != nil {
		t.Fatalf("ask b: %v", err)
	}
	if err := gw.Abort(bg, tk2); err != nil {
		t.Fatalf("abort b: %v", err)
	}

	var confirmed, refused, aborted GrantTrace
	for _, tr := range gw.Traces() {
		switch tr.Outcome {
		case OutcomeConfirmed:
			confirmed = tr
		case OutcomeRefused:
			refused = tr
		case OutcomeAborted:
			aborted = tr
		}
	}
	if confirmed.Outcome == "" || refused.Outcome == "" || aborted.Outcome == "" {
		t.Fatalf("missing outcomes in traces: %+v", gw.Traces())
	}
	// The confirmed grant of the shared 'a' touched both shards twice:
	// one reserve and one confirm each.
	var reserves, confirms int
	shardsSeen := map[int]bool{}
	for _, ev := range confirmed.Events {
		shardsSeen[ev.Shard] = true
		switch ev.Phase {
		case PhaseReserve:
			reserves++
		case PhaseConfirm:
			confirms++
		}
		if ev.DurNs < 0 {
			t.Errorf("negative event duration: %+v", ev)
		}
		if ev.At.IsZero() {
			t.Errorf("event without timestamp: %+v", ev)
		}
	}
	if reserves != 2 || confirms != 2 || len(shardsSeen) != 2 {
		t.Errorf("confirmed trace events off: %d reserves, %d confirms, shards %v\n%+v",
			reserves, confirms, shardsSeen, confirmed.Events)
	}
	if confirmed.Ticket == 0 {
		t.Errorf("confirmed trace lost its gateway ticket")
	}
	if confirmed.End.Before(confirmed.Start) {
		t.Errorf("trace ends before it starts: %+v", confirmed)
	}
	// The refusal recorded the shard error on a reserve event.
	var refusalErr bool
	for _, ev := range refused.Events {
		if ev.Phase == PhaseReserve && ev.Err != "" {
			refusalErr = true
		}
	}
	if !refusalErr {
		t.Errorf("refused trace has no erroring reserve: %+v", refused.Events)
	}
	// The abort settled with abort events.
	var aborts int
	for _, ev := range aborted.Events {
		if ev.Phase == PhaseAbort {
			aborts++
		}
	}
	if aborts == 0 {
		t.Errorf("aborted trace has no abort events: %+v", aborted.Events)
	}

	snap := reg.Snapshot()
	// 2 reserves for the shared 'a', 1 for 'b'; the refused retry of
	// 'a' counts as a refusal, not a reserve.
	if got := snap.Counters["ix_gateway_reserves_total"]; got < 3 {
		t.Errorf("reserves counter: got %d want >= 3", got)
	}
	if got := snap.Counters["ix_gateway_reserve_refusals_total"]; got < 1 {
		t.Errorf("reserve refusals counter: got %d want >= 1", got)
	}
	if got := snap.Counters["ix_gateway_confirms_total"]; got < 1 {
		t.Errorf("confirms counter: got %d want >= 1", got)
	}
	if got := snap.Counters["ix_gateway_aborts_total"]; got < 1 {
		t.Errorf("aborts counter: got %d want >= 1", got)
	}
	if h := snap.Hists["ix_gateway_grant_ns"]; h.Count < 1 {
		t.Errorf("grant latency histogram empty: %+v", h)
	}
	// Per-shard ask meters render with a shard label.
	if got := snap.Counters[`ix_shard_asks_total{shard="0"}`]; got < 2 {
		t.Errorf(`shard 0 ask meter total: got %d want >= 2 (counters: %v)`, got, snap.Counters)
	}
}

// TestGatewayTracePending: an unsettled ask-path grant is visible as a
// pending trace while its ticket is open.
func TestGatewayTracePending(t *testing.T) {
	gw, _ := startInstrumentedCluster(t, "(a - b)* @ (a - c)*", 8)
	if _, err := gw.Ask(bg, act("a")); err != nil {
		t.Fatalf("ask: %v", err)
	}
	var pending int
	for _, tr := range gw.Traces() {
		if tr.Outcome == OutcomePending {
			pending++
			if tr.Ticket == 0 {
				t.Errorf("pending trace without ticket: %+v", tr)
			}
		}
	}
	if pending != 1 {
		t.Errorf("pending traces: got %d want 1", pending)
	}
}

// TestGatewayTracingDisabled: a negative trace capacity turns tracing
// off entirely; metrics keep working.
func TestGatewayTracingDisabled(t *testing.T) {
	gw, reg := startInstrumentedCluster(t, "(a - b)* @ (a - c)*", -1)
	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatalf("request: %v", err)
	}
	if trs := gw.Traces(); len(trs) != 0 {
		t.Errorf("traces despite disabled tracing: %+v", trs)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["ix_gateway_reserves_total"]; got < 2 {
		t.Errorf("reserves counter: got %d want >= 2", got)
	}
	if h := snap.Hists["ix_gateway_grant_ns"]; h.Count < 1 {
		t.Errorf("grant latency histogram empty without tracing: %+v", h)
	}
}
