package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/parse"
)

// Seeded fault-injection harness. Each schedule drives the sequential
// pipeline word a b c a b c ... through a replicated 2-shard gateway
// ((a - b)* @ (b - c)*, so every b is a distributed two-phase commit)
// while a deterministic rand.New(seed) schedule of primary kills,
// follower kills, restarts, out-of-band promotions and connection drops
// fires between operations. Afterwards the cluster is healed and the
// harness asserts, per shard:
//
//   - no committed action lost and none double-applied: the surviving
//     replicas' step count lies in [Σ acked, Σ acked + Σ unknown], where
//     acked counts operations the client saw succeed (under SyncReplicas
//     an ack proves the commit is on every replica) and unknown counts
//     attempts whose outcome the client could not learn;
//   - the gateway's global-order invariant: at a round boundary both
//     shards have executed exactly the same number of shared b actions
//     interleaved with their private actions, so their step counts are
//     equal and even — any lost, duplicated or reordered commit on
//     either side breaks the equality (or deadlocks the healing rounds,
//     which require full a b c rounds to complete in order);
//   - replica convergence: primary and follower of each shard finish on
//     identical state keys and step counts (the last sync ack proves
//     every commit reached every replica).
//
// Timing never decides correctness: faults are injected between
// synchronous client operations, every wait is a protocol reply, and a
// schedule that wedges a shard merely accumulates "unknown" outcomes
// until the heal phase restarts the dead nodes. Failures log the seed
// for replay.

// chaosSeeds is the number of seeded schedules a full run executes (the
// CI budget); -short runs a subset.
const chaosSeeds = 200

// chaosEvent is one pre-generated fault.
type chaosEvent struct {
	kind  int // 0 none, 1 kill primary, 2 kill follower, 3 restart dead, 4 promote follower, 5 drop gateway conn, 6 live migration
	shard int
}

// dropConnForTest severs the client's current primary connection (a
// network blip between gateway and shard; the server keeps running).
func (s *ShardClient) dropConnForTest() {
	s.mu.Lock()
	cl := s.cl
	s.cl = nil
	s.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// chaosHarness runs one seeded schedule.
type chaosHarness struct {
	t        *testing.T
	seed     int64
	gw       *Gateway
	reb      *Rebalancer
	sets     []*replSet
	word     []string
	pos      int  // next occurrence index into the unbounded word
	occClean bool // last occurrence acked on its first attempt
	// Per shard per action-name tallies.
	acked   []map[string]int
	unknown []map[string]int
	trace   []string // chronological schedule log, dumped on failure
}

func (h *chaosHarness) tracef(format string, args ...any) {
	h.trace = append(h.trace, fmt.Sprintf(format, args...))
}

// involvedShards mirrors the routing of the pipeline expression.
func involvedShards(name string) []int {
	switch name {
	case "a":
		return []int{0}
	case "b":
		return []int{0, 1}
	default:
		return []int{1}
	}
}

func (h *chaosHarness) failf(format string, args ...any) {
	h.t.Helper()
	h.t.Errorf("seed %d (replay: -run '%s'): %s\nschedule trace:\n  %s",
		h.seed, h.t.Name(), fmt.Sprintf(format, args...), strings.Join(h.trace, "\n  "))
}

func (h *chaosHarness) ack(name string) {
	for _, s := range involvedShards(name) {
		h.acked[s][name]++
	}
}

func (h *chaosHarness) unk(name string) {
	for _, s := range involvedShards(name) {
		h.unknown[s][name]++
	}
}

// commit settles one occurrence of name, tolerating faults: unknown
// outcomes are retried, and a denial means the driver's position and
// some shard's position disagree — an unknown attempt landed invisibly
// (shard ahead) or an earlier un-acked commit evaporated with a failover
// (shard behind; the legal async window of an unacknowledged outcome).
// reconcile levels every involved shard against ground truth. Returns
// false when the occurrence could not be settled yet (shard down until
// the heal phase).
func (h *chaosHarness) commit(name string) bool {
	h.occClean = false
	for attempt := 0; attempt < 10; attempt++ {
		ctx, cancel := context.WithTimeout(bg, 5*time.Second)
		err := h.gw.Request(ctx, act(name))
		cancel()
		h.tracef("op %d %s attempt %d: %v", h.pos, name, attempt, err)
		if err == nil {
			h.ack(name)
			h.occClean = attempt == 0
			return true
		}
		if errors.Is(err, manager.ErrDenied) {
			if h.reconcile(name) {
				return true
			}
			continue
		}
		h.unk(name)
	}
	return false
}

// authoritative returns the ground-truth position of shard s: the steps
// of the replica the election would settle on (highest epoch, then
// primaries, then most commits). The harness may be omniscient — it
// holds the manager objects in process — the system under test may not.
func (h *chaosHarness) authoritative(s int) (manager.ReplStatus, bool) {
	var best manager.ReplStatus
	found := false
	for _, m := range h.sets[s].ms {
		if m == nil {
			continue
		}
		st := m.Status()
		if !found || better(st, best) {
			best, found = st, true
		}
	}
	return best, found
}

// shardActionAt is the pipeline's per-shard script: shard 0 alternates
// a, b; shard 1 alternates b, c.
func shardActionAt(s, steps int) string {
	if s == 0 {
		if steps%2 == 0 {
			return "a"
		}
		return "b"
	}
	if steps%2 == 0 {
		return "b"
	}
	return "c"
}

// expectedSteps is the position shard s should be at before the current
// occurrence h.pos of the global word.
func (h *chaosHarness) expectedSteps(s int) int {
	full, rem := h.pos/3, h.pos%3
	if s == 0 {
		n := 2 * full
		if rem >= 1 {
			n++ // this round's a is done
		}
		if rem >= 2 {
			n++ // this round's b is done
		}
		return n
	}
	n := 2 * full
	if rem >= 2 {
		n++ // this round's b is done
	}
	return n
}

// reconcile drives every shard involved in the current occurrence to the
// position after it, committing whatever actions the authoritative
// timeline is missing. The writes double as probes: a deposed primary
// refuses them (ErrNotPrimary) and the retry elects the authoritative
// replica — a read probe would instead trust the deposed node's
// divergent, soon-to-be-discarded state. Returns false when a shard
// stayed unreachable (the heal phase will retry).
func (h *chaosHarness) reconcile(name string) bool {
	for _, sIdx := range involvedShards(name) {
		sc := h.gw.Shards()[sIdx]
		settled := false
		for attempt := 0; attempt < 10; attempt++ {
			st, ok := h.authoritative(sIdx)
			if !ok {
				return false // shard fully down
			}
			auth, want := int(st.Steps), h.expectedSteps(sIdx)+1
			if auth >= want {
				if auth > want {
					h.failf("shard %d ahead of the driver: %d steps, expected ≤ %d (duplicated commit)", sIdx, auth, want)
				}
				settled = true
				break
			}
			missing := shardActionAt(sIdx, auth)
			ctx, cancel := context.WithTimeout(bg, 5*time.Second)
			err := sc.Request(ctx, act(missing))
			cancel()
			h.tracef("op %d reconcile shard %d (auth %d, want %d) commit %s: %v", h.pos, sIdx, auth, want, missing, err)
			if err == nil {
				h.acked[sIdx][missing]++
			} else if !errors.Is(err, manager.ErrDenied) {
				h.unknown[sIdx][missing]++
			}
			// On denial the state moved under us (a deposed node's commit
			// evaporated, or our own unknown attempt landed): re-read the
			// ground truth and continue.
		}
		if !settled {
			return false
		}
	}
	return true
}

// advance moves to the next occurrence.
func (h *chaosHarness) advance() { h.pos++ }

// inject fires one pre-generated fault.
func (h *chaosHarness) inject(ev chaosEvent) {
	h.tracef("op %d inject kind=%d shard=%d", h.pos, ev.kind, ev.shard)
	rs := h.sets[ev.shard]
	switch ev.kind {
	case 1, 2: // kill primary / kill follower
		wantPrimary := ev.kind == 1
		for i, m := range rs.ms {
			if m == nil {
				continue
			}
			if (m.Status().Role == manager.RolePrimary) == wantPrimary {
				rs.stopNode(i)
				return
			}
		}
		// No node in the wanted role: kill the first live one.
		for i, m := range rs.ms {
			if m != nil {
				rs.stopNode(i)
				return
			}
		}
	case 3: // restart every dead node (as followers)
		for _, set := range h.sets {
			for i := range set.ms {
				if set.ms[i] == nil {
					set.restartNode(i)
				}
			}
		}
	case 4: // out-of-band promotion (split brain when a primary exists)
		for _, m := range rs.ms {
			if m != nil && m.Status().Role == manager.RoleFollower {
				_, _ = m.Promote()
				return
			}
		}
	case 5: // connection drop between gateway and shard
		h.gw.Shards()[ev.shard].dropConnForTest()
	case 6: // live migration: ping-pong the primary onto a live follower
		var target string
		for i, m := range rs.ms {
			if m != nil && m.Status().Role == manager.RoleFollower {
				target = rs.addrs[i]
				break
			}
		}
		if target == "" {
			return // no live follower to migrate onto
		}
		ctx, cancel := context.WithTimeout(bg, 10*time.Second)
		err := h.reb.MigrateShard(ctx, ev.shard, target, MigrateOptions{})
		cancel()
		h.tracef("op %d migrate shard %d -> %s: %v", h.pos, ev.shard, target, err)
		if err != nil {
			// A migration interrupted by an earlier/concurrent fault must
			// not leave the shard wedged: clear any lingering drain on the
			// survivors (MigrateShard resumes the source itself when it
			// can still reach it; this covers the cases where it cannot).
			for _, m := range rs.ms {
				if m != nil {
					_ = m.Resume()
				}
			}
		}
	}
}

// heal restarts everything and drives rounds until one completes with
// every action acked on its first attempt — the certificate that both
// shards are aligned at a round boundary with no outcome outstanding.
func (h *chaosHarness) heal() bool {
	for _, set := range h.sets {
		for i := range set.ms {
			if set.ms[i] == nil {
				set.restartNode(i)
			} else {
				// A migration the schedule interrupted may have left a node
				// draining; the heal phase lifts it (a restart clears the
				// transient drain state anyway, so this only affects
				// survivors).
				_ = set.ms[i].Resume()
			}
		}
	}
	if !h.level() {
		return false
	}
	for round := 0; round < 40; round++ {
		// Settle the current (possibly half-done) occurrence first.
		for !h.atBoundary() {
			if !h.commit(h.word[h.pos%len(h.word)]) {
				return false
			}
			h.advance()
		}
		clean := true
		for _, name := range h.word {
			if !h.commit(name) {
				return false
			}
			clean = clean && h.occClean
			h.advance()
		}
		if clean {
			return true
		}
	}
	return false
}

func (h *chaosHarness) atBoundary() bool { return h.pos%len(h.word) == 0 }

// level drives every shard up to the driver's position before the heal
// rounds run. Denial-triggered reconciliation cannot see a shard that is
// a whole number of rounds behind — (b - c)* at step 10 accepts the same
// word as at step 12 — and exactly that happens when commits whose
// outcome stayed unknown (sync acks to a dead follower) later evaporate
// with an epoch-fenced timeline discard: perfectly legal per-shard, but
// it would silently shear the cross-shard alignment the round-boundary
// assertion certifies. Leveling re-commits the authoritative timeline's
// missing tail, with the usual acked/unknown accounting.
func (h *chaosHarness) level() bool {
	for s := range h.sets {
		leveled := false
		for attempt := 0; attempt < 20; attempt++ {
			st, ok := h.authoritative(s)
			if !ok {
				return false // shard fully down
			}
			auth, want := int(st.Steps), h.expectedSteps(s)
			if auth >= want {
				leveled = true
				break
			}
			missing := shardActionAt(s, auth)
			ctx, cancel := context.WithTimeout(bg, 5*time.Second)
			err := h.gw.Shards()[s].Request(ctx, act(missing))
			cancel()
			h.tracef("heal level shard %d (auth %d, want %d) commit %s: %v", s, auth, want, missing, err)
			if err == nil {
				h.acked[s][missing]++
			} else if !errors.Is(err, manager.ErrDenied) {
				h.unknown[s][missing]++
			}
		}
		if !leveled {
			return false
		}
	}
	return true
}

// TestChaosFailover runs the seeded schedules.
func TestChaosFailover(t *testing.T) {
	seeds := chaosSeeds
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosSchedule(t, int64(seed), chaosFailoverEvent)
		})
	}
}

// TestChaosMigration interleaves live migrations with the PR 4 fault
// mix: primaries ping-pong between replicas mid-workload while kills,
// restarts, out-of-band promotions and connection drops fire around
// them. The invariants are the same — zero lost acked actions, no
// double-applies, replica convergence, global-order equality at round
// boundaries — now holding across drain windows, route-table updates
// and epoch-fencing promotions too.
func TestChaosMigration(t *testing.T) {
	seeds := chaosSeeds
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosSchedule(t, int64(seed), chaosMigrationEvent)
		})
	}
}

// chaosFailoverEvent is the PR 4 fault mix.
func chaosFailoverEvent(p int) int {
	switch {
	case p < 25:
		return 1
	case p < 40:
		return 2
	case p < 65:
		return 3
	case p < 75:
		return 4
	case p < 90:
		return 5
	}
	return 0
}

// chaosMigrationEvent biases the mix towards migrations while keeping
// every PR 4 fault in play (migration-during-kill schedules).
func chaosMigrationEvent(p int) int {
	switch {
	case p < 15:
		return 1
	case p < 25:
		return 2
	case p < 45:
		return 3
	case p < 52:
		return 4
	case p < 62:
		return 5
	case p < 92:
		return 6
	}
	return 0
}

func runChaosSchedule(t *testing.T, seed int64, eventKind func(p int) int) {
	rng := rand.New(rand.NewSource(seed))
	e := parse.MustParse("(a - b)* @ (b - c)*")
	parts := Partition(e)

	// Two replicas per shard, persistent (restarts recover from disk),
	// strictly synchronous replication — the mode whose contract the
	// zero-loss assertion tests.
	sets := make([]*replSet, len(parts))
	for i, part := range parts {
		i := i
		sets[i] = newReplSet(t, part, 2, func(j int, o *manager.Options) {
			dir := t.TempDir()
			o.LogPath = filepath.Join(dir, "actions.log")
			o.SnapshotPath = filepath.Join(dir, "state.snap")
			o.SnapshotEvery = 3
			o.ReservationTimeout = 2 * time.Second
		})
	}
	gw, err := NewReplicatedGateway(e, [][]string{sets[0].addrs, sets[1].addrs}, GatewayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	h := &chaosHarness{
		t: t, seed: seed, gw: gw, reb: gw.Rebalancer(), sets: sets,
		word:    []string{"a", "b", "c"},
		acked:   []map[string]int{{}, {}},
		unknown: []map[string]int{{}, {}},
	}

	// Pre-generate the whole schedule so the fault sequence is a pure
	// function of the seed, whatever the outcomes.
	const ops = 18
	events := make([]chaosEvent, ops)
	for i := range events {
		p := rng.Intn(100)
		events[i] = chaosEvent{kind: eventKind(p), shard: rng.Intn(len(parts))}
	}

	for i := 0; i < ops; i++ {
		h.inject(events[i])
		if !h.commit(h.word[h.pos%len(h.word)]) {
			break // shard down until heal
		}
		h.advance()
	}

	if !h.heal() {
		h.failf("cluster did not heal to a clean round")
		return
	}

	// The final clean round ended in sync-acked commits on both shards:
	// every replica is converged. Collect the survivors' positions.
	steps := make([]uint64, len(sets))
	for sIdx, set := range sets {
		var keys []string
		var stepsHere []uint64
		for _, m := range set.ms {
			if m == nil {
				continue
			}
			st := m.Status()
			keys = append(keys, m.StateKey())
			stepsHere = append(stepsHere, st.Steps)
		}
		if len(keys) < 2 {
			h.failf("shard %d: fewer than 2 live replicas after heal", sIdx)
			return
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] != keys[0] || stepsHere[i] != stepsHere[0] {
				h.failf("shard %d replicas diverged: steps %v", sIdx, stepsHere)
				return
			}
		}
		steps[sIdx] = stepsHere[0]

		// Zero lost commits, zero double-applies: the step count is bounded
		// by what the client saw.
		var ackedSum, unkSum uint64
		for _, n := range h.acked[sIdx] {
			ackedSum += uint64(n)
		}
		for _, n := range h.unknown[sIdx] {
			unkSum += uint64(n)
		}
		if steps[sIdx] < ackedSum {
			h.failf("shard %d LOST commits: %d steps < %d acked", sIdx, steps[sIdx], ackedSum)
		}
		if steps[sIdx] > ackedSum+unkSum {
			h.failf("shard %d over-applied: %d steps > %d acked + %d unknown", sIdx, steps[sIdx], ackedSum, unkSum)
		}
	}

	// Global order at the round boundary: both shards interleaved the
	// shared b with their private action in lockstep, so their histories
	// have the same length — and an even one (full a·b / b·c pairs).
	if steps[0] != steps[1] || steps[0]%2 != 0 {
		h.failf("global-order invariant broken at round boundary: shard steps %v", steps)
	}
}
