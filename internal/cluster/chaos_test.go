package cluster_test

// Seeded chaos schedules over real TCP sockets. The scenario itself —
// the sequential pipeline, the fault mixes, the ground-truth ledger and
// the invariant verdicts — lives in internal/sim (chaos.go) and is
// shared with the deterministic simulator: this file only binds it to
// the TCPTransport. The simulator runs the same schedules by the tens
// of thousands in seconds; the TCP runs here keep the scenario honest
// against kernel sockets, real timers and true parallelism.

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// chaosSeeds is the number of seeded schedules a full run executes (the
// short run keeps a representative slice for quick signal).
const chaosSeeds = 200

func runTCPChaos(t *testing.T, seed int64, mix string) {
	t.Helper()
	res, err := sim.RunChaos(sim.ChaosConfig{
		Seed:      seed,
		Mix:       mix,
		Transport: sim.TCPTransport{},
		Dir:       t.TempDir(),
	})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if res.Failed() {
		for _, line := range res.Trace {
			t.Log(line)
		}
		for _, f := range res.Failures {
			t.Errorf("invariant broken: %s", f)
		}
	}
}

// TestChaosFailover runs the seeded kill/restart/promote/drop schedules.
func TestChaosFailover(t *testing.T) {
	seeds := chaosSeeds
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runTCPChaos(t, int64(seed), "failover")
		})
	}
}

// TestChaosMigration interleaves live migrations with the PR 4 fault
// mix: primaries ping-pong between replicas mid-workload while kills,
// restarts, out-of-band promotions and connection drops fire around
// them. The invariants are the same — zero lost acked actions, no
// double-applies, replica convergence, global-order equality at round
// boundaries — now holding across drain windows, route-table updates
// and epoch-fencing promotions too.
func TestChaosMigration(t *testing.T) {
	seeds := chaosSeeds
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runTCPChaos(t, int64(seed), "migration")
		})
	}
}
