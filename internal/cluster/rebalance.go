package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/manager"
	"repro/internal/placement"
)

// Live shard migration. A shard born on one server set is not pinned to
// it: the Rebalancer moves a shard's primary onto a fresh server with
// zero lost acked actions, composing the elastic-membership primitives
// of internal/manager (attach/resync, drain, promote, epoch fencing)
// in the order recoverable-request systems prescribe:
//
//  1. attach — the target joins the primary's replication fan-out and
//     receives a full state snapshot over the existing stream;
//  2. catch up — repeated resyncs chase the live commit stream until
//     the target is within one drain window of the primary;
//  3. drain — the source refuses new asks with ErrDraining (a retryable
//     sentinel the shard clients wait out) while in-flight tickets and
//     queued group commits settle;
//  4. final sync — with the source quiescent, one more snapshot makes
//     the target byte-identical;
//  5. promote — the target becomes primary of a fresh epoch, and an
//     empty frame of that epoch fences the source (the same epoch rule
//     that already governs failover: the source demotes itself and
//     refuses further writes);
//  6. rewire — the new primary attaches the shard's surviving
//     followers, so sync acks and gap healing keep working;
//  7. retire — the source leaves the route table; the generation bump
//     routes any still-settling two-phase grants through the gateway's
//     resume path instead of a retired server.
//
// Failure at any step before promotion resumes the source, so an
// aborted migration never wedges the shard.

// Rebalancer drives live migrations against a gateway's shards. It is
// also the control plane's data-plane adapter: it satisfies
// placement.LoadSource (Loads) and placement.Mover (Move), so a
// placement.Controller autopilots migrations through it.
type Rebalancer struct {
	gw *Gateway
	// StatsTimeout bounds each shard's readout within Stats/Loads. Zero
	// means defaultStatsTimeout.
	StatsTimeout time.Duration
}

// Rebalancer returns a migration driver for the gateway's shards.
func (g *Gateway) Rebalancer() *Rebalancer { return &Rebalancer{gw: g} }

// MigrateOptions tune one migration.
type MigrateOptions struct {
	// Retire drops the source from the shard's route table after the
	// promotion (the operator will stop the server). Off, the source
	// stays listed as a follower of the new primary — the mode chaos
	// schedules use to ping-pong a primary inside a fixed set.
	Retire bool
	// CatchupRounds bounds the pre-drain resync chase (step 2); the
	// drain closes whatever gap remains. 0 means a small default.
	CatchupRounds int
}

// defaultCatchupRounds bounds the live catch-up chase before draining.
const defaultCatchupRounds = 8

// Topology reports every shard's endpoint list alongside the serving
// node's view of itself (role, epoch, steps, streams, drain state).
type ShardTopology struct {
	Shard   int
	Addrs   []string
	Primary manager.TopologyInfo
}

// Topology collects the current route table and each shard's primary
// topology (best effort: an unreachable shard reports its error).
func (r *Rebalancer) Topology(ctx context.Context) ([]ShardTopology, error) {
	out := make([]ShardTopology, len(r.gw.shards))
	var firstErr error
	for i, sc := range r.gw.shards {
		out[i] = ShardTopology{Shard: i, Addrs: sc.Addrs()}
		cl, _, err := sc.primaryConn(ctx)
		if err == nil {
			var ti manager.TopologyInfo
			if ti, err = cl.Topology(ctx); err == nil {
				out[i].Primary = ti
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: shard %d topology: %w", i, err)
		}
	}
	return out, firstErr
}

// observePhase records one migration step's duration into the gateway's
// metrics registry as ix_migrate_phase_ns{phase="..."} (no-op without a
// registry — obs metrics are nil-safe).
func (r *Rebalancer) observePhase(name string, start time.Time) {
	r.gw.reg.Histogram(`ix_migrate_phase_ns{phase="` + name + `"}`).ObserveDuration(r.gw.clk.Since(start))
}

// ShardStats pairs a shard's route info with its serving primary's stats
// snapshot — the per-shard load view (asks/s, queue depth, memo hit rate)
// a rebalancing controller reads before picking a migration.
type ShardStats struct {
	Shard   int                   `json:"shard"`
	Addrs   []string              `json:"addrs"`
	Primary string                `json:"primary,omitempty"`
	Stats   manager.StatsSnapshot `json:"stats"`
	Err     string                `json:"err,omitempty"`
}

// defaultStatsTimeout bounds one shard's readout within Stats. The
// autopilot polls Stats on a cadence, so a single unreachable shard must
// cost one bounded timeout — not stall the whole fleet's readout.
const defaultStatsTimeout = 2 * time.Second

// Stats collects every shard primary's stats snapshot, all shards
// concurrently with a bounded per-shard timeout (best effort: an
// unreachable shard reports its error in its slot and the lowest-shard
// failure is returned alongside the partial result).
func (r *Rebalancer) Stats(ctx context.Context) ([]ShardStats, error) {
	timeout := r.StatsTimeout
	if timeout <= 0 {
		timeout = defaultStatsTimeout
	}
	out := make([]ShardStats, len(r.gw.shards))
	var wg sync.WaitGroup
	for i, sc := range r.gw.shards {
		wg.Add(1)
		go func(i int, sc *ShardClient) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			out[i] = ShardStats{Shard: i, Addrs: sc.Addrs()}
			cl, addr, err := sc.primaryConn(sctx)
			if err == nil {
				out[i].Primary = addr
				var st manager.StatsSnapshot
				if st, err = cl.Stats(sctx); err == nil {
					out[i].Stats = st
				}
			}
			if err != nil {
				out[i].Err = err.Error()
			}
		}(i, sc)
	}
	wg.Wait()
	var firstErr error
	for i := range out {
		if out[i].Err != "" {
			firstErr = fmt.Errorf("cluster: shard %d stats: %s", i, out[i].Err)
			break
		}
	}
	return out, firstErr
}

// Loads satisfies placement.LoadSource: the Stats readout reduced to the
// control plane's three signals (plus identity), errors carried per
// shard so the controller can skip unreadable shards without losing the
// rest of the fleet.
func (r *Rebalancer) Loads(ctx context.Context) ([]placement.ShardLoad, error) {
	stats, err := r.Stats(ctx)
	out := make([]placement.ShardLoad, len(stats))
	for i, s := range stats {
		out[i] = placement.ShardLoad{
			Shard:       s.Shard,
			Primary:     s.Primary,
			AskRate:     s.Stats.AskRate,
			QueueDepth:  s.Stats.QueueDepth,
			MemoHitRate: s.Stats.MemoHitRate,
			Steps:       uint64(s.Stats.Steps),
			Err:         s.Err,
		}
	}
	return out, err
}

// Move satisfies placement.Mover: one live migration, retiring the
// source when asked.
func (r *Rebalancer) Move(ctx context.Context, shard int, target string, retire bool) error {
	return r.MigrateShard(ctx, shard, target, MigrateOptions{Retire: retire})
}

// primaryConn returns the shard's elected serving connection and its
// address. The connection is shared with ordinary traffic (the wire
// client multiplexes); callers must not close it.
func (s *ShardClient) primaryConn(ctx context.Context) (*manager.Client, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", manager.ErrClosed
	}
	if s.cl == nil {
		if _, err := s.electLocked(ctx); err != nil {
			return nil, "", err
		}
	}
	return s.cl, s.addrs[s.cur], nil
}

// MigrateShard moves shard's primary onto the server at target (which
// must already be running as an empty or stale follower). On success the
// target serves the shard as primary of a fresh epoch, the source is
// fenced, and — with opts.Retire — removed from the route table. Clients
// keep working throughout: asks hitting the drain window are waited out
// by the shard clients, and no acked action is lost (the promotion only
// happens after the drained source's final snapshot is on the target).
func (r *Rebalancer) MigrateShard(ctx context.Context, shard int, target string, opts MigrateOptions) error {
	if shard < 0 || shard >= len(r.gw.shards) {
		return fmt.Errorf("cluster: shard %d out of range (%d shards)", shard, len(r.gw.shards))
	}
	sc := r.gw.shards[shard]
	// One migration per shard at a time — across every Rebalancer over
	// this gateway, and across the whole gateway fleet when a shared
	// route table is attached: two concurrent promotions from the same
	// epoch would mint two primaries of epoch E+1 — a split brain whose
	// loser's acked writes die with its timeline.
	unlock := r.gw.migrateLock(shard)
	defer unlock()

	// Step 0: the target joins the route table up front. Safe mid-flight:
	// a follower never wins the election while the live primary holds the
	// highest epoch, and after the promotion this very entry is what the
	// failover election repoints clients to. Through the shared table the
	// entry reaches every gateway of the fleet.
	if err := r.gw.routeAdd(shard, target); err != nil {
		return fmt.Errorf("cluster: migrate shard %d: route %s: %w", shard, target, err)
	}
	cl, source, err := sc.primaryConn(ctx)
	if err != nil {
		return fmt.Errorf("cluster: migrate shard %d: no primary: %w", shard, err)
	}
	if source == target {
		return nil // already serving there
	}

	// Steps 1+2: attach and chase the live stream.
	rounds := opts.CatchupRounds
	if rounds <= 0 {
		rounds = defaultCatchupRounds
	}
	var tgt manager.ReplStatus
	phaseStart := r.gw.clk.Now()
	for i := 0; ; i++ {
		if tgt, err = cl.Migrate(ctx, target); err != nil {
			return fmt.Errorf("cluster: migrate shard %d: attach %s: %w", shard, target, err)
		}
		if i == 0 {
			r.observePhase("attach", phaseStart)
			phaseStart = r.gw.clk.Now()
		}
		src, err := cl.Role(ctx)
		if err != nil {
			return fmt.Errorf("cluster: migrate shard %d: source role: %w", shard, err)
		}
		if tgt.Steps >= src.Steps || i >= rounds {
			break // caught up (or close enough — the drain freezes the rest)
		}
	}
	r.observePhase("catchup", phaseStart)

	// Step 3: drain the source. From here on a failure must resume it,
	// or the shard stays wedged refusing asks — including a failure of
	// the drain call itself: Drain leaves the manager draining when its
	// wait times out, and the server-side drain may even complete after
	// the RPC already failed.
	fail := func(err error) error {
		rctx, cancel := context.WithTimeout(context.Background(), shardSettleTimeout)
		defer cancel()
		if rerr := cl.Resume(rctx); rerr != nil {
			return fmt.Errorf("%w (and resuming %s failed: %v)", err, source, rerr)
		}
		return err
	}
	phaseStart = r.gw.clk.Now()
	if err := cl.Drain(ctx); err != nil {
		return fail(fmt.Errorf("cluster: migrate shard %d: drain %s: %w", shard, source, err))
	}
	r.observePhase("drain", phaseStart)

	// Step 4: final sync against the quiescent source.
	phaseStart = r.gw.clk.Now()
	src, err := cl.Role(ctx)
	if err != nil {
		return fail(fmt.Errorf("cluster: migrate shard %d: source role: %w", shard, err))
	}
	if tgt, err = cl.Migrate(ctx, target); err != nil {
		return fail(fmt.Errorf("cluster: migrate shard %d: final sync: %w", shard, err))
	}
	if tgt.Steps < src.Steps {
		return fail(fmt.Errorf("cluster: migrate shard %d: target at %d steps, source at %d after drain", shard, tgt.Steps, src.Steps))
	}
	r.observePhase("final_sync", phaseStart)

	// Step 5: promote the target and fence the source with an empty frame
	// of the new epoch. The fence's reply position check may report
	// ErrReplGap — irrelevant: the demotion happens in the epoch adoption
	// that precedes it, and ErrStaleEpoch means someone with an even
	// higher epoch fenced the source already.
	phaseStart = r.gw.clk.Now()
	tcl, err := manager.DialWith(target, manager.DialOptions{Dialer: r.gw.shards[shard].opts.Dialer})
	if err != nil {
		return fail(fmt.Errorf("cluster: migrate shard %d: dial target: %w", shard, err))
	}
	defer tcl.Close()
	epoch, err := tcl.Promote(ctx)
	if err != nil {
		return fail(fmt.Errorf("cluster: migrate shard %d: promote %s: %w", shard, target, err))
	}
	if _, err := cl.Replicate(ctx, manager.ReplFrame{Epoch: epoch}); err != nil &&
		!errors.Is(err, manager.ErrReplGap) && !errors.Is(err, manager.ErrStaleEpoch) {
		// The target is promoted either way; an unreachable source is
		// fenced by the epoch rule the moment anything of the new epoch
		// reaches it. Report, but do not resume — resuming a node the new
		// primary cannot fence would invite a split brain.
		return fmt.Errorf("cluster: migrate shard %d: fence %s: %w", shard, source, err)
	}
	r.observePhase("promote", phaseStart)

	// Step 6: the new primary takes over the shard's replication fan-out:
	// every surviving endpoint except itself — and except the source when
	// it is being retired — becomes a follower stream (attach is also
	// what heals a stale follower, via its snapshot resync).
	phaseStart = r.gw.clk.Now()
	for _, addr := range sc.Addrs() {
		if addr == target || (addr == source && opts.Retire) {
			continue
		}
		if _, err := tcl.Migrate(ctx, addr); err != nil {
			return fmt.Errorf("cluster: migrate shard %d: rewire %s under %s: %w", shard, addr, target, err)
		}
	}
	r.observePhase("rewire", phaseStart)

	// Step 7: route-table update. Retiring bumps the generation when the
	// serving connection pointed at the source, which routes still-open
	// two-phase grants through the gateway's resume path.
	if opts.Retire {
		phaseStart = r.gw.clk.Now()
		if err := r.gw.routeRemove(shard, source); err != nil {
			return fmt.Errorf("cluster: migrate shard %d: unroute %s: %w", shard, source, err)
		}
		if err := tcl.Retire(ctx, source); err != nil && !errors.Is(err, manager.ErrClosed) {
			// The new primary never streamed to the source; detach is a
			// no-op there, but surface real failures.
			return fmt.Errorf("cluster: migrate shard %d: retire %s: %w", shard, source, err)
		}
		r.observePhase("retire", phaseStart)
	}
	return nil
}
