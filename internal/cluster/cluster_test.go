package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/manager"
	"repro/internal/parse"
)

var bg = context.Background()

func act(s string) expr.Action {
	a, err := expr.ParseActionString(s)
	if err != nil {
		panic(err)
	}
	return a
}

// shard is one shard server under test control: its manager, server and
// persistence paths, restartable in place on a stable address.
type shard struct {
	t    *testing.T
	e    *expr.Expr
	opts manager.Options
	addr string
	m    *manager.Manager
	srv  *manager.Server
}

func (sh *shard) start() {
	sh.t.Helper()
	m, err := manager.New(sh.e, sh.opts)
	if err != nil {
		sh.t.Fatalf("shard manager: %v", err)
	}
	addr := sh.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		sh.t.Fatalf("shard listen: %v", err)
	}
	sh.m = m
	sh.srv = manager.NewServer(m, ln)
	sh.addr = sh.srv.Addr()
}

// stop simulates a crash-stop: the server goes away; the manager is
// closed so its log is flushed (process death with a durable disk).
// Idempotent, so tests may retire a shard the cleanup also stops.
func (sh *shard) stop() {
	if sh.srv == nil {
		return
	}
	sh.srv.Close()
	sh.m.Close()
	sh.srv = nil
}

// startCluster brings up one shard server per coupling operand and a
// gateway over them. withPersistence enables per-shard action logs and
// snapshots (checkpoint every K confirms).
func startCluster(t *testing.T, src string, withPersistence bool, k int) (*Gateway, []*shard) {
	t.Helper()
	e := parse.MustParse(src)
	parts := Partition(e)
	shards := make([]*shard, len(parts))
	addrs := make([]string, len(parts))
	for i, part := range parts {
		opts := manager.Options{ReservationTimeout: 2 * time.Second}
		if withPersistence {
			dir := t.TempDir()
			opts.LogPath = filepath.Join(dir, "actions.log")
			opts.SnapshotPath = filepath.Join(dir, "state.snap")
			opts.SnapshotEvery = k
		}
		shards[i] = &shard{t: t, e: part, opts: opts}
		shards[i].start()
		addrs[i] = shards[i].addr
	}
	gw, err := NewGateway(e, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		gw.Close()
		for _, sh := range shards {
			sh.stop()
		}
	})
	if err := gw.Ping(bg); err != nil {
		t.Fatal(err)
	}
	return gw, shards
}

// TestGatewayGrantsOnlyGloballyPermissible: an action shared between
// shards is granted iff every involved shard permits it, and a refusal
// rolls the already-granted reservations back without a trace.
func TestGatewayGrantsOnlyGloballyPermissible(t *testing.T) {
	gw, _ := startCluster(t, "(a - b)* @ (b - c)*", false, 0)

	if got := gw.Route(act("b")); len(got) != 2 {
		t.Fatalf("b should involve both shards, got %v", got)
	}

	// b is denied globally: shard 0 requires a first.
	if err := gw.Request(bg, act("b")); err == nil {
		t.Fatal("b before a should be denied")
	} else if !errors.Is(err, manager.ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}

	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatalf("a: %v", err)
	}
	if err := gw.Request(bg, act("b")); err != nil {
		t.Fatalf("b after a: %v", err)
	}

	// Second b: shard 0 refuses (needs a again) — shard 1's reservation
	// must be rolled back, so its state still expects c, not b.
	if err := gw.Request(bg, act("b")); err == nil {
		t.Fatal("second b should be denied by shard 0")
	}
	if err := gw.Request(bg, act("c")); err != nil {
		t.Fatalf("c after rollback: %v (shard 1 advanced during an aborted grant)", err)
	}
	if err := gw.Request(bg, act("c")); err == nil {
		t.Fatal("second c should be denied (one b, one c)")
	}
}

// TestGatewayAskConfirmAbort: the explicit two-phase surface.
func TestGatewayAskConfirmAbort(t *testing.T) {
	gw, _ := startCluster(t, "(a - b)* @ (b - c)*", false, 0)

	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	tk, err := gw.Ask(bg, act("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.Abort(bg, tk); err != nil {
		t.Fatal(err)
	}
	// After the abort nothing moved: b is still permissible.
	ok, err := gw.Try(bg, act("b"))
	if err != nil || !ok {
		t.Fatalf("try b after abort: %v %v", ok, err)
	}
	tk, err = gw.Ask(bg, act("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.Confirm(bg, tk); err != nil {
		t.Fatal(err)
	}
	if err := gw.Confirm(bg, tk); !errors.Is(err, manager.ErrUnknownTicket) {
		t.Fatalf("double confirm: want ErrUnknownTicket, got %v", err)
	}
	ok, err = gw.Try(bg, act("c"))
	if err != nil || !ok {
		t.Fatalf("try c after confirmed b: %v %v", ok, err)
	}
}

// TestGatewayDisjointConcurrent: disjoint-alphabet traffic spreads over
// the shards and every request lands.
func TestGatewayDisjointConcurrent(t *testing.T) {
	gw, shards := startCluster(t, "(a1 | b1)* @ (a2 | b2)* @ (a3 | b3)*", false, 0)

	const workers, each = 9, 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("a%d", w%3+1)
			if w%2 == 1 {
				name = fmt.Sprintf("b%d", w%3+1)
			}
			for j := 0; j < each; j++ {
				if err := gw.Request(bg, act(name)); err != nil {
					t.Errorf("request %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, sh := range shards {
		total += sh.m.Steps()
	}
	if total != workers*each {
		t.Fatalf("committed transitions: got %d want %d", total, workers*each)
	}
	for i, sh := range shards {
		if got := sh.m.Steps(); got != workers/3*each {
			t.Errorf("shard %d steps: got %d want %d", i, got, workers/3*each)
		}
	}
}

// TestGatewayShardRestartRecovery is the acceptance scenario: a shard
// server crashes mid-workload and is restarted on the same address; the
// snapshot + log-tail recovery restores its exact state and the gateway
// reconnects and keeps granting only globally-permissible actions.
func TestGatewayShardRestartRecovery(t *testing.T) {
	gw, shards := startCluster(t, "(a - b)* @ (b - c)*", true, 2)

	// Advance to mid-round: a b confirmed on both shards, c pending.
	for _, s := range []string{"a", "b", "a"} {
		if err := gw.Request(bg, act(s)); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}

	// Crash and restart shard 1 (the (b - c)* shard) in place.
	shards[1].stop()
	shards[1].start()

	// First contact re-syncs the connection (idempotent probe retries
	// through the reconnect).
	ok, err := gw.Try(bg, act("c"))
	if err != nil {
		t.Fatalf("try after restart: %v", err)
	}
	if !ok {
		t.Fatal("c should be permissible after recovery (one unmatched b)")
	}
	if got := shards[1].m.Steps(); got != 1 {
		t.Fatalf("recovered shard steps: got %d want 1", got)
	}

	// b involves the restarted shard: it must be denied there (c is due)
	// even though shard 0 would grant it — and the denial must roll shard
	// 0 back correctly.
	if err := gw.Request(bg, act("b")); err == nil {
		t.Fatal("b should be denied by the recovered shard")
	}
	if err := gw.Request(bg, act("c")); err != nil {
		t.Fatalf("c after recovery: %v", err)
	}
	// Now the next round proceeds across both shards.
	if err := gw.Request(bg, act("b")); err != nil {
		t.Fatalf("b after c: %v", err)
	}
}

// TestGatewaySubscribe: the aggregated subscription informs on flips of
// the conjunction of the involved shards' statuses.
func TestGatewaySubscribe(t *testing.T) {
	gw, _ := startCluster(t, "(a - b)* @ (b - c)*", false, 0)

	ch, cancel, err := gw.Subscribe(act("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	wait := func(want bool) {
		t.Helper()
		deadline := time.After(2 * time.Second)
		for {
			select {
			case inf, ok := <-ch:
				if !ok {
					t.Fatal("subscription channel closed")
				}
				if inf.Permissible == want {
					return
				}
				// Intermediate statuses while shard informs trickle in are
				// permissible refinements; keep waiting for the target.
			case <-deadline:
				t.Fatalf("inform %v timed out", want)
			}
		}
	}
	wait(false) // shard 0 blocks b until a
	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	wait(true) // both shards now permit b
	if err := gw.Request(bg, act("b")); err != nil {
		t.Fatal(err)
	}
	wait(false) // shard 0 needs a again AND shard 1 needs c
}

// TestGatewayOverWire: a gateway served via NewCoordServer is
// indistinguishable from a manager to an ordinary wire client.
func TestGatewayOverWire(t *testing.T) {
	gw, _ := startCluster(t, "(a - b)* @ (b - c)*", false, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := manager.NewCoordServer(gw, ln)
	defer srv.Close()

	cl, err := manager.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	tk, err := cl.Ask(bg, act("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Confirm(bg, tk); err != nil {
		t.Fatal(err)
	}
	if err := cl.Request(bg, act("b")); err == nil {
		t.Fatal("second b should be denied through the wire too")
	}
	sub, err := cl.Subscribe(bg, act("c"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case inf := <-sub.C:
		if !inf.Permissible {
			t.Fatal("c should be permissible (b confirmed)")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("initial inform timed out")
	}
}

// TestGatewayUnknownAction: actions outside every shard alphabet are
// denied without any network round trip.
func TestGatewayUnknownAction(t *testing.T) {
	gw, _ := startCluster(t, "(a - b)* @ (b - c)*", false, 0)
	if err := gw.Request(bg, act("zz")); !errors.Is(err, manager.ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}
	ok, err := gw.Try(bg, act("zz"))
	if err != nil || ok {
		t.Fatalf("try zz: %v %v", ok, err)
	}
}
