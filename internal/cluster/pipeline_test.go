package cluster

import (
	"errors"
	"testing"

	"repro/internal/expr"
	"repro/internal/manager"
)

// TestGatewayRequestMany groups a mixed burst — single-shard actions for
// three different shards plus a cross-shard action and a denial — and
// checks every slot settles with the right outcome.
func TestGatewayRequestMany(t *testing.T) {
	gw, shards := startCluster(t, "(a1 - b1)* @ (a2 - b2)* @ (a3 - b3)* @ (b1 - b3)*", false, 0)
	burst := []expr.Action{
		act("a1"), act("a2"), act("a3"), // one frame per shard, concurrently
		act("b2"),       // same shard as a2, ordered after it in the frame
		act("b1"),       // cross-shard: two-phase across shards 0 and 3
		act("a1"),       // denied in its frame: the first a1 already ran, b1 is due
		act("unrouted"), // in no shard's alphabet
	}
	errs := gw.RequestMany(bg, burst)
	for i := 0; i <= 4; i++ {
		if errs[i] != nil {
			t.Fatalf("slot %d (%s): %v", i, burst[i], errs[i])
		}
	}
	if !errors.Is(errs[5], manager.ErrDenied) {
		t.Fatalf("slot 5 = %v, want ErrDenied", errs[5])
	}
	if !errors.Is(errs[6], manager.ErrDenied) {
		t.Fatalf("slot 6 = %v, want ErrDenied", errs[6])
	}
	wantSteps := []int{2, 2, 1, 1} // a1, b1 | a2, b2 | a3 | b1
	for i, sh := range shards {
		if got := sh.m.Steps(); got != wantSteps[i] {
			t.Fatalf("shard %d steps = %d, want %d", i, got, wantSteps[i])
		}
	}
}

// TestGatewayRequestManyBurstThroughput pushes a large disjoint burst and
// verifies exactly-once application across shards (the pipelined path the
// benchmarks measure).
func TestGatewayRequestManyBurstThroughput(t *testing.T) {
	gw, shards := startCluster(t, "(a1 | b1)* @ (a2 | b2)* @ (a3 | b3)*", false, 0)
	const rounds, perShard = 4, 32
	names := []string{"a1", "a2", "a3"}
	for r := 0; r < rounds; r++ {
		var burst []expr.Action
		for i := 0; i < perShard; i++ {
			for _, n := range names {
				burst = append(burst, act(n))
			}
		}
		for i, err := range gw.RequestMany(bg, burst) {
			if err != nil {
				t.Fatalf("round %d slot %d: %v", r, i, err)
			}
		}
	}
	for i, sh := range shards {
		if got := sh.m.Steps(); got != rounds*perShard {
			t.Fatalf("shard %d steps = %d, want %d", i, got, rounds*perShard)
		}
	}
}
