package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/parse"
	"repro/internal/placement"
)

// Multi-gateway serving tier tests: N stateless gateways sharing one
// placement.RouteTable must all observe every topology change — a
// migration driven through any one of them repoints the whole fleet.

// startTableFleet brings up one shard server per coupling operand, a
// shared route table over their addresses, and n gateways following it.
func startTableFleet(t *testing.T, src string, n int) ([]*Gateway, []*shard, *placement.RouteTable) {
	t.Helper()
	e := parse.MustParse(src)
	parts := Partition(e)
	shards := make([]*shard, len(parts))
	rows := make([][]string, len(parts))
	for i, part := range parts {
		shards[i] = &shard{t: t, e: part, opts: manager.Options{ReservationTimeout: 2 * time.Second}}
		shards[i].start()
		rows[i] = []string{shards[i].addr}
	}
	table := placement.MustRouteTable(rows)
	gws := make([]*Gateway, n)
	for i := range gws {
		gw, err := NewReplicatedGateway(e, nil, GatewayOptions{RouteTable: table})
		if err != nil {
			t.Fatal(err)
		}
		gws[i] = gw
	}
	t.Cleanup(func() {
		for _, gw := range gws {
			gw.Close()
		}
		for _, sh := range shards {
			sh.stop()
		}
	})
	return gws, shards, table
}

// TestMultiGatewaySharedTableConvergence: a migration driven through one
// gateway's Rebalancer repoints every gateway of the fleet; a gateway
// closed mid-fleet detaches cleanly and the rest keep converging.
func TestMultiGatewaySharedTableConvergence(t *testing.T) {
	const src = "(a - b)*"
	gws, shards, table := startTableFleet(t, src, 3)

	// All three gateways serve from the shared table.
	for i, gw := range gws {
		if gw.RouteTable() != table {
			t.Fatalf("gateway %d not attached", i)
		}
		if err := gw.Request(bg, act([]string{"a", "b", "a"}[i])); err != nil {
			t.Fatalf("gateway %d request: %v", i, err)
		}
	}

	// Migrate the shard through gateway 0; retire the source.
	fresh, target := newFollowerNode(t, src)
	ctx, cancel := context.WithTimeout(bg, 10*time.Second)
	defer cancel()
	if err := gws[0].Rebalancer().MigrateShard(ctx, 0, target, MigrateOptions{Retire: true}); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	// The route change reached every gateway before MigrateShard returned
	// — that is the synchronous fan-out contract, so no polling here.
	for i, gw := range gws {
		if addrs := gw.Shards()[0].Addrs(); len(addrs) != 1 || addrs[0] != target {
			t.Fatalf("gateway %d route after migrate: %v, want [%s]", i, addrs, target)
		}
	}
	if addrs, _ := table.Addrs(0); len(addrs) != 1 || addrs[0] != target {
		t.Fatalf("table route after migrate: %v", addrs)
	}

	// The source is gone for good: every gateway keeps serving.
	shards[0].stop()
	for i, gw := range gws {
		if err := gw.Request(bg, act([]string{"b", "a", "b"}[i])); err != nil {
			t.Fatalf("gateway %d request after migrate: %v", i, err)
		}
	}
	if got := fresh.m.Steps(); got != 6 {
		t.Fatalf("target steps: got %d want 6 (lost acked actions?)", got)
	}

	// A closed gateway detaches; later table changes must not reach it
	// (Set would otherwise touch its closed shard clients) and the rest
	// of the fleet still converges.
	gws[2].Close()
	second, target2 := newFollowerNode(t, src)
	_ = second
	if err := table.Add(0, target2); err != nil {
		t.Fatal(err)
	}
	for i, gw := range gws[:2] {
		if addrs := gw.Shards()[0].Addrs(); len(addrs) != 2 || addrs[1] != target2 {
			t.Fatalf("gateway %d route after add: %v", i, addrs)
		}
	}
	if addrs := gws[2].Shards()[0].Addrs(); len(addrs) != 1 {
		t.Fatalf("closed gateway received fan-out: %v", addrs)
	}
}

// TestGatewayRouteTableValidation: the attached form rejects a shard
// count mismatch and a redundant replicas argument.
func TestGatewayRouteTableValidation(t *testing.T) {
	e := parse.MustParse("(a - b)* @ (b - c)*")
	if _, err := NewReplicatedGateway(e, nil, GatewayOptions{
		RouteTable: placement.MustRouteTable([][]string{{"x"}}),
	}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	table := placement.MustRouteTable([][]string{{"x"}, {"y"}})
	if _, err := NewReplicatedGateway(e, [][]string{{"x"}, {"y"}}, GatewayOptions{RouteTable: table}); err == nil {
		t.Fatal("replicas alongside RouteTable accepted")
	}
	gw, err := NewReplicatedGateway(e, nil, GatewayOptions{RouteTable: table})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if addrs := gw.Shards()[1].Addrs(); len(addrs) != 1 || addrs[0] != "y" {
		t.Fatalf("gateway did not adopt table addresses: %v", addrs)
	}
}

// TestRebalancerStatsPartial: with one shard unreachable, the parallel
// Stats readout still returns the healthy shard's snapshot, the dead
// shard's slot carries its error, and the whole call is bounded by the
// per-shard timeout — not one full dial timeout per dead shard.
func TestRebalancerStatsPartial(t *testing.T) {
	const src = "(a - b)* @ (b - c)*"
	gw, shards := startCluster(t, src, false, 0)
	// Prime both serving connections, then kill shard 1. The readout must
	// notice the dead connection rather than reuse it blindly.
	if _, err := gw.Rebalancer().Stats(bg); err != nil {
		t.Fatal(err)
	}
	shards[1].stop()

	reb := gw.Rebalancer()
	reb.StatsTimeout = 2 * time.Second
	start := time.Now()
	stats, err := reb.Stats(bg)
	if err == nil {
		t.Fatal("Stats with a dead shard must report the failure")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Stats took %v; per-shard timeout not bounding the readout", elapsed)
	}
	if len(stats) != 2 {
		t.Fatalf("stats len = %d", len(stats))
	}
	if stats[0].Err != "" || stats[0].Primary == "" {
		t.Fatalf("healthy shard readout lost: %+v", stats[0])
	}
	if stats[1].Err == "" {
		t.Fatalf("dead shard reported healthy: %+v", stats[1])
	}

	// The Loads adapter carries the same partial view.
	loads, lerr := reb.Loads(bg)
	if lerr == nil || len(loads) != 2 || loads[1].Err == "" || loads[0].Err != "" {
		t.Fatalf("Loads = %+v, %v", loads, lerr)
	}
}
