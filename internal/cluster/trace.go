package cluster

import (
	"sync"
	"time"

	"repro/internal/manager"
)

// Grant tracing. Every two-phase grant the gateway runs (ask-path or the
// multi-shard atomic request) gets a ticket-scoped trace: one timestamped
// event per shard-side reserve, confirm, abort and resume, with the wire
// round-trip duration and the error if any. Completed traces land in a
// fixed-capacity ring; unsettled ask-path grants stay attached to their
// gateway ticket and are reported as pending — so a cross-shard latency
// outlier or a stuck grant is a one-command diagnosis (admin "trace").

// Trace event phases.
const (
	PhaseReserve = "reserve"
	PhaseConfirm = "confirm"
	PhaseAbort   = "abort"
	PhaseResume  = "resume"
)

// Trace outcomes.
const (
	OutcomePending   = "pending"
	OutcomeConfirmed = "confirmed"
	OutcomeAborted   = "aborted"
	OutcomeRefused   = "refused"
	OutcomeFailed    = "failed"
)

// TraceEvent is one shard-side step of a two-phase grant.
type TraceEvent struct {
	Phase  string         `json:"phase"` // reserve | confirm | abort | resume
	Shard  int            `json:"shard"`
	Ticket manager.Ticket `json:"ticket,omitempty"`
	At     time.Time      `json:"at"`     // when the step started
	DurNs  int64          `json:"dur_ns"` // wire round-trip duration
	Err    string         `json:"err,omitempty"`
}

// GrantTrace is the full record of one gateway-level grant. Methods are
// nil-safe, so tracing can be disabled without branching at call sites.
type GrantTrace struct {
	ID      uint64         `json:"id"`
	Ticket  manager.Ticket `json:"ticket,omitempty"` // gateway ticket (ask-path grants)
	Action  string         `json:"action"`
	Start   time.Time      `json:"start"`
	End     time.Time      `json:"end"`
	Outcome string         `json:"outcome"`
	Events  []TraceEvent   `json:"events"`
}

// event appends one step; dur is measured by the caller on the
// gateway's clock (wall or simulated). The trace is thread-confined
// while being built (one goroutine runs the two-phase protocol), so no
// lock.
func (t *GrantTrace) event(phase string, shard int, tk manager.Ticket, start time.Time, dur time.Duration, err error) {
	if t == nil {
		return
	}
	ev := TraceEvent{Phase: phase, Shard: shard, Ticket: tk, At: start, DurNs: dur.Nanoseconds()}
	if err != nil {
		ev.Err = err.Error()
	}
	t.Events = append(t.Events, ev)
}

// clone deep-copies the trace so readers never alias a live event slice.
func (t *GrantTrace) clone() GrantTrace {
	cp := *t
	cp.Events = append([]TraceEvent(nil), t.Events...)
	return cp
}

// DefaultTraceCapacity is the ring size when GatewayOptions.TraceCapacity
// is zero.
const DefaultTraceCapacity = 256

// traceRing keeps the most recent completed grant traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []*GrantTrace
	next int
	n    int
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		return nil
	}
	return &traceRing{buf: make([]*GrantTrace, capacity)}
}

func (r *traceRing) add(t *GrantTrace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// list returns the retained traces, oldest first.
func (r *traceRing) list() []GrantTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GrantTrace, 0, r.n)
	start := (r.next - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)].clone())
	}
	return out
}
