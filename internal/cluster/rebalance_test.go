package cluster

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/manager"
	"repro/internal/parse"
)

// Live-migration tests. Synchronization is protocol-driven throughout:
// Drain returns only when the source is quiescent, MigrateShard returns
// only when the target is promoted and the route table updated, and the
// one mid-flight test polls the manager's own Draining() state as its
// readiness signal — never a bare sleep standing in for an event.

// newFollowerNode starts a fresh empty follower server for e (the server
// a migration moves a shard onto) and returns it with its address.
func newFollowerNode(t *testing.T, src string) (*shard, string) {
	t.Helper()
	sh := &shard{t: t, e: parse.MustParse(src), opts: manager.Options{
		Follower:     true,
		SyncReplicas: true,
	}}
	sh.start()
	t.Cleanup(func() {
		if sh.srv != nil {
			sh.stop()
		}
	})
	return sh, sh.addr
}

// TestMigrateShardToFreshServer: the runbook in miniature — a shard
// serving live history moves onto a brand-new server with zero lost
// acked actions; the source ends fenced and off the route table.
func TestMigrateShardToFreshServer(t *testing.T) {
	const src = "(a - b)*"
	gw, shards := startCluster(t, src, false, 0)
	for _, name := range []string{"a", "b", "a"} {
		if err := gw.Request(bg, act(name)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	fresh, target := newFollowerNode(t, src)
	reb := gw.Rebalancer()
	ctx, cancel := context.WithTimeout(bg, 10*time.Second)
	defer cancel()
	if err := reb.MigrateShard(ctx, 0, target, MigrateOptions{Retire: true}); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	// The target serves the shard as primary of a fresh epoch and holds
	// every acked action.
	st := fresh.m.Status()
	if st.Role != manager.RolePrimary || st.Epoch == 0 {
		t.Fatalf("target not promoted: %+v", st)
	}
	if st.Steps != 3 {
		t.Fatalf("target steps: got %d want 3 (lost acked actions?)", st.Steps)
	}
	// The source is fenced (demoted by the new epoch) and retired from
	// the route table.
	if got := shards[0].m.Status(); got.Role != manager.RoleFollower {
		t.Fatalf("source not fenced: %+v", got)
	}
	if addrs := gw.Shards()[0].Addrs(); len(addrs) != 1 || addrs[0] != target {
		t.Fatalf("route table after retire: %v", addrs)
	}
	// Traffic continues against the new primary — even after the old
	// server is stopped for good.
	shards[0].stop()
	if err := gw.Request(bg, act("b")); err != nil {
		t.Fatalf("request after migration: %v", err)
	}
	if got := fresh.m.Steps(); got != 4 {
		t.Fatalf("target steps after new traffic: got %d want 4", got)
	}
}

// TestMigrateShardUnderLiveLoad: concurrent clients hammer the gateway
// while a shard migrates; every request must succeed (drain windows are
// waited out, the route repoints mid-flight) and the step accounting
// must balance exactly — zero lost, zero duplicated.
func TestMigrateShardUnderLiveLoad(t *testing.T) {
	const src = "(a1 | b1)* @ (a2 | b2)*"
	gw, shards := startCluster(t, src, false, 0)
	fresh, target := newFollowerNode(t, "(a1 | b1)*")

	const workers, each = 4, 25
	const burstWorkers, bursts, burstLen = 2, 10, 5
	var wg sync.WaitGroup
	errc := make(chan error, workers+burstWorkers)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := []string{"a1", "b1", "a2", "b2"}[w%4]
			<-start
			for j := 0; j < each; j++ {
				ctx, cancel := context.WithTimeout(bg, 10*time.Second)
				err := gw.Request(ctx, act(name))
				cancel()
				if err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	// Pipelined bursts ride through the migration too: a frame refused
	// whole by the draining source is waited out, never surfaced.
	for w := 0; w < burstWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := []string{"a1", "a2"}[w%2]
			<-start
			for j := 0; j < bursts; j++ {
				burst := make([]expr.Action, burstLen)
				for k := range burst {
					burst[k] = act(name)
				}
				ctx, cancel := context.WithTimeout(bg, 10*time.Second)
				errs := gw.RequestMany(ctx, burst)
				cancel()
				for _, err := range errs {
					if err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	close(start)
	ctx, cancel := context.WithTimeout(bg, 15*time.Second)
	defer cancel()
	if err := gw.Rebalancer().MigrateShard(ctx, 0, target, MigrateOptions{Retire: true}); err != nil {
		t.Fatalf("migrate under load: %v", err)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("client-visible error during migration: %v", err)
	default:
	}
	// Shard 0's history is split across source (pre-drain) and target
	// (everything — the final sync carried the source history over);
	// the target must hold every acked shard-0 action.
	perShard := workers/2*each + bursts*burstLen
	if got := fresh.m.Steps(); got != perShard {
		t.Fatalf("migrated shard steps: got %d want %d", got, perShard)
	}
	if got := shards[1].m.Steps(); got != perShard {
		t.Fatalf("untouched shard steps: got %d want %d", got, perShard)
	}
}

// TestMigrateWithInflightTwoPhaseGrant: a reservation held across both
// shards when the migration starts parks the drain; confirming the
// ticket settles it (in-flight tickets settle through a drain by
// contract), the drain completes, and the migration finishes with the
// confirmed action on the target.
func TestMigrateWithInflightTwoPhaseGrant(t *testing.T) {
	gw, shards := startCluster(t, "(a - b)* @ (b - c)*", false, 0)
	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	tk, err := gw.Ask(bg, act("b"))
	if err != nil {
		t.Fatal(err)
	}

	fresh, target := newFollowerNode(t, "(a - b)*")
	migrated := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(bg, 15*time.Second)
		defer cancel()
		migrated <- gw.Rebalancer().MigrateShard(ctx, 0, target, MigrateOptions{Retire: true})
	}()
	// Readiness signal: the source reports draining — the migration is
	// parked waiting for our reservation to settle.
	deadline := time.Now().Add(10 * time.Second)
	for !shards[0].m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("migration never started draining the source")
		}
		time.Sleep(time.Millisecond)
	}
	// Settle the in-flight ticket: allowed while draining, unblocks it.
	if err := gw.Confirm(bg, tk); err != nil {
		t.Fatalf("confirm during drain: %v", err)
	}
	if err := <-migrated; err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if got := fresh.m.Steps(); got != 2 {
		t.Fatalf("target steps: got %d want 2 (a, b — the drained confirm must migrate)", got)
	}
	// The round completes against the migrated shard.
	if err := gw.Request(bg, act("c")); err != nil {
		t.Fatal(err)
	}
	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateUnreachableTargetFailsCleanly: a migration to a dead target
// aborts before touching the source — the shard keeps serving.
func TestMigrateUnreachableTargetFailsCleanly(t *testing.T) {
	gw, shards := startCluster(t, "(a - b)*", false, 0)
	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	// A bound-then-closed listener yields an address nobody serves.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithTimeout(bg, 10*time.Second)
	defer cancel()
	if err := gw.Rebalancer().MigrateShard(ctx, 0, dead, MigrateOptions{Retire: true}); err == nil {
		t.Fatal("migration to a dead target should fail")
	}
	if shards[0].m.Draining() {
		t.Fatal("failed migration left the source draining")
	}
	// The dead target must not linger in the route table as a candidate
	// the next election could stall on — but even if listed, the shard
	// keeps serving.
	if err := gw.Request(bg, act("b")); err != nil {
		t.Fatalf("request after failed migration: %v", err)
	}
}

// TestShardClientRouteTableUpdate: SetAddrs keeps the serving connection
// when its endpoint survives the update (no generation bump, no dropped
// requests) and invalidates + bumps the generation when it does not.
func TestShardClientRouteTableUpdate(t *testing.T) {
	rs := newReplSet(t, parse.MustParse("(a | b)*"), 2, nil)
	sc := NewShardClientSet(rs.addrs, ShardOptions{})
	defer sc.Close()

	if err := sc.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	gen := sc.Generation()
	// Adding an endpoint keeps the connection and the generation.
	sc.AddAddr("127.0.0.1:1") // never dialed: the primary conn is live
	if got := sc.Generation(); got != gen {
		t.Fatalf("generation bumped by a pure add: %d -> %d", gen, got)
	}
	if err := sc.Request(bg, act("b")); err != nil {
		t.Fatalf("request after add: %v", err)
	}
	// Removing the serving endpoint invalidates and bumps.
	sc.RemoveAddr(rs.addrs[0])
	if got := sc.Generation(); got != gen+1 {
		t.Fatalf("generation after removing the serving endpoint: got %d want %d", got, gen+1)
	}
	// The next op re-elects among the survivors (the replica, promoted).
	if err := sc.Request(bg, act("a")); err != nil {
		t.Fatalf("request after remove: %v", err)
	}
	if st := rs.ms[1].Status(); st.Role != manager.RolePrimary {
		t.Fatalf("surviving endpoint not elected: %+v", st)
	}
	// The last endpoint cannot be removed.
	sc.RemoveAddr(rs.addrs[1])
	sc.RemoveAddr("127.0.0.1:1")
	if got := len(sc.Addrs()); got != 1 {
		t.Fatalf("route table emptied: %d endpoints", got)
	}
}

// TestSubscriptionSurvivesMigration: a subscription opened before a
// shard migrates keeps delivering after the source is retired and
// stopped — the healing resubscription follows the route table to the
// new primary.
func TestSubscriptionSurvivesMigration(t *testing.T) {
	gw, shards := startCluster(t, "(a - b)* @ (b - c)*", false, 0)
	fresh, target := newFollowerNode(t, "(a - b)*")

	ch, cancel, err := gw.Subscribe(act("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Combined false (shard 0 wants a first) — the value a frozen slot
	// would be stuck at.
	waitInform(t, ch, false)

	ctx, cancelM := context.WithTimeout(bg, 10*time.Second)
	defer cancelM()
	if err := gw.Rebalancer().MigrateShard(ctx, 0, target, MigrateOptions{Retire: true}); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	// Retire the source server for real: the old subscription stream dies
	// here and must heal onto the migrated shard.
	shards[0].stop()

	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatalf("request after migration: %v", err)
	}
	waitInform(t, ch, true) // only a healed stream on the target flips this
	if err := gw.Request(bg, act("b")); err != nil {
		t.Fatal(err)
	}
	waitInform(t, ch, false)
	if got := fresh.m.Steps(); got != 2 {
		t.Fatalf("target steps: got %d want 2", got)
	}
}

// TestRebalancerTopology reports the route table and primary identity.
func TestRebalancerTopology(t *testing.T) {
	gw, _ := startCluster(t, "(a - b)* @ (b - c)*", false, 0)
	tops, err := gw.Rebalancer().Topology(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) != 2 {
		t.Fatalf("topology shards: %d", len(tops))
	}
	for i, top := range tops {
		if top.Shard != i || len(top.Addrs) != 1 {
			t.Fatalf("shard %d topology: %+v", i, top)
		}
		if top.Primary.Role != manager.RolePrimary || top.Primary.Draining {
			t.Fatalf("shard %d primary: %+v", i, top.Primary)
		}
	}
}

// TestGatewaySetShardAddrs: the operator-facing route-table update,
// including its bounds checks.
func TestGatewaySetShardAddrs(t *testing.T) {
	gw, shards := startCluster(t, "(a - b)* @ (b - c)*", false, 0)
	if err := gw.SetShardAddrs(7, []string{"x"}); err == nil {
		t.Fatal("out-of-range shard should be rejected")
	}
	if err := gw.SetShardAddrs(0, nil); err == nil {
		t.Fatal("empty endpoint list should be rejected")
	}
	// A superset update keeps the shard serving (same endpoint listed).
	if err := gw.SetShardAddrs(0, []string{shards[0].addr, "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	if got := gw.Shards()[0].Addr(); got != shards[0].addr {
		t.Fatalf("first endpoint: got %s want %s", got, shards[0].addr)
	}
	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatalf("request after route update: %v", err)
	}
}

// TestGatewayFinal: the aggregated completeness probe (every shard's
// word must be complete).
func TestGatewayFinal(t *testing.T) {
	gw, _ := startCluster(t, "(a - b)* @ (b - c)*", false, 0)
	if fin, err := gw.Final(bg); err != nil || !fin {
		t.Fatalf("empty word should be complete on both shards: %v %v", fin, err)
	}
	if err := gw.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	if fin, err := gw.Final(bg); err != nil || fin {
		t.Fatalf("mid-round word should be incomplete: %v %v", fin, err)
	}
	for _, name := range []string{"b", "c"} {
		if err := gw.Request(bg, act(name)); err != nil {
			t.Fatal(err)
		}
	}
	if fin, err := gw.Final(bg); err != nil || !fin {
		t.Fatalf("full round should be complete: %v %v", fin, err)
	}
}

// TestSubscriptionEndsOnClientClose: closing the shard client ends its
// self-healing subscriptions — the channel closes instead of redialing a
// retired shard forever.
func TestSubscriptionEndsOnClientClose(t *testing.T) {
	sh := &shard{t: t, e: parse.MustParse("(a - b)*"), opts: manager.Options{}}
	sh.start()
	t.Cleanup(sh.stop)
	sc := NewShardClient(sh.addr)

	ch, cancel, err := sc.Subscribe(bg, act("a"))
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Initial inform arrives.
	select {
	case inf := <-ch:
		if !inf.Permissible {
			t.Fatalf("a should be permissible initially: %+v", inf)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("initial inform timed out")
	}
	// Kill the server: the healing loop starts retrying. Closing the
	// client must end it — the channel closes.
	sh.stop()
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // closed, as required
			}
		case <-deadline:
			t.Fatal("subscription channel did not close after client close")
		}
	}
}
