package mq

import (
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestQueueMetrics: depth/in-flight gauges and the enqueue/redelivery
// counters track the queue's lifecycle, labelled with the queue name.
func TestQueueMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "q.log")
	q, err := Open(path, Options{Metrics: reg, Name: "req"})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m, ok := q.Dequeue()
	if !ok {
		t.Fatal("dequeue failed")
	}
	if err := q.Nack(m.Seq); err != nil {
		t.Fatal(err)
	}
	m, _ = q.Dequeue() // leave one in flight

	snap := reg.Snapshot()
	if got := snap.Counters[`ix_mq_enqueues_total{queue="req"}`]; got != 3 {
		t.Errorf("enqueues: got %d want 3", got)
	}
	if got := snap.Counters[`ix_mq_redeliveries_total{queue="req"}`]; got != 1 {
		t.Errorf("redeliveries: got %d want 1", got)
	}
	if got := snap.Gauges[`ix_mq_depth{queue="req"}`]; got != 2 {
		t.Errorf("depth: got %d want 2", got)
	}
	if got := snap.Gauges[`ix_mq_inflight{queue="req"}`]; got != 1 {
		t.Errorf("inflight: got %d want 1", got)
	}
	if err := q.Ack(m.Seq); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a fresh registry: recovered messages count as replayed
	// (potential redeliveries after a crash).
	reg2 := obs.NewRegistry()
	q2, err := Open(path, Options{Metrics: reg2, Name: "req"})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	snap2 := reg2.Snapshot()
	if got := snap2.Counters[`ix_mq_replayed_total{queue="req"}`]; got != 2 {
		t.Errorf("replayed: got %d want 2", got)
	}
	if got := snap2.Gauges[`ix_mq_depth{queue="req"}`]; got != 2 {
		t.Errorf("depth after reopen: got %d want 2", got)
	}
}

// TestQueueWithoutMetrics: a queue with no registry stays uninstrumented
// and fully functional (nil-safe instruments).
func TestQueueWithoutMetrics(t *testing.T) {
	q, err := Open(filepath.Join(t.TempDir(), "q.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Enqueue([]byte("x")); err != nil {
		t.Fatal(err)
	}
	m, ok := q.Dequeue()
	if !ok {
		t.Fatal("dequeue failed")
	}
	if err := q.Nack(m.Seq); err != nil {
		t.Fatal(err)
	}
}
