package mq

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func tempQueue(t *testing.T) (*Queue, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "q.log")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return q, path
}

func TestEnqueueDequeueAck(t *testing.T) {
	q, _ := tempQueue(t)
	defer q.Close()

	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue should not deliver")
	}
	s1, err := q.Enqueue([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := q.Enqueue([]byte("two"))
	if s2 <= s1 {
		t.Errorf("sequence numbers must increase: %d %d", s1, s2)
	}
	if q.Len() != 2 {
		t.Errorf("Len: got %d", q.Len())
	}
	m, ok := q.Dequeue()
	if !ok || string(m.Payload) != "one" {
		t.Fatalf("FIFO violated: %v %q", ok, m.Payload)
	}
	if q.InFlight() != 1 {
		t.Errorf("InFlight: got %d", q.InFlight())
	}
	if err := q.Ack(m.Seq); err != nil {
		t.Fatal(err)
	}
	if q.InFlight() != 0 {
		t.Errorf("InFlight after ack: got %d", q.InFlight())
	}
}

func TestAckUnknown(t *testing.T) {
	q, _ := tempQueue(t)
	defer q.Close()
	if err := q.Ack(42); err == nil {
		t.Error("ack of unknown message should fail")
	}
	if err := q.Nack(42); err == nil {
		t.Error("nack of unknown message should fail")
	}
}

func TestNackRedelivers(t *testing.T) {
	q, _ := tempQueue(t)
	defer q.Close()
	q.Enqueue([]byte("a"))
	q.Enqueue([]byte("b"))
	m, _ := q.Dequeue()
	if err := q.Nack(m.Seq); err != nil {
		t.Fatal(err)
	}
	m2, _ := q.Dequeue()
	if m2.Seq != m.Seq {
		t.Errorf("nacked message should redeliver first: got %d want %d", m2.Seq, m.Seq)
	}
}

// TestQueueDurability (E16): unacked messages — pending and in-flight —
// survive close/reopen; acked ones do not.
func TestQueueDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	q, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue([]byte("acked"))
	q.Enqueue([]byte("inflight"))
	q.Enqueue([]byte("pending"))
	m1, _ := q.Dequeue()
	q.Ack(m1.Seq)
	q.Dequeue() // "inflight" stays unacked
	q.Close()

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	var got []string
	for {
		m, ok := q2.Dequeue()
		if !ok {
			break
		}
		got = append(got, string(m.Payload))
		q2.Ack(m.Seq)
	}
	if len(got) != 2 || got[0] != "inflight" || got[1] != "pending" {
		t.Errorf("redelivery after reopen: got %v", got)
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	q, _ := Open(path, Options{})
	q.Enqueue([]byte("whole"))
	q.Close()
	// Simulate a crash mid-append: garbage final line without newline.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString(`{"enq":{"seq":99,"pay`)
	f.Close()

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer q2.Close()
	m, ok := q2.Dequeue()
	if !ok || string(m.Payload) != "whole" {
		t.Errorf("intact message lost: %v %q", ok, m.Payload)
	}
	if _, ok := q2.Dequeue(); ok {
		t.Error("torn record must not be delivered")
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	q, _ := Open(path, Options{})
	for i := 0; i < 100; i++ {
		q.Enqueue([]byte(fmt.Sprintf("m%d", i)))
	}
	for i := 0; i < 90; i++ {
		m, _ := q.Dequeue()
		q.Ack(m.Seq)
	}
	before, _ := os.Stat(path)
	if err := q.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	// Remaining messages still there, in order.
	m, ok := q.Dequeue()
	if !ok || string(m.Payload) != "m90" {
		t.Errorf("after compact: got %v %q", ok, m.Payload)
	}
	// And the queue still works (appends go to the new file).
	q.Enqueue([]byte("new"))
	q.Close()

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	count := 0
	for {
		if _, ok := q2.Dequeue(); !ok {
			break
		}
		count++
	}
	// m90 was dequeued but never acked -> redelivered, plus m91..m99 and "new".
	if count != 11 {
		t.Errorf("after compact+reopen: got %d deliverable, want 11", count)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q, _ := tempQueue(t)
	defer q.Close()
	const producers, perProducer = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := q.Enqueue([]byte(fmt.Sprintf("p%d-%d", p, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	done := make(chan int)
	go func() {
		seen := 0
		for seen < producers*perProducer {
			m, ok := q.Dequeue()
			if !ok {
				<-q.Notify()
				continue
			}
			if err := q.Ack(m.Seq); err != nil {
				t.Error(err)
				return
			}
			seen++
		}
		done <- seen
	}()
	wg.Wait()
	if got := <-done; got != producers*perProducer {
		t.Errorf("consumed %d messages", got)
	}
}

func TestClosedQueueErrors(t *testing.T) {
	q, _ := tempQueue(t)
	q.Close()
	if _, err := q.Enqueue([]byte("x")); err != ErrClosed {
		t.Errorf("Enqueue after close: %v", err)
	}
	if err := q.Compact(); err != ErrClosed {
		t.Errorf("Compact after close: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
