package mq

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func tempQueue(t *testing.T) (*Queue, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "q.log")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return q, path
}

func TestEnqueueDequeueAck(t *testing.T) {
	q, _ := tempQueue(t)
	defer q.Close()

	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue should not deliver")
	}
	s1, err := q.Enqueue([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := q.Enqueue([]byte("two"))
	if s2 <= s1 {
		t.Errorf("sequence numbers must increase: %d %d", s1, s2)
	}
	if q.Len() != 2 {
		t.Errorf("Len: got %d", q.Len())
	}
	m, ok := q.Dequeue()
	if !ok || string(m.Payload) != "one" {
		t.Fatalf("FIFO violated: %v %q", ok, m.Payload)
	}
	if q.InFlight() != 1 {
		t.Errorf("InFlight: got %d", q.InFlight())
	}
	if err := q.Ack(m.Seq); err != nil {
		t.Fatal(err)
	}
	if q.InFlight() != 0 {
		t.Errorf("InFlight after ack: got %d", q.InFlight())
	}
}

func TestAckUnknown(t *testing.T) {
	q, _ := tempQueue(t)
	defer q.Close()
	if err := q.Ack(42); err == nil {
		t.Error("ack of unknown message should fail")
	}
	if err := q.Nack(42); err == nil {
		t.Error("nack of unknown message should fail")
	}
}

func TestNackRedelivers(t *testing.T) {
	q, _ := tempQueue(t)
	defer q.Close()
	q.Enqueue([]byte("a"))
	q.Enqueue([]byte("b"))
	m, _ := q.Dequeue()
	if err := q.Nack(m.Seq); err != nil {
		t.Fatal(err)
	}
	m2, _ := q.Dequeue()
	if m2.Seq != m.Seq {
		t.Errorf("nacked message should redeliver first: got %d want %d", m2.Seq, m.Seq)
	}
}

// TestQueueDurability (E16): unacked messages — pending and in-flight —
// survive close/reopen; acked ones do not.
func TestQueueDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	q, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue([]byte("acked"))
	q.Enqueue([]byte("inflight"))
	q.Enqueue([]byte("pending"))
	m1, _ := q.Dequeue()
	q.Ack(m1.Seq)
	q.Dequeue() // "inflight" stays unacked
	q.Close()

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	var got []string
	for {
		m, ok := q2.Dequeue()
		if !ok {
			break
		}
		got = append(got, string(m.Payload))
		q2.Ack(m.Seq)
	}
	if len(got) != 2 || got[0] != "inflight" || got[1] != "pending" {
		t.Errorf("redelivery after reopen: got %v", got)
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	q, _ := Open(path, Options{})
	q.Enqueue([]byte("whole"))
	q.Close()
	// Simulate a crash mid-append: garbage final line without newline.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString(`{"enq":{"seq":99,"pay`)
	f.Close()

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer q2.Close()
	m, ok := q2.Dequeue()
	if !ok || string(m.Payload) != "whole" {
		t.Errorf("intact message lost: %v %q", ok, m.Payload)
	}
	if _, ok := q2.Dequeue(); ok {
		t.Error("torn record must not be delivered")
	}
}

// TestTornTailSurvivesAppendAndRestart is the double-restart regression:
// crash mid-append, reopen, enqueue more, reopen again. Before the torn
// tail was truncated on replay, the post-crash enqueue welded its record
// onto the torn bytes and the second open failed with a mid-file corrupt
// record — the queue was permanently unopenable.
func TestTornTailSurvivesAppendAndRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	q, _ := Open(path, Options{})
	q.Enqueue([]byte("before"))
	q.Close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString(`{"enq":{"seq":99,"pay`) // crash mid-append
	f.Close()

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("first reopen: %v", err)
	}
	if _, err := q2.Enqueue([]byte("after")); err != nil {
		t.Fatal(err)
	}
	q2.Close()

	q3, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("second reopen after post-crash append: %v", err)
	}
	defer q3.Close()
	var got []string
	for {
		m, ok := q3.Dequeue()
		if !ok {
			break
		}
		got = append(got, string(m.Payload))
		q3.Ack(m.Seq)
	}
	if len(got) != 2 || got[0] != "before" || got[1] != "after" {
		t.Errorf("recovered messages: got %v, want [before after]", got)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	q, _ := Open(path, Options{})
	for i := 0; i < 100; i++ {
		q.Enqueue([]byte(fmt.Sprintf("m%d", i)))
	}
	for i := 0; i < 90; i++ {
		m, _ := q.Dequeue()
		q.Ack(m.Seq)
	}
	before, _ := os.Stat(path)
	if err := q.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	// Remaining messages still there, in order.
	m, ok := q.Dequeue()
	if !ok || string(m.Payload) != "m90" {
		t.Errorf("after compact: got %v %q", ok, m.Payload)
	}
	// And the queue still works (appends go to the new file).
	q.Enqueue([]byte("new"))
	q.Close()

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	count := 0
	for {
		if _, ok := q2.Dequeue(); !ok {
			break
		}
		count++
	}
	// m90 was dequeued but never acked -> redelivered, plus m91..m99 and "new".
	if count != 11 {
		t.Errorf("after compact+reopen: got %d deliverable, want 11", count)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q, _ := tempQueue(t)
	defer q.Close()
	const producers, perProducer = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := q.Enqueue([]byte(fmt.Sprintf("p%d-%d", p, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	done := make(chan int)
	go func() {
		seen := 0
		for seen < producers*perProducer {
			m, ok := q.Dequeue()
			if !ok {
				<-q.Notify()
				continue
			}
			if err := q.Ack(m.Seq); err != nil {
				t.Error(err)
				return
			}
			seen++
		}
		done <- seen
	}()
	wg.Wait()
	if got := <-done; got != producers*perProducer {
		t.Errorf("consumed %d messages", got)
	}
}

// crashForTest simulates a process crash: the queue stops dead without
// the Close-time flush and fsync — the on-disk log is whatever previous
// appends (which flush per record) made durable.
func (q *Queue) crashForTest() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.f.Close()
}

// TestCompactCrashRedeliversInflight: messages dequeued but unacked at
// the moment a concurrent Compact rewrites the log must still be
// redelivered after a crash and reopen — the compacted log preserves
// in-flight records as unsettled. Consumers run concurrently with
// repeated compactions; the verification is against the consumer's own
// ack record, so it holds under any interleaving.
func TestCompactCrashRedeliversInflight(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 60
	for i := 0; i < msgs; i++ {
		if _, err := q.Enqueue([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	acked := make(map[uint64]bool)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Dequeue everything, acking every other message: the rest stays
		// in-flight across the compactions running concurrently.
		for i := 0; ; i++ {
			m, ok := q.Dequeue()
			if !ok {
				return
			}
			if i%2 == 0 {
				if err := q.Ack(m.Seq); err != nil {
					t.Errorf("ack %d: %v", m.Seq, err)
					return
				}
				mu.Lock()
				acked[m.Seq] = true
				mu.Unlock()
			}
		}
	}()
	for i := 0; i < 8; i++ {
		if err := q.Compact(); err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
	}
	<-done
	// One more compact with a fully-drained pending set: everything left
	// on disk is in-flight records.
	if err := q.Compact(); err != nil {
		t.Fatal(err)
	}
	q.crashForTest()

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after interrupted run: %v", err)
	}
	defer q2.Close()
	got := make(map[uint64]bool)
	last := uint64(0)
	first := true
	for {
		m, ok := q2.Dequeue()
		if !ok {
			break
		}
		if got[m.Seq] {
			t.Fatalf("message %d redelivered twice", m.Seq)
		}
		if !first && m.Seq <= last {
			t.Fatalf("redelivery out of order: %d after %d", m.Seq, last)
		}
		got[m.Seq], last, first = true, m.Seq, false
	}
	for seq := uint64(0); seq < msgs; seq++ {
		if acked[seq] && got[seq] {
			t.Errorf("acked message %d resurrected by compaction crash", seq)
		}
		if !acked[seq] && !got[seq] {
			t.Errorf("unacked message %d lost across compact+crash", seq)
		}
	}
}

// TestInterruptedCompactTorture mirrors the manager's crash-torture
// style on the queue: seeded random schedules of enqueue / dequeue /
// ack / nack / compact end in a crash at an arbitrary point, and after
// every reopen the deliverable set must be exactly the enqueued-minus-
// acked messages, in ascending sequence order — compaction must never
// lose an unsettled message nor resurrect a settled one, whatever state
// it was interleaved with.
func TestInterruptedCompactTorture(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCompactTorture(t, int64(seed))
		})
	}
}

func runCompactTorture(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	path := filepath.Join(t.TempDir(), "q.log")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	enqueued := make(map[uint64]bool)
	acked := make(map[uint64]bool)
	var held []uint64 // dequeued, not yet acked/nacked (in-flight)
	ops := 40 + rng.Intn(200)
	compactions := 0
	for i := 0; i < ops; i++ {
		switch p := rng.Intn(100); {
		case p < 40:
			seq, err := q.Enqueue([]byte(fmt.Sprintf("s%d-%d", seed, i)))
			if err != nil {
				t.Fatal(err)
			}
			enqueued[seq] = true
		case p < 65:
			if m, ok := q.Dequeue(); ok {
				held = append(held, m.Seq)
			}
		case p < 80:
			if len(held) > 0 {
				j := rng.Intn(len(held))
				if err := q.Ack(held[j]); err != nil {
					t.Fatal(err)
				}
				acked[held[j]] = true
				held = append(held[:j], held[j+1:]...)
			}
		case p < 88:
			if len(held) > 0 {
				j := rng.Intn(len(held))
				if err := q.Nack(held[j]); err != nil {
					t.Fatal(err)
				}
				held = append(held[:j], held[j+1:]...)
			}
		default:
			if err := q.Compact(); err != nil {
				t.Fatalf("compact at op %d: %v", i, err)
			}
			compactions++
		}
	}
	if compactions == 0 {
		if err := q.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	q.crashForTest()

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("seed %d: reopen: %v", seed, err)
	}
	defer q2.Close()
	last, first := uint64(0), true
	seen := make(map[uint64]bool)
	for {
		m, ok := q2.Dequeue()
		if !ok {
			break
		}
		if seen[m.Seq] {
			t.Fatalf("seed %d: %d delivered twice after reopen", seed, m.Seq)
		}
		if !first && m.Seq <= last {
			t.Fatalf("seed %d: redelivery out of order: %d after %d", seed, m.Seq, last)
		}
		seen[m.Seq], last, first = true, m.Seq, false
	}
	for seq := range enqueued {
		if acked[seq] && seen[seq] {
			t.Errorf("seed %d: settled message %d resurrected", seed, seq)
		}
		if !acked[seq] && !seen[seq] {
			t.Errorf("seed %d: unsettled message %d lost", seed, seq)
		}
	}
}

// TestOpenIgnoresStaleCompactTmp: a crash between writing the temp file
// and the atomic rename leaves a stale .compact file next to the log;
// Open must ignore it and a later Compact must replace it.
func TestOpenIgnoresStaleCompactTmp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	q, _ := Open(path, Options{})
	q.Enqueue([]byte("kept"))
	q.Close()
	// The torn temp a crashed compaction leaves behind.
	if err := os.WriteFile(path+".compact", []byte(`{"enq":{"seq":9,"pa`), 0o644); err != nil {
		t.Fatal(err)
	}
	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("open with stale compact tmp: %v", err)
	}
	defer q2.Close()
	m, ok := q2.Dequeue()
	if !ok || string(m.Payload) != "kept" {
		t.Fatalf("message lost: %v %q", ok, m.Payload)
	}
	if err := q2.Nack(m.Seq); err != nil {
		t.Fatal(err)
	}
	if err := q2.Compact(); err != nil {
		t.Fatalf("compact over stale tmp: %v", err)
	}
	if m, ok = q2.Dequeue(); !ok || string(m.Payload) != "kept" {
		t.Fatalf("message lost across compact: %v %q", ok, m.Payload)
	}
}

func TestClosedQueueErrors(t *testing.T) {
	q, _ := tempQueue(t)
	q.Close()
	if _, err := q.Enqueue([]byte("x")); err != ErrClosed {
		t.Errorf("Enqueue after close: %v", err)
	}
	if err := q.Compact(); err != ErrClosed {
		t.Errorf("Compact after close: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
