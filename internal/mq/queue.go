// Package mq implements persistent message queues with at-least-once
// delivery, the communication substrate the paper prescribes for
// manager/client messaging in Sec 7 (following its reference [1],
// Bernstein/Hsu/Mann, "Implementing Recoverable Requests Using Queues").
//
// A queue is an append-only log of enqueue and ack records. Dequeued
// messages stay in-flight until acknowledged; unacknowledged messages —
// including those in flight when the process crashed — are redelivered
// after reopening the queue. Compact rewrites the log without settled
// messages.
package mq

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Msg is one queued message.
type Msg struct {
	Seq     uint64 `json:"seq"`
	Payload []byte `json:"payload"`
}

// record is the on-disk log entry: either an enqueue (Msg set) or an ack.
type record struct {
	Enq *Msg    `json:"enq,omitempty"`
	Ack *uint64 `json:"ack,omitempty"`
}

// ErrClosed is returned by operations on a closed queue.
var ErrClosed = errors.New("mq: queue closed")

// Queue is a durable FIFO queue. All methods are safe for concurrent use.
type Queue struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	w        *bufio.Writer
	nextSeq  uint64
	pending  []Msg           // not yet dequeued, FIFO order
	inflight map[uint64]Msg  // dequeued, not yet acked
	acked    map[uint64]bool // settled (for replay and compaction)
	sync     bool
	closed   bool
	notify   chan struct{} // signalled on enqueue and nack

	enqueues     *obs.Counter // ix_mq_enqueues_total
	redeliveries *obs.Counter // ix_mq_redeliveries_total (nack requeues)
	replayed     *obs.Counter // ix_mq_replayed_total (recovered at open)
}

// Options configure a queue.
type Options struct {
	// Sync forces an fsync after every append, trading throughput for
	// durability against machine crashes (process crashes are always
	// covered).
	Sync bool
	// Metrics, when set, registers the queue's gauges and counters
	// (depth, in-flight, enqueues, redeliveries) under Name.
	Metrics *obs.Registry
	// Name labels this queue's metrics, e.g. ix_mq_depth{queue="name"}.
	// Empty means an unlabelled metric family.
	Name string
}

// mqMetricName labels a metric family with the queue name.
func mqMetricName(base, name string) string {
	if name == "" {
		return base
	}
	return base + `{queue="` + name + `"}`
}

// initMetrics registers the queue's instruments. Nil-safe: with a nil
// registry every instrument is nil and every update is a no-op.
func (q *Queue) initMetrics(reg *obs.Registry, name string) {
	q.enqueues = reg.Counter(mqMetricName("ix_mq_enqueues_total", name))
	q.redeliveries = reg.Counter(mqMetricName("ix_mq_redeliveries_total", name))
	q.replayed = reg.Counter(mqMetricName("ix_mq_replayed_total", name))
	if reg == nil {
		return
	}
	reg.GaugeFunc(mqMetricName("ix_mq_depth", name), func() int64 { return int64(q.Len()) })
	reg.GaugeFunc(mqMetricName("ix_mq_inflight", name), func() int64 { return int64(q.InFlight()) })
}

// Open opens or creates the queue backed by the given file and replays
// its log: messages enqueued but not acknowledged become deliverable
// again, in their original order.
func Open(path string, opts Options) (*Queue, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mq: open: %w", err)
	}
	q := &Queue{
		path:     path,
		f:        f,
		inflight: make(map[uint64]Msg),
		acked:    make(map[uint64]bool),
		sync:     opts.Sync,
		notify:   make(chan struct{}, 1),
	}
	if err := q.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("mq: seek: %w", err)
	}
	q.w = bufio.NewWriter(f)
	q.initMetrics(opts.Metrics, opts.Name)
	// Messages recovered from the log are potential redeliveries: they
	// were enqueued before this open and may already have been handed to
	// a consumer that crashed before acking.
	q.replayed.Add(uint64(len(q.pending)))
	return q, nil
}

// replay scans the log and reconstructs the deliverable set.
func (q *Queue) replay() error {
	var msgs []Msg
	sc := bufio.NewScanner(q.f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	var good int64 // byte offset just past the last well-formed record
	torn := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			good++
			continue
		}
		var r record
		if err := json.Unmarshal(raw, &r); err != nil {
			// A torn final write (crash mid-append) is tolerated and
			// truncated away — leaving the torn bytes in place would let
			// the next append weld a record onto them, turning a benign
			// torn tail into a mid-file corrupt record that fails every
			// later recovery. A corrupt record elsewhere is an error.
			if !sc.Scan() {
				torn = true
				break
			}
			return fmt.Errorf("mq: corrupt record at line %d: %v", line, err)
		}
		good += int64(len(raw)) + 1
		switch {
		case r.Enq != nil:
			msgs = append(msgs, *r.Enq)
			if r.Enq.Seq >= q.nextSeq {
				q.nextSeq = r.Enq.Seq + 1
			}
		case r.Ack != nil:
			q.acked[*r.Ack] = true
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("mq: replay: %w", err)
	}
	if torn {
		if err := q.f.Truncate(good); err != nil {
			return fmt.Errorf("mq: truncate torn tail: %w", err)
		}
	}
	for _, m := range msgs {
		if !q.acked[m.Seq] {
			q.pending = append(q.pending, m)
		}
	}
	sort.Slice(q.pending, func(i, j int) bool { return q.pending[i].Seq < q.pending[j].Seq })
	return nil
}

func (q *Queue) append(r record) error {
	buf, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("mq: marshal: %w", err)
	}
	if _, err := q.w.Write(buf); err != nil {
		return fmt.Errorf("mq: write: %w", err)
	}
	if err := q.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("mq: write: %w", err)
	}
	if err := q.w.Flush(); err != nil {
		return fmt.Errorf("mq: flush: %w", err)
	}
	if q.sync {
		if err := q.f.Sync(); err != nil {
			return fmt.Errorf("mq: sync: %w", err)
		}
	}
	return nil
}

// Enqueue appends a message and returns its sequence number.
func (q *Queue) Enqueue(payload []byte) (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	m := Msg{Seq: q.nextSeq, Payload: append([]byte(nil), payload...)}
	q.nextSeq++
	if err := q.append(record{Enq: &m}); err != nil {
		return 0, err
	}
	q.pending = append(q.pending, m)
	q.enqueues.Inc()
	q.signal()
	return m.Seq, nil
}

// Dequeue removes the oldest deliverable message and marks it in-flight.
// It reports false when the queue is currently empty.
func (q *Queue) Dequeue() (Msg, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.pending) == 0 {
		return Msg{}, false
	}
	m := q.pending[0]
	q.pending = q.pending[1:]
	q.inflight[m.Seq] = m
	return m, true
}

// Ack settles an in-flight message; it will never be delivered again.
func (q *Queue) Ack(seq uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if _, ok := q.inflight[seq]; !ok {
		return fmt.Errorf("mq: ack of unknown message %d", seq)
	}
	if err := q.append(record{Ack: &seq}); err != nil {
		return err
	}
	delete(q.inflight, seq)
	q.acked[seq] = true
	return nil
}

// Nack returns an in-flight message to the front of the queue for
// immediate redelivery (e.g. after a failed processing attempt).
func (q *Queue) Nack(seq uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	m, ok := q.inflight[seq]
	if !ok {
		return fmt.Errorf("mq: nack of unknown message %d", seq)
	}
	delete(q.inflight, seq)
	q.pending = append([]Msg{m}, q.pending...)
	q.redeliveries.Inc()
	q.signal()
	return nil
}

// Len returns the number of deliverable (pending, not in-flight) messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// InFlight returns the number of dequeued but unacknowledged messages.
func (q *Queue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.inflight)
}

// Notify returns a channel that receives a signal whenever a message may
// have become deliverable. Consumers combine it with Dequeue in a loop.
func (q *Queue) Notify() <-chan struct{} { return q.notify }

func (q *Queue) signal() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Compact rewrites the log keeping only unsettled messages. In-flight
// messages are preserved (they are not settled until acked).
func (q *Queue) Compact() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	tmp := q.path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("mq: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	writeMsg := func(m Msg) error {
		buf, err := json.Marshal(record{Enq: &m})
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		_, err = w.Write(buf)
		return err
	}
	// In-flight messages first (older), then pending, sorted by seq for
	// deterministic replay order.
	var live []Msg
	for _, m := range q.inflight {
		live = append(live, m)
	}
	live = append(live, q.pending...)
	sort.Slice(live, func(i, j int) bool { return live[i].Seq < live[j].Seq })
	for _, m := range live {
		if err := writeMsg(m); err != nil {
			f.Close()
			return fmt.Errorf("mq: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("mq: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("mq: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("mq: compact: %w", err)
	}
	if err := os.Rename(tmp, q.path); err != nil {
		return fmt.Errorf("mq: compact: %w", err)
	}
	// Make the rename itself durable: without the directory fsync a
	// machine crash can lose the directory entry swap wholesale and
	// resurrect the pre-compaction log.
	if err := storage.SyncDir(filepath.Dir(q.path)); err != nil {
		return fmt.Errorf("mq: compact: %w", err)
	}
	// Swap the file handle to the compacted log.
	q.w.Flush()
	q.f.Close()
	nf, err := os.OpenFile(q.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("mq: compact reopen: %w", err)
	}
	q.f = nf
	q.w = bufio.NewWriter(nf)
	q.acked = make(map[uint64]bool)
	return nil
}

// Close flushes and closes the queue. In-flight messages remain unacked
// on disk and will be redelivered after the next Open.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	var firstErr error
	if err := q.w.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := q.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := q.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
