package wfms

import (
	"context"
	"sync"

	"repro/internal/expr"
	"repro/internal/manager"
)

// ManagerCoordinator adapts a component (engine or worklist handler) to
// an in-process interaction manager. Actions outside the managed
// expression's alphabet are not interaction-relevant and pass through
// without consultation — the open-world principle of the coupling
// operator applied at the integration boundary (e.g. "write report" in
// Fig 1 is not mentioned by any constraint and never consults the
// manager).
//
// Status probes are cached per manager state: the permissibility of an
// action only changes when a transition commits, so repeated worklist
// refreshes between transitions cost no manager round trips. This is
// the polling-free behaviour the paper's subscription protocol exists
// for, realized with a state-version check.
type ManagerCoordinator struct {
	M     *manager.Manager
	alpha *expr.Alphabet

	mu      sync.Mutex
	version int
	cache   map[string]bool
}

// NewManagerCoordinator wraps an interaction manager.
func NewManagerCoordinator(m *manager.Manager) *ManagerCoordinator {
	return &ManagerCoordinator{
		M:       m,
		alpha:   expr.AlphabetOf(m.Expr()),
		version: -1,
		cache:   make(map[string]bool),
	}
}

// Try reports whether the action is currently permissible (out-of-
// alphabet actions always are).
func (c *ManagerCoordinator) Try(a expr.Action) bool {
	if !c.alpha.Contains(a) {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v := c.M.Steps(); v != c.version {
		c.version = v
		clear(c.cache)
	}
	key := a.Key()
	if ok, hit := c.cache[key]; hit {
		return ok
	}
	ok := c.M.Try(a)
	c.cache[key] = ok
	return ok
}

// Execute wraps run() in the coordination protocol: ask, execute,
// confirm — aborting the reservation if the application part fails.
func (c *ManagerCoordinator) Execute(ctx context.Context, a expr.Action, run func() error) error {
	if !c.alpha.Contains(a) {
		return run()
	}
	t, err := c.M.Ask(ctx, a)
	if err != nil {
		return err
	}
	if err := run(); err != nil {
		// The activity was not executed after all: release the region.
		if aerr := c.M.Abort(t); aerr != nil {
			return aerr
		}
		return err
	}
	return c.M.Confirm(t)
}

var _ Coordinator = (*ManagerCoordinator)(nil)

// RemoteCoordinator adapts a component to an interaction manager reached
// over the wire protocol (the deployment of Fig 10/11 with the manager
// as a separate process).
type RemoteCoordinator struct {
	C     *manager.Client
	alpha *expr.Alphabet
}

// NewRemoteCoordinator wraps a connected manager client; the alphabet of
// the managed expression must be supplied by the caller (the wire
// protocol does not ship expressions).
func NewRemoteCoordinator(c *manager.Client, managed *expr.Expr) *RemoteCoordinator {
	return &RemoteCoordinator{C: c, alpha: expr.AlphabetOf(managed)}
}

// Try probes the action's status remotely; errors degrade to "not
// permissible" (fail closed).
func (c *RemoteCoordinator) Try(a expr.Action) bool {
	if !c.alpha.Contains(a) {
		return true
	}
	ok, err := c.C.Try(context.Background(), a)
	return err == nil && ok
}

// Execute wraps run() in the remote coordination protocol.
func (c *RemoteCoordinator) Execute(ctx context.Context, a expr.Action, run func() error) error {
	if !c.alpha.Contains(a) {
		return run()
	}
	t, err := c.C.Ask(ctx, a)
	if err != nil {
		return err
	}
	if err := run(); err != nil {
		if aerr := c.C.Abort(ctx, t); aerr != nil {
			return aerr
		}
		return err
	}
	return c.C.Confirm(ctx, t)
}

var _ Coordinator = (*RemoteCoordinator)(nil)

// RouterCoordinator adapts a component to a multi-manager router (E17).
type RouterCoordinator struct {
	R     *manager.Router
	alpha *expr.Alphabet
}

// NewRouterCoordinator wraps a router over the full coupled expression.
func NewRouterCoordinator(r *manager.Router, full *expr.Expr) *RouterCoordinator {
	return &RouterCoordinator{R: r, alpha: expr.AlphabetOf(full)}
}

// Try reports the conjunction of the involved managers' statuses.
func (c *RouterCoordinator) Try(a expr.Action) bool {
	if !c.alpha.Contains(a) {
		return true
	}
	return c.R.Try(a)
}

// Execute performs the distributed request around run(). The router's
// two-phase grant subsumes ask/confirm; run() executes after the commit
// (acceptable because the substrate's activity bodies are local).
func (c *RouterCoordinator) Execute(ctx context.Context, a expr.Action, run func() error) error {
	if !c.alpha.Contains(a) {
		return run()
	}
	if err := c.R.Request(ctx, a); err != nil {
		return err
	}
	return run()
}

var _ Coordinator = (*RouterCoordinator)(nil)
