package wfms

import (
	"testing"

	"repro/internal/manager"
	"repro/internal/paper"
)

// TestDynamicEnsemble reproduces the paper's headline differentiator
// against prior work ([3], [18] in its references): coordination of
// *dynamically evolving workflow ensembles* "whose participants are not
// known in advance and might change with time". The constraint is
// defined once; workflows for previously unseen patients join while
// others are mid-flight, and completed ones leave — no merging, no 2ⁿ
// variants, no redefinition.
func TestDynamicEnsemble(t *testing.T) {
	m := manager.MustNew(paper.Fig7Coupled(), manager.Options{})
	defer m.Close()
	e := NewEngine(NewManagerCoordinator(m))
	if err := e.Register(UltrasonographyDef()); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(EndoscopyDef()); err != nil {
		t.Fatal(err)
	}

	// Phase 1: one patient starts and proceeds into the examination.
	p1 := "walk_in_1"
	u1, _ := e.Start("ultrasonography", map[string]string{"p": p1, "x": paper.ExamSono})
	for _, a := range []string{"order", "schedule", paper.ActPrepare, paper.ActCall} {
		execByName(t, e, a, u1)
	}

	// Phase 2: WHILE p1 is inside the examination, a never-before-seen
	// patient arrives and starts both workflows. The quantified
	// constraint covers the newcomer without any reconfiguration.
	p2 := "walk_in_2"
	u2, _ := e.Start("ultrasonography", map[string]string{"p": p2, "x": paper.ExamSono})
	n2, _ := e.Start("endoscopy", map[string]string{"p": p2, "x": paper.ExamEndo})
	for _, inst := range []int{u2, n2} {
		execByName(t, e, "order", inst)
		execByName(t, e, "schedule", inst)
	}
	execByName(t, e, paper.ActPrepare, u2)
	execByName(t, e, paper.ActInform, n2)
	execByName(t, e, paper.ActPrepare, n2)

	// The newcomer is individually constrained immediately: one exam at
	// a time, like anyone else.
	execByName(t, e, paper.ActCall, u2)
	for _, it := range e.Items() {
		if it.Instance == n2 && it.Activity == paper.ActCall {
			t.Fatal("newcomer's second call must be hidden while the first runs")
		}
	}

	// Phase 3: the first patient's workflow completes and leaves the
	// ensemble; the ensemble keeps going.
	execByName(t, e, paper.ActPerform, u1)
	for _, a := range []string{"write_report", "read_report"} {
		execByName(t, e, a, u1)
	}
	if !e.Ended(u1) {
		t.Fatal("p1's workflow should have left the ensemble")
	}

	// Phase 4: a third patient joins after others left; everything still
	// coordinates (and p2's endoscopy unblocks after the sono perform).
	execByName(t, e, paper.ActPerform, u2)
	execByName(t, e, paper.ActCall, n2)
	execByName(t, e, paper.ActPerform, n2)

	p3 := "walk_in_3"
	u3, _ := e.Start("ultrasonography", map[string]string{"p": p3, "x": paper.ExamSono})
	for _, a := range []string{"order", "schedule", paper.ActPrepare, paper.ActCall, paper.ActPerform} {
		execByName(t, e, a, u3)
	}

	// The manager's state stayed small: completed patients were released
	// by the ρ optimization, so the ensemble's history does not
	// accumulate (Sec 6's "nearly constant" in practice).
	if sz := m.StateSize(); sz > 60 {
		t.Errorf("state size %d suspiciously large for one active patient", sz)
	}
}
