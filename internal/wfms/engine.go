package wfms

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/expr"
)

// ItemState is the lifecycle state of a work item.
type ItemState int

const (
	// Offered: the activity is enabled and sits in worklists.
	Offered ItemState = iota
	// Completed: the activity has been executed.
	Completed
)

// WorkItem is one offered activity of one workflow instance.
type WorkItem struct {
	ID       int
	Instance int
	Activity string
	Role     string
	Args     []string // resolved instance-variable values, in Params order
	State    ItemState
}

// Action returns the concrete interaction action corresponding to the
// work item (the activity-to-action mapping of the paper; activity
// granularity, cf. footnote 6).
func (w WorkItem) Action() expr.Action {
	return expr.ConcreteAct(w.Activity, w.Args...)
}

// Key identifies the item's action textually.
func (w WorkItem) Key() string { return w.Action().Key() }

// Coordinator is the engine's integration point with an interaction
// manager (or a no-op for a standard, unadapted engine): Try probes
// whether an action is currently permissible, Execute wraps the
// ask/execute/confirm cycle around an activity execution.
type Coordinator interface {
	Try(a expr.Action) bool
	Execute(ctx context.Context, a expr.Action, run func() error) error
}

// ErrNotEnabled is returned when a completed or unknown item is executed.
var ErrNotEnabled = errors.New("wfms: work item not enabled")

// ErrVetoed is returned when the coordinator refuses an execution.
var ErrVetoed = errors.New("wfms: execution vetoed by interaction manager")

// Engine is the workflow engine: it manages definitions, instances and
// work items. If a Coordinator is attached the engine is *adapted* in
// the sense of the right side of Fig 11: it consults the interaction
// manager before executing any activity and filters offers accordingly,
// making the integration waterproof. Without a coordinator it is a
// standard engine; coordination is then the worklist handlers' problem
// (left side of Fig 11), with the known loopholes.
type Engine struct {
	mu        sync.Mutex
	defs      map[string]*Definition
	instances map[int]*Instance
	items     map[int]*WorkItem
	nextInst  int
	nextItem  int
	coord     Coordinator
	// ExecBody optionally runs the application part of an activity
	// (between ask and confirm); tests inject failures here.
	ExecBody func(item WorkItem) error
}

// Instance is one running workflow instance.
type Instance struct {
	ID    int
	Def   string
	Vars  map[string]string
	rt    runtime
	ended bool
}

// NewEngine creates a workflow engine; coord may be nil (standard,
// unadapted engine).
func NewEngine(coord Coordinator) *Engine {
	return &Engine{
		defs:      make(map[string]*Definition),
		instances: make(map[int]*Instance),
		items:     make(map[int]*WorkItem),
		coord:     coord,
	}
}

// Register adds a workflow definition.
func (e *Engine) Register(d *Definition) error {
	if err := d.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.defs[d.Name]; dup {
		return fmt.Errorf("wfms: duplicate definition %q", d.Name)
	}
	e.defs[d.Name] = d
	return nil
}

// Start instantiates a workflow with the given variable bindings and
// offers its initial activities. It returns the instance ID.
func (e *Engine) Start(def string, vars map[string]string) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.defs[def]
	if !ok {
		return 0, fmt.Errorf("wfms: unknown definition %q", def)
	}
	for _, v := range d.Vars {
		if _, ok := vars[v]; !ok {
			return 0, fmt.Errorf("wfms: missing variable %q for %s", v, def)
		}
	}
	e.nextInst++
	inst := &Instance{ID: e.nextInst, Def: def, Vars: vars, rt: d.Root.instantiate()}
	e.instances[inst.ID] = inst
	e.refreshLocked(inst)
	return inst.ID, nil
}

// refreshLocked synchronizes the offered items of an instance with its
// currently enabled activities.
func (e *Engine) refreshLocked(inst *Instance) {
	enabled := inst.rt.enabled(nil)
	want := make(map[string]*Activity, len(enabled))
	for _, a := range enabled {
		want[a.Name] = a
	}
	// Remove offers that are no longer enabled (e.g. the other branch of
	// a decided XOR).
	for id, item := range e.items {
		if item.Instance == inst.ID && item.State == Offered {
			if _, still := want[item.Activity]; !still {
				delete(e.items, id)
			} else {
				delete(want, item.Activity) // already offered
			}
		}
	}
	for _, a := range want {
		e.nextItem++
		args := make([]string, len(a.Params))
		for i, p := range a.Params {
			args[i] = inst.Vars[p]
		}
		e.items[e.nextItem] = &WorkItem{
			ID:       e.nextItem,
			Instance: inst.ID,
			Activity: a.Name,
			Role:     a.Role,
			Args:     args,
			State:    Offered,
		}
	}
	if inst.rt.done() {
		inst.ended = true
	}
}

// Items returns a snapshot of all offered work items, ordered by ID. If
// the engine is adapted, items whose action the interaction manager
// currently forbids are filtered out — they "disappear from the
// worklists" exactly as the paper's introduction describes.
func (e *Engine) Items() []WorkItem {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []WorkItem
	for _, item := range e.items {
		if item.State != Offered {
			continue
		}
		if e.coord != nil && !e.coord.Try(item.Action()) {
			continue
		}
		out = append(out, *item)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RawItems returns all offered items without coordinator filtering (what
// a standard worklist handler attached to a standard engine would see).
func (e *Engine) RawItems() []WorkItem {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []WorkItem
	for _, item := range e.items {
		if item.State == Offered {
			out = append(out, *item)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ItemsForRole filters Items by worklist role.
func (e *Engine) ItemsForRole(role string) []WorkItem {
	var out []WorkItem
	for _, it := range e.Items() {
		if it.Role == role {
			out = append(out, it)
		}
	}
	return out
}

// Execute runs an offered work item to completion: for an adapted
// engine the coordinator's ask/execute/confirm cycle wraps the
// application code and the state advance; a standard engine just runs
// it. ErrVetoed signals a manager refusal.
func (e *Engine) Execute(ctx context.Context, itemID int) error {
	e.mu.Lock()
	item, ok := e.items[itemID]
	if !ok || item.State != Offered {
		e.mu.Unlock()
		return ErrNotEnabled
	}
	snapshot := *item
	e.mu.Unlock()

	run := func() error {
		if e.ExecBody != nil {
			if err := e.ExecBody(snapshot); err != nil {
				return err
			}
		}
		return e.commit(itemID, snapshot)
	}
	if e.coord == nil {
		return run()
	}
	if err := e.coord.Execute(ctx, snapshot.Action(), run); err != nil {
		if errors.Is(err, ErrNotEnabled) {
			return err
		}
		return fmt.Errorf("%w: %v", ErrVetoed, err)
	}
	return nil
}

// commit marks the item completed and advances the instance.
func (e *Engine) commit(itemID int, snapshot WorkItem) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	item, ok := e.items[itemID]
	if !ok || item.State != Offered {
		return ErrNotEnabled
	}
	inst := e.instances[item.Instance]
	if inst == nil || !inst.rt.complete(item.Activity) {
		return fmt.Errorf("wfms: instance %d rejected completion of %s: %w",
			snapshot.Instance, snapshot.Activity, ErrNotEnabled)
	}
	item.State = Completed
	delete(e.items, itemID)
	e.refreshLocked(inst)
	return nil
}

// Ended reports whether the instance has completed all its activities.
func (e *Engine) Ended(instID int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	inst := e.instances[instID]
	return inst != nil && inst.ended
}

// InstanceIDs lists all instance IDs in start order.
func (e *Engine) InstanceIDs() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, 0, len(e.instances))
	for id := range e.instances {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
