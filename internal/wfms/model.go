// Package wfms is a compact but real workflow management system
// substrate: workflow definitions with the usual control-flow constructs
// (sequence, AND- and XOR-blocks, loops), a workflow engine managing
// instances and activity lifecycles, per-role worklists, and worklist
// handlers.
//
// It exists to reproduce the integration architecture of Sec 7 / Fig 11
// of the paper: either the worklist handlers or the workflow engine is
// adapted to participate in the interaction manager's coordination
// protocol. The paper's prototype used the commercial WfMS ProMInanD,
// which is unavailable; this substrate exercises the same code paths
// (scheduling, worklist updates, permission checks) against the same
// manager protocols.
package wfms

import "fmt"

// Step is one node of a structured workflow definition.
type Step interface {
	// instantiate creates the runtime cursor for one workflow instance.
	instantiate() runtime
}

// Activity is an elementary work step. Params name instance variables
// whose values parameterize the corresponding action (e.g. the patient
// and examination of the medical workflows of Fig 1).
type Activity struct {
	Name   string
	Role   string // which worklist the activity is offered to
	Params []string
}

// Sequence executes its steps in order.
type Sequence []Step

// AndBlock executes all branches concurrently (AND-split/AND-join).
type AndBlock []Step

// XorBlock executes exactly one branch (XOR-split/XOR-join); the choice
// is made implicitly by whichever offered activity is executed first.
type XorBlock []Step

// LoopBlock repeats its body a fixed number of times (the bounded loop
// used for simulation workloads).
type LoopBlock struct {
	Body  Step
	Times int
}

// Definition is a named workflow definition with declared instance
// variables.
type Definition struct {
	Name string
	Vars []string // instance variable names, bound at instantiation
	Root Step
}

// Validate checks structural sanity: non-empty blocks, declared
// parameters, positive loop bounds.
func (d *Definition) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("wfms: definition without name")
	}
	declared := make(map[string]bool, len(d.Vars))
	for _, v := range d.Vars {
		declared[v] = true
	}
	return validateStep(d.Root, declared)
}

func validateStep(s Step, vars map[string]bool) error {
	switch st := s.(type) {
	case Activity:
		if st.Name == "" {
			return fmt.Errorf("wfms: activity without name")
		}
		for _, p := range st.Params {
			if !vars[p] {
				return fmt.Errorf("wfms: activity %s uses undeclared variable %q", st.Name, p)
			}
		}
		return nil
	case Sequence:
		if len(st) == 0 {
			return fmt.Errorf("wfms: empty sequence")
		}
		for _, k := range st {
			if err := validateStep(k, vars); err != nil {
				return err
			}
		}
		return nil
	case AndBlock:
		if len(st) == 0 {
			return fmt.Errorf("wfms: empty and-block")
		}
		for _, k := range st {
			if err := validateStep(k, vars); err != nil {
				return err
			}
		}
		return nil
	case XorBlock:
		if len(st) == 0 {
			return fmt.Errorf("wfms: empty xor-block")
		}
		for _, k := range st {
			if err := validateStep(k, vars); err != nil {
				return err
			}
		}
		return nil
	case LoopBlock:
		if st.Times <= 0 {
			return fmt.Errorf("wfms: loop with non-positive bound")
		}
		return validateStep(st.Body, vars)
	case nil:
		return fmt.Errorf("wfms: nil step")
	default:
		return fmt.Errorf("wfms: unknown step type %T", s)
	}
}

// --- runtime cursors --------------------------------------------------

// runtime is the per-instance execution cursor of a step.
type runtime interface {
	done() bool
	// enabled appends the currently enabled activities to out.
	enabled(out []*Activity) []*Activity
	// complete consumes the completion of the named activity; it reports
	// whether this subtree accepted it.
	complete(name string) bool
}

func (a Activity) instantiate() runtime { return &actRT{act: a} }

type actRT struct {
	act      Activity
	finished bool
}

func (r *actRT) done() bool { return r.finished }

func (r *actRT) enabled(out []*Activity) []*Activity {
	if r.finished {
		return out
	}
	return append(out, &r.act)
}

func (r *actRT) complete(name string) bool {
	if r.finished || r.act.Name != name {
		return false
	}
	r.finished = true
	return true
}

func (s Sequence) instantiate() runtime {
	rts := make([]runtime, len(s))
	for i, k := range s {
		rts[i] = k.instantiate()
	}
	return &seqRT{steps: rts}
}

type seqRT struct {
	steps []runtime
	idx   int
}

func (r *seqRT) done() bool { return r.idx >= len(r.steps) }

func (r *seqRT) skipDone() {
	for r.idx < len(r.steps) && r.steps[r.idx].done() {
		r.idx++
	}
}

func (r *seqRT) enabled(out []*Activity) []*Activity {
	r.skipDone()
	if r.done() {
		return out
	}
	return r.steps[r.idx].enabled(out)
}

func (r *seqRT) complete(name string) bool {
	r.skipDone()
	if r.done() {
		return false
	}
	ok := r.steps[r.idx].complete(name)
	r.skipDone()
	return ok
}

func (s AndBlock) instantiate() runtime {
	rts := make([]runtime, len(s))
	for i, k := range s {
		rts[i] = k.instantiate()
	}
	return &andRT{branches: rts}
}

type andRT struct {
	branches []runtime
}

func (r *andRT) done() bool {
	for _, b := range r.branches {
		if !b.done() {
			return false
		}
	}
	return true
}

func (r *andRT) enabled(out []*Activity) []*Activity {
	for _, b := range r.branches {
		out = b.enabled(out)
	}
	return out
}

func (r *andRT) complete(name string) bool {
	for _, b := range r.branches {
		if b.complete(name) {
			return true
		}
	}
	return false
}

func (s XorBlock) instantiate() runtime {
	rts := make([]runtime, len(s))
	for i, k := range s {
		rts[i] = k.instantiate()
	}
	return &xorRT{branches: rts, chosen: -1}
}

type xorRT struct {
	branches []runtime
	chosen   int
}

func (r *xorRT) done() bool {
	return r.chosen >= 0 && r.branches[r.chosen].done()
}

func (r *xorRT) enabled(out []*Activity) []*Activity {
	if r.chosen >= 0 {
		return r.branches[r.chosen].enabled(out)
	}
	for _, b := range r.branches {
		out = b.enabled(out)
	}
	return out
}

func (r *xorRT) complete(name string) bool {
	if r.chosen >= 0 {
		return r.branches[r.chosen].complete(name)
	}
	for i, b := range r.branches {
		if b.complete(name) {
			r.chosen = i
			return true
		}
	}
	return false
}

func (s LoopBlock) instantiate() runtime {
	return &loopRT{step: s.Body, times: s.Times, body: s.Body.instantiate()}
}

type loopRT struct {
	step  Step
	times int
	round int
	body  runtime
}

func (r *loopRT) done() bool { return r.round >= r.times }

func (r *loopRT) advance() {
	for r.round < r.times && r.body.done() {
		r.round++
		if r.round < r.times {
			r.body = r.step.instantiate()
		}
	}
}

func (r *loopRT) enabled(out []*Activity) []*Activity {
	r.advance()
	if r.done() {
		return out
	}
	return r.body.enabled(out)
}

func (r *loopRT) complete(name string) bool {
	r.advance()
	if r.done() {
		return false
	}
	ok := r.body.complete(name)
	r.advance()
	return ok
}
