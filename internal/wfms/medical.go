package wfms

import "repro/internal/paper"

// Roles of the medical scenario.
const (
	RolePhysician = "physician"
	RoleClerk     = "clerk"
	RoleNurse     = "nurse"
	RoleAssistant = "assistant" // medical assistant of a department
)

// UltrasonographyDef builds the left workflow of Fig 1: order, schedule,
// prepare, call, perform, write report, read report. The patient p and
// the examination kind x are instance variables implicitly passed to all
// activities (footnote 3 of the paper); only the activities that the
// interaction graphs mention carry them as action parameters.
func UltrasonographyDef() *Definition {
	return &Definition{
		Name: "ultrasonography",
		Vars: []string{"p", "x"},
		Root: Sequence{
			Activity{Name: "order", Role: RolePhysician},
			Activity{Name: "schedule", Role: RoleClerk},
			Activity{Name: paper.ActPrepare, Role: RoleNurse, Params: []string{"p", "x"}},
			Activity{Name: paper.ActCall, Role: RoleAssistant, Params: []string{"p", "x"}},
			Activity{Name: paper.ActPerform, Role: RolePhysician, Params: []string{"p", "x"}},
			Activity{Name: "write_report", Role: RolePhysician},
			Activity{Name: "read_report", Role: RolePhysician},
		},
	}
}

// EndoscopyDef builds the right workflow of Fig 1: order, schedule, then
// inform and prepare in parallel, call, perform, write short report, and
// finally reading the short report in parallel with writing the detailed
// report.
func EndoscopyDef() *Definition {
	return &Definition{
		Name: "endoscopy",
		Vars: []string{"p", "x"},
		Root: Sequence{
			Activity{Name: "order", Role: RolePhysician},
			Activity{Name: "schedule", Role: RoleClerk},
			AndBlock{
				Activity{Name: paper.ActInform, Role: RoleNurse, Params: []string{"p", "x"}},
				Activity{Name: paper.ActPrepare, Role: RoleNurse, Params: []string{"p", "x"}},
			},
			Activity{Name: paper.ActCall, Role: RoleAssistant, Params: []string{"p", "x"}},
			Activity{Name: paper.ActPerform, Role: RolePhysician, Params: []string{"p", "x"}},
			Activity{Name: "write_short_report", Role: RolePhysician},
			AndBlock{
				Activity{Name: "read_short_report", Role: RolePhysician},
				Activity{Name: "write_detailed_report", Role: RolePhysician},
			},
		},
	}
}
