package wfms

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/manager"
	"repro/internal/paper"
)

// TestRemoteCoordinator: the adapted engine coordinates with a manager
// in another process, over the wire protocol (deployment of Fig 10/11).
func TestRemoteCoordinator(t *testing.T) {
	constraint := paper.Fig3PatientConstraint()
	m := manager.MustNew(constraint, manager.Options{ReservationTimeout: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := manager.NewServer(m, ln)
	defer func() { srv.Close(); m.Close() }()

	cl, err := manager.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	e := NewEngine(NewRemoteCoordinator(cl, constraint))
	if err := e.Register(UltrasonographyDef()); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(EndoscopyDef()); err != nil {
		t.Fatal(err)
	}
	u, _ := e.Start("ultrasonography", map[string]string{"p": "pat1", "x": paper.ExamSono})
	n, _ := e.Start("endoscopy", map[string]string{"p": "pat1", "x": paper.ExamEndo})
	for _, inst := range []int{u, n} {
		execByName(t, e, "order", inst)
		execByName(t, e, "schedule", inst)
	}
	execByName(t, e, paper.ActPrepare, u)
	execByName(t, e, paper.ActInform, n)
	execByName(t, e, paper.ActPrepare, n)
	execByName(t, e, paper.ActCall, u)

	// The endo call is hidden (remote Try) and vetoed (remote ask).
	for _, it := range e.Items() {
		if it.Activity == paper.ActCall && it.Instance == n {
			t.Fatal("endo call should be filtered by the remote coordinator")
		}
	}
	var endoCall int
	for _, it := range e.RawItems() {
		if it.Activity == paper.ActCall && it.Instance == n {
			endoCall = it.ID
		}
	}
	if err := e.Execute(bg, endoCall); !errors.Is(err, ErrVetoed) {
		t.Fatalf("remote veto expected, got %v", err)
	}
	execByName(t, e, paper.ActPerform, u)
	execByName(t, e, paper.ActCall, n)
	execByName(t, e, paper.ActPerform, n)
}

// TestRemoteCoordinatorFailClosed: with the connection gone, Try must
// degrade to "not permissible" for constrained actions (fail closed).
func TestRemoteCoordinatorFailClosed(t *testing.T) {
	constraint := paper.Fig3PatientConstraint()
	m := manager.MustNew(constraint, manager.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := manager.NewServer(m, ln)
	cl, err := manager.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewRemoteCoordinator(cl, constraint)

	// Sever the connection.
	cl.Close()
	srv.Close()
	m.Close()

	if coord.Try(paper.CallAct("pat1", paper.ExamSono)) {
		t.Error("constrained action must fail closed")
	}
	// Unconstrained actions still pass (they never consult the manager).
	if !coord.Try(expr.ConcreteAct("order")) {
		t.Error("out-of-alphabet action should pass locally")
	}
	ctx, cancel := context.WithTimeout(bg, time.Second)
	defer cancel()
	if err := coord.Execute(ctx, paper.CallAct("pat1", paper.ExamSono), func() error { return nil }); err == nil {
		t.Error("execute over a dead connection must fail")
	}
}

// TestRouterCoordinator: the adapted engine against a multi-manager
// router over the full Fig 7 coupling (E17 integration).
func TestRouterCoordinator(t *testing.T) {
	full := paper.Fig7Coupled()
	r, err := manager.NewRouter(full, manager.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	e := NewEngine(NewRouterCoordinator(r, full))
	if err := e.Register(UltrasonographyDef()); err != nil {
		t.Fatal(err)
	}
	// Four patients in the sono department: capacity blocks the fourth.
	var calls []int
	for i := 1; i <= 4; i++ {
		inst, err := e.Start("ultrasonography", map[string]string{
			"p": paper.Patient(i), "x": paper.ExamSono,
		})
		if err != nil {
			t.Fatal(err)
		}
		execByName(t, e, "order", inst)
		execByName(t, e, "schedule", inst)
		execByName(t, e, paper.ActPrepare, inst)
		calls = append(calls, inst)
	}
	for i := 0; i < 3; i++ {
		execByName(t, e, paper.ActCall, calls[i])
	}
	// The fourth call is hidden by the router conjunction.
	for _, it := range e.Items() {
		if it.Activity == paper.ActCall {
			t.Fatalf("fourth call should be hidden: %v", it)
		}
	}
	execByName(t, e, paper.ActPerform, calls[0])
	execByName(t, e, paper.ActCall, calls[3])
}
