package wfms

import (
	"math/rand"
	"testing"

	"repro/internal/manager"
	"repro/internal/paper"
)

// TestHospitalDaySimulation is the end-to-end stress test: many
// patients, both examination workflows each, random execution order by
// role worklists, the full Fig 7 constraint enforced by an adapted
// engine. Invariants checked after every executed activity:
//
//  1. a patient is never inside two examinations at once (Fig 3);
//  2. a department never treats more than 3 patients at once (Fig 6);
//  3. every workflow instance eventually completes (no livelock under
//     the constraint);
//  4. the manager's view and the replayed action history agree.
func TestHospitalDaySimulation(t *testing.T) {
	const patients = 6
	rnd := rand.New(rand.NewSource(42))

	m := manager.MustNew(paper.Fig7Coupled(), manager.Options{})
	defer m.Close()
	e := NewEngine(NewManagerCoordinator(m))
	if err := e.Register(UltrasonographyDef()); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(EndoscopyDef()); err != nil {
		t.Fatal(err)
	}

	type examKey struct{ p, x string }
	inExam := make(map[examKey]bool)       // currently between call and perform
	patientBusy := make(map[string]string) // patient -> exam in progress
	deptLoad := make(map[string]int)       // exam kind -> active count

	for i := 0; i < patients; i++ {
		p := paper.Patient(i)
		if _, err := e.Start("ultrasonography", map[string]string{"p": p, "x": paper.ExamSono}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Start("endoscopy", map[string]string{"p": p, "x": paper.ExamEndo}); err != nil {
			t.Fatal(err)
		}
	}

	checkInvariants := func(item WorkItem) {
		if len(item.Args) != 2 {
			return
		}
		p, x := item.Args[0], item.Args[1]
		switch item.Activity {
		case paper.ActCall:
			if other, busy := patientBusy[p]; busy {
				t.Fatalf("patient %s called to %s while inside %s", p, x, other)
			}
			patientBusy[p] = x
			deptLoad[x]++
			if deptLoad[x] > 3 {
				t.Fatalf("department %s over capacity: %d", x, deptLoad[x])
			}
			inExam[examKey{p, x}] = true
		case paper.ActPerform:
			if !inExam[examKey{p, x}] {
				t.Fatalf("perform(%s,%s) without a preceding call", p, x)
			}
			delete(inExam, examKey{p, x})
			delete(patientBusy, p)
			deptLoad[x]--
		}
	}

	executed := 0
	for rounds := 0; rounds < 5000; rounds++ {
		items := e.Items()
		if len(items) == 0 {
			break
		}
		item := items[rnd.Intn(len(items))]
		if err := e.Execute(bg, item.ID); err != nil {
			// A veto can race with the snapshot; it must be one of the
			// constrained activities, and retrying other items must
			// still make progress.
			continue
		}
		executed++
		checkInvariants(item)
	}

	for _, id := range e.InstanceIDs() {
		if !e.Ended(id) {
			t.Fatalf("instance %d did not complete (executed %d activities)", id, executed)
		}
	}
	// Ultrasonography has 7 activities, endoscopy 9, per patient.
	if want := patients * (7 + 9); executed != want {
		t.Errorf("executed %d activities, want %d", executed, want)
	}
	// Constrained actions per patient: sono prepare,call,perform (3) +
	// endo inform,prepare,call,perform (4) = 7; the other activities
	// never consult the manager.
	if m.Steps() != patients*7 {
		t.Errorf("manager transitions: got %d want %d", m.Steps(), patients*7)
	}
	if !m.Final() {
		// The Fig 3 mutex is an iteration: a completed day is a complete
		// word; Fig 6 likewise.
		t.Error("manager should be in a final state after the day ends")
	}
}

// TestHospitalDayRandomSeeds runs shorter random days under several
// seeds to shake out ordering-dependent bugs.
func TestHospitalDayRandomSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed simulation skipped in -short mode")
	}
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		rnd := rand.New(rand.NewSource(seed))
		m := manager.MustNew(paper.Fig7Coupled(), manager.Options{})
		e := NewEngine(NewManagerCoordinator(m))
		if err := e.Register(UltrasonographyDef()); err != nil {
			t.Fatal(err)
		}
		if err := e.Register(EndoscopyDef()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			p := paper.Patient(i)
			if _, err := e.Start("ultrasonography", map[string]string{"p": p, "x": paper.ExamSono}); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Start("endoscopy", map[string]string{"p": p, "x": paper.ExamEndo}); err != nil {
				t.Fatal(err)
			}
		}
		for rounds := 0; rounds < 2000; rounds++ {
			items := e.Items()
			if len(items) == 0 {
				break
			}
			if err := e.Execute(bg, items[rnd.Intn(len(items))].ID); err != nil {
				continue
			}
		}
		for _, id := range e.InstanceIDs() {
			if !e.Ended(id) {
				t.Fatalf("seed %d: instance %d stuck", seed, id)
			}
		}
		m.Close()
	}
}
