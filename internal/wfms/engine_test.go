package wfms

import (
	"context"
	"errors"
	"testing"

	"repro/internal/manager"
	"repro/internal/paper"
)

var bg = context.Background()

func mustStart(t *testing.T, e *Engine, def string, vars map[string]string) int {
	t.Helper()
	id, err := e.Start(def, vars)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// execByName finds an offered item by activity name (and optional
// instance) and executes it.
func execByName(t *testing.T, e *Engine, name string, inst int) {
	t.Helper()
	for _, it := range e.RawItems() {
		if it.Activity == name && (inst == 0 || it.Instance == inst) {
			if err := e.Execute(bg, it.ID); err != nil {
				t.Fatalf("execute %s: %v", name, err)
			}
			return
		}
	}
	t.Fatalf("activity %s not offered (items: %v)", name, e.RawItems())
}

func TestDefinitionValidate(t *testing.T) {
	good := []*Definition{UltrasonographyDef(), EndoscopyDef()}
	for _, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	bad := []*Definition{
		{Name: "", Root: Sequence{Activity{Name: "a"}}},
		{Name: "x", Root: Sequence{}},
		{Name: "x", Root: Activity{}},
		{Name: "x", Root: Activity{Name: "a", Params: []string{"q"}}},
		{Name: "x", Root: AndBlock{}},
		{Name: "x", Root: XorBlock{}},
		{Name: "x", Root: LoopBlock{Body: Activity{Name: "a"}, Times: 0}},
		{Name: "x", Root: nil},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad definition %d accepted", i)
		}
	}
}

// TestMedicalEnsemble (E2): both Fig 1 workflows run to completion under
// a standard engine.
func TestMedicalEnsemble(t *testing.T) {
	e := NewEngine(nil)
	if err := e.Register(UltrasonographyDef()); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(EndoscopyDef()); err != nil {
		t.Fatal(err)
	}
	u := mustStart(t, e, "ultrasonography", map[string]string{"p": "pat1", "x": paper.ExamSono})
	n := mustStart(t, e, "endoscopy", map[string]string{"p": "pat1", "x": paper.ExamEndo})

	for _, a := range []string{"order", "schedule", paper.ActPrepare, paper.ActCall,
		paper.ActPerform, "write_report", "read_report"} {
		execByName(t, e, a, u)
	}
	if !e.Ended(u) {
		t.Error("ultrasonography should have ended")
	}
	for _, a := range []string{"order", "schedule", paper.ActInform, paper.ActPrepare,
		paper.ActCall, paper.ActPerform, "write_short_report",
		"write_detailed_report", "read_short_report"} {
		execByName(t, e, a, n)
	}
	if !e.Ended(n) {
		t.Error("endoscopy should have ended")
	}
}

func TestAndBlockParallelism(t *testing.T) {
	e := NewEngine(nil)
	if err := e.Register(EndoscopyDef()); err != nil {
		t.Fatal(err)
	}
	id := mustStart(t, e, "endoscopy", map[string]string{"p": "pat1", "x": paper.ExamEndo})
	execByName(t, e, "order", id)
	execByName(t, e, "schedule", id)
	// Both parallel activities are offered at once.
	items := e.RawItems()
	if len(items) != 2 {
		t.Fatalf("expected 2 parallel offers, got %v", items)
	}
	// They may complete in either order; prepare first here.
	execByName(t, e, paper.ActPrepare, id)
	execByName(t, e, paper.ActInform, id)
	if got := e.RawItems(); len(got) != 1 || got[0].Activity != paper.ActCall {
		t.Fatalf("after join: %v", got)
	}
}

func TestXorBlockChoice(t *testing.T) {
	e := NewEngine(nil)
	d := &Definition{
		Name: "choice",
		Root: Sequence{
			XorBlock{
				Activity{Name: "left"},
				Activity{Name: "right"},
			},
			Activity{Name: "after"},
		},
	}
	if err := e.Register(d); err != nil {
		t.Fatal(err)
	}
	id := mustStart(t, e, "choice", nil)
	if items := e.RawItems(); len(items) != 2 {
		t.Fatalf("both XOR branches should be offered: %v", items)
	}
	execByName(t, e, "right", id)
	// The left branch must have disappeared.
	for _, it := range e.RawItems() {
		if it.Activity == "left" {
			t.Fatal("losing XOR branch still offered")
		}
	}
	execByName(t, e, "after", id)
	if !e.Ended(id) {
		t.Error("instance should have ended")
	}
}

func TestLoopBlock(t *testing.T) {
	e := NewEngine(nil)
	d := &Definition{
		Name: "loop",
		Root: LoopBlock{Body: Activity{Name: "step"}, Times: 3},
	}
	if err := e.Register(d); err != nil {
		t.Fatal(err)
	}
	id := mustStart(t, e, "loop", nil)
	for i := 0; i < 3; i++ {
		execByName(t, e, "step", id)
	}
	if !e.Ended(id) {
		t.Error("loop should have ended after 3 rounds")
	}
	if items := e.RawItems(); len(items) != 0 {
		t.Errorf("no more offers expected: %v", items)
	}
}

func TestEngineErrors(t *testing.T) {
	e := NewEngine(nil)
	if _, err := e.Start("nope", nil); err == nil {
		t.Error("unknown definition should fail")
	}
	d := UltrasonographyDef()
	if err := e.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(d); err == nil {
		t.Error("duplicate registration should fail")
	}
	if _, err := e.Start("ultrasonography", map[string]string{"p": "x"}); err == nil {
		t.Error("missing variable should fail")
	}
	if err := e.Execute(bg, 999); !errors.Is(err, ErrNotEnabled) {
		t.Errorf("unknown item: %v", err)
	}
}

// TestAdaptedEngineEnforcesConstraint (E15, right side of Fig 11): the
// engine consults the manager; forbidden items vanish from Items() and
// executions are vetoed.
func TestAdaptedEngineEnforcesConstraint(t *testing.T) {
	m := manager.MustNew(paper.Fig3PatientConstraint(), manager.Options{})
	defer m.Close()
	e := NewEngine(NewManagerCoordinator(m))
	if err := e.Register(UltrasonographyDef()); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(EndoscopyDef()); err != nil {
		t.Fatal(err)
	}
	vars := map[string]string{"p": "pat1"}
	u := mustStart(t, e, "ultrasonography", map[string]string{"p": "pat1", "x": paper.ExamSono})
	n := mustStart(t, e, "endoscopy", map[string]string{"p": "pat1", "x": paper.ExamEndo})
	_ = vars

	// Drive both workflows to the point where both calls are offered.
	for _, inst := range []int{u, n} {
		execByName(t, e, "order", inst)
		execByName(t, e, "schedule", inst)
	}
	execByName(t, e, paper.ActPrepare, u)
	execByName(t, e, paper.ActInform, n)
	execByName(t, e, paper.ActPrepare, n)

	countCalls := func() int {
		n := 0
		for _, it := range e.Items() {
			if it.Activity == paper.ActCall {
				n++
			}
		}
		return n
	}
	if got := countCalls(); got != 2 {
		t.Fatalf("both calls should be offered, got %d", got)
	}

	// Execute the sono call; the endo call disappears from the filtered
	// worklist (but remains in the raw engine state).
	execByName(t, e, paper.ActCall, u)
	if got := countCalls(); got != 0 {
		t.Fatalf("endo call should be hidden during the sono exam, got %d", got)
	}
	// The engine is waterproof: direct execution of the raw item is vetoed.
	var endoCall int
	for _, it := range e.RawItems() {
		if it.Activity == paper.ActCall && it.Instance == n {
			endoCall = it.ID
		}
	}
	if endoCall == 0 {
		t.Fatal("raw endo call item missing")
	}
	if err := e.Execute(bg, endoCall); !errors.Is(err, ErrVetoed) {
		t.Fatalf("direct execution should be vetoed, got %v", err)
	}

	// After perform, the endo call reappears and the ensemble completes.
	execByName(t, e, paper.ActPerform, u)
	if got := countCalls(); got != 1 {
		t.Fatalf("endo call should reappear, got %d", got)
	}
	execByName(t, e, paper.ActCall, n)
	execByName(t, e, paper.ActPerform, n)
}

// TestAdaptedHandlerLeavesEngineUnchanged (E15, left side of Fig 11):
// the handler filters and coordinates; a standard handler on the same
// standard engine bypasses the constraint — the "not waterproof"
// loophole the paper warns about.
func TestAdaptedHandlerLeavesEngineUnchanged(t *testing.T) {
	m := manager.MustNew(paper.Fig3PatientConstraint(), manager.Options{})
	defer m.Close()
	e := NewEngine(nil) // standard engine!
	coord := NewManagerCoordinator(m)
	if err := e.Register(UltrasonographyDef()); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(EndoscopyDef()); err != nil {
		t.Fatal(err)
	}
	u := mustStart(t, e, "ultrasonography", map[string]string{"p": "pat1", "x": paper.ExamSono})
	n := mustStart(t, e, "endoscopy", map[string]string{"p": "pat1", "x": paper.ExamEndo})

	adapted := NewAdaptedHandler(e, RoleAssistant, coord)
	standard := NewStandardHandler(e, RoleAssistant)

	for _, inst := range []int{u, n} {
		execByName(t, e, "order", inst)
		execByName(t, e, "schedule", inst)
	}
	execByName(t, e, paper.ActPrepare, u)
	execByName(t, e, paper.ActInform, n)
	execByName(t, e, paper.ActPrepare, n)

	// Both calls visible to both handlers initially.
	if got := len(adapted.List()); got != 2 {
		t.Fatalf("adapted list: %d", got)
	}
	// Execute the sono call through the adapted handler (coordinated).
	var sonoItem, endoItem int
	for _, it := range adapted.List() {
		switch it.Instance {
		case u:
			sonoItem = it.ID
		case n:
			endoItem = it.ID
		}
	}
	if err := adapted.Execute(bg, sonoItem); err != nil {
		t.Fatal(err)
	}
	// The adapted handler hides the endo call now...
	if got := len(adapted.List()); got != 0 {
		t.Fatalf("adapted handler should hide the endo call, got %d", got)
	}
	// ...but the standard handler still shows it and can execute it:
	// the integration is not waterproof.
	if got := len(standard.List()); got != 1 {
		t.Fatalf("standard handler should still show the endo call, got %d", got)
	}
	if err := standard.Execute(bg, endoItem); err != nil {
		t.Fatalf("standard handler bypasses the manager: %v", err)
	}
	// The manager never saw that execution: its state still forbids it.
	if m.Try(paper.CallAct("pat1", paper.ExamEndo)) {
		// (true would mean the manager believed the exam finished)
		t.Log("note: manager still in sono exam, as expected")
	}
}

// TestAdaptedHandlerVetoAndAbort: a refused ask surfaces as ErrVetoed;
// a failing activity body aborts the reservation instead of confirming.
func TestAdaptedHandlerVetoAndAbort(t *testing.T) {
	m := manager.MustNew(paper.Fig3PatientConstraint(), manager.Options{})
	defer m.Close()
	e := NewEngine(nil)
	coord := NewManagerCoordinator(m)
	if err := e.Register(UltrasonographyDef()); err != nil {
		t.Fatal(err)
	}
	u := mustStart(t, e, "ultrasonography", map[string]string{"p": "pat1", "x": paper.ExamSono})
	h := NewAdaptedHandler(e, RoleAssistant, coord)

	execByName(t, e, "order", u)
	execByName(t, e, "schedule", u)
	execByName(t, e, paper.ActPrepare, u)

	// Occupy the patient via the manager directly (another workflow).
	if err := m.Request(bg, paper.CallAct("pat1", paper.ExamEndo)); err != nil {
		t.Fatal(err)
	}
	items := h.List()
	if len(items) != 0 {
		t.Fatalf("call should be hidden: %v", items)
	}
	// Force-execute the raw item through the adapted handler: vetoed.
	var callItem int
	for _, it := range e.RawItems() {
		if it.Activity == paper.ActCall {
			callItem = it.ID
		}
	}
	if err := h.Execute(bg, callItem); !errors.Is(err, ErrVetoed) {
		t.Fatalf("expected veto, got %v", err)
	}
	// Free the patient; now a failing activity body must abort cleanly.
	if err := m.Request(bg, paper.PerformAct("pat1", paper.ExamEndo)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("application crashed")
	e.ExecBody = func(item WorkItem) error { return boom }
	if err := h.Execute(bg, callItem); !errors.Is(err, ErrVetoed) && !errors.Is(err, boom) {
		t.Fatalf("expected propagated failure, got %v", err)
	}
	e.ExecBody = nil
	// The reservation was aborted: the call is still possible.
	if err := h.Execute(bg, callItem); err != nil {
		t.Fatalf("call after abort: %v", err)
	}
}
