package wfms

import (
	"context"
	"errors"
	"fmt"
)

// WorklistHandler is a user's worklist client. A *standard* handler
// simply shows and executes the engine's offers. An *adapted* handler
// (left side of Fig 11) additionally participates in the coordination
// protocol: it filters its list by asking the interaction manager and
// wraps executions in ask/execute/confirm — while the engine stays
// completely unchanged and "does not even know of the interaction
// manager's existence".
type WorklistHandler struct {
	Engine *Engine
	Role   string
	Coord  Coordinator // nil for a standard handler
}

// NewStandardHandler attaches a plain worklist handler for a role.
func NewStandardHandler(e *Engine, role string) *WorklistHandler {
	return &WorklistHandler{Engine: e, Role: role}
}

// NewAdaptedHandler attaches a handler that consults the interaction
// manager (the customer-realizable integration of Sec 7).
func NewAdaptedHandler(e *Engine, role string, c Coordinator) *WorklistHandler {
	return &WorklistHandler{Engine: e, Role: role, Coord: c}
}

// List returns the work items this handler offers to its user: the
// engine's view (which an adapted engine already filters), additionally
// filtered by the handler's own coordinator if it has one. Items the
// manager currently forbids "temporarily disappear from the worklists".
func (h *WorklistHandler) List() []WorkItem {
	var out []WorkItem
	for _, it := range h.Engine.Items() {
		if it.Role != h.Role {
			continue
		}
		if h.Coord != nil && !h.Coord.Try(it.Action()) {
			continue
		}
		out = append(out, it)
	}
	return out
}

// Execute runs one offered item on the user's behalf. The adapted
// handler performs the coordination protocol around the engine call; the
// standard handler calls the engine directly (which is exactly the
// "not waterproof" loophole when the engine itself is unadapted).
func (h *WorklistHandler) Execute(ctx context.Context, itemID int) error {
	if h.Coord == nil {
		return h.Engine.Execute(ctx, itemID)
	}
	// Locate the item to learn its action.
	var item *WorkItem
	for _, it := range h.Engine.RawItems() {
		if it.ID == itemID {
			it := it
			item = &it
			break
		}
	}
	if item == nil {
		return ErrNotEnabled
	}
	err := h.Coord.Execute(ctx, item.Action(), func() error {
		return h.Engine.Execute(ctx, itemID)
	})
	if err != nil && !errors.Is(err, ErrNotEnabled) && !errors.Is(err, ErrVetoed) {
		return fmt.Errorf("%w: %v", ErrVetoed, err)
	}
	return err
}
