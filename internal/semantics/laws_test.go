package semantics

import (
	"testing"

	"repro/internal/expr"
)

// Sec 3 of the paper: "numerous useful properties of interaction
// expressions, like commutativity, associativity, or idempotence of
// operators, which are intuitively evident, can be formally proven."
// These tests verify the laws semantically: two expressions are
// equivalent iff they have the same alphabet and accept the same
// complete and partial words — checked here over the bounded language
// (every word up to length 4 over a covering action set).

// equivalent checks bounded-language equality of two expressions.
func equivalent(t *testing.T, x1, x2 *expr.Expr) bool {
	t.Helper()
	sigma := DefaultSigma(expr.Or(x1, x2), []string{"v1", "v2"})
	if len(sigma) == 0 {
		sigma = []expr.Action{expr.ConcreteAct("a")}
	}
	c1, p1 := Language(x1, sigma, 4)
	c2, p2 := Language(x2, sigma, 4)
	return eqStrings(c1, c2) && eqStrings(p1, p2)
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertLaw checks the law for several operand instantiations.
func assertLaw(t *testing.T, name string, law func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr)) {
	t.Helper()
	xa := expr.AtomNamed("a")
	xb := expr.AtomNamed("b")
	xc := expr.AtomNamed("c")
	operands := [][3]*expr.Expr{
		{xa, xb, xc},
		{expr.Seq(xa, xb), xc, expr.Option(xa)},
		{expr.SeqIter(xa), expr.Or(xb, xc), xa},
		{expr.Par(xa, xb), xc, expr.Seq(xb, xc)},
	}
	for i, ops := range operands {
		l, r := law(ops[0], ops[1], ops[2])
		if !equivalent(t, l, r) {
			t.Errorf("%s violated for operand set %d:\n  left:  %s\n  right: %s", name, i, l, r)
		}
	}
}

func TestLawOrCommutative(t *testing.T) {
	assertLaw(t, "x|y = y|x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Or(x, y), expr.Or(y, x)
	})
}

func TestLawAndCommutative(t *testing.T) {
	assertLaw(t, "x&y = y&x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.And(x, y), expr.And(y, x)
	})
}

func TestLawParCommutative(t *testing.T) {
	assertLaw(t, "x||y = y||x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Par(x, y), expr.Par(y, x)
	})
}

func TestLawSeqAssociative(t *testing.T) {
	assertLaw(t, "(x-y)-z = x-(y-z)", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Seq(expr.Seq(x, y), z), expr.Seq(x, expr.Seq(y, z))
	})
}

func TestLawParAssociative(t *testing.T) {
	assertLaw(t, "(x||y)||z = x||(y||z)", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Par(expr.Par(x, y), z), expr.Par(x, expr.Par(y, z))
	})
}

func TestLawOrIdempotent(t *testing.T) {
	assertLaw(t, "x|x = x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Or(x, x), x
	})
}

func TestLawAndIdempotent(t *testing.T) {
	assertLaw(t, "x&x = x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.And(x, x), x
	})
}

func TestLawSeqNeutralElement(t *testing.T) {
	assertLaw(t, "ε-x = x = x-ε", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Seq(expr.Empty(), x, expr.Empty()), x
	})
}

func TestLawParNeutralElement(t *testing.T) {
	assertLaw(t, "ε||x = x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Par(expr.Empty(), x), x
	})
}

func TestLawSeqDistributesOverOr(t *testing.T) {
	assertLaw(t, "x-(y|z) = x-y | x-z", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Seq(x, expr.Or(y, z)), expr.Or(expr.Seq(x, y), expr.Seq(x, z))
	})
}

func TestLawParDistributesOverOr(t *testing.T) {
	assertLaw(t, "x||(y|z) = x||y | x||z", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Par(x, expr.Or(y, z)), expr.Or(expr.Par(x, y), expr.Par(x, z))
	})
}

func TestLawIterIdempotent(t *testing.T) {
	assertLaw(t, "(x*)* = x*", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.SeqIter(expr.SeqIter(x)), expr.SeqIter(x)
	})
}

func TestLawOptionIdempotent(t *testing.T) {
	assertLaw(t, "(x?)? = x?", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Option(expr.Option(x)), expr.Option(x)
	})
}

func TestLawOptionAbsorbedByIter(t *testing.T) {
	assertLaw(t, "(x?)* = x*", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.SeqIter(expr.Option(x)), expr.SeqIter(x)
	})
}

func TestLawMultIsIteratedPar(t *testing.T) {
	assertLaw(t, "mult(2,x) = x||x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Mult(2, x), expr.Par(x, x)
	})
}

// TestLawSyncOnDisjointAlphabetsIsPar: coupling operands with disjoint
// alphabets degenerates to parallel composition — the formal content of
// the open-world reading.
func TestLawSyncOnDisjointAlphabetsIsPar(t *testing.T) {
	x := expr.Seq(expr.AtomNamed("a"), expr.AtomNamed("b"))
	y := expr.SeqIter(expr.AtomNamed("c"))
	if !equivalent(t, expr.Sync(x, y), expr.Par(x, y)) {
		t.Error("x@y should equal x||y for disjoint alphabets")
	}
}

// TestLawSyncOnEqualAlphabetsIsAnd: coupling operands with identical
// alphabets degenerates to strict conjunction.
func TestLawSyncOnEqualAlphabetsIsAnd(t *testing.T) {
	x := expr.Seq(expr.AtomNamed("a"), expr.AtomNamed("b"))
	y := expr.Par(expr.AtomNamed("a"), expr.AtomNamed("b"))
	if !equivalent(t, expr.Sync(x, y), expr.And(x, y)) {
		t.Error("x@y should equal x&y for equal alphabets")
	}
}

// TestLawSeqNotCommutative: a sanity check that the harness can detect
// violations — sequence must NOT commute.
func TestLawSeqNotCommutative(t *testing.T) {
	x := expr.AtomNamed("a")
	y := expr.AtomNamed("b")
	if equivalent(t, expr.Seq(x, y), expr.Seq(y, x)) {
		t.Error("a-b must differ from b-a")
	}
}

// TestLawAndNotOpenWorld: strict conjunction and coupling differ when
// alphabets differ — the paper's core argument for the new operator.
func TestLawAndNotOpenWorld(t *testing.T) {
	x := expr.Seq(expr.AtomNamed("a"), expr.AtomNamed("b"))
	y := expr.SeqIter(expr.AtomNamed("c"))
	if equivalent(t, expr.Sync(x, y), expr.And(x, y)) {
		t.Error("x@y must differ from x&y for different alphabets")
	}
}

// TestLawQuantifierUnrolling: "any p: y" over a body whose only values
// come from the word behaves like the disjunction of its concretions,
// restricted to the observed universe.
func TestLawQuantifierUnrolling(t *testing.T) {
	body := expr.Seq(expr.AtomNamed("x", expr.Prm("p")), expr.AtomNamed("y", expr.Prm("p")))
	q := expr.AnyQ("p", body)
	unrolled := expr.Or(body.Subst("p", "v1"), body.Subst("p", "v2"))
	// Over the two-value action universe the languages agree.
	sigma := []expr.Action{
		expr.ConcreteAct("x", "v1"), expr.ConcreteAct("x", "v2"),
		expr.ConcreteAct("y", "v1"), expr.ConcreteAct("y", "v2"),
	}
	qc, qp := Language(q, sigma, 3)
	uc, up := Language(unrolled, sigma, 3)
	if !eqStrings(qc, uc) || !eqStrings(qp, up) {
		t.Errorf("quantifier unrolling mismatch:\n q: %v / %v\n u: %v / %v", qc, qp, uc, up)
	}
}
