package semantics

import (
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

var (
	a = expr.AtomNamed("a")
	b = expr.AtomNamed("b")
	c = expr.AtomNamed("c")

	actA = expr.ConcreteAct("a")
	actB = expr.ConcreteAct("b")
	actC = expr.ConcreteAct("c")
)

func word(as ...expr.Action) Word { return Word(as) }

func TestAtomSemantics(t *testing.T) {
	o := New(a, 3)
	if !o.Partial(nil) || o.Complete(nil) {
		t.Error("empty word: want partial, not complete")
	}
	if !o.Complete(word(actA)) {
		t.Error("<a> should be complete")
	}
	if o.Partial(word(actB)) {
		t.Error("<b> should be illegal")
	}
	if o.Partial(word(actA, actA)) {
		t.Error("<a,a> should be illegal")
	}
}

func TestSeqAndOptionSemantics(t *testing.T) {
	e := expr.Seq(expr.Option(a), b)
	o := New(e, 3)
	if !o.Complete(word(actB)) {
		t.Error("<b> complete (option skipped)")
	}
	if !o.Complete(word(actA, actB)) {
		t.Error("<a,b> complete")
	}
	if o.Complete(word(actA)) || !o.Partial(word(actA)) {
		t.Error("<a> should be partial only")
	}
}

func TestIterSemantics(t *testing.T) {
	e := expr.SeqIter(expr.Seq(a, b))
	o := New(e, 6)
	for _, w := range []Word{nil, word(actA, actB), word(actA, actB, actA, actB)} {
		if !o.Complete(w) {
			t.Errorf("%s should be complete", w)
		}
	}
	if o.Partial(word(actB)) {
		t.Error("<b> should be illegal")
	}
	if !o.Partial(word(actA, actB, actA)) {
		t.Error("<a,b,a> should be partial")
	}
}

func TestShuffleSemantics(t *testing.T) {
	e := expr.Par(expr.Seq(a, b), c)
	o := New(e, 4)
	for _, w := range []Word{
		word(actA, actB, actC),
		word(actA, actC, actB),
		word(actC, actA, actB),
	} {
		if !o.Complete(w) {
			t.Errorf("%s should be complete", w)
		}
	}
	if o.Partial(word(actB)) {
		t.Error("<b> should be illegal (b after a)")
	}
}

func TestParIterSemantics(t *testing.T) {
	e := expr.ParIter(expr.Seq(a, b))
	o := New(e, 6)
	// Two overlapping instances: a a b b.
	if !o.Complete(word(actA, actA, actB, actB)) {
		t.Error("<a,a,b,b> should be complete (two interleaved instances)")
	}
	if o.Complete(word(actA, actB, actB)) {
		t.Error("<a,b,b> should not be complete")
	}
	if !o.Complete(nil) {
		t.Error("empty word should be complete (zero instances)")
	}
}

func TestConjunctionSemantics(t *testing.T) {
	e := expr.And(expr.Par(a, b), expr.Seq(a, b))
	o := New(e, 3)
	if !o.Complete(word(actA, actB)) {
		t.Error("<a,b> should be complete")
	}
	if o.Partial(word(actB)) {
		t.Error("<b,a> path should be excluded by the conjunction")
	}
}

func TestSyncOpenWorld(t *testing.T) {
	// Coupling: y = a - b constrains a and b; c is outside α(y) and flows
	// through freely when coupled with c's own expression.
	e := expr.Sync(expr.Seq(a, b), expr.SeqIter(c))
	o := New(e, 4)
	if !o.Complete(word(actC, actA, actC, actB)) {
		t.Error("c actions should interleave freely")
	}
	if o.Partial(word(actB)) {
		t.Error("b before a should be rejected")
	}
	// Strict conjunction of the same operands accepts nothing but words
	// in both languages — i.e. nothing non-empty.
	strict := New(expr.And(expr.Seq(a, b), expr.SeqIter(c)), 4)
	if strict.Partial(word(actA)) {
		t.Error("strict conjunction should reject a (not in c*)")
	}
}

func TestExpressivenessNonContextFree(t *testing.T) {
	// The paper's witness: x = (a - b - c)* & ((a)* || b*c*-ish shapes)
	// has Φ(x) = {aⁿbⁿcⁿ}. We use the formulation from Sec 3:
	// x = (a − b − c)# & a* - b* - c*  accepts exactly aⁿbⁿcⁿ.
	e := expr.And(
		expr.ParIter(expr.Seq(a, b, c)),
		expr.Seq(expr.SeqIter(a), expr.SeqIter(b), expr.SeqIter(c)),
	)
	o := New(e, 9)
	mk := func(n, m, k int) Word {
		var w Word
		for i := 0; i < n; i++ {
			w = append(w, actA)
		}
		for i := 0; i < m; i++ {
			w = append(w, actB)
		}
		for i := 0; i < k; i++ {
			w = append(w, actC)
		}
		return w
	}
	for n := 0; n <= 3; n++ {
		if !o.Complete(mk(n, n, n)) {
			t.Errorf("a^%db^%dc^%d should be complete", n, n, n)
		}
	}
	for _, bad := range [][3]int{{1, 0, 1}, {2, 1, 2}, {1, 2, 1}, {0, 1, 1}} {
		if o.Complete(mk(bad[0], bad[1], bad[2])) {
			t.Errorf("a^%db^%dc^%d should NOT be complete", bad[0], bad[1], bad[2])
		}
	}
}

func TestQuantifierSemantics(t *testing.T) {
	xp := expr.AtomNamed("x", expr.Prm("p"))
	yp := expr.AtomNamed("y", expr.Prm("p"))
	xv := func(v string) expr.Action { return expr.ConcreteAct("x", v) }
	yv := func(v string) expr.Action { return expr.ConcreteAct("y", v) }

	// any p: x(p) - y(p): both actions must agree on the value.
	any := New(expr.AnyQ("p", expr.Seq(xp, yp)), 3)
	if !any.Complete(word(xv("v1"), yv("v1"))) {
		t.Error("matching values should complete")
	}
	if any.Partial(word(xv("v1"), yv("v2"))) {
		t.Error("mismatching values should be illegal")
	}

	// all p: (x(p) - y(p))? — independent pairs for distinct values,
	// at most one pair per value.
	all := New(expr.AllQ("p", expr.Option(expr.Seq(xp, yp))), 4)
	if !all.Complete(word(xv("v1"), xv("v2"), yv("v2"), yv("v1"))) {
		t.Error("interleaved pairs for distinct values should complete")
	}
	if all.Partial(word(xv("v1"), xv("v1"))) {
		t.Error("second x(v1) has no branch left (one per value)")
	}

	// conq p: (a - x(p))? — a is shared by all branches: after a, every
	// branch has passed a and any single x(ω) completes... but all other
	// branches must ALSO be complete, and x(ω) ∉ their languages' next
	// steps — so x would kill the other branches. Verify conjunction
	// strictness.
	conq := New(expr.ConQ("p", expr.Option(expr.Seq(a, xp))), 3)
	if !conq.Partial(word(actA)) || conq.Complete(word(actA)) {
		t.Error("<a> should be partial in every branch but complete in none")
	}
	if !conq.Complete(nil) {
		t.Error("empty word should be complete (option in every branch)")
	}
	if conq.Partial(word(actA, xv("v1"))) {
		t.Error("x(v1) is illegal: branches for other values reject it")
	}

	// syncq p: (x(p) - y(p))* — per-value projection must satisfy the
	// iteration; other values' actions pass by.
	syncq := New(expr.SyncQ("p", expr.SeqIter(expr.Seq(xp, yp))), 4)
	if !syncq.Complete(word(xv("v1"), xv("v2"), yv("v1"), yv("v2"))) {
		t.Error("interleaved per-value sequences should complete")
	}
	if syncq.Partial(word(xv("v1"), yv("v2"))) {
		t.Error("y(v2) without x(v2) violates branch v2")
	}
}

func TestVerdict(t *testing.T) {
	o := New(expr.Seq(a, b), 3)
	if v := o.Verdict(word(actA, actB)); v != 2 {
		t.Errorf("complete: got %d", v)
	}
	if v := o.Verdict(word(actA)); v != 1 {
		t.Errorf("partial: got %d", v)
	}
	if v := o.Verdict(word(actB)); v != 0 {
		t.Errorf("illegal: got %d", v)
	}
}

// Property: Φ ⊆ Ψ (every complete word is partial) and Ψ is prefix-closed
// — two structural lemmas of the formalism the implementation relies on.
func TestPsiPrefixClosedAndPhiSubsetPsi(t *testing.T) {
	sigma := []expr.Action{actA, actB, expr.ConcreteAct("x", "v1")}
	f := func(seed int64) bool {
		e := genExpr(seed)
		o := New(e, 4)
		var walk func(w Word) bool
		walk = func(w Word) bool {
			if o.Complete(w) && !o.Partial(w) {
				t.Logf("Φ ⊄ Ψ at %s for %s", w, e)
				return false
			}
			if len(w) >= 3 {
				return true
			}
			for _, x := range sigma {
				w2 := append(w[:len(w):len(w)], x)
				if o.Partial(w2) && !o.Partial(w) {
					t.Logf("Ψ not prefix closed at %s for %s", w2, e)
					return false
				}
				if !walk(w2) {
					return false
				}
			}
			return true
		}
		return walk(nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// genExpr: deterministic pseudo-random closed expression generator.
func genExpr(seed int64) *expr.Expr {
	s := uint64(seed)
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	var gen func(d int, params []string) *expr.Expr
	gen = func(d int, params []string) *expr.Expr {
		if d == 0 || next(4) == 0 {
			switch next(3) {
			case 0:
				return expr.AtomNamed([]string{"a", "b"}[next(2)])
			case 1:
				return expr.AtomNamed("x", expr.Val("v1"))
			default:
				if len(params) == 0 {
					return expr.AtomNamed("a")
				}
				return expr.AtomNamed("x", expr.Prm(params[next(len(params))]))
			}
		}
		switch next(10) {
		case 0:
			return expr.Option(gen(d-1, params))
		case 1:
			return expr.Seq(gen(d-1, params), gen(d-1, params))
		case 2:
			return expr.SeqIter(gen(d-1, params))
		case 3:
			return expr.Par(gen(d-1, params), gen(d-1, params))
		case 4:
			return expr.ParIter(gen(d-1, params))
		case 5:
			return expr.Or(gen(d-1, params), gen(d-1, params))
		case 6:
			return expr.And(gen(d-1, params), gen(d-1, params))
		case 7:
			return expr.Sync(gen(d-1, params), gen(d-1, params))
		case 8:
			p := "p" + string(rune('0'+len(params)))
			return expr.AnyQ(p, gen(d-1, append(params, p)))
		default:
			p := "p" + string(rune('0'+len(params)))
			return expr.SyncQ(p, gen(d-1, append(params, p)))
		}
	}
	return gen(3, nil)
}

func TestLanguageEnumeration(t *testing.T) {
	e := expr.Seq(a, expr.Or(b, c))
	complete, partial := Language(e, []expr.Action{actA, actB, actC}, 2)
	wantComplete := []string{"a;b", "a;c"}
	if len(complete) != 2 || complete[0] != wantComplete[0] || complete[1] != wantComplete[1] {
		t.Errorf("complete: got %v want %v", complete, wantComplete)
	}
	// partial: "", "a", "a;b", "a;c"
	if len(partial) != 4 {
		t.Errorf("partial: got %v", partial)
	}
}

func TestDefaultSigma(t *testing.T) {
	e := expr.AnyQ("p", expr.Seq(expr.AtomNamed("x", expr.Prm("p")), b))
	sigma := DefaultSigma(e, []string{"v1", "v2"})
	// x(v1), x(v2), b
	if len(sigma) != 3 {
		t.Errorf("sigma: got %v", sigma)
	}
}

func TestWordKeyAndString(t *testing.T) {
	w := word(actA, expr.ConcreteAct("x", "v1"))
	if w.Key() != "a;x(v1)" {
		t.Errorf("Key: %q", w.Key())
	}
	if w.String() != "<a, x(v1)>" {
		t.Errorf("String: %q", w.String())
	}
	if (Word{}).Key() != "" {
		t.Error("empty word key should be empty")
	}
}
