// Package semantics is a direct, executable transcription of the formal
// semantics of interaction expressions (Table 8 of the paper): it decides
// w ∈ Φ(x) (complete word) and w ∈ Ψ(x) (partial word) by structural
// recursion over the expression and exhaustive search over word splits,
// shuffle decompositions and quantifier instantiations.
//
// This is exactly the "hopelessly inefficient" naive algorithm the paper
// mentions in Sec 4 — exponential in the word length — implemented on
// purpose: it serves as the ground-truth oracle against which the
// operational state model (internal/state) is verified, and as the
// baseline for experiment E12.
//
// The only liberty taken is the treatment of the infinite value universe
// Ω: quantifiers are instantiated over the finite set of relevant values
// (those occurring in the word or the expression) plus enough fresh
// witness values. This reduction is justified by the paper's own
// infinite-shuffle lemma (Sec 3): branches for values that never occur in
// w are interchangeable, so one representative per needed instance
// suffices. Fresh witnesses use the reserved "_fresh_" name prefix.
package semantics

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// Word is a sequence of concrete actions.
type Word []expr.Action

// Key returns a canonical identity string for the word.
func (w Word) Key() string {
	if len(w) == 0 {
		return ""
	}
	parts := make([]string, len(w))
	for i, a := range w {
		parts[i] = a.Key()
	}
	return strings.Join(parts, ";")
}

// String renders the word as 〈a1, a2, ...〉 for diagnostics.
func (w Word) String() string {
	parts := make([]string, len(w))
	for i, a := range w {
		parts[i] = a.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Oracle decides word membership for one expression. It carries the
// memoization table and the value universe, so it is not safe for
// concurrent use; create one per goroutine.
type Oracle struct {
	root     *expr.Expr
	universe []string
	memo     map[string]bool
}

// FreshPrefix is reserved for the oracle's witness values; user values
// must not start with it.
const FreshPrefix = "_fresh_"

// New creates an oracle for e, sized for words up to maxWordLen actions.
// The universe contains every value of e plus maxWordLen+quantifier-depth
// fresh witnesses (enough for any word of that length to bind each
// quantifier instance to a distinct unseen value).
func New(e *expr.Expr, maxWordLen int) *Oracle {
	if !e.Closed() {
		panic(fmt.Sprintf("semantics: expression has free parameters: %s", e))
	}
	o := &Oracle{root: e, memo: make(map[string]bool)}
	o.universe = append(o.universe, e.Values()...)
	n := maxWordLen + quantDepth(e) + 1
	for i := 0; i < n; i++ {
		o.universe = append(o.universe, fmt.Sprintf("%s%d", FreshPrefix, i))
	}
	return o
}

func quantDepth(e *expr.Expr) int {
	d := 0
	for _, k := range e.Kids {
		if kd := quantDepth(k); kd > d {
			d = kd
		}
	}
	if e.Op.Quantifier() {
		d++
	}
	return d
}

// Complete reports whether w ∈ Φ(root).
func (o *Oracle) Complete(w Word) bool {
	o.addWordValues(w)
	return o.complete(o.root, w, o.universe)
}

// Partial reports whether w ∈ Ψ(root).
func (o *Oracle) Partial(w Word) bool {
	o.addWordValues(w)
	return o.partial(o.root, w, o.universe)
}

// Verdict classifies a word as in Fig 9 of the paper: 2 = complete,
// 1 = partial (but not complete), 0 = illegal.
func (o *Oracle) Verdict(w Word) int {
	switch {
	case o.Complete(w):
		return 2
	case o.Partial(w):
		return 1
	default:
		return 0
	}
}

// addWordValues extends the universe with values first seen in w, so a
// single oracle can be reused across words.
func (o *Oracle) addWordValues(w Word) {
	have := make(map[string]bool, len(o.universe))
	for _, v := range o.universe {
		have[v] = true
	}
	added := false
	for _, a := range w {
		for _, v := range a.Values() {
			if !have[v] {
				have[v] = true
				o.universe = append(o.universe, v)
				added = true
			}
		}
	}
	if added {
		// Universe changed; memo entries may depend on it.
		o.memo = make(map[string]bool)
	}
}

func memoKey(mode byte, e *expr.Expr, w Word, uni []string) string {
	return string(mode) + "|" + fmt.Sprint(len(uni)) + "|" + e.Key() + "|" + w.Key()
}

func (o *Oracle) complete(e *expr.Expr, w Word, uni []string) bool {
	k := memoKey('C', e, w, uni)
	if v, ok := o.memo[k]; ok {
		return v
	}
	v := o.completeEval(e, w, uni)
	o.memo[k] = v
	return v
}

func (o *Oracle) partial(e *expr.Expr, w Word, uni []string) bool {
	k := memoKey('P', e, w, uni)
	if v, ok := o.memo[k]; ok {
		return v
	}
	v := o.partialEval(e, w, uni)
	o.memo[k] = v
	return v
}

func (o *Oracle) completeEval(e *expr.Expr, w Word, uni []string) bool {
	switch e.Op {
	case expr.OpAtom:
		// Φ(a) = {〈a〉} ∩ Σ*: only concrete atoms accept their own action.
		return len(w) == 1 && e.Atom.StrictMatch(w[0])
	case expr.OpEmpty:
		return len(w) == 0
	case expr.OpOption:
		return len(w) == 0 || o.complete(e.Kids[0], w, uni)
	case expr.OpSeq:
		return o.seqComplete(e.Kids, w, uni)
	case expr.OpSeqIter:
		return o.iterComplete(e.Kids[0], w, uni)
	case expr.OpPar:
		return o.shuffleAll(e.Kids, w, uni, o.complete)
	case expr.OpParIter:
		return o.closureMember(e.Kids[0], w, uni, o.complete)
	case expr.OpMult:
		kids := make([]*expr.Expr, e.N)
		for i := range kids {
			kids[i] = e.Kids[0]
		}
		return o.shuffleAll(kids, w, uni, o.complete)
	case expr.OpOr:
		for _, k := range e.Kids {
			if o.complete(k, w, uni) {
				return true
			}
		}
		return false
	case expr.OpAnd:
		for _, k := range e.Kids {
			if !o.complete(k, w, uni) {
				return false
			}
		}
		return true
	case expr.OpSync:
		return o.syncMember(e.Kids, w, uni, o.complete)
	case expr.OpAnyQ:
		for _, v := range uni {
			if o.complete(e.Kids[0].Subst(e.Param, v), w, uni) {
				return true
			}
		}
		return false
	case expr.OpAllQ:
		return o.allQComplete(e, w, uni)
	case expr.OpSyncQ:
		return o.syncQMember(e, w, uni, o.complete)
	case expr.OpConQ:
		for _, v := range uni {
			if !o.complete(e.Kids[0].Subst(e.Param, v), w, uni) {
				return false
			}
		}
		return true
	}
	panic(fmt.Sprintf("semantics: unknown op %v", e.Op))
}

func (o *Oracle) partialEval(e *expr.Expr, w Word, uni []string) bool {
	switch e.Op {
	case expr.OpAtom:
		// Ψ(a) = {〈〉, 〈a〉} ∩ Σ*.
		return len(w) == 0 || len(w) == 1 && e.Atom.StrictMatch(w[0])
	case expr.OpEmpty:
		return len(w) == 0
	case expr.OpOption:
		// Ψ(y?) = Ψ(y); 〈〉 ∈ Ψ(y) holds for every y.
		return o.partial(e.Kids[0], w, uni)
	case expr.OpSeq:
		return o.seqPartial(e.Kids, w, uni)
	case expr.OpSeqIter:
		// Ψ(y*) = Φ(y)* Ψ(y).
		for i := 0; i <= len(w); i++ {
			if o.iterComplete(e.Kids[0], w[:i], uni) && o.partial(e.Kids[0], w[i:], uni) {
				return true
			}
		}
		return false
	case expr.OpPar:
		return o.shuffleAll(e.Kids, w, uni, o.partial)
	case expr.OpParIter:
		// Ψ(y#) = Ψ(y)#.
		return o.closureMember(e.Kids[0], w, uni, o.partial)
	case expr.OpMult:
		kids := make([]*expr.Expr, e.N)
		for i := range kids {
			kids[i] = e.Kids[0]
		}
		return o.shuffleAll(kids, w, uni, o.partial)
	case expr.OpOr:
		for _, k := range e.Kids {
			if o.partial(k, w, uni) {
				return true
			}
		}
		return false
	case expr.OpAnd:
		for _, k := range e.Kids {
			if !o.partial(k, w, uni) {
				return false
			}
		}
		return true
	case expr.OpSync:
		return o.syncMember(e.Kids, w, uni, o.partial)
	case expr.OpAnyQ:
		for _, v := range uni {
			if o.partial(e.Kids[0].Subst(e.Param, v), w, uni) {
				return true
			}
		}
		return false
	case expr.OpAllQ:
		// Ψ = ⊗ over all ω of Ψ(y_ω); 〈〉 ∈ Ψ always, so no nullability
		// gate: partition w over distinct values with Ψ membership.
		return o.distinctShuffle(e, w, uni, o.partial)
	case expr.OpSyncQ:
		return o.syncQMember(e, w, uni, o.partial)
	case expr.OpConQ:
		for _, v := range uni {
			if !o.partial(e.Kids[0].Subst(e.Param, v), w, uni) {
				return false
			}
		}
		return true
	}
	panic(fmt.Sprintf("semantics: unknown op %v", e.Op))
}

// seqComplete decides w ∈ Φ(y1)Φ(y2)...Φ(yn).
func (o *Oracle) seqComplete(kids []*expr.Expr, w Word, uni []string) bool {
	if len(kids) == 1 {
		return o.complete(kids[0], w, uni)
	}
	for i := 0; i <= len(w); i++ {
		if o.complete(kids[0], w[:i], uni) && o.seqComplete(kids[1:], w[i:], uni) {
			return true
		}
	}
	return false
}

// seqPartial decides w ∈ Ψ(y1) ∪ Φ(y1)Ψ(y2...) (Table 8, generalized
// n-ary by right fold).
func (o *Oracle) seqPartial(kids []*expr.Expr, w Word, uni []string) bool {
	if len(kids) == 1 {
		return o.partial(kids[0], w, uni)
	}
	if o.partial(kids[0], w, uni) {
		return true
	}
	for i := 0; i <= len(w); i++ {
		if o.complete(kids[0], w[:i], uni) && o.seqPartial(kids[1:], w[i:], uni) {
			return true
		}
	}
	return false
}

// iterComplete decides w ∈ Φ(y)*.
func (o *Oracle) iterComplete(y *expr.Expr, w Word, uni []string) bool {
	if len(w) == 0 {
		return true
	}
	// First iteration must consume a non-empty prefix (empty iterations
	// contribute nothing to the language).
	for i := 1; i <= len(w); i++ {
		if o.complete(y, w[:i], uni) && o.iterComplete(y, w[i:], uni) {
			return true
		}
	}
	return false
}

// memberFn is either Oracle.complete or Oracle.partial.
type memberFn func(e *expr.Expr, w Word, uni []string) bool

// shuffleAll decides whether w is a shuffle of words w1..wn with
// member(yi, wi) for each operand, by assigning the first action to each
// operand in turn (order-preserving subsequence decomposition).
func (o *Oracle) shuffleAll(kids []*expr.Expr, w Word, uni []string, member memberFn) bool {
	if len(kids) == 1 {
		return member(kids[0], w, uni)
	}
	// Enumerate the subsequence taken by kids[0] via bitmask; the
	// remainder goes to the rest. Words in tests are short (≤ ~10), so
	// 2^len is acceptable — this is the naive algorithm by design.
	n := len(w)
	for mask := 0; mask < 1<<uint(n); mask++ {
		left, right := splitByMask(w, mask)
		if member(kids[0], left, uni) && o.shuffleAll(kids[1:], right, uni, member) {
			return true
		}
	}
	return false
}

// closureMember decides w ∈ L(y)# for L = Φ or Ψ: a shuffle of any number
// of non-empty words from L(y) (the empty instance is redundant because
// the closure always contains 〈〉).
func (o *Oracle) closureMember(y *expr.Expr, w Word, uni []string, member memberFn) bool {
	if len(w) == 0 {
		return true
	}
	// The instance containing the first action: enumerate subsequences
	// that include index 0 to avoid revisiting permutations of instances.
	n := len(w)
	for mask := 0; mask < 1<<uint(n-1); mask++ {
		full := mask<<1 | 1
		inst, rest := splitByMask(w, full)
		if member(y, inst, uni) && o.closureMember(y, rest, uni, member) {
			return true
		}
	}
	return false
}

// splitByMask partitions w into (selected, remainder) preserving order;
// bit i of mask selects w[i].
func splitByMask(w Word, mask int) (Word, Word) {
	var sel, rest Word
	for i, a := range w {
		if mask&(1<<uint(i)) != 0 {
			sel = append(sel, a)
		} else {
			rest = append(rest, a)
		}
	}
	return sel, rest
}

// syncMember implements the synchronization row of Table 8:
// w ∈ Φ(y)⊗κx(y)* ∩ Φ(z)⊗κx(z)* (and the n-ary generalization). Because
// words of Φ(y) use only α(y) and κx(y) is disjoint from α(y), shuffle
// membership reduces to projection: the subsequence of w matching α(yi)
// must be a member for yi, and every action must lie in some operand's
// alphabet (κ only ranges over α(x)).
func (o *Oracle) syncMember(kids []*expr.Expr, w Word, uni []string, member memberFn) bool {
	alphas := make([]*expr.Alphabet, len(kids))
	for i, k := range kids {
		alphas[i] = expr.AlphabetOf(k)
	}
	for _, a := range w {
		in := false
		for _, al := range alphas {
			if al.Contains(a) {
				in = true
				break
			}
		}
		if !in {
			return false
		}
	}
	for i, k := range kids {
		if !member(k, project(w, alphas[i]), uni) {
			return false
		}
	}
	return true
}

// project keeps the actions of w that belong to the alphabet.
func project(w Word, al *expr.Alphabet) Word {
	var out Word
	for _, a := range w {
		if al.Contains(a) {
			out = append(out, a)
		}
	}
	return out
}

// allQComplete implements the parallel-quantifier Φ row: the infinite
// shuffle over Ω, which is empty unless every concretion is nullable, and
// otherwise the union of finite shuffles over distinct values.
func (o *Oracle) allQComplete(e *expr.Expr, w Word, uni []string) bool {
	for _, v := range uni {
		if !o.complete(e.Kids[0].Subst(e.Param, v), nil, uni) {
			return false
		}
	}
	return o.distinctShuffle(e, w, uni, o.complete)
}

// distinctShuffle decides whether w is a shuffle of non-empty words
// assigned to distinct quantifier values, each a member of the
// corresponding concretion.
func (o *Oracle) distinctShuffle(e *expr.Expr, w Word, uni []string, member memberFn) bool {
	return o.distinctShuffleRest(e, w, uni, uni, member)
}

func (o *Oracle) distinctShuffleRest(e *expr.Expr, w Word, fullUni, avail []string, member memberFn) bool {
	if len(w) == 0 {
		return true
	}
	n := len(w)
	for mask := 0; mask < 1<<uint(n-1); mask++ {
		full := mask<<1 | 1
		inst, rest := splitByMask(w, full)
		for ui, v := range avail {
			if !member(e.Kids[0].Subst(e.Param, v), inst, fullUni) {
				continue
			}
			restUni := make([]string, 0, len(avail)-1)
			restUni = append(restUni, avail[:ui]...)
			restUni = append(restUni, avail[ui+1:]...)
			if o.distinctShuffleRest(e, rest, fullUni, restUni, member) {
				return true
			}
		}
	}
	return false
}

// syncQMember implements the synchronization-quantifier rows: for every
// value ω, the projection of w onto α(y_ω) must be a member of y_ω, and
// every action of w must belong to the quantifier's alphabet.
func (o *Oracle) syncQMember(e *expr.Expr, w Word, uni []string, member memberFn) bool {
	whole := expr.AlphabetOf(e)
	for _, a := range w {
		if !whole.Contains(a) {
			return false
		}
	}
	for _, v := range uni {
		inst := e.Kids[0].Subst(e.Param, v)
		if !member(inst, project(w, expr.AlphabetOf(inst)), uni) {
			return false
		}
	}
	return true
}
