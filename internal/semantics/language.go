package semantics

import (
	"sort"

	"repro/internal/expr"
)

// Language enumerates, by brute force, the complete and partial words of e
// over the given finite set of concrete actions, up to maxLen actions.
// It returns canonical word keys (Word.Key) in sorted order. Tests use it
// to compare whole bounded languages between the oracle and the state
// model; keep sigma and maxLen small (|sigma|^maxLen words are tested).
func Language(e *expr.Expr, sigma []expr.Action, maxLen int) (complete, partial []string) {
	o := New(e, maxLen)
	var walk func(w Word)
	walk = func(w Word) {
		if o.Partial(w) {
			partial = append(partial, w.Key())
			if o.Complete(w) {
				complete = append(complete, w.Key())
			}
		} else if len(w) > 0 {
			// Ψ is prefix-closed by construction of the traversal
			// semantics: no extension of an illegal word is legal, so
			// pruning here is sound (verified by TestPsiPrefixClosed).
			return
		}
		if len(w) == maxLen {
			return
		}
		for _, a := range sigma {
			walk(append(w[:len(w):len(w)], a))
		}
	}
	walk(nil)
	sort.Strings(complete)
	sort.Strings(partial)
	return complete, partial
}

// DefaultSigma builds a small concrete action set covering every atom of
// e: each pattern of α(e) instantiated with the values of e plus the
// provided extra values for wildcard positions.
func DefaultSigma(e *expr.Expr, extraValues []string) []expr.Action {
	vals := append(append([]string{}, e.Values()...), extraValues...)
	if len(vals) == 0 {
		vals = []string{"v1"}
	}
	var out []expr.Action
	seen := make(map[string]bool)
	for _, p := range expr.AlphabetOf(e).Patterns() {
		for _, a := range instantiate(p, vals) {
			if k := a.Key(); !seen[k] {
				seen[k] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// instantiate expands one alphabet pattern into concrete actions, using
// each candidate value for wildcard positions (cartesian product).
func instantiate(p expr.Pattern, vals []string) []expr.Action {
	actions := []expr.Action{{Name: p.Name}}
	for _, arg := range p.Args {
		var next []expr.Action
		switch arg.Kind {
		case expr.PatValue:
			for _, a := range actions {
				next = append(next, appendArg(a, arg.Name))
			}
		case expr.PatWild:
			for _, a := range actions {
				for _, v := range vals {
					next = append(next, appendArg(a, v))
				}
			}
		case expr.PatFree:
			// Free parameters match nothing; the pattern contributes no
			// concrete actions.
			return nil
		}
		actions = next
	}
	return actions
}

func appendArg(a expr.Action, v string) expr.Action {
	args := make([]expr.Arg, len(a.Args)+1)
	copy(args, a.Args)
	args[len(a.Args)] = expr.Val(v)
	return expr.Action{Name: a.Name, Args: args}
}
