package semantics

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/state"
)

// Differential fuzzing: the operational state model of internal/state
// must agree with this package's Table-8 oracle on every word. The fuzz
// input is decoded into a bounded closed expression plus a short word
// over a fixed action universe, and the two verdicts are compared on
// every prefix (Ψ is prefix-closed, so prefixes catch divergence at the
// earliest action). This is the randomized equivalence test of
// internal/state lifted into a coverage-guided search.

const (
	fuzzMaxDepth = 3
	fuzzMaxNodes = 20
	fuzzMaxWord  = 5
)

// caseReader streams the fuzz input; exhausted input yields zeros, so
// every byte string decodes to some valid case.
type caseReader struct {
	data  []byte
	pos   int
	nodes int
}

func (r *caseReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// fuzzAtom decodes one atomic expression: a small name space with no
// argument, a value argument, or a bound parameter when one is in scope.
func (r *caseReader) fuzzAtom(params []string) *expr.Expr {
	names := []string{"a", "b", "x"}
	name := names[int(r.next())%len(names)]
	switch r.next() % 3 {
	case 0:
		return expr.AtomNamed(name)
	case 1:
		vals := []string{"v1", "v2"}
		return expr.AtomNamed(name, expr.Val(vals[int(r.next())%len(vals)]))
	default:
		if len(params) == 0 {
			return expr.AtomNamed(name)
		}
		return expr.AtomNamed(name, expr.Prm(params[int(r.next())%len(params)]))
	}
}

// fuzzExpr decodes a bounded expression: depth- and node-limited, with
// quantifier parameters scoped so the result is always closed.
func (r *caseReader) fuzzExpr(depth int, params []string) *expr.Expr {
	if depth >= fuzzMaxDepth || r.nodes >= fuzzMaxNodes {
		return r.fuzzAtom(params)
	}
	r.nodes++
	sub := func() *expr.Expr { return r.fuzzExpr(depth+1, params) }
	quantified := func(q func(string, *expr.Expr) *expr.Expr, optBody bool) *expr.Expr {
		p := fmt.Sprintf("p%d", len(params))
		body := r.fuzzExpr(depth+1, append(params, p))
		if optBody {
			// An unrestricted all-quantified body makes Φ empty; keep it
			// optional half the time so finality gets exercised.
			body = expr.Option(body)
		}
		return q(p, body)
	}
	switch r.next() % 13 {
	case 0:
		return r.fuzzAtom(params)
	case 1:
		return expr.Option(sub())
	case 2:
		return expr.Seq(sub(), sub())
	case 3:
		return expr.SeqIter(sub())
	case 4:
		return expr.Par(sub(), sub())
	case 5:
		return expr.ParIter(sub())
	case 6:
		return expr.Or(sub(), sub())
	case 7:
		return expr.And(sub(), sub())
	case 8:
		return expr.Sync(sub(), sub())
	case 9:
		return expr.Mult(2, sub())
	case 10:
		return quantified(expr.AnyQ, false)
	case 11:
		return quantified(expr.AllQ, r.next()%2 == 0)
	default:
		if r.next()%2 == 0 {
			return quantified(expr.SyncQ, false)
		}
		return quantified(expr.ConQ, false)
	}
}

// fuzzSigma is the action universe words are drawn from: plain actions
// and parameterized ones sharing and missing the expression's values.
var fuzzSigma = []expr.Action{
	expr.ConcreteAct("a"),
	expr.ConcreteAct("b"),
	expr.ConcreteAct("x", "v1"),
	expr.ConcreteAct("x", "v2"),
	expr.ConcreteAct("y", "v1"),
}

func (r *caseReader) fuzzWord() Word {
	n := int(r.next()) % (fuzzMaxWord + 1)
	w := make(Word, 0, n)
	for i := 0; i < n; i++ {
		w = append(w, fuzzSigma[int(r.next())%len(fuzzSigma)])
	}
	return w
}

// decodeCase maps arbitrary bytes to one differential test case.
func decodeCase(data []byte) (*expr.Expr, Word) {
	r := &caseReader{data: data}
	e := r.fuzzExpr(0, nil)
	return e, r.fuzzWord()
}

// FuzzOperationalVsOracle asserts engine and oracle verdicts agree on
// every prefix of the decoded word. Seed corpus: testdata/fuzz.
func FuzzOperationalVsOracle(f *testing.F) {
	// A few structured seeds: each byte drives one decoder decision, so
	// these spell out canonical operator mixes (iteration under
	// conjunction, coupling, quantifiers over shared values).
	f.Add([]byte{2, 0, 0, 3, 1, 0, 4, 0, 1, 0, 1})
	f.Add([]byte{7, 3, 0, 0, 6, 0, 1, 1, 2, 0, 1, 3, 1, 0})
	f.Add([]byte{10, 2, 0, 2, 0, 2, 0, 5, 2, 3, 4})
	f.Add([]byte{8, 3, 2, 0, 1, 0, 0, 1, 1, 5, 2, 0, 2, 1, 0})
	f.Add([]byte{12, 0, 2, 2, 0, 1, 1, 0, 4, 3, 2, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, w := decodeCase(data)
		en, err := state.NewEngine(e)
		if err != nil {
			t.Fatalf("engine rejects generated closed expression %s: %v", e, err)
		}
		o := New(e, len(w))
		for i := 0; i <= len(w); i++ {
			prefix := w[:i]
			got := int(en.Word(prefix))
			want := o.Verdict(prefix)
			if got != want {
				t.Fatalf("expr %s word %s: engine=%d oracle=%d", e, prefix, got, want)
			}
		}
	})
}
