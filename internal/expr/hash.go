package expr

// Stable structural hashes. Canonical strings are the identity of
// expressions, actions and alphabet patterns throughout the system; the
// hashes here are pure functions of those canonical forms, so they are
// stable across processes and releases as long as the canonical syntax
// is. HashKey buckets the state engine's hash-consing table; Action.Hash
// keys its transition memo (internal/state). They must never be used as
// identity on their own: collisions are possible and callers are
// expected to confirm with the full key or a structural comparison.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashKey returns the 64-bit FNV-1a hash of a canonical key string.
func HashKey(s string) uint64 {
	return hashString(fnvOffset64, s)
}

// hashByte folds one byte into an FNV-1a state.
func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	return h
}

// Hash returns a stable structural hash of the action, equal to
// HashKey(a.Key()) but computed without building the key string — it is
// called once per memoized transition lookup, where allocating the key
// would dominate the map access it feeds.
func (a Action) Hash() uint64 {
	h := hashString(fnvOffset64, a.Name)
	if len(a.Args) == 0 {
		return h
	}
	h = hashByte(h, '(')
	for i, arg := range a.Args {
		if i > 0 {
			h = hashByte(h, ',')
		}
		if arg.Param {
			h = hashByte(h, '$')
		}
		h = hashString(h, arg.Name)
	}
	return hashByte(h, ')')
}
