package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Op identifies an interaction-expression operator (rows of Table 8).
type Op int

const (
	// OpAtom is an atomic expression: a single action a.
	OpAtom Op = iota
	// OpEmpty is the neutral expression ε with Φ = Ψ = {〈〉}. It has no
	// surface syntax of its own in the paper; the option operator
	// introduces it, and the parser writes it "()".
	OpEmpty
	// OpOption is y? with Φ(y) ∪ {〈〉}.
	OpOption
	// OpSeq is sequential composition y1 - y2 - ... (n-ary, associative).
	OpSeq
	// OpSeqIter is sequential iteration y* (Kleene closure).
	OpSeqIter
	// OpPar is parallel composition y1 || y2 || ... (shuffle, n-ary).
	OpPar
	// OpParIter is parallel iteration y# (shuffle closure).
	OpParIter
	// OpOr is disjunction y1 | y2 | ... (union, n-ary).
	OpOr
	// OpAnd is strict conjunction y1 & y2 & ... (intersection, n-ary).
	OpAnd
	// OpSync is synchronization/coupling y1 @ y2 @ ...: open-world
	// conjunction where each operand constrains only the actions of its
	// own alphabet.
	OpSync
	// OpMult is the multiplier mult(n, y): n concurrent and independent
	// instances of y (n-fold shuffle), as in Fig 6.
	OpMult
	// OpAnyQ is the disjunction quantifier "any p: y" (for some p).
	OpAnyQ
	// OpAllQ is the parallel quantifier "all p: y" (for all p,
	// concurrently and independently).
	OpAllQ
	// OpSyncQ is the synchronization quantifier "syncq p: y".
	OpSyncQ
	// OpConQ is the conjunction quantifier "conq p: y".
	OpConQ
)

var opNames = map[Op]string{
	OpAtom:    "atom",
	OpEmpty:   "empty",
	OpOption:  "option",
	OpSeq:     "seq",
	OpSeqIter: "iter",
	OpPar:     "par",
	OpParIter: "pariter",
	OpOr:      "or",
	OpAnd:     "and",
	OpSync:    "sync",
	OpMult:    "mult",
	OpAnyQ:    "any",
	OpAllQ:    "all",
	OpSyncQ:   "syncq",
	OpConQ:    "conq",
}

// String returns the operator's name.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Quantifier reports whether the operator binds a parameter.
func (o Op) Quantifier() bool {
	switch o {
	case OpAnyQ, OpAllQ, OpSyncQ, OpConQ:
		return true
	}
	return false
}

// Expr is an immutable interaction expression. Build values with the
// constructor functions (Atom, Seq, Par, ...); the zero value is not a
// valid expression.
type Expr struct {
	Op    Op
	Atom  Action  // OpAtom only
	Kids  []*Expr // operands (n-ary ops, option, iterations, quantifier body)
	Param string  // OpAnyQ/OpAllQ/OpSyncQ/OpConQ: bound parameter
	N     int     // OpMult: multiplicity (≥ 1)

	str string // canonical form, computed at construction
}

// String returns the canonical parser syntax of the expression. Two
// expressions are structurally equal iff their String values are equal.
func (e *Expr) String() string { return e.str }

// Key is an alias for String kept for symmetry with the state model.
func (e *Expr) Key() string { return e.str }

// Equal reports structural equality.
func (e *Expr) Equal(f *Expr) bool {
	if e == f {
		return true
	}
	if e == nil || f == nil {
		return false
	}
	return e.str == f.str
}

// Atom returns an atomic expression for a single action.
func Atom(a Action) *Expr {
	e := &Expr{Op: OpAtom, Atom: a}
	e.str = a.String()
	return e
}

// AtomNamed is shorthand for Atom(Act(name, args...)).
func AtomNamed(name string, args ...Arg) *Expr { return Atom(Act(name, args...)) }

// Empty returns the neutral expression ε.
func Empty() *Expr {
	e := &Expr{Op: OpEmpty}
	e.str = "()"
	return e
}

// Option returns y?: Φ(y) ∪ {〈〉}.
func Option(y *Expr) *Expr {
	e := &Expr{Op: OpOption, Kids: []*Expr{y}}
	e.finish()
	return e
}

// nary flattens nested applications of the same associative operator and
// applies identity-element simplifications that hold in the formal
// semantics (Φ and Ψ are unchanged):
//
//	seq:  ε is the neutral element of concatenation
//	par:  ε is the neutral element of shuffle
//
// For or/and/sync, ε is NOT dropped (or(ε,y) = option(y) differs from y).
func nary(op Op, dropEmpty bool, kids []*Expr) *Expr {
	flat := make([]*Expr, 0, len(kids))
	for _, k := range kids {
		if k == nil {
			panic("expr: nil operand")
		}
		switch {
		case k.Op == op:
			flat = append(flat, k.Kids...)
		case dropEmpty && k.Op == OpEmpty:
			// identity element: skip
		default:
			flat = append(flat, k)
		}
	}
	switch len(flat) {
	case 0:
		return Empty()
	case 1:
		return flat[0]
	}
	e := &Expr{Op: op, Kids: flat}
	e.finish()
	return e
}

// Seq returns the sequential composition y1 - y2 - ... of its operands.
func Seq(kids ...*Expr) *Expr { return nary(OpSeq, true, kids) }

// Par returns the parallel composition (shuffle) y1 || y2 || ...
func Par(kids ...*Expr) *Expr { return nary(OpPar, true, kids) }

// Or returns the disjunction y1 | y2 | ...
func Or(kids ...*Expr) *Expr { return nary(OpOr, false, kids) }

// And returns the strict conjunction y1 & y2 & ...
func And(kids ...*Expr) *Expr { return nary(OpAnd, false, kids) }

// Sync returns the synchronization (coupling) y1 @ y2 @ ...
func Sync(kids ...*Expr) *Expr { return nary(OpSync, false, kids) }

// SeqIter returns the sequential iteration y*.
func SeqIter(y *Expr) *Expr {
	e := &Expr{Op: OpSeqIter, Kids: []*Expr{y}}
	e.finish()
	return e
}

// ParIter returns the parallel iteration y# (arbitrarily many concurrent
// and independent traversals of y).
func ParIter(y *Expr) *Expr {
	e := &Expr{Op: OpParIter, Kids: []*Expr{y}}
	e.finish()
	return e
}

// Mult returns mult(n, y): exactly n concurrent, independent instances of
// y. Mult(1, y) is y itself and Mult(0, y) is ε.
func Mult(n int, y *Expr) *Expr {
	if n < 0 {
		panic("expr: negative multiplicity")
	}
	switch n {
	case 0:
		return Empty()
	case 1:
		return y
	}
	e := &Expr{Op: OpMult, Kids: []*Expr{y}, N: n}
	e.finish()
	return e
}

func quant(op Op, p string, y *Expr) *Expr {
	if !validIdent(p) {
		panic(fmt.Sprintf("expr: invalid parameter name %q", p))
	}
	e := &Expr{Op: op, Kids: []*Expr{y}, Param: p}
	e.finish()
	return e
}

// AnyQ returns the disjunction quantifier "any p: y" — y must be traversed
// for exactly one arbitrarily chosen value of p.
func AnyQ(p string, y *Expr) *Expr { return quant(OpAnyQ, p, y) }

// AllQ returns the parallel quantifier "all p: y" — y may be traversed
// concurrently and independently for all values of p.
func AllQ(p string, y *Expr) *Expr { return quant(OpAllQ, p, y) }

// SyncQ returns the synchronization quantifier "syncq p: y".
func SyncQ(p string, y *Expr) *Expr { return quant(OpSyncQ, p, y) }

// ConQ returns the conjunction quantifier "conq p: y".
func ConQ(p string, y *Expr) *Expr { return quant(OpConQ, p, y) }

// Activity models the paper's activity-to-action mapping (footnote 6): an
// activity A with positive duration is the sequence of the two atomic
// actions A.s (start) and A.t (termination).
func Activity(name string, args ...Arg) *Expr {
	return Seq(Atom(Act(name+"_s", args...)), Atom(Act(name+"_t", args...)))
}

// Operator precedence for printing and parsing, loosest to tightest:
//
//	quantifiers < | < & < @ < || < - < postfix (? * #) and atoms
const (
	precQuant = iota
	precOr
	precAnd
	precSync
	precPar
	precSeq
	precPostfix
)

func (o Op) prec() int {
	switch o {
	case OpAnyQ, OpAllQ, OpSyncQ, OpConQ:
		return precQuant
	case OpOr:
		return precOr
	case OpAnd:
		return precAnd
	case OpSync:
		return precSync
	case OpPar:
		return precPar
	case OpSeq:
		return precSeq
	default:
		return precPostfix
	}
}

func (o Op) infix() string {
	switch o {
	case OpSeq:
		return " - "
	case OpPar:
		return " || "
	case OpOr:
		return " | "
	case OpAnd:
		return " & "
	case OpSync:
		return " @ "
	}
	return ""
}

// finish computes the canonical string once at construction time.
func (e *Expr) finish() {
	var b strings.Builder
	e.render(&b, precQuant)
	e.str = b.String()
}

func (e *Expr) render(b *strings.Builder, outer int) {
	p := e.Op.prec()
	// Parenthesize when the context binds at least as tightly, except at
	// the top level. Same-precedence nesting only arises after manual
	// construction of e.g. seq-of-seq, which nary flattening removes.
	need := p < outer
	if need {
		b.WriteByte('(')
	}
	switch e.Op {
	case OpAtom:
		b.WriteString(e.Atom.String())
	case OpEmpty:
		b.WriteString("()")
	case OpOption:
		e.Kids[0].render(b, precPostfix)
		b.WriteByte('?')
	case OpSeqIter:
		e.Kids[0].render(b, precPostfix)
		b.WriteByte('*')
	case OpParIter:
		e.Kids[0].render(b, precPostfix)
		b.WriteByte('#')
	case OpSeq, OpPar, OpOr, OpAnd, OpSync:
		sep := e.Op.infix()
		for i, k := range e.Kids {
			if i > 0 {
				b.WriteString(sep)
			}
			k.render(b, p+1)
		}
	case OpMult:
		b.WriteString("mult(")
		b.WriteString(strconv.Itoa(e.N))
		b.WriteString(", ")
		e.Kids[0].render(b, precQuant)
		b.WriteByte(')')
	case OpAnyQ, OpAllQ, OpSyncQ, OpConQ:
		b.WriteString(e.Op.String())
		b.WriteByte(' ')
		b.WriteString(e.Param)
		b.WriteString(": ")
		e.Kids[0].render(b, precQuant+1)
	default:
		panic(fmt.Sprintf("expr: unknown op %v", e.Op))
	}
	if need {
		b.WriteByte(')')
	}
}

// Size returns the number of operator and atom nodes in the expression.
func (e *Expr) Size() int {
	n := 1
	for _, k := range e.Kids {
		n += k.Size()
	}
	return n
}

// Depth returns the height of the expression tree (atoms have depth 1).
func (e *Expr) Depth() int {
	d := 0
	for _, k := range e.Kids {
		if kd := k.Depth(); kd > d {
			d = kd
		}
	}
	return d + 1
}

// Walk calls fn for every node of the expression in preorder. It stops
// descending below a node when fn returns false.
func (e *Expr) Walk(fn func(*Expr) bool) {
	if !fn(e) {
		return
	}
	for _, k := range e.Kids {
		k.Walk(fn)
	}
}

// Actions returns every distinct atom action occurring in the expression,
// in first-occurrence order.
func (e *Expr) Actions() []Action {
	var out []Action
	seen := make(map[string]bool)
	e.Walk(func(n *Expr) bool {
		if n.Op == OpAtom {
			if k := n.Atom.Key(); !seen[k] {
				seen[k] = true
				out = append(out, n.Atom)
			}
		}
		return true
	})
	return out
}
