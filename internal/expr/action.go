// Package expr defines the abstract syntax of interaction expressions:
// actions with value and parameter arguments, the fourteen operators of the
// formalism (Table 8 of the paper), canonical printing, substitution of
// parameters by values, and alphabet computation.
//
// Expressions are immutable after construction. Their canonical string form
// (String) doubles as identity: two expressions are structurally equal iff
// their strings are equal, and the parser accepts every canonical form back
// (round-trip property, checked in tests).
package expr

import (
	"fmt"
	"strings"
)

// Arg is one argument of an action: either a concrete value ω ∈ Ω or a
// formal parameter p ∈ Π. Values and parameters are disjoint name spaces
// (Ω ∩ Π = ∅ in the paper); the Param flag keeps them apart here.
type Arg struct {
	Param bool   // true: formal parameter; false: concrete value
	Name  string // value or parameter identifier
}

// Val returns a concrete-value argument.
func Val(name string) Arg { return Arg{Name: name} }

// Prm returns a formal-parameter argument.
func Prm(name string) Arg { return Arg{Param: true, Name: name} }

// String renders the argument in parser syntax: values bare, parameters
// with a leading '$' so that free parameters survive a print/parse cycle.
func (a Arg) String() string {
	if a.Param {
		return "$" + a.Name
	}
	return a.Name
}

// Action is an (abstract) action [a0, a1, ..., an] ∈ Γ: a name plus zero or
// more arguments. An action with only value arguments is concrete (∈ Σ).
type Action struct {
	Name string
	Args []Arg
}

// Act builds an action from a name and arguments.
func Act(name string, args ...Arg) Action {
	return Action{Name: name, Args: args}
}

// ConcreteAct builds a concrete action whose arguments are all values.
func ConcreteAct(name string, values ...string) Action {
	args := make([]Arg, len(values))
	for i, v := range values {
		args[i] = Val(v)
	}
	return Action{Name: name, Args: args}
}

// Concrete reports whether every argument is a concrete value (a ∈ Σ).
func (a Action) Concrete() bool {
	for _, arg := range a.Args {
		if arg.Param {
			return false
		}
	}
	return true
}

// Equal reports structural equality of two actions.
func (a Action) Equal(b Action) bool {
	if a.Name != b.Name || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// StrictMatch reports whether the atom a accepts the concrete action c
// under strict matching: same name, same arity, and every argument of a is
// a concrete value equal to the corresponding argument of c. An atom that
// still contains a formal parameter matches nothing; parameters are bound
// only by quantifier-level substitution (see the state model).
func (a Action) StrictMatch(c Action) bool {
	if a.Name != c.Name || len(a.Args) != len(c.Args) {
		return false
	}
	for i, arg := range a.Args {
		if arg.Param || arg.Name != c.Args[i].Name {
			return false
		}
	}
	return true
}

// Subst returns the action with every occurrence of parameter p replaced by
// the concrete value v. If p does not occur, the receiver is returned
// unchanged (actions are treated as immutable values).
func (a Action) Subst(p, v string) Action {
	changed := false
	for _, arg := range a.Args {
		if arg.Param && arg.Name == p {
			changed = true
			break
		}
	}
	if !changed {
		return a
	}
	args := make([]Arg, len(a.Args))
	for i, arg := range a.Args {
		if arg.Param && arg.Name == p {
			args[i] = Val(v)
		} else {
			args[i] = arg
		}
	}
	return Action{Name: a.Name, Args: args}
}

// Params returns the set of parameter names occurring in the action.
func (a Action) Params() map[string]bool {
	var ps map[string]bool
	for _, arg := range a.Args {
		if arg.Param {
			if ps == nil {
				ps = make(map[string]bool)
			}
			ps[arg.Name] = true
		}
	}
	return ps
}

// Values returns the concrete values occurring in the action, in order.
func (a Action) Values() []string {
	var vs []string
	for _, arg := range a.Args {
		if !arg.Param {
			vs = append(vs, arg.Name)
		}
	}
	return vs
}

// String renders the action in parser syntax: name or name(arg1,...,argn).
func (a Action) String() string {
	if len(a.Args) == 0 {
		return a.Name
	}
	var b strings.Builder
	b.WriteString(a.Name)
	b.WriteByte('(')
	for i, arg := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(arg.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns a canonical identity string for the action. It equals
// String(); both are kept so call sites can state intent.
func (a Action) Key() string { return a.String() }

// ParseActionString parses a concrete action of the form "name" or
// "name(v1,v2,...)" where all arguments are bare values. It is a
// convenience for command-line tools and wire protocols; the full
// expression parser lives in internal/parse.
func ParseActionString(s string) (Action, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if !validIdent(s) {
			return Action{}, fmt.Errorf("expr: invalid action %q", s)
		}
		return Action{Name: s}, nil
	}
	if !strings.HasSuffix(s, ")") {
		return Action{}, fmt.Errorf("expr: invalid action %q: missing ')'", s)
	}
	name := s[:open]
	if !validIdent(name) {
		return Action{}, fmt.Errorf("expr: invalid action name %q", name)
	}
	inner := s[open+1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return Action{Name: name}, nil
	}
	parts := strings.Split(inner, ",")
	args := make([]Arg, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if !validIdent(p) {
			return Action{}, fmt.Errorf("expr: invalid action argument %q", p)
		}
		args[i] = Val(p)
	}
	return Action{Name: name, Args: args}, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
