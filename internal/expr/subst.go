package expr

// Subst returns the expression derived from e by replacing every free
// occurrence of parameter p with the concrete value v (the concretion
// y_ω^p of the paper). Occurrences bound by an inner quantifier of the
// same name are shadowed and left untouched. If p does not occur free,
// the receiver itself is returned.
func (e *Expr) Subst(p, v string) *Expr {
	if !e.HasFreeParam(p) {
		return e
	}
	switch e.Op {
	case OpAtom:
		return Atom(e.Atom.Subst(p, v))
	case OpEmpty:
		return e
	case OpAnyQ, OpAllQ, OpSyncQ, OpConQ:
		if e.Param == p {
			return e // shadowed; HasFreeParam said otherwise, defensive
		}
		return quant(e.Op, e.Param, e.Kids[0].Subst(p, v))
	default:
		kids := make([]*Expr, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = k.Subst(p, v)
		}
		return rebuild(e, kids)
	}
}

// rebuild constructs a copy of e with new children, preserving operator,
// multiplicity and parameter.
func rebuild(e *Expr, kids []*Expr) *Expr {
	switch e.Op {
	case OpOption:
		return Option(kids[0])
	case OpSeq:
		return Seq(kids...)
	case OpSeqIter:
		return SeqIter(kids[0])
	case OpPar:
		return Par(kids...)
	case OpParIter:
		return ParIter(kids[0])
	case OpOr:
		return Or(kids...)
	case OpAnd:
		return And(kids...)
	case OpSync:
		return Sync(kids...)
	case OpMult:
		return Mult(e.N, kids[0])
	case OpAnyQ, OpAllQ, OpSyncQ, OpConQ:
		return quant(e.Op, e.Param, kids[0])
	}
	panic("expr: rebuild on leaf")
}

// HasFreeParam reports whether parameter p occurs free in e.
func (e *Expr) HasFreeParam(p string) bool {
	switch e.Op {
	case OpAtom:
		for _, a := range e.Atom.Args {
			if a.Param && a.Name == p {
				return true
			}
		}
		return false
	case OpEmpty:
		return false
	case OpAnyQ, OpAllQ, OpSyncQ, OpConQ:
		if e.Param == p {
			return false
		}
	}
	for _, k := range e.Kids {
		if k.HasFreeParam(p) {
			return true
		}
	}
	return false
}

// FreeParams returns the set of parameters occurring free in e.
func (e *Expr) FreeParams() map[string]bool {
	out := make(map[string]bool)
	e.freeParams(out, nil)
	return out
}

func (e *Expr) freeParams(out map[string]bool, bound []string) {
	switch e.Op {
	case OpAtom:
		for _, a := range e.Atom.Args {
			if a.Param && !contains(bound, a.Name) {
				out[a.Name] = true
			}
		}
		return
	case OpAnyQ, OpAllQ, OpSyncQ, OpConQ:
		bound = append(bound, e.Param)
	}
	for _, k := range e.Kids {
		k.freeParams(out, bound)
	}
}

// Closed reports whether the expression has no free parameters. Only
// closed expressions can be executed by the state model or the manager.
func (e *Expr) Closed() bool { return len(e.FreeParams()) == 0 }

// Values returns every concrete value mentioned anywhere in e, in
// first-occurrence order. The semantics oracle uses this to build a
// finite relevant-value universe.
func (e *Expr) Values() []string {
	var out []string
	seen := make(map[string]bool)
	e.Walk(func(n *Expr) bool {
		if n.Op == OpAtom {
			for _, v := range n.Atom.Values() {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		return true
	})
	return out
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
