package expr

import (
	"sort"
	"strings"
)

// PatKind classifies one position of an alphabet pattern.
type PatKind int

const (
	// PatValue matches exactly one concrete value.
	PatValue PatKind = iota
	// PatWild matches any concrete value. It arises from parameters that
	// are bound by a quantifier inside the expression whose alphabet is
	// being computed: α(any p: y) = ∪_ω α(y_ω^p), so the position ranges
	// over all of Ω.
	PatWild
	// PatFree matches nothing. It arises from parameters that are free in
	// the expression: until a surrounding quantifier substitutes a value,
	// no concrete action can instantiate the position.
	PatFree
)

// PatArg is one argument position of an alphabet pattern.
type PatArg struct {
	Kind PatKind
	Name string // value for PatValue, parameter name for PatFree
}

// Pattern is one element of an expression alphabet α(x): an action shape
// against which concrete actions are matched.
type Pattern struct {
	Name string
	Args []PatArg
}

// Match reports whether the concrete action c is an instance of the
// pattern.
func (p Pattern) Match(c Action) bool {
	if p.Name != c.Name || len(p.Args) != len(c.Args) {
		return false
	}
	for i, a := range p.Args {
		switch a.Kind {
		case PatValue:
			if c.Args[i].Param || c.Args[i].Name != a.Name {
				return false
			}
		case PatWild:
			if c.Args[i].Param {
				return false
			}
		case PatFree:
			return false
		}
	}
	return true
}

// Key returns a canonical identity string for the pattern.
func (p Pattern) Key() string {
	if len(p.Args) == 0 {
		return p.Name
	}
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteByte('(')
	for i, a := range p.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		switch a.Kind {
		case PatValue:
			b.WriteString(a.Name)
		case PatWild:
			b.WriteByte('*')
		case PatFree:
			b.WriteString("$" + a.Name)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Alphabet is the alphabet α(x) of an expression: a set of patterns.
type Alphabet struct {
	pats []Pattern
	keys map[string]bool
}

// Contains reports whether the concrete action c belongs to the alphabet,
// i.e. matches at least one pattern.
func (al *Alphabet) Contains(c Action) bool {
	if al == nil {
		return false
	}
	for _, p := range al.pats {
		if p.Match(c) {
			return true
		}
	}
	return false
}

// BindingMatches returns the distinct values v occurring in c for which
// binding the free parameter p to v makes some pattern match c that does
// not match it unbound. These are exactly the bindings under which a
// state that consumed c with p free would have behaved differently had p
// been bound first — the quantifier states use this to mark such values
// as no longer bindable for branches that consumed c unbound.
func (al *Alphabet) BindingMatches(p string, c Action) []string {
	if al == nil {
		return nil
	}
	var out []string
pattern:
	for _, pat := range al.pats {
		if pat.Name != c.Name || len(pat.Args) != len(c.Args) {
			continue
		}
		v := ""
		for i, a := range pat.Args {
			ca := c.Args[i]
			switch a.Kind {
			case PatValue:
				if ca.Param || ca.Name != a.Name {
					continue pattern
				}
			case PatWild:
				if ca.Param {
					continue pattern
				}
			case PatFree:
				// Only p's own positions can be bound; another free
				// parameter keeps the pattern unmatchable.
				if a.Name != p || ca.Param {
					continue pattern
				}
				// Every $p position must agree on the same value.
				if v != "" && v != ca.Name {
					continue pattern
				}
				v = ca.Name
			}
		}
		// v == "" means the pattern has no $p position: it either matched
		// already or never will, independent of the binding.
		if v != "" && !contains(out, v) {
			out = append(out, v)
		}
	}
	sort.Strings(out) // callers store the result as a canonical set
	return out
}

// Patterns returns the patterns of the alphabet in insertion order. The
// returned slice must not be modified.
func (al *Alphabet) Patterns() []Pattern {
	if al == nil {
		return nil
	}
	return al.pats
}

// Len returns the number of distinct patterns.
func (al *Alphabet) Len() int {
	if al == nil {
		return 0
	}
	return len(al.pats)
}

func (al *Alphabet) add(p Pattern) {
	k := p.Key()
	if al.keys[k] {
		return
	}
	al.keys[k] = true
	al.pats = append(al.pats, p)
}

// AlphabetOf computes α(e): one pattern per atom, with argument positions
// classified relative to e. Parameters bound by quantifiers within e become
// wildcards; parameters free in e match nothing until substituted (last
// column of Table 8: alphabets are unions of the operands' alphabets, and
// quantifier alphabets are unions over all concretions of the body).
func AlphabetOf(e *Expr) *Alphabet {
	al := &Alphabet{keys: make(map[string]bool)}
	collectAlphabet(e, nil, al)
	return al
}

func collectAlphabet(e *Expr, bound []string, al *Alphabet) {
	switch e.Op {
	case OpAtom:
		args := make([]PatArg, len(e.Atom.Args))
		for i, a := range e.Atom.Args {
			switch {
			case !a.Param:
				args[i] = PatArg{Kind: PatValue, Name: a.Name}
			case contains(bound, a.Name):
				args[i] = PatArg{Kind: PatWild}
			default:
				args[i] = PatArg{Kind: PatFree, Name: a.Name}
			}
		}
		al.add(Pattern{Name: e.Atom.Name, Args: args})
		return
	case OpAnyQ, OpAllQ, OpSyncQ, OpConQ:
		bound = append(bound, e.Param)
	}
	for _, k := range e.Kids {
		collectAlphabet(k, bound, al)
	}
}
