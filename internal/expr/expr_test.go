package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestArgString(t *testing.T) {
	if got := Val("v").String(); got != "v" {
		t.Errorf("Val: got %q", got)
	}
	if got := Prm("p").String(); got != "$p" {
		t.Errorf("Prm: got %q", got)
	}
}

func TestActionString(t *testing.T) {
	cases := []struct {
		a    Action
		want string
	}{
		{Act("a"), "a"},
		{Act("call", Val("v7")), "call(v7)"},
		{Act("call", Prm("p"), Val("sono")), "call($p,sono)"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("%#v: got %q want %q", c.a, got, c.want)
		}
	}
}

func TestActionConcrete(t *testing.T) {
	if !Act("a", Val("x")).Concrete() {
		t.Error("value-only action should be concrete")
	}
	if Act("a", Prm("p")).Concrete() {
		t.Error("parameterized action should not be concrete")
	}
	if !Act("a").Concrete() {
		t.Error("argument-free action should be concrete")
	}
}

func TestStrictMatch(t *testing.T) {
	cases := []struct {
		atom, act Action
		want      bool
	}{
		{Act("a"), Act("a"), true},
		{Act("a"), Act("b"), false},
		{Act("a", Val("v")), Act("a", Val("v")), true},
		{Act("a", Val("v")), Act("a", Val("w")), false},
		{Act("a", Val("v")), Act("a"), false},
		{Act("a"), Act("a", Val("v")), false},
		// Parameters never match strictly.
		{Act("a", Prm("p")), Act("a", Val("v")), false},
	}
	for _, c := range cases {
		if got := c.atom.StrictMatch(c.act); got != c.want {
			t.Errorf("StrictMatch(%s, %s) = %v, want %v", c.atom, c.act, got, c.want)
		}
	}
}

func TestActionSubst(t *testing.T) {
	a := Act("call", Prm("p"), Val("sono"), Prm("q"))
	got := a.Subst("p", "v7")
	want := Act("call", Val("v7"), Val("sono"), Prm("q"))
	if !got.Equal(want) {
		t.Errorf("Subst: got %s want %s", got, want)
	}
	// Receiver unchanged (immutability).
	if !a.Args[0].Param {
		t.Error("Subst mutated the receiver")
	}
	// No occurrence: same value back.
	if b := a.Subst("z", "v"); !b.Equal(a) {
		t.Error("Subst without occurrence should be identity")
	}
}

func TestParseActionString(t *testing.T) {
	good := map[string]string{
		"a":              "a",
		"call(v7)":       "call(v7)",
		" call(v7,sono)": "call(v7,sono)",
		"x( a , b )":     "x(a,b)",
	}
	for in, want := range good {
		a, err := ParseActionString(in)
		if err != nil {
			t.Errorf("ParseActionString(%q): %v", in, err)
			continue
		}
		if a.String() != want {
			t.Errorf("ParseActionString(%q) = %s, want %s", in, a, want)
		}
	}
	bad := []string{"", "(", "a(", "a)", "a(b", "1a", "a(b,)", "a()x", "a-b"}
	for _, in := range bad {
		if _, err := ParseActionString(in); err == nil {
			t.Errorf("ParseActionString(%q): expected error", in)
		}
	}
}

func TestParseActionStringEmptyParens(t *testing.T) {
	a, err := ParseActionString("a()")
	if err != nil {
		t.Fatalf("a(): %v", err)
	}
	if a.String() != "a" || len(a.Args) != 0 {
		t.Errorf("a() should normalize to zero-arg action, got %s", a)
	}
}

var (
	ea = AtomNamed("a")
	eb = AtomNamed("b")
	ec = AtomNamed("c")
)

func TestCanonicalStrings(t *testing.T) {
	cases := []struct {
		e    *Expr
		want string
	}{
		{ea, "a"},
		{Empty(), "()"},
		{Option(ea), "a?"},
		{Seq(ea, eb), "a - b"},
		{Seq(ea, eb, ec), "a - b - c"},
		{SeqIter(ea), "a*"},
		{ParIter(ea), "a#"},
		{Par(ea, eb), "a || b"},
		{Or(ea, eb), "a | b"},
		{And(ea, eb), "a & b"},
		{Sync(ea, eb), "a @ b"},
		{Mult(3, ea), "mult(3, a)"},
		{SeqIter(Or(ea, eb)), "(a | b)*"},
		{Seq(Or(ea, eb), ec), "(a | b) - c"},
		{Or(Seq(ea, eb), ec), "a - b | c"},
		{Par(Seq(ea, eb), ec), "a - b || c"},
		{And(Par(ea, eb), ec), "a || b & c"},
		{AnyQ("p", AtomNamed("x", Prm("p"))), "any p: x($p)"},
		{AllQ("p", SeqIter(AtomNamed("x", Prm("p")))), "all p: x($p)*"},
		{SyncQ("p", ea), "syncq p: a"},
		{ConQ("p", ea), "conq p: a"},
		{Option(SeqIter(ea)), "a*?"},
		{Seq(ea, AnyQ("p", eb)), "a - (any p: b)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String: got %q want %q", got, c.want)
		}
	}
}

func TestNaryFlattening(t *testing.T) {
	e1 := Seq(Seq(ea, eb), ec)
	e2 := Seq(ea, Seq(eb, ec))
	e3 := Seq(ea, eb, ec)
	if e1.String() != e3.String() || e2.String() != e3.String() {
		t.Errorf("associativity flattening failed: %q %q %q", e1, e2, e3)
	}
	if len(e3.Kids) != 3 {
		t.Errorf("expected 3 kids, got %d", len(e3.Kids))
	}
	// Empty is the neutral element of seq and par.
	if Seq(ea, Empty(), eb).String() != "a - b" {
		t.Errorf("seq should drop empty: %q", Seq(ea, Empty(), eb))
	}
	if Par(Empty(), ea).String() != "a" {
		t.Errorf("par should drop empty: %q", Par(Empty(), ea))
	}
	// But or/and/sync must keep it.
	if Or(Empty(), ea).String() != "() | a" {
		t.Errorf("or must keep empty: %q", Or(Empty(), ea))
	}
}

func TestSingletonCollapse(t *testing.T) {
	if Seq(ea) != ea {
		t.Error("unary seq should collapse")
	}
	if Mult(1, ea) != ea {
		t.Error("mult(1, y) should collapse to y")
	}
	if Mult(0, ea).Op != OpEmpty {
		t.Error("mult(0, y) should be empty")
	}
}

func TestSubstShadowing(t *testing.T) {
	// any p: (x(p) - any p: y(p)) — the inner p is a different binder.
	inner := AnyQ("p", AtomNamed("y", Prm("p")))
	e := Seq(AtomNamed("x", Prm("p")), inner)
	got := e.Subst("p", "v")
	want := Seq(AtomNamed("x", Val("v")), inner)
	if !got.Equal(want) {
		t.Errorf("shadowed subst: got %s want %s", got, want)
	}
}

func TestFreeParamsAndClosed(t *testing.T) {
	e := AnyQ("p", Seq(AtomNamed("x", Prm("p")), AtomNamed("y", Prm("q"))))
	free := e.FreeParams()
	if len(free) != 1 || !free["q"] {
		t.Errorf("FreeParams: got %v want {q}", free)
	}
	if e.Closed() {
		t.Error("expression with free q should not be closed")
	}
	if !AnyQ("q", e).Closed() {
		t.Error("fully quantified expression should be closed")
	}
}

func TestSubstIdentityWhenAbsent(t *testing.T) {
	e := Seq(ea, eb)
	if e.Subst("p", "v") != e {
		t.Error("Subst without free occurrence should return the receiver")
	}
}

func TestSizeDepthWalkActions(t *testing.T) {
	e := Seq(ea, Or(eb, ec))
	if e.Size() != 5 { // seq + a + or + b + c
		t.Errorf("Size: got %d want 5", e.Size())
	}
	if e.Depth() != 3 {
		t.Errorf("Depth: got %d want 3", e.Depth())
	}
	acts := e.Actions()
	if len(acts) != 3 {
		t.Errorf("Actions: got %v", acts)
	}
	// Duplicate atoms are reported once.
	if n := len(Seq(ea, ea).Actions()); n != 1 {
		t.Errorf("Actions dedup: got %d", n)
	}
}

func TestAlphabetPatterns(t *testing.T) {
	e := AnyQ("p", Seq(
		AtomNamed("x", Prm("p")),
		AtomNamed("y", Val("v"), Prm("q")),
		AtomNamed("z"),
	))
	al := AlphabetOf(e)
	if al.Len() != 3 {
		t.Fatalf("alphabet size: got %d want 3", al.Len())
	}
	// x(*): bound parameter → wildcard.
	if !al.Contains(ConcreteAct("x", "anything")) {
		t.Error("x(*) should contain x(anything)")
	}
	// y(v, $q): q is free → matches nothing.
	if al.Contains(ConcreteAct("y", "v", "w")) {
		t.Error("pattern with free parameter must match nothing")
	}
	// z: plain.
	if !al.Contains(ConcreteAct("z")) {
		t.Error("z should be in alphabet")
	}
	// wrong arity
	if al.Contains(ConcreteAct("x")) {
		t.Error("x with wrong arity should not match")
	}
	if al.Contains(ConcreteAct("w")) {
		t.Error("unknown action should not match")
	}
}

func TestAlphabetAfterSubst(t *testing.T) {
	e := Seq(AtomNamed("x", Prm("q")))
	if AlphabetOf(e).Contains(ConcreteAct("x", "v")) {
		t.Error("free q should not match")
	}
	if !AlphabetOf(e.Subst("q", "v")).Contains(ConcreteAct("x", "v")) {
		t.Error("after substitution the value should match")
	}
}

func TestPatternKey(t *testing.T) {
	e := AnyQ("p", AtomNamed("x", Prm("p"), Val("v"), Prm("q")))
	pats := AlphabetOf(e).Patterns()
	if len(pats) != 1 {
		t.Fatalf("got %d patterns", len(pats))
	}
	if got := pats[0].Key(); got != "x(*,v,$q)" {
		t.Errorf("pattern key: got %q", got)
	}
}

// Property: the canonical string of a rebuilt expression is stable
// (structural identity is well-defined).
func TestPropertyRebuildStable(t *testing.T) {
	f := func(seed int64) bool {
		e := genExpr(seed, 3)
		return e.String() == rebuildDeep(e).String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func rebuildDeep(e *Expr) *Expr {
	if len(e.Kids) == 0 {
		switch e.Op {
		case OpAtom:
			return Atom(e.Atom)
		case OpEmpty:
			return Empty()
		}
	}
	kids := make([]*Expr, len(e.Kids))
	for i, k := range e.Kids {
		kids[i] = rebuildDeep(k)
	}
	return rebuild(e, kids)
}

// genExpr derives a deterministic pseudo-random expression from a seed —
// shared helper for quick-check style properties.
func genExpr(seed int64, depth int) *Expr {
	s := uint64(seed)
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	var gen func(d int, params []string) *Expr
	gen = func(d int, params []string) *Expr {
		if d == 0 || next(5) == 0 {
			names := []string{"a", "b", "x"}
			name := names[next(len(names))]
			switch next(3) {
			case 0:
				return AtomNamed(name)
			case 1:
				return AtomNamed(name, Val("v"))
			default:
				if len(params) == 0 {
					return AtomNamed(name)
				}
				return AtomNamed(name, Prm(params[next(len(params))]))
			}
		}
		switch next(10) {
		case 0:
			return Option(gen(d-1, params))
		case 1:
			return Seq(gen(d-1, params), gen(d-1, params))
		case 2:
			return SeqIter(gen(d-1, params))
		case 3:
			return Par(gen(d-1, params), gen(d-1, params))
		case 4:
			return ParIter(gen(d-1, params))
		case 5:
			return Or(gen(d-1, params), gen(d-1, params))
		case 6:
			return And(gen(d-1, params), gen(d-1, params))
		case 7:
			return Sync(gen(d-1, params), gen(d-1, params))
		case 8:
			return Mult(2, gen(d-1, params))
		default:
			p := "p" + string(rune('0'+len(params)))
			return AnyQ(p, gen(d-1, append(params, p)))
		}
	}
	return gen(depth, nil)
}

func TestRenderParenthesesRoundTrip(t *testing.T) {
	// Nested operators at every precedence pair must render with enough
	// parentheses that operator structure is visible in the string.
	e := Or(And(ea, Sync(eb, Par(ec, Seq(ea, eb)))), Option(ea))
	s := e.String()
	for _, frag := range []string{"&", "@", "||", "-", "|", "?"} {
		if !strings.Contains(s, frag) {
			t.Errorf("render lost operator %q: %s", frag, s)
		}
	}
}
