package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func ent(i int) Entry {
	return Entry{Name: "act", Args: []string{fmt.Sprintf("p%d", i)}, Seq: uint64(i)}
}

type replayer interface {
	Replay(fn func(Entry) error) error
}

func collect(t *testing.T, r replayer) []Entry {
	t.Helper()
	var out []Entry
	if err := r.Replay(func(e Entry) error { out = append(out, e); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func wantSeqs(t *testing.T, got []Entry, want ...uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d (%v)", len(got), len(want), got)
	}
	for i, e := range got {
		if e.Seq != want[i] {
			t.Fatalf("entry %d has seq %d, want %d", i, e.Seq, want[i])
		}
	}
}

// tear appends a half-written record — a crash mid-append — to path.
func tear(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"a":"act","v":["to`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileLogTornTailDoubleRestart is the headline regression at the
// storage layer: a torn tail must be truncated on replay, not merely
// skipped — otherwise the next append welds onto the torn bytes and the
// second restart fails on a mid-file corrupt record.
func TestFileLogTornTailDoubleRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "actions.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := l.Append(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Crash()
	tear(t, path)

	// First restart: the torn tail is dropped...
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, collect(t, l2), 1, 2)
	// ...and the next append must land on a clean boundary.
	if err := l2.Append(ent(3)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: before the truncate fix this failed with a
	// mid-file corrupt record (the welded line).
	l3, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, collect(t, l3), 1, 2, 3)
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileLogBufferedEntriesDieOnCrash: Buffer stages without flushing,
// so a crash loses the staged entries; Commit makes them survive.
func TestFileLogBufferedEntriesDieOnCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "actions.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(ent(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Buffer(ent(2)); err != nil {
		t.Fatal(err)
	}
	l.Crash()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, collect(t, l2), 1)
	if err := l2.Buffer(ent(2)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Commit(false); err != nil {
		t.Fatal(err)
	}
	l2.Crash()

	l3, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, collect(t, l3), 1, 2)
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileLogCorruptMidFile: garbage anywhere but the final line is real
// corruption, not a torn tail, and must fail replay loudly.
func TestFileLogCorruptMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "actions.log")
	content := `{"a":"act","s":1}` + "\n" + `GARBAGE` + "\n" + `{"a":"act","s":2}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = l.Replay(func(Entry) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "corrupt log record") {
		t.Fatalf("mid-file garbage: got %v, want corrupt log record", err)
	}
}

// TestFileLogPositionalSeq: pre-PR-2 logs carry no sequence numbers;
// replay numbers them 1, 2, ... positionally.
func TestFileLogPositionalSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "actions.log")
	content := `{"a":"a"}` + "\n" + `{"a":"b","v":["x"]}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	wantSeqs(t, collect(t, l), 1, 2)
}

// TestMonolithCheckpointRoundTrip: the monolithic backend restores the
// single snapshot file as a one-piece full chain and rejects deltas.
func TestMonolithCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	logPath, snapPath := filepath.Join(dir, "a.log"), filepath.Join(dir, "s.snap")
	m, err := OpenMonolith(logPath, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.SupportsDelta() {
		t.Fatal("monolith claims delta support")
	}
	if err := m.SaveCheckpoint(Checkpoint{Full: false, Data: []byte("x")}); !errors.Is(err, ErrDeltaUnsupported) {
		t.Fatalf("delta checkpoint: got %v, want ErrDeltaUnsupported", err)
	}
	if err := m.SaveCheckpoint(Checkpoint{Full: true, Data: []byte("snapdata\n")}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenMonolith(logPath, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	chain, err := m2.RestoreChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || !chain[0].Full || string(chain[0].Data) != "snapdata\n" {
		t.Fatalf("restored chain %+v, want one full piece", chain)
	}
}

// TestMonolithCompactTruncatesLog: with one file there is nothing to
// drop selectively — compaction truncates the whole log (safe because
// the manager compacts only right after a covering checkpoint).
func TestMonolithCompactTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenMonolith(filepath.Join(dir, "a.log"), filepath.Join(dir, "s.snap"))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 1; i <= 3; i++ {
		if err := m.Append(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := m.LogBytes(); n == 0 {
		t.Fatal("log empty after appends")
	}
	if err := m.CompactThrough(3); err != nil {
		t.Fatal(err)
	}
	if n, _ := m.LogBytes(); n != 0 {
		t.Fatalf("log holds %d bytes after compaction, want 0", n)
	}
	wantSeqs(t, collect(t, m))
}

// TestSegmentedSealRollover: a tiny threshold seals after every append;
// sealed filenames record the covered sequence number and replay stays
// in order across the segment boundary.
func TestSegmentedSealRollover(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := s.Append(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 5 {
		t.Fatalf("%d sealed segments, want 5: %v", len(segs), segs)
	}
	if want := filepath.Join(dir, "seg-00000004-00000000000000000005.seg"); segs[4] != want {
		t.Fatalf("sealed name %s, want %s", segs[4], want)
	}

	s2, err := OpenSegmented(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wantSeqs(t, collect(t, s2), 1, 2, 3, 4, 5)
}

// TestSegmentedGroupCommitNeverSplits: a batch buffered past the seal
// threshold lands whole in one segment; the seal happens at the commit.
func TestSegmentedGroupCommitNeverSplits(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 4; i++ {
		if err := s.Buffer(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "*.seg")); len(segs) != 0 {
		t.Fatalf("buffering sealed %d segments before commit", len(segs))
	}
	if err := s.Commit(false); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("%d sealed segments after group commit, want 1 (batch split)", len(segs))
	}
}

// TestSegmentedStaleTmpRemoved: interrupted atomic writes leave *.tmp
// files; open removes them (the rename never happened, the content was
// never live).
func TestSegmentedStaleTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "ckpt-00000000.full.tmp")
	if err := os.WriteFile(tmp, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSegmented(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale tmp survived open: %v", err)
	}
}

// TestSegmentedRejectsForeignFiles: an unrecognized file in the storage
// directory is corruption (or a misconfiguration) and fails open.
func TestSegmentedRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmented(dir, 0); err == nil {
		t.Fatal("open accepted a foreign file")
	}
}

// TestSegmentedTornActiveTailDoubleRestart: the headline torn-tail
// regression on the segmented backend — truncate, append, restart again.
func TestSegmentedTornActiveTailDoubleRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := s.Append(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	open, _ := filepath.Glob(filepath.Join(dir, "*.open"))
	if len(open) != 1 {
		t.Fatalf("%d open segments, want 1", len(open))
	}
	tear(t, open[0])

	s2, err := OpenSegmented(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, collect(t, s2), 1, 2)
	if err := s2.Append(ent(3)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := OpenSegmented(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	wantSeqs(t, collect(t, s3), 1, 2, 3)
}

// TestSegmentedTornSealedSegmentFails: sealed segments were fsynced
// before the seal rename, so a torn record there is real corruption.
func TestSegmentedTornSealedSegmentFails(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(ent(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("%d sealed segments, want 1", len(segs))
	}
	tear(t, segs[0])

	s2, err := OpenSegmented(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	err = s2.Replay(func(Entry) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "torn record in sealed segment") {
		t.Fatalf("torn sealed segment: got %v, want torn-record error", err)
	}
}

// TestSegmentedCheckpointChain: RestoreChain returns the newest full
// base plus every piece after it; older pieces are inert.
func TestSegmentedCheckpointChain(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	pieces := []Checkpoint{
		{Full: true, Data: []byte("base0")},
		{Full: false, Data: []byte("delta1")},
		{Full: false, Data: []byte("delta2")},
	}
	for _, c := range pieces {
		if err := s.SaveCheckpoint(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegmented(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := s2.RestoreChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain has %d pieces, want 3", len(chain))
	}
	for i, c := range chain {
		if c.Full != pieces[i].Full || string(c.Data) != string(pieces[i].Data) {
			t.Fatalf("piece %d = {%v %q}, want {%v %q}", i, c.Full, c.Data, pieces[i].Full, pieces[i].Data)
		}
	}
	// A newer full base supersedes the whole prior chain.
	if err := s2.SaveCheckpoint(Checkpoint{Full: true, Data: []byte("base3")}); err != nil {
		t.Fatal(err)
	}
	chain, err = s2.RestoreChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || !chain[0].Full || string(chain[0].Data) != "base3" {
		t.Fatalf("chain after new base: %+v, want just base3", chain)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedChainCorruptionDetected: a hole inside the live chain,
// or deltas whose base is gone, must error rather than restore a wrong
// state.
func TestSegmentedChainCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Checkpoint{
		{Full: true, Data: []byte("base")},
		{Full: false, Data: []byte("d1")},
		{Full: false, Data: []byte("d2")},
	} {
		if err := s.SaveCheckpoint(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Hole: remove the middle delta.
	if err := os.Remove(filepath.Join(dir, "ckpt-00000001.delta")); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSegmented(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.RestoreChain(); err == nil || !strings.Contains(err.Error(), "chain broken") {
		t.Fatalf("chain hole: got %v, want chain-broken error", err)
	}
	s2.Close()

	// No base: remove the full piece too.
	if err := os.Remove(filepath.Join(dir, "ckpt-00000000.full")); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenSegmented(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, err := s3.RestoreChain(); err == nil || !strings.Contains(err.Error(), "no full base") {
		t.Fatalf("orphan deltas: got %v, want no-full-base error", err)
	}
}

// TestSegmentedCompaction: a checkpoint at sequence S makes sealed
// segments with lastSeq <= S and chain pieces before the newest full
// base dead; the background pass unlinks exactly those.
func TestSegmentedCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 6; i++ {
		if err := s.Append(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []Checkpoint{
		{Full: true, Data: []byte("old base")},
		{Full: false, Data: []byte("old delta")},
		{Full: true, Data: []byte("new base")},
	} {
		if err := s.SaveCheckpoint(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CompactThrough(4); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitCompaction(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 2 {
		t.Fatalf("%d sealed segments survive compaction through 4, want 2: %v", len(segs), segs)
	}
	wantSeqs(t, collect(t, s), 5, 6)
	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*"))
	if len(ckpts) != 1 || !strings.HasSuffix(ckpts[0], "ckpt-00000002.full") {
		t.Fatalf("chain files after compaction: %v, want just the new base", ckpts)
	}
}

// TestSegmentedInterruptedCompactionRecovery: a crash mid-pass leaves a
// prefix of the dead files unlinked; recovery treats the leftovers as
// inert and the next pass finishes the job.
func TestSegmentedInterruptedCompactionRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if err := s.Append(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveCheckpoint(Checkpoint{Full: true, Data: []byte("base covers 1-4")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the pass unlinks dead segments in index order,
	// so an interruption leaves a prefix removed — here 2 of the 4
	// segments a checkpoint at sequence 4 covers.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 6 {
		t.Fatalf("%d sealed segments, want 6", len(segs))
	}
	for _, p := range segs[:2] {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := OpenSegmented(dir, 1)
	if err != nil {
		t.Fatalf("open after interrupted compaction: %v", err)
	}
	defer s2.Close()
	chain, err := s2.RestoreChain()
	if err != nil || len(chain) != 1 {
		t.Fatalf("chain after interrupted compaction: %v, %v", chain, err)
	}
	// The survivors replay with their original sequence numbers — the
	// caller's checkpoint-cutoff filter (seq <= 4) renders 3 and 4 inert.
	wantSeqs(t, collect(t, s2), 3, 4, 5, 6)
	// The next pass finishes the job.
	if err := s2.CompactThrough(4); err != nil {
		t.Fatal(err)
	}
	if err := s2.WaitCompaction(); err != nil {
		t.Fatal(err)
	}
	segs, _ = filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 2 {
		t.Fatalf("%d sealed segments after the finishing pass, want 2: %v", len(segs), segs)
	}
}

// TestSegmentedTruncateLog: resync drops the whole log — sealed
// segments and active contents — regardless of sequence numbers.
func TestSegmentedTruncateLog(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 4; i++ {
		if err := s.Append(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.TruncateLog(); err != nil {
		t.Fatal(err)
	}
	if n, err := s.LogBytes(); err != nil || n != 0 {
		t.Fatalf("log holds %d bytes after truncate (%v), want 0", n, err)
	}
	wantSeqs(t, collect(t, s))
	if segs, _ := filepath.Glob(filepath.Join(dir, "*.seg")); len(segs) != 0 {
		t.Fatalf("sealed segments survive truncate: %v", segs)
	}
}

// TestMemoryCrashDurability: the in-memory backend models process-crash
// durability — appends and commits survive Crash, buffered entries die.
func TestMemoryCrashDurability(t *testing.T) {
	m := NewMemory()
	if err := m.Append(ent(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Buffer(ent(2)); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	wantSeqs(t, collect(t, m), 1)

	if err := m.Buffer(ent(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(false); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	wantSeqs(t, collect(t, m), 1, 2)
}

// TestMemoryChainAndCompaction: checkpoint chains and sequence-based
// compaction mirror the segmented backend's semantics.
func TestMemoryChainAndCompaction(t *testing.T) {
	m := NewMemory()
	if !m.SupportsDelta() {
		t.Fatal("memory backend should support deltas")
	}
	for i := 1; i <= 4; i++ {
		if err := m.Append(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []Checkpoint{
		{Full: true, Data: []byte("old")},
		{Full: true, Data: []byte("base"), Seq: 2},
		{Full: false, Data: []byte("delta"), Seq: 3},
	} {
		if err := m.SaveCheckpoint(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CompactThrough(2); err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, collect(t, m), 3, 4)
	chain, err := m.RestoreChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || !chain[0].Full || string(chain[0].Data) != "base" || chain[0].Seq != 2 {
		t.Fatalf("chain after compaction: %+v, want base+delta", chain)
	}
	if err := m.TruncateLog(); err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, collect(t, m))
}
