package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DefaultSegmentBytes is the sealed-segment size threshold used when
// the caller does not configure one.
const DefaultSegmentBytes = 1 << 20

// Segmented is the storage engine's main backend: the action log is
// split into fixed-size segments and checkpoints form delta chains.
//
// Directory layout:
//
//	seg-%08d.open           the single active (appendable) segment
//	seg-%08d-%020d.seg      sealed segments; the second number is the
//	                        highest sequence number the segment holds
//	ckpt-%08d.full          full (chain-starting) checkpoint pieces
//	ckpt-%08d.delta         delta checkpoint pieces
//	*.tmp                   interrupted atomic writes, removed on open
//
// When the active segment reaches the size threshold it is sealed:
// fsynced, renamed to its sealed name (recording the covered sequence
// number in the filename), and a fresh active segment is created — each
// rename made durable with a directory fsync. Compaction then runs in
// the background: a checkpoint at sequence S makes every sealed segment
// with lastSeq <= S and every checkpoint piece older than the current
// chain dead weight, and dropping them is a handful of unlinks — no
// rewrite pass over surviving data, ever.
//
// Crash-interruption anywhere is recoverable: a torn tail can only
// exist in the active segment (seals fsync first) and is truncated on
// replay; a partially applied compaction just leaves some dead files,
// which replay's sequence filtering and restore's newest-full-base rule
// render inert until the next compaction removes them.
type Segmented struct {
	mu       sync.Mutex
	dir      string
	segBytes int64

	active      *os.File
	w           *bufio.Writer
	activeIdx   int
	activeBytes int64
	lastSeq     uint64 // highest sequence number written to the log

	sealed []sealedSeg
	chain  []ckptFile
	goal   uint64 // compact-through target

	compactMu  sync.Mutex // serializes background compaction passes
	compactWG  sync.WaitGroup
	compactErr error
}

type sealedSeg struct {
	idx     int
	lastSeq uint64
	path    string
}

type ckptFile struct {
	idx  int
	full bool
	path string
}

// OpenSegmented opens (or initializes) a segmented store in dir.
// segBytes is the seal threshold; <= 0 selects DefaultSegmentBytes.
func OpenSegmented(dir string, segBytes int64) (*Segmented, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", dir, err)
	}
	s := &Segmented{dir: dir, segBytes: segBytes}

	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: read dir %s: %w", dir, err)
	}
	openIdx := -1
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Interrupted atomic write; the rename never happened, so the
			// content was never live.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("storage: remove stale tmp: %w", err)
			}
		case strings.HasSuffix(name, ".open"):
			var idx int
			if _, err := fmt.Sscanf(name, "seg-%08d.open", &idx); err != nil {
				return nil, fmt.Errorf("storage: unrecognized file %s", name)
			}
			if openIdx >= 0 {
				return nil, fmt.Errorf("storage: multiple open segments (seg-%08d and seg-%08d)", openIdx, idx)
			}
			openIdx = idx
		case strings.HasSuffix(name, ".seg"):
			var idx int
			var last uint64
			if _, err := fmt.Sscanf(name, "seg-%08d-%020d.seg", &idx, &last); err != nil {
				return nil, fmt.Errorf("storage: unrecognized file %s", name)
			}
			s.sealed = append(s.sealed, sealedSeg{idx: idx, lastSeq: last, path: filepath.Join(dir, name)})
		case strings.HasSuffix(name, ".full") || strings.HasSuffix(name, ".delta"):
			var idx int
			full := strings.HasSuffix(name, ".full")
			pat := "ckpt-%08d.delta"
			if full {
				pat = "ckpt-%08d.full"
			}
			if _, err := fmt.Sscanf(name, pat, &idx); err != nil {
				return nil, fmt.Errorf("storage: unrecognized file %s", name)
			}
			s.chain = append(s.chain, ckptFile{idx: idx, full: full, path: filepath.Join(dir, name)})
		default:
			return nil, fmt.Errorf("storage: unrecognized file %s", name)
		}
	}
	sort.Slice(s.sealed, func(i, j int) bool { return s.sealed[i].idx < s.sealed[j].idx })
	sort.Slice(s.chain, func(i, j int) bool { return s.chain[i].idx < s.chain[j].idx })
	for _, seg := range s.sealed {
		if openIdx >= 0 && seg.idx >= openIdx {
			return nil, fmt.Errorf("storage: sealed segment %d at or past open segment %d", seg.idx, openIdx)
		}
		if seg.lastSeq > s.lastSeq {
			s.lastSeq = seg.lastSeq
		}
	}
	if openIdx < 0 {
		// Crash between sealing the old active segment and creating the
		// next one; or a fresh directory.
		openIdx = 0
		if n := len(s.sealed); n > 0 {
			openIdx = s.sealed[n-1].idx + 1
		}
		if err := s.createActiveLocked(openIdx); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(s.activePath(openIdx), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("storage: open segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: stat segment: %w", err)
		}
		s.active = f
		s.w = bufio.NewWriter(f)
		s.activeIdx = openIdx
		s.activeBytes = st.Size()
	}
	return s, nil
}

func (s *Segmented) activePath(idx int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d.open", idx))
}

func (s *Segmented) sealedPath(idx int, lastSeq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d-%020d.seg", idx, lastSeq))
}

func (s *Segmented) ckptPath(idx int, full bool) string {
	ext := "delta"
	if full {
		ext = "full"
	}
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d.%s", idx, ext))
}

func (s *Segmented) createActiveLocked(idx int) error {
	f, err := os.OpenFile(s.activePath(idx), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create segment: %w", err)
	}
	if err := SyncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.active = f
	s.w = bufio.NewWriter(f)
	s.activeIdx = idx
	s.activeBytes = 0
	return nil
}

// RestoreChain returns the newest full checkpoint followed by every
// delta written after it, oldest first. Pieces older than the newest
// full base are inert leftovers awaiting compaction and are skipped; a
// missing piece after the base (a hole in the index sequence) is
// corruption and errors out.
func (s *Segmented) RestoreChain() ([]Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := -1
	for i := len(s.chain) - 1; i >= 0; i-- {
		if s.chain[i].full {
			start = i
			break
		}
	}
	if start < 0 {
		if len(s.chain) > 0 {
			// Deltas with no surviving base cannot restore.
			return nil, fmt.Errorf("storage: checkpoint chain has no full base (oldest piece ckpt-%08d)", s.chain[0].idx)
		}
		return nil, nil
	}
	var out []Checkpoint
	for i := start; i < len(s.chain); i++ {
		c := s.chain[i]
		if i > start && c.idx != s.chain[i-1].idx+1 {
			return nil, fmt.Errorf("storage: checkpoint chain broken: ckpt-%08d follows ckpt-%08d", c.idx, s.chain[i-1].idx)
		}
		data, err := os.ReadFile(c.path)
		if err != nil {
			return nil, fmt.Errorf("storage: read checkpoint: %w", err)
		}
		out = append(out, Checkpoint{Full: c.full, Data: data})
	}
	return out, nil
}

// Replay calls fn for every logged entry — sealed segments in index
// order, then the active segment — and positions the active segment for
// appending. A torn final line is tolerated (and truncated) only in the
// active segment; sealed segments were fsynced before their seal
// rename, so a torn line there is real corruption.
func (s *Segmented) Replay(fn func(Entry) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var seq uint64
	for _, seg := range s.sealed {
		f, err := os.Open(seg.path)
		if err != nil {
			return fmt.Errorf("storage: open segment: %w", err)
		}
		nextSeq, tornAt, err := replayFile(f, seq, fn)
		f.Close()
		if err != nil {
			return err
		}
		if tornAt >= 0 {
			return fmt.Errorf("storage: torn record in sealed segment %s", seg.path)
		}
		seq = nextSeq
	}
	nextSeq, tornAt, err := replayFile(s.active, seq, fn)
	if err != nil {
		return err
	}
	if tornAt >= 0 {
		if err := s.active.Truncate(tornAt); err != nil {
			return fmt.Errorf("storage: log truncate torn tail: %w", err)
		}
		s.activeBytes = tornAt
	}
	if _, err := s.active.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("storage: log seek: %w", err)
	}
	if nextSeq > s.lastSeq {
		s.lastSeq = nextSeq
	}
	return nil
}

// Append writes one entry, flushes it to the OS, and seals the active
// segment if it crossed the size threshold.
func (s *Segmented) Append(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bufferLocked(e); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("storage: log flush: %w", err)
	}
	return s.maybeSealLocked()
}

// Buffer stages one entry without flushing; see FileLog.Buffer.
func (s *Segmented) Buffer(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bufferLocked(e)
}

func (s *Segmented) bufferLocked(e Entry) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("storage: log marshal: %w", err)
	}
	if _, err := s.w.Write(buf); err != nil {
		return fmt.Errorf("storage: log write: %w", err)
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("storage: log write: %w", err)
	}
	s.activeBytes += int64(len(buf)) + 1
	if e.Seq > s.lastSeq {
		s.lastSeq = e.Seq
	}
	return nil
}

// Commit flushes buffered entries (optionally fsyncing) and seals the
// active segment if the batch pushed it past the size threshold — the
// whole batch lands in one segment, so the seal point never splits a
// group commit.
func (s *Segmented) Commit(sync bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("storage: log flush: %w", err)
	}
	if sync {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("storage: log sync: %w", err)
		}
	}
	return s.maybeSealLocked()
}

// Sync fsyncs the active segment.
func (s *Segmented) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: log sync: %w", err)
	}
	return nil
}

// maybeSealLocked seals the active segment once it crosses the size
// threshold: fsync, rename to the sealed name (which records the
// highest covered sequence number), directory fsync, then a fresh
// active segment. Requires the write buffer to be flushed.
func (s *Segmented) maybeSealLocked() error {
	if s.activeBytes < s.segBytes || s.activeBytes == 0 {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: log sync: %w", err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("storage: close segment: %w", err)
	}
	sp := s.sealedPath(s.activeIdx, s.lastSeq)
	if err := os.Rename(s.activePath(s.activeIdx), sp); err != nil {
		return fmt.Errorf("storage: seal segment: %w", err)
	}
	if err := SyncDir(s.dir); err != nil {
		return err
	}
	s.sealed = append(s.sealed, sealedSeg{idx: s.activeIdx, lastSeq: s.lastSeq, path: sp})
	return s.createActiveLocked(s.activeIdx + 1)
}

// SaveCheckpoint stores one checkpoint piece as the next file in the
// chain, atomically and durably.
func (s *Segmented) SaveCheckpoint(c Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := 0
	if n := len(s.chain); n > 0 {
		idx = s.chain[n-1].idx + 1
	}
	path := s.ckptPath(idx, c.Full)
	if err := writeFileAtomic(path, c.Data); err != nil {
		return err
	}
	s.chain = append(s.chain, ckptFile{idx: idx, full: c.Full, path: path})
	return nil
}

// CompactThrough records seq as the compaction goal and kicks off a
// background pass that unlinks every sealed segment fully covered by it
// (lastSeq <= goal) and every checkpoint piece older than the current
// chain's full base. Crash-interruption mid-pass just leaves some dead
// files for the next pass; recovery never reads them.
func (s *Segmented) CompactThrough(seq uint64) error {
	s.mu.Lock()
	if seq > s.goal {
		s.goal = seq
	}
	s.mu.Unlock()
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		if err := s.compactOnce(); err != nil {
			s.mu.Lock()
			if s.compactErr == nil {
				s.compactErr = err
			}
			s.mu.Unlock()
		}
	}()
	return nil
}

func (s *Segmented) compactOnce() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.Lock()
	goal := s.goal
	var deadSegs []sealedSeg
	var liveSegs []sealedSeg
	for _, seg := range s.sealed {
		if seg.lastSeq <= goal {
			deadSegs = append(deadSegs, seg)
		} else {
			liveSegs = append(liveSegs, seg)
		}
	}
	base := -1
	for i := len(s.chain) - 1; i >= 0; i-- {
		if s.chain[i].full {
			base = i
			break
		}
	}
	var deadCkpts []ckptFile
	if base > 0 {
		deadCkpts = append(deadCkpts, s.chain[:base]...)
		s.chain = append([]ckptFile(nil), s.chain[base:]...)
	}
	s.sealed = liveSegs
	s.mu.Unlock()

	if len(deadSegs) == 0 && len(deadCkpts) == 0 {
		return nil
	}
	for _, seg := range deadSegs {
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("storage: compact segment: %w", err)
		}
	}
	for _, c := range deadCkpts {
		if err := os.Remove(c.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("storage: compact checkpoint: %w", err)
		}
	}
	return SyncDir(s.dir)
}

// WaitCompaction blocks until all in-flight background compaction
// passes finish and returns the first error any of them hit.
func (s *Segmented) WaitCompaction() error {
	s.compactWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactErr
}

// TruncateLog drops every log entry: all sealed segments and the active
// segment's contents. Used on resync, where the log belongs to a
// replaced timeline whose sequence numbers may exceed the installed
// state's — sequence-based compaction must not be trusted to clear it.
func (s *Segmented) TruncateLog() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("storage: log flush: %w", err)
	}
	for _, seg := range s.sealed {
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("storage: drop segment: %w", err)
		}
	}
	s.sealed = nil
	if err := SyncDir(s.dir); err != nil {
		return err
	}
	if err := s.active.Truncate(0); err != nil {
		return fmt.Errorf("storage: log truncate: %w", err)
	}
	if _, err := s.active.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: log seek: %w", err)
	}
	s.activeBytes = 0
	return nil
}

// SupportsDelta reports true.
func (s *Segmented) SupportsDelta() bool { return true }

// LogBytes returns the total byte size of sealed segments plus the
// active segment.
func (s *Segmented) LogBytes() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return 0, err
	}
	total := s.activeBytes
	for _, seg := range s.sealed {
		st, err := os.Stat(seg.path)
		if err != nil {
			return 0, err
		}
		total += st.Size()
	}
	return total, nil
}

// CheckpointBytes returns the byte size of the live restore chain (the
// newest full base and everything after it).
func (s *Segmented) CheckpointBytes() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := -1
	for i := len(s.chain) - 1; i >= 0; i-- {
		if s.chain[i].full {
			start = i
			break
		}
	}
	if start < 0 {
		return 0, nil
	}
	var total int64
	for i := start; i < len(s.chain); i++ {
		st, err := os.Stat(s.chain[i].path)
		if err != nil {
			return 0, err
		}
		total += st.Size()
	}
	return total, nil
}

// Close waits out background compaction, then flushes, fsyncs and
// closes the active segment.
func (s *Segmented) Close() error {
	werr := s.WaitCompaction()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return werr
	}
	firstErr := werr
	if err := s.w.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := s.active.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := s.active.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	s.active = nil
	return firstErr
}

// Crash simulates a process crash: in-flight compaction is allowed to
// finish (schedules stay deterministic), then the active segment is
// closed without flushing, so staged-but-uncommitted entries die.
func (s *Segmented) Crash() {
	s.compactWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
}
