package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileLog is a persistent, append-only JSON-lines log of entries. It is
// the seed-era ActionLog moved behind the storage API: one entry per
// line, replayed front to back on recovery. Because the manager's
// operational state is a deterministic function of the action sequence,
// replaying the log reconstructs the state exactly — the recovery
// strategy of Sec 7.
type FileLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
}

// OpenFileLog opens or creates a log file.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open log: %w", err)
	}
	return &FileLog{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// replayFile scans one JSON-lines log file, calling fn per entry.
// Entries without an explicit sequence number (pre-snapshot logs) are
// numbered seq+1, seq+2, ... positionally; the running sequence is
// returned so multi-file (segmented) replay numbers continuously.
//
// A torn final line — the crash hit mid-append — is reported via a
// non-negative tornAt: the byte offset of the first torn byte. Callers
// that own an appendable tail MUST truncate there; welding the next
// append onto torn bytes turns a benign torn tail into a mid-file
// corrupt record that fails every later recovery. Corruption anywhere
// but the final line is an error.
func replayFile(f *os.File, seq uint64, fn func(Entry) error) (nextSeq uint64, tornAt int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return seq, -1, fmt.Errorf("storage: log seek: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var good int64 // byte offset just past the last well-formed line
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			good += 1
			continue
		}
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			if !sc.Scan() { // torn tail
				return seq, good, nil
			}
			return seq, -1, fmt.Errorf("storage: corrupt log record: %v", err)
		}
		good += int64(len(raw)) + 1
		if e.Seq == 0 {
			seq++
			e.Seq = seq
		} else {
			seq = e.Seq
		}
		if err := fn(e); err != nil {
			return seq, -1, err
		}
	}
	if err := sc.Err(); err != nil {
		return seq, -1, fmt.Errorf("storage: log replay: %w", err)
	}
	return seq, -1, nil
}

// Replay calls fn for every logged entry in order, then positions the
// log for appending. A torn final line (crash during append) is
// truncated away before the write position is restored, so a later
// append can never weld a fresh record onto torn bytes — which would
// turn the benign torn tail into a mid-file corrupt record that fails
// every subsequent recovery.
func (l *FileLog) Replay(fn func(Entry) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, tornAt, err := replayFile(l.f, 0, fn)
	if err != nil {
		return err
	}
	if tornAt >= 0 {
		if err := l.f.Truncate(tornAt); err != nil {
			return fmt.Errorf("storage: log truncate torn tail: %w", err)
		}
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("storage: log seek: %w", err)
	}
	return nil
}

// Append writes one entry and flushes it to the OS.
func (l *FileLog) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.bufferLocked(e); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("storage: log flush: %w", err)
	}
	return nil
}

// Buffer stages one entry in the write buffer without flushing it. The
// group-commit path buffers every action of a batch, then settles them
// all with one Commit — one flush (and at most one fsync) per batch
// instead of one per action.
func (l *FileLog) Buffer(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bufferLocked(e)
}

func (l *FileLog) bufferLocked(e Entry) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("storage: log marshal: %w", err)
	}
	if _, err := l.w.Write(buf); err != nil {
		return fmt.Errorf("storage: log write: %w", err)
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("storage: log write: %w", err)
	}
	return nil
}

// Commit flushes every buffered entry to the OS and, when sync is set,
// fsyncs the file — the single durability point of one group commit.
func (l *FileLog) Commit(sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("storage: log flush: %w", err)
	}
	if sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("storage: log sync: %w", err)
		}
	}
	return nil
}

// Sync forces the appended entries to stable storage (fsync).
func (l *FileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("storage: log sync: %w", err)
	}
	return nil
}

// Truncate discards the log's contents. Called right after a covering
// checkpoint: everything the log held is folded into it, so the entries
// are dead weight. Recovery stays correct even if a crash prevents the
// truncation, because entries carry sequence numbers the checkpoint
// cutoff filters on.
func (l *FileLog) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("storage: log flush: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: log truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: log seek: %w", err)
	}
	return nil
}

// Size returns the current byte size of the log file (diagnostics).
func (l *FileLog) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return 0, err
	}
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close flushes and closes the log file.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var firstErr error
	if err := l.w.Flush(); err != nil {
		firstErr = err
	}
	if err := l.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := l.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	l.f = nil
	return firstErr
}

// Crash simulates a process crash: the file handle is closed without
// flushing the write buffer, so staged-but-uncommitted entries die
// exactly as they would when the process is killed.
func (l *FileLog) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
}
