package storage

import (
	"fmt"
	"os"
	"sync"
)

// Monolith is the seed-era storage layout: one JSON-lines action log
// file plus one full-state snapshot file, either of which may be absent
// (log-only durability, or snapshot-only). It stays byte-compatible
// with logs and snapshots written before the storage engine existed,
// and serves as the convergence comparator for the segmented backend's
// torture tests. Delta checkpoints are not supported: every checkpoint
// fully replaces the snapshot file.
type Monolith struct {
	mu       sync.Mutex
	log      *FileLog // nil when no log path was configured
	snapPath string   // "" when no snapshot path was configured
}

// OpenMonolith opens the monolithic backend. Either path may be empty.
func OpenMonolith(logPath, snapPath string) (*Monolith, error) {
	m := &Monolith{snapPath: snapPath}
	if logPath != "" {
		l, err := OpenFileLog(logPath)
		if err != nil {
			return nil, err
		}
		m.log = l
	}
	return m, nil
}

// RestoreChain returns the snapshot file as a single full piece, or nil
// when no snapshot exists. The covered sequence number is embedded in
// the payload, not known to the backend; Seq is left zero and the
// manager derives the cutoff from the decoded snapshot.
func (m *Monolith) RestoreChain() ([]Checkpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snapPath == "" {
		return nil, nil
	}
	data, err := os.ReadFile(m.snapPath)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: read snapshot: %w", err)
	}
	return []Checkpoint{{Full: true, Data: data}}, nil
}

// Replay replays the action log; see FileLog.Replay.
func (m *Monolith) Replay(fn func(Entry) error) error {
	if m.log == nil {
		return nil
	}
	return m.log.Replay(fn)
}

// Append logs one entry; a no-op without a log path.
func (m *Monolith) Append(e Entry) error {
	if m.log == nil {
		return nil
	}
	return m.log.Append(e)
}

// Buffer stages one entry; a no-op without a log path.
func (m *Monolith) Buffer(e Entry) error {
	if m.log == nil {
		return nil
	}
	return m.log.Buffer(e)
}

// Commit settles buffered entries; a no-op without a log path.
func (m *Monolith) Commit(sync bool) error {
	if m.log == nil {
		return nil
	}
	return m.log.Commit(sync)
}

// Sync fsyncs the log; a no-op without a log path.
func (m *Monolith) Sync() error {
	if m.log == nil {
		return nil
	}
	return m.log.Sync()
}

// SaveCheckpoint atomically replaces the snapshot file. Delta pieces
// are rejected: the monolithic layout has exactly one snapshot slot.
func (m *Monolith) SaveCheckpoint(c Checkpoint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !c.Full {
		return ErrDeltaUnsupported
	}
	if m.snapPath == "" {
		return fmt.Errorf("storage: no snapshot path configured")
	}
	return writeFileAtomic(m.snapPath, c.Data)
}

// CompactThrough truncates the whole log. The monolithic snapshot
// always covers every confirmed action at the moment it is written and
// the manager compacts under its own lock immediately after the save,
// so whole-log truncation and seq-bounded dropping coincide.
func (m *Monolith) CompactThrough(seq uint64) error {
	return m.TruncateLog()
}

// TruncateLog drops every log entry.
func (m *Monolith) TruncateLog() error {
	if m.log == nil {
		return nil
	}
	return m.log.Truncate()
}

// SupportsDelta reports false: one snapshot slot, no chains.
func (m *Monolith) SupportsDelta() bool { return false }

// LogBytes returns the log file size (0 without a log path).
func (m *Monolith) LogBytes() (int64, error) {
	if m.log == nil {
		return 0, nil
	}
	return m.log.Size()
}

// CheckpointBytes returns the snapshot file size (0 when absent).
func (m *Monolith) CheckpointBytes() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snapPath == "" {
		return 0, nil
	}
	st, err := os.Stat(m.snapPath)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close flushes and closes the log.
func (m *Monolith) Close() error {
	if m.log == nil {
		return nil
	}
	return m.log.Close()
}

// Crash simulates a process crash; see FileLog.Crash.
func (m *Monolith) Crash() {
	if m.log != nil {
		m.log.Crash()
	}
}
