// Package storage is the manager's durable storage engine: an
// append-only action log plus checkpoint storage behind one Backend
// interface, with three implementations.
//
//   - Monolith is the seed-era layout — one JSON-lines log file plus one
//     full-state snapshot file — kept as the compatibility baseline (and
//     as the comparator the torture tests converge segmented recovery
//     against).
//   - Segmented splits the log into fixed-size sealed segments with
//     background compaction (a checkpoint makes every fully covered
//     segment dead weight; dropping a segment is one unlink, so the log
//     never needs a rewrite pass), and stores checkpoints as chains: a
//     periodic full base plus delta pieces that carry only state nodes
//     unseen since the previous checkpoint (internal/state format v3).
//   - Memory is the crash-simulatable in-memory twin for internal/sim,
//     so simulated chaos schedules exercise the same storage code paths
//     (including delta chains and recovery) without a filesystem.
//
// Crash-safety discipline shared by the file backends: every checkpoint
// and every segment seal is written (or renamed) atomically and made
// durable with an fsync of the file AND of its parent directory — a
// rename whose directory entry is not synced can be lost wholesale on a
// machine crash, silently reverting to the previous checkpoint. Stale
// temp files from interrupted writes are ignored and removed on open.
// Interrupted compaction (some covered files deleted, some not) is
// harmless by construction: log replay filters entries a checkpoint
// already covers by sequence number, and checkpoint restore starts at
// the newest full base, so leftover older pieces are inert.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Entry is one logged action: the global confirm sequence number plus
// the concrete action's name and argument values. The JSON field names
// match the seed-era log format, so pre-existing logs keep replaying.
type Entry struct {
	Name string   `json:"a"`
	Args []string `json:"v,omitempty"`
	Seq  uint64   `json:"s,omitempty"`
}

// Checkpoint is one checkpoint piece. Full pieces start a chain (they
// restore standalone); delta pieces extend the chain of the most recent
// full piece and carry only what changed since the previous piece.
type Checkpoint struct {
	// Seq is the confirm sequence number the checkpoint covers: log
	// entries with Seq <= this are folded into it.
	Seq uint64
	// Full marks a chain-starting full checkpoint.
	Full bool
	// Data is the serialized checkpoint payload (opaque to the backend).
	Data []byte
}

// ErrDeltaUnsupported is returned by SaveCheckpoint for a delta piece on
// a backend that can only store standalone snapshots.
var ErrDeltaUnsupported = errors.New("storage: backend does not support delta checkpoints")

// Backend is a durable storage engine for one manager. Implementations
// are safe for concurrent use. The expected lifecycle is RestoreChain →
// Replay → appends/checkpoints → Close.
type Backend interface {
	// RestoreChain returns the checkpoint restore chain, oldest first:
	// the most recent full checkpoint followed by every delta written
	// after it. Nil means no checkpoint exists.
	RestoreChain() ([]Checkpoint, error)
	// Replay calls fn for every logged entry in sequence order, then
	// positions the log for appending. A torn final line (crash during
	// append) is truncated away, so later appends can never weld onto
	// torn bytes; any other corruption is an error.
	Replay(fn func(Entry) error) error
	// Append stages one entry and flushes it to the OS (durable against
	// process crashes; call Sync for machine-crash durability).
	Append(e Entry) error
	// Buffer stages one entry without flushing. The group-commit path
	// buffers a whole batch, then settles it with one Commit.
	Buffer(e Entry) error
	// Commit flushes all buffered entries and, when sync is set, fsyncs —
	// the single durability point of one group commit.
	Commit(sync bool) error
	// Sync forces appended entries to stable storage (fsync).
	Sync() error
	// SaveCheckpoint stores one checkpoint piece durably (atomic write,
	// file + directory fsync).
	SaveCheckpoint(c Checkpoint) error
	// CompactThrough drops log entries a checkpoint at seq covers and
	// garbage-collects checkpoint pieces older than the current chain.
	// Implementations may compact in the background; crash-interruption
	// at any point must leave recovery correct.
	CompactThrough(seq uint64) error
	// TruncateLog drops every log entry unconditionally — the resync
	// path, where the old entries belong to a replaced timeline whose
	// sequence numbers may exceed the installed state's.
	TruncateLog() error
	// SupportsDelta reports whether SaveCheckpoint accepts delta pieces.
	SupportsDelta() bool
	// LogBytes returns the current byte size of the log (diagnostics).
	LogBytes() (int64, error)
	// CheckpointBytes returns the byte size of the live restore chain.
	CheckpointBytes() (int64, error)
	// Close flushes and closes the backend.
	Close() error
}

// Crasher is implemented by backends that can simulate a process crash
// for tests and the simulator: the backend stops dead without flushing
// buffers, so staged-but-uncommitted entries die exactly as they would
// when the process is killed.
type Crasher interface {
	Crash()
}

// SyncDir fsyncs a directory, making renames and unlinks inside it
// durable. A rename is two updates — the file and its directory entry —
// and only the first is covered by the file's own fsync.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: sync dir %s: %w", dir, err)
	}
	return nil
}

// writeFileAtomic writes data to path via a temp file in the same
// directory: write, fsync, rename, fsync the directory. A crash at any
// point leaves either the old file or the new one, never a torn mix,
// and never a rename that silently evaporates.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("storage: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: rename %s: %w", tmp, err)
	}
	return SyncDir(filepath.Dir(path))
}
