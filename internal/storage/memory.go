package storage

import (
	"sync"
)

// Memory is the in-memory twin of the file backends, built for
// internal/sim: it supports delta chains, sequence-based compaction and
// simulated crashes, so deterministic chaos schedules exercise the same
// manager storage code paths without a filesystem. It models the
// process/machine boundary the way the file backends behave with
// SyncWrites off: Append and Commit move entries to the durable set
// (they survive a simulated crash, like data flushed to the OS page
// cache survives a process kill), while Buffer-staged entries die on
// Crash. The value deliberately survives Close and Crash so a restarted
// simulated node reopens the same "disk".
type Memory struct {
	mu      sync.Mutex
	durable []Entry
	buf     []Entry
	chain   []Checkpoint
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory { return &Memory{} }

// RestoreChain returns the live checkpoint chain (newest full piece
// onward), oldest first.
func (m *Memory) RestoreChain() ([]Checkpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := -1
	for i := len(m.chain) - 1; i >= 0; i-- {
		if m.chain[i].Full {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, nil
	}
	out := make([]Checkpoint, len(m.chain)-start)
	copy(out, m.chain[start:])
	return out, nil
}

// Replay calls fn for every durable entry in order.
func (m *Memory) Replay(fn func(Entry) error) error {
	m.mu.Lock()
	entries := append([]Entry(nil), m.durable...)
	m.mu.Unlock()
	var seq uint64
	for _, e := range entries {
		if e.Seq == 0 {
			seq++
			e.Seq = seq
		} else {
			seq = e.Seq
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// Append adds one entry to the durable set.
func (m *Memory) Append(e Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.durable = append(m.durable, e)
	return nil
}

// Buffer stages one entry; it is lost on Crash until Commit runs.
func (m *Memory) Buffer(e Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = append(m.buf, e)
	return nil
}

// Commit moves every buffered entry to the durable set.
func (m *Memory) Commit(sync bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.durable = append(m.durable, m.buf...)
	m.buf = nil
	return nil
}

// Sync is a no-op: durable means durable here.
func (m *Memory) Sync() error { return nil }

// SaveCheckpoint appends one piece to the chain.
func (m *Memory) SaveCheckpoint(c Checkpoint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c.Data = append([]byte(nil), c.Data...)
	m.chain = append(m.chain, c)
	return nil
}

// CompactThrough drops durable entries with Seq <= seq and checkpoint
// pieces older than the newest full base.
func (m *Memory) CompactThrough(seq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	live := m.durable[:0]
	for _, e := range m.durable {
		if e.Seq > seq {
			live = append(live, e)
		}
	}
	m.durable = live
	for i := len(m.chain) - 1; i >= 0; i-- {
		if m.chain[i].Full {
			m.chain = append([]Checkpoint(nil), m.chain[i:]...)
			break
		}
	}
	return nil
}

// TruncateLog drops every entry, durable and buffered.
func (m *Memory) TruncateLog() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.durable = nil
	m.buf = nil
	return nil
}

// SupportsDelta reports true.
func (m *Memory) SupportsDelta() bool { return true }

// LogBytes approximates the log size as the durable entry count (the
// unit only matters for relative diagnostics).
func (m *Memory) LogBytes() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.durable)), nil
}

// CheckpointBytes returns the total payload size of the live chain.
func (m *Memory) CheckpointBytes() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, c := range m.chain {
		total += int64(len(c.Data))
	}
	return total, nil
}

// Close commits buffered entries (a clean shutdown flushes) and keeps
// the data: a restarted simulated node reopens the same "disk".
func (m *Memory) Close() error { return m.Commit(false) }

// Crash drops buffered entries, exactly as a process kill loses an
// unflushed write buffer. Durable entries and checkpoints survive.
func (m *Memory) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = nil
}
