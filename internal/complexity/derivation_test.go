package complexity

import (
	"strings"
	"testing"

	"repro/internal/paper"
	"repro/internal/parse"
)

func TestDeriveHarmless(t *testing.T) {
	d := Derive(parse.MustParse("(a - b | c)* & mult(2, a)"))
	if d.Class != Harmless {
		t.Errorf("got %v\n%s", d.Class, d)
	}
}

func TestDeriveBenignFigures(t *testing.T) {
	d := Derive(paper.Fig6CapacityRestriction())
	if d.Class != Benign {
		t.Errorf("Fig 6: got %v\n%s", d.Class, d)
	}
	// The coupling of a benign operand with a benign operand is benign.
	d2 := Derive(parse.MustParse("(all p: (x(p))*) @ (all q: (y(q))*)"))
	if d2.Class != Benign {
		t.Errorf("coupling: got %v\n%s", d2.Class, d2)
	}
	// Iteration over a benign body stays benign (Fig 6's inner shape).
	d3 := Derive(parse.MustParse("(all p: (x(p))*)*"))
	if d3.Class != Benign {
		t.Errorf("iter-of-benign: got %v\n%s", d3.Class, d3)
	}
}

func TestDeriveUnknownCases(t *testing.T) {
	cases := map[string]string{
		"(a - b?)#":          ruleParIter,
		"all p: (a - x(p))?": ruleNonUniform,
		"x($q)":              ruleOpen,
		"((a)# - b)*":        "body is potentially malignant",
	}
	for src, wantRule := range cases {
		d := Derive(parse.MustParse(src))
		if d.Class != Unknown {
			t.Errorf("%s: got %v", src, d.Class)
		}
		if d.Rule != wantRule {
			t.Errorf("%s: rule %q, want %q", src, d.Rule, wantRule)
		}
	}
}

func TestDeriveNeverStrongerThanClassify(t *testing.T) {
	// Derive must not claim a better class than the single-shot
	// classifier would (both conservative, Derive at least as precise).
	srcs := []string{
		"a - b",
		"all p: (x(p))*",
		"(a)#",
		"syncq x: mult(3, (any p: call(p,x))*)",
		"all p: (a - x(p))?",
	}
	for _, src := range srcs {
		e := parse.MustParse(src)
		dc := Derive(e).Class
		cc, _ := Classify(e)
		if dc < cc {
			// smaller Class value = stronger guarantee
			if cc == Unknown && dc == Benign {
				// Derive may justifiably be *more* precise than the
				// syntactic classifier on nested quantifiers; allow it.
				continue
			}
		}
		if dc == Harmless && cc != Harmless {
			t.Errorf("%s: derive=harmless but classify=%v", src, cc)
		}
	}
}

func TestDerivationRendering(t *testing.T) {
	d := Derive(paper.Fig7Coupled())
	out := d.String()
	for _, frag := range []string{"harmless", "benign", "—"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendering lacks %q:\n%s", frag, out)
		}
	}
	// Children precede the conclusion (step-by-step evaluation).
	if !strings.HasSuffix(strings.TrimSpace(out), d.Rule) &&
		!strings.Contains(out, d.Rule) {
		t.Errorf("root rule missing:\n%s", out)
	}
}

func TestDeriveFig3IsConservative(t *testing.T) {
	// Fig 3 contains parallel iterations (the prepare/inform "arbitrarily
	// parallel" branches) — the step-by-step rules stop at Unknown, and
	// the measured behaviour (TestFig3GrowthModest) supplies the missing
	// evidence, exactly the paper's division of labour.
	d := Derive(paper.Fig3PatientConstraint())
	if d.Class != Unknown {
		t.Errorf("got %v", d.Class)
	}
}
