// Package complexity implements the expression classification and
// state-growth analyses of Sec 6 of the paper. The paper's headline
// results, which the classifier reproduces syntactically:
//
//   - quasi-regular expressions (no parallel iteration, no quantifiers)
//     are "harmless": the cost of a state transition is bounded by a
//     constant independent of the number of actions processed;
//   - completely and uniformly quantified expressions (every quantifier
//     parameter occurs in every atom of its body, no free parameters) are
//     "benign": state sizes grow polynomially — in practice with degree
//     rarely above 1 or 2 — in the length of the processed word;
//   - malignant expressions exist (exponential state growth) but must be
//     constructed deliberately together with an adversarial word.
//
// The growth half of the package measures actual state sizes along a word
// and estimates the growth class empirically, which is how EXPERIMENTS.md
// tables E9–E11 are produced.
package complexity

import (
	"fmt"

	"repro/internal/expr"
)

// Class is the benignity classification of an interaction expression.
type Class int

const (
	// Harmless: quasi-regular; transition cost is O(1) in the word length.
	Harmless Class = iota
	// Benign: state size grows at most polynomially in the word length.
	Benign
	// Unknown: the syntactic criteria are inconclusive; the expression
	// may be malignant (exponential growth for adversarial words).
	Unknown
)

// String returns the class name as used in the paper.
func (c Class) String() string {
	switch c {
	case Harmless:
		return "harmless (quasi-regular)"
	case Benign:
		return "benign (polynomial)"
	case Unknown:
		return "potentially malignant"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classify applies the syntactic benignity criteria of Sec 6 to e and
// returns the class together with human-readable reasons.
func Classify(e *expr.Expr) (Class, []string) {
	var reasons []string
	if !e.Closed() {
		reasons = append(reasons, "expression has free parameters (not completely quantified)")
		return Unknown, reasons
	}
	if QuasiRegular(e) {
		reasons = append(reasons, "no parallel iteration and no quantifiers (quasi-regular)")
		return Harmless, reasons
	}
	ok := true
	if hasParIter(e) {
		reasons = append(reasons, "contains parallel iteration (#), growth not bounded by the quantifier criteria")
		ok = false
	}
	var bad []string
	if uniformlyQuantified(e, &bad) {
		reasons = append(reasons, "completely and uniformly quantified: every quantifier parameter occurs in every atom of its body")
	} else {
		for _, m := range bad {
			reasons = append(reasons, m)
		}
		ok = false
	}
	if ok {
		return Benign, reasons
	}
	return Unknown, reasons
}

// QuasiRegular reports whether e contains neither parallel iterations nor
// quantifiers (Sec 6: such expressions are harmless).
func QuasiRegular(e *expr.Expr) bool {
	quasi := true
	e.Walk(func(n *expr.Expr) bool {
		if n.Op == expr.OpParIter || n.Op.Quantifier() {
			quasi = false
			return false
		}
		return true
	})
	return quasi
}

func hasParIter(e *expr.Expr) bool {
	found := false
	e.Walk(func(n *expr.Expr) bool {
		if n.Op == expr.OpParIter {
			found = true
			return false
		}
		return true
	})
	return found
}

// uniformlyQuantified checks that for every quantifier "Q p: y" in e, the
// parameter p occurs in every atom of y. Uniform quantification keeps
// quantifier states deterministic per value: each action belongs to
// exactly one branch, so no alternative sets build up (the "normal case
// of quantified expressions in practice" per Sec 6).
func uniformlyQuantified(e *expr.Expr, bad *[]string) bool {
	ok := true
	e.Walk(func(n *expr.Expr) bool {
		if !n.Op.Quantifier() {
			return true
		}
		body := n.Kids[0]
		body.Walk(func(m *expr.Expr) bool {
			if m.Op == expr.OpAtom {
				if !atomUses(m.Atom, n.Param) {
					ok = false
					*bad = append(*bad, fmt.Sprintf(
						"atom %s in body of quantifier over %s does not mention the parameter (non-uniform)",
						m.Atom, n.Param))
				}
			}
			// A shadowing inner quantifier re-binds the name; occurrences
			// below it do not count for the outer parameter.
			return !(m.Op.Quantifier() && m.Param == n.Param)
		})
		return true
	})
	return ok
}

func atomUses(a expr.Action, p string) bool {
	for _, arg := range a.Args {
		if arg.Param && arg.Name == p {
			return true
		}
	}
	return false
}
