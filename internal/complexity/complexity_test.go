package complexity

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/parse"
)

func TestClassifyQuasiRegular(t *testing.T) {
	cases := []string{
		"a - b | c",
		"(a | b)* & c*",
		"a || b || c",
		"mult(3, a - b)",
		"(a - b)* @ (a - c)*",
	}
	for _, src := range cases {
		e := parse.MustParse(src)
		cl, _ := Classify(e)
		if cl != Harmless {
			t.Errorf("%s: got %v want harmless", src, cl)
		}
		if !QuasiRegular(e) {
			t.Errorf("%s: QuasiRegular should hold", src)
		}
	}
}

func TestClassifyBenign(t *testing.T) {
	cases := []string{
		"all p: (call(p) - perform(p))*",
		"any p: call(p) - perform(p)",
		"syncq x: (call(x) - perform(x))*",
		// Fig 6 skeleton: nested uniform quantifiers.
		"syncq x: mult(3, (any p: call(p,x) - perform(p,x))*)",
	}
	for _, src := range cases {
		e := parse.MustParse(src)
		cl, reasons := Classify(e)
		if cl != Benign {
			t.Errorf("%s: got %v (%v) want benign", src, cl, reasons)
		}
	}
}

func TestClassifyUnknown(t *testing.T) {
	cases := map[string]string{
		"(a - b)#":             "parallel iteration",
		"all p: a - call(p)":   "non-uniform (a lacks p)",
		"x($q) - a":            "free parameter",
		"all p: (call(p) - b)": "non-uniform",
	}
	for src := range cases {
		e := parse.MustParse(src)
		cl, reasons := Classify(e)
		if cl != Unknown {
			t.Errorf("%s: got %v (%v) want unknown", src, cl, reasons)
		}
		if len(reasons) == 0 {
			t.Errorf("%s: expected reasons", src)
		}
	}
}

func TestClassifyShadowedUniform(t *testing.T) {
	// The inner quantifier re-binds p; atoms below it need not (and here
	// do not) use the outer p — the outer quantifier is still uniform
	// over its own occurrences... but the walk must not credit inner
	// occurrences to the outer binder either.
	e := parse.MustParse("all p: (call(p) - (any p: perform(p)))*")
	// The atom perform(p) under the inner binder does not mention the
	// OUTER p, but since it is shadowed the outer check skips it.
	cl, reasons := Classify(e)
	if cl != Benign {
		t.Errorf("got %v (%v) want benign", cl, reasons)
	}
}

func TestMeasureGrowthConstantForQuasiRegular(t *testing.T) {
	e, gen := QuasiRegularExpr()
	samples, err := Measure(e, gen, 300)
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(samples)
	if an.Class != GrowthConstant {
		t.Errorf("quasi-regular growth: got %v (max size %d)", an.Class, an.MaxSz)
	}
}

func TestMeasureGrowthPolynomialForUniform(t *testing.T) {
	e, gen := UniformExpr()
	samples, err := Measure(e, gen, 200)
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(samples)
	if an.Class == GrowthExponential {
		t.Fatalf("uniformly quantified expression measured exponential (max %d)", an.MaxSz)
	}
	if an.Class == GrowthPolynomial && an.Degree > 2.5 {
		t.Errorf("degree too high for a benign expression: %.2f", an.Degree)
	}
}

func TestMeasureGrowthExponentialForMalignant(t *testing.T) {
	e, gen := MalignantExpr()
	samples, err := Measure(e, gen, 16)
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(samples)
	if an.Class != GrowthExponential {
		t.Errorf("malignant growth: got %v, sizes %v", an.Class, sizesOf(samples))
	}
	cl, _ := Classify(e)
	if cl != Unknown {
		t.Errorf("malignant expression should classify as potentially malignant, got %v", cl)
	}
}

func TestMeasureRejectsBadWord(t *testing.T) {
	e := parse.MustParse("a - b")
	gen := func(i int) expr.Action { return expr.ConcreteAct("b") }
	if _, err := Measure(e, gen, 2); err == nil {
		t.Error("expected rejection error")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	an := Analyze(nil)
	if an.MaxSz != 0 || an.MaxLen != 0 {
		t.Errorf("empty analysis: %+v", an)
	}
}

func sizesOf(ss []GrowthSample) []int {
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.Size
	}
	return out
}
