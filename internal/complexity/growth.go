package complexity

import (
	"fmt"
	"math"

	"repro/internal/expr"
	"repro/internal/state"
)

// GrowthSample is one point of a state-growth measurement: after Steps
// actions the engine's state had the given Size.
type GrowthSample struct {
	Steps int
	Size  int
}

// Measure feeds the word produced by gen(i) for i = 0..steps-1 into a
// fresh engine for e and samples the state size after every action. The
// generator must produce permissible actions; Measure stops early (and
// reports how far it got) if an action is rejected.
func Measure(e *expr.Expr, gen func(i int) expr.Action, steps int) ([]GrowthSample, error) {
	en, err := state.NewEngine(e)
	if err != nil {
		return nil, err
	}
	samples := make([]GrowthSample, 0, steps+1)
	samples = append(samples, GrowthSample{0, en.StateSize()})
	for i := 0; i < steps; i++ {
		a := gen(i)
		if err := en.Step(a); err != nil {
			return samples, fmt.Errorf("complexity: step %d (%s): %w", i, a, err)
		}
		samples = append(samples, GrowthSample{i + 1, en.StateSize()})
	}
	return samples, nil
}

// GrowthClass is the empirical growth behaviour of a measurement.
type GrowthClass int

const (
	// GrowthConstant: sizes stay within a constant band.
	GrowthConstant GrowthClass = iota
	// GrowthPolynomial: sizes fit size ≈ c·stepsᵈ for a moderate d.
	GrowthPolynomial
	// GrowthExponential: sizes at least double along a constant stride.
	GrowthExponential
)

// String names the growth class.
func (g GrowthClass) String() string {
	switch g {
	case GrowthConstant:
		return "constant"
	case GrowthPolynomial:
		return "polynomial"
	case GrowthExponential:
		return "exponential"
	}
	return fmt.Sprintf("GrowthClass(%d)", int(g))
}

// Analysis summarizes a growth measurement.
type Analysis struct {
	Class  GrowthClass
	Degree float64 // log-log slope estimate (polynomial degree); 0 for constant
	Ratio  float64 // average consecutive doubling ratio over the last half
	MaxLen int     // number of actions measured
	MaxSz  int     // largest observed state size
}

// Analyze estimates the growth class of a measurement. The thresholds are
// deliberately coarse: the experiments separate O(1), low-degree
// polynomial and exponential behaviour by orders of magnitude.
func Analyze(samples []GrowthSample) Analysis {
	an := Analysis{}
	if len(samples) == 0 {
		return an
	}
	an.MaxLen = samples[len(samples)-1].Steps
	first := samples[0].Size
	for _, s := range samples {
		if s.Size > an.MaxSz {
			an.MaxSz = s.Size
		}
	}
	// Constant: never grows beyond a small additive/multiplicative band.
	if an.MaxSz <= first+4 || float64(an.MaxSz) <= 2.0*float64(max(first, 1)) {
		an.Class = GrowthConstant
		return an
	}
	// Exponential heuristic: size at n vs size at n/2 over the tail.
	mid := samples[len(samples)/2]
	last := samples[len(samples)-1]
	if mid.Size > 0 && last.Size >= 8*mid.Size && last.Size >= 64 {
		an.Class = GrowthExponential
		an.Ratio = float64(last.Size) / float64(mid.Size)
		return an
	}
	// Polynomial: least-squares slope of log(size) against log(steps),
	// over the second half of the samples (the asymptotic regime).
	var sx, sy, sxx, sxy float64
	n := 0
	for _, s := range samples[len(samples)/2:] {
		if s.Steps == 0 || s.Size == 0 {
			continue
		}
		x, y := math.Log(float64(s.Steps)), math.Log(float64(s.Size))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n >= 2 && n > 0 {
		den := float64(n)*sxx - sx*sx
		if den != 0 {
			an.Degree = (float64(n)*sxy - sx*sy) / den
		}
	}
	an.Class = GrowthPolynomial
	return an
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MalignantExpr constructs the package's reference malignant expression
// together with an adversarial word generator (Sec 6: such expressions
// "have to be selectively constructed" along with "a suitable word for
// which they actually behave malignant"). The expression
//
//	((a - b?)# - c)#
//
// under the word a a a ... is maximally ambiguous in two dimensions at
// once: every a may extend any existing inner iteration of any outer
// instance or start a new one at either level, and because neither b nor
// c ever arrives, no alternative can be pruned. The number of reachable
// configurations — distributions of n indistinguishable actions over a
// two-level forest of instances — grows exponentially (measured ≈ 1.4ⁿ).
func MalignantExpr() (*expr.Expr, func(i int) expr.Action) {
	a := expr.AtomNamed("a")
	b := expr.AtomNamed("b")
	c := expr.AtomNamed("c")
	e := expr.ParIter(expr.Seq(expr.ParIter(expr.Seq(a, expr.Option(b))), c))
	gen := func(i int) expr.Action { return expr.ConcreteAct("a") }
	return e, gen
}

// QuasiRegularExpr returns a representative harmless expression (iterated
// choice with parallel composition but no # or quantifiers) and a word
// generator driving it forever.
func QuasiRegularExpr() (*expr.Expr, func(i int) expr.Action) {
	a := expr.AtomNamed("a")
	b := expr.AtomNamed("b")
	e := expr.SeqIter(expr.Or(expr.Seq(a, b), b))
	gen := func(i int) expr.Action {
		if i%3 == 0 {
			return expr.ConcreteAct("b")
		}
		if i%3 == 1 {
			return expr.ConcreteAct("a")
		}
		return expr.ConcreteAct("b")
	}
	return e, gen
}

// UniformExpr returns a representative completely and uniformly
// quantified expression — the skeleton of the paper's Fig 3 constraint —
// and a word generator that keeps opening fresh, never-completed patient
// branches. This is the growth-relevant workload: the state carries one
// branch per *concurrently active* value. (Branches of completed rounds
// are reclaimed by the ρ optimization and cost nothing; see
// ClosedUniformGen.)
func UniformExpr() (*expr.Expr, func(i int) expr.Action) {
	call := expr.AtomNamed("call", expr.Prm("p"))
	perform := expr.AtomNamed("perform", expr.Prm("p"))
	e := expr.AllQ("p", expr.SeqIter(expr.Seq(call, perform)))
	gen := func(i int) expr.Action {
		return expr.ConcreteAct("call", fmt.Sprintf("pat%d", i))
	}
	return e, gen
}

// ClosedUniformGen generates the complementary workload for UniformExpr:
// every opened branch is immediately completed, so ρ releases it and the
// state stays constant no matter how long the word grows.
func ClosedUniformGen() func(i int) expr.Action {
	return func(i int) expr.Action {
		v := fmt.Sprintf("pat%d", i/2)
		if i%2 == 0 {
			return expr.ConcreteAct("call", v)
		}
		return expr.ConcreteAct("perform", v)
	}
}
