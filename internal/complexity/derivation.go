package complexity

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// Derivation is a step-by-step benignity proof sketch for an expression,
// the "these propositions can be used in combination to evaluate step by
// step that a given expression is benign" methodology of Sec 6. Each
// node records the class established for one subexpression and the rule
// that established it.
type Derivation struct {
	Expr  *expr.Expr
	Class Class
	Rule  string
	Kids  []*Derivation
}

// Derivation rules, in the spirit of the propositions of Sec 6. They are
// deliberately conservative: every rule is sound for the state model of
// this implementation (constant-size states compose to constant-size
// states; value-indexed quantifier branches over bounded bodies grow at
// most linearly per touched value), and anything not covered degrades to
// "potentially malignant" rather than guessing.
const (
	ruleAtom       = "atoms and ε have constant states"
	ruleQuasiComb  = "composition of harmless operands without # or quantifiers stays harmless"
	ruleUniformQ   = "uniform quantifier over a harmless body: one bounded branch per touched value (benign)"
	ruleUniformQB  = "uniform quantifier over a benign body: per-value branches stay polynomial (benign)"
	ruleBenignComb = "bounded composition of benign operands stays benign (state sizes multiply/add polynomially)"
	ruleNonUniform = "quantifier parameter missing from some atom of the body: alternative sets can build up"
	ruleParIter    = "parallel iteration: instance multisets can grow without bound"
	ruleOpen       = "free parameters: not completely quantified"
	ruleSeqIterBen = "sequential iteration of a benign body: live iteration instances are bounded by the body's value-indexed states (benign)"
)

// Derive builds the derivation tree for e. The root's class equals the
// class the step-by-step rules can establish; Classify is the coarser
// single-shot judgment (they agree on Harmless, and Derive never claims
// more than Classify would).
func Derive(e *expr.Expr) *Derivation {
	if !e.Closed() {
		return &Derivation{Expr: e, Class: Unknown, Rule: ruleOpen}
	}
	return derive(e)
}

func derive(e *expr.Expr) *Derivation {
	d := &Derivation{Expr: e}
	for _, k := range e.Kids {
		d.Kids = append(d.Kids, derive(k))
	}
	worst := Harmless
	for _, k := range d.Kids {
		if k.Class > worst {
			worst = k.Class
		}
	}
	switch e.Op {
	case expr.OpAtom, expr.OpEmpty:
		d.Class, d.Rule = Harmless, ruleAtom
	case expr.OpParIter:
		d.Class, d.Rule = Unknown, ruleParIter
	case expr.OpSeqIter:
		switch worst {
		case Harmless:
			d.Class, d.Rule = Harmless, ruleQuasiComb
		case Benign:
			// Iteration instances are states of the body; with benign
			// (value-indexed, polynomially sized) bodies the deduplicated
			// live-instance set stays polynomial too — completed rounds
			// are reclaimed by ρ. Validated empirically in E10/Fig 6.
			d.Class, d.Rule = Benign, ruleSeqIterBen
		default:
			d.Class, d.Rule = Unknown, "body is potentially malignant"
		}
	case expr.OpOption, expr.OpSeq, expr.OpPar, expr.OpOr, expr.OpAnd,
		expr.OpSync, expr.OpMult:
		switch worst {
		case Harmless:
			d.Class, d.Rule = Harmless, ruleQuasiComb
		case Benign:
			d.Class, d.Rule = Benign, ruleBenignComb
		default:
			d.Class, d.Rule = Unknown, "an operand is potentially malignant"
		}
	case expr.OpAnyQ, expr.OpAllQ, expr.OpSyncQ, expr.OpConQ:
		var bad []string
		uniform := uniformlyQuantified(e, &bad)
		switch {
		case !uniform:
			d.Class, d.Rule = Unknown, ruleNonUniform
		case worst == Harmless:
			d.Class, d.Rule = Benign, ruleUniformQ
		case worst == Benign:
			// A uniform quantifier over an already-benign body keeps the
			// per-value branches polynomial: still benign.
			d.Class, d.Rule = Benign, ruleUniformQB
		default:
			d.Class, d.Rule = Unknown, "body is potentially malignant"
		}
	default:
		d.Class, d.Rule = Unknown, fmt.Sprintf("unknown operator %v", e.Op)
	}
	return d
}

// String renders the derivation as an indented proof sketch.
func (d *Derivation) String() string {
	var b strings.Builder
	d.render(&b, 0)
	return b.String()
}

func (d *Derivation) render(b *strings.Builder, depth int) {
	for _, k := range d.Kids {
		k.render(b, depth+1)
	}
	fmt.Fprintf(b, "%s%v: `%s` — %s\n",
		strings.Repeat("  ", depth), d.Class, truncate(d.Expr.String(), 60), d.Rule)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
