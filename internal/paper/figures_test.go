package paper

import (
	"testing"

	"repro/internal/complexity"
	"repro/internal/expr"
	"repro/internal/state"
)

// step asserts that the action is permitted and applies it.
func step(t *testing.T, en *state.Engine, a expr.Action) {
	t.Helper()
	if err := en.Step(a); err != nil {
		t.Fatalf("action %s should be permitted: %v", a, err)
	}
}

// deny asserts that the action is currently rejected.
func deny(t *testing.T, en *state.Engine, a expr.Action) {
	t.Helper()
	if en.Try(a) {
		t.Fatalf("action %s should be rejected", a)
	}
}

// TestFig3IntroScenario reproduces the motivating scenario of Sec 1
// (E3): once a patient is called to one examination, the call to the
// second examination disappears (is rejected) until the first perform
// completes, after which it becomes permissible again.
func TestFig3IntroScenario(t *testing.T) {
	en := state.MustEngine(Fig3PatientConstraint())
	p := Patient(1)

	// Preparation/information for both examinations may happen freely.
	step(t, en, PrepareAct(p, ExamSono))
	step(t, en, InformAct(p, ExamEndo))
	step(t, en, PrepareAct(p, ExamEndo))

	// Both calls are currently permissible.
	if !en.Try(CallAct(p, ExamSono)) || !en.Try(CallAct(p, ExamEndo)) {
		t.Fatal("both calls should be permissible before any examination starts")
	}

	// The patient is called to the ultrasonography...
	step(t, en, CallAct(p, ExamSono))
	// ...so the endoscopy call must temporarily disappear,
	deny(t, en, CallAct(p, ExamEndo))
	// and a second sono call is impossible too.
	deny(t, en, CallAct(p, ExamSono))

	// Only after the examination completes the other call reappears.
	step(t, en, PerformAct(p, ExamSono))
	if !en.Try(CallAct(p, ExamEndo)) {
		t.Fatal("endoscopy call should reappear after the sono perform")
	}
	step(t, en, CallAct(p, ExamEndo))
	step(t, en, PerformAct(p, ExamEndo))
	if !en.Final() {
		t.Error("both completed examinations should leave a complete word")
	}
}

// TestFig3PatientsIndependent: the "for all p" parallel quantifier keeps
// different patients fully independent (E3).
func TestFig3PatientsIndependent(t *testing.T) {
	en := state.MustEngine(Fig3PatientConstraint())
	p1, p2 := Patient(1), Patient(2)
	step(t, en, CallAct(p1, ExamSono))
	// A different patient is unaffected by p1's running examination.
	step(t, en, CallAct(p2, ExamEndo))
	step(t, en, PerformAct(p2, ExamEndo))
	deny(t, en, CallAct(p1, ExamEndo)) // p1 still busy
	step(t, en, PerformAct(p1, ExamSono))
}

// TestFig3MismatchedPerform: perform must match the called examination.
func TestFig3MismatchedPerform(t *testing.T) {
	en := state.MustEngine(Fig3PatientConstraint())
	p := Patient(1)
	step(t, en, CallAct(p, ExamSono))
	deny(t, en, PerformAct(p, ExamEndo))
	deny(t, en, PrepareAct(p, ExamEndo)) // mutex: no prepare during exam
	step(t, en, PerformAct(p, ExamSono))
}

// TestFig4Branchings demonstrates the two basic branching operators
// (E4): "either or" permits one branch, "as well as" requires both.
func TestFig4Branchings(t *testing.T) {
	y := expr.AtomNamed("y")
	z := expr.AtomNamed("z")
	actY, actZ := expr.ConcreteAct("y"), expr.ConcreteAct("z")

	either := state.MustEngine(expr.Or(y, z))
	step(t, either, actY)
	deny(t, either, actZ) // the choice is made
	if !either.Final() {
		t.Error("either-or: one branch completes the graph")
	}

	both := state.MustEngine(expr.Par(y, z))
	step(t, both, actY)
	if both.Final() {
		t.Error("as-well-as: one branch is not enough")
	}
	step(t, both, actZ)
	if !both.Final() {
		t.Error("as-well-as: both branches complete the graph")
	}
}

// TestFig5MutexOperator: the user-defined flash operator is a repetition
// of an either-or branching — branches exclude each other per round but
// the rounds repeat (E5).
func TestFig5MutexOperator(t *testing.T) {
	xa := expr.AtomNamed("xa")
	yb := expr.Seq(expr.AtomNamed("y1"), expr.AtomNamed("y2"))
	en := state.MustEngine(Fig5Mutex(xa, yb))

	step(t, en, expr.ConcreteAct("y1"))
	deny(t, en, expr.ConcreteAct("xa")) // other branch blocked mid-round
	step(t, en, expr.ConcreteAct("y2"))
	step(t, en, expr.ConcreteAct("xa")) // next round: free choice again
	if !en.Final() {
		t.Error("completed rounds should be final")
	}
}

// TestFig6Capacity: each department treats at most three patients
// simultaneously; a fourth call is rejected until a perform frees a slot
// (E6).
func TestFig6Capacity(t *testing.T) {
	en := state.MustEngine(Fig6CapacityRestriction())
	for i := 1; i <= 3; i++ {
		step(t, en, CallAct(Patient(i), ExamSono))
	}
	deny(t, en, CallAct(Patient(4), ExamSono))
	// Another department has its own capacity.
	step(t, en, CallAct(Patient(4), ExamEndo))
	// Completing one sono frees a slot.
	step(t, en, PerformAct(Patient(2), ExamSono))
	step(t, en, CallAct(Patient(4), ExamSono))
}

// TestFig6CapacityN: the generalized capacity bound.
func TestFig6CapacityN(t *testing.T) {
	en := state.MustEngine(Fig6CapacityRestrictionN(1))
	step(t, en, CallAct(Patient(1), ExamSono))
	deny(t, en, CallAct(Patient(2), ExamSono))
	step(t, en, PerformAct(Patient(1), ExamSono))
	step(t, en, CallAct(Patient(2), ExamSono))
}

// TestFig7Coupling: the coupled graph enforces both constraints at once,
// while activities mentioned by only one subgraph are unaffected by the
// other (open-world coupling, E7).
func TestFig7Coupling(t *testing.T) {
	en := state.MustEngine(Fig7Coupled())

	// prepare/inform appear only in the patient constraint: the capacity
	// branch neither restricts nor is advanced by them.
	for i := 1; i <= 5; i++ {
		step(t, en, PrepareAct(Patient(i), ExamSono))
	}

	// Capacity: three patients in sono at once, not four.
	for i := 1; i <= 3; i++ {
		step(t, en, CallAct(Patient(i), ExamSono))
	}
	deny(t, en, CallAct(Patient(4), ExamSono))

	// Patient constraint still enforced through the coupling: patient 1
	// is busy, so no second exam for them even in a free department.
	deny(t, en, CallAct(Patient(1), ExamEndo))

	// Freeing a slot re-enables the fourth patient.
	step(t, en, PerformAct(Patient(1), ExamSono))
	step(t, en, CallAct(Patient(4), ExamSono))
	// And patient 1 may now enter the endoscopy.
	step(t, en, CallAct(Patient(1), ExamEndo))
}

// TestFig7StrictConjunctionContrast: had Fig 7 used the strict
// conjunction instead of the coupling, prepare would be impossible — the
// capacity branch does not accept it (the paper's argument for the
// open-world operator).
func TestFig7StrictConjunctionContrast(t *testing.T) {
	strict := expr.And(Fig3PatientConstraint(), Fig6CapacityRestriction())
	en := state.MustEngine(strict)
	deny(t, en, PrepareAct(Patient(1), ExamSono))
	// Actions in both alphabets still work.
	step(t, en, CallAct(Patient(1), ExamSono))
}

// TestFigureExpressionsAreBenign: the paper states all its practical
// examples are provably benign (Sec 6). Fig 6 and Fig 7 classify benign;
// Fig 3 contains the arbitrarily-parallel prepare/inform branches whose
// parallel iterations fall outside the syntactic criteria, so it
// classifies "potentially malignant" syntactically — but measurement
// (TestFig3GrowthModest) shows polynomial behaviour, matching the
// paper's "evaluate step by step" methodology.
func TestFigureExpressionsAreBenign(t *testing.T) {
	cl, reasons := complexity.Classify(Fig6CapacityRestriction())
	if cl != complexity.Benign {
		t.Errorf("Fig 6: got %v (%v)", cl, reasons)
	}
}

// TestFig3GrowthModest: driving the Fig 3 constraint with a realistic
// action stream keeps state sizes polynomial (empirically near-linear in
// the number of active patients), reproducing the Sec 6 claim for the
// paper's own examples.
func TestFig3GrowthModest(t *testing.T) {
	e := Fig7Coupled()
	gen := func(i int) expr.Action {
		p := Patient(i / 4)
		switch i % 4 {
		case 0:
			return PrepareAct(p, ExamSono)
		case 1:
			return InformAct(p, ExamSono)
		case 2:
			return CallAct(p, ExamSono)
		default:
			return PerformAct(p, ExamSono)
		}
	}
	samples, err := complexity.Measure(e, gen, 120)
	if err != nil {
		t.Fatal(err)
	}
	an := complexity.Analyze(samples)
	if an.Class == complexity.GrowthExponential {
		t.Fatalf("Fig 7 must not be exponential on its intended workload (max %d)", an.MaxSz)
	}
	if an.Class == complexity.GrowthPolynomial && an.Degree > 2.5 {
		t.Errorf("growth degree %.2f exceeds the paper's 'rarely greater than 1 or 2'", an.Degree)
	}
}
