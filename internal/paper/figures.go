// Package paper encodes the concrete artifacts of the paper's figures —
// the example interaction graphs of Sec 2 — as interaction expressions,
// so that tests, benchmarks and examples all reproduce exactly the
// constraints the paper discusses.
//
// Activities are modeled as atomic actions at the granularity the paper
// uses in its graphs (one action per activity; footnote 6's start/
// terminate split is available via ix.Activity when needed). All
// activities carry the patient parameter p and the examination parameter
// x, as in Fig 3.
package paper

import (
	"fmt"

	"repro/internal/expr"
)

// Action names used throughout the figures.
const (
	ActPrepare = "prepare" // prepare patient
	ActInform  = "inform"  // inform patient
	ActCall    = "call"    // call patient
	ActPerform = "perform" // perform examination
)

// Examination values used by the medical examples (Fig 1).
const (
	ExamSono = "sono" // ultrasonography
	ExamEndo = "endo" // endoscopy
)

func atom2(name, p, x string) *expr.Expr {
	return expr.AtomNamed(name, expr.Prm(p), expr.Prm(x))
}

// Fig3PatientConstraint builds the integrity constraint for patients of
// Fig 3: for all patients p (parallel quantifier — patients are handled
// concurrently and independently), a mutual exclusion (the user-defined
// "flash" operator of Fig 5) of three branches:
//
//   - upper: the patient is prepared for several examinations x
//     simultaneously (arbitrarily-parallel operator around a "for some
//     x" quantifier);
//   - middle: the patient passes through exactly one examination x —
//     call then perform;
//   - lower: the patient is informed about several examinations x
//     simultaneously.
//
// The mutual exclusion makes call–perform phases exclusive with each
// other and with prepare/inform bursts, reproducing the intro scenario:
// a patient cannot be called to a second examination while passing
// through a first one.
func Fig3PatientConstraint() *expr.Expr {
	prepare := expr.ParIter(expr.AnyQ("x", atom2(ActPrepare, "p", "x")))
	examine := expr.AnyQ("x", expr.Seq(atom2(ActCall, "p", "x"), atom2(ActPerform, "p", "x")))
	inform := expr.ParIter(expr.AnyQ("x", atom2(ActInform, "p", "x")))
	return expr.AllQ("p", Fig5Mutex(prepare, examine, inform))
}

// Fig5Mutex is the user-defined mutual exclusion operator of Fig 5
// applied to arbitrary branches: a constant repetition (sequential
// iteration) of an either-or branching.
func Fig5Mutex(branches ...*expr.Expr) *expr.Expr {
	return expr.SeqIter(expr.Or(branches...))
}

// Fig6CapacityRestriction builds the capacity restriction for
// examination departments of Fig 6: for each kind of examination x,
// three concurrent and independent instances of the sequence
// call - perform may be executed repeatedly, each with an arbitrary
// patient p. Effectively: each department x treats at most three
// patients simultaneously.
func Fig6CapacityRestriction() *expr.Expr {
	return Fig6CapacityRestrictionN(3)
}

// Fig6CapacityRestrictionN is Fig 6 with a configurable capacity. The
// examination-kind quantifier is the parallel ("for each") quantifier;
// its body is nullable, so departments that never act contribute the
// empty word.
func Fig6CapacityRestrictionN(n int) *expr.Expr {
	seq := expr.AnyQ("p", expr.Seq(atom2(ActCall, "p", "x"), atom2(ActPerform, "p", "x")))
	return expr.AllQ("x", expr.Mult(n, expr.SeqIter(seq)))
}

// Fig7Coupled couples the independently developed subgraphs of Fig 3 and
// Fig 6 into a single interaction graph (Fig 7): an activity is permitted
// iff it is permitted by every subgraph whose alphabet contains it. The
// prepare and inform activities appear only in the patient constraint, so
// the capacity branch never restricts them (open-world coupling).
func Fig7Coupled() *expr.Expr {
	return expr.Sync(Fig3PatientConstraint(), Fig6CapacityRestriction())
}

// Patient returns the canonical test patient value with index i.
func Patient(i int) string { return fmt.Sprintf("pat%d", i) }

// CallAct builds the concrete action call(p, x).
func CallAct(p, x string) expr.Action { return expr.ConcreteAct(ActCall, p, x) }

// PerformAct builds the concrete action perform(p, x).
func PerformAct(p, x string) expr.Action { return expr.ConcreteAct(ActPerform, p, x) }

// PrepareAct builds the concrete action prepare(p, x).
func PrepareAct(p, x string) expr.Action { return expr.ConcreteAct(ActPrepare, p, x) }

// InformAct builds the concrete action inform(p, x).
func InformAct(p, x string) expr.Action { return expr.ConcreteAct(ActInform, p, x) }
