package clock

import (
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	before := time.Now()
	now := Real.Now()
	if now.Before(before) {
		t.Fatalf("Real.Now went backwards: %v < %v", now, before)
	}
	if d := Real.Since(before); d < 0 {
		t.Fatalf("Real.Since negative: %v", d)
	}
	select {
	case <-Real.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Real.After never fired")
	}
	tm := Real.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("stopping a pending real timer should report true")
	}
	tm2 := Real.NewTimer(0)
	select {
	case <-tm2.C():
	case <-time.After(5 * time.Second):
		t.Fatal("zero-duration timer never fired")
	}
}

func TestOr(t *testing.T) {
	if Or(nil) != Real {
		t.Fatal("Or(nil) must resolve to Real")
	}
	fixed := time.Unix(42, 0)
	c := Func(func() time.Time { return fixed })
	if !Or(c).Now().Equal(fixed) {
		t.Fatal("Or must pass a non-nil clock through")
	}
}

func TestFuncClock(t *testing.T) {
	fixed := time.Unix(1000, 0)
	c := Func(func() time.Time { return fixed })
	if !c.Now().Equal(fixed) {
		t.Fatalf("Func clock Now: %v", c.Now())
	}
	if d := c.Since(fixed.Add(-time.Minute)); d != time.Minute {
		t.Fatalf("Func clock Since: %v", d)
	}
	// Timers still run on real time.
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Func.After never fired")
	}
}
