// Package clock abstracts time for the coordination stack. Every
// component that reads the wall clock or arms a timer on a commit,
// failover or retry path takes a Clock instead of calling the time
// package directly, so the deterministic simulator (internal/sim) can
// substitute a logical clock and own *when* every timer fires — the
// difference between a chaos schedule that replays bit-identically and
// one at the mercy of the host's scheduler.
//
// The zero value of every Options struct keeps the historical behavior:
// a nil Clock means Real, which delegates to the time package.
package clock

import "time"

// Clock is the time surface the coordination stack consumes: absolute
// reads for deadlines and latency math, channels for timer fires.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the elapsed time on this clock since t.
	Since(t time.Time) time.Duration
	// After returns a channel that delivers one tick once d has elapsed
	// on this clock. Like time.After, the timer cannot be stopped; use
	// NewTimer when the wait may be abandoned early.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a stoppable timer firing after d.
	NewTimer(d time.Duration) Timer
}

// Timer is a stoppable pending fire (the subset of time.Timer the stack
// uses).
type Timer interface {
	// C returns the fire channel.
	C() <-chan time.Time
	// Stop abandons the timer; it reports whether the fire was averted.
	Stop() bool
}

// Real is the wall clock: the time package, unchanged.
var Real Clock = realClock{}

// Or returns c, or Real when c is nil — the resolution every Options
// consumer applies.
func Or(c Clock) Clock {
	if c == nil {
		return Real
	}
	return c
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) NewTimer(d time.Duration) Timer         { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// Func adapts a plain now-function to a Clock whose timers still run on
// real time — enough for tests that only skew Now (e.g. expiring a
// reservation on restart) without simulating timer delivery.
func Func(now func() time.Time) Clock { return funcClock{now: now} }

type funcClock struct{ now func() time.Time }

func (c funcClock) Now() time.Time                         { return c.now() }
func (c funcClock) Since(t time.Time) time.Duration        { return c.now().Sub(t) }
func (c funcClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (c funcClock) NewTimer(d time.Duration) Timer         { return realTimer{time.NewTimer(d)} }
