package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's low value must map back to that bucket, and indexes
	// must be monotone in the value.
	for idx := 0; idx < histBuckets; idx++ {
		lo := bucketLow(idx)
		if got := bucketIdx(lo); got != idx {
			t.Fatalf("bucketIdx(bucketLow(%d)=%d) = %d", idx, lo, got)
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 7, 8, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 40, 1<<63 + 12345} {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		prev = idx
	}
	if got := bucketIdx(^uint64(0)); got != histBuckets-1 {
		t.Fatalf("bucketIdx(max) = %d, want %d", got, histBuckets-1)
	}
}

func TestHistogramQuantilesExact(t *testing.T) {
	// Values 0..15 have exact buckets, so quantiles are exact there.
	h := &Histogram{}
	for v := uint64(0); v < 16; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 16 || s.Max != 15 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	if s.P50 != 8 {
		t.Fatalf("p50 = %d, want 8", s.P50)
	}
	if s.P99 != 15 {
		t.Fatalf("p99 = %d, want 15", s.P99)
	}
}

func TestHistogramQuantilesSynthetic(t *testing.T) {
	// A known synthetic distribution: 89% of observations at ~1ms, 10% at
	// ~10ms, 1% at ~100ms (in nanoseconds). p50 must land in the 1ms
	// mode, p90 in the 10ms mode, p99 and p999 in the 100ms mode, each
	// within the histogram's one-eighth-octave resolution.
	h := &Histogram{}
	const n = 100000
	rng := rand.New(rand.NewSource(42))
	val := func(base float64) uint64 {
		// ±5% jitter keeps the mode inside adjacent buckets.
		return uint64(base * (0.95 + 0.1*rng.Float64()))
	}
	for i := 0; i < n; i++ {
		switch {
		case i%100 == 0:
			h.Observe(val(100e6))
		case i%10 == 0:
			h.Observe(val(10e6))
		default:
			h.Observe(val(1e6))
		}
	}
	s := h.Snapshot()
	check := func(name string, got uint64, want float64) {
		t.Helper()
		lo, hi := want*0.80, want*1.20
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("%s = %d, want within 20%% of %g", name, got, want)
		}
	}
	check("p50", s.P50, 1e6)
	check("p90", s.P90, 10e6)
	check("p99", s.P99, 100e6)
	check("p999", s.P999, 100e6)
	if s.Max < uint64(95e6) {
		t.Errorf("max = %d, want >= 95e6", s.Max)
	}
	if mean := s.Mean(); mean < 2.5e6 || mean > 4.5e6 {
		// 0.89*1 + 0.10*10 + 0.01*100 ≈ 2.89ms expected mean.
		t.Errorf("mean = %g, want ~2.9e6", mean)
	}
}

func TestHistogramReset(t *testing.T) {
	h := &Histogram{}
	h.Observe(100)
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 || s.P50 != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				h.Observe(uint64(rng.Intn(1 << 20)))
			}
		}(int64(g))
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestMeterRate(t *testing.T) {
	var sec int64 = 1000
	m := SetMeterClock(newMeter(), func() int64 { return sec })
	// 50 events/sec for 10 complete seconds.
	for s := 0; s < 10; s++ {
		m.Mark(50)
		sec++
	}
	// Now at second 1010; window covers 1000..1009, all complete.
	if got := m.Rate(); got != 50 {
		t.Fatalf("rate = %g, want 50", got)
	}
	// The current second's events are excluded until it completes.
	m.Mark(1000)
	if got := m.Rate(); got != 50 {
		t.Fatalf("rate with current-second burst = %g, want 50", got)
	}
	sec += meterWindow + 1 // idle until the burst second leaves the window
	if got := m.Rate(); got != 0 {
		t.Fatalf("rate after idle = %g, want 0", got)
	}
	if m.Total() != 1500 {
		t.Fatalf("total = %d, want 1500", m.Total())
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("a").Inc()
	reg.Counter("a").Add(3)
	reg.Gauge("b").Set(7)
	reg.Gauge("b").Add(-2)
	reg.Meter("c").Mark(1)
	reg.Histogram("d").Observe(5)
	reg.Histogram("d").ObserveDuration(time.Millisecond)
	reg.Histogram("d").Since(time.Now())
	reg.GaugeFunc("e", func() int64 { return 1 })
	if reg.Counter("a").Load() != 0 || reg.Gauge("b").Load() != 0 {
		t.Fatal("nil registry leaked state")
	}
	if reg.Meter("c").Rate() != 0 || reg.Histogram("d").Snapshot().Count != 0 {
		t.Fatal("nil metric returned data")
	}
	if reg.Snapshot() != nil || reg.SnapshotReset() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if err := reg.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryStableIdentity(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Fatal("counter identity not stable")
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Fatal("histogram identity not stable")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				reg.Counter("race").Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("race").Load(); got != 800 {
		t.Fatalf("race counter = %d, want 800", got)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total").Add(5)
	reg.Gauge("g").Set(-3)
	reg.GaugeFunc("fn", func() int64 { return 42 })
	reg.Histogram("h_ns").Observe(1000)
	s := reg.SnapshotReset()
	if s.Counters["c_total"] != 5 {
		t.Fatalf("counter = %d", s.Counters["c_total"])
	}
	if s.Gauges["g"] != -3 || s.Gauges["fn"] != 42 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if s.Hists["h_ns"].Count != 1 {
		t.Fatalf("hist = %+v", s.Hists["h_ns"])
	}
	// Histograms reset, counters cumulative.
	s2 := reg.Snapshot()
	if s2.Hists["h_ns"].Count != 0 {
		t.Fatalf("hist not reset: %+v", s2.Hists["h_ns"])
	}
	if s2.Counters["c_total"] != 5 {
		t.Fatalf("counter reset unexpectedly: %d", s2.Counters["c_total"])
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ix_frames_total").Add(9)
	reg.Counter(`ix_shard_asks_total{shard="0"}`).Add(4)
	reg.Gauge("ix_depth").Set(2)
	reg.Meter(`ix_asks{shard="1"}`).Mark(1)
	reg.Histogram(`ix_op_ns{op="ask"}`).Observe(1 << 10)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ix_frames_total counter",
		"ix_frames_total 9",
		`ix_shard_asks_total{shard="0"} 4`,
		"ix_depth 2",
		`ix_asks_rate{shard="1"}`,
		`ix_asks_total{shard="1"} 1`,
		`ix_op_ns{op="ask",quantile="0.5"}`,
		`ix_op_ns_sum{op="ask"} 1024`,
		`ix_op_ns_count{op="ask"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}
