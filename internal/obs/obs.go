// Package obs is a zero-dependency, low-overhead metrics core: atomic
// counters and gauges, sliding-window rate meters, and fixed-bucket
// log-scale latency histograms with quantile readout, collected in a
// registry with stable names.
//
// Every metric type is safe for concurrent use, and every method is a
// no-op on a nil receiver, so instrumented code can run unconditionally
// against an absent registry without branching:
//
//	var reg *obs.Registry // nil: metrics disabled
//	reg.Counter("ix_manager_asks_total").Inc() // no-op, no panic
//
// Metric names may embed Prometheus-style labels directly, e.g.
// "ix_shard_asks_total{shard=\"0\"}"; the registry treats the full
// string as the identity and the Prometheus renderer splices extra
// labels (quantile, le) inside the braces.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// meterSlots is the ring size; meterWindow the trailing seconds averaged
// by Rate. The ring is larger than the window so a slot is never read
// and rewritten for the same instant.
const (
	meterSlots  = 16
	meterWindow = 10
)

// Meter counts events into one-second slots and reports a trailing
// 10-second rate. The current (incomplete) second is excluded from the
// rate so a burst just now does not read as a sustained rate.
type Meter struct {
	mu    sync.Mutex
	now   func() int64 // unix seconds; replaceable for tests
	secs  [meterSlots]int64
	count [meterSlots]uint64
	total uint64
}

func newMeter() *Meter {
	return &Meter{now: func() int64 { return time.Now().Unix() }}
}

// Mark records n events at the current second.
func (m *Meter) Mark(n uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	sec := m.now()
	i := int(sec % meterSlots)
	if m.secs[i] != sec {
		m.secs[i] = sec
		m.count[i] = 0
	}
	m.count[i] += n
	m.total += n
	m.mu.Unlock()
}

// Rate returns events per second averaged over the trailing complete
// 10-second window.
func (m *Meter) Rate() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	sec := m.now()
	var sum uint64
	for s := sec - meterWindow; s < sec; s++ {
		i := int(s % meterSlots)
		if m.secs[i] == s {
			sum += m.count[i]
		}
	}
	return float64(sum) / meterWindow
}

// Total returns the cumulative event count since creation.
func (m *Meter) Total() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Histogram bucket layout: values 0..15 get exact buckets; above that,
// each power-of-two octave [2^(k-1), 2^k) is split into 8 sub-buckets,
// giving a worst-case relative quantile error of one eighth of an
// octave (~12.5%) across the full uint64 range in 496 buckets.
const histBuckets = 496

func bucketIdx(v uint64) int {
	if v < 16 {
		return int(v)
	}
	exp := bits.Len64(v) // >= 5
	return (exp-3)*8 + int((v>>(exp-4))&7)
}

// bucketLow returns the smallest value that maps to bucket idx.
func bucketLow(idx int) uint64 {
	if idx < 8 {
		return uint64(idx)
	}
	return uint64(8+idx&7) << (uint(idx>>3) - 1)
}

// Histogram records a distribution of uint64 observations (typically
// nanosecond latencies) in fixed log-scale buckets.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIdx(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Since records the time elapsed from start; use with a deferred call or
// around an instrumented section.
func (h *Histogram) Since(start time.Time) {
	if h != nil {
		h.ObserveDuration(time.Since(start))
	}
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
	P999  uint64 `json:"p999"`
}

// Mean returns the arithmetic mean of all observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot summarises the histogram. Concurrent observations may be
// partially visible; quantiles are bucket-midpoint estimates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	snap := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if total == 0 {
		return snap
	}
	q := func(p float64) uint64 {
		rank := uint64(p * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum > rank {
				lo := bucketLow(i)
				hi := lo
				if i+1 < histBuckets {
					hi = bucketLow(i+1) - 1
				}
				return (lo + hi) / 2
			}
		}
		return snap.Max
	}
	snap.P50 = q(0.50)
	snap.P90 = q(0.90)
	snap.P99 = q(0.99)
	snap.P999 = q(0.999)
	return snap
}

// Reset zeroes the histogram (snapshot-and-reset readers call Snapshot
// then Reset; observations racing the pair land in the next window).
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is valid and hands out nil metrics,
// so instrumentation can be left in place unconditionally.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	funcs  map[string]func() int64
	meters map[string]*Meter
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		funcs:  make(map[string]func() int64),
		meters: make(map[string]*Meter),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time. Re-registering
// a name replaces the callback (the source object may be rebuilt).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Meter returns the rate meter registered under name, creating it if new.
func (r *Registry) Meter(name string) *Meter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	m := r.meters[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.meters[name]; m == nil {
		m = newMeter()
		r.meters[name] = m
	}
	return m
}

// Histogram returns the histogram registered under name, creating it if new.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time view of every metric in a registry.
type Snapshot struct {
	At       time.Time                    `json:"at"`
	Counters map[string]uint64            `json:"counters,omitempty"`
	Gauges   map[string]int64             `json:"gauges,omitempty"`
	Rates    map[string]float64           `json:"rates,omitempty"`
	Hists    map[string]HistogramSnapshot `json:"hists,omitempty"`
}

// Snapshot captures all metrics. Gauge funcs are evaluated inline.
func (r *Registry) Snapshot() *Snapshot {
	return r.snapshot(false)
}

// SnapshotReset captures all metrics and resets the histograms, so each
// reader of a polling loop sees per-interval distributions. Counters,
// gauges and meters are cumulative and are not reset.
func (r *Registry) SnapshotReset() *Snapshot {
	return r.snapshot(true)
}

func (r *Registry) snapshot(reset bool) *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		At:       time.Now(),
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]int64),
		Rates:    make(map[string]float64),
		Hists:    make(map[string]HistogramSnapshot),
	}
	r.mu.RLock()
	counts := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	meters := make(map[string]*Meter, len(r.meters))
	for k, v := range r.meters {
		meters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, c := range counts {
		s.Counters[k] = c.Load()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Load()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	for k, m := range meters {
		s.Rates[k] = m.Rate()
		s.Counters[spliceOrAppend(k, "_total")] = m.Total()
	}
	for k, h := range hists {
		s.Hists[k] = h.Snapshot()
		if reset {
			h.Reset()
		}
	}
	return s
}

// spliceLabel inserts an extra label into a metric name that may already
// carry a {label="x"} suffix: spliceLabel(`a{b="c"}`, `q="0.5"`) returns
// `a{b="c",q="0.5"}`.
func spliceLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// baseName strips a {label} suffix for Prometheus TYPE lines.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (counters, gauges, and summary-style histogram quantiles).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	var b strings.Builder
	typed := make(map[string]bool)
	writeType := func(name, typ string) {
		base := baseName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		writeType(name, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		writeType(name, "gauge")
		fmt.Fprintf(&b, "%s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Rates) {
		rateName := spliceOrAppend(name, "_rate")
		writeType(rateName, "gauge")
		fmt.Fprintf(&b, "%s %g\n", rateName, s.Rates[name])
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		writeType(name, "summary")
		fmt.Fprintf(&b, "%s %d\n", spliceLabel(name, `quantile="0.5"`), h.P50)
		fmt.Fprintf(&b, "%s %d\n", spliceLabel(name, `quantile="0.9"`), h.P90)
		fmt.Fprintf(&b, "%s %d\n", spliceLabel(name, `quantile="0.99"`), h.P99)
		fmt.Fprintf(&b, "%s %d\n", spliceLabel(name, `quantile="0.999"`), h.P999)
		fmt.Fprintf(&b, "%s %d\n", spliceOrAppend(name, "_sum"), h.Sum)
		fmt.Fprintf(&b, "%s %d\n", spliceOrAppend(name, "_count"), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// spliceOrAppend appends a suffix to the metric family name, keeping any
// {label} part at the end: spliceOrAppend(`a{b="c"}`, "_sum") returns
// `a_sum{b="c"}`.
func spliceOrAppend(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SetMeterClock replaces a meter's second source; tests use this to make
// rates deterministic. It returns the meter for chaining.
func SetMeterClock(m *Meter, now func() int64) *Meter {
	if m != nil && now != nil {
		m.mu.Lock()
		m.now = now
		m.mu.Unlock()
	}
	return m
}
