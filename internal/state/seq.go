package state

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/expr"
)

// seqState is the state of an n-ary sequential composition y1 - ... - yn.
// A walker is inside exactly one operand, but because an operand may be
// finished at several points (e.g. a* followed by b), the state keeps a
// set of (operand index, operand state) alternatives. The closure
// invariant holds at all times: whenever an alternative's state is final
// and a next operand exists, an alternative starting that next operand is
// present too.
type seqState struct {
	e    *expr.Expr // the OpSeq node, for lazily starting later operands
	alts []seqAlt   // sorted by (idx, key), deduplicated
	key  string
}

type seqAlt struct {
	idx int
	st  State
}

func newSeqState(e *expr.Expr) State {
	return buildSeqState(e, []seqAlt{{0, Initial(e.Kids[0])}})
}

// buildSeqState applies the closure invariant, canonicalizes and wraps
// the alternatives; it returns nil when none is valid.
func buildSeqState(e *expr.Expr, alts []seqAlt) State {
	if len(alts) == 0 {
		return nil
	}
	n := len(e.Kids)
	// Closure: a final operand state lets the walker enter the next
	// operand without consuming an action.
	for i := 0; i < len(alts); i++ {
		a := alts[i]
		if a.st.Final() && a.idx+1 < n {
			alts = append(alts, seqAlt{a.idx + 1, Initial(e.Kids[a.idx+1])})
		}
	}
	sort.Slice(alts, func(i, j int) bool {
		if alts[i].idx != alts[j].idx {
			return alts[i].idx < alts[j].idx
		}
		return alts[i].st.Key() < alts[j].st.Key()
	})
	out := alts[:0]
	for i, a := range alts {
		if i > 0 && a.idx == alts[i-1].idx && a.st.Key() == alts[i-1].st.Key() {
			continue
		}
		out = append(out, a)
	}
	return &seqState{e: e, alts: out}
}

func (s *seqState) Key() string {
	if s.key == "" {
		var b strings.Builder
		b.WriteString("seq<")
		b.WriteString(s.e.Key())
		b.WriteString(">[")
		for i, a := range s.alts {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(a.idx))
			b.WriteByte(':')
			b.WriteString(a.st.Key())
		}
		b.WriteByte(']')
		s.key = b.String()
	}
	return s.key
}

func (s *seqState) Final() bool {
	last := len(s.e.Kids) - 1
	for _, a := range s.alts {
		if a.idx == last && a.st.Final() {
			return true
		}
	}
	return false
}

func (s *seqState) Size() int {
	n := 1
	for _, a := range s.alts {
		n += a.st.Size()
	}
	return n
}

func (s *seqState) trans(act expr.Action) State {
	var next []seqAlt
	for _, a := range s.alts {
		if nst := a.st.trans(act); nst != nil {
			next = append(next, seqAlt{a.idx, compress(nst)})
		}
	}
	return buildSeqState(s.e, next)
}

func (s *seqState) subst(p, v string) State {
	if !s.e.HasFreeParam(p) {
		return s
	}
	ne := s.e.Subst(p, v)
	alts := make([]seqAlt, len(s.alts))
	for i, a := range s.alts {
		alts[i] = seqAlt{a.idx, a.st.subst(p, v)}
	}
	// Substitution preserves validity and finality, so the closure
	// invariant still holds; rebuild for canonical order.
	return buildSeqState(ne, alts)
}

func (s *seqState) inert() bool {
	for _, a := range s.alts {
		if !a.st.inert() {
			return false
		}
	}
	return true
}

func (s *seqState) internParts(c *Cache) State {
	alts := make([]seqAlt, len(s.alts))
	for i, a := range s.alts {
		alts[i] = seqAlt{a.idx, c.Canon(a.st)}
	}
	return &seqState{e: s.e, alts: alts, key: s.Key()}
}

// seqIterState is the state of a sequential iteration y*. It tracks the
// states of iterations the walker may currently be inside, plus a
// boundary flag recording that the word consumed so far is a complete
// sequence of iterations (which makes the whole state final and lets the
// next action start a fresh iteration — represented by keeping σ(y)
// among the instances whenever the flag is set).
type seqIterState struct {
	y        *expr.Expr
	insts    []State
	boundary bool
	key      string
}

func newSeqIterState(y *expr.Expr) State {
	return &seqIterState{y: y, insts: []State{Initial(y)}, boundary: true}
}

func (s *seqIterState) Key() string {
	if s.key == "" {
		flag := "-"
		if s.boundary {
			flag = "+"
		}
		s.key = joinKeys("iter<"+s.y.Key()+">"+flag, s.insts)
	}
	return s.key
}

func (s *seqIterState) Final() bool { return s.boundary }
func (s *seqIterState) Size() int   { return 1 + sumSizes(s.insts) }

func (s *seqIterState) trans(a expr.Action) State {
	var next []State
	for _, in := range s.insts {
		if ni := in.trans(a); ni != nil {
			next = append(next, ni)
		}
	}
	boundary := false
	for _, ni := range next {
		if ni.Final() {
			boundary = true
			break
		}
	}
	// ρ: an instance that is final and inert has completed this round and
	// can never move again; its contribution (the boundary) is recorded,
	// so the instance itself is dropped. This is what lets an iteration
	// state return to σ(y*) after each completed round.
	live := next[:0]
	for _, ni := range next {
		if ni.Final() && ni.inert() {
			continue
		}
		live = append(live, ni)
	}
	next = live
	if boundary {
		next = append(next, Initial(s.y))
	}
	if len(next) == 0 {
		return nil
	}
	return &seqIterState{y: s.y, insts: sortDedupStates(next), boundary: boundary}
}

func (s *seqIterState) subst(p, v string) State {
	if !s.y.HasFreeParam(p) {
		return s
	}
	return &seqIterState{
		y:        s.y.Subst(p, v),
		insts:    sortDedupStates(substAll(s.insts, p, v)),
		boundary: s.boundary,
	}
}

func (s *seqIterState) inert() bool {
	// A fresh iteration can always be started while the boundary flag is
	// set, so the state is only inert if every instance is and no fresh
	// start could move (conservatively: never, unless σ(y) is among the
	// instances and inert itself, which allInert then covers).
	return allInert(s.insts)
}

func (s *seqIterState) internParts(c *Cache) State {
	return &seqIterState{y: s.y, insts: canonAll(c, s.insts), boundary: s.boundary, key: s.Key()}
}
