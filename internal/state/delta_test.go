package state

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/parse"
)

// driveDeltaChain steps an engine through a growing all-quantifier
// workload, checkpointing every "every" steps (full base first, deltas
// after), and returns the pieces plus the engine.
func driveDeltaChain(t *testing.T, steps, every int) (*expr.Expr, *Engine, [][]byte) {
	t.Helper()
	e := parse.MustParse("all p: (call(p) - perform(p))*")
	en := MustEngine(e)
	dm := NewDeltaMarshaller()
	var chain [][]byte
	for i := 0; i < steps; i++ {
		a, err := expr.ParseActionString(fmt.Sprintf("call(p%d)", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := en.Step(a); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if (i+1)%every != 0 {
			continue
		}
		var data []byte
		if len(chain) == 0 {
			data, err = dm.MarshalBase(en)
		} else {
			data, err = dm.MarshalDelta(en)
		}
		if err != nil {
			t.Fatalf("marshal piece %d: %v", len(chain), err)
		}
		chain = append(chain, data)
	}
	return e, en, chain
}

func restoreChain(t *testing.T, e *expr.Expr, chain [][]byte) *DeltaRestorer {
	t.Helper()
	dr, err := NewDeltaRestorer(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range chain {
		if err := dr.Load(data); err != nil {
			t.Fatalf("load piece %d: %v", i, err)
		}
	}
	return dr
}

// TestDeltaChainRoundTrip: restoring base+deltas reproduces the exact
// engine state (key, steps, finality) at every checkpoint, and the
// delta pieces stay a fraction of what a full snapshot would be.
func TestDeltaChainRoundTrip(t *testing.T) {
	e, en, chain := driveDeltaChain(t, 24, 4)
	if len(chain) < 3 {
		t.Fatalf("want >= 3 pieces, got %d", len(chain))
	}
	dr := restoreChain(t, e, chain)
	re, err := dr.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.StateKey(), en.StateKey(); got != want {
		t.Fatalf("state key mismatch:\n got  %s\n want %s", got, want)
	}
	if re.Steps() != en.Steps() {
		t.Fatalf("steps: got %d want %d", re.Steps(), en.Steps())
	}

	// The last delta must be dramatically smaller than a standalone full
	// snapshot of the same state: the quantifier's earlier branches are
	// all back-references into prior pieces.
	full, err := en.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	last := chain[len(chain)-1]
	if len(last)*2 > len(full) {
		t.Fatalf("delta piece not compact: %dB delta vs %dB full snapshot", len(last), len(full))
	}
}

// TestDeltaChainIntermediatePieces: every chain prefix restores the
// state at that checkpoint, verified against standalone snapshots taken
// at the same instants.
func TestDeltaChainIntermediatePieces(t *testing.T) {
	e := parse.MustParse("all p: (call(p) - perform(p))*")
	en := MustEngine(e)
	dm := NewDeltaMarshaller()
	var chain [][]byte
	var wantKeys []string
	for i := 0; i < 12; i++ {
		a, _ := expr.ParseActionString(fmt.Sprintf("call(p%d)", i))
		if err := en.Step(a); err != nil {
			t.Fatal(err)
		}
		var data []byte
		var err error
		if len(chain) == 0 {
			data, err = dm.MarshalBase(en)
		} else {
			data, err = dm.MarshalDelta(en)
		}
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, data)
		wantKeys = append(wantKeys, en.StateKey())
	}
	dr, err := NewDeltaRestorer(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range chain {
		if err := dr.Load(data); err != nil {
			t.Fatalf("load piece %d: %v", i, err)
		}
		re, err := dr.Engine()
		if err != nil {
			t.Fatal(err)
		}
		if re.StateKey() != wantKeys[i] {
			t.Fatalf("piece %d: state key mismatch", i)
		}
	}
}

// TestDeltaRestorerContinuation: after a restore, Marshaller() extends
// the recovered chain — the new delta references nodes persisted before
// the restart, and the longer chain still restores exactly.
func TestDeltaRestorerContinuation(t *testing.T) {
	e, en, chain := driveDeltaChain(t, 16, 4)
	dr := restoreChain(t, e, chain)
	re, err := dr.Engine()
	if err != nil {
		t.Fatal(err)
	}
	dm := dr.Marshaller()
	// "The restart": drive the restored engine further, checkpoint with
	// the continuation marshaller.
	for i := 0; i < 4; i++ {
		a, _ := expr.ParseActionString(fmt.Sprintf("call(q%d)", i))
		if err := re.Step(a); err != nil {
			t.Fatal(err)
		}
	}
	delta, err := dm.MarshalDelta(re)
	if err != nil {
		t.Fatal(err)
	}
	chain = append(chain, delta)
	// Mirror the walk on the original engine for the reference key.
	for i := 0; i < 4; i++ {
		a, _ := expr.ParseActionString(fmt.Sprintf("call(q%d)", i))
		if err := en.Step(a); err != nil {
			t.Fatal(err)
		}
	}
	dr2 := restoreChain(t, e, chain)
	re2, err := dr2.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re2.StateKey(), en.StateKey(); got != want {
		t.Fatalf("state key mismatch after continuation:\n got  %s\n want %s", got, want)
	}
}

// TestDeltaChainValidation: broken chains fail loudly.
func TestDeltaChainValidation(t *testing.T) {
	e, _, chain := driveDeltaChain(t, 16, 4)

	newDR := func() *DeltaRestorer {
		dr, err := NewDeltaRestorer(e)
		if err != nil {
			t.Fatal(err)
		}
		return dr
	}

	// Delta as first piece: no base to reference into.
	if err := newDR().Load(chain[1]); err == nil || !strings.Contains(err.Error(), "delta chain broken") {
		t.Fatalf("delta-first load: got %v, want chain-broken error", err)
	}
	// Skipped piece: indices no longer sequential.
	dr := newDR()
	if err := dr.Load(chain[0]); err != nil {
		t.Fatal(err)
	}
	if err := dr.Load(chain[2]); err == nil || !strings.Contains(err.Error(), "delta chain broken") {
		t.Fatalf("skip-piece load: got %v, want chain-broken error", err)
	}
	// Wrong expression.
	other, err := NewDeltaRestorer(parse.MustParse("a - b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Load(chain[0]); err == nil || !strings.Contains(err.Error(), "snapshot is for") {
		t.Fatalf("wrong-expr load: got %v, want expr mismatch error", err)
	}
	// MarshalDelta before any base.
	if _, err := NewDeltaMarshaller().MarshalDelta(MustEngine(e)); err == nil {
		t.Fatal("MarshalDelta without base should fail")
	}
	// Engine() before any load.
	if _, err := newDR().Engine(); err == nil {
		t.Fatal("Engine() before load should fail")
	}
}

// TestDeltaStandaloneBase: a plain MarshalState (format 2) snapshot
// seeds a chain, and a continuation delta on top restores exactly.
func TestDeltaStandaloneBase(t *testing.T) {
	e := parse.MustParse("all p: (call(p) - perform(p))*")
	en := MustEngine(e)
	for i := 0; i < 6; i++ {
		a, _ := expr.ParseActionString(fmt.Sprintf("call(p%d)", i))
		if err := en.Step(a); err != nil {
			t.Fatal(err)
		}
	}
	base, err := en.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	dr, err := NewDeltaRestorer(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := dr.Load(base); err != nil {
		t.Fatal(err)
	}
	re, err := dr.Engine()
	if err != nil {
		t.Fatal(err)
	}
	dm := dr.Marshaller()
	a, _ := expr.ParseActionString("perform(p3)")
	if err := re.Step(a); err != nil {
		t.Fatal(err)
	}
	if err := en.Step(a); err != nil {
		t.Fatal(err)
	}
	delta, err := dm.MarshalDelta(re)
	if err != nil {
		t.Fatal(err)
	}
	dr2, err := NewDeltaRestorer(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][]byte{base, delta} {
		if err := dr2.Load(p); err != nil {
			t.Fatal(err)
		}
	}
	re2, err := dr2.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re2.StateKey(), en.StateKey(); got != want {
		t.Fatalf("state key mismatch:\n got  %s\n want %s", got, want)
	}
}
