package state

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/parse"
)

// fuzzActions derives a candidate concrete-action set for an expression:
// every atom instantiated (via the lawSigma generator of laws_test.go)
// with a small value universe plus the values the expression itself
// mentions.
func fuzzActions(e *expr.Expr) []expr.Action {
	vals := []string{"v1", "v2"}
	seenV := map[string]bool{"v1": true, "v2": true}
	for _, at := range e.Actions() {
		for _, v := range at.Values() {
			if !seenV[v] {
				seenV[v] = true
				vals = append(vals, v)
			}
		}
	}
	return lawSigma(vals, e)
}

// assertRoundTrip checks the full snapshot contract at the engine's
// current state: marshal → unmarshal → marshal is byte-identical, and
// the restored engine is transition-equivalent (same key, same finality,
// same permissibility for every candidate action).
func assertRoundTrip(t *testing.T, en *Engine, cands []expr.Action) {
	t.Helper()
	data, err := en.MarshalState()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	re, err := RestoreEngine(en.Expr(), data)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	data2, err := re.MarshalState()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("marshal → unmarshal → marshal not byte-identical:\n 1st %s\n 2nd %s", data, data2)
	}
	if re.StateKey() != en.StateKey() {
		t.Fatalf("state key diverges:\n got  %s\n want %s", re.StateKey(), en.StateKey())
	}
	if re.Final() != en.Final() {
		t.Fatalf("finality diverges: got %v want %v", re.Final(), en.Final())
	}
	for _, a := range cands {
		if got, want := re.Try(a), en.Try(a); got != want {
			t.Fatalf("try %s diverges: restored=%v original=%v", a, got, want)
		}
	}
}

// FuzzSnapshotRoundTrip drives a random word through a parsed expression
// and asserts the DAG snapshot format round-trips exactly at every
// reached state. The seed corpus covers the exclusion-carrying
// quantifier states introduced by the PR-2 binding-soundness fix
// (anonymous allQ branches and anyQ generic branches with excluded
// bindings) as well as every node type of the format.
func FuzzSnapshotRoundTrip(f *testing.F) {
	seeds := []string{
		"all p0: ((x($p0) || a) @ mult(2, x(v2)))?",
		"any p0: ((x($p0) || a) @ mult(2, x(v2)))",
		"all p: (call(p) - perform(p))*",
		"(all p: (x(p))*) @ (all q: (y(q))*)",
		"syncq p: (x(p) - y(p))*",
		"conq p: (b? - x(p)?)?",
		"(a - b)# & (a | b)*",
		"mult(3, a - b) || (any p: lock(p) - unlock(p))",
	}
	for _, src := range seeds {
		f.Add(src, []byte{0, 1, 2, 3, 4, 5, 6, 7})
		f.Add(src, []byte{0, 0, 1, 1, 2, 2})
		f.Add(src, []byte{3, 1, 4, 1, 5, 9, 2, 6})
	}
	f.Fuzz(func(t *testing.T, src string, word []byte) {
		e, err := parse.Parse(src)
		if err != nil || !e.Closed() || e.Size() > 40 {
			return
		}
		en, err := NewEngine(e)
		if err != nil {
			return
		}
		cands := fuzzActions(e)
		if len(cands) == 0 {
			return
		}
		assertRoundTrip(t, en, cands)
		steps := 0
		for _, b := range word {
			if steps >= 10 {
				break
			}
			a := cands[int(b)%len(cands)]
			if en.Step(a) != nil {
				continue
			}
			steps++
			assertRoundTrip(t, en, cands)
		}
	})
}

// TestSnapshotExclusionRoundTrip pins the exclusion-carrying states the
// fuzzer's seed corpus aims at: an anonymous allQ branch that consumed
// x(v2) with p0 free records v2 as excluded, and the snapshot must carry
// the exclusion — dropping it would let the restored engine over-accept
// exactly like the pre-PR-2 bug.
func TestSnapshotExclusionRoundTrip(t *testing.T) {
	e := parse.MustParse("all p0: ((x($p0) || a) @ mult(2, x(v2)))?")
	en := MustEngine(e)
	cands := fuzzActions(e)
	for _, w := range []string{"x(v2)", "x(v2)"} {
		a, err := expr.ParseActionString(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := en.Step(a); err != nil {
			t.Fatalf("step %s: %v", w, err)
		}
		assertRoundTrip(t, en, cands)
	}
	data, err := en.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"x":[["v2"]`) {
		t.Fatalf("snapshot lost the excluded-binding set: %s", data)
	}
}

// TestSnapshotDAGSharing: repeated structure is emitted once and
// back-referenced, and a hash-consed engine snapshots identically to a
// plain one (the cache must be invisible in the format).
func TestSnapshotDAGSharing(t *testing.T) {
	e := parse.MustParse("mult(3, a - b) || mult(3, a - b)")
	plain := MustEngine(e)
	memo := MustEngine(e)
	memo.UseCache(NewCache(0))
	for _, w := range []string{"a", "a"} {
		a, _ := expr.ParseActionString(w)
		if err := plain.Step(a); err != nil {
			t.Fatal(err)
		}
		if err := memo.Step(a); err != nil {
			t.Fatal(err)
		}
	}
	d1, err := plain.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := memo.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatalf("cached and plain engines snapshot differently:\n plain %s\n memo  %s", d1, d2)
	}
	if !bytes.Contains(d1, []byte(`"r":`)) {
		t.Fatalf("expected back-references in the DAG snapshot: %s", d1)
	}
	assertRoundTrip(t, plain, fuzzActions(e))
}

// Legacy (version-0, tree-encoded) snapshots, captured verbatim from the
// pre-DAG encoder. They must keep loading: deployed managers checkpoint
// these to disk and a restart after the upgrade recovers from them.
var legacySnapshots = []struct {
	src   string
	data  string
	steps int
}{
	{
		"all p: (call(p) - perform(p))*",
		`{"expr":"all p: (call($p) - perform($p))*","steps":3,"state":{"t":"all","e":"all p: (call($p) - perform($p))*","qa":[{"n":[{"v":"bob","s":{"t":"iter","e":"call(bob) - perform(bob)","k":[{"t":"seq","e":"call(bob) - perform(bob)","k":[{"t":"eps"},{"t":"atom","act":{"n":"perform","a":[{"n":"bob"}]}}],"i":[0,1]}]}}]}]}}`,
		3,
	},
	{
		"all p0: ((x($p0) || a) @ mult(2, x(v2)))?",
		`{"expr":"all p0: (x($p0) || a @ mult(2, x(v2)))?","steps":2,"state":{"t":"all","e":"all p0: (x($p0) || a @ mult(2, x(v2)))?","qa":[{"a":[{"t":"or","k":[{"t":"sync","es":["x($p0) || a","mult(2, x(v2))"],"k":[{"t":"par","aa":[[{"t":"atom","act":{"n":"x","a":[{"p":true,"n":"p0"}]}},{"t":"atom","act":{"n":"a"}}]]},{"t":"eps"}]}]}],"x":[["v2"]]},{"a":[{"t":"or","k":[{"t":"sync","es":["x($p0) || a","mult(2, x(v2))"],"k":[{"t":"par","aa":[[{"t":"atom","act":{"n":"x","a":[{"p":true,"n":"p0"}]}},{"t":"atom","act":{"n":"a"}}]]},{"t":"mult","aa":[[{"t":"atom","act":{"n":"x","a":[{"n":"v2"}]}},{"t":"eps"}]]}]}]},{"t":"or","k":[{"t":"sync","es":["x($p0) || a","mult(2, x(v2))"],"k":[{"t":"par","aa":[[{"t":"atom","act":{"n":"x","a":[{"p":true,"n":"p0"}]}},{"t":"atom","act":{"n":"a"}}]]},{"t":"mult","aa":[[{"t":"atom","act":{"n":"x","a":[{"n":"v2"}]}},{"t":"eps"}]]}]}]}],"x":[["v2"],["v2"]]},{"n":[{"v":"v2","s":{"t":"or","k":[{"t":"sync","es":["x(v2) || a","mult(2, x(v2))"],"k":[{"t":"par","aa":[[{"t":"eps"},{"t":"atom","act":{"n":"a"}}]]},{"t":"mult","aa":[[{"t":"atom","act":{"n":"x","a":[{"n":"v2"}]}},{"t":"eps"}]]}]}]}}],"a":[{"t":"or","k":[{"t":"sync","es":["x($p0) || a","mult(2, x(v2))"],"k":[{"t":"par","aa":[[{"t":"atom","act":{"n":"x","a":[{"p":true,"n":"p0"}]}},{"t":"atom","act":{"n":"a"}}]]},{"t":"mult","aa":[[{"t":"atom","act":{"n":"x","a":[{"n":"v2"}]}},{"t":"eps"}]]}]}]}],"x":[["v2"]]}]}}`,
		2,
	},
	{
		"(a - b)# & (a | b)*",
		`{"expr":"(a - b)# & (a | b)*","steps":3,"state":{"t":"and","k":[{"t":"piter","e":"a - b","aa":[[{"t":"seq","e":"a - b","k":[{"t":"eps"},{"t":"atom","act":{"n":"b"}}],"i":[0,1]}]]},{"t":"iter","done":true,"e":"a | b","k":[{"t":"or","k":[{"t":"atom","act":{"n":"a"}},{"t":"atom","act":{"n":"b"}}]}]}]}}`,
		3,
	},
}

// TestSnapshotLegacyTreeFormat: version-0 snapshots restore, behave, and
// migrate — re-marshaling a restored legacy engine produces the current
// DAG format, which round-trips to the same state.
func TestSnapshotLegacyTreeFormat(t *testing.T) {
	for _, tc := range legacySnapshots {
		t.Run(tc.src, func(t *testing.T) {
			e := parse.MustParse(tc.src)
			en, err := RestoreEngine(e, []byte(tc.data))
			if err != nil {
				t.Fatalf("legacy restore: %v", err)
			}
			if en.Steps() != tc.steps {
				t.Fatalf("steps: got %d want %d", en.Steps(), tc.steps)
			}
			// Migration: the restored engine re-marshals in the DAG format
			// and keeps round-tripping.
			assertRoundTrip(t, en, fuzzActions(e))
			data2, err := en.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(data2, []byte(`"v":2`)) {
				t.Fatalf("re-marshal should be version 2: %s", data2)
			}
		})
	}
}

// TestSnapshotUnsupportedVersion: snapshots from a future format are
// rejected with a version error instead of being misread.
func TestSnapshotUnsupportedVersion(t *testing.T) {
	e := parse.MustParse("a")
	data := []byte(`{"v":9,"expr":"a","steps":0,"state":{"t":"atom","act":{"n":"a"}}}`)
	if _, err := RestoreEngine(e, data); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}
