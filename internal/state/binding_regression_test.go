package state

import (
	"testing"

	"repro/internal/parse"
	"repro/internal/semantics"
)

// Regression tests for the quantifier binding-soundness bug found by
// FuzzOperationalVsOracle (internal/semantics): a branch that consumed an
// action with its parameter unbound — letting the action pass a coupling
// operand by because the operand's $p pattern matches nothing unbound —
// was later bound to one of that action's values, contradicting the
// pass-by. The branch now records such values as excluded bindings.
func TestAllQBindingExclusion(t *testing.T) {
	// The fuzzer's minimized find: with p0 bound to v2 the left coupling
	// operand must see every x(v2); an anonymous branch that fed both
	// x(v2)s to the multiplier only must never become the v2 branch.
	e := parse.MustParse("all p0: ((x($p0) || a) @ mult(2, x(v2)))?")
	w := acts("x(v2)", "x(v2)", "a")
	en := MustEngine(e)
	o := semantics.New(e, len(w))
	for i := 0; i <= len(w); i++ {
		got := en.Word(w[:i])
		want := Verdict(o.Verdict(semantics.Word(w[:i])))
		if got != want {
			t.Fatalf("prefix %v: engine=%v oracle=%v", w[:i], got, want)
		}
	}
	if v := en.Word(w); v != Partial {
		t.Fatalf("word should be Partial, got %v", v)
	}
	// The branch is still extensible for a fresh value: a fresh-ω
	// instance may own both x(v2)s through the multiplier and then run
	// x(ω), a through the left operand.
	if v := en.Word(acts("x(v2)", "x(v2)", "x(v3)", "a")); v != Complete {
		t.Fatalf("fresh-value completion should be Complete, got %v", v)
	}
}

// TestAnyQBindingExclusion: the disjunction-quantifier analog. The
// generic branch consumes both x(v2)s by passing the x($p) operand by
// (committing to p ≠ v2); re-forking the v2 branch from that history
// previously resurrected a dead disjunct and over-accepted.
func TestAnyQBindingExclusion(t *testing.T) {
	e := parse.MustParse("any p: ((x($p) || a) @ mult(2, x(v2)))")
	w := acts("x(v2)", "x(v2)", "a", "x(v2)")
	en := MustEngine(e)
	o := semantics.New(e, len(w))
	for i := 0; i <= len(w); i++ {
		got := en.Word(w[:i])
		want := Verdict(o.Verdict(semantics.Word(w[:i])))
		if got != want {
			t.Fatalf("prefix %v: engine=%v oracle=%v", w[:i], got, want)
		}
	}
	// The completion for a fresh value must stay available.
	if v := en.Word(acts("x(v2)", "x(v2)", "a", "x(v3)")); v != Complete {
		t.Fatalf("fresh-value completion should be Complete, got %v", v)
	}
}
