// Package state implements the operational semantics of interaction
// expressions (Sec 4 and 5 of the paper): the initial-state function σ,
// the optimized state-transition function τ̂ = ρ∘τ, and the finality
// predicate ϕ. The validity predicate ψ is represented by the nil state,
// exactly as the paper's implementation section prescribes: the optimizer
// ρ recognizes invalid states and maps them to nil, so a transition
// returning nil means "the extended word is not a partial word".
//
// States are immutable, hierarchically structured values mirroring the
// expression tree. Nondeterministic choices that the descriptive
// traversal semantics leaves open (where a walker might be) are
// represented as alternative sets, deduplicated by canonical keys; this
// is the generalization of the paper's parallel-composition example
// (states [∥, A] with alternative pairs) to all operators.
//
// Quantifier states are finite despite ranging over the infinite value
// universe Ω: a quantifier state tracks a branch per *touched* value plus
// one *generic* branch in which the parameter is still unbound and which
// represents all untouched values at once. Binding happens lazily when a
// concrete action mentions a new value (see quant.go and allq.go). This
// reconstructs the auxiliary theorem of Sec 4 ("quantifier expressions,
// though constituting conceptually infinite expressions, can nevertheless
// be implemented using finite states").
//
// The package is verified against the executable formal semantics
// (internal/semantics) by exhaustive bounded-language comparison and by
// randomized differential tests.
package state

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// State is an operational state of some interaction (sub)expression. The
// nil State represents the invalid ("null") state.
type State interface {
	// Key returns the canonical identity of the state; equal keys mean
	// semantically identical states (used for deduplication).
	Key() string
	// Final reports ϕ(s): whether the walkers may have reached the end of
	// the graph, i.e. the word consumed so far is a complete word.
	Final() bool
	// Size returns the number of elementary state nodes, the measure used
	// by the complexity experiments of Sec 6.
	Size() int
	// trans performs the optimized transition τ̂ for a concrete action
	// under strict matching (atoms containing unbound parameters match
	// nothing). It returns nil if the successor state is invalid.
	trans(a expr.Action) State
	// subst replaces the free parameter p with value v throughout the
	// state (used by quantifier states to bind their parameter lazily).
	subst(p, v string) State
	// inert reports that no transition can ever succeed from this state,
	// under any future parameter substitution. Used by ρ to drop
	// completed instances of parallel iterations. Must be conservative:
	// false is always safe.
	inert() bool
	// internParts returns an equal state (same Key) whose child states
	// have been replaced by their canonical representatives from c; the
	// hash-consing descent of Cache.Canon. Leaves return themselves.
	internParts(c *Cache) State
}

// Initial computes σ(e), the initial state of a (not necessarily closed)
// expression. Initial states are always valid because the empty word is a
// partial word of every expression.
func Initial(e *expr.Expr) State {
	switch e.Op {
	case expr.OpAtom:
		return &atomState{atom: e.Atom}
	case expr.OpEmpty:
		return theEmptyState
	case expr.OpOption:
		// y? behaves like ε | y.
		return newOrState([]State{theEmptyState, Initial(e.Kids[0])})
	case expr.OpSeq:
		return newSeqState(e)
	case expr.OpSeqIter:
		return newSeqIterState(e.Kids[0])
	case expr.OpPar:
		return newParState(e)
	case expr.OpParIter:
		return newParIterState(e.Kids[0])
	case expr.OpMult:
		return newMultState(e)
	case expr.OpOr:
		kids := make([]State, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = Initial(k)
		}
		return newOrState(kids)
	case expr.OpAnd:
		kids := make([]State, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = Initial(k)
		}
		return newAndState(kids)
	case expr.OpSync:
		return newSyncState(e)
	case expr.OpAnyQ:
		return newAnyQState(e)
	case expr.OpConQ:
		return newConQState(e)
	case expr.OpSyncQ:
		return newSyncQState(e)
	case expr.OpAllQ:
		return newAllQState(e)
	}
	panic(fmt.Sprintf("state: unknown op %v", e.Op))
}

// Trans exposes τ̂ for a possibly-nil state: the null state has no
// successors.
func Trans(s State, a expr.Action) State {
	if s == nil {
		return nil
	}
	return s.trans(a)
}

// Final exposes ϕ for a possibly-nil state.
func Final(s State) bool { return s != nil && s.Final() }

// Size exposes the instrumentation size for a possibly-nil state.
func Size(s State) int {
	if s == nil {
		return 0
	}
	return s.Size()
}

// --- shared helpers -------------------------------------------------

// compress is the state-simplification half of ρ: a state that is final
// and inert — the walker finished this subgraph and can never move in it
// again, under any substitution — behaves exactly like the ε state, so
// it is replaced by it. This canonicalization lets alternatives that
// differ only in *how* a subgraph was completed collapse into one,
// which is what keeps states of practical expressions "nearly constant"
// (Sec 6): without it, e.g. the Fig 6 multiplier would remember which
// station served which patient forever.
func compress(s State) State {
	if s == nil {
		return nil
	}
	if _, isEps := s.(emptyState); isEps {
		return s
	}
	if s.Final() && s.inert() {
		return theEmptyState
	}
	return s
}

func compressAll(ss []State) []State {
	for i, s := range ss {
		ss[i] = compress(s)
	}
	return ss
}

// sortStates orders states by key and removes duplicates, returning the
// canonical representation of a state multiset turned set.
func sortDedupStates(ss []State) []State {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Key() < ss[j].Key() })
	out := ss[:0]
	var prev string
	for i, s := range ss {
		k := s.Key()
		if i > 0 && k == prev {
			continue
		}
		prev = k
		out = append(out, s)
	}
	return out
}

// sortStatesKeepDup orders a state multiset by key, keeping duplicates
// (parallel iterations and multipliers track instance multiplicity).
func sortStatesKeepDup(ss []State) []State {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Key() < ss[j].Key() })
	return ss
}

// joinKeys concatenates state keys with a separator inside brackets.
func joinKeys(prefix string, ss []State) string {
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteByte('[')
	for i, s := range ss {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Key())
	}
	b.WriteByte(']')
	return b.String()
}

func allFinal(ss []State) bool {
	for _, s := range ss {
		if !s.Final() {
			return false
		}
	}
	return true
}

func allInert(ss []State) bool {
	for _, s := range ss {
		if !s.inert() {
			return false
		}
	}
	return true
}

func sumSizes(ss []State) int {
	n := 0
	for _, s := range ss {
		n += s.Size()
	}
	return n
}

func substAll(ss []State, p, v string) []State {
	out := make([]State, len(ss))
	for i, s := range ss {
		out[i] = s.subst(p, v)
	}
	return out
}
