package state

import (
	"encoding/json"
	"fmt"

	"repro/internal/expr"
)

// Delta checkpoints (format version 3). The DAG snapshot format
// deduplicates by canonical key within one snapshot; a delta chain
// simply stretches that deduplication across snapshots. A
// DeltaMarshaller keeps its encoder alive between calls, so a state
// node already emitted by an earlier checkpoint of the chain encodes as
// the same one-field back-reference {"r": ordinal} it would get within
// a single snapshot — a delta piece physically contains only the nodes
// created since the previous checkpoint. On large, slowly mutating
// states (the common steady state of a long-lived manager, where a step
// rewrites one branch of a widely shared DAG) that cuts checkpoint
// bytes by the sharing factor, the same instinct as IC3's frame-by-
// frame incremental over-approximation: persist the change, not the
// world.
//
// Restore mirrors this exactly: a DeltaRestorer keeps its decoder's
// ordinal table alive across Load calls, so references reaching into
// earlier pieces resolve. Each piece records its chain position (Idx)
// and the ordinal count it expects the loader to have (Ord); both are
// verified, so a truncated, reordered or mixed-up chain fails loudly
// rather than silently resolving references against the wrong nodes.

// deltaFormatVersion is written by DeltaMarshaller pieces.
const deltaFormatVersion = 3

// DeltaMarshaller writes a chain of engine checkpoints: a full base
// (MarshalBase) followed by deltas (MarshalDelta) that contain only
// state nodes unseen since the previous piece. A marshaller is bound to
// the chain it is writing; if storing a produced piece fails, discard
// the marshaller and start a fresh chain with MarshalBase — its encoder
// has already assigned ordinals to nodes the failed piece was supposed
// to persist, so later deltas from it would dangle.
//
// Deduplication is by canonical state key, not object identity, so the
// chain survives hash-cons cache flushes and engine restarts alike.
type DeltaMarshaller struct {
	enc  *encoder
	next int // chain index of the next piece
}

// NewDeltaMarshaller returns a marshaller with no chain started; the
// first piece must be a MarshalBase.
func NewDeltaMarshaller() *DeltaMarshaller { return &DeltaMarshaller{} }

// MarshalBase serializes the engine's full state as a chain-starting
// base piece and resets the chain: nothing before it is referenced.
func (dm *DeltaMarshaller) MarshalBase(en *Engine) ([]byte, error) {
	if en.cur == nil {
		return nil, fmt.Errorf("state: cannot snapshot an invalid engine state")
	}
	enc := newEncoder()
	data, err := json.Marshal(engineSnap{
		V:     deltaFormatVersion,
		Expr:  en.e.String(),
		Steps: en.steps,
		State: enc.state(en.cur),
	})
	if err != nil {
		return nil, err
	}
	dm.enc = enc
	dm.next = 1
	return data, nil
}

// MarshalDelta serializes only the state nodes unseen since the chain's
// previous piece; everything else is back-references. On error the
// marshaller is poisoned (see type comment): discard it.
func (dm *DeltaMarshaller) MarshalDelta(en *Engine) ([]byte, error) {
	if dm.enc == nil {
		return nil, fmt.Errorf("state: delta checkpoint without a base")
	}
	if en.cur == nil {
		return nil, fmt.Errorf("state: cannot snapshot an invalid engine state")
	}
	ord := dm.enc.n // before the walk assigns this piece's ordinals
	data, err := json.Marshal(engineSnap{
		V:     deltaFormatVersion,
		Idx:   dm.next,
		Ord:   ord,
		Expr:  en.e.String(),
		Steps: en.steps,
		State: dm.enc.state(en.cur),
	})
	if err != nil {
		return nil, err
	}
	dm.next++
	return data, nil
}

// DeltaRestorer rebuilds an engine from a checkpoint chain, loading the
// pieces oldest first. It also accepts a single standalone snapshot
// (format 0 or 2) as the first piece, so a restore path can treat "one
// old-style snapshot" as the degenerate one-piece chain.
type DeltaRestorer struct {
	e    *expr.Expr
	d    *decoder
	next int // chain index of the next expected piece
	cur  State
	st   int
}

// NewDeltaRestorer returns a restorer for chains of engine checkpoints
// of the closed expression e.
func NewDeltaRestorer(e *expr.Expr) (*DeltaRestorer, error) {
	if e == nil {
		return nil, fmt.Errorf("state: nil expression")
	}
	if !e.Closed() {
		return nil, fmt.Errorf("state: expression has free parameters: %s", e)
	}
	return &DeltaRestorer{e: e, d: &decoder{exprs: make(map[string]*expr.Expr)}}, nil
}

// Load decodes the next piece of the chain. Pieces must be loaded
// oldest first, starting with the full base; the piece's chain index
// and expected ordinal count are verified against the restorer's
// progress before any reference is resolved.
func (dr *DeltaRestorer) Load(data []byte) error {
	var snap engineSnap
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("state: decode snapshot: %w", err)
	}
	if dr.next == 0 {
		switch snap.V {
		case 0, snapFormatVersion:
			// A standalone snapshot is a valid chain base.
		case deltaFormatVersion:
			if snap.Idx != 0 || snap.Ord != 0 {
				return fmt.Errorf("state: delta chain broken: first piece has chain index %d (want a full base)", snap.Idx)
			}
		default:
			return fmt.Errorf("state: snapshot format version %d not supported (want 0, %d or %d)", snap.V, snapFormatVersion, deltaFormatVersion)
		}
	} else {
		if snap.V != deltaFormatVersion {
			return fmt.Errorf("state: delta chain broken: piece %d has format version %d (want %d)", dr.next, snap.V, deltaFormatVersion)
		}
		if snap.Idx != dr.next {
			return fmt.Errorf("state: delta chain broken: piece has chain index %d, want %d", snap.Idx, dr.next)
		}
		if snap.Ord != len(dr.d.byOrd) {
			return fmt.Errorf("state: delta chain broken: piece %d expects %d prior nodes, have %d", snap.Idx, snap.Ord, len(dr.d.byOrd))
		}
	}
	if snap.Expr != dr.e.String() {
		return fmt.Errorf("state: snapshot is for %q, not %q", snap.Expr, dr.e)
	}
	cur, err := dr.d.state(snap.State)
	if err != nil {
		return err
	}
	dr.cur = cur
	dr.st = snap.Steps
	dr.next++
	return nil
}

// Engine returns an engine in the state of the last loaded piece,
// behaviourally identical to the engine that was checkpointed.
func (dr *DeltaRestorer) Engine() (*Engine, error) {
	if dr.next == 0 {
		return nil, fmt.Errorf("state: no checkpoint loaded")
	}
	return &Engine{e: dr.e, cur: dr.cur, steps: dr.st}, nil
}

// Marshaller returns a DeltaMarshaller that continues the restored
// chain: its encoder is seeded with every node ordinal the chain has
// assigned, so the next MarshalDelta references them instead of
// re-serializing, and a restarted manager keeps extending the chain it
// recovered from.
func (dr *DeltaRestorer) Marshaller() *DeltaMarshaller {
	enc := &encoder{seen: make(map[string]int, len(dr.d.byOrd)), n: len(dr.d.byOrd)}
	for i, s := range dr.d.byOrd {
		enc.seen[s.Key()] = i + 1
	}
	return &DeltaMarshaller{enc: enc, next: dr.next}
}
