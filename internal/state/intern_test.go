package state

import (
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/parse"
)

// TestCacheInterningSharesStructure: canonicalizing two structurally
// equal states yields the same object, across engines and expressions.
func TestCacheInterningSharesStructure(t *testing.T) {
	c := NewCache(0)
	e1 := parse.MustParse("(a - b)* || c")
	e2 := parse.MustParse("(a - b)* || c")
	s1 := c.Canon(Initial(e1))
	s2 := c.Canon(Initial(e2))
	if s1 != s2 {
		t.Fatal("identical initial states should intern to one object")
	}
	st := c.Stats()
	if st.InternHits == 0 || st.Nodes == 0 {
		t.Fatalf("expected intern traffic, got %+v", st)
	}
	// A transition's unchanged sub-structure stays shared.
	n1 := c.Transition(s1, expr.ConcreteAct("a"))
	n2 := c.Transition(s2, expr.ConcreteAct("a"))
	if n1 != n2 {
		t.Fatal("identical successors should be one object")
	}
	if n1 == nil || n1.Key() != Trans(Initial(e1), expr.ConcreteAct("a")).Key() {
		t.Fatal("canonical successor must match the plain transition")
	}
}

// TestCacheMemoizesRejections: an impermissible probe is derived once
// and served from the memo afterwards.
func TestCacheMemoizesRejections(t *testing.T) {
	c := NewCache(0)
	s := c.Canon(Initial(parse.MustParse("a - b")))
	bad := expr.ConcreteAct("b")
	if c.Probe(s, bad) {
		t.Fatal("b before a should be impermissible")
	}
	before := c.Stats()
	for i := 0; i < 5; i++ {
		if c.Probe(s, bad) {
			t.Fatal("b before a should stay impermissible")
		}
	}
	after := c.Stats()
	if after.MemoHits-before.MemoHits != 5 {
		t.Fatalf("rejections not memoized: %+v → %+v", before, after)
	}
}

// TestCacheLRUEviction: the memo respects its bound and keeps working
// correctly after evictions.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(4)
	e := parse.MustParse("(a1 | a2 | a3 | a4 | a5 | a6 | a7 | a8)*")
	s := c.Canon(Initial(e))
	for round := 0; round < 3; round++ {
		for i := 1; i <= 8; i++ {
			a := expr.ConcreteAct("a" + string(rune('0'+i)))
			if c.Transition(s, a) == nil {
				t.Fatalf("a%d should be permissible", i)
			}
		}
	}
	st := c.Stats()
	if st.MemoEntries > 4 {
		t.Fatalf("memo exceeded its bound: %+v", st)
	}
	if st.MemoEvictions == 0 {
		t.Fatalf("expected evictions: %+v", st)
	}
}

// TestCacheFlushOnInternOverflow: overflowing the interning table resets
// both tables but never corrupts behaviour.
func TestCacheFlushOnInternOverflow(t *testing.T) {
	c := NewCache(0)
	c.internCap = 8 // tiny bound for the test
	e := parse.MustParse("all p: (call(p) - perform(p))*")
	en := MustEngine(e)
	en.UseCache(c)
	ref := MustEngine(e)
	for i := 0; i < 30; i++ {
		p := "pat" + string(rune('a'+i%5))
		for _, a := range []expr.Action{expr.ConcreteAct("call", p), expr.ConcreteAct("perform", p)} {
			if err := en.Step(a); err != nil {
				t.Fatalf("step %s: %v", a, err)
			}
			if err := ref.Step(a); err != nil {
				t.Fatalf("ref step %s: %v", a, err)
			}
			if en.StateKey() != ref.StateKey() {
				t.Fatalf("states diverge after flush: %s vs %s", en.StateKey(), ref.StateKey())
			}
		}
	}
	if c.Stats().Flushes == 0 {
		t.Fatalf("expected at least one flush: %+v", c.Stats())
	}
}

// TestCacheConcurrentEngines: many goroutines drive private engines
// through one shared cache; run under -race this is the interning-table
// and memo-cache race check the CI soak job repeats.
func TestCacheConcurrentEngines(t *testing.T) {
	c := NewCache(1 << 10)
	e := parse.MustParse("all p: (call(p) - (any q: assist(p,q)) - perform(p))*")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			en := MustEngine(e)
			en.UseCache(c)
			p := "pat" + string(rune('0'+w%4)) // overlapping populations → shared states
			for i := 0; i < 50; i++ {
				for _, a := range []expr.Action{
					expr.ConcreteAct("call", p),
					expr.ConcreteAct("assist", p, "h"),
					expr.ConcreteAct("perform", p),
				} {
					if err := en.Step(a); err != nil {
						t.Errorf("worker %d step %s: %v", w, a, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.MemoHits == 0 {
		t.Fatalf("expected cross-engine memo hits: %+v", st)
	}
}
