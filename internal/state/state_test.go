package state

import (
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/parse"
)

func ca(name string, vals ...string) expr.Action { return expr.ConcreteAct(name, vals...) }

func mustStep(t *testing.T, en *Engine, a expr.Action) {
	t.Helper()
	if err := en.Step(a); err != nil {
		t.Fatalf("step %s: %v", a, err)
	}
}

func mustReject(t *testing.T, en *Engine, a expr.Action) {
	t.Helper()
	if en.Try(a) {
		t.Fatalf("action %s should be rejected", a)
	}
}

func TestAtomStateLifecycle(t *testing.T) {
	en := MustEngine(parse.MustParse("a"))
	if en.Final() {
		t.Error("initial atom state is not final")
	}
	mustReject(t, en, ca("b"))
	mustStep(t, en, ca("a"))
	if !en.Final() {
		t.Error("after a: final")
	}
	mustReject(t, en, ca("a")) // atoms fire once
}

func TestEmptyState(t *testing.T) {
	en := MustEngine(parse.MustParse("()"))
	if !en.Final() {
		t.Error("ε is final")
	}
	mustReject(t, en, ca("a"))
}

func TestOptionState(t *testing.T) {
	en := MustEngine(parse.MustParse("a?"))
	if !en.Final() {
		t.Error("option is final immediately")
	}
	mustStep(t, en, ca("a"))
	if !en.Final() {
		t.Error("and after taking the option")
	}
}

func TestSeqIterBoundaryAmbiguity(t *testing.T) {
	// (a - a)*: after two a's, the walker may be at the boundary (final)
	// or mid-second-iteration — both tracked simultaneously.
	en := MustEngine(parse.MustParse("(a - a)*"))
	mustStep(t, en, ca("a"))
	if en.Final() {
		t.Error("odd number of a's cannot be final")
	}
	mustStep(t, en, ca("a"))
	if !en.Final() {
		t.Error("even number of a's is final")
	}
	mustStep(t, en, ca("a"))
	if en.Final() {
		t.Error("back to odd")
	}
}

func TestMultCountsInstances(t *testing.T) {
	en := MustEngine(parse.MustParse("mult(3, a - b)"))
	for i := 0; i < 3; i++ {
		mustStep(t, en, ca("a"))
	}
	mustReject(t, en, ca("a")) // only 3 instances
	for i := 0; i < 3; i++ {
		mustStep(t, en, ca("b"))
	}
	if !en.Final() {
		t.Error("all instances complete")
	}
}

func TestParIterUnbounded(t *testing.T) {
	en := MustEngine(parse.MustParse("(a - b)#"))
	for i := 0; i < 10; i++ {
		mustStep(t, en, ca("a"))
	}
	for i := 0; i < 10; i++ {
		mustStep(t, en, ca("b"))
	}
	if !en.Final() {
		t.Error("ten interleaved instances complete")
	}
	mustReject(t, en, ca("b")) // no open instance left
	mustStep(t, en, ca("a"))   // but new ones can always start
}

func TestSyncOpenWorldRouting(t *testing.T) {
	// c is invisible to the left operand and flows through; the shared a
	// must satisfy both.
	en := MustEngine(parse.MustParse("(a - b) @ (c* - a)"))
	mustStep(t, en, ca("c"))
	mustStep(t, en, ca("c"))
	mustStep(t, en, ca("a"))
	mustReject(t, en, ca("c")) // right operand finished its c*
	mustStep(t, en, ca("b"))
	if !en.Final() {
		t.Error("both operands complete")
	}
}

func TestSyncRejectsForeignAction(t *testing.T) {
	en := MustEngine(parse.MustParse("a @ b"))
	mustReject(t, en, ca("zzz")) // not in α(x)
}

func TestAnyQCommitsLazily(t *testing.T) {
	// any p: x(p) - y(p): the choice of p is made by the first action.
	en := MustEngine(parse.MustParse("any p: x(p) - y(p)"))
	if !en.Try(ca("x", "v1")) || !en.Try(ca("x", "v2")) {
		t.Fatal("all values open initially")
	}
	mustStep(t, en, ca("x", "v1"))
	mustReject(t, en, ca("y", "v2")) // committed to v1
	mustStep(t, en, ca("y", "v1"))
	if !en.Final() {
		t.Error("complete")
	}
}

func TestAllQAnonymousBranchBinding(t *testing.T) {
	// all p: (b - x(p))?: the b belongs to an anonymous branch that is
	// bound to a value only when x arrives.
	en := MustEngine(parse.MustParse("all p: (b - x(p))?"))
	mustStep(t, en, ca("b"))
	mustStep(t, en, ca("b"))         // second anonymous branch
	mustStep(t, en, ca("x", "v1"))   // binds one of them
	mustStep(t, en, ca("x", "v2"))   // binds the other
	mustReject(t, en, ca("x", "v1")) // v1 already bound and finished
	mustReject(t, en, ca("x", "v3")) // no open anonymous branch left
	if !en.Final() {
		t.Error("two completed branches + untouched rest = complete")
	}
}

func TestAllQNonNullableNeverFinal(t *testing.T) {
	// Per Table 8 the parallel quantifier of a non-nullable body has an
	// empty complete-word set: untouched branches cannot contribute ε.
	en := MustEngine(parse.MustParse("all p: x(p)"))
	if en.Final() {
		t.Error("empty word must not be final")
	}
	mustStep(t, en, ca("x", "v1"))
	if en.Final() {
		t.Error("no word is ever final")
	}
	if !en.Valid() {
		t.Error("but partial words exist")
	}
}

func TestSyncQProjection(t *testing.T) {
	en := MustEngine(parse.MustParse("syncq p: (x(p) - y(p))*"))
	mustStep(t, en, ca("x", "v1"))
	mustStep(t, en, ca("x", "v2"))
	mustReject(t, en, ca("x", "v1")) // v1's projection expects y first
	mustStep(t, en, ca("y", "v1"))
	mustStep(t, en, ca("y", "v2"))
	if !en.Final() {
		t.Error("both projections complete")
	}
}

func TestConQSharedAlphabet(t *testing.T) {
	// conq p: (b? - x(p)?)? : every branch must accept every action; b is
	// shared, x(v) kills all other branches' words... except every branch
	// may stop anywhere (options), so x(v) is acceptable as long as other
	// branches treat it as... they cannot: x(v) is not in branch w's
	// language at all for w ≠ v.
	en := MustEngine(parse.MustParse("conq p: (b? - x(p)?)?"))
	mustStep(t, en, ca("b"))
	mustReject(t, en, ca("x", "v1"))
	if !en.Final() {
		t.Error("b alone is complete in every branch")
	}
}

func TestEngineResetAndSteps(t *testing.T) {
	en := MustEngine(parse.MustParse("a - b"))
	mustStep(t, en, ca("a"))
	if en.Steps() != 1 {
		t.Errorf("steps: %d", en.Steps())
	}
	en.Reset()
	if en.Steps() != 0 || en.Final() {
		t.Error("reset should restore the initial state")
	}
	mustStep(t, en, ca("a"))
}

func TestEngineRejectsNonConcrete(t *testing.T) {
	en := MustEngine(parse.MustParse("a"))
	if err := en.Step(expr.Act("a", expr.Prm("p"))); err == nil {
		t.Error("non-concrete action must be rejected")
	}
}

func TestNewEngineErrors(t *testing.T) {
	if _, err := NewEngine(nil); err == nil {
		t.Error("nil expression")
	}
	if _, err := NewEngine(expr.AtomNamed("x", expr.Prm("p"))); err == nil {
		t.Error("open expression")
	}
}

func TestVerdictString(t *testing.T) {
	if Illegal.String() != "illegal" || Partial.String() != "partial" || Complete.String() != "complete" {
		t.Error("verdict names")
	}
}

// --- properties ---------------------------------------------------------

// TestPropertyDeterminism: the state model is deterministic — replaying
// a word always yields the identical canonical state (the paper's
// explicit design goal vs. Petri nets and process algebras).
func TestPropertyDeterminism(t *testing.T) {
	sigma := []expr.Action{ca("a"), ca("b"), ca("x", "v1"), ca("x", "v2")}
	f := func(seed int64) bool {
		e := genFromSeed(seed)
		s1, s2 := Initial(e), Initial(e)
		k := uint64(seed)
		for i := 0; i < 6; i++ {
			k = k*2862933555777941757 + 3037000493
			a := sigma[int(k>>33)%len(sigma)]
			s1, s2 = Trans(s1, a), Trans(s2, a)
			if (s1 == nil) != (s2 == nil) {
				return false
			}
			if s1 == nil {
				return true
			}
			if s1.Key() != s2.Key() {
				t.Logf("divergence on %s after %s", e, a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCompressSoundness: a final+inert state must behave exactly
// like ε — final, and refusing every action.
func TestPropertyCompressSoundness(t *testing.T) {
	sigma := []expr.Action{ca("a"), ca("b"), ca("x", "v1")}
	f := func(seed int64) bool {
		e := genFromSeed(seed)
		s := Initial(e)
		k := uint64(seed)
		for i := 0; i < 5 && s != nil; i++ {
			k = k*2862933555777941757 + 3037000493
			s = Trans(s, sigma[int(k>>33)%len(sigma)])
		}
		if s == nil {
			return true
		}
		if s.Final() && s.inert() {
			for _, a := range sigma {
				if s.trans(a) != nil {
					t.Logf("inert state of %s accepted %s", e, a)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInitialValid: σ(x) is always a valid state (〈〉 ∈ Ψ(x)).
func TestPropertyInitialValid(t *testing.T) {
	f := func(seed int64) bool {
		return Initial(genFromSeed(seed)) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// genFromSeed builds a deterministic pseudo-random closed expression.
func genFromSeed(seed int64) *expr.Expr {
	s := uint64(seed)
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	var gen func(d int, params []string) *expr.Expr
	gen = func(d int, params []string) *expr.Expr {
		if d == 0 || next(4) == 0 {
			switch next(3) {
			case 0:
				return expr.AtomNamed([]string{"a", "b"}[next(2)])
			case 1:
				return expr.AtomNamed("x", expr.Val("v1"))
			default:
				if len(params) == 0 {
					return expr.AtomNamed("b")
				}
				return expr.AtomNamed("x", expr.Prm(params[next(len(params))]))
			}
		}
		switch next(12) {
		case 0:
			return expr.Option(gen(d-1, params))
		case 1:
			return expr.Seq(gen(d-1, params), gen(d-1, params))
		case 2:
			return expr.SeqIter(gen(d-1, params))
		case 3:
			return expr.Par(gen(d-1, params), gen(d-1, params))
		case 4:
			return expr.ParIter(gen(d-1, params))
		case 5:
			return expr.Or(gen(d-1, params), gen(d-1, params))
		case 6:
			return expr.And(gen(d-1, params), gen(d-1, params))
		case 7:
			return expr.Sync(gen(d-1, params), gen(d-1, params))
		case 8:
			return expr.Mult(2, gen(d-1, params))
		case 9:
			p := "p" + string(rune('0'+len(params)))
			return expr.AnyQ(p, gen(d-1, append(params, p)))
		case 10:
			p := "p" + string(rune('0'+len(params)))
			return expr.AllQ(p, expr.Option(gen(d-1, append(params, p))))
		default:
			p := "p" + string(rune('0'+len(params)))
			return expr.SyncQ(p, gen(d-1, append(params, p)))
		}
	}
	return gen(3, nil)
}
