package state

import "repro/internal/expr"

// atomState is the state of an atomic expression a: either the action is
// still pending or it has been traversed.
type atomState struct {
	atom expr.Action
	done bool
	key  string
}

func (s *atomState) Key() string {
	if s.key == "" {
		if s.done {
			s.key = "+" + s.atom.Key()
		} else {
			s.key = "-" + s.atom.Key()
		}
	}
	return s.key
}

func (s *atomState) Final() bool { return s.done }
func (s *atomState) Size() int   { return 1 }

func (s *atomState) trans(a expr.Action) State {
	if s.done || !s.atom.StrictMatch(a) {
		return nil
	}
	return &atomState{atom: s.atom, done: true}
}

func (s *atomState) subst(p, v string) State {
	na := s.atom.Subst(p, v)
	if na.Equal(s.atom) {
		return s
	}
	return &atomState{atom: na, done: s.done}
}

// inert: once traversed, an atom can never move again, regardless of
// substitutions. A pending atom may still fire after substitution.
func (s *atomState) inert() bool { return s.done }

func (s *atomState) internParts(c *Cache) State { return s }

// emptyState is the (single) state of the neutral expression ε.
type emptyState struct{}

var theEmptyState State = emptyState{}

func (emptyState) Key() string              { return "eps" }
func (emptyState) Final() bool              { return true }
func (emptyState) Size() int                { return 1 }
func (emptyState) trans(expr.Action) State  { return nil }
func (emptyState) subst(p, v string) State  { return theEmptyState }
func (emptyState) inert() bool              { return true }
func (emptyState) internParts(*Cache) State { return theEmptyState }

// orState is the state of a disjunction: the walker is in exactly one
// branch, but which one is not yet determined, so all still-valid branch
// states are tracked. Branches whose state dies are removed by ρ; when
// none remains the whole state is invalid.
type orState struct {
	kids []State
	key  string
}

func newOrState(kids []State) State {
	live := kids[:0]
	for _, k := range kids {
		if k != nil {
			live = append(live, k)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return &orState{kids: sortDedupStates(live)}
}

func (s *orState) Key() string {
	if s.key == "" {
		s.key = joinKeys("or", s.kids)
	}
	return s.key
}

func (s *orState) Final() bool {
	for _, k := range s.kids {
		if k.Final() {
			return true
		}
	}
	return false
}

func (s *orState) Size() int { return 1 + sumSizes(s.kids) }

func (s *orState) trans(a expr.Action) State {
	next := make([]State, 0, len(s.kids))
	for _, k := range s.kids {
		if nk := k.trans(a); nk != nil {
			next = append(next, compress(nk))
		}
	}
	return newOrState(next)
}

func (s *orState) subst(p, v string) State {
	return newOrState(substAll(s.kids, p, v))
}

func (s *orState) inert() bool { return allInert(s.kids) }

func (s *orState) internParts(c *Cache) State {
	return &orState{kids: canonAll(c, s.kids), key: s.Key()}
}

// andState is the state of a strict conjunction: every branch must accept
// every action; a single dying branch invalidates the whole state.
type andState struct {
	kids []State
	key  string
}

func newAndState(kids []State) State {
	for _, k := range kids {
		if k == nil {
			return nil
		}
	}
	return &andState{kids: kids}
}

func (s *andState) Key() string {
	if s.key == "" {
		s.key = joinKeys("and", s.kids)
	}
	return s.key
}

func (s *andState) Final() bool { return allFinal(s.kids) }
func (s *andState) Size() int   { return 1 + sumSizes(s.kids) }

func (s *andState) trans(a expr.Action) State {
	next := make([]State, len(s.kids))
	for i, k := range s.kids {
		nk := k.trans(a)
		if nk == nil {
			return nil
		}
		next[i] = compress(nk)
	}
	return &andState{kids: next}
}

func (s *andState) subst(p, v string) State {
	return newAndState(substAll(s.kids, p, v))
}

// inert: if any branch can never move again, no action can ever be
// accepted by the conjunction.
func (s *andState) inert() bool {
	for _, k := range s.kids {
		if k.inert() {
			return true
		}
	}
	return false
}

func (s *andState) internParts(c *Cache) State {
	return &andState{kids: canonAll(c, s.kids), key: s.Key()}
}
