package state

import (
	"sort"
	"strings"

	"repro/internal/expr"
)

// allQState is the state of a parallel quantifier "all p: y": the word is
// a shuffle of words belonging to branches for pairwise distinct values
// of p (Table 8: the infinite shuffle over Ω, which collapses to a union
// of finite shuffles when — and only when — every concretion of y is
// nullable).
//
// A state is a set of alternatives. Each alternative records
//
//   - named branches: value → branch state, for branches whose value the
//     word has pinned down (an action mentioned the value in a parameter
//     position in a way that mattered);
//   - anonymous branches: branch states with p still unbound, for
//     branches that have consumed actions matching parameter-free atoms
//     only. Their value is some definite but not-yet-determined element
//     of Ω distinct from every named value and from the other anonymous
//     branches. An anonymous branch may later be *bound* to a value that
//     first appears in an action, which moves it into the named set —
//     one alternative per possible binding, because a different
//     anonymous branch (or a fresh one) could equally own that value.
//
// Binding soundness: consuming an action with p free can treat the
// action differently than a bound branch would — most visibly inside a
// coupling, where an action passes an operand by exactly when it is
// outside the operand's alphabet, and binding p to one of the action's
// values can move it inside. An anonymous branch that consumed such an
// action has therefore committed to "p is none of those values"; the
// branch records them as excluded and can never be bound to them (the
// bound-now variant of the same consumption is explored as its own
// alternative at that action). The differential fuzzer caught exactly
// this: a branch consumed x(v2) with x($p0) passed by, was later bound
// to v2, and the engine over-accepted.
//
// Untouched branches (all remaining values) contribute the empty word and
// need no representation beyond the nullability flag.
type allQState struct {
	e        *expr.Expr
	strictA  *expr.Alphabet // α of the body with p free: parameter-free atoms
	nullable bool           // ϕ(σ(y)): whether every untouched branch may stay empty
	alts     []allQAlt
	key      string
}

type allQAlt struct {
	named branchSet    // sorted by value
	anon  []anonBranch // sorted by key
}

// anonBranch is one branch with p unbound, together with the values its
// consumption history has ruled out as bindings.
type anonBranch struct {
	st   State
	excl []string // sorted
}

func (ab anonBranch) key() string {
	if len(ab.excl) == 0 {
		return ab.st.Key()
	}
	return ab.st.Key() + "!" + strings.Join(ab.excl, ",")
}

// mergeExcl unions two exclusion sets into a new canonical (deduped,
// sorted) set; the inputs are not modified. Both quantifier states that
// track excluded bindings (allQ anonymous branches, anyQ's generic
// branch) build their sets through this one helper so their Key()s stay
// comparable.
func mergeExcl(excl, vals []string) []string {
	if len(vals) == 0 {
		return excl
	}
	out := append([]string(nil), excl...)
	for _, v := range vals {
		if !containsStr(out, v) {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func sortAnon(abs []anonBranch) []anonBranch {
	sort.Slice(abs, func(i, j int) bool { return abs[i].key() < abs[j].key() })
	return abs
}

func anonStates(abs []anonBranch) []State {
	out := make([]State, len(abs))
	for i, ab := range abs {
		out[i] = ab.st
	}
	return out
}

func (a allQAlt) key() string {
	var b strings.Builder
	b.WriteByte('{')
	b.WriteString(a.named.key())
	b.WriteByte('|')
	for i, ab := range a.anon {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ab.key())
	}
	b.WriteByte('}')
	return b.String()
}

func newAllQState(e *expr.Expr) State {
	return &allQState{
		e:        e,
		strictA:  expr.AlphabetOf(e.Kids[0]),
		nullable: Initial(e.Kids[0]).Final(),
		alts:     []allQAlt{{}},
	}
}

func (s *allQState) Key() string {
	if s.key == "" {
		keys := make([]string, len(s.alts))
		for i, a := range s.alts {
			keys[i] = a.key()
		}
		sortStrings(keys)
		s.key = "all<" + s.e.Key() + ">{" + strings.Join(keys, ";") + "}"
	}
	return s.key
}

// Final: some alternative must have every branch final, and the
// (infinitely many) untouched branches must be allowed to contribute the
// empty word, which per Table 8 requires 〈〉 ∈ Φ(y_ω) for all ω.
func (s *allQState) Final() bool {
	if !s.nullable {
		return false
	}
	for _, a := range s.alts {
		if a.named.allFinal() && allFinal(anonStates(a.anon)) {
			return true
		}
	}
	return false
}

func (s *allQState) Size() int {
	n := 1
	for _, a := range s.alts {
		n += a.named.size() + sumSizes(anonStates(a.anon))
	}
	return n
}

func (s *allQState) trans(act expr.Action) State {
	p := s.e.Param
	template := Initial(s.e.Kids[0])
	templateKey := template.Key()
	// Values that some $p pattern of the body matches act under: binding
	// them is what an anonymous consumption of act rules out.
	taint := s.strictA.BindingMatches(p, act)
	// Cache of σ(y_v) keys for the branch-release optimization below.
	freshKeys := make(map[string]string)
	freshKey := func(v string) string {
		k, ok := freshKeys[v]
		if !ok {
			k = template.subst(p, v).Key()
			freshKeys[v] = k
		}
		return k
	}
	var next []allQAlt
	seen := make(map[string]bool)
	add := func(a allQAlt) {
		// ρ, branch release: a named branch whose state equals a fresh
		// branch for its value is indistinguishable from an untouched
		// one (it contributed only complete rounds) and is dropped — a
		// later action mentioning the value forks it again identically.
		// Anonymous branches equal to the template are untouched by
		// definition; final inert ones can never act again and their
		// finality does not constrain anything, so both kinds drop. (The
		// infinite universe keeps dropping sound even for branches with
		// exclusions: an untouched branch can stand for any value never
		// mentioned at all.)
		// Copy before filtering: the incoming slices may alias the
		// predecessor state's (immutable) branch sets.
		named := make(branchSet, 0, len(a.named))
		for _, b := range a.named {
			st := compress(b.st)
			if st.Key() == freshKey(b.val) {
				continue
			}
			named = append(named, branch{b.val, st})
		}
		a.named = named.canonical()
		anon := make([]anonBranch, 0, len(a.anon))
		for _, m := range a.anon {
			if m.st.Key() == templateKey {
				continue
			}
			if m.st.Final() && m.st.inert() {
				continue
			}
			anon = append(anon, m)
		}
		a.anon = sortAnon(anon)
		k := a.key()
		if !seen[k] {
			seen[k] = true
			next = append(next, a)
		}
	}

	for _, alt := range s.alts {
		fresh := newValues(act, alt.named)

		// (1) An existing named branch consumes the action.
		for i, b := range alt.named {
			if !branchCanAct(b.val, act, s.strictA) {
				continue // the action cannot belong to this branch's word
			}
			nst := b.st.trans(act)
			if nst == nil {
				continue
			}
			named := make(branchSet, len(alt.named))
			copy(named, alt.named)
			named[i] = branch{b.val, nst}
			add(allQAlt{named: named, anon: alt.anon})
		}

		// (2) An existing anonymous branch consumes the action...
		for i, m := range alt.anon {
			if i > 0 && alt.anon[i].key() == alt.anon[i-1].key() {
				continue // interchangeable instances
			}
			// (2a) ... without binding its value. Consuming with p free
			// commits the branch to being none of the taint values.
			if nm := m.st.trans(act); nm != nil {
				anon := make([]anonBranch, len(alt.anon))
				copy(anon, alt.anon)
				anon[i] = anonBranch{st: compress(nm), excl: mergeExcl(m.excl, taint)}
				add(allQAlt{named: alt.named, anon: anon})
			}
			// (2b) ... by binding its value to a newly mentioned one —
			// unless the branch's history has excluded that value.
			for _, v := range fresh {
				if containsStr(m.excl, v) {
					continue
				}
				nm := m.st.subst(p, v).trans(act)
				if nm == nil {
					continue
				}
				anon := make([]anonBranch, 0, len(alt.anon)-1)
				anon = append(anon, alt.anon[:i]...)
				anon = append(anon, alt.anon[i+1:]...)
				named := make(branchSet, len(alt.named), len(alt.named)+1)
				copy(named, alt.named)
				named = append(named, branch{v, nm})
				add(allQAlt{named: named, anon: anon})
			}
		}

		// (3) A fresh branch starts with this action...
		// (3a) ... anonymously (matching a parameter-free atom).
		if nm := template.trans(act); nm != nil {
			anon := make([]anonBranch, len(alt.anon), len(alt.anon)+1)
			copy(anon, alt.anon)
			anon = append(anon, anonBranch{st: compress(nm), excl: append([]string(nil), taint...)})
			add(allQAlt{named: alt.named, anon: anon})
		}
		// (3b) ... bound to a newly mentioned value.
		for _, v := range fresh {
			nm := template.subst(p, v).trans(act)
			if nm == nil {
				continue
			}
			named := make(branchSet, len(alt.named), len(alt.named)+1)
			copy(named, alt.named)
			named = append(named, branch{v, nm})
			add(allQAlt{named: named, anon: alt.anon})
		}
	}
	if len(next) == 0 {
		return nil
	}
	return &allQState{e: s.e, strictA: s.strictA, nullable: s.nullable, alts: next}
}

func (s *allQState) subst(p, v string) State {
	if !s.e.HasFreeParam(p) {
		return s
	}
	ne := s.e.Subst(p, v)
	alts := make([]allQAlt, len(s.alts))
	for i, a := range s.alts {
		anon := make([]anonBranch, len(a.anon))
		for j, ab := range a.anon {
			anon[j] = anonBranch{st: ab.st.subst(p, v), excl: ab.excl}
		}
		alts[i] = allQAlt{
			named: a.named.subst(p, v).canonical(),
			anon:  sortAnon(anon),
		}
	}
	return &allQState{e: ne, strictA: expr.AlphabetOf(ne.Kids[0]), nullable: s.nullable, alts: alts}
}

func (s *allQState) inert() bool { return false }

func (s *allQState) internParts(c *Cache) State {
	alts := make([]allQAlt, len(s.alts))
	for i, a := range s.alts {
		anon := make([]anonBranch, len(a.anon))
		for j, ab := range a.anon {
			anon[j] = anonBranch{st: c.Canon(ab.st), excl: ab.excl}
		}
		alts[i] = allQAlt{named: a.named.internParts(c), anon: anon}
	}
	return &allQState{e: s.e, strictA: s.strictA, nullable: s.nullable, alts: alts, key: s.Key()}
}
