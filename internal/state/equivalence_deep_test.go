package state

import (
	"testing"

	"repro/internal/expr"
)

// Deeper differential coverage: nested quantifiers, two-parameter atoms,
// quantifiers under iterations and couplings — the shapes the paper's
// figures actually use. All compared exhaustively against the oracle.

func atom2(name, p, q string) *expr.Expr {
	return expr.AtomNamed(name, expr.Prm(p), expr.Prm(q))
}

func TestEquivalenceTwoParameterAtoms(t *testing.T) {
	sigma := acts("x(v1,w1)", "x(v1,w2)", "x(v2,w1)", "y(v1,w1)", "y(v2,w2)")
	cases := []*expr.Expr{
		// any-any: both parameters fixed by the first action.
		expr.AnyQ("p", expr.AnyQ("q", expr.Seq(atom2("x", "p", "q"), atom2("y", "p", "q")))),
		// all-any: per first parameter one branch, each fixing its q.
		expr.AllQ("p", expr.Option(expr.AnyQ("q", expr.Seq(atom2("x", "p", "q"), atom2("y", "p", "q"))))),
		// any-all: one p, parallel over q.
		expr.AnyQ("p", expr.AllQ("q", expr.Option(atom2("x", "p", "q")))),
		// syncq over first position with iteration.
		expr.SyncQ("p", expr.SeqIter(expr.AnyQ("q", atom2("x", "p", "q")))),
	}
	for _, e := range cases {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			checkAgainstOracle(t, e, sigma, 3)
		})
	}
}

func TestEquivalenceQuantifierUnderIteration(t *testing.T) {
	sigma := acts("x(v1)", "x(v2)", "y(v1)", "y(v2)")
	xp := expr.AtomNamed("x", expr.Prm("p"))
	yp := expr.AtomNamed("y", expr.Prm("p"))
	cases := []*expr.Expr{
		expr.SeqIter(expr.AnyQ("p", expr.Seq(xp, yp))),
		expr.SeqIter(expr.AnyQ("p", xp)),
		expr.AllQ("p", expr.SeqIter(expr.Seq(xp, yp))),
		expr.Option(expr.AllQ("p", expr.Option(expr.Seq(xp, yp)))),
	}
	for _, e := range cases {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			checkAgainstOracle(t, e, sigma, 4)
		})
	}
}

func TestEquivalenceQuantifierUnderCoupling(t *testing.T) {
	sigma := acts("x(v1)", "x(v2)", "y(v1)", "b")
	xp := expr.AtomNamed("x", expr.Prm("p"))
	yp := expr.AtomNamed("y", expr.Prm("p"))
	cases := []*expr.Expr{
		expr.Sync(
			expr.AllQ("p", expr.Option(expr.Seq(xp, yp))),
			expr.SeqIter(expr.AnyQ("p", xp)),
		),
		expr.Sync(
			expr.AnyQ("p", expr.Seq(xp, yp)),
			expr.SeqIter(b),
		),
		expr.And(
			expr.AllQ("p", expr.Option(xp)),
			expr.AllQ("p", expr.Option(xp)),
		),
	}
	for _, e := range cases {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			checkAgainstOracle(t, e, sigma, 4)
		})
	}
}

func TestEquivalenceMultWithQuantifiers(t *testing.T) {
	sigma := acts("x(v1)", "x(v2)", "y(v1)", "y(v2)")
	xp := expr.AtomNamed("x", expr.Prm("p"))
	yp := expr.AtomNamed("y", expr.Prm("p"))
	// The Fig 6 inner shape at capacity 2.
	e := expr.Mult(2, expr.SeqIter(expr.AnyQ("p", expr.Seq(xp, yp))))
	checkAgainstOracle(t, e, sigma, 4)
}

func TestEquivalenceAnonymousBranchAlternatives(t *testing.T) {
	// The hardest allQ shape: a parameter-free prefix shared by all
	// branches creates anonymous branches whose later binding is
	// ambiguous across alternatives.
	sigma := acts("b", "x(v1)", "x(v2)")
	xp := expr.AtomNamed("x", expr.Prm("p"))
	cases := []*expr.Expr{
		expr.AllQ("p", expr.Option(expr.Seq(b, xp))),
		expr.AllQ("p", expr.Option(expr.Seq(b, expr.Option(xp)))),
		expr.AllQ("p", expr.Option(expr.Seq(expr.SeqIter(b), xp))),
		expr.AllQ("p", expr.Option(expr.Par(b, xp))),
	}
	for _, e := range cases {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			checkAgainstOracle(t, e, sigma, 4)
		})
	}
}

// TestEquivalenceFigureSkeletons: reduced versions of the paper's actual
// figures, small enough for exhaustive comparison.
func TestEquivalenceFigureSkeletons(t *testing.T) {
	sigma := acts("prepare(v1,s)", "call(v1,s)", "perform(v1,s)", "call(v1,e)")
	prepare := expr.AtomNamed("prepare", expr.Prm("p"), expr.Prm("x"))
	call := expr.AtomNamed("call", expr.Prm("p"), expr.Prm("x"))
	perform := expr.AtomNamed("perform", expr.Prm("p"), expr.Prm("x"))
	fig3 := expr.AllQ("p", expr.SeqIter(expr.Or(
		expr.ParIter(expr.AnyQ("x", prepare)),
		expr.AnyQ("x", expr.Seq(call, perform)),
	)))
	checkAgainstOracle(t, fig3, sigma, 4)

	fig6 := expr.AllQ("x", expr.Mult(2, expr.SeqIter(
		expr.AnyQ("p", expr.Seq(call, perform)))))
	checkAgainstOracle(t, fig6, sigma, 4)
}
