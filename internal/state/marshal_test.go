package state

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/parse"
)

// marshalCases cover every state node type: atoms, disjunction,
// conjunction, sequence, iterations, parallel composition, multipliers,
// synchronization and all four quantifiers.
var marshalCases = []struct {
	src  string
	word []string // driven prefix before each snapshot check
}{
	{"a", []string{"a"}},
	{"a - b - c", []string{"a", "b"}},
	{"(a - b)*", []string{"a", "b", "a"}},
	{"a | b - c", []string{"b"}},
	{"(a - b)# & (a | b)*", []string{"a", "a", "b"}},
	{"a || b || c", []string{"b", "a"}},
	{"(a - b?)#", []string{"a", "a", "b"}},
	{"mult(3, a - b)", []string{"a", "a", "b"}},
	{"(a - b) @ (c* - a)", []string{"c", "c", "a"}},
	{"a - (b | c)*", []string{"a", "b", "c"}},
	{"any p: lock(p) - unlock(p)", []string{"lock(x)"}},
	{"all p: (call(p) - perform(p))*", []string{"call(alice)", "call(bob)", "perform(alice)"}},
	{"syncq p: (x(p) - y(p))*", []string{"x(u)", "x(v)", "y(u)"}},
	{"conq p: (b? - x(p)?)?", []string{"b"}},
	{"all p: (call(p) - (any p: perform(p)))*", []string{"call(a1)", "perform(a1)", "call(a2)"}},
	{"(all p: (x(p))*) @ (all q: (y(q))*)", []string{"x(m)", "y(m)", "x(n)"}},
}

// probe actions exercised against original and restored engines.
func probes(e *expr.Expr, word []string) []expr.Action {
	var out []expr.Action
	seen := map[string]bool{}
	add := func(a expr.Action) {
		if !seen[a.Key()] {
			seen[a.Key()] = true
			out = append(out, a)
		}
	}
	for _, p := range e.Actions() {
		if p.Concrete() {
			add(p)
		}
		// Instantiate parameterized atoms with the values of the word plus
		// a fresh one.
		for _, v := range append(valuesOf(word), "fresh") {
			inst := p
			for name := range p.Params() {
				inst = inst.Subst(name, v)
			}
			if inst.Concrete() {
				add(inst)
			}
		}
	}
	return out
}

func valuesOf(word []string) []string {
	var out []string
	for _, w := range word {
		a, err := expr.ParseActionString(w)
		if err != nil {
			continue
		}
		out = append(out, a.Values()...)
	}
	return out
}

// TestSnapshotRoundTrip: marshal → restore reproduces the exact state at
// every prefix of each driven word, judged by state key, finality, step
// count and the permissibility of every probe action.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range marshalCases {
		t.Run(tc.src, func(t *testing.T) {
			e := parse.MustParse(tc.src)
			en := MustEngine(e)
			check := func() {
				data, err := en.MarshalState()
				if err != nil {
					t.Fatalf("marshal after %d steps: %v", en.Steps(), err)
				}
				re, err := RestoreEngine(e, data)
				if err != nil {
					t.Fatalf("restore after %d steps: %v", en.Steps(), err)
				}
				if got, want := re.StateKey(), en.StateKey(); got != want {
					t.Fatalf("state key mismatch after %d steps:\n got  %s\n want %s", en.Steps(), got, want)
				}
				if re.Steps() != en.Steps() {
					t.Fatalf("steps: got %d want %d", re.Steps(), en.Steps())
				}
				if re.Final() != en.Final() {
					t.Fatalf("final: got %v want %v", re.Final(), en.Final())
				}
				for _, p := range probes(e, tc.word) {
					if got, want := re.Try(p), en.Try(p); got != want {
						t.Fatalf("try %s after %d steps: got %v want %v", p, en.Steps(), got, want)
					}
				}
			}
			check()
			for _, w := range tc.word {
				a, err := expr.ParseActionString(w)
				if err != nil {
					t.Fatal(err)
				}
				if err := en.Step(a); err != nil {
					t.Fatalf("step %s: %v", w, err)
				}
				check()
			}
		})
	}
}

// TestSnapshotContinuation: a restored engine keeps accepting the rest of
// the word exactly like the original.
func TestSnapshotContinuation(t *testing.T) {
	e := parse.MustParse("all p: (call(p) - perform(p))*")
	en := MustEngine(e)
	for _, w := range []string{"call(a)", "call(b)", "perform(a)"} {
		if err := en.Step(expr.ConcreteAct("call")); err == nil {
			t.Fatal("bare call should be rejected")
		}
		a, _ := expr.ParseActionString(w)
		if err := en.Step(a); err != nil {
			t.Fatal(err)
		}
	}
	data, err := en.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	re, err := RestoreEngine(e, data)
	if err != nil {
		t.Fatal(err)
	}
	// b is still mid-round: call(b) must be rejected, perform(b) accepted.
	if re.Try(expr.ConcreteAct("call", "b")) {
		t.Error("call(b) should be impermissible after restore")
	}
	if err := re.Step(expr.ConcreteAct("perform", "b")); err != nil {
		t.Errorf("perform(b) after restore: %v", err)
	}
	if err := re.Step(expr.ConcreteAct("call", "b")); err != nil {
		t.Errorf("call(b) after perform(b): %v", err)
	}
}

// TestSnapshotWrongExpr: restoring against a different expression fails.
func TestSnapshotWrongExpr(t *testing.T) {
	e := parse.MustParse("a - b")
	en := MustEngine(e)
	data, err := en.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreEngine(parse.MustParse("b - a"), data); err == nil {
		t.Fatal("restore against a different expression should fail")
	}
}

// TestSnapshotGarbage: corrupt snapshots are rejected, not crashed on.
func TestSnapshotGarbage(t *testing.T) {
	e := parse.MustParse("a")
	for _, data := range []string{"", "{", `{"expr":"a","state":{"t":"nope"}}`, `{"expr":"a","state":null}`} {
		if _, err := RestoreEngine(e, []byte(data)); err == nil {
			t.Errorf("restore of %q should fail", data)
		}
	}
}
