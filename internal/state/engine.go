package state

import (
	"errors"
	"fmt"

	"repro/internal/expr"
)

// Verdict classifies a word, following the int convention of Fig 9.
type Verdict int

const (
	// Illegal: the word is not even a partial word.
	Illegal Verdict = 0
	// Partial: the word is a partial but not a complete word.
	Partial Verdict = 1
	// Complete: the word is a complete word of the expression.
	Complete Verdict = 2
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Illegal:
		return "illegal"
	case Partial:
		return "partial"
	case Complete:
		return "complete"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// ErrRejected is returned by Engine.Step for an action that is not
// currently permissible.
var ErrRejected = errors.New("state: action rejected")

// Engine drives the operational semantics of one closed interaction
// expression: it holds the current state and implements the word problem
// and the action problem of Sec 5 (Fig 9). Engine is not safe for
// concurrent use; the interaction manager adds locking on top. With a
// Cache attached (UseCache), states are hash-consed and transitions and
// permissibility probes are memoized; a Cache may be shared by many
// engines, which then also share state structure.
type Engine struct {
	e     *expr.Expr
	cur   State
	steps int
	cache *Cache
}

// NewEngine creates an engine in the initial state σ(e). The expression
// must be closed (no free parameters).
func NewEngine(e *expr.Expr) (*Engine, error) {
	if e == nil {
		return nil, errors.New("state: nil expression")
	}
	if !e.Closed() {
		return nil, fmt.Errorf("state: expression has free parameters: %s", e)
	}
	return &Engine{e: e, cur: Initial(e)}, nil
}

// MustEngine is NewEngine that panics on error, for tests and examples.
func MustEngine(e *expr.Expr) *Engine {
	en, err := NewEngine(e)
	if err != nil {
		panic(err)
	}
	return en
}

// UseCache attaches (or, with nil, detaches) a hash-consing and
// transition-memo cache. The current state is canonicalized immediately
// so subsequent transitions run against interned structure. Attaching
// never changes behaviour, only cost — the laws and differential tests
// check exactly this.
func (en *Engine) UseCache(c *Cache) {
	en.cache = c
	if c != nil && en.cur != nil {
		en.cur = c.Canon(en.cur)
	}
}

// Cache returns the attached cache, if any.
func (en *Engine) Cache() *Cache { return en.cache }

// transition applies τ̂ through the memo cache when one is attached.
func (en *Engine) transition(s State, a expr.Action) State {
	if en.cache != nil {
		return en.cache.Transition(s, a)
	}
	return Trans(s, a)
}

// Expr returns the expression the engine executes.
func (en *Engine) Expr() *expr.Expr { return en.e }

// Reset returns the engine to the initial state.
func (en *Engine) Reset() {
	en.cur = Initial(en.e)
	if en.cache != nil {
		en.cur = en.cache.Canon(en.cur)
	}
	en.steps = 0
}

// Valid reports ψ of the current state: whether the actions consumed so
// far form a partial word. A live engine only leaves the valid states via
// Force; Step refuses invalidating actions.
func (en *Engine) Valid() bool { return en.cur != nil }

// Final reports ϕ of the current state: whether the consumed actions form
// a complete word.
func (en *Engine) Final() bool { return Final(en.cur) }

// StateSize returns the size of the current state, the complexity measure
// of Sec 6.
func (en *Engine) StateSize() int { return Size(en.cur) }

// Steps returns the number of actions consumed so far.
func (en *Engine) Steps() int { return en.steps }

// Try reports whether the concrete action is currently permissible: the
// tentative transition of the action problem (Sec 5). The state is not
// changed.
func (en *Engine) Try(a expr.Action) bool {
	if !a.Concrete() {
		return false
	}
	return en.transition(en.cur, a) != nil
}

// Step consumes the action if it is permissible and returns ErrRejected
// otherwise (leaving the state unchanged), mirroring the action() loop of
// Fig 9.
func (en *Engine) Step(a expr.Action) error {
	if !a.Concrete() {
		return fmt.Errorf("state: non-concrete action %s: %w", a, ErrRejected)
	}
	next := en.transition(en.cur, a)
	if next == nil {
		return fmt.Errorf("state: %s after %d steps: %w", a, en.steps, ErrRejected)
	}
	en.cur = next
	en.steps++
	return nil
}

// Word solves the word problem for w from the initial state, without
// disturbing the engine's current state: it returns Complete, Partial or
// Illegal exactly as the word() function of Fig 9.
func (en *Engine) Word(w []expr.Action) Verdict {
	s := Initial(en.e)
	if en.cache != nil {
		s = en.cache.Canon(s)
	}
	for _, a := range w {
		s = en.transition(s, a)
		if s == nil {
			return Illegal
		}
	}
	if s.Final() {
		return Complete
	}
	return Partial
}

// StateKey returns the canonical key of the current state (diagnostics).
func (en *Engine) StateKey() string {
	if en.cur == nil {
		return "<invalid>"
	}
	return en.cur.Key()
}
