package state

import (
	"container/list"
	"sync"

	"repro/internal/expr"
)

// Hash-consing and transition memoization.
//
// The operational semantics re-derives structurally identical sub-state
// work constantly: a manager holding thousands of live workflow
// constraints walks its state term on every action, and most of that
// term is unchanged from the previous action (quantifier branch release
// even makes whole cycles of states recur exactly). A Cache removes the
// repeated work on two levels:
//
//   - hash-consing: states are interned in a structural-sharing table
//     keyed by their canonical Key, so identical sub-states — across
//     quantifier branches, parallel arms, and across distinct engines
//     sharing one Cache — are one object with a small integer identity.
//     Interned states form a DAG; because states are immutable,
//     transitions are copy-on-write against that DAG and a snapshot
//     shares structure with the live state instead of deep-copying it.
//
//   - memoization: the transition function τ̂ and the permissibility
//     probe are memoized in a bounded LRU keyed by (interned state ID,
//     action hash), hits confirmed by structural comparison against the
//     stored action. A hit turns a term walk into a map lookup;
//     rejections (successor = nil) are memoized too, which is what makes
//     repeated Try probes — the manager's subscription re-evaluation and
//     batch admission paths — almost free in steady state.
//
// A Cache is safe for concurrent use by multiple engines. Sharing one
// Cache across the managers of one process maximizes structural sharing
// ("many expressions, one table") at the cost of contention on one
// mutex; per-manager caches trade memory for isolation.

// DefaultMemoCapacity bounds the transition memo when NewCache is given
// a non-positive capacity.
const DefaultMemoCapacity = 1 << 16

// defaultInternCapacity bounds the interning table; overflowing it
// flushes both tables (see maybeFlushLocked).
const defaultInternCapacity = 1 << 20

// CacheStats reports the cache's traffic counters. All counters are
// cumulative; Nodes and MemoEntries are current sizes.
type CacheStats struct {
	Nodes         int    // live interned state nodes
	InternHits    uint64 // Canon calls resolved to an existing node
	InternMisses  uint64 // Canon calls that inserted a new node
	MemoEntries   int    // live memoized transitions
	MemoHits      uint64 // transitions served from the memo
	MemoMisses    uint64 // transitions derived by walking the term
	MemoEvictions uint64 // memo entries dropped by the LRU bound
	Flushes       uint64 // full-table resets after interning overflow
}

// internEntry is one canonical state node: the representative object and
// its small identity used as the memo key.
type internEntry struct {
	id  uint64
	key string
	st  State
}

// memoKey identifies one memoized transition: canonical state id plus
// the action's stable structural hash (expr.Action.Hash — no key string
// is built on the lookup path). Hash collisions are disambiguated by
// the structural comparison against memoEnt.act on every hit.
type memoKey struct {
	sid uint64
	ah  uint64
}

// memoEnt is one memo value. act is the exact action the entry was
// derived for (the collision guard); next == nil records a memoized
// rejection.
type memoEnt struct {
	k    memoKey
	act  expr.Action
	next State
}

// Cache is a hash-consing table plus a bounded transition memo.
type Cache struct {
	mu        sync.Mutex
	buckets   map[uint64][]*internEntry // expr.HashKey(state key) → chain
	byState   map[State]*internEntry    // identity fast path for canonical states
	nodes     int
	nextID    uint64 // monotone across flushes, so stale memo keys never alias
	internCap int

	memo    map[memoKey]*list.Element
	lru     *list.List // front = most recently used
	memoCap int

	stats CacheStats
}

// NewCache creates a cache whose transition memo holds at most memoCap
// entries (DefaultMemoCapacity if memoCap <= 0).
func NewCache(memoCap int) *Cache {
	if memoCap <= 0 {
		memoCap = DefaultMemoCapacity
	}
	return &Cache{
		buckets:   make(map[uint64][]*internEntry),
		byState:   make(map[State]*internEntry),
		internCap: defaultInternCapacity,
		memo:      make(map[memoKey]*list.Element),
		lru:       list.New(),
		memoCap:   memoCap,
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Nodes = c.nodes
	s.MemoEntries = c.lru.Len()
	return s
}

// Canon returns the canonical interned representative of s: a state with
// the same Key whose every sub-state is the one shared object the table
// holds for that structure. Canonicalizing nil (the invalid state) is
// nil.
func (c *Cache) Canon(s State) State {
	st, _ := c.canon(s)
	return st
}

// canon interns s (and, on a miss, its parts) and returns the canonical
// state with its identity.
func (c *Cache) canon(s State) (State, uint64) {
	if s == nil {
		return nil, 0
	}
	// Identity fast path: a state that IS the canonical representative
	// (an engine's current state after the first step, every interned
	// child) resolves without hashing or comparing its key string — this
	// keeps the memoized transition hit path O(1) in the term size.
	c.mu.Lock()
	if e, ok := c.byState[s]; ok {
		c.stats.InternHits++
		c.mu.Unlock()
		return e.st, e.id
	}
	c.mu.Unlock()
	k := s.Key() // materializes the key cache before the node is shared
	h := expr.HashKey(k)
	c.mu.Lock()
	if e := c.findLocked(h, k); e != nil {
		c.stats.InternHits++
		c.mu.Unlock()
		return e.st, e.id
	}
	// Flush on overflow BEFORE descending, so the node and the children
	// interned for it land in the same table generation (the cap is soft
	// by the size of one descent).
	c.maybeFlushLocked()
	c.mu.Unlock()
	// Miss: canonicalize the children outside the lock (each child looks
	// itself up, so an unchanged subtree stops descending at its first
	// interned node), then publish.
	cs := s.internParts(c)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.findLocked(h, k); e != nil {
		// Another goroutine interned the same structure first; its
		// representative wins so identity stays unique.
		c.stats.InternHits++
		return e.st, e.id
	}
	c.nextID++
	e := &internEntry{id: c.nextID, key: k, st: cs}
	c.buckets[h] = append(c.buckets[h], e)
	c.byState[cs] = e
	c.nodes++
	c.stats.InternMisses++
	return cs, e.id
}

func (c *Cache) findLocked(h uint64, k string) *internEntry {
	for _, e := range c.buckets[h] {
		if e.key == k {
			return e
		}
	}
	return nil
}

// maybeFlushLocked resets both tables when the interning table outgrows
// its bound. Eviction from a hash-consing table is delicate — memo
// entries reference node identities — so overflow drops everything at
// once: correctness is untouched (interning is an optimization) and the
// working set re-interns within a few transitions. nextID keeps
// counting, so memo keys minted before the flush can never collide with
// nodes minted after it.
func (c *Cache) maybeFlushLocked() {
	if c.nodes < c.internCap {
		return
	}
	c.buckets = make(map[uint64][]*internEntry)
	c.byState = make(map[State]*internEntry)
	c.nodes = 0
	c.memo = make(map[memoKey]*list.Element)
	c.lru = list.New()
	c.stats.Flushes++
}

// Transition is the memoized τ̂: it interns s, consults the memo for
// (state, action), and on a miss derives the successor by the ordinary
// term walk, interns it and records it. A nil result means the action is
// not permissible in s, exactly like Trans; nil results are memoized so
// repeated probes of an impermissible action cost one lookup.
func (c *Cache) Transition(s State, a expr.Action) State {
	if s == nil {
		return nil
	}
	cs, sid := c.canon(s)
	mk := memoKey{sid: sid, ah: a.Hash()}
	c.mu.Lock()
	if el, ok := c.memo[mk]; ok {
		if ent := el.Value.(*memoEnt); ent.act.Equal(a) {
			c.lru.MoveToFront(el)
			c.stats.MemoHits++
			next := ent.next
			c.mu.Unlock()
			return next
		}
		// Hash collision between distinct actions: fall through as a
		// miss; the store below replaces the colliding entry.
	}
	c.stats.MemoMisses++
	c.mu.Unlock()

	next := Trans(cs, a)
	if next != nil {
		next, _ = c.canon(next)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.memo[mk]; ok {
		if ent := el.Value.(*memoEnt); !ent.act.Equal(a) {
			// Evict the colliding entry in favour of the fresh result.
			c.lru.Remove(el)
			delete(c.memo, mk)
		} else {
			return next // another goroutine memoized the same transition
		}
	}
	el := c.lru.PushFront(&memoEnt{k: mk, act: a, next: next})
	c.memo[mk] = el
	for c.lru.Len() > c.memoCap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.memo, back.Value.(*memoEnt).k)
		c.stats.MemoEvictions++
	}
	return next
}

// Probe is the memoized permissibility test: whether a is currently
// permissible in s. It shares memo entries with Transition, so an
// admission probe immediately followed by the committed transition (the
// manager's batch path) pays for the term walk once.
func (c *Cache) Probe(s State, a expr.Action) bool {
	return c.Transition(s, a) != nil
}

// canonAll canonicalizes a slice of states, preserving order.
func canonAll(c *Cache, ss []State) []State {
	out := make([]State, len(ss))
	for i, s := range ss {
		out[i] = c.Canon(s)
	}
	return out
}

// canonAlts canonicalizes the states of a set of alternatives.
func canonAlts(c *Cache, alts [][]State) [][]State {
	out := make([][]State, len(alts))
	for i, alt := range alts {
		out[i] = canonAll(c, alt)
	}
	return out
}
