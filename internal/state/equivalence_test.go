package state

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/semantics"
)

// checkAgainstOracle verifies, for every word over sigma up to maxLen,
// that the engine's verdict equals the formal-semantics oracle's verdict.
// This is the correctness theorem of Sec 4 (ψ/ϕ track Ψ/Φ), checked on a
// bounded universe.
func checkAgainstOracle(t *testing.T, e *expr.Expr, sigma []expr.Action, maxLen int) {
	t.Helper()
	en := MustEngine(e)
	o := semantics.New(e, maxLen)
	var walk func(w semantics.Word)
	walk = func(w semantics.Word) {
		got := en.Word(w)
		want := Verdict(o.Verdict(w))
		if got != want {
			t.Fatalf("expr %s word %s: engine=%v oracle=%v", e, w, got, want)
		}
		if got == Illegal || len(w) == maxLen {
			// Ψ is prefix-closed, so extensions of illegal words stay
			// illegal on both sides; skip them for speed.
			return
		}
		for _, a := range sigma {
			walk(append(w[:len(w):len(w)], a))
		}
	}
	walk(nil)
}

func acts(names ...string) []expr.Action {
	out := make([]expr.Action, len(names))
	for i, n := range names {
		a, err := expr.ParseActionString(n)
		if err != nil {
			panic(err)
		}
		out[i] = a
	}
	return out
}

var (
	a = expr.AtomNamed("a")
	b = expr.AtomNamed("b")
	c = expr.AtomNamed("c")
	d = expr.AtomNamed("d")
)

func TestEquivalenceBasicOperators(t *testing.T) {
	sigma := acts("a", "b", "c")
	cases := []*expr.Expr{
		a,
		expr.Empty(),
		expr.Option(a),
		expr.Seq(a, b),
		expr.Seq(a, b, c),
		expr.Seq(expr.Option(a), b),
		expr.SeqIter(a),
		expr.SeqIter(expr.Seq(a, b)),
		expr.SeqIter(expr.Option(a)),
		expr.Par(a, b),
		expr.Par(expr.Seq(a, b), c),
		expr.Par(a, a),
		expr.ParIter(a),
		expr.ParIter(expr.Seq(a, b)),
		expr.Or(a, b),
		expr.Or(expr.Seq(a, b), expr.Seq(a, c)),
		expr.And(expr.Seq(a, b), expr.Seq(a, b)),
		expr.And(expr.Par(a, b), expr.Seq(a, b)),
		expr.Sync(expr.Seq(a, b), expr.Seq(a, c)),
		expr.Sync(expr.SeqIter(a), expr.Seq(b, a)),
		expr.Mult(2, a),
		expr.Mult(3, expr.Seq(a, b)),
		expr.Mult(2, expr.Or(a, b)),
		expr.Seq(expr.SeqIter(a), a), // ambiguity stress: a* - a
		expr.Par(expr.SeqIter(a), expr.SeqIter(a)),
		expr.And(expr.SeqIter(a), expr.Seq(a, a)),
		expr.Or(expr.Empty(), expr.Seq(a, b)),
		expr.Seq(expr.ParIter(a), b),
	}
	for _, e := range cases {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			checkAgainstOracle(t, e, sigma, 5)
		})
	}
}

func TestEquivalenceNonContextFree(t *testing.T) {
	// Φ((a-b-c)* & shuffle structure) — the paper's witness that
	// interaction expressions exceed context-free power uses conjunction
	// of iterations; we check the small prefix behaviour of
	// x = (a - b - c)* & (a* || b* || c*)-style expressions.
	e := expr.And(
		expr.ParIter(expr.Seq(a, b)),
		expr.SeqIter(expr.Or(a, b)),
	)
	checkAgainstOracle(t, e, acts("a", "b"), 6)
}

func TestEquivalenceParameterized(t *testing.T) {
	sigma := acts("x(v1)", "x(v2)", "y(v1)", "y(v2)")
	xp := expr.AtomNamed("x", expr.Prm("p"))
	yp := expr.AtomNamed("y", expr.Prm("p"))
	xv1 := expr.AtomNamed("x", expr.Val("v1"))
	cases := []*expr.Expr{
		expr.AnyQ("p", xp),
		expr.AnyQ("p", expr.Seq(xp, yp)),
		expr.AnyQ("p", expr.Seq(b, xp)),
		expr.AllQ("p", expr.Option(xp)),
		expr.AllQ("p", expr.Option(expr.Seq(xp, yp))),
		expr.AllQ("p", expr.SeqIter(xp)),
		expr.AllQ("p", expr.SeqIter(expr.Seq(xp, yp))),
		expr.ConQ("p", expr.Option(xp)),
		expr.SyncQ("p", expr.SeqIter(xp)),
		expr.SyncQ("p", expr.Seq(expr.Option(xp), expr.Option(yp))),
		expr.AnyQ("p", expr.Par(xp, yp)),
		expr.Seq(xv1, expr.AnyQ("p", yp)),
		expr.AnyQ("p", expr.AnyQ("q",
			expr.Seq(expr.AtomNamed("x", expr.Prm("p")), expr.AtomNamed("y", expr.Prm("q"))))),
	}
	for _, e := range cases {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			checkAgainstOracle(t, e, sigma, 4)
		})
	}
}

func TestEquivalenceQuantifiersWithPlainActions(t *testing.T) {
	// Mixed alphabets: quantified bodies containing parameter-free atoms
	// exercise the generic/anonymous branch machinery.
	sigma := acts("x(v1)", "x(v2)", "b")
	xp := expr.AtomNamed("x", expr.Prm("p"))
	cases := []*expr.Expr{
		expr.AnyQ("p", expr.Seq(b, xp)),
		expr.AnyQ("p", expr.Seq(xp, b)),
		expr.AllQ("p", expr.Option(expr.Seq(b, xp))),
		expr.AllQ("p", expr.Option(expr.Seq(xp, b))),
		expr.AllQ("p", expr.Option(expr.Or(b, xp))),
		expr.SyncQ("p", expr.Seq(expr.Option(b), expr.Option(xp))),
		expr.ConQ("p", expr.Seq(expr.Option(b), expr.Option(xp))),
	}
	for _, e := range cases {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			checkAgainstOracle(t, e, sigma, 4)
		})
	}
}

// --- randomized differential testing --------------------------------

type exprGen struct {
	rnd    *rand.Rand
	params []string
}

func (g *exprGen) atom() *expr.Expr {
	names := []string{"a", "b", "x", "y"}
	name := names[g.rnd.Intn(len(names))]
	// Parameterized atoms use one argument: value or bound parameter.
	switch g.rnd.Intn(3) {
	case 0:
		return expr.AtomNamed(name)
	case 1:
		vals := []string{"v1", "v2"}
		return expr.AtomNamed(name, expr.Val(vals[g.rnd.Intn(len(vals))]))
	default:
		if len(g.params) == 0 {
			return expr.AtomNamed(name)
		}
		p := g.params[g.rnd.Intn(len(g.params))]
		return expr.AtomNamed(name, expr.Prm(p))
	}
}

func (g *exprGen) gen(depth int) *expr.Expr {
	if depth <= 0 {
		return g.atom()
	}
	switch g.rnd.Intn(14) {
	case 0:
		return g.atom()
	case 1:
		return expr.Option(g.gen(depth - 1))
	case 2:
		return expr.Seq(g.gen(depth-1), g.gen(depth-1))
	case 3:
		return expr.SeqIter(g.gen(depth - 1))
	case 4:
		return expr.Par(g.gen(depth-1), g.gen(depth-1))
	case 5:
		return expr.ParIter(g.gen(depth - 1))
	case 6:
		return expr.Or(g.gen(depth-1), g.gen(depth-1))
	case 7:
		return expr.And(g.gen(depth-1), g.gen(depth-1))
	case 8:
		return expr.Sync(g.gen(depth-1), g.gen(depth-1))
	case 9:
		return expr.Mult(2, g.gen(depth-1))
	case 10:
		p := fmt.Sprintf("p%d", len(g.params))
		g.params = append(g.params, p)
		body := g.gen(depth - 1)
		g.params = g.params[:len(g.params)-1]
		return expr.AnyQ(p, body)
	case 11:
		p := fmt.Sprintf("p%d", len(g.params))
		g.params = append(g.params, p)
		body := g.gen(depth - 1)
		g.params = g.params[:len(g.params)-1]
		// Unrestricted parallel quantifiers mostly yield Φ = ∅; keep the
		// body optional half of the time so finality gets exercised.
		if g.rnd.Intn(2) == 0 {
			body = expr.Option(body)
		}
		return expr.AllQ(p, body)
	case 12:
		p := fmt.Sprintf("p%d", len(g.params))
		g.params = append(g.params, p)
		body := g.gen(depth - 1)
		g.params = g.params[:len(g.params)-1]
		return expr.SyncQ(p, body)
	default:
		p := fmt.Sprintf("p%d", len(g.params))
		g.params = append(g.params, p)
		body := g.gen(depth - 1)
		g.params = g.params[:len(g.params)-1]
		return expr.ConQ(p, body)
	}
}

// TestEquivalenceRandom cross-checks the operational semantics against
// the oracle on randomly generated expressions over random short words.
func TestEquivalenceRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized differential test skipped in -short mode")
	}
	rnd := rand.New(rand.NewSource(20010420)) // ICDE 2001
	sigma := acts("a", "b", "x(v1)", "x(v2)", "y(v1)")
	for i := 0; i < 400; i++ {
		g := &exprGen{rnd: rnd}
		e := g.gen(3)
		en := MustEngine(e)
		o := semantics.New(e, 5)
		// Random walks rather than full enumeration keeps runtime sane.
		for walk := 0; walk < 6; walk++ {
			var w semantics.Word
			for len(w) < 5 {
				w = append(w, sigma[rnd.Intn(len(sigma))])
				got := en.Word(w)
				want := Verdict(o.Verdict(w))
				if got != want {
					t.Fatalf("iter %d expr %s word %s: engine=%v oracle=%v",
						i, e, w, got, want)
				}
				if got == Illegal {
					break
				}
			}
		}
	}
}

var _ = d // referenced by later tests
