package state

import (
	"sort"
	"strings"

	"repro/internal/expr"
)

// parState is the state of an n-ary parallel composition y1 || ... || yn,
// the operator whose state the paper spells out in Sec 4: a set A of
// alternatives, each a tuple of operand states. A transition replaces
// each alternative with the variants in which exactly one operand
// consumed the action; ρ drops variants whose operand state died and
// deduplicates the rest.
type parState struct {
	alts [][]State
	key  string
}

func newParState(e *expr.Expr) State {
	kids := make([]State, len(e.Kids))
	for i, k := range e.Kids {
		kids[i] = Initial(k)
	}
	return &parState{alts: [][]State{kids}}
}

func altKey(alt []State) string {
	var b strings.Builder
	for i, s := range alt {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Key())
	}
	return b.String()
}

// dedupAlts removes duplicate alternatives (tuples compared slot-wise).
func dedupAlts(alts [][]State) [][]State {
	seen := make(map[string]bool, len(alts))
	out := alts[:0]
	for _, alt := range alts {
		k := altKey(alt)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, alt)
	}
	return out
}

func (s *parState) Key() string {
	if s.key == "" {
		keys := make([]string, len(s.alts))
		for i, alt := range s.alts {
			keys[i] = altKey(alt)
		}
		// Alternatives are kept in insertion order but the set semantics
		// requires order independence; sort the rendered keys.
		sortStrings(keys)
		s.key = "par{" + strings.Join(keys, ";") + "}"
	}
	return s.key
}

func (s *parState) Final() bool {
	for _, alt := range s.alts {
		if allFinal(alt) {
			return true
		}
	}
	return false
}

func (s *parState) Size() int {
	n := 1
	for _, alt := range s.alts {
		n += sumSizes(alt)
	}
	return n
}

func (s *parState) trans(a expr.Action) State {
	var next [][]State
	for _, alt := range s.alts {
		for i, kid := range alt {
			nk := kid.trans(a)
			if nk == nil {
				continue
			}
			nalt := make([]State, len(alt))
			copy(nalt, alt)
			nalt[i] = compress(nk)
			next = append(next, nalt)
		}
	}
	if len(next) == 0 {
		return nil
	}
	return &parState{alts: dedupAlts(next)}
}

func (s *parState) subst(p, v string) State {
	next := make([][]State, len(s.alts))
	for i, alt := range s.alts {
		next[i] = substAll(alt, p, v)
	}
	return &parState{alts: dedupAlts(next)}
}

func (s *parState) inert() bool {
	for _, alt := range s.alts {
		if !allInert(alt) {
			return false
		}
	}
	return true
}

func (s *parState) internParts(c *Cache) State {
	return &parState{alts: canonAlts(c, s.alts), key: s.Key()}
}

// multState is the state of a multiplier mult(n, y): exactly n
// indistinguishable concurrent instances of y. Alternatives hold the n
// instance states as a sorted multiset, which keeps the state-space
// explosion at "n multichoose k" instead of the 2^n a nested parallel
// composition of identical operands would produce — one of the practical
// optimizations ρ is responsible for in the paper.
type multState struct {
	alts [][]State // each sorted, length n
	key  string
}

func newMultState(e *expr.Expr) State {
	alt := make([]State, e.N)
	init := Initial(e.Kids[0])
	for i := range alt {
		alt[i] = init
	}
	return &multState{alts: [][]State{alt}}
}

func (s *multState) Key() string {
	if s.key == "" {
		keys := make([]string, len(s.alts))
		for i, alt := range s.alts {
			keys[i] = altKey(alt)
		}
		sortStrings(keys)
		s.key = "mult{" + strings.Join(keys, ";") + "}"
	}
	return s.key
}

func (s *multState) Final() bool {
	for _, alt := range s.alts {
		if allFinal(alt) {
			return true
		}
	}
	return false
}

func (s *multState) Size() int {
	n := 1
	for _, alt := range s.alts {
		n += sumSizes(alt)
	}
	return n
}

func (s *multState) trans(a expr.Action) State {
	var next [][]State
	for _, alt := range s.alts {
		for i, inst := range alt {
			// Identical instances are interchangeable: transitioning the
			// first of a run of equal states covers them all.
			if i > 0 && alt[i].Key() == alt[i-1].Key() {
				continue
			}
			ni := inst.trans(a)
			if ni == nil {
				continue
			}
			nalt := make([]State, len(alt))
			copy(nalt, alt)
			// ρ: finished instances become ε so alternatives that differ
			// only in which instance finished first collapse (the
			// multiplier must keep exactly N instances for finality, so
			// they are canonicalized rather than dropped).
			nalt[i] = compress(ni)
			next = append(next, sortStatesKeepDup(nalt))
		}
	}
	if len(next) == 0 {
		return nil
	}
	return &multState{alts: dedupAlts(next)}
}

func (s *multState) subst(p, v string) State {
	next := make([][]State, len(s.alts))
	for i, alt := range s.alts {
		next[i] = sortStatesKeepDup(substAll(alt, p, v))
	}
	return &multState{alts: dedupAlts(next)}
}

func (s *multState) inert() bool {
	for _, alt := range s.alts {
		if !allInert(alt) {
			return false
		}
	}
	return true
}

func (s *multState) internParts(c *Cache) State {
	return &multState{alts: canonAlts(c, s.alts), key: s.Key()}
}

// parIterState is the state of a parallel iteration y#: an unbounded
// number of concurrent instances, created lazily when an action starts a
// new traversal of y. Instances that are final and inert are dropped by
// ρ — they can never move again and a final instance never blocks
// finality — which keeps states of benign expressions small.
type parIterState struct {
	y    *expr.Expr
	alts [][]State // sorted multisets (possibly empty)
	key  string
}

func newParIterState(y *expr.Expr) State {
	return &parIterState{y: y, alts: [][]State{nil}}
}

func (s *parIterState) Key() string {
	if s.key == "" {
		keys := make([]string, len(s.alts))
		for i, alt := range s.alts {
			keys[i] = altKey(alt)
		}
		sortStrings(keys)
		s.key = "piter<" + s.y.Key() + ">{" + strings.Join(keys, ";") + "}"
	}
	return s.key
}

func (s *parIterState) Final() bool {
	for _, alt := range s.alts {
		if allFinal(alt) {
			return true
		}
	}
	return false
}

func (s *parIterState) Size() int {
	n := 1
	for _, alt := range s.alts {
		n += sumSizes(alt)
	}
	return n
}

// compactInstances applies the ρ optimization: final inert instances are
// semantically finished and are removed from the multiset.
func compactInstances(alt []State) []State {
	out := alt[:0]
	for _, in := range alt {
		if in.Final() && in.inert() {
			continue
		}
		out = append(out, in)
	}
	return out
}

func (s *parIterState) trans(a expr.Action) State {
	var next [][]State
	for _, alt := range s.alts {
		// An existing instance consumes the action...
		for i, inst := range alt {
			if i > 0 && alt[i].Key() == alt[i-1].Key() {
				continue
			}
			ni := inst.trans(a)
			if ni == nil {
				continue
			}
			nalt := make([]State, len(alt))
			copy(nalt, alt)
			nalt[i] = ni
			next = append(next, sortStatesKeepDup(compactInstances(nalt)))
		}
		// ... or a fresh instance starts with it.
		if ni := Initial(s.y).trans(a); ni != nil {
			nalt := make([]State, len(alt), len(alt)+1)
			copy(nalt, alt)
			nalt = append(nalt, ni)
			next = append(next, sortStatesKeepDup(compactInstances(nalt)))
		}
	}
	if len(next) == 0 {
		return nil
	}
	return &parIterState{y: s.y, alts: dedupAlts(next)}
}

func (s *parIterState) subst(p, v string) State {
	if !s.y.HasFreeParam(p) {
		return s
	}
	next := make([][]State, len(s.alts))
	for i, alt := range s.alts {
		next[i] = sortStatesKeepDup(substAll(alt, p, v))
	}
	return &parIterState{y: s.y.Subst(p, v), alts: dedupAlts(next)}
}

// inert: a fresh instance can always be started, so a parallel iteration
// is only inert if even a fresh σ(y) could never move — conservatively
// reported as false.
func (s *parIterState) inert() bool { return false }

func (s *parIterState) internParts(c *Cache) State {
	return &parIterState{y: s.y, alts: canonAlts(c, s.alts), key: s.Key()}
}

func sortStrings(ss []string) { sort.Strings(ss) }
