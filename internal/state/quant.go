package state

import (
	"sort"
	"strings"

	"repro/internal/expr"
)

// branch is one value-instantiated branch of a quantifier state.
type branch struct {
	val string
	st  State
}

// branchCanAct reports whether the branch for value v can possibly
// consume the action: its atoms are the body's atoms with p := v, so a
// match requires either v among the action's values (a p-atom) or a
// parameter-free atom of the body (strictAlpha). Used to skip the
// overwhelming majority of branch transition attempts in uniformly
// quantified expressions.
func branchCanAct(v string, a expr.Action, strictAlpha *expr.Alphabet) bool {
	for _, arg := range a.Args {
		if !arg.Param && arg.Name == v {
			return true
		}
	}
	return strictAlpha.Contains(a)
}

type branchSet []branch

func (bs branchSet) find(v string) (State, bool) {
	for _, b := range bs {
		if b.val == v {
			return b.st, true
		}
	}
	return nil, false
}

func (bs branchSet) canonical() branchSet {
	sort.Slice(bs, func(i, j int) bool { return bs[i].val < bs[j].val })
	return bs
}

func (bs branchSet) key() string {
	var b strings.Builder
	for i, br := range bs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(br.val)
		b.WriteByte('=')
		b.WriteString(br.st.Key())
	}
	return b.String()
}

func (bs branchSet) allFinal() bool {
	for _, b := range bs {
		if !b.st.Final() {
			return false
		}
	}
	return true
}

func (bs branchSet) size() int {
	n := 0
	for _, b := range bs {
		n += b.st.Size()
	}
	return n
}

func (bs branchSet) subst(p, v string) branchSet {
	out := make(branchSet, len(bs))
	for i, b := range bs {
		out[i] = branch{b.val, b.st.subst(p, v)}
	}
	return out
}

// internParts canonicalizes every branch state, preserving order.
func (bs branchSet) internParts(c *Cache) branchSet {
	out := make(branchSet, len(bs))
	for i, b := range bs {
		out[i] = branch{b.val, c.Canon(b.st)}
	}
	return out
}

// newValues returns the concrete values of a that have no branch yet.
func newValues(a expr.Action, touched branchSet) []string {
	var out []string
	for _, v := range a.Values() {
		if _, ok := touched.find(v); ok {
			continue
		}
		if !containsStr(out, v) {
			out = append(out, v)
		}
	}
	return out
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// --- disjunction quantifier ("any p: y") ------------------------------
//
// Exactly one value of p is chosen and the entire word belongs to that
// value's branch. The state keeps one branch per value the word has
// committed to so far (they all consumed the whole word) plus a generic
// branch with p unbound representing every value not yet mentioned.
// An action mentioning a fresh value v forks a new branch from the
// current generic state with p bound to v.
type anyQState struct {
	e       *expr.Expr // the OpAnyQ node
	strictA *expr.Alphabet
	touched branchSet
	generic State // may be nil once dead
	// excluded lists values the generic branch can no longer stand for:
	// it consumed an action that some $p atom would have matched under
	// that binding, committing the not-yet-chosen value to differ (the
	// bound variant was forked as its own touched branch at that action).
	excluded []string // sorted
	key      string
}

func newAnyQState(e *expr.Expr) State {
	return &anyQState{e: e, strictA: expr.AlphabetOf(e.Kids[0]), generic: Initial(e.Kids[0])}
}

func (s *anyQState) Key() string {
	if s.key == "" {
		gk := "!"
		if s.generic != nil {
			gk = s.generic.Key()
			if len(s.excluded) > 0 {
				gk += "!" + strings.Join(s.excluded, ",")
			}
		}
		s.key = "any<" + s.e.Key() + ">{" + s.touched.key() + "|" + gk + "}"
	}
	return s.key
}

func (s *anyQState) Final() bool {
	if s.generic != nil && s.generic.Final() {
		return true
	}
	for _, b := range s.touched {
		if b.st.Final() {
			return true
		}
	}
	return false
}

func (s *anyQState) Size() int { return 1 + s.touched.size() + Size(s.generic) }

func (s *anyQState) trans(a expr.Action) State {
	p := s.e.Param
	var generic State
	excluded := s.excluded
	if s.generic != nil {
		generic = compress(s.generic.trans(a))
		if generic != nil {
			// The generic branch consumed a with p free; it can no longer
			// stand for values under which a $p atom would have matched a
			// (those bound variants fork below, or are already touched).
			excluded = mergeExcl(excluded, s.strictA.BindingMatches(p, a))
		}
	}
	var touched branchSet
	for _, b := range s.touched {
		if !branchCanAct(b.val, a, s.strictA) {
			continue // the action cannot belong to this branch's word
		}
		nst := b.st.trans(a)
		if nst == nil {
			continue
		}
		nst = compress(nst)
		// ρ: a branch whose state caught up with the generic branch again
		// is indistinguishable from an untouched one and is released —
		// unless its value is excluded from the generic branch, in which
		// case the generic cannot stand in for it later.
		if generic != nil && nst.Key() == generic.Key() && !containsStr(excluded, b.val) {
			continue
		}
		touched = append(touched, branch{b.val, nst})
	}
	if s.generic != nil {
		for _, v := range newValues(a, s.touched) {
			// An excluded value cannot fork from the generic branch: the
			// generic's history was consumed under "p ≠ v".
			if containsStr(s.excluded, v) {
				continue
			}
			nst := s.generic.subst(p, v).trans(a)
			if nst == nil {
				continue
			}
			nst = compress(nst)
			// If binding v made no observable difference the branch keeps
			// riding with the generic one (they evolve in lockstep until
			// an action actually mentions v in a parameter position).
			if generic != nil && nst.Key() == generic.Key() && !containsStr(excluded, v) {
				continue
			}
			touched = append(touched, branch{v, nst})
		}
	}
	if len(touched) == 0 && generic == nil {
		return nil
	}
	return &anyQState{e: s.e, strictA: s.strictA, touched: touched.canonical(), generic: generic, excluded: excluded}
}

func (s *anyQState) subst(p, v string) State {
	if !s.e.HasFreeParam(p) {
		return s
	}
	var generic State
	if s.generic != nil {
		generic = s.generic.subst(p, v)
	}
	ne := s.e.Subst(p, v)
	return &anyQState{e: ne, strictA: expr.AlphabetOf(ne.Kids[0]), touched: s.touched.subst(p, v), generic: generic, excluded: s.excluded}
}

func (s *anyQState) internParts(c *Cache) State {
	var generic State
	if s.generic != nil {
		generic = c.Canon(s.generic)
	}
	return &anyQState{e: s.e, strictA: s.strictA, touched: s.touched.internParts(c),
		generic: generic, excluded: s.excluded, key: s.Key()}
}

func (s *anyQState) inert() bool {
	if s.generic != nil {
		// The generic branch can fork new value branches; claiming
		// inertness would require knowing no substitution can move it.
		return false
	}
	for _, b := range s.touched {
		if !b.st.inert() {
			return false
		}
	}
	return true
}

// --- conjunction quantifier ("conq p: y") -----------------------------
//
// The word must be accepted by the branch of *every* value of the
// infinite universe. Untouched values all share the generic branch; a
// single failing branch (touched or generic) invalidates the state.
type conQState struct {
	e       *expr.Expr
	strictA *expr.Alphabet
	touched branchSet
	generic State
	key     string
}

func newConQState(e *expr.Expr) State {
	return &conQState{e: e, strictA: expr.AlphabetOf(e.Kids[0]), generic: Initial(e.Kids[0])}
}

func (s *conQState) Key() string {
	if s.key == "" {
		s.key = "conq<" + s.e.Key() + ">{" + s.touched.key() + "|" + s.generic.Key() + "}"
	}
	return s.key
}

func (s *conQState) Final() bool {
	return s.generic.Final() && s.touched.allFinal()
}

func (s *conQState) Size() int { return 1 + s.touched.size() + s.generic.Size() }

func (s *conQState) trans(a expr.Action) State {
	p := s.e.Param
	generic := s.generic.trans(a)
	if generic == nil {
		return nil
	}
	generic = compress(generic)
	var touched branchSet
	for _, b := range s.touched {
		// Every branch must accept every action; a branch that cannot
		// possibly act kills the state without a deep descent.
		if !branchCanAct(b.val, a, s.strictA) {
			return nil
		}
		nst := b.st.trans(a)
		if nst == nil {
			return nil
		}
		nst = compress(nst)
		// ρ: release branches indistinguishable from the generic one.
		if nst.Key() == generic.Key() {
			continue
		}
		touched = append(touched, branch{b.val, nst})
	}
	for _, v := range newValues(a, s.touched) {
		nst := s.generic.subst(p, v).trans(a)
		if nst == nil {
			return nil
		}
		nst = compress(nst)
		// If binding v made no observable difference, the branch can keep
		// riding with the generic one.
		if nst.Key() == generic.Key() {
			continue
		}
		touched = append(touched, branch{v, nst})
	}
	return &conQState{e: s.e, strictA: s.strictA, touched: touched.canonical(), generic: generic}
}

func (s *conQState) subst(p, v string) State {
	if !s.e.HasFreeParam(p) {
		return s
	}
	ne := s.e.Subst(p, v)
	return &conQState{e: ne, strictA: expr.AlphabetOf(ne.Kids[0]), touched: s.touched.subst(p, v), generic: s.generic.subst(p, v)}
}

func (s *conQState) inert() bool {
	// Any action must be accepted by all branches including generic; if
	// the generic branch is inert every action kills the state.
	return s.generic.inert()
}

func (s *conQState) internParts(c *Cache) State {
	return &conQState{e: s.e, strictA: s.strictA, touched: s.touched.internParts(c),
		generic: c.Canon(s.generic), key: s.Key()}
}

// --- synchronization quantifier ("syncq p: y") ------------------------
//
// For every value ω, the projection of the word onto α(y_ω) must be
// acceptable to that branch. Untouched branches only ever see actions
// matching parameter-free atoms, and all see the same ones, so a single
// generic branch represents them in lockstep.
type syncQState struct {
	e       *expr.Expr
	whole   *expr.Alphabet // α of the quantifier (p ranges as wildcard)
	touched branchSet
	alphas  []*expr.Alphabet // per touched branch, aligned with touched
	generic State
	genA    *expr.Alphabet // strict alphabet of the generic branch
	key     string
}

func newSyncQState(e *expr.Expr) State {
	return &syncQState{
		e:       e,
		whole:   expr.AlphabetOf(e),
		generic: Initial(e.Kids[0]),
		genA:    expr.AlphabetOf(e.Kids[0]),
	}
}

func (s *syncQState) Key() string {
	if s.key == "" {
		s.key = "syncq<" + s.e.Key() + ">{" + s.touched.key() + "|" + s.generic.Key() + "}"
	}
	return s.key
}

func (s *syncQState) Final() bool {
	return s.generic.Final() && s.touched.allFinal()
}

func (s *syncQState) Size() int { return 1 + s.touched.size() + s.generic.Size() }

func (s *syncQState) trans(a expr.Action) State {
	if !s.whole.Contains(a) {
		return nil // a ∉ α(x)
	}
	p := s.e.Param
	var touched branchSet
	var alphas []*expr.Alphabet
	for i, b := range s.touched {
		al := s.alphas[i]
		if !al.Contains(a) {
			touched = append(touched, b)
			alphas = append(alphas, al)
			continue
		}
		nst := b.st.trans(a)
		if nst == nil {
			return nil
		}
		touched = append(touched, branch{b.val, nst})
		alphas = append(alphas, al)
	}
	generic := s.generic
	if s.genA.Contains(a) {
		generic = s.generic.trans(a)
		if generic == nil {
			return nil
		}
		generic = compress(generic)
	}
	// ρ: release touched branches that caught up with the generic one;
	// they are indistinguishable from untouched branches again.
	kept := touched[:0]
	keptAl := alphas[:0]
	for i := range touched {
		nst := compress(touched[i].st)
		if nst.Key() == generic.Key() {
			continue
		}
		kept = append(kept, branch{touched[i].val, nst})
		keptAl = append(keptAl, alphas[i])
	}
	touched, alphas = kept, keptAl
	for _, v := range newValues(a, s.touched) {
		inst := s.e.Kids[0].Subst(p, v)
		al := expr.AlphabetOf(inst)
		if !al.Contains(a) {
			continue // branch v is not involved and stays generic
		}
		nst := s.generic.subst(p, v).trans(a)
		if nst == nil {
			return nil
		}
		nst = compress(nst)
		// Binding made no difference: branch v keeps riding with the
		// generic branch (its alphabet then equals the strict one too).
		if nst.Key() == generic.Key() {
			continue
		}
		touched = append(touched, branch{v, nst})
		alphas = append(alphas, al)
	}
	ns := &syncQState{e: s.e, whole: s.whole, touched: touched, alphas: alphas, generic: generic, genA: s.genA}
	ns.sortBranches()
	return ns
}

// sortBranches canonicalizes touched order while keeping alphas aligned.
func (s *syncQState) sortBranches() {
	idx := make([]int, len(s.touched))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return s.touched[idx[i]].val < s.touched[idx[j]].val })
	nt := make(branchSet, len(idx))
	na := make([]*expr.Alphabet, len(idx))
	for i, j := range idx {
		nt[i] = s.touched[j]
		na[i] = s.alphas[j]
	}
	s.touched = nt
	s.alphas = na
}

func (s *syncQState) subst(p, v string) State {
	if !s.e.HasFreeParam(p) {
		return s
	}
	ne := s.e.Subst(p, v)
	ns := &syncQState{
		e:       ne,
		whole:   expr.AlphabetOf(ne),
		touched: s.touched.subst(p, v),
		generic: s.generic.subst(p, v),
		genA:    expr.AlphabetOf(ne.Kids[0]),
	}
	ns.alphas = make([]*expr.Alphabet, len(ns.touched))
	for i, b := range ns.touched {
		ns.alphas[i] = expr.AlphabetOf(ne.Kids[0].Subst(ne.Param, b.val))
	}
	ns.sortBranches()
	return ns
}

func (s *syncQState) inert() bool { return false }

func (s *syncQState) internParts(c *Cache) State {
	return &syncQState{e: s.e, whole: s.whole, touched: s.touched.internParts(c),
		alphas: s.alphas, generic: c.Canon(s.generic), genA: s.genA, key: s.Key()}
}
