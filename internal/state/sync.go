package state

import "repro/internal/expr"

// syncState is the state of a synchronization (coupling) y1 @ ... @ yn.
// Per the Table 8 semantics Φ(y)⊗κx(y)* ∩ Φ(z)⊗κx(z)*, each operand only
// observes the actions of its own alphabet: an action inside α(yi) must
// be accepted by operand i, an action outside passes operand i by. An
// action belonging to no operand's alphabet is not in α(x) at all and
// invalidates the state.
//
// This is the open-world conjunction that makes modular combination of
// independently developed interaction graphs work (Fig 7): a subgraph
// never prohibits activities it does not mention.
type syncState struct {
	kidExprs []*expr.Expr
	kids     []State
	alphas   []*expr.Alphabet
	key      string
}

func newSyncState(e *expr.Expr) State {
	n := len(e.Kids)
	s := &syncState{
		kidExprs: e.Kids,
		kids:     make([]State, n),
		alphas:   make([]*expr.Alphabet, n),
	}
	for i, k := range e.Kids {
		s.kids[i] = Initial(k)
		s.alphas[i] = expr.AlphabetOf(k)
	}
	return s
}

func (s *syncState) Key() string {
	if s.key == "" {
		s.key = joinKeys("sync", s.kids)
	}
	return s.key
}

func (s *syncState) Final() bool { return allFinal(s.kids) }
func (s *syncState) Size() int   { return 1 + sumSizes(s.kids) }

func (s *syncState) trans(a expr.Action) State {
	next := make([]State, len(s.kids))
	involved := false
	for i, kid := range s.kids {
		if !s.alphas[i].Contains(a) {
			next[i] = kid // the action passes this operand by
			continue
		}
		involved = true
		nk := kid.trans(a)
		if nk == nil {
			return nil
		}
		next[i] = compress(nk)
	}
	if !involved {
		return nil // a ∉ α(x)
	}
	return &syncState{kidExprs: s.kidExprs, kids: next, alphas: s.alphas}
}

func (s *syncState) subst(p, v string) State {
	free := false
	for _, k := range s.kidExprs {
		if k.HasFreeParam(p) {
			free = true
			break
		}
	}
	if !free {
		return s
	}
	n := len(s.kids)
	ns := &syncState{
		kidExprs: make([]*expr.Expr, n),
		kids:     make([]State, n),
		alphas:   make([]*expr.Alphabet, n),
	}
	for i := range s.kids {
		ns.kidExprs[i] = s.kidExprs[i].Subst(p, v)
		ns.kids[i] = s.kids[i].subst(p, v)
		ns.alphas[i] = expr.AlphabetOf(ns.kidExprs[i])
	}
	return ns
}

func (s *syncState) inert() bool { return allInert(s.kids) }

func (s *syncState) internParts(c *Cache) State {
	return &syncState{kidExprs: s.kidExprs, kids: canonAll(c, s.kids), alphas: s.alphas, key: s.Key()}
}
