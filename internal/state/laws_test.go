package state

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
)

// Property-test harness for the paper's algebraic laws, checked between
// *operational states* rather than denotations: two expressions are
// related by joint bounded exploration — from σ(e1)/σ(e2), every action
// of a covering concrete alphabet is applied to both sides and validity
// and finality must agree at every reachable pair of states (trace
// equivalence up to a depth bound). Each law runs twice, once on the
// plain transition function and once through a shared memo Cache, so the
// suite simultaneously proves the laws and proves the hash-consing +
// memoization refactor behavior-preserving.

// stepper abstracts τ̂ so laws run pre- and post-memoization.
type stepper func(State, expr.Action) State

func plainStep(s State, a expr.Action) State { return Trans(s, a) }

func cachedStep(c *Cache) stepper {
	return func(s State, a expr.Action) State { return c.Transition(s, a) }
}

// lawSigma builds a covering concrete action set for the expressions:
// every atom instantiated with every value of vals (parameter positions
// get each value in turn), deduplicated.
func lawSigma(vals []string, es ...*expr.Expr) []expr.Action {
	var out []expr.Action
	seen := make(map[string]bool)
	add := func(a expr.Action) {
		if a.Concrete() && !seen[a.Key()] {
			seen[a.Key()] = true
			out = append(out, a)
		}
	}
	for _, e := range es {
		for _, at := range e.Actions() {
			add(at)
			insts := []expr.Action{at}
			for p := range at.Params() {
				var next []expr.Action
				for _, in := range insts {
					for _, v := range vals {
						next = append(next, in.Subst(p, v))
					}
				}
				insts = next
			}
			for _, in := range insts {
				add(in)
			}
		}
	}
	return out
}

// traceEquivalent explores both state spaces jointly up to depth and
// reports the first divergence (validity or finality) it finds.
func traceEquivalent(e1, e2 *expr.Expr, sigma []expr.Action, depth int, step stepper) error {
	type pair struct{ k1, k2 string }
	visited := make(map[pair]bool)
	var walk func(s1, s2 State, trace []expr.Action, d int) error
	walk = func(s1, s2 State, trace []expr.Action, d int) error {
		if Final(s1) != Final(s2) {
			return fmt.Errorf("finality diverges after %v: left=%v right=%v", trace, Final(s1), Final(s2))
		}
		if d == 0 {
			return nil
		}
		p := pair{stateKey(s1), stateKey(s2)}
		if visited[p] {
			return nil
		}
		visited[p] = true
		for _, a := range sigma {
			n1 := step(s1, a)
			n2 := step(s2, a)
			if (n1 == nil) != (n2 == nil) {
				return fmt.Errorf("validity diverges after %v + %s: left=%v right=%v",
					trace, a, n1 != nil, n2 != nil)
			}
			if n1 == nil {
				continue
			}
			if err := walk(n1, n2, append(trace[:len(trace):len(trace)], a), d-1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(Initial(e1), Initial(e2), nil, depth)
}

func stateKey(s State) string {
	if s == nil {
		return "<invalid>"
	}
	return s.Key()
}

// assertStateLaw checks the law for random operand instantiations, on
// the plain and on the memoized transition function.
func assertStateLaw(t *testing.T, name string, law func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr)) {
	t.Helper()
	rnd := rand.New(rand.NewSource(int64(expr.HashKey(name))))
	cache := NewCache(0)
	for i := 0; i < 25; i++ {
		g := &exprGen{rnd: rnd}
		x, y, z := g.gen(2), g.gen(2), g.gen(1)
		l, r := law(x, y, z)
		sigma := lawSigma([]string{"v1", "v2"}, l, r)
		if len(sigma) == 0 {
			continue
		}
		if len(sigma) > 8 {
			sigma = sigma[:8]
		}
		for _, mode := range []struct {
			name string
			step stepper
		}{{"plain", plainStep}, {"memoized", cachedStep(cache)}} {
			if err := traceEquivalent(l, r, sigma, 4, mode.step); err != nil {
				t.Fatalf("%s (%s) violated for operands #%d:\n  left:  %s\n  right: %s\n  %v",
					name, mode.name, i, l, r, err)
			}
		}
	}
}

func TestStateLawOrCommutative(t *testing.T) {
	assertStateLaw(t, "x|y = y|x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Or(x, y), expr.Or(y, x)
	})
}

func TestStateLawOrAssociative(t *testing.T) {
	assertStateLaw(t, "(x|y)|z = x|(y|z)", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Or(expr.Or(x, y), z), expr.Or(x, expr.Or(y, z))
	})
}

func TestStateLawOrIdempotent(t *testing.T) {
	assertStateLaw(t, "x|x = x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Or(x, x), x
	})
}

func TestStateLawParCommutative(t *testing.T) {
	assertStateLaw(t, "x||y = y||x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Par(x, y), expr.Par(y, x)
	})
}

func TestStateLawParAssociative(t *testing.T) {
	assertStateLaw(t, "(x||y)||z = x||(y||z)", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Par(expr.Par(x, y), z), expr.Par(x, expr.Par(y, z))
	})
}

func TestStateLawSeqAssociative(t *testing.T) {
	assertStateLaw(t, "(x-y)-z = x-(y-z)", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Seq(expr.Seq(x, y), z), expr.Seq(x, expr.Seq(y, z))
	})
}

func TestStateLawSyncCommutative(t *testing.T) {
	assertStateLaw(t, "x@y = y@x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Sync(x, y), expr.Sync(y, x)
	})
}

func TestStateLawSyncAssociative(t *testing.T) {
	assertStateLaw(t, "(x@y)@z = x@(y@z)", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Sync(expr.Sync(x, y), z), expr.Sync(x, expr.Sync(y, z))
	})
}

func TestStateLawSyncIdempotent(t *testing.T) {
	assertStateLaw(t, "x@x = x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.Sync(x, x), x
	})
}

func TestStateLawAndIdempotent(t *testing.T) {
	assertStateLaw(t, "x&x = x", func(x, y, z *expr.Expr) (*expr.Expr, *expr.Expr) {
		return expr.And(x, x), x
	})
}

// --- quantifier unrolling vs. bounded-domain expansion -----------------
//
// Over words whose values are drawn from {v1, v2}, a quantifier over the
// infinite universe Ω behaves exactly like its finite expansion over
// {v1, v2} plus enough *fresh* representatives: every untouched ω ∈ Ω is
// interchangeable with an unmentioned expansion value. Disjunction,
// conjunction and synchronization quantifiers need one representative
// (only "some other value" matters); the parallel quantifier needs one
// fresh representative per word position, since distinct anonymous
// branches may each consume part of the word.

// quantBody generates a random body with the quantifier parameter in
// scope.
func quantBody(rnd *rand.Rand, p string, depth int) *expr.Expr {
	g := &exprGen{rnd: rnd, params: []string{p}}
	return g.gen(depth)
}

func assertUnrolling(t *testing.T, name string, wrap func(p string, body *expr.Expr) *expr.Expr,
	expand func(concretions []*expr.Expr) *expr.Expr, fresh int, depth int, bodyDepth int) {
	t.Helper()
	rnd := rand.New(rand.NewSource(int64(expr.HashKey(name))))
	cache := NewCache(0)
	domain := []string{"v1", "v2"}
	for i := 0; i < fresh; i++ {
		domain = append(domain, fmt.Sprintf("w%d", i+1))
	}
	for i := 0; i < 25; i++ {
		body := quantBody(rnd, "p", bodyDepth)
		q := wrap("p", body)
		var concs []*expr.Expr
		for _, v := range domain {
			concs = append(concs, body.Subst("p", v))
		}
		u := expand(concs)
		// The word universe mentions only v1/v2; the extra domain values
		// exist solely as fresh representatives inside the expansion.
		sigma := lawSigma([]string{"v1", "v2"}, q)
		if len(sigma) == 0 {
			continue
		}
		if len(sigma) > 6 {
			sigma = sigma[:6]
		}
		for _, mode := range []struct {
			name string
			step stepper
		}{{"plain", plainStep}, {"memoized", cachedStep(cache)}} {
			if err := traceEquivalent(q, u, sigma, depth, mode.step); err != nil {
				t.Fatalf("%s (%s) violated for body #%d:\n  quantified: %s\n  unrolled:   %s\n  %v",
					name, mode.name, i, q, u, err)
			}
		}
	}
}

func TestStateLawAnyQUnrolling(t *testing.T) {
	assertUnrolling(t, "any p: y = y[v1] | y[v2] | y[w]",
		expr.AnyQ,
		func(cs []*expr.Expr) *expr.Expr { return expr.Or(cs...) },
		1, 4, 2)
}

func TestStateLawConQUnrolling(t *testing.T) {
	assertUnrolling(t, "conq p: y = y[v1] & y[v2] & y[w]",
		expr.ConQ,
		func(cs []*expr.Expr) *expr.Expr { return expr.And(cs...) },
		1, 4, 2)
}

func TestStateLawSyncQUnrolling(t *testing.T) {
	assertUnrolling(t, "syncq p: y = y[v1] @ y[v2] @ y[w]",
		expr.SyncQ,
		func(cs []*expr.Expr) *expr.Expr { return expr.Sync(cs...) },
		1, 4, 2)
}

func TestStateLawAllQUnrolling(t *testing.T) {
	// Depth-3 words can touch at most 3 distinct anonymous branches, so 3
	// fresh representatives suffice; small optional bodies keep the n-ary
	// shuffle tractable.
	assertUnrolling(t, "all p: y = y[v1] || y[v2] || y[w1..w3]",
		func(p string, body *expr.Expr) *expr.Expr { return expr.AllQ(p, expr.Option(body)) },
		func(cs []*expr.Expr) *expr.Expr {
			opts := make([]*expr.Expr, len(cs))
			for i, c := range cs {
				opts[i] = expr.Option(c)
			}
			return expr.Par(opts...)
		},
		3, 3, 1)
}

// TestMemoizationPreservesSemantics drives random expressions through a
// cached and an uncached engine in lockstep: every step must agree on
// acceptance, finality and the canonical state key. This is the direct
// behavior-preservation property of the hash-consing refactor (the law
// tests above additionally prove it across *different* expressions).
func TestMemoizationPreservesSemantics(t *testing.T) {
	rnd := rand.New(rand.NewSource(20010421))
	sigma := acts("a", "b", "x(v1)", "x(v2)", "y(v1)")
	cache := NewCache(0)
	for i := 0; i < 300; i++ {
		g := &exprGen{rnd: rnd}
		e := g.gen(3)
		plain := MustEngine(e)
		memo := MustEngine(e)
		memo.UseCache(cache)
		for step := 0; step < 8; step++ {
			a := sigma[rnd.Intn(len(sigma))]
			errP := plain.Step(a)
			errM := memo.Step(a)
			if (errP == nil) != (errM == nil) {
				t.Fatalf("expr %s step %d (%s): plain err=%v memo err=%v", e, step, a, errP, errM)
			}
			if plain.Final() != memo.Final() {
				t.Fatalf("expr %s step %d: finality diverges", e, step)
			}
			if plain.StateKey() != memo.StateKey() {
				t.Fatalf("expr %s step %d: state keys diverge:\n plain %s\n memo  %s",
					e, step, plain.StateKey(), memo.StateKey())
			}
		}
	}
	st := cache.Stats()
	if st.MemoHits == 0 || st.InternHits == 0 {
		t.Fatalf("cache never hit: %+v", st)
	}
}
