package state

import (
	"encoding/json"
	"fmt"

	"repro/internal/expr"
	"repro/internal/parse"
)

// Snapshot serialization: a State is encoded as a DAG of tagged-union
// nodes mirroring the state hierarchy (format version 2). The encoder
// deduplicates by canonical key: the first occurrence of a structure (in
// a deterministic preorder walk) is emitted in full and assigned the
// next ordinal; every later occurrence is a one-field back-reference
// {"r": ordinal}. States produced by the hash-consing cache share
// sub-structure heavily — quantifier branches, parallel alternatives —
// so the DAG form keeps snapshots proportional to the number of
// *distinct* sub-states, matching the in-memory representation instead
// of exploding it back into a tree. Because encoding is a pure preorder
// function of the structure, marshal → unmarshal → marshal is
// byte-identical (FuzzSnapshotRoundTrip).
//
// Version-0 snapshots (the pre-DAG tree format, no "v" field) contain no
// back-references and decode through the same decoder; old checkpoints
// keep loading unchanged.
//
// Expressions referenced by states (iteration bodies, quantifier nodes,
// ...) are stored in their canonical text form and re-parsed on load —
// the round-trip property of the canonical syntax (including free
// parameters, rendered as $p) makes this exact. Derived data (alphabets,
// nullability flags, cached keys) is recomputed rather than stored, so a
// snapshot stays small and cannot disagree with the code that interprets
// it.
//
// Snapshots exist so the interaction manager can checkpoint its engine and
// truncate the action log: restart then costs O(actions since the last
// checkpoint) instead of O(full history).

// snapFormatVersion is written by MarshalState. Version 0 (absent field)
// is the legacy tree format; both decode.
const snapFormatVersion = 2

// Node type tags. One per State implementation.
const (
	tagEmpty   = "eps"
	tagAtom    = "atom"
	tagOr      = "or"
	tagAnd     = "and"
	tagSeq     = "seq"
	tagSeqIter = "iter"
	tagPar     = "par"
	tagMult    = "mult"
	tagParIter = "piter"
	tagSync    = "sync"
	tagAnyQ    = "any"
	tagConQ    = "conq"
	tagSyncQ   = "syncq"
	tagAllQ    = "all"
)

// snapNode is the JSON form of one state node. R, when non-zero, makes
// the node a back-reference to the R-th full node of the encoding's
// preorder walk (1-based); all other fields are then absent.
type snapNode struct {
	R    int           `json:"r,omitempty"`
	T    string        `json:"t,omitempty"`
	Act  *snapAction   `json:"act,omitempty"`  // atom: the (possibly abstract) action
	Done bool          `json:"done,omitempty"` // atom: traversed; iter: boundary flag
	E    string        `json:"e,omitempty"`    // owning expression, canonical text
	Es   []string      `json:"es,omitempty"`   // sync: operand expressions
	Kids []*snapNode   `json:"k,omitempty"`    // or/and/sync kids, iter instances
	Idx  []int         `json:"i,omitempty"`    // seq: operand index per kid
	Alts [][]*snapNode `json:"aa,omitempty"`   // par/mult/piter alternatives
	Br   []snapBranch  `json:"br,omitempty"`   // quantifier touched branches
	Gen  *snapNode     `json:"g,omitempty"`    // quantifier generic branch
	Excl []string      `json:"x,omitempty"`    // anyQ: generic's excluded bindings
	QA   []snapQAlt    `json:"qa,omitempty"`   // allQ alternatives
}

// snapAction preserves the value/parameter distinction of action
// arguments, which the concrete-action text syntax cannot express.
type snapAction struct {
	Name string    `json:"n"`
	Args []snapArg `json:"a,omitempty"`
}

type snapArg struct {
	Param bool   `json:"p,omitempty"`
	Name  string `json:"n"`
}

type snapBranch struct {
	Val string    `json:"v"`
	St  *snapNode `json:"s"`
}

type snapQAlt struct {
	Named []snapBranch `json:"n,omitempty"`
	Anon  []*snapNode  `json:"a,omitempty"`
	// Excl[i] holds the excluded binding values of Anon[i] (values the
	// anonymous branch consumed an action under "p differs from").
	Excl [][]string `json:"x,omitempty"`
}

func encodeAction(a expr.Action) *snapAction {
	sa := &snapAction{Name: a.Name}
	for _, arg := range a.Args {
		sa.Args = append(sa.Args, snapArg{Param: arg.Param, Name: arg.Name})
	}
	return sa
}

func decodeAction(sa *snapAction) expr.Action {
	args := make([]expr.Arg, len(sa.Args))
	for i, a := range sa.Args {
		if a.Param {
			args[i] = expr.Prm(a.Name)
		} else {
			args[i] = expr.Val(a.Name)
		}
	}
	return expr.Act(sa.Name, args...)
}

// encoder deduplicates states by canonical key while emitting the DAG:
// the first occurrence of a key (preorder) is emitted in full and given
// the next 1-based ordinal; later occurrences emit a back-reference.
type encoder struct {
	seen map[string]int
	n    int
}

func newEncoder() *encoder { return &encoder{seen: make(map[string]int)} }

func (enc *encoder) states(ss []State) []*snapNode {
	out := make([]*snapNode, len(ss))
	for i, s := range ss {
		out[i] = enc.state(s)
	}
	return out
}

func (enc *encoder) alts(alts [][]State) [][]*snapNode {
	out := make([][]*snapNode, len(alts))
	for i, alt := range alts {
		out[i] = enc.states(alt)
	}
	return out
}

func (enc *encoder) branches(bs branchSet) []snapBranch {
	out := make([]snapBranch, len(bs))
	for i, b := range bs {
		out[i] = snapBranch{Val: b.val, St: enc.state(b.st)}
	}
	return out
}

// state translates a live state into its snapshot node or back-reference.
func (enc *encoder) state(s State) *snapNode {
	k := s.Key()
	if ord, ok := enc.seen[k]; ok {
		return &snapNode{R: ord}
	}
	// Assign the ordinal before descending (preorder), mirroring the
	// decoder's slot reservation.
	enc.n++
	enc.seen[k] = enc.n
	switch st := s.(type) {
	case emptyState:
		return &snapNode{T: tagEmpty}
	case *atomState:
		return &snapNode{T: tagAtom, Act: encodeAction(st.atom), Done: st.done}
	case *orState:
		return &snapNode{T: tagOr, Kids: enc.states(st.kids)}
	case *andState:
		return &snapNode{T: tagAnd, Kids: enc.states(st.kids)}
	case *seqState:
		n := &snapNode{T: tagSeq, E: st.e.String()}
		for _, a := range st.alts {
			n.Idx = append(n.Idx, a.idx)
			n.Kids = append(n.Kids, enc.state(a.st))
		}
		return n
	case *seqIterState:
		return &snapNode{T: tagSeqIter, E: st.y.String(), Kids: enc.states(st.insts), Done: st.boundary}
	case *parState:
		return &snapNode{T: tagPar, Alts: enc.alts(st.alts)}
	case *multState:
		return &snapNode{T: tagMult, Alts: enc.alts(st.alts)}
	case *parIterState:
		return &snapNode{T: tagParIter, E: st.y.String(), Alts: enc.alts(st.alts)}
	case *syncState:
		n := &snapNode{T: tagSync, Kids: enc.states(st.kids)}
		for _, e := range st.kidExprs {
			n.Es = append(n.Es, e.String())
		}
		return n
	case *anyQState:
		n := &snapNode{T: tagAnyQ, E: st.e.String(), Br: enc.branches(st.touched), Excl: st.excluded}
		if st.generic != nil {
			n.Gen = enc.state(st.generic)
		}
		return n
	case *conQState:
		return &snapNode{T: tagConQ, E: st.e.String(), Br: enc.branches(st.touched), Gen: enc.state(st.generic)}
	case *syncQState:
		return &snapNode{T: tagSyncQ, E: st.e.String(), Br: enc.branches(st.touched), Gen: enc.state(st.generic)}
	case *allQState:
		n := &snapNode{T: tagAllQ, E: st.e.String()}
		for _, a := range st.alts {
			qa := snapQAlt{Named: enc.branches(a.named)}
			for _, ab := range a.anon {
				qa.Anon = append(qa.Anon, enc.state(ab.st))
				qa.Excl = append(qa.Excl, ab.excl)
			}
			n.QA = append(n.QA, qa)
		}
		return n
	}
	panic(fmt.Sprintf("state: cannot snapshot %T", s))
}

// decoder caches parsed expressions (snapshots of quantified states repeat
// the same substituted body text across branches) and resolves DAG
// back-references: byOrd mirrors the encoder's preorder ordinals, so a
// {"r":N} node returns the N-th fully decoded state. Version-0 snapshots
// simply never reference the slots.
type decoder struct {
	exprs map[string]*expr.Expr
	byOrd []State
}

func (d *decoder) expr(src string) (*expr.Expr, error) {
	if e, ok := d.exprs[src]; ok {
		return e, nil
	}
	e, err := parse.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("state: snapshot expression %q: %w", src, err)
	}
	d.exprs[src] = e
	return e, nil
}

func (d *decoder) states(ns []*snapNode) ([]State, error) {
	out := make([]State, len(ns))
	for i, n := range ns {
		s, err := d.state(n)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

func (d *decoder) alts(nss [][]*snapNode) ([][]State, error) {
	out := make([][]State, len(nss))
	for i, ns := range nss {
		ss, err := d.states(ns)
		if err != nil {
			return nil, err
		}
		out[i] = ss
	}
	return out, nil
}

func (d *decoder) branches(bs []snapBranch) (branchSet, error) {
	out := make(branchSet, len(bs))
	for i, b := range bs {
		st, err := d.state(b.St)
		if err != nil {
			return nil, err
		}
		out[i] = branch{val: b.Val, st: st}
	}
	return out, nil
}

// quantExpr parses and validates a quantifier node of the given op.
func (d *decoder) quantExpr(src string, want expr.Op) (*expr.Expr, error) {
	e, err := d.expr(src)
	if err != nil {
		return nil, err
	}
	if e.Op != want {
		return nil, fmt.Errorf("state: snapshot node: %q is not a %v node", src, want)
	}
	return e, nil
}

func (d *decoder) state(n *snapNode) (State, error) {
	if n == nil {
		return nil, fmt.Errorf("state: snapshot: missing node")
	}
	if n.R != 0 {
		if n.R < 1 || n.R > len(d.byOrd) || d.byOrd[n.R-1] == nil {
			return nil, fmt.Errorf("state: snapshot back-reference %d out of range", n.R)
		}
		return d.byOrd[n.R-1], nil
	}
	// Reserve this node's ordinal before descending, mirroring the
	// encoder's preorder numbering. A structure can never contain itself,
	// so the slot is always filled before anything can reference it.
	ord := len(d.byOrd)
	d.byOrd = append(d.byOrd, nil)
	st, err := d.stateBody(n)
	if err != nil {
		return nil, err
	}
	d.byOrd[ord] = st
	return st, nil
}

// stateBody decodes a full (non-reference) node.
func (d *decoder) stateBody(n *snapNode) (State, error) {
	switch n.T {
	case tagEmpty:
		return theEmptyState, nil
	case tagAtom:
		if n.Act == nil {
			return nil, fmt.Errorf("state: snapshot atom without action")
		}
		return &atomState{atom: decodeAction(n.Act), done: n.Done}, nil
	case tagOr:
		kids, err := d.states(n.Kids)
		if err != nil {
			return nil, err
		}
		return &orState{kids: kids}, nil
	case tagAnd:
		kids, err := d.states(n.Kids)
		if err != nil {
			return nil, err
		}
		return &andState{kids: kids}, nil
	case tagSeq:
		e, err := d.expr(n.E)
		if err != nil {
			return nil, err
		}
		if e.Op != expr.OpSeq || len(n.Idx) != len(n.Kids) {
			return nil, fmt.Errorf("state: malformed seq snapshot for %q", n.E)
		}
		s := &seqState{e: e}
		for i, kn := range n.Kids {
			if n.Idx[i] < 0 || n.Idx[i] >= len(e.Kids) {
				return nil, fmt.Errorf("state: seq snapshot index %d out of range for %q", n.Idx[i], n.E)
			}
			st, err := d.state(kn)
			if err != nil {
				return nil, err
			}
			s.alts = append(s.alts, seqAlt{idx: n.Idx[i], st: st})
		}
		return s, nil
	case tagSeqIter:
		y, err := d.expr(n.E)
		if err != nil {
			return nil, err
		}
		insts, err := d.states(n.Kids)
		if err != nil {
			return nil, err
		}
		return &seqIterState{y: y, insts: insts, boundary: n.Done}, nil
	case tagPar:
		alts, err := d.alts(n.Alts)
		if err != nil {
			return nil, err
		}
		return &parState{alts: alts}, nil
	case tagMult:
		alts, err := d.alts(n.Alts)
		if err != nil {
			return nil, err
		}
		return &multState{alts: alts}, nil
	case tagParIter:
		y, err := d.expr(n.E)
		if err != nil {
			return nil, err
		}
		alts, err := d.alts(n.Alts)
		if err != nil {
			return nil, err
		}
		return &parIterState{y: y, alts: alts}, nil
	case tagSync:
		if len(n.Es) != len(n.Kids) {
			return nil, fmt.Errorf("state: malformed sync snapshot")
		}
		s := &syncState{}
		for i, src := range n.Es {
			e, err := d.expr(src)
			if err != nil {
				return nil, err
			}
			st, err := d.state(n.Kids[i])
			if err != nil {
				return nil, err
			}
			s.kidExprs = append(s.kidExprs, e)
			s.kids = append(s.kids, st)
			s.alphas = append(s.alphas, expr.AlphabetOf(e))
		}
		return s, nil
	case tagAnyQ:
		e, err := d.quantExpr(n.E, expr.OpAnyQ)
		if err != nil {
			return nil, err
		}
		touched, err := d.branches(n.Br)
		if err != nil {
			return nil, err
		}
		s := &anyQState{e: e, strictA: expr.AlphabetOf(e.Kids[0]), touched: touched, excluded: n.Excl}
		if n.Gen != nil {
			if s.generic, err = d.state(n.Gen); err != nil {
				return nil, err
			}
		}
		return s, nil
	case tagConQ:
		e, err := d.quantExpr(n.E, expr.OpConQ)
		if err != nil {
			return nil, err
		}
		touched, err := d.branches(n.Br)
		if err != nil {
			return nil, err
		}
		generic, err := d.state(n.Gen)
		if err != nil {
			return nil, err
		}
		return &conQState{e: e, strictA: expr.AlphabetOf(e.Kids[0]), touched: touched, generic: generic}, nil
	case tagSyncQ:
		e, err := d.quantExpr(n.E, expr.OpSyncQ)
		if err != nil {
			return nil, err
		}
		touched, err := d.branches(n.Br)
		if err != nil {
			return nil, err
		}
		generic, err := d.state(n.Gen)
		if err != nil {
			return nil, err
		}
		s := &syncQState{
			e:       e,
			whole:   expr.AlphabetOf(e),
			touched: touched,
			generic: generic,
			genA:    expr.AlphabetOf(e.Kids[0]),
		}
		s.alphas = make([]*expr.Alphabet, len(touched))
		for i, b := range touched {
			s.alphas[i] = expr.AlphabetOf(e.Kids[0].Subst(e.Param, b.val))
		}
		return s, nil
	case tagAllQ:
		e, err := d.quantExpr(n.E, expr.OpAllQ)
		if err != nil {
			return nil, err
		}
		s := &allQState{
			e:        e,
			strictA:  expr.AlphabetOf(e.Kids[0]),
			nullable: Initial(e.Kids[0]).Final(),
		}
		for _, qa := range n.QA {
			named, err := d.branches(qa.Named)
			if err != nil {
				return nil, err
			}
			states, err := d.states(qa.Anon)
			if err != nil {
				return nil, err
			}
			anon := make([]anonBranch, len(states))
			for i, st := range states {
				anon[i] = anonBranch{st: st}
				if i < len(qa.Excl) {
					anon[i].excl = qa.Excl[i]
				}
			}
			s.alts = append(s.alts, allQAlt{named: named, anon: anon})
		}
		if len(s.alts) == 0 {
			s.alts = []allQAlt{{}}
		}
		return s, nil
	}
	return nil, fmt.Errorf("state: unknown snapshot node type %q", n.T)
}

// engineSnap is the serialized form of an Engine. V is the state-node
// format version: 0/absent is the legacy tree encoding, 2 the shared DAG
// encoding with back-references, 3 the delta-chain encoding (same DAG
// node format, but back-references may reach nodes emitted by earlier
// pieces of the chain — see delta.go). Idx and Ord only appear in
// version 3: Idx is the piece's position in its chain (0 = full base)
// and Ord the number of node ordinals all earlier pieces assigned,
// which a loader checks before decoding so a mismatched or reordered
// chain fails loudly instead of resolving references wrongly.
type engineSnap struct {
	V     int       `json:"v,omitempty"`
	Idx   int       `json:"idx,omitempty"`
	Ord   int       `json:"ord,omitempty"`
	Expr  string    `json:"expr"`
	Steps int       `json:"steps"`
	State *snapNode `json:"state"`
}

// MarshalState serializes the engine's current state and step count in
// the DAG format. The snapshot embeds the canonical form of the
// expression so a restore against a different expression is rejected.
// Because states are immutable the snapshot shares structure with the
// live state — no deep copy happens; the encoder walks the (possibly
// hash-consed) DAG once per distinct sub-state.
func (en *Engine) MarshalState() ([]byte, error) {
	if en.cur == nil {
		return nil, fmt.Errorf("state: cannot snapshot an invalid engine state")
	}
	return json.Marshal(engineSnap{
		V:     snapFormatVersion,
		Expr:  en.e.String(),
		Steps: en.steps,
		State: newEncoder().state(en.cur),
	})
}

// RestoreEngine rebuilds an engine for e from a standalone snapshot
// produced by MarshalState (or a chain-starting full base produced by a
// DeltaMarshaller). The restored engine is behaviourally identical to
// the one that was snapshotted: same state key, same permissible
// actions. Delta pieces need their whole chain; use DeltaRestorer.
func RestoreEngine(e *expr.Expr, data []byte) (*Engine, error) {
	dr, err := NewDeltaRestorer(e)
	if err != nil {
		return nil, err
	}
	if err := dr.Load(data); err != nil {
		return nil, err
	}
	return dr.Engine()
}
