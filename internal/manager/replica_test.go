package manager

import (
	"errors"
	"net"
	"path/filepath"
	"testing"

	"repro/internal/expr"
	"repro/internal/parse"
)

// Manager-level replication tests: frames, epochs, fencing, resync.
// Everything here synchronizes on protocol replies (SyncReplicas acks or
// direct ApplyReplicated calls) — no sleeps.

// replNode is one replica under test: a manager plus its wire server.
type replNode struct {
	t   *testing.T
	e   *expr.Expr
	m   *Manager
	srv *Server
}

func startReplNode(t *testing.T, e *expr.Expr, opts Options) *replNode {
	t.Helper()
	m, err := New(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &replNode{t: t, e: e, m: m, srv: NewServer(m, ln)}
	t.Cleanup(func() { n.stop() })
	return n
}

func (n *replNode) stop() {
	if n.srv != nil {
		n.srv.Close()
		n.m.Close()
		n.srv = nil
	}
}

// primaryFor builds a primary replicating synchronously to the followers.
func primaryFor(t *testing.T, e *expr.Expr, followers ...*replNode) *Manager {
	t.Helper()
	var addrs []string
	for _, f := range followers {
		addrs = append(addrs, f.srv.Addr())
	}
	m, err := New(e, Options{Replicas: addrs, SyncReplicas: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestReplicationStreamsCommits: every commit path — atomic request,
// ask/confirm, group-committed batch — reaches the follower before the
// client is acknowledged (sync acks), action by action.
func TestReplicationStreamsCommits(t *testing.T) {
	e := parse.MustParse("(a - b)*")
	f := startReplNode(t, e, Options{Follower: true})
	p := primaryFor(t, e, f)

	// Atomic request.
	if err := p.Request(bg, act("a")); err != nil {
		t.Fatalf("request a: %v", err)
	}
	if got := f.m.Steps(); got != 1 {
		t.Fatalf("follower steps after request: got %d want 1", got)
	}
	// Ask/confirm (the ticket travels in the frame).
	tk, err := p.Ask(bg, act("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Confirm(tk); err != nil {
		t.Fatal(err)
	}
	if got := f.m.Steps(); got != 2 {
		t.Fatalf("follower steps after confirm: got %d want 2", got)
	}
	// The follower answers a retried confirm from its replicated window.
	if err := f.m.Confirm(tk); err != nil {
		t.Fatalf("follower confirm retry: %v", err)
	}
	if got := f.m.Steps(); got != 2 {
		t.Fatalf("follower double-applied the confirm: %d steps", got)
	}
	// States converged exactly.
	if p.StateKey() != f.m.StateKey() {
		t.Fatalf("state divergence:\n primary  %s\n follower %s", p.StateKey(), f.m.StateKey())
	}
}

// TestReplicationBatchedCommits: a group-committed burst arrives as one
// frame and the follower matches the primary state and step count.
func TestReplicationBatchedCommits(t *testing.T) {
	e := parse.MustParse("(a | b)*")
	f := startReplNode(t, e, Options{Follower: true})
	var addrs = []string{f.srv.Addr()}
	p, err := New(e, Options{Replicas: addrs, SyncReplicas: true, BatchMaxSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	acts := make([]expr.Action, 24)
	for i := range acts {
		acts[i] = act("a")
	}
	for i, err := range p.RequestMany(bg, acts) {
		if err != nil {
			t.Fatalf("burst slot %d: %v", i, err)
		}
	}
	if got := f.m.Steps(); got != len(acts) {
		t.Fatalf("follower steps: got %d want %d", got, len(acts))
	}
	if fs := f.m.Stats(); fs.ReplFrames >= len(acts) {
		t.Fatalf("burst was not frame-coalesced: %d frames for %d actions", fs.ReplFrames, len(acts))
	}
}

// TestReplicationSnapshotResync: a follower that joins late (or lost
// frames) is healed with a full state snapshot on the next commit.
func TestReplicationSnapshotResync(t *testing.T) {
	e := parse.MustParse("(a | b)*")
	f2 := startReplNode(t, e, Options{Follower: true})
	fAddr := f2.srv.Addr()
	p2 := primaryFor(t, e, f2)
	f2.stop() // follower down: commits miss it
	if err := p2.Request(bg, act("a")); !errors.Is(err, ErrUncertain) {
		t.Fatalf("commit without reachable follower: want ErrUncertain, got %v", err)
	}
	if err := p2.Request(bg, act("a")); !errors.Is(err, ErrUncertain) {
		t.Fatalf("second commit without follower: want ErrUncertain, got %v", err)
	}
	// The follower returns (fresh state, same address is not required for
	// the stream — it re-dials the configured address).
	f3 := &replNode{t: t, e: e}
	m, err := New(e, Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", fAddr)
	if err != nil {
		t.Fatal(err)
	}
	f3.m, f3.srv = m, NewServer(m, ln)
	t.Cleanup(func() { f3.stop() })

	// The next commit gaps (the follower is at 0, the frame base is 2),
	// triggering a snapshot resync; the sync ack proves it completed.
	if err := p2.Request(bg, act("b")); err != nil {
		t.Fatalf("commit after follower restart: %v", err)
	}
	if got := f3.m.Steps(); got != 3 {
		t.Fatalf("resynced follower steps: got %d want 3", got)
	}
	if st := f3.m.Stats(); st.ReplResyncs != 1 {
		t.Fatalf("resyncs: got %d want 1", st.ReplResyncs)
	}
	if p2.StateKey() != f3.m.StateKey() {
		t.Fatal("state divergence after snapshot resync")
	}
}

// TestReplicationEpochFencing exercises the fencing matrix directly:
// stale epochs rejected, gaps detected, higher epochs adopted (deposing
// a primary), divergent tails healed only via snapshot.
func TestReplicationEpochFencing(t *testing.T) {
	e := parse.MustParse("(a | b)*")
	m := MustNew(e, Options{Follower: true})
	defer m.Close()

	// Frame at epoch 3 adopted from scratch (base 0 matches).
	st, err := m.ApplyReplicated(ReplFrame{Epoch: 3, PrevEpoch: 0, Base: 0, Actions: []expr.Action{act("a")}})
	if err != nil {
		t.Fatalf("initial frame: %v", err)
	}
	if st.Epoch != 3 || st.Steps != 1 {
		t.Fatalf("status after frame: %+v", st)
	}
	// Stale epoch rejected, and the answer names the fencing epoch.
	if st, err = m.ApplyReplicated(ReplFrame{Epoch: 2, PrevEpoch: 3, Base: 1, Actions: []expr.Action{act("b")}}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale frame: want ErrStaleEpoch, got %v", err)
	} else if st.Epoch != 3 {
		t.Fatalf("fencing status: %+v", st)
	}
	// Base mismatch → gap.
	if _, err = m.ApplyReplicated(ReplFrame{Epoch: 3, PrevEpoch: 3, Base: 5, Actions: []expr.Action{act("b")}}); !errors.Is(err, ErrReplGap) {
		t.Fatalf("gapped frame: want ErrReplGap, got %v", err)
	}
	// Commit-epoch mismatch → gap even when the base lines up (divergent
	// tail from a deposed primary).
	if _, err = m.ApplyReplicated(ReplFrame{Epoch: 4, PrevEpoch: 2, Base: 1, Actions: []expr.Action{act("b")}}); !errors.Is(err, ErrReplGap) {
		t.Fatalf("divergent frame: want ErrReplGap, got %v", err)
	}
	// A primary refuses frames at its own epoch (split brain) and from
	// below, but a higher epoch deposes it.
	epoch, err := m.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if _, err = m.ApplyReplicated(ReplFrame{Epoch: epoch, PrevEpoch: 3, Base: 1, Actions: []expr.Action{act("b")}}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("same-epoch frame to a primary: want ErrStaleEpoch, got %v", err)
	}
	if _, err = m.ApplyReplicated(ReplFrame{Epoch: epoch + 1, PrevEpoch: 3, Base: 1, Actions: []expr.Action{act("b")}}); err != nil {
		t.Fatalf("deposing frame: %v", err)
	}
	if st := m.Status(); st.Role != RoleFollower || st.Epoch != epoch+1 {
		t.Fatalf("deposed status: %+v", st)
	}
}

// TestFollowerRejectsWrites: a follower serves reads and refuses writes
// with ErrNotPrimary until promoted.
func TestFollowerRejectsWrites(t *testing.T) {
	e := parse.MustParse("(a - b)*")
	m := MustNew(e, Options{Follower: true})
	defer m.Close()

	if _, err := m.Ask(bg, act("a")); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("ask on follower: want ErrNotPrimary, got %v", err)
	}
	if err := m.Request(bg, act("a")); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("request on follower: want ErrNotPrimary, got %v", err)
	}
	for _, err := range m.RequestMany(bg, []expr.Action{act("a")}) {
		if !errors.Is(err, ErrNotPrimary) {
			t.Fatalf("request_many on follower: want ErrNotPrimary, got %v", err)
		}
	}
	// Reads work: a is permissible in the initial state.
	if !m.Try(act("a")) {
		t.Fatal("follower should answer Try")
	}
	// Promotion opens the write path and bumps the epoch into the ticket.
	epoch, err := m.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("promotion should mint a fresh epoch")
	}
	tk, err := m.Ask(bg, act("a"))
	if err != nil {
		t.Fatalf("ask after promotion: %v", err)
	}
	if uint64(tk)>>ticketEpochShift != epoch {
		t.Fatalf("ticket %d does not carry epoch %d", tk, epoch)
	}
	if err := m.Confirm(tk); err != nil {
		t.Fatal(err)
	}
}

// TestReplicationEpochPersists: a restarted replica remembers the epoch
// that fenced its timeline, so a deposed primary cannot shed its fencing
// by restarting.
func TestReplicationEpochPersists(t *testing.T) {
	e := parse.MustParse("(a | b)*")
	dir := t.TempDir()
	opts := Options{
		Follower:     true,
		LogPath:      filepath.Join(dir, "actions.log"),
		SnapshotPath: filepath.Join(dir, "state.snap"),
	}
	m := MustNew(e, opts)
	if _, err := m.ApplyReplicated(ReplFrame{Epoch: 7, Base: 0, Actions: []expr.Action{act("a")}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := MustNew(e, opts)
	defer m2.Close()
	st := m2.Status()
	if st.Epoch != 7 || st.Steps != 1 {
		t.Fatalf("recovered status: %+v (epoch/steps lost)", st)
	}
	if _, err := m2.ApplyReplicated(ReplFrame{Epoch: 6, PrevEpoch: 7, Base: 1, Actions: []expr.Action{act("b")}}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale frame after restart: want ErrStaleEpoch, got %v", err)
	}
}

// TestReplicationStalePrimaryDeposed: the split-brain end to end over the
// wire — a promoted follower fences the old primary's next commit, the
// old primary demotes itself and starts refusing writes.
func TestReplicationStalePrimaryDeposed(t *testing.T) {
	e := parse.MustParse("(a | b)*")
	f := startReplNode(t, e, Options{Follower: true})
	p := primaryFor(t, e, f)

	if err := p.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	// Out-of-band promotion (a second gateway, an operator): the follower
	// becomes primary of epoch 1 without the old primary knowing.
	if _, err := f.m.Promote(); err != nil {
		t.Fatal(err)
	}
	// The old primary's next commit is applied locally, then fenced at
	// replication time: the client is told the outcome is uncertain.
	if err := p.Request(bg, act("a")); !errors.Is(err, ErrUncertain) {
		t.Fatalf("fenced commit: want ErrUncertain, got %v", err)
	}
	// The fencing demoted it: writes now fail fast, before any commit.
	if err := p.Request(bg, act("a")); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("write on deposed primary: want ErrNotPrimary, got %v", err)
	}
	if st := p.Status(); st.Role != RoleFollower || st.Epoch != 1 {
		t.Fatalf("deposed primary status: %+v", st)
	}
}
