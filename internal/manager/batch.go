package manager

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/storage"
)

// Group commit. The atomic request path (Request/RequestMany) is the
// manager's hot path: under the one-at-a-time discipline every request
// takes the critical region alone, appends one log line and flushes (and,
// with SyncWrites, fsyncs) it before the next request may proceed, so
// throughput is bounded by per-action lock and syscall latency — not by
// the state engine, which the paper's benignity results make cheap
// (Sec 6). A commit queue fixes that the classic way: concurrent requests
// are coalesced into one batch that is admitted past the critical region
// once, validated and applied action by action through the operational
// semantics, staged into the log buffer, and settled with a single flush
// and at most a single fsync. Recovery is unchanged — the log contains
// the same entries in the same confirm order a one-at-a-time execution
// would have produced, so replay is provably equivalent (the
// crash-torture test exercises exactly this claim).

// defaultBatchDelay is the window an open batch waits for stragglers when
// Options.BatchMaxDelay is zero but batching is enabled.
const defaultBatchDelay = 200 * time.Microsecond

// commitReq is one atomic request waiting in the commit queue.
type commitReq struct {
	ctx  context.Context
	a    expr.Action
	done chan error // buffered(1); exactly one reply per request
}

// commitQueue coalesces concurrent atomic requests into group commits.
type commitQueue struct {
	ch      chan commitReq
	stop    chan struct{} // closed by Manager.Close: switch to drain mode
	drained chan struct{} // closed when no enqueuer is in flight anymore
	stopped chan struct{} // closed when the committer goroutine exited
	wg      sync.WaitGroup
	pending atomic.Int64 // admitted requests not yet answered (Drain waits on 0)
	maxSize int
	delay   time.Duration
}

func newCommitQueue(maxSize int, delay time.Duration) *commitQueue {
	if delay <= 0 {
		delay = defaultBatchDelay
	}
	return &commitQueue{
		ch:      make(chan commitReq, maxSize),
		stop:    make(chan struct{}),
		drained: make(chan struct{}),
		stopped: make(chan struct{}),
		maxSize: maxSize,
		delay:   delay,
	}
}

// enqueue submits one request and waits for its group commit to settle.
// The manager mutex guards admission, so no request can enter the queue
// after Close marked the manager closed — the committer therefore owes a
// reply to every request it can ever receive.
func (m *Manager) enqueue(ctx context.Context, a expr.Action) error {
	q := m.batch
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.role != rolePrimary {
		m.mu.Unlock()
		return ErrNotPrimary
	}
	if m.draining {
		m.metrics.drainRefusals.Inc()
		m.mu.Unlock()
		return ErrDraining
	}
	q.wg.Add(1)
	q.pending.Add(1)
	m.mu.Unlock()
	defer m.pendingDone(1)
	req := commitReq{ctx: ctx, a: a, done: make(chan error, 1)}
	select {
	case q.ch <- req:
	case <-ctx.Done():
		// The queue is backed up (e.g. the committer is parked behind an
		// ask/confirm reservation) and the caller gave up waiting for a
		// slot — nothing was submitted.
		return ctx.Err()
	}
	return <-req.done
}

// pendingDone retires n admitted requests. The queue-drained broadcast
// a Drain may be waiting on is taken under m.mu: an unlocked broadcast
// could fire between Drain's pending check and its cond registration —
// a lost wakeup that would park the drain until its context expired.
func (m *Manager) pendingDone(n int64) {
	q := m.batch
	q.wg.Done()
	if q.pending.Add(-n) == 0 {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// committer is the queue's single consumer: it collects a batch (up to
// maxSize requests), commits it, and repeats. After Close it fails the
// remaining queued requests with ErrClosed and exits once every enqueuer
// is gone.
//
// Collection is self-clocking rather than timer-paced: everything queued
// is drained, enqueuers already past admission get one scheduling chance
// to make the batch, and the commit starts the moment the queue runs dry
// (or delay elapsed, whichever is first). Requests that arrive during the
// commit — its flush and fsync are the cycle's dominant cost — accumulate
// in the channel and form the next batch, so coalescing scales with load
// by backpressure alone. A fixed straggler timer would instead put a
// timer wakeup on every cycle's critical path, which on a small machine
// quantizes to ~1ms and caps throughput at batchSize/1ms no matter how
// cheap the fsync is.
func (m *Manager) committer() {
	q := m.batch
	defer close(q.stopped)
	for {
		var first commitReq
		select {
		case first = <-q.ch:
		case <-q.stop:
			m.drainQueue()
			return
		}
		batch := append(make([]commitReq, 0, q.maxSize), first)
		deadline := m.clk.Now().Add(q.delay)
	collect:
		for len(batch) < q.maxSize {
			select {
			case r := <-q.ch:
				batch = append(batch, r)
				continue
			default:
			}
			if m.clk.Now().After(deadline) {
				break
			}
			// The queue is dry, but an admitted enqueuer may sit between
			// its admission check and its channel send; yield once so it
			// can make this batch instead of waiting out the next commit.
			runtime.Gosched()
			select {
			case r := <-q.ch:
				batch = append(batch, r)
			default:
				break collect
			}
		}
		// Queued requests passed the enqueue-time admission (incl. the
		// drain check), so a drain that started later still lets them
		// settle — they are in flight by definition.
		m.commitBatch(batch, true)
	}
}

// drainQueue fails every remaining queued request after Close. The
// drained channel (closed once q.wg hits zero, i.e. no enqueuer is in or
// before its channel send) bounds the loop.
func (m *Manager) drainQueue() {
	q := m.batch
	go func() {
		q.wg.Wait()
		close(q.drained)
	}()
	for {
		select {
		case r := <-q.ch:
			r.done <- ErrClosed
		case <-q.drained:
			return
		}
	}
}

// commitBatch runs one group commit: it takes the manager lock once,
// waits for the critical region to be free (one admission check per
// batch, not per action), then validates and applies each request in
// arrival order, staging log entries in the write buffer. A single
// flush — and at most a single fsync — makes the whole batch durable.
// admitted marks batches whose requests already passed the enqueue-time
// admission (the committer path); fresh batches are still subject to the
// drain check.
func (m *Manager) commitBatch(batch []commitReq, admitted bool) {
	errs := make([]error, len(batch))
	m.mu.Lock()
	for {
		if m.closed {
			m.mu.Unlock()
			for _, r := range batch {
				r.done <- ErrClosed
			}
			return
		}
		if m.role != rolePrimary {
			// Deposed (or started as a follower): writes are refused. A
			// batch caught by a mid-wait demotion fails the same way its
			// requests would have individually. Checked before the drain —
			// ErrNotPrimary makes the client fail over, ErrDraining makes
			// it wait, and a deposed node is one to leave, not wait for.
			m.mu.Unlock()
			for _, r := range batch {
				r.done <- ErrNotPrimary
			}
			return
		}
		if !admitted && m.draining {
			m.metrics.drainRefusals.Add(uint64(len(batch)))
			m.mu.Unlock()
			for _, r := range batch {
				r.done <- ErrDraining
			}
			return
		}
		m.expireLocked()
		if !m.reserved {
			break
		}
		// An outstanding ask/confirm reservation excludes the batch, just
		// as it would exclude each request individually. Requests whose
		// context expires while waiting fail in place; the wait wakes on
		// Confirm/Abort/expiry/Close broadcasts and on cancellation of
		// the first still-live request.
		var waitCtx context.Context
		for i, r := range batch {
			if errs[i] != nil {
				continue
			}
			if err := r.ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			if waitCtx == nil {
				waitCtx = r.ctx
			}
		}
		if waitCtx == nil {
			// Every request gave up waiting.
			m.mu.Unlock()
			for i, r := range batch {
				r.done <- errs[i]
			}
			return
		}
		waitCond(m.cond, waitCtx, m.clk, m.timeout)
	}
	applied := 0
	batchBase := uint64(m.en.Steps())
	var appliedActs []expr.Action
	for i, r := range batch {
		if errs[i] != nil {
			continue
		}
		m.stats.Asks++
		m.metrics.asks.Inc()
		if err := r.ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		if !m.en.Try(r.a) {
			m.stats.Denies++
			m.metrics.denies.Inc()
			errs[i] = deniedErr(r.a)
			continue
		}
		if m.store != nil {
			le := storage.Entry{Name: r.a.Name, Args: r.a.Values(), Seq: uint64(m.en.Steps()) + 1}
			if err := m.store.Buffer(le); err != nil {
				errs[i] = err
				continue
			}
		}
		if err := m.en.Step(r.a); err != nil {
			// Cannot happen: Try held the lock since the check.
			errs[i] = err
			continue
		}
		m.stats.Grants++
		m.stats.Confirms++
		m.stats.Transits++
		applied++
		appliedActs = append(appliedActs, r.a)
	}
	m.metrics.askMeter.Mark(uint64(len(batch)))
	m.metrics.grants.Add(uint64(applied))
	m.metrics.confirms.Add(uint64(applied))
	var wait func() error
	if applied > 0 {
		m.metrics.batchSize.Observe(uint64(applied))
		if m.store != nil {
			flushStart := m.clk.Now()
			if err := m.store.Commit(m.syncWrites); err != nil {
				// The flush failed after the engine advanced: the in-memory
				// state may be ahead of the durable log, exactly the exposure
				// any group commit has at its single durability point. Report
				// the failure to the whole batch — the outcome of each
				// member is unknown to its client, like a connection lost
				// between execute and confirm.
				m.mu.Unlock()
				for _, r := range batch {
					r.done <- err
				}
				return
			}
			m.metrics.flushNs.ObserveDuration(m.clk.Since(flushStart))
		}
		// One replication frame per batch: the followers pay one apply pass
		// and one durability point for the whole group commit, exactly
		// like the primary.
		wait = m.replicateLocked(batchBase, appliedActs, nil)
		// One subscription sweep and at most one checkpoint per batch:
		// subscribers observe the net effect (they are documented to only
		// ever need the latest status), and the snapshot interval counts
		// confirms, not batches.
		m.notifyLocked()
		m.sinceSnap += applied - 1 // maybeSnapshotLocked adds the last one
		m.maybeSnapshotLocked()
	}
	m.mu.Unlock()
	if wait != nil {
		// Sync replication: the batch is acknowledged only after every
		// follower applied it. A failed ack makes every applied member
		// uncertain — like a connection lost between execute and confirm.
		if werr := wait(); werr != nil {
			for i := range batch {
				if errs[i] == nil {
					errs[i] = werr
				}
			}
		}
	}
	for i, r := range batch {
		r.done <- errs[i]
	}
}

// deniedErr wraps ErrDenied with the refused action.
func deniedErr(a expr.Action) error {
	return &deniedError{a: a}
}

// deniedError keeps the refused action while remaining errors.Is-equal to
// ErrDenied, without paying fmt.Errorf on the hot deny path.
type deniedError struct{ a expr.Action }

func (e *deniedError) Error() string { return ErrDenied.Error() + ": " + e.a.String() }
func (e *deniedError) Unwrap() error { return ErrDenied }

// RequestMany submits a batch of atomic requests in one call and reports
// one error per action (nil = confirmed), in order. With batching enabled
// the actions join the commit queue together; otherwise they are applied
// back to back in one critical section with a single log flush — either
// way the actions commit with one admission check and one durability
// point instead of n. Actions are validated in order against the state
// the previous ones produced, exactly as if n clients had raced their
// individual Requests and arrived in this order.
func (m *Manager) RequestMany(ctx context.Context, actions []expr.Action) []error {
	errs := make([]error, len(actions))
	if len(actions) == 0 {
		return errs
	}
	if q := m.batch; q != nil {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			for i := range errs {
				errs[i] = ErrClosed
			}
			return errs
		}
		if m.role != rolePrimary {
			m.mu.Unlock()
			for i := range errs {
				errs[i] = ErrNotPrimary
			}
			return errs
		}
		if m.draining {
			m.metrics.drainRefusals.Add(uint64(len(actions)))
			m.mu.Unlock()
			for i := range errs {
				errs[i] = ErrDraining
			}
			return errs
		}
		q.wg.Add(1)
		q.pending.Add(int64(len(actions)))
		m.mu.Unlock()
		defer m.pendingDone(int64(len(actions)))
		// A single sender keeps the actions in order; the committer drains
		// the channel in that order, so they are validated and applied in
		// sequence (possibly interleaved with other clients' requests, and
		// possibly across adjacent batches when the burst exceeds the
		// batch size). If the context dies while the queue is backed up,
		// the unsent tail fails with the context error; already-submitted
		// actions are still awaited (the committer owes them a reply).
		reqs := make([]commitReq, len(actions))
		sent := len(actions)
		for i, a := range actions {
			reqs[i] = commitReq{ctx: ctx, a: a, done: make(chan error, 1)}
			select {
			case q.ch <- reqs[i]:
				continue
			case <-ctx.Done():
			}
			sent = i
			break
		}
		for i := 0; i < sent; i++ {
			errs[i] = <-reqs[i].done
		}
		for i := sent; i < len(actions); i++ {
			errs[i] = ctx.Err()
		}
		return errs
	}
	reqs := make([]commitReq, len(actions))
	for i, a := range actions {
		reqs[i] = commitReq{ctx: ctx, a: a, done: make(chan error, 1)}
	}
	m.commitBatch(reqs, false)
	for i := range reqs {
		errs[i] = <-reqs[i].done
	}
	return errs
}
