package manager

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/parse"
)

// Elastic-membership unit tests: drain semantics, runtime attach/detach
// of follower streams, and the wire surface that exposes them. Like the
// replication suite, everything synchronizes on protocol replies (sync
// acks, Drain returns, channel sends) — no sleeps.

// TestDrainRejectsNewAsksLetsInflightSettle: drain refuses fresh asks
// with the retryable sentinel, waits for the outstanding reservation to
// settle, and Resume reopens the shop.
func TestDrainRejectsNewAsksLetsInflightSettle(t *testing.T) {
	m := MustNew(parse.MustParse("(a - b)*"), Options{})
	defer m.Close()

	tk, err := m.Ask(bg, act("a"))
	if err != nil {
		t.Fatal(err)
	}
	// Drain with the ticket outstanding: it must block until the confirm.
	drained := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		drained <- m.Drain(bg)
	}()
	<-started
	// The in-flight ticket settles normally while draining...
	if err := m.Confirm(tk); err != nil {
		t.Fatalf("confirm while draining: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// ...but new asks and requests are refused with the sentinel.
	if _, err := m.Ask(bg, act("b")); !errors.Is(err, ErrDraining) {
		t.Fatalf("ask while drained: want ErrDraining, got %v", err)
	}
	if err := m.Request(bg, act("b")); !errors.Is(err, ErrDraining) {
		t.Fatalf("request while drained: want ErrDraining, got %v", err)
	}
	// The direct (unbatched) RequestMany path is refused too.
	for i, err := range m.RequestMany(bg, []expr.Action{act("b")}) {
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("request_many slot %d while drained: want ErrDraining, got %v", i, err)
		}
	}
	if !m.Draining() {
		t.Fatal("manager should report draining")
	}
	if err := m.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := m.Request(bg, act("b")); err != nil {
		t.Fatalf("request after resume: %v", err)
	}
}

// TestDrainWaitsForQueuedGroupCommits: requests already admitted to the
// commit queue settle before Drain returns; requests arriving after the
// drain flag are refused at admission.
func TestDrainWaitsForQueuedGroupCommits(t *testing.T) {
	m := MustNew(parse.MustParse("(a | b)*"), Options{BatchMaxSize: 8, BatchMaxDelay: time.Millisecond})
	defer m.Close()

	// Park the committer behind a reservation so enqueued requests pile up.
	tk, err := m.Ask(bg, act("a"))
	if err != nil {
		t.Fatal(err)
	}
	const queued = 4
	done := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func() { done <- m.Request(bg, act("b")) }()
	}
	// Wait until all four are admitted (counted as pending).
	for m.batch.pending.Load() < queued {
		time.Sleep(time.Millisecond)
	}
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(bg) }()
	// Release the region: the queued batch commits, then the drain
	// completes.
	if err := m.Confirm(tk); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < queued; i++ {
		if err := <-done; err != nil {
			t.Fatalf("queued request %d: %v", i, err)
		}
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := m.Steps(); got != queued+1 {
		t.Fatalf("steps: got %d want %d", got, queued+1)
	}
	// Fresh batched requests are refused at admission.
	if err := m.Request(bg, act("b")); !errors.Is(err, ErrDraining) {
		t.Fatalf("batched request while drained: want ErrDraining, got %v", err)
	}
	for i, err := range m.RequestMany(bg, []expr.Action{act("a"), act("b")}) {
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("request_many slot %d while drained: want ErrDraining, got %v", i, err)
		}
	}
}

// TestDemotionClearsDrain: fencing a drained migration source demotes
// it AND lifts the drain — a deposed node must answer ErrNotPrimary
// (fail over!), never ErrDraining (wait), and a later re-promotion must
// serve immediately instead of inheriting a stale refusal.
func TestDemotionClearsDrain(t *testing.T) {
	m := MustNew(parse.MustParse("(a | b)*"), Options{})
	defer m.Close()
	if err := m.Drain(bg); err != nil {
		t.Fatal(err)
	}
	// The migration's fence: an (empty) frame of the new primary's epoch.
	if _, err := m.ApplyReplicated(ReplFrame{Epoch: 1}); err != nil {
		t.Fatalf("fence: %v", err)
	}
	if m.Draining() {
		t.Fatal("fenced source still draining")
	}
	if err := m.Request(bg, act("a")); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("fenced source: want ErrNotPrimary, got %v", err)
	}
	if _, err := m.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := m.Request(bg, act("a")); err != nil {
		t.Fatalf("request after re-promotion: %v", err)
	}
}

// TestFollowerAnswersNotPrimaryOverDraining: when a node is both a
// follower and draining, every admission path answers ErrNotPrimary —
// the error that makes clients elect elsewhere, not wait here.
func TestFollowerAnswersNotPrimaryOverDraining(t *testing.T) {
	m := MustNew(parse.MustParse("(a | b)*"), Options{Follower: true})
	defer m.Close()
	if err := m.Drain(bg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ask(bg, act("a")); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("ask: want ErrNotPrimary, got %v", err)
	}
	if err := m.Request(bg, act("a")); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("request: want ErrNotPrimary, got %v", err)
	}
	// The direct (unbatched) RequestMany path runs commitBatch: the role
	// refusal must win there too.
	for i, err := range m.RequestMany(bg, []expr.Action{act("a")}) {
		if !errors.Is(err, ErrNotPrimary) {
			t.Fatalf("request_many slot %d: want ErrNotPrimary, got %v", i, err)
		}
	}
}

// TestAttachReplicaLive: a primary born without replicas attaches a
// follower at runtime — the attach ships a snapshot that carries the
// history so far, and later commits stream to it under the manager's
// SyncReplicas setting.
func TestAttachReplicaLive(t *testing.T) {
	e := parse.MustParse("(a - b)*")
	p := MustNew(e, Options{SyncReplicas: true})
	defer p.Close()
	if err := p.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}

	f := startReplNode(t, e, Options{Follower: true})
	st, err := p.AttachReplica(bg, f.srv.Addr())
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if st.Steps != 1 {
		t.Fatalf("attach ack steps: got %d want 1 (snapshot carries the pre-attach history)", st.Steps)
	}
	if got := f.m.Steps(); got != 1 {
		t.Fatalf("follower steps after attach: got %d want 1", got)
	}
	// Later commits stream synchronously (the lazily created replicator
	// inherits SyncReplicas from the options).
	if err := p.Request(bg, act("b")); err != nil {
		t.Fatal(err)
	}
	if got := f.m.Steps(); got != 2 {
		t.Fatalf("follower steps after streamed commit: got %d want 2", got)
	}
	ti := p.Topology()
	if len(ti.Replicas) != 1 || ti.Replicas[0] != f.srv.Addr() {
		t.Fatalf("topology replicas: %v", ti.Replicas)
	}

	// Detach: the follower stops receiving frames.
	if err := p.DetachReplica(f.srv.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := p.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	if got := f.m.Steps(); got != 2 {
		t.Fatalf("detached follower advanced: %d steps", got)
	}
	if got := len(p.Topology().Replicas); got != 0 {
		t.Fatalf("topology after detach: %d streams", got)
	}
}

// TestAttachReplicaRequiresPrimary: a follower refuses to grow streams.
func TestAttachReplicaRequiresPrimary(t *testing.T) {
	m := MustNew(parse.MustParse("(a | b)*"), Options{Follower: true})
	defer m.Close()
	if _, err := m.AttachReplica(bg, "127.0.0.1:1"); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("attach on follower: want ErrNotPrimary, got %v", err)
	}
}

// TestElasticWireOps: migrate/retire/drain/resume/topology round-trip
// through the wire protocol, including the ErrDraining sentinel.
func TestElasticWireOps(t *testing.T) {
	e := parse.MustParse("(a - b)*")
	f := startReplNode(t, e, Options{Follower: true})

	m := MustNew(e, Options{SyncReplicas: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m, ln)
	defer func() {
		srv.Close()
		m.Close()
	}()
	cl := dialAddr(t, srv.Addr())

	if err := cl.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Migrate(bg, f.srv.Addr())
	if err != nil {
		t.Fatalf("migrate op: %v", err)
	}
	if st.Steps != 1 || st.Role != RoleFollower {
		t.Fatalf("migrate ack: %+v", st)
	}
	ti, err := cl.Topology(bg)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Role != RolePrimary || ti.Draining || len(ti.Replicas) != 1 {
		t.Fatalf("topology: %+v", ti)
	}
	if err := cl.Drain(bg); err != nil {
		t.Fatalf("drain op: %v", err)
	}
	if err := cl.Request(bg, act("b")); !errors.Is(err, ErrDraining) {
		t.Fatalf("request on drained server: want ErrDraining across the wire, got %v", err)
	}
	if ti, err = cl.Topology(bg); err != nil || !ti.Draining {
		t.Fatalf("topology while draining: %+v err=%v", ti, err)
	}
	if err := cl.Resume(bg); err != nil {
		t.Fatalf("resume op: %v", err)
	}
	if err := cl.Request(bg, act("b")); err != nil {
		t.Fatalf("request after resume: %v", err)
	}
	if err := cl.Retire(bg, f.srv.Addr()); err != nil {
		t.Fatalf("retire op: %v", err)
	}
	if ti, err = cl.Topology(bg); err != nil || len(ti.Replicas) != 0 {
		t.Fatalf("topology after retire: %+v err=%v", ti, err)
	}
}

// dialAddr dials a raw address with cleanup.
func dialAddr(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestElasticOpsOnNonElasticCoordinator: a server fronting a coordinator
// without the Elastic surface answers the ops with a clean error.
func TestElasticOpsOnNonElasticCoordinator(t *testing.T) {
	// A Manager IS elastic; hide the optional interfaces behind a shim.
	m := MustNew(parse.MustParse("(a | b)*"), Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCoordServer(bareCoordinator{Coordinator: CoordinatorFor(m)}, ln)
	defer func() {
		srv.Close()
		m.Close()
	}()
	cl := dialAddr(t, srv.Addr())
	if err := cl.Drain(bg); err == nil {
		t.Fatal("drain on a non-elastic coordinator should fail")
	}
	if _, err := cl.Topology(bg); err == nil {
		t.Fatal("topology on a non-elastic coordinator should fail")
	}
	// The core protocol still works through the shim.
	if err := cl.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
}

// bareCoordinator embeds only the Coordinator surface, hiding the
// Elastic/ReplicaTarget/BatchRequester extensions of the wrapped value.
type bareCoordinator struct{ Coordinator }
