package manager

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func journalLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestJournalBounded: the processed-request journal previously grew one
// line per request forever, across restarts. It must now stay within
// twice its dedup window on disk while still deduplicating the recent
// tail, including across a reopen.
func TestJournalBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	const cap = 16
	j, err := openProcessedJournalCap(path, cap)
	if err != nil {
		t.Fatal(err)
	}
	const total = 20 * cap
	for i := 0; i < total; i++ {
		if err := j.record(fmt.Sprintf("req-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := journalLines(t, path); got > 2*cap {
		t.Fatalf("journal has %d lines on disk, want ≤ %d", got, 2*cap)
	}
	// The recent window dedupes; ancient IDs have aged out.
	if !j.seen(fmt.Sprintf("req-%d", total-1)) || !j.seen(fmt.Sprintf("req-%d", total-cap)) {
		t.Fatal("recent request IDs must stay deduplicated")
	}
	if j.seen("req-0") {
		t.Fatal("ancient request IDs should age out of the window")
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the persisted window must still dedupe the recent tail and
	// the file must not have grown.
	j2, err := openProcessedJournalCap(path, cap)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if !j2.seen(fmt.Sprintf("req-%d", total-1)) {
		t.Fatal("reopened journal lost the most recent request ID")
	}
	for i := 0; i < 3*cap; i++ {
		if err := j2.record(fmt.Sprintf("next-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := journalLines(t, path); got > 2*cap {
		t.Fatalf("journal regrew to %d lines after reopen, want ≤ %d", got, 2*cap)
	}
}

// TestJournalCompactionCrashSafe: a leftover temp file from a crashed
// compaction must not confuse a reopen, and the journal file itself is
// replaced atomically (the window is never lost).
func TestJournalCompactionCrashSafe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, err := openProcessedJournalCap(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := j.record(fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash that left a stale temp file behind.
	if err := os.WriteFile(path+".tmp", []byte("stale\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	j2, err := openProcessedJournalCap(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if !j2.seen("r29") {
		t.Fatal("window lost across compaction + reopen")
	}
	if j2.seen("stale") {
		t.Fatal("stale temp content leaked into the journal")
	}
}
