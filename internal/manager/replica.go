package manager

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/state"
	"repro/internal/storage"
)

// Primary/follower replication. A manager with Options.Replicas streams
// every committed group commit as a seq-numbered frame to its follower
// servers, which apply the actions to their own engines through the very
// same operational semantics — the state being a deterministic function
// of the confirmed action sequence, a follower that has applied the same
// frames IS the primary's state, ready for promotion the moment the
// primary dies.
//
// Consistency is governed by an epoch (a monotone promotion counter, the
// fencing token of the usual primary/backup construction):
//
//   - every frame carries the primary's epoch; a follower rejects frames
//     from an epoch below its own (ErrStaleEpoch), which is how a deposed
//     primary that reappears after a failover learns it is deposed — it
//     demotes itself to follower and starts refusing client writes
//     (ErrNotPrimary);
//   - frames also carry the commit position (Base = engine steps before
//     the frame) and the epoch of the previous commit. A follower applies
//     a frame only when both match its own state exactly; any mismatch —
//     missed frames, a divergent tail committed by a deposed primary —
//     answers ErrReplGap, and the stream heals it by shipping a full
//     state snapshot (the PR 1 serialization) that the follower installs
//     wholesale, discarding whatever it had. By the usual log-matching
//     induction, (steps, commit epoch) equality implies identical
//     histories, so the cheap check is a complete divergence detector.
//
// SyncReplicas chooses the consistency model: with it set, a commit is
// acknowledged to the client only after every follower acked the frame,
// so an acknowledged action can never be lost to a failover (the commit
// is on every replica before the client hears "yes"); a commit whose
// acks fail or time out is reported ErrUncertain — applied locally,
// outcome unknown, exactly like a connection lost between execute and
// confirm. Without it acks are asynchronous: the commit path pays only a
// channel send and acknowledged actions may evaporate if the primary
// dies before the stream drains — the classic async-replication window.
//
// Tickets are epoch-qualified (epoch in the high 32 bits) so a ticket
// granted by a deposed primary can never collide with one granted after
// the failover, and recently confirmed tickets ride along in the frames:
// the follower's dedup window is what makes a confirm retried across a
// failover idempotent.

// Replication errors.
var (
	// ErrNotPrimary: the manager is a follower (or was deposed) and
	// refuses client writes; reads (Try/Final/Subscribe) still work.
	ErrNotPrimary = errors.New("manager: not primary")
	// ErrStaleEpoch: a replication frame or snapshot carried an epoch
	// below the receiver's — the sender is a deposed primary.
	ErrStaleEpoch = errors.New("manager: stale replication epoch")
	// ErrReplGap: a frame did not line up with the follower's commit
	// position; the stream must resync with a full snapshot.
	ErrReplGap = errors.New("manager: replication gap")
	// ErrUncertain: the commit was applied locally but replication did
	// not (fully) acknowledge it under SyncReplicas — the outcome is
	// unknown to the client, like a connection lost before the reply.
	ErrUncertain = errors.New("manager: commit outcome uncertain (replication unacknowledged)")
)

// Role names as reported over the wire.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// roles, internally.
type role int

const (
	rolePrimary role = iota
	roleFollower
)

// ticketEpochShift puts the grant epoch in the high bits of a ticket, so
// tickets from different epochs can never collide (a gateway holding a
// ticket from a deposed primary must not accidentally settle a fresh
// reservation on the promoted follower).
const ticketEpochShift = 32

func makeTicket(epoch, n uint64) Ticket {
	return Ticket(epoch<<ticketEpochShift | n&(1<<ticketEpochShift-1))
}

// ReplFrame is one replicated commit: the actions of one group commit (or
// one ask-path confirm) at a fixed position of the global history.
type ReplFrame struct {
	Epoch     uint64        // sender's epoch
	PrevEpoch uint64        // epoch of the commit preceding Base (log matching)
	Base      uint64        // engine steps before this frame
	Actions   []expr.Action // committed actions, in confirm order
	Tickets   []Ticket      // per-action tickets (0 = batch commit without a ticket)
}

// ReplSnapshot is a full state sync: the frame the stream falls back to
// when the incremental frames do not line up with the follower.
type ReplSnapshot struct {
	Epoch       uint64
	CommitEpoch uint64
	Steps       uint64
	Counter     uint64          // ticket counter (low bits)
	Recent      []Ticket        // confirmed-ticket dedup window
	Engine      json.RawMessage // state.Engine serialization
}

// ReplStatus identifies a replica: its role, epoch and commit position.
type ReplStatus struct {
	Role  string
	Epoch uint64
	Steps uint64
}

// ReplicaTarget is the replication surface a wire server exposes when its
// coordinator supports it (a Manager does; a Gateway does not).
type ReplicaTarget interface {
	ApplyReplicated(ctx context.Context, f ReplFrame) (ReplStatus, error)
	InstallReplSnapshot(ctx context.Context, s ReplSnapshot) (ReplStatus, error)
	Promote(ctx context.Context) (uint64, error)
	ReplStatus(ctx context.Context) (ReplStatus, error)
}

// defaultReplAckTimeout bounds the sync-mode wait for follower acks.
const defaultReplAckTimeout = 5 * time.Second

// confirmedWindowCap bounds the dedup window of recently confirmed
// tickets — the journal that makes a confirm retried across a reconnect
// or failover idempotent instead of "unknown ticket". 256 comfortably
// exceeds any plausible number of in-flight settle retries.
const confirmedWindowCap = 256

// ticketWindow is a bounded set of recently confirmed tickets.
type ticketWindow struct {
	ring []Ticket
	set  map[Ticket]struct{}
	next int
}

func newTicketWindow() *ticketWindow {
	return &ticketWindow{set: make(map[Ticket]struct{}, confirmedWindowCap)}
}

func (w *ticketWindow) add(t Ticket) {
	if t == 0 {
		return
	}
	if _, ok := w.set[t]; ok {
		return
	}
	if len(w.ring) < confirmedWindowCap {
		w.ring = append(w.ring, t)
	} else {
		delete(w.set, w.ring[w.next])
		w.ring[w.next] = t
		w.next = (w.next + 1) % confirmedWindowCap
	}
	w.set[t] = struct{}{}
}

func (w *ticketWindow) has(t Ticket) bool {
	_, ok := w.set[t]
	return ok
}

// list returns the window contents (for replication snapshots).
func (w *ticketWindow) list() []Ticket {
	out := make([]Ticket, len(w.ring))
	copy(out, w.ring)
	return out
}

// --- primary side: the replicator and its per-follower streams ----------

// replItem is one frame queued on a stream, with an optional ack channel
// (sync mode) — or, when sync is non-nil, a control request to force a
// full snapshot resync right now and report the follower's position
// (AttachReplica's catch-up probe).
type replItem struct {
	frame ReplFrame
	res   chan error   // buffered(1); nil in async mode
	sync  chan syncAck // buffered(1); non-nil turns the item into a resync request
}

// syncAck reports a forced resync: the follower's acked status, or why
// it could not be reached.
type syncAck struct {
	st  ReplStatus
	err error
}

// replStreamCap bounds a stream's frame backlog. Overflow in async mode
// drops the frame — the follower detects the gap and the stream heals it
// with a snapshot; overflow in sync mode fails the publish (uncertain).
const replStreamCap = 1024

// replicator fans committed frames out to the follower servers. The
// stream set is dynamic (AttachReplica/DetachReplica); mutations and
// publishes are serialized by the owning manager's mutex.
type replicator struct {
	m          *Manager
	sync       bool
	ackTimeout time.Duration
	streams    []*replStream // guarded by m.mu
	stop       chan struct{}
	wg         sync.WaitGroup
}

// replStream is one follower's ordered frame queue plus the goroutine
// draining it over a self-healing wire connection.
type replStream struct {
	r    *replicator
	addr string
	ch   chan replItem
	quit chan struct{} // closed by removeStream (this stream only)

	// goroutine-local:
	cl       *Client
	syncedTo uint64 // follower steps after the last acked op (skip covered frames)
	synced   bool   // syncedTo is known (an ack has been seen)
}

func newReplicator(m *Manager, addrs []string, syncAcks bool, ackTimeout time.Duration) *replicator {
	if ackTimeout <= 0 {
		ackTimeout = defaultReplAckTimeout
	}
	r := &replicator{m: m, sync: syncAcks, ackTimeout: ackTimeout, stop: make(chan struct{})}
	for _, addr := range addrs {
		r.addStreamLocked(addr)
	}
	return r
}

// addStreamLocked starts one follower stream. Callers hold m.mu (or are
// the constructor, before the replicator is visible to anyone).
func (r *replicator) addStreamLocked(addr string) *replStream {
	st := &replStream{r: r, addr: addr, ch: make(chan replItem, replStreamCap), quit: make(chan struct{})}
	r.streams = append(r.streams, st)
	r.wg.Add(1)
	go st.run()
	return st
}

// stream returns the stream to addr, creating it if absent. Callers hold
// m.mu.
func (r *replicator) stream(addr string) *replStream {
	for _, st := range r.streams {
		if st.addr == addr {
			return st
		}
	}
	return r.addStreamLocked(addr)
}

// removeStream stops and removes the stream to addr (no-op when absent).
// Callers hold m.mu.
func (r *replicator) removeStream(addr string) {
	for i, st := range r.streams {
		if st.addr == addr {
			r.streams = append(r.streams[:i], r.streams[i+1:]...)
			close(st.quit)
			return
		}
	}
}

// close stops the streams; queued frames are dropped (their acks fail).
func (r *replicator) close() {
	close(r.stop)
	r.wg.Wait()
}

// publish enqueues one frame on every stream. Callers hold m.mu; the
// sends are non-blocking, so the commit path never waits on a slow
// follower while holding the manager lock. The returned wait function
// (nil in async mode) blocks until every follower acked and reports
// ErrUncertain when any ack failed or timed out.
func (r *replicator) publish(f ReplFrame) func() error {
	var acks []chan error
	for _, st := range r.streams {
		var res chan error
		if r.sync {
			res = make(chan error, 1)
			acks = append(acks, res)
		}
		select {
		case st.ch <- replItem{frame: f, res: res}:
		default:
			// Backlogged stream. Async: drop — the follower's gap check
			// makes the stream resync with a snapshot once it catches up.
			// Sync: the ack fails immediately.
			if res != nil {
				res <- fmt.Errorf("replication stream to %s backlogged", st.addr)
			}
		}
	}
	if !r.sync {
		return nil
	}
	timeout := r.ackTimeout
	clk := r.m.clk
	return func() error {
		deadline := clk.Now().Add(timeout)
		for _, ch := range acks {
			remaining := deadline.Sub(clk.Now())
			if remaining <= 0 {
				return fmt.Errorf("%w: ack timeout", ErrUncertain)
			}
			select {
			case err := <-ch:
				if err != nil {
					return fmt.Errorf("%w: %v", ErrUncertain, err)
				}
			case <-clk.After(remaining):
				return fmt.Errorf("%w: ack timeout", ErrUncertain)
			}
		}
		return nil
	}
}

// run drains the stream: each frame is shipped to the follower,
// reconnecting on dead connections and healing gaps with snapshots.
// A resync request (it.sync) forces a full snapshot ship in queue order
// and reports the follower's acked position.
func (st *replStream) run() {
	defer st.r.wg.Done()
	defer func() {
		if st.cl != nil {
			st.cl.Close()
		}
	}()
	for {
		select {
		case it := <-st.ch:
			if it.sync != nil {
				ack, err := st.resync()
				it.sync <- syncAck{st: ack, err: err}
				continue
			}
			err := st.ship(it.frame)
			if it.res != nil {
				it.res <- err
			}
		case <-st.r.stop:
			st.fail(ErrClosed)
			return
		case <-st.quit:
			// Detached: fail queued acks so no waiter hangs on a stream
			// that will never ship again.
			st.fail(errors.New("manager: replica detached"))
			return
		}
	}
}

// fail answers every queued item with err (shutdown/detach path).
func (st *replStream) fail(err error) {
	for {
		select {
		case it := <-st.ch:
			if it.res != nil {
				it.res <- err
			}
			if it.sync != nil {
				it.sync <- syncAck{err: err}
			}
		default:
			return
		}
	}
}

// client returns the live follower connection, dialing if necessary.
func (st *replStream) client() (*Client, error) {
	if st.cl != nil {
		return st.cl, nil
	}
	cl, err := DialWith(st.addr, DialOptions{Dialer: st.r.m.dialer})
	if err != nil {
		return nil, err
	}
	st.cl = cl
	st.synced = false // follower progress unknown on a fresh connection
	return cl, nil
}

func (st *replStream) drop() {
	if st.cl != nil {
		st.cl.Close()
		st.cl = nil
	}
}

// ship delivers one frame, trying at most twice (a dead connection is
// re-dialed once) and falling back to a full snapshot on a gap. An
// ErrStaleEpoch answer deposes the local primary.
func (st *replStream) ship(f ReplFrame) error {
	if st.synced && f.Base+uint64(len(f.Actions)) <= st.syncedTo {
		return nil // already covered by an earlier snapshot resync
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cl, err := st.client()
		if err != nil {
			lastErr = err
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), st.r.ackTimeout)
		ackStart := st.r.m.clk.Now()
		ack, err := cl.Replicate(ctx, f)
		cancel()
		switch {
		case err == nil:
			st.r.m.metrics.replAckNs.ObserveDuration(st.r.m.clk.Since(ackStart))
			st.syncedTo, st.synced = ack.Steps, true
			return nil
		case errors.Is(err, ErrStaleEpoch):
			st.r.m.demoteTo(ack.Epoch)
			return err
		case errors.Is(err, ErrReplGap):
			if _, err := st.resync(); err != nil {
				lastErr = err
				continue
			}
			if st.syncedTo >= f.Base+uint64(len(f.Actions)) {
				return nil // the snapshot covered this frame
			}
			// The snapshot was taken before this frame committed (it ran
			// unlocked against a moving history) — ship the frame on the
			// next attempt.
			lastErr = ErrReplGap
		case connErrLocal(err):
			st.drop()
			lastErr = err
		default:
			lastErr = err
			return lastErr
		}
	}
	st.r.m.metrics.replShipErrs.Inc()
	return lastErr
}

// resync ships a full state snapshot, the catch-all that heals missed
// frames, divergent tails and brand-new followers alike. It returns the
// follower's acked status (AttachReplica's catch-up probe reads Steps).
func (st *replStream) resync() (ReplStatus, error) {
	snap, err := st.r.m.replSnapshot()
	if err != nil {
		return ReplStatus{}, err
	}
	cl, err := st.client()
	if err != nil {
		return ReplStatus{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), st.r.ackTimeout)
	ack, err := cl.ReplicateSnapshot(ctx, snap)
	cancel()
	if err != nil {
		if errors.Is(err, ErrStaleEpoch) {
			st.r.m.demoteTo(ack.Epoch)
		} else if connErrLocal(err) {
			st.drop()
		}
		return ack, err
	}
	st.syncedTo, st.synced = ack.Steps, true
	st.r.m.metrics.replResyncs.Inc()
	return ack, nil
}

// connErrLocal mirrors cluster.connErr for the stream's own retries.
func connErrLocal(err error) bool {
	return errors.Is(err, ErrConnLost) || errors.Is(err, ErrSendFailed)
}

// --- manager hooks -------------------------------------------------------

// replicateLocked publishes one committed frame to the followers and
// advances the commit epoch. Callers hold m.mu and call the returned wait
// function (which may be nil) after releasing it.
func (m *Manager) replicateLocked(base uint64, acts []expr.Action, tks []Ticket) func() error {
	prev := m.commitEpoch
	m.commitEpoch = m.epoch
	if m.repl == nil || len(acts) == 0 {
		return nil
	}
	return m.repl.publish(ReplFrame{
		Epoch:     m.epoch,
		PrevEpoch: prev,
		Base:      base,
		Actions:   acts,
		Tickets:   tks,
	})
}

// replSnapshot captures the full replication state under the lock.
func (m *Manager) replSnapshot() (ReplSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	eng, err := m.en.MarshalState()
	if err != nil {
		return ReplSnapshot{}, err
	}
	return ReplSnapshot{
		Epoch:       m.epoch,
		CommitEpoch: m.commitEpoch,
		Steps:       uint64(m.en.Steps()),
		Counter:     uint64(m.nextTicket),
		Recent:      m.confirmed.list(),
		Engine:      eng,
	}, nil
}

// demoteTo steps a deposed primary down: it adopts the higher epoch,
// becomes a follower and drops any outstanding reservation. Client
// writes fail with ErrNotPrimary from here on; the state it committed
// beyond the new primary's history is discarded by the next snapshot
// resync.
func (m *Manager) demoteTo(epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if epoch <= m.epoch && m.role == roleFollower {
		return
	}
	if epoch > m.epoch {
		m.epoch = epoch
	}
	if m.role != roleFollower {
		m.role = roleFollower
		m.reserved = false
		// The role is now what refuses writes; a drain left over from the
		// migration that fenced this node is meaningless on a follower
		// and must not outlive a later re-promotion by surprise.
		m.draining = false
		m.cond.Broadcast()
	}
}

// Promote makes a follower the primary of a new, higher epoch and
// returns that epoch. Promoting a primary is a no-op (its epoch is
// returned). The caller — an operator, or the gateway's automatic
// failover — is responsible for promoting the most advanced replica;
// sync-mode replication guarantees every acknowledged commit is on all
// of them.
func (m *Manager) Promote() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	if m.role == rolePrimary {
		return m.epoch, nil
	}
	m.epoch++
	m.role = rolePrimary
	// Promotion is an explicit order to serve: a drain left over from an
	// earlier migration attempt (the node was fenced as the source, then
	// re-promoted later) must not keep refusing asks forever.
	m.draining = false
	m.cond.Broadcast()
	return m.epoch, nil
}

// Status reports the manager's replication identity.
func (m *Manager) Status() ReplStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	role := RolePrimary
	if m.role == roleFollower {
		role = RoleFollower
	}
	return ReplStatus{Role: role, Epoch: m.epoch, Steps: uint64(m.en.Steps())}
}

// StateKey returns the canonical key of the current engine state
// (diagnostics; the chaos harness uses it to prove replica convergence).
func (m *Manager) StateKey() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.en.StateKey()
}

// --- follower side -------------------------------------------------------

// ApplyReplicated applies one replication frame. It returns the
// follower's (possibly updated) status; on ErrStaleEpoch the status tells
// the deposed sender which epoch fenced it, on ErrReplGap it tells the
// stream where the follower actually is.
func (m *Manager) ApplyReplicated(f ReplFrame) (ReplStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.statusLocked(), ErrClosed
	}
	if st, err := m.adoptEpochLocked(f.Epoch); err != nil {
		return st, err
	}
	steps := uint64(m.en.Steps())
	if f.Base != steps || f.PrevEpoch != m.commitEpoch {
		return m.statusLocked(), fmt.Errorf("%w: frame base %d/epoch %d vs local steps %d/epoch %d",
			ErrReplGap, f.Base, f.PrevEpoch, steps, m.commitEpoch)
	}
	for i, a := range f.Actions {
		if !m.en.Try(a) {
			// Divergence despite matching positions — a malformed frame.
			// The partial application is healed by the snapshot resync the
			// gap answer provokes.
			return m.statusLocked(), fmt.Errorf("%w: replicated action %s rejected", ErrReplGap, a)
		}
		if m.store != nil {
			le := storage.Entry{Name: a.Name, Args: a.Values(), Seq: uint64(m.en.Steps()) + 1}
			if err := m.store.Buffer(le); err != nil {
				return m.statusLocked(), err
			}
		}
		if err := m.en.Step(a); err != nil {
			return m.statusLocked(), fmt.Errorf("%w: %v", ErrReplGap, err)
		}
		if i < len(f.Tickets) && f.Tickets[i] != 0 {
			m.confirmed.add(f.Tickets[i])
			if n := uint64(f.Tickets[i]) & (1<<ticketEpochShift - 1); n > uint64(m.nextTicket) {
				m.nextTicket = Ticket(n)
			}
		}
		m.stats.Transits++
	}
	if m.store != nil && len(f.Actions) > 0 {
		if err := m.store.Commit(m.syncWrites); err != nil {
			return m.statusLocked(), err
		}
	}
	m.commitEpoch = f.Epoch
	m.stats.ReplFrames++
	m.metrics.replFrames.Inc()
	if n := len(f.Actions); n > 0 {
		m.notifyLocked()
		m.sinceSnap += n - 1
		m.maybeSnapshotLocked()
	}
	return m.statusLocked(), nil
}

// InstallReplSnapshot replaces the follower's state wholesale with the
// primary's serialized engine — the resync that heals gaps and divergent
// tails. The replaced history (including any commits a deposed primary
// took beyond the new timeline) is discarded.
func (m *Manager) InstallReplSnapshot(s ReplSnapshot) (ReplStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.statusLocked(), ErrClosed
	}
	if st, err := m.adoptEpochLocked(s.Epoch); err != nil {
		return st, err
	}
	en, err := state.RestoreEngine(m.en.Expr(), s.Engine)
	if err != nil {
		return m.statusLocked(), fmt.Errorf("manager: install replication snapshot: %w", err)
	}
	if m.cache != nil {
		en.UseCache(m.cache)
	}
	m.en = en
	m.commitEpoch = s.CommitEpoch
	if Ticket(s.Counter) > m.nextTicket {
		m.nextTicket = Ticket(s.Counter)
	}
	for _, t := range s.Recent {
		m.confirmed.add(t)
	}
	m.stats.ReplResyncs++
	m.metrics.replResyncs.Inc()
	// Persist the new timeline: the old log entries belong to a history
	// this replica no longer has, so they must not be replayed on top of
	// the installed state after a restart. A failed checkpoint fails the
	// install — acking a resync whose disk state would resurrect the
	// replaced timeline on restart would let the primary (and, under
	// SyncReplicas, the client) believe a durability that is not there.
	// The log is truncated explicitly (not just compacted through the
	// checkpoint): the replaced timeline's sequence numbers may exceed
	// the installed state's, so seq-based compaction could leave entries
	// that a restart would replay on top of the new state. The delta
	// chain restarts too — its encoder describes the replaced timeline.
	if m.ckptOn {
		m.resetDeltaChainLocked()
		if err := m.snapshotLocked(); err != nil {
			return m.statusLocked(), err
		}
		if err := m.store.TruncateLog(); err != nil {
			return m.statusLocked(), err
		}
	} else if m.store != nil {
		if err := m.store.TruncateLog(); err != nil {
			return m.statusLocked(), err
		}
	}
	m.notifyLocked()
	return m.statusLocked(), nil
}

// adoptEpochLocked runs the fencing protocol common to frames and
// snapshots: higher epochs are adopted (deposing a local primary), lower
// epochs are rejected, and a primary never accepts same-epoch frames
// (two primaries in one epoch cannot happen under the promotion rule; if
// operator error produces it, refusing is the safe answer).
func (m *Manager) adoptEpochLocked(epoch uint64) (ReplStatus, error) {
	if epoch < m.epoch || (epoch == m.epoch && m.role == rolePrimary) {
		return m.statusLocked(), fmt.Errorf("%w: frame epoch %d, local epoch %d", ErrStaleEpoch, epoch, m.epoch)
	}
	if epoch > m.epoch {
		m.epoch = epoch
	}
	if m.role != roleFollower {
		m.role = roleFollower
		m.reserved = false
		// See demoteTo: a fenced migration source must not stay draining.
		m.draining = false
		m.cond.Broadcast()
	}
	return ReplStatus{}, nil
}

func (m *Manager) statusLocked() ReplStatus {
	role := RolePrimary
	if m.role == roleFollower {
		role = RoleFollower
	}
	return ReplStatus{Role: role, Epoch: m.epoch, Steps: uint64(m.en.Steps())}
}
