package manager

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/paper"
	"repro/internal/parse"
)

// TestMultiManagerSplit (E17): a top-level coupling is partitioned into
// one manager per operand.
func TestMultiManagerSplit(t *testing.T) {
	r, err := NewRouter(paper.Fig7Coupled(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Managers()) != 2 {
		t.Fatalf("managers: got %d want 2", len(r.Managers()))
	}
	// prepare is only in the patient constraint's alphabet.
	if got := r.Route(paper.PrepareAct("p1", paper.ExamSono)); len(got) != 1 || got[0] != 0 {
		t.Errorf("route(prepare): %v", got)
	}
	// call is in both alphabets.
	if got := r.Route(paper.CallAct("p1", paper.ExamSono)); len(got) != 2 {
		t.Errorf("route(call): %v", got)
	}
	// unknown actions route nowhere.
	if got := r.Route(act("zzz")); got != nil {
		t.Errorf("route(zzz): %v", got)
	}
}

// TestMultiManagerConjunction: an action is permitted iff every involved
// manager permits it — the distributed equivalent of Fig 7's coupling.
func TestMultiManagerConjunction(t *testing.T) {
	r, err := NewRouter(paper.Fig7Coupled(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Fill the sono department to capacity with three patients.
	for i := 1; i <= 3; i++ {
		if err := r.Request(bg, paper.CallAct(paper.Patient(i), paper.ExamSono)); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Patient 4 is personally free, but the capacity manager refuses —
	// and the patient-constraint manager's reservation must be rolled
	// back so patient 4 can still go elsewhere.
	if err := r.Request(bg, paper.CallAct(paper.Patient(4), paper.ExamSono)); !errors.Is(err, ErrDenied) {
		t.Fatalf("capacity breach: got %v", err)
	}
	if err := r.Request(bg, paper.CallAct(paper.Patient(4), paper.ExamEndo)); err != nil {
		t.Fatalf("endo call after rollback: %v", err)
	}
	// Patient 1 is busy: the patient manager refuses (first in order).
	if err := r.Request(bg, paper.CallAct(paper.Patient(1), paper.ExamEndo)); !errors.Is(err, ErrDenied) {
		t.Fatalf("busy patient: got %v", err)
	}
	if !r.Try(paper.PerformAct(paper.Patient(1), paper.ExamSono)) {
		t.Error("perform should be permitted")
	}
	if r.Try(act("zzz")) {
		t.Error("unrouted action must not be permitted")
	}
}

// TestMultiManagerConcurrent: concurrent distributed requests respect
// the global capacity without deadlocking.
func TestMultiManagerConcurrent(t *testing.T) {
	r, err := NewRouter(paper.Fig7Coupled(), Options{ReservationTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const clients = 8
	var granted int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := r.Request(bg, paper.CallAct(paper.Patient(i), paper.ExamSono))
			if err == nil {
				mu.Lock()
				granted++
				mu.Unlock()
			} else if !errors.Is(err, ErrDenied) {
				t.Errorf("unexpected: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if granted != 3 {
		t.Errorf("granted: got %d want 3 (capacity)", granted)
	}
	if !r.Final() == r.Final() && false {
		t.Error("unreachable")
	}
}

// TestMultiManagerSubscribe: aggregated informs reflect the conjunction
// of the involved managers.
func TestMultiManagerSubscribe(t *testing.T) {
	r, err := NewRouter(paper.Fig7Coupled(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := paper.Patient(1)
	sub := r.Subscribe(paper.CallAct(p, paper.ExamEndo))
	waitInform := func(want bool) {
		t.Helper()
		deadline := time.After(2 * time.Second)
		for {
			select {
			case inf := <-sub.C:
				if inf.Permissible == want {
					return
				}
			case <-deadline:
				t.Fatalf("inform %v timed out", want)
			}
		}
	}
	waitInform(true)
	if err := r.Request(bg, paper.CallAct(p, paper.ExamSono)); err != nil {
		t.Fatal(err)
	}
	waitInform(false)
	if err := r.Request(bg, paper.PerformAct(p, paper.ExamSono)); err != nil {
		t.Fatal(err)
	}
	waitInform(true)
	r.Unsubscribe(sub)
}

// TestRouterSingleExpression: a non-coupled expression yields one
// manager and still works.
func TestRouterSingleExpression(t *testing.T) {
	r, err := NewRouter(parse.MustParse("a - b"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Managers()) != 1 {
		t.Fatalf("managers: %d", len(r.Managers()))
	}
	if err := r.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	if err := r.Request(bg, act("b")); err != nil {
		t.Fatal(err)
	}
	if !r.Final() {
		t.Error("should be final")
	}
}

// TestNameIndexMatchesScan: the name-keyed routing index agrees with a
// naive scan over every alphabet, for actions in and out of the coupling.
func TestNameIndexMatchesScan(t *testing.T) {
	r, err := NewRouter(paper.Fig7Coupled(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	probes := []expr.Action{
		paper.PrepareAct("p1", paper.ExamSono),
		paper.CallAct("p1", paper.ExamSono),
		paper.PerformAct("p2", paper.ExamEndo),
		expr.ConcreteAct("inform", "p1", paper.ExamSono),
		expr.ConcreteAct("unknown", "p1"),
		expr.ConcreteAct("call"), // right name, wrong arity
	}
	for _, a := range probes {
		got := r.Route(a)
		var want []int
		for i, al := range r.alphas {
			if al.Contains(a) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("route(%s): got %v want %v", a, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("route(%s): got %v want %v", a, got, want)
			}
		}
	}
}

// BenchmarkRouterRoute measures routing cost on a many-operand coupling
// (the hot path of every distributed grant).
func BenchmarkRouterRoute(b *testing.B) {
	// 8 operands with disjoint private actions plus one shared name.
	src := ""
	for i := 0; i < 8; i++ {
		if i > 0 {
			src += " @ "
		}
		src += "(x" + string(rune('a'+i)) + " | shared)*"
	}
	r, err := NewRouter(parse.MustParse(src), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	single := expr.ConcreteAct("xc")
	shared := expr.ConcreteAct("shared")
	b.Run("single-shard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := r.Route(single); len(got) != 1 {
				b.Fatalf("route: %v", got)
			}
		}
	})
	b.Run("all-shards", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := r.Route(shared); len(got) != 8 {
				b.Fatalf("route: %v", got)
			}
		}
	})
}
