package manager

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/parse"
	"repro/internal/state"
	"repro/internal/storage"
)

// crashForTest simulates a process crash: the manager stops dead without
// flushing buffers, writing a parting snapshot, or settling anything —
// the on-disk state is whatever previous commits made durable.
func (m *Manager) crashForTest() {
	m.mu.Lock()
	m.closed = true
	for id, g := range m.subs {
		delete(m.subs, id)
		if ch, ok := g.members[id]; ok {
			delete(g.members, id)
			close(ch)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	if m.batch != nil {
		close(m.batch.stop)
		<-m.batch.stopped
	}
	if c, ok := m.store.(storage.Crasher); ok {
		c.Crash() // no flush, no sync: in-buffer data dies
	}
}

// TestCrashRecoveryTorture interrupts a batched workload at randomized
// points — after a group commit, after a snapshot write with the log
// truncation "lost", and with a torn log tail — and checks after every
// restart that the replayed state equals the uninterrupted run at the
// same confirm count: no confirmed action lost, none applied twice.
func TestCrashRecoveryTorture(t *testing.T) {
	const trials = 24
	const actions = 40
	src := "(a - b)*"
	e := parse.MustParse(src)
	workload := make([]expr.Action, actions)
	for i := range workload {
		if i%2 == 0 {
			workload[i] = expr.ConcreteAct("a")
		} else {
			workload[i] = expr.ConcreteAct("b")
		}
	}
	// Reference: the uninterrupted run's state key after every prefix.
	refKeys := make([]string, actions+1)
	ref := state.MustEngine(e)
	refKeys[0] = ref.StateKey()
	for i, a := range workload {
		if err := ref.Step(a); err != nil {
			t.Fatal(err)
		}
		refKeys[i+1] = ref.StateKey()
	}

	rnd := rand.New(rand.NewSource(20010421))
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{
				LogPath:       filepath.Join(dir, "actions.log"),
				SnapshotPath:  filepath.Join(dir, "state.snap"),
				SnapshotEvery: 1 + rnd.Intn(5),
				BatchMaxSize:  1 + rnd.Intn(8), // 1 = unbatched control
				BatchMaxDelay: time.Duration(rnd.Intn(200)) * time.Microsecond,
				SyncWrites:    rnd.Intn(2) == 0,
			}
			crashAt := 1 + rnd.Intn(actions-1) // confirm count to crash after
			mode := rnd.Intn(3)

			m := MustNew(e, opts)
			confirmed := 0
			for confirmed < crashAt {
				n := 1 + rnd.Intn(4)
				if confirmed+n > crashAt {
					n = crashAt - confirmed
				}
				for i, err := range m.RequestMany(context.Background(), workload[confirmed:confirmed+n]) {
					if err != nil {
						t.Fatalf("confirm %d: %v", confirmed+i, err)
					}
				}
				confirmed += n
			}

			switch mode {
			case 0:
				// Crash right after the last group commit.
				m.crashForTest()
			case 1:
				// Crash between snapshot write and log truncation: save the
				// log, snapshot (which truncates), then put the log back —
				// on disk it is as if the truncate never happened. Recovery
				// must skip the log entries the snapshot already covers.
				saved, err := os.ReadFile(opts.LogPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Snapshot(); err != nil {
					t.Fatal(err)
				}
				m.crashForTest()
				if err := os.WriteFile(opts.LogPath, saved, 0o644); err != nil {
					t.Fatal(err)
				}
			case 2:
				// Crash mid-append: the log's last line is torn. Replay must
				// drop the torn tail silently; the action it belonged to was
				// never confirmed to anyone.
				m.crashForTest()
				f, err := os.OpenFile(opts.LogPath, os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteString(`{"a":"a","s":`); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			// Restart: the recovered state must be exactly the reference
			// state at the crash's confirm count.
			m2, err := New(e, opts)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if got := m2.Steps(); got != confirmed {
				t.Fatalf("mode %d: recovered %d confirms, want %d (lost or double-applied)", mode, got, confirmed)
			}
			if got := m2.en.StateKey(); got != refKeys[confirmed] {
				t.Fatalf("mode %d: recovered state differs from uninterrupted run at %d confirms:\n got %s\nwant %s",
					mode, confirmed, got, refKeys[confirmed])
			}
			// Finish the workload on the recovered manager: the end state
			// must equal the uninterrupted run's.
			for i, err := range m2.RequestMany(context.Background(), workload[confirmed:]) {
				if err != nil {
					t.Fatalf("post-recovery confirm %d: %v", confirmed+i, err)
				}
			}
			if got := m2.en.StateKey(); got != refKeys[actions] {
				t.Fatalf("mode %d: final state differs from uninterrupted run", mode)
			}
			if err := m2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTornTailDoubleRestart is the headline regression: a crash
// mid-append leaves a torn final line; the first restart must TRUNCATE
// it, not just skip it — otherwise the next append welds a fresh record
// onto the torn bytes and the second restart dies on a mid-file
// "corrupt log record". On main (before the fix) this test failed at
// the second New.
func TestTornTailDoubleRestart(t *testing.T) {
	e := parse.MustParse("(a - b)*")
	dir := t.TempDir()
	opts := Options{LogPath: filepath.Join(dir, "actions.log")}

	m := MustNew(e, opts)
	for _, n := range []string{"a", "b"} {
		if err := m.Request(context.Background(), expr.ConcreteAct(n)); err != nil {
			t.Fatal(err)
		}
	}
	m.crashForTest()
	// The crash hit mid-append: the log's final line is half a record.
	f, err := os.OpenFile(opts.LogPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"a":"a","s":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// First restart drops the torn tail; commit more work on top.
	m2, err := New(e, opts)
	if err != nil {
		t.Fatalf("first restart: %v", err)
	}
	if got := m2.Steps(); got != 2 {
		t.Fatalf("first restart recovered %d steps, want 2", got)
	}
	for _, n := range []string{"a", "b"} {
		if err := m2.Request(context.Background(), expr.ConcreteAct(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: before the fix, replay hit the welded record here.
	m3, err := New(e, opts)
	if err != nil {
		t.Fatalf("second restart after torn-tail recovery: %v", err)
	}
	if got := m3.Steps(); got != 4 {
		t.Fatalf("second restart recovered %d steps, want 4", got)
	}
	if err := m3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedDeltaCrashTorture is the segmented-storage twin of
// TestCrashRecoveryTorture: randomized crash points over a manager on
// the segmented backend with tiny segments (every trial spans several
// seals) and delta-checkpoint chains (FullCheckpointEvery > 1 makes the
// snapshot-then-crash mode land between a full base and its deltas).
// After every restart the recovered state must be byte-identical — same
// StateKey, same marshalled state — to the monolithic path's at the
// same confirm count.
func TestSegmentedDeltaCrashTorture(t *testing.T) {
	const trials = 24
	const actions = 40
	e := parse.MustParse("(a - b)*")
	workload := make([]expr.Action, actions)
	for i := range workload {
		if i%2 == 0 {
			workload[i] = expr.ConcreteAct("a")
		} else {
			workload[i] = expr.ConcreteAct("b")
		}
	}
	// Reference: the monolithic path's state at every prefix (the plain
	// engine IS the monolithic recovery target; TestCrashRecoveryTorture
	// pins the monolithic path to it).
	refKeys := make([]string, actions+1)
	refSnaps := make([][]byte, actions+1)
	ref := state.MustEngine(e)
	for i := 0; ; i++ {
		refKeys[i] = ref.StateKey()
		if refSnaps[i] = mustMarshal(t, ref); i == actions {
			break
		}
		if err := ref.Step(workload[i]); err != nil {
			t.Fatal(err)
		}
	}

	rnd := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{
				StorageDir:          filepath.Join(dir, "store"),
				SegmentBytes:        int64(1 + rnd.Intn(256)),
				SnapshotEvery:       1 + rnd.Intn(5),
				FullCheckpointEvery: 1 + rnd.Intn(4),
				BatchMaxSize:        1 + rnd.Intn(8),
				BatchMaxDelay:       time.Duration(rnd.Intn(200)) * time.Microsecond,
				SyncWrites:          rnd.Intn(2) == 0,
			}
			crashAt := 1 + rnd.Intn(actions-1)
			mode := rnd.Intn(3)

			m := MustNew(e, opts)
			confirmed := 0
			for confirmed < crashAt {
				n := 1 + rnd.Intn(4)
				if confirmed+n > crashAt {
					n = crashAt - confirmed
				}
				for i, err := range m.RequestMany(context.Background(), workload[confirmed:confirmed+n]) {
					if err != nil {
						t.Fatalf("confirm %d: %v", confirmed+i, err)
					}
				}
				confirmed += n
			}

			switch mode {
			case 0:
				// Crash right after the last group commit: recovery is
				// chain restore + log-tail replay across segments.
				m.crashForTest()
			case 1:
				// Crash right after a checkpoint piece lands. With
				// FullCheckpointEvery > 1 the piece is a delta (or the
				// base of a new chain) — recovery restores the whole
				// chain plus whatever log tail compaction left.
				if err := m.Snapshot(); err != nil {
					t.Fatal(err)
				}
				m.crashForTest()
			case 2:
				// Crash mid-append: torn tail in the active segment.
				m.crashForTest()
				open, _ := filepath.Glob(filepath.Join(opts.StorageDir, "*.open"))
				if len(open) != 1 {
					t.Fatalf("%d open segments, want 1", len(open))
				}
				f, err := os.OpenFile(open[0], os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteString(`{"a":"a","s":`); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			m2, err := New(e, opts)
			if err != nil {
				t.Fatalf("recovery failed (mode %d): %v", mode, err)
			}
			if got := m2.Steps(); got != confirmed {
				t.Fatalf("mode %d: recovered %d confirms, want %d", mode, got, confirmed)
			}
			if got := m2.en.StateKey(); got != refKeys[confirmed] {
				t.Fatalf("mode %d: recovered state differs from monolithic path at %d confirms:\n got %s\nwant %s",
					mode, confirmed, got, refKeys[confirmed])
			}
			if got := mustMarshal(t, m2.en); string(got) != string(refSnaps[confirmed]) {
				t.Fatalf("mode %d: recovered state does not marshal byte-identically to the monolithic path", mode)
			}
			// Finish the workload and crash-recover once more: the delta
			// chain continued after a restore must still converge.
			for i, err := range m2.RequestMany(context.Background(), workload[confirmed:]) {
				if err != nil {
					t.Fatalf("post-recovery confirm %d: %v", confirmed+i, err)
				}
			}
			m2.crashForTest()
			m3, err := New(e, opts)
			if err != nil {
				t.Fatalf("second recovery failed: %v", err)
			}
			if got := m3.Steps(); got != actions {
				t.Fatalf("second recovery: %d confirms, want %d", got, actions)
			}
			if got := m3.en.StateKey(); got != refKeys[actions] {
				t.Fatalf("final state differs from monolithic path")
			}
			if err := m3.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func mustMarshal(t *testing.T, en *state.Engine) []byte {
	t.Helper()
	buf, err := en.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestDeltaChainCrashSweep walks a checkpoint-per-step manager through
// every crash point of a short workload with FullCheckpointEvery=3, so
// recovery sees every chain shape in turn: bare base, base+1 delta,
// base+2 deltas, fresh base again. Each restart must land exactly on
// the uninterrupted state.
func TestDeltaChainCrashSweep(t *testing.T) {
	const actions = 9
	e := parse.MustParse("(a - b)*")
	ref := state.MustEngine(e)
	refKeys := make([]string, actions+1)
	refKeys[0] = ref.StateKey()
	names := []string{"a", "b"}
	for i := 0; i < actions; i++ {
		if err := ref.Step(expr.ConcreteAct(names[i%2])); err != nil {
			t.Fatal(err)
		}
		refKeys[i+1] = ref.StateKey()
	}
	for crashAt := 1; crashAt <= actions; crashAt++ {
		crashAt := crashAt
		t.Run(fmt.Sprintf("crashAt=%d", crashAt), func(t *testing.T) {
			opts := Options{
				StorageDir:          filepath.Join(t.TempDir(), "store"),
				SnapshotEvery:       1, // checkpoint after every confirm
				FullCheckpointEvery: 3,
			}
			m := MustNew(e, opts)
			for i := 0; i < crashAt; i++ {
				if err := m.Request(context.Background(), expr.ConcreteAct(names[i%2])); err != nil {
					t.Fatal(err)
				}
			}
			m.crashForTest()
			m2, err := New(e, opts)
			if err != nil {
				t.Fatalf("recovery at %d confirms: %v", crashAt, err)
			}
			if got := m2.Steps(); got != crashAt {
				t.Fatalf("recovered %d confirms, want %d", got, crashAt)
			}
			if got := m2.en.StateKey(); got != refKeys[crashAt] {
				t.Fatalf("recovered state differs at %d confirms", crashAt)
			}
			if err := m2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashRecoveryConcurrentTorture crashes a manager under concurrent
// batched load with requests in flight. Acknowledged confirms must all
// survive recovery; in-flight ones may or may not have committed, but the
// recovered state must be a replayable prefix-consistent state, and a
// second crash-recovery cycle must reproduce it bit for bit.
func TestCrashRecoveryConcurrentTorture(t *testing.T) {
	const trials = 6
	rnd := rand.New(rand.NewSource(7))
	e := parse.MustParse("(a | b | c)*")
	names := []string{"a", "b", "c"}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{
				LogPath:       filepath.Join(dir, "actions.log"),
				SnapshotPath:  filepath.Join(dir, "state.snap"),
				SnapshotEvery: 1 + rnd.Intn(4),
				BatchMaxSize:  2 + rnd.Intn(15),
				SyncWrites:    trial%2 == 0,
			}
			m := MustNew(e, opts)
			var acked, issued int64
			var ackedMu sync.Mutex
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					a := expr.ConcreteAct(names[c%len(names)])
					for {
						select {
						case <-stop:
							return
						default:
						}
						ackedMu.Lock()
						issued++
						ackedMu.Unlock()
						err := m.Request(context.Background(), a)
						if err != nil {
							if errors.Is(err, ErrClosed) {
								return
							}
							t.Error(err)
							return
						}
						ackedMu.Lock()
						acked++
						ackedMu.Unlock()
					}
				}(c)
			}
			time.Sleep(time.Duration(1+rnd.Intn(10)) * time.Millisecond)
			m.crashForTest() // in-flight requests die with it
			close(stop)
			wg.Wait()

			m2, err := New(e, opts)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			steps := int64(m2.Steps())
			if steps < acked {
				t.Fatalf("lost confirms: %d acknowledged, only %d recovered", acked, steps)
			}
			if steps > issued {
				t.Fatalf("double-applied confirms: %d recovered, only %d ever issued", steps, issued)
			}
			key := m2.en.StateKey()
			// Crash the recovered manager too: a second recovery from the
			// same files must land on the identical state (determinism of
			// snapshot + log-tail replay).
			m2.crashForTest()
			m3, err := New(e, opts)
			if err != nil {
				t.Fatalf("second recovery failed: %v", err)
			}
			if got := m3.en.StateKey(); got != key {
				t.Fatalf("recovery is not deterministic:\n first  %s\n second %s", key, got)
			}
			if int64(m3.Steps()) != steps {
				t.Fatalf("second recovery: %d steps, want %d", m3.Steps(), steps)
			}
			if err := m3.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
