package manager

import (
	"context"
	"errors"
)

// Elastic membership: the operations that let a running cluster grow and
// shrink under live traffic. A shard is no longer pinned to the server
// set it was born on — a primary can attach a fresh follower at runtime
// (snapshot resync over the existing replication stream), drain itself
// so in-flight tickets settle while new asks are refused with a
// retryable sentinel, and hand its role to the caught-up follower via
// the ordinary epoch-bumping promotion. cluster.Rebalancer composes
// these primitives into a zero-loss live migration:
//
//	attach target → resync → catch up → drain source → final sync →
//	promote target (epoch fences the source) → retire source
//
// Everything here reuses the PR 4 replication machinery: the attach is
// just a new follower stream, catch-up is the stream's own gap-healing
// snapshot resync, and the fencing is the same epoch rule that already
// governs failover.

// ErrDraining: the manager is draining (a migration is moving its shard
// away): new asks and requests are refused, in-flight tickets may still
// settle. The refusal is transient and the request was never admitted,
// so clients retry — the shard clients of internal/cluster do so
// automatically until the route table repoints them.
var ErrDraining = errors.New("manager: draining")

// TopologyInfo describes a manager's place in its replica set: its own
// identity plus the follower streams it feeds.
type TopologyInfo struct {
	Role     string
	Epoch    uint64
	Steps    uint64
	Draining bool
	Replicas []string // follower addresses this node streams commits to
}

// Drain puts the manager into drain mode and waits until it is quiescent:
// new Ask/Request calls fail with ErrDraining immediately, while the
// outstanding reservation (if any) and every already-queued group-commit
// request settle normally. When Drain returns nil, no further state
// transition can originate from this node's clients — the precondition
// for the migration's final snapshot sync. The context bounds the wait;
// on expiry the manager STAYS draining (the caller decides whether to
// Resume or retry).
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.draining = true
	// Wake Ask/Request waiters parked on the critical region so they
	// observe the drain and fail fast instead of waiting out a region
	// they can never enter.
	m.cond.Broadcast()
	for {
		m.expireLocked()
		pending := m.batch != nil && m.batch.pending.Load() > 0
		if !m.reserved && !pending {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		waitCond(m.cond, ctx, m.clk, m.timeout)
	}
}

// Resume leaves drain mode: the manager accepts new asks again (a
// migration that failed mid-way calls this so the shard is not wedged).
func (m *Manager) Resume() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.draining = false
	m.cond.Broadcast()
	return nil
}

// Draining reports whether the manager is in drain mode.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Topology reports the manager's replication identity together with the
// follower streams it currently feeds and its drain state.
func (m *Manager) Topology() TopologyInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.statusLocked()
	ti := TopologyInfo{Role: st.Role, Epoch: st.Epoch, Steps: st.Steps, Draining: m.draining}
	if m.repl != nil {
		for _, s := range m.repl.streams {
			ti.Replicas = append(ti.Replicas, s.addr)
		}
	}
	return ti
}

// AttachReplica attaches the follower server at addr to this primary's
// replication fan-out (idempotent) and immediately ships it a full state
// snapshot, returning the follower's acked status — Steps tells the
// caller how far the follower is. Subsequent commits stream to it like
// to any configured replica, under the manager's SyncReplicas setting.
// A manager started without Replicas grows its replicator lazily here.
func (m *Manager) AttachReplica(ctx context.Context, addr string) (ReplStatus, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ReplStatus{}, ErrClosed
	}
	if m.role != rolePrimary {
		m.mu.Unlock()
		return ReplStatus{}, ErrNotPrimary
	}
	if m.repl == nil {
		m.repl = newReplicator(m, nil, m.syncRepl, m.ackTimeout)
	}
	st := m.repl.stream(addr)
	stop := m.repl.stop
	m.mu.Unlock()

	// The sync request rides the stream's own queue, so it is ordered
	// with the frames already published to this follower.
	ack := make(chan syncAck, 1)
	select {
	case st.ch <- replItem{sync: ack}:
	case <-ctx.Done():
		return ReplStatus{}, ctx.Err()
	case <-stop:
		return ReplStatus{}, ErrClosed
	}
	select {
	case a := <-ack:
		return a.st, a.err
	case <-ctx.Done():
		return ReplStatus{}, ctx.Err()
	}
}

// DetachReplica removes the follower stream to addr (the inverse of
// AttachReplica; a retired server stops receiving frames). Unknown
// addresses are a no-op. Under strict SyncReplicas, detaching an
// unreachable follower is also how an operator stops commits from
// reporting ErrUncertain.
func (m *Manager) DetachReplica(addr string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.repl != nil {
		m.repl.removeStream(addr)
	}
	return nil
}
