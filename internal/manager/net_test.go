package manager

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/paper"
	"repro/internal/parse"
)

// startServer spins up a manager server on a loopback listener.
func startServer(t *testing.T, src string) (*Server, *Manager) {
	t.Helper()
	m := MustNew(parse.MustParse(src), Options{ReservationTimeout: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(m, ln)
	t.Cleanup(func() {
		s.Close()
		m.Close()
	})
	return s, m
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestCoordinationProtocolTCP (E13): the full Fig 10 cycle over the wire.
func TestCoordinationProtocolTCP(t *testing.T) {
	s, _ := startServer(t, "a - b")
	c := dial(t, s)

	tk, err := c.Ask(bg, act("a"))
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	if err := c.Confirm(bg, tk); err != nil {
		t.Fatalf("confirm: %v", err)
	}
	// Negative reply for an impossible action.
	if _, err := c.Ask(bg, act("a")); err == nil || !strings.Contains(err.Error(), "not permitted") {
		t.Fatalf("expected denial, got %v", err)
	}
	ok, err := c.Try(bg, act("b"))
	if err != nil || !ok {
		t.Fatalf("try b: %v %v", ok, err)
	}
	if err := c.Request(bg, act("b")); err != nil {
		t.Fatalf("request b: %v", err)
	}
	fin, err := c.Final(bg)
	if err != nil || !fin {
		t.Fatalf("final: %v %v", fin, err)
	}
}

// TestAbortTCP: abort over the wire releases the region.
func TestAbortTCP(t *testing.T) {
	s, _ := startServer(t, "a - b")
	c := dial(t, s)
	tk, err := c.Ask(bg, act("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(bg, tk); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Try(bg, act("a"))
	if err != nil || !ok {
		t.Fatalf("a should still be permitted: %v %v", ok, err)
	}
}

// TestSubscriptionTCP (E14): informs flow to remote subscribers.
func TestSubscriptionTCP(t *testing.T) {
	m := MustNew(paper.Fig3PatientConstraint(), Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(m, ln)
	defer func() { s.Close(); m.Close() }()

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := paper.Patient(1)
	sub, err := c.Subscribe(bg, paper.CallAct(p, paper.ExamEndo))
	if err != nil {
		t.Fatal(err)
	}
	waitInform := func(want bool) {
		t.Helper()
		select {
		case inf := <-sub.C:
			if inf.Permissible != want {
				t.Fatalf("inform: got %v want %v", inf.Permissible, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("inform timed out")
		}
	}
	waitInform(true) // initial status

	if err := c.Request(bg, paper.CallAct(p, paper.ExamSono)); err != nil {
		t.Fatal(err)
	}
	waitInform(false)

	if err := c.Request(bg, paper.PerformAct(p, paper.ExamSono)); err != nil {
		t.Fatal(err)
	}
	waitInform(true)

	if err := c.Unsubscribe(bg, sub); err != nil {
		t.Fatal(err)
	}
}

// TestTwoClientsCompete: two remote worklist handlers compete for
// mutually exclusive actions; one wins, the other is denied, and after
// the perform the loser's action becomes available (the intro scenario
// distributed).
func TestTwoClientsCompete(t *testing.T) {
	m := MustNew(paper.Fig3PatientConstraint(), Options{ReservationTimeout: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(m, ln)
	defer func() { s.Close(); m.Close() }()

	sonoC, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sonoC.Close()
	endoC, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer endoC.Close()

	p := paper.Patient(7)
	// Sono department calls the patient first.
	tk, err := sonoC.Ask(bg, paper.CallAct(p, paper.ExamSono))
	if err != nil {
		t.Fatal(err)
	}
	if err := sonoC.Confirm(bg, tk); err != nil {
		t.Fatal(err)
	}
	// Endo department is refused.
	if _, err := endoC.Ask(bg, paper.CallAct(p, paper.ExamEndo)); err == nil {
		t.Fatal("endo call should be denied while sono runs")
	}
	// After the examination the endo call succeeds.
	if err := sonoC.Request(bg, paper.PerformAct(p, paper.ExamSono)); err != nil {
		t.Fatal(err)
	}
	tk, err = endoC.Ask(bg, paper.CallAct(p, paper.ExamEndo))
	if err != nil {
		t.Fatal(err)
	}
	if err := endoC.Confirm(bg, tk); err != nil {
		t.Fatal(err)
	}
}

// TestManyConcurrentTCPClients: stress the wire protocol with parallel
// clients issuing atomic requests.
func TestManyConcurrentTCPClients(t *testing.T) {
	s, m := startServer(t, "(a | b)*")
	const clients, each = 8, 20
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < each; j++ {
				name := "a"
				if j%2 == 0 {
					name = "b"
				}
				if err := c.Request(bg, act(name)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Steps(); got != clients*each {
		t.Errorf("committed transitions: got %d want %d", got, clients*each)
	}
}

// TestClientContextCancel: a canceled context aborts the wait without
// wedging the client.
func TestClientContextCancel(t *testing.T) {
	s, _ := startServer(t, "a - b")
	c1 := dial(t, s)
	c2 := dial(t, s)
	tk, err := c1.Ask(bg, act("a"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	if _, err := c2.Ask(ctx, act("a")); err == nil {
		t.Fatal("expected context timeout while region is held")
	}
	if err := c1.Confirm(bg, tk); err != nil {
		t.Fatal(err)
	}
}

// TestWireErrors: malformed requests get error replies; unknown ops too.
func TestWireErrors(t *testing.T) {
	s, _ := startServer(t, "a")
	c := dial(t, s)
	if err := c.Request(bg, act("nope")); err == nil {
		t.Error("unknown action should be denied")
	}
	if err := c.Confirm(bg, Ticket(999)); err == nil {
		t.Error("confirm of unknown ticket should fail")
	}
}
