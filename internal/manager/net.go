package manager

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
)

// The wire protocol is JSON lines over TCP. Clients send requests with a
// correlation id; the server answers with the same id and pushes inform
// messages (id 0) for subscriptions. One physical connection multiplexes
// any number of outstanding requests.
type wireMsg struct {
	ID     uint64 `json:"id,omitempty"`
	Op     string `json:"op"`
	Action string `json:"action,omitempty"`
	Ticket Ticket `json:"ticket,omitempty"`
	Sub    uint64 `json:"sub,omitempty"`
	OK     bool   `json:"ok,omitempty"`
	Err    string `json:"error,omitempty"`
	Perm   bool   `json:"permissible,omitempty"`
	Final  bool   `json:"final,omitempty"`
	// Acts frames a multi-op request_many: one atomic request per element,
	// answered by one reply whose Errs has one entry per element ("" = the
	// action was confirmed). One frame per batch keeps a pipelined burst to
	// a single encode/decode and a single socket write each way.
	Acts []string `json:"acts,omitempty"`
	Errs []string `json:"errors,omitempty"`
	// Replication fields (the replicate/replicate_ack/promote/role ops).
	// A replicate message reuses Acts for the frame's actions; Seq is the
	// commit position (frame base, or the replica's steps in an ack), Tks
	// carries per-action tickets, and a non-nil Snap turns the frame into
	// a full state snapshot (Seq = steps, Prev = commit epoch, Ctr =
	// ticket counter, Tks = confirmed-ticket dedup window).
	Epoch uint64          `json:"epoch,omitempty"`
	Prev  uint64          `json:"prev_epoch,omitempty"`
	Seq   uint64          `json:"seq,omitempty"`
	Ctr   uint64          `json:"counter,omitempty"`
	Tks   []uint64        `json:"tks,omitempty"`
	Snap  json.RawMessage `json:"snap,omitempty"`
	Role  string          `json:"role,omitempty"`
	// Elastic-membership fields (migrate/retire/drain/resume/topology).
	Addr     string   `json:"addr,omitempty"`     // follower address to attach/detach
	Addrs    []string `json:"addrs,omitempty"`    // topology reply: follower streams
	Draining bool     `json:"draining,omitempty"` // topology reply: drain mode
	// Stats is the reply payload of the stats op: the manager's full
	// observability readout (role, protocol counters, cache counters,
	// metric snapshot with latency histograms).
	Stats *StatsSnapshot `json:"stats,omitempty"`
	// Proto is the hello negotiation payload: the protocol the client
	// proposes, echoed back as the protocol the server selected.
	Proto string `json:"proto,omitempty"`
	// Subs carries the subscription ids of a multiplexed inform: on
	// binary connections one status flip for an action produces a single
	// frame naming every subscription on it, instead of one frame per
	// subscriber. JSON connections never see it (old clients expect Sub).
	Subs []uint64 `json:"subs,omitempty"`
}

// Wire operation names.
const (
	opAsk         = "ask"
	opConfirm     = "confirm"
	opAbort       = "abort"
	opRequest     = "request"
	opRequestMany = "request_many"
	opTry         = "try"
	opSubscribe   = "subscribe"
	opUnsubscribe = "unsubscribe"
	opFinal       = "final"
	opReply       = "reply"
	opInform      = "inform"
	// Replication ops (primary ↔ follower, plus failover control).
	opReplicate    = "replicate"
	opReplicateAck = "replicate_ack"
	opPromote      = "promote"
	opRole         = "role"
	// Elastic-membership ops (live migration / rebalancing control).
	opMigrate  = "migrate"  // attach the follower at Addr and resync it
	opRetire   = "retire"   // detach the follower stream to Addr
	opDrain    = "drain"    // refuse new asks, settle in-flight tickets
	opResume   = "resume"   // leave drain mode
	opTopology = "topology" // report role/epoch/steps + streams + drain state
	// Observability op: report the manager's StatsSnapshot (role, protocol
	// counters, memo-cache counters, metric snapshot).
	opStats = "stats"
)

// serverAskTimeout bounds how long any handler may wait on the
// coordinator; it must exceed any configured reservation timeout. It is
// a variable only so the hung-coordinator regression test can shrink it.
var serverAskTimeout = 30 * time.Second

// Wire-level error sentinels, for clients that need to distinguish "the
// request never left this machine" (safe to retry on a fresh connection)
// from "the connection died while a reply was pending" (the request may
// have been processed; only idempotent operations may retry). The shard
// clients of internal/cluster reconnect based on exactly this split.
var (
	// ErrConnLost: the connection died after the request was written.
	ErrConnLost = errors.New("manager: connection lost")
	// ErrSendFailed: the request could not be written at all.
	ErrSendFailed = errors.New("manager: send failed")
)

// Coordinator is the coordination surface a wire server exposes: the
// ask/confirm/abort protocol of Fig 10 plus status probes and
// subscriptions. A local Manager implements it in process (see
// CoordinatorFor); cluster.Gateway implements it across remote shards, so
// a gateway can be served over the very same wire protocol.
type Coordinator interface {
	Ask(ctx context.Context, a expr.Action) (Ticket, error)
	Confirm(ctx context.Context, t Ticket) error
	Abort(ctx context.Context, t Ticket) error
	Request(ctx context.Context, a expr.Action) error
	Try(ctx context.Context, a expr.Action) (bool, error)
	Final(ctx context.Context) (bool, error)
	// Subscribe opens a subscription for a. The returned cancel function
	// tears it down and must cause the inform channel to close.
	Subscribe(a expr.Action) (<-chan Inform, func(), error)
}

// Elastic is the optional membership surface of a wire server: the
// primitives a live migration composes (attach/detach follower streams,
// drain, topology). A Manager implements it; a Gateway does not — the
// gateway is the thing being repointed, not the thing being moved.
type Elastic interface {
	AttachReplica(ctx context.Context, addr string) (ReplStatus, error)
	DetachReplica(ctx context.Context, addr string) error
	Drain(ctx context.Context) error
	Resume(ctx context.Context) error
	Topology(ctx context.Context) (TopologyInfo, error)
}

// BatchRequester is the optional batched extension of Coordinator: one
// call submits many atomic requests and reports one error per action.
// Manager implements it through its group-commit queue; cluster.Gateway
// implements it by grouping same-shard actions into one wire frame per
// shard. A wire server uses it to serve request_many frames with one
// coordinator call instead of n.
type BatchRequester interface {
	RequestMany(ctx context.Context, actions []expr.Action) []error
}

// StatsProvider is the optional observability surface of a Coordinator:
// the wire server answers the stats op through it. A Manager implements
// it via its StatsSnapshot readout.
type StatsProvider interface {
	StatsSnapshot(ctx context.Context) (StatsSnapshot, error)
}

// MetricsSource lets a wire server discover the obs registry of the
// coordinator it serves (to count frames/bytes and time ops into it)
// without widening the Coordinator interface. Both Manager and
// cluster.Gateway implement it; a coordinator without metrics simply
// does not, and the server stays uninstrumented.
type MetricsSource interface {
	MetricsRegistry() *obs.Registry
}

// --- replication frame codecs -------------------------------------------
//
// The frame ⇄ wireMsg translation is factored out (rather than inlined in
// the client and server) so FuzzReplicationFrame can round-trip the exact
// encoding the protocol uses.

// encodeReplFrame renders a replication frame as a wire message.
func encodeReplFrame(f ReplFrame) wireMsg {
	msg := wireMsg{Op: opReplicate, Epoch: f.Epoch, Prev: f.PrevEpoch, Seq: f.Base}
	msg.Acts = make([]string, len(f.Actions))
	for i, a := range f.Actions {
		msg.Acts[i] = a.String()
	}
	// All-zero ticket lists (batch commits) are elided from the wire.
	for _, t := range f.Tickets {
		if t != 0 {
			msg.Tks = make([]uint64, len(f.Tickets))
			for j, tj := range f.Tickets {
				msg.Tks[j] = uint64(tj)
			}
			break
		}
	}
	return msg
}

// decodeReplFrame parses a replicate wire message back into a frame. Any
// malformed element is an error — a follower must never guess at a frame.
func decodeReplFrame(msg wireMsg) (ReplFrame, error) {
	f := ReplFrame{Epoch: msg.Epoch, PrevEpoch: msg.Prev, Base: msg.Seq}
	if len(msg.Tks) != 0 && len(msg.Tks) != len(msg.Acts) {
		return ReplFrame{}, fmt.Errorf("manager: replication frame has %d tickets for %d actions", len(msg.Tks), len(msg.Acts))
	}
	f.Actions = make([]expr.Action, len(msg.Acts))
	for i, s := range msg.Acts {
		a, err := expr.ParseActionString(s)
		if err != nil {
			return ReplFrame{}, fmt.Errorf("manager: replication frame action %d: %w", i, err)
		}
		f.Actions[i] = a
	}
	if len(msg.Tks) != 0 {
		f.Tickets = make([]Ticket, len(msg.Tks))
		for i, t := range msg.Tks {
			f.Tickets[i] = Ticket(t)
		}
	}
	return f, nil
}

// encodeReplSnapshot renders a full state sync as a wire message.
func encodeReplSnapshot(s ReplSnapshot) wireMsg {
	msg := wireMsg{Op: opReplicate, Epoch: s.Epoch, Prev: s.CommitEpoch, Seq: s.Steps, Ctr: s.Counter, Snap: s.Engine}
	if len(s.Recent) > 0 {
		msg.Tks = make([]uint64, len(s.Recent))
		for i, t := range s.Recent {
			msg.Tks[i] = uint64(t)
		}
	}
	if len(msg.Snap) == 0 {
		// A snapshot is distinguished from an incremental frame by a
		// non-nil Snap; an empty engine payload must still mark itself.
		msg.Snap = json.RawMessage("null")
	}
	return msg
}

// decodeReplSnapshot parses a snapshot wire message.
func decodeReplSnapshot(msg wireMsg) (ReplSnapshot, error) {
	if len(msg.Acts) != 0 {
		return ReplSnapshot{}, errors.New("manager: replication snapshot carries actions")
	}
	s := ReplSnapshot{Epoch: msg.Epoch, CommitEpoch: msg.Prev, Steps: msg.Seq, Counter: msg.Ctr, Engine: msg.Snap}
	if len(msg.Tks) > 0 {
		s.Recent = make([]Ticket, len(msg.Tks))
		for i, t := range msg.Tks {
			s.Recent[i] = Ticket(t)
		}
	}
	return s, nil
}

// coordAdapter lifts a Manager to the Coordinator surface.
type coordAdapter struct{ m *Manager }

func (c coordAdapter) Ask(ctx context.Context, a expr.Action) (Ticket, error) {
	return c.m.Ask(ctx, a)
}
func (c coordAdapter) Confirm(ctx context.Context, t Ticket) error { return c.m.Confirm(t) }
func (c coordAdapter) Abort(ctx context.Context, t Ticket) error   { return c.m.Abort(t) }
func (c coordAdapter) Request(ctx context.Context, a expr.Action) error {
	return c.m.Request(ctx, a)
}
func (c coordAdapter) RequestMany(ctx context.Context, actions []expr.Action) []error {
	return c.m.RequestMany(ctx, actions)
}
func (c coordAdapter) Try(ctx context.Context, a expr.Action) (bool, error) {
	return c.m.Try(a), nil
}
func (c coordAdapter) Final(ctx context.Context) (bool, error) { return c.m.Final(), nil }
func (c coordAdapter) Subscribe(a expr.Action) (<-chan Inform, func(), error) {
	sub := c.m.Subscribe(a)
	return sub.C, func() { c.m.Unsubscribe(sub) }, nil
}
func (c coordAdapter) ApplyReplicated(ctx context.Context, f ReplFrame) (ReplStatus, error) {
	return c.m.ApplyReplicated(f)
}
func (c coordAdapter) InstallReplSnapshot(ctx context.Context, s ReplSnapshot) (ReplStatus, error) {
	return c.m.InstallReplSnapshot(s)
}
func (c coordAdapter) Promote(ctx context.Context) (uint64, error) { return c.m.Promote() }
func (c coordAdapter) ReplStatus(ctx context.Context) (ReplStatus, error) {
	return c.m.Status(), nil
}
func (c coordAdapter) AttachReplica(ctx context.Context, addr string) (ReplStatus, error) {
	return c.m.AttachReplica(ctx, addr)
}
func (c coordAdapter) DetachReplica(ctx context.Context, addr string) error {
	return c.m.DetachReplica(addr)
}
func (c coordAdapter) Drain(ctx context.Context) error  { return c.m.Drain(ctx) }
func (c coordAdapter) Resume(ctx context.Context) error { return c.m.Resume() }
func (c coordAdapter) Topology(ctx context.Context) (TopologyInfo, error) {
	return c.m.Topology(), nil
}
func (c coordAdapter) StatsSnapshot(ctx context.Context) (StatsSnapshot, error) {
	return c.m.StatsSnapshot(), nil
}
func (c coordAdapter) MetricsRegistry() *obs.Registry { return c.m.MetricsRegistry() }

// CoordinatorFor returns the Coordinator view of a local manager.
func CoordinatorFor(m *Manager) Coordinator { return coordAdapter{m: m} }

// Server exposes a Coordinator to interaction clients over TCP.
type Server struct {
	co       Coordinator
	ln       net.Listener
	sm       *serverMetrics
	jsonOnly bool

	mu    sync.Mutex
	conns map[net.Conn]bool
	done  chan struct{}
	wg    sync.WaitGroup
}

// ServerOptions tunes a wire server.
type ServerOptions struct {
	// JSONOnly disables the binary codec: the hello negotiation is
	// answered the way a pre-v2 server answers it (unknown op), pinning
	// every connection to JSON lines. v2 clients fall back transparently.
	// The IX_WIRE_SERVER_PROTO=json environment variable forces it
	// process-wide (interop matrices, wire debugging with text tools).
	JSONOnly bool
}

// serverMetrics instruments the wire layer: frames and bytes each way,
// and a per-op service-latency histogram. All handles are nil when the
// coordinator exposes no registry, making every observation a no-op.
type serverMetrics struct {
	enabled   bool
	reg       *obs.Registry
	framesIn  *obs.Counter
	framesOut *obs.Counter
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
	opMu      sync.RWMutex
	opNs      map[string]*obs.Histogram
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		enabled:   reg != nil,
		reg:       reg,
		framesIn:  reg.Counter("ix_wire_frames_in_total"),
		framesOut: reg.Counter("ix_wire_frames_out_total"),
		bytesIn:   reg.Counter("ix_wire_bytes_in_total"),
		bytesOut:  reg.Counter("ix_wire_bytes_out_total"),
		opNs:      map[string]*obs.Histogram{},
	}
}

// opHist returns the latency histogram for one wire op, created on first
// use (ops are a small fixed set, so the map stays tiny).
func (sm *serverMetrics) opHist(op string) *obs.Histogram {
	if !sm.enabled {
		return nil
	}
	sm.opMu.RLock()
	h := sm.opNs[op]
	sm.opMu.RUnlock()
	if h != nil {
		return h
	}
	sm.opMu.Lock()
	defer sm.opMu.Unlock()
	if h = sm.opNs[op]; h == nil {
		h = sm.reg.Histogram(`ix_wire_op_ns{op="` + op + `"}`)
		sm.opNs[op] = h
	}
	return h
}

// countingReader feeds the bytes-in counter as a side effect of reads.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(uint64(n))
	}
	return n, err
}

// countingWriter feeds the bytes-out counter as a side effect of writes.
type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.c.Add(uint64(n))
	}
	return n, err
}

// NewServer starts serving the manager on the listener. Serve returns
// immediately; use Close to stop.
func NewServer(m *Manager, ln net.Listener) *Server {
	return NewCoordServer(CoordinatorFor(m), ln)
}

// NewCoordServer serves any Coordinator — a local manager or a cluster
// gateway — on the listener, with default options (binary negotiation
// enabled).
func NewCoordServer(co Coordinator, ln net.Listener) *Server {
	return NewCoordServerWith(co, ln, ServerOptions{})
}

// NewCoordServerWith serves a Coordinator with explicit options.
func NewCoordServerWith(co Coordinator, ln net.Listener, opts ServerOptions) *Server {
	jsonOnly := opts.JSONOnly || os.Getenv("IX_WIRE_SERVER_PROTO") == ProtoJSON
	s := &Server{co: co, ln: ln, jsonOnly: jsonOnly,
		conns: make(map[net.Conn]bool), done: make(chan struct{})}
	var reg *obs.Registry
	if ms, ok := co.(MetricsSource); ok {
		reg = ms.MetricsRegistry()
	}
	s.sm = newServerMetrics(reg)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address (for clients to dial).
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// outFrame is one queued write. switchBin tells the writer to swap to
// the binary encoder after this message goes out — the hello reply is
// the last JSON line a negotiated connection ever sends.
type outFrame struct {
	msg       wireMsg
	switchBin bool
}

// connState is the per-connection subscription table. Wire subscriptions
// to the same action share one coordinator subscription and one
// forwarder goroutine; multi tracks whether the negotiated codec may
// batch the shared ids into a single multi-id inform frame.
type connState struct {
	multi bool

	mu      sync.Mutex
	nextSub uint64
	byID    map[uint64]*connActSub
	byAct   map[string]*connActSub
	fwd     sync.WaitGroup
}

// connActSub is one shared stream: the coordinator subscription for one
// action, fanned out to every wire subscription id on it.
type connActSub struct {
	key    string
	ids    []uint64
	cancel func()
	known  bool // an inform has arrived; last is meaningful
	last   bool
}

func newConnState() *connState {
	return &connState{byID: make(map[uint64]*connActSub), byAct: make(map[string]*connActSub)}
}

// serveConn handles one client connection.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	out := make(chan outFrame, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := bufio.NewWriter(&countingWriter{w: conn, c: s.sm.bytesOut})
		var enc frameEncoder = newJSONEncoder(w)
		broken := false
		for f := range out {
			if broken {
				continue // drain so senders never block on a dead writer
			}
			if err := enc.encode(&f.msg); err != nil {
				broken = true
				continue
			}
			s.sm.framesOut.Inc()
			if f.switchBin {
				enc = newBinEncoder(w)
			}
		}
	}()

	cs := newConnState()
	var handlers sync.WaitGroup
	defer func() {
		handlers.Wait()
		cs.mu.Lock()
		cancels := make(map[*connActSub]func())
		for _, as := range cs.byID {
			if as.cancel != nil {
				cancels[as] = as.cancel
			}
		}
		cs.byID = map[uint64]*connActSub{}
		cs.byAct = map[string]*connActSub{}
		cs.mu.Unlock()
		for _, cancel := range cancels {
			cancel()
		}
		// Forwarders must be done before out closes: one could be mid-send.
		cs.fwd.Wait()
		close(out)
		<-writerDone
	}()

	send := func(msg wireMsg) {
		select {
		case out <- outFrame{msg: msg}:
		case <-s.done:
		}
	}

	br := bufio.NewReader(&countingReader{r: conn, c: s.sm.bytesIn})
	var dec frameDecoder // nil while the connection still speaks JSON lines
	first := true
	for {
		var req wireMsg
		var err error
		if dec != nil {
			err = dec.decode(&req)
		} else {
			// Line-based, not a streaming json.Decoder: the reader must not
			// buffer past the message terminator, or the switch to binary
			// after a hello would lose the bytes the decoder read ahead.
			err = readJSONLine(br, &req)
		}
		if err != nil {
			return // connection closed or garbage
		}
		s.sm.framesIn.Inc()
		if req.Op == opHello && !s.jsonOnly {
			// Negotiation: only meaningful as the very first frame; a v2
			// proposal switches both directions, anything else pins JSON.
			// With jsonOnly the op falls through to the handler and earns
			// the same "unknown op" error a pre-v2 server would send.
			resp := wireMsg{ID: req.ID, Op: opReply, OK: true, Proto: ProtoJSON}
			if first && req.Proto == ProtoBinary {
				resp.Proto = ProtoBinary
				select {
				case out <- outFrame{msg: resp, switchBin: true}:
				case <-s.done:
					return
				}
				dec = newBinDecoder(br)
				cs.multi = true
			} else {
				send(resp)
			}
			first = false
			continue
		}
		first = false
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			var start time.Time
			if s.sm.enabled {
				start = time.Now() // wallclock-ok: op-latency metric, not a protocol decision
			}
			resp, skip := s.handle(req, cs, send)
			if s.sm.enabled {
				s.sm.opHist(req.Op).Since(start)
			}
			if !skip {
				send(resp)
			}
		}()
	}
}

// handle processes one request. It returns the reply and whether it was
// already sent (subscription replies must precede the first inform, so
// that op sends its own reply before starting the forwarder).
func (s *Server) handle(req wireMsg, cs *connState, send func(wireMsg)) (wireMsg, bool) {
	resp := wireMsg{ID: req.ID, Op: opReply}
	fail := func(err error) (wireMsg, bool) {
		resp.OK = false
		resp.Err = err.Error()
		return resp, false
	}
	parseAction := func() (expr.Action, error) {
		return expr.ParseActionString(req.Action)
	}
	switch req.Op {
	case opAsk:
		a, err := parseAction()
		if err != nil {
			return fail(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		t, err := s.co.Ask(ctx, a)
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		resp.Ticket = t
	case opConfirm:
		// Bounded like every other op: a coordinator stuck waiting on a
		// sync-replication ack during a partition must not wedge the
		// handler goroutine (and the client) forever.
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		if err := s.co.Confirm(ctx, req.Ticket); err != nil {
			return fail(err)
		}
		resp.OK = true
	case opAbort:
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		if err := s.co.Abort(ctx, req.Ticket); err != nil {
			return fail(err)
		}
		resp.OK = true
	case opRequest:
		a, err := parseAction()
		if err != nil {
			return fail(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		if err := s.co.Request(ctx, a); err != nil {
			return fail(err)
		}
		resp.OK = true
	case opRequestMany:
		// One frame carries a whole pipelined burst. Slots that fail to
		// parse are answered in place; the rest go to the coordinator in
		// one batched call when it supports that (group commit end to end),
		// or back to back otherwise.
		errs := make([]string, len(req.Acts))
		actions := make([]expr.Action, 0, len(req.Acts))
		slots := make([]int, 0, len(req.Acts))
		for i, s := range req.Acts {
			a, err := expr.ParseActionString(s)
			if err != nil {
				errs[i] = err.Error()
				continue
			}
			actions = append(actions, a)
			slots = append(slots, i)
		}
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		if br, ok := s.co.(BatchRequester); ok {
			for j, err := range br.RequestMany(ctx, actions) {
				if err != nil {
					errs[slots[j]] = err.Error()
				}
			}
		} else {
			for j, a := range actions {
				if err := s.co.Request(ctx, a); err != nil {
					errs[slots[j]] = err.Error()
				}
			}
		}
		resp.OK = true
		resp.Errs = errs
	case opTry:
		a, err := parseAction()
		if err != nil {
			return fail(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		perm, err := s.co.Try(ctx, a)
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		resp.Perm = perm
	case opFinal:
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		fin, err := s.co.Final(ctx)
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		resp.Final = fin
	case opSubscribe:
		a, err := parseAction()
		if err != nil {
			return fail(err)
		}
		key := a.String()
		// Fast path: another wire subscription on this connection already
		// streams this action — join it instead of opening a second
		// coordinator subscription and forwarder goroutine.
		cs.mu.Lock()
		if as := cs.byAct[key]; as != nil {
			cs.nextSub++
			id := cs.nextSub
			as.ids = append(as.ids, id)
			cs.byID[id] = as
			resp.OK = true
			resp.Sub = id
			send(resp)
			if as.known {
				// The joiner still gets its initial status inform — from
				// the shared stream's cache, not a coordinator round trip.
				send(wireMsg{Op: opInform, Sub: id, Action: as.key, Perm: as.last})
			}
			cs.mu.Unlock()
			return resp, true
		}
		cs.mu.Unlock()
		ch, cancel, err := s.co.Subscribe(a)
		if err != nil {
			return fail(err)
		}
		cs.mu.Lock()
		as := &connActSub{key: key, cancel: cancel}
		cs.nextSub++
		id := cs.nextSub
		as.ids = []uint64{id}
		cs.byID[id] = as
		if cs.byAct[key] == nil {
			// A concurrent subscribe to the same action may have won the
			// race; the loser keeps its own stream but future joiners
			// share whichever entry the table holds.
			cs.byAct[key] = as
		}
		// The reply must reach the client before the first inform so the
		// client knows the subscription id; send it here, then forward.
		resp.OK = true
		resp.Sub = id
		send(resp)
		cs.mu.Unlock()
		cs.fwd.Add(1)
		go s.forwardInforms(cs, as, ch, send)
		return resp, true
	case opUnsubscribe:
		cs.mu.Lock()
		as, ok := cs.byID[req.Sub]
		var cancel func()
		if ok {
			delete(cs.byID, req.Sub)
			for i, sid := range as.ids {
				if sid == req.Sub {
					as.ids = append(as.ids[:i], as.ids[i+1:]...)
					break
				}
			}
			if len(as.ids) == 0 {
				if cs.byAct[as.key] == as {
					delete(cs.byAct, as.key)
				}
				cancel = as.cancel
			}
		}
		cs.mu.Unlock()
		if !ok {
			return fail(errors.New("manager: unknown subscription"))
		}
		if cancel != nil {
			cancel() // last subscriber left: tear down the shared stream
		}
		resp.OK = true
	case opReplicate:
		rt, ok := s.co.(ReplicaTarget)
		if !ok {
			return fail(errors.New("manager: coordinator does not accept replication"))
		}
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		var st ReplStatus
		var err error
		if req.Snap != nil {
			var snap ReplSnapshot
			if snap, err = decodeReplSnapshot(req); err == nil {
				st, err = rt.InstallReplSnapshot(ctx, snap)
			}
		} else {
			var frame ReplFrame
			if frame, err = decodeReplFrame(req); err == nil {
				st, err = rt.ApplyReplicated(ctx, frame)
			}
		}
		// The ack always reports the replica's identity, so a deposed
		// sender learns the epoch that fenced it and a gapped stream
		// learns the follower's position.
		resp.Op = opReplicateAck
		resp.Role, resp.Epoch, resp.Seq = st.Role, st.Epoch, st.Steps
		if err != nil {
			resp.Err = err.Error()
			return resp, false
		}
		resp.OK = true
	case opPromote:
		rt, ok := s.co.(ReplicaTarget)
		if !ok {
			return fail(errors.New("manager: coordinator does not accept promotion"))
		}
		epoch, err := rt.Promote(context.Background())
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		resp.Epoch = epoch
	case opRole:
		rt, ok := s.co.(ReplicaTarget)
		if !ok {
			return fail(errors.New("manager: coordinator has no replication role"))
		}
		st, err := rt.ReplStatus(context.Background())
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		resp.Role, resp.Epoch, resp.Seq = st.Role, st.Epoch, st.Steps
	case opMigrate:
		el, ok := s.co.(Elastic)
		if !ok {
			return fail(errors.New("manager: coordinator is not elastic"))
		}
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		st, err := el.AttachReplica(ctx, req.Addr)
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		resp.Role, resp.Epoch, resp.Seq = st.Role, st.Epoch, st.Steps
	case opRetire:
		el, ok := s.co.(Elastic)
		if !ok {
			return fail(errors.New("manager: coordinator is not elastic"))
		}
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		if err := el.DetachReplica(ctx, req.Addr); err != nil {
			return fail(err)
		}
		resp.OK = true
	case opDrain:
		el, ok := s.co.(Elastic)
		if !ok {
			return fail(errors.New("manager: coordinator is not elastic"))
		}
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		if err := el.Drain(ctx); err != nil {
			return fail(err)
		}
		resp.OK = true
	case opResume:
		el, ok := s.co.(Elastic)
		if !ok {
			return fail(errors.New("manager: coordinator is not elastic"))
		}
		if err := el.Resume(context.Background()); err != nil {
			return fail(err)
		}
		resp.OK = true
	case opTopology:
		el, ok := s.co.(Elastic)
		if !ok {
			return fail(errors.New("manager: coordinator is not elastic"))
		}
		ti, err := el.Topology(context.Background())
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		resp.Role, resp.Epoch, resp.Seq = ti.Role, ti.Epoch, ti.Steps
		resp.Addrs, resp.Draining = ti.Replicas, ti.Draining
	case opStats:
		sp, ok := s.co.(StatsProvider)
		if !ok {
			return fail(errors.New("manager: coordinator reports no stats"))
		}
		ctx, cancel := context.WithTimeout(context.Background(), serverAskTimeout)
		defer cancel()
		snap, err := sp.StatsSnapshot(ctx)
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		resp.Stats = &snap
	default:
		return fail(fmt.Errorf("manager: unknown op %q", req.Op))
	}
	return resp, false
}

// forwardInforms fans one shared coordinator subscription out to every
// wire subscription id on it. A binary connection gets one multi-id
// frame per status flip; a JSON connection gets one frame per id, which
// is what pre-v2 clients expect.
func (s *Server) forwardInforms(cs *connState, as *connActSub, ch <-chan Inform, send func(wireMsg)) {
	defer cs.fwd.Done()
	var ids []uint64 // reused snapshot of as.ids, taken under the lock
	for inf := range ch {
		cs.mu.Lock()
		as.known, as.last = true, inf.Permissible
		ids = append(ids[:0], as.ids...)
		cs.mu.Unlock()
		switch {
		case len(ids) == 0:
			// Subscribers left between the flip and this delivery.
		case cs.multi && len(ids) > 1:
			send(wireMsg{Op: opInform, Subs: append([]uint64(nil), ids...),
				Action: as.key, Perm: inf.Permissible})
		default:
			for _, id := range ids {
				send(wireMsg{Op: opInform, Sub: id, Action: as.key, Perm: inf.Permissible})
			}
		}
	}
	// The coordinator closed the stream (shutdown or cancel): drop the
	// table entries so late unsubscribes fail cleanly instead of
	// cancelling a dead stream.
	cs.mu.Lock()
	if cs.byAct[as.key] == as {
		delete(cs.byAct, as.key)
	}
	for _, id := range as.ids {
		if cs.byID[id] == as {
			delete(cs.byID, id)
		}
	}
	as.ids = as.ids[:0]
	cs.mu.Unlock()
}

// Close stops accepting, closes all connections and waits for handlers.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is an interaction client speaking the wire protocol; it mirrors
// the Manager API over a TCP connection. Safe for concurrent use.
type Client struct {
	conn  net.Conn
	enc   frameEncoder
	proto string
	wmu   sync.Mutex // serializes writes

	// actCache memoizes parsed inform actions. Only the read loop touches
	// it, so it needs no lock; the bound guards against a server with an
	// unbounded action vocabulary.
	actCache map[string]expr.Action

	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]chan wireMsg
	subs    map[uint64]chan Inform
	// pending buffers informs that arrive between the server's subscribe
	// reply and the local registration of the subscription channel.
	pending map[uint64][]Inform
	closed  bool
	readErr error
}

// pendingInformCap bounds the per-subscription pending buffer. Once
// full it behaves as a ring: the oldest inform is evicted, matching the
// "latest status wins" drop policy of the registered path.
const pendingInformCap = 16

// ClientSubscription is a remote subscription delivering informs.
type ClientSubscription struct {
	C  <-chan Inform
	id uint64
}

// DialOptions tunes a client connection.
type DialOptions struct {
	// Protocol selects the wire encoding. ProtoBinary (the default)
	// proposes the v2 binary framing at connect time and falls back to
	// JSON lines when the server predates it; ProtoJSON skips the
	// negotiation entirely and speaks JSON lines like a pre-v2 client.
	// The IX_WIRE_PROTO=json environment variable forces JSON for every
	// default-protocol dial in the process (interop matrices, debugging
	// captures with text tools).
	Protocol string
	// Dialer replaces the TCP dial with a custom transport — the
	// deterministic simulator (internal/sim) injects its in-memory
	// network here. Nil means net.Dial("tcp", addr).
	Dialer func(addr string) (net.Conn, error)
}

// Dial connects to a manager server, negotiating the binary protocol.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DialOptions{})
}

// DialWith connects with explicit options.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	proto := opts.Protocol
	if proto == "" {
		proto = ProtoBinary
		if os.Getenv("IX_WIRE_PROTO") == ProtoJSON {
			proto = ProtoJSON
		}
	}
	dial := opts.Dialer
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("manager: dial: %w", err)
	}
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	c := &Client{
		conn:     conn,
		proto:    ProtoJSON,
		actCache: make(map[string]expr.Action),
		waiting:  make(map[uint64]chan wireMsg),
		subs:     make(map[uint64]chan Inform),
		pending:  make(map[uint64][]Inform),
	}
	c.nextID = 1 // id 1 is the hello's, whether or not one is sent
	if proto == ProtoBinary {
		if err := c.negotiate(conn, br, bw); err != nil {
			conn.Close()
			return nil, err
		}
	}
	var dec frameDecoder
	if c.proto == ProtoBinary {
		c.enc = newBinEncoder(bw)
		dec = newBinDecoder(br)
	} else {
		c.enc = newJSONEncoder(bw)
		// The JSON phase never switches codecs after this point, so the
		// streaming decoder's read-ahead is harmless.
		dec = newJSONDecoder(br)
	}
	go c.readLoop(dec)
	return c, nil
}

// negotiate sends the hello as a JSON line and interprets the reply. A
// v2 server acknowledges with Proto=bin2 and both directions switch; a
// pre-v2 server answers "unknown op" (or anything else), and the client
// simply stays on JSON lines. Transport errors fail the dial.
func (c *Client) negotiate(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) error {
	deadline := time.Now().Add(10 * time.Second) // wallclock-ok: socket I/O backstop on the negotiate handshake
	_ = conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	hello, err := json.Marshal(wireMsg{ID: 1, Op: opHello, Proto: ProtoBinary})
	if err != nil {
		return err
	}
	hello = append(hello, '\n')
	if _, err := bw.Write(hello); err != nil {
		return fmt.Errorf("manager: negotiate: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("manager: negotiate: %w", err)
	}
	var resp wireMsg
	if err := readJSONLine(br, &resp); err != nil {
		return fmt.Errorf("manager: negotiate: %w", err)
	}
	if resp.OK && resp.Proto == ProtoBinary {
		c.proto = ProtoBinary
	}
	return nil
}

// Proto reports the negotiated wire encoding (ProtoBinary or ProtoJSON).
func (c *Client) Proto() string { return c.proto }

func (c *Client) readLoop(dec frameDecoder) {
	var msg wireMsg
	for {
		if err := dec.decode(&msg); err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.waiting {
				delete(c.waiting, id)
				close(ch)
			}
			for id, ch := range c.subs {
				delete(c.subs, id)
				close(ch)
			}
			c.mu.Unlock()
			return
		}
		switch msg.Op {
		case opInform:
			a, err := c.parseInformAction(msg.Action)
			if err != nil {
				continue
			}
			inf := Inform{Action: a, Permissible: msg.Perm}
			if len(msg.Subs) > 0 {
				for _, id := range msg.Subs {
					c.deliverInform(id, inf)
				}
			} else {
				c.deliverInform(msg.Sub, inf)
			}
		default:
			c.mu.Lock()
			ch := c.waiting[msg.ID]
			delete(c.waiting, msg.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- msg
			}
		}
	}
}

// parseInformAction parses an inform's action through the bounded memo
// cache, so steady-state inform delivery re-parses nothing.
func (c *Client) parseInformAction(s string) (expr.Action, error) {
	if a, ok := c.actCache[s]; ok {
		return a, nil
	}
	a, err := expr.ParseActionString(s)
	if err == nil && len(c.actCache) < 1024 {
		c.actCache[s] = a
	}
	return a, err
}

// deliverInform routes one inform to its subscription, buffering it when
// the subscription is not registered yet. Both paths drop the oldest
// inform when full: the latest status wins.
func (c *Client) deliverInform(id uint64, inf Inform) {
	c.mu.Lock()
	ch := c.subs[id]
	if ch == nil {
		// Subscription not registered yet (the reply is still in flight
		// to the Subscribe caller): buffer as a bounded ring.
		p := c.pending[id]
		if len(p) >= pendingInformCap {
			copy(p, p[1:])
			p[len(p)-1] = inf
		} else {
			c.pending[id] = append(p, inf)
		}
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	select {
	case ch <- inf:
	default:
		// Slow subscriber: evict the oldest buffered inform and retry
		// once. If the subscriber raced us to the slot, dropping inf is
		// the same policy one step later.
		select {
		case <-ch:
		default:
		}
		select {
		case ch <- inf:
		default:
		}
	}
}

// call sends one request and waits for its reply.
func (c *Client) call(ctx context.Context, req wireMsg) (wireMsg, error) {
	ch := make(chan wireMsg, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wireMsg{}, ErrClosed
	}
	if c.readErr != nil {
		// The reader is gone, so no reply can ever arrive — and writing
		// into the dead socket may even "succeed" into the kernel buffer,
		// which would leave the caller waiting forever. The request never
		// reaches the server, so this counts as a send failure (safe to
		// retry on a fresh connection).
		err := c.readErr
		c.mu.Unlock()
		return wireMsg{}, fmt.Errorf("%w: %v", ErrSendFailed, err)
	}
	c.nextID++
	req.ID = c.nextID
	c.waiting[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := c.enc.encode(&req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.waiting, req.ID)
		c.mu.Unlock()
		return wireMsg{}, fmt.Errorf("%w: %v", ErrSendFailed, err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return wireMsg{}, fmt.Errorf("%w: %v", ErrConnLost, io.ErrUnexpectedEOF)
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.waiting, req.ID)
		c.mu.Unlock()
		return wireMsg{}, ctx.Err()
	}
}

func (c *Client) callOK(ctx context.Context, req wireMsg) (wireMsg, error) {
	resp, err := c.call(ctx, req)
	if err != nil {
		return resp, err
	}
	if !resp.OK {
		if resp.Err == "" {
			return resp, errors.New("manager: request failed")
		}
		return resp, wireError(resp.Err)
	}
	return resp, nil
}

// wireError reconstructs the sentinel identity of a server-side error
// from its transported message, so errors.Is works across the wire — the
// cluster gateway relies on telling a denial (roll back and report) from
// an infrastructure failure (reconnect).
func wireError(msg string) error {
	for _, sentinel := range []error{ErrDenied, ErrUnknownTicket, ErrClosed,
		ErrNotPrimary, ErrStaleEpoch, ErrReplGap, ErrUncertain, ErrDraining} {
		s := sentinel.Error()
		if msg == s {
			return sentinel
		}
		if strings.HasPrefix(msg, s+":") {
			return fmt.Errorf("%w%s", sentinel, msg[len(s):])
		}
	}
	return errors.New(msg)
}

// Ask runs step 1/2 of the coordination protocol remotely.
func (c *Client) Ask(ctx context.Context, a expr.Action) (Ticket, error) {
	resp, err := c.callOK(ctx, wireMsg{Op: opAsk, Action: a.String()})
	if err != nil {
		return 0, err
	}
	return resp.Ticket, nil
}

// Confirm runs step 4 remotely.
func (c *Client) Confirm(ctx context.Context, t Ticket) error {
	_, err := c.callOK(ctx, wireMsg{Op: opConfirm, Ticket: t})
	return err
}

// Abort releases a granted ask remotely.
func (c *Client) Abort(ctx context.Context, t Ticket) error {
	_, err := c.callOK(ctx, wireMsg{Op: opAbort, Ticket: t})
	return err
}

// Request runs the atomic ask+confirm remotely.
func (c *Client) Request(ctx context.Context, a expr.Action) error {
	_, err := c.callOK(ctx, wireMsg{Op: opRequest, Action: a.String()})
	return err
}

// RequestMany runs a burst of atomic requests remotely in one framed
// multi-op message — one round trip for the whole burst instead of one
// per action. The returned slice has one error per action (nil =
// confirmed). A transport failure fails every action with the same error;
// like Request, the burst is not idempotent, so a lost connection leaves
// the outcome of in-flight actions unknown.
func (c *Client) RequestMany(ctx context.Context, actions []expr.Action) []error {
	errs := make([]error, len(actions))
	if len(actions) == 0 {
		return errs
	}
	acts := make([]string, len(actions))
	for i, a := range actions {
		acts[i] = a.String()
	}
	resp, err := c.callOK(ctx, wireMsg{Op: opRequestMany, Acts: acts})
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	for i := range errs {
		if i < len(resp.Errs) && resp.Errs[i] != "" {
			errs[i] = wireError(resp.Errs[i])
		}
	}
	return errs
}

// Try probes an action's status remotely.
func (c *Client) Try(ctx context.Context, a expr.Action) (bool, error) {
	resp, err := c.callOK(ctx, wireMsg{Op: opTry, Action: a.String()})
	if err != nil {
		return false, err
	}
	return resp.Perm, nil
}

// Final reports remotely whether the confirmed word is complete.
func (c *Client) Final(ctx context.Context) (bool, error) {
	resp, err := c.callOK(ctx, wireMsg{Op: opFinal})
	if err != nil {
		return false, err
	}
	return resp.Final, nil
}

// Replicate ships one replication frame to a follower and returns its
// ack. The status is meaningful even on error: ErrStaleEpoch carries the
// epoch that fenced the sender, ErrReplGap the follower's position.
func (c *Client) Replicate(ctx context.Context, f ReplFrame) (ReplStatus, error) {
	return c.replicate(ctx, encodeReplFrame(f))
}

// ReplicateSnapshot ships a full state sync to a follower.
func (c *Client) ReplicateSnapshot(ctx context.Context, s ReplSnapshot) (ReplStatus, error) {
	return c.replicate(ctx, encodeReplSnapshot(s))
}

func (c *Client) replicate(ctx context.Context, msg wireMsg) (ReplStatus, error) {
	resp, err := c.call(ctx, msg)
	st := ReplStatus{Role: resp.Role, Epoch: resp.Epoch, Steps: resp.Seq}
	if err != nil {
		return st, err
	}
	if !resp.OK {
		if resp.Err == "" {
			return st, errors.New("manager: replicate failed")
		}
		return st, wireError(resp.Err)
	}
	return st, nil
}

// Promote asks the remote manager to become the primary of a new epoch
// (a no-op returning the current epoch if it already is one).
func (c *Client) Promote(ctx context.Context) (uint64, error) {
	resp, err := c.callOK(ctx, wireMsg{Op: opPromote})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Role reports the remote manager's replication identity.
func (c *Client) Role(ctx context.Context) (ReplStatus, error) {
	resp, err := c.callOK(ctx, wireMsg{Op: opRole})
	if err != nil {
		return ReplStatus{}, err
	}
	return ReplStatus{Role: resp.Role, Epoch: resp.Epoch, Steps: resp.Seq}, nil
}

// Migrate attaches the follower server at addr to the remote primary's
// replication fan-out and ships it a full snapshot resync; the returned
// status is the follower's acked position (the migration's catch-up
// probe).
func (c *Client) Migrate(ctx context.Context, addr string) (ReplStatus, error) {
	resp, err := c.callOK(ctx, wireMsg{Op: opMigrate, Addr: addr})
	if err != nil {
		return ReplStatus{}, err
	}
	return ReplStatus{Role: resp.Role, Epoch: resp.Epoch, Steps: resp.Seq}, nil
}

// Retire detaches the remote manager's follower stream to addr.
func (c *Client) Retire(ctx context.Context, addr string) error {
	_, err := c.callOK(ctx, wireMsg{Op: opRetire, Addr: addr})
	return err
}

// Drain puts the remote manager into drain mode and returns once it is
// quiescent: new asks there fail with ErrDraining, in-flight tickets and
// queued group commits have settled.
func (c *Client) Drain(ctx context.Context) error {
	_, err := c.callOK(ctx, wireMsg{Op: opDrain})
	return err
}

// Resume takes the remote manager out of drain mode.
func (c *Client) Resume(ctx context.Context) error {
	_, err := c.callOK(ctx, wireMsg{Op: opResume})
	return err
}

// Topology reports the remote manager's replication identity, follower
// streams and drain state.
func (c *Client) Topology(ctx context.Context) (TopologyInfo, error) {
	resp, err := c.callOK(ctx, wireMsg{Op: opTopology})
	if err != nil {
		return TopologyInfo{}, err
	}
	return TopologyInfo{Role: resp.Role, Epoch: resp.Epoch, Steps: resp.Seq,
		Draining: resp.Draining, Replicas: resp.Addrs}, nil
}

// Stats fetches the remote manager's observability readout: role and
// progress, protocol counters, the memo-cache counters (previously
// process-local only) and, when the server runs with a metrics registry,
// a full metric snapshot including latency histograms.
func (c *Client) Stats(ctx context.Context) (StatsSnapshot, error) {
	resp, err := c.callOK(ctx, wireMsg{Op: opStats})
	if err != nil {
		return StatsSnapshot{}, err
	}
	if resp.Stats == nil {
		return StatsSnapshot{}, errors.New("manager: stats reply carried no payload")
	}
	return *resp.Stats, nil
}

// Subscribe opens a remote subscription for the action.
func (c *Client) Subscribe(ctx context.Context, a expr.Action) (*ClientSubscription, error) {
	ch := make(chan Inform, 16)
	resp, err := c.callOK(ctx, wireMsg{Op: opSubscribe, Action: a.String()})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.readErr != nil {
		// The reader died between the reply and this registration; it will
		// never see (and close) this channel, so close it here.
		c.mu.Unlock()
		close(ch)
		return &ClientSubscription{C: ch, id: resp.Sub}, nil
	}
	c.subs[resp.Sub] = ch
	// Deliver the buffered informs under the lock: the sends are
	// non-blocking and holding the lock excludes the reader closing the
	// channel concurrently on connection loss.
	for _, inf := range c.pending[resp.Sub] {
		select {
		case ch <- inf:
		default:
		}
	}
	delete(c.pending, resp.Sub)
	c.mu.Unlock()
	return &ClientSubscription{C: ch, id: resp.Sub}, nil
}

// Unsubscribe closes a remote subscription.
func (c *Client) Unsubscribe(ctx context.Context, s *ClientSubscription) error {
	_, err := c.callOK(ctx, wireMsg{Op: opUnsubscribe, Sub: s.id})
	c.mu.Lock()
	if ch, ok := c.subs[s.id]; ok {
		delete(c.subs, s.id)
		close(ch)
	}
	c.mu.Unlock()
	return err
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
