package manager

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/parse"
)

// startServerWith spins up a manager server with explicit wire options.
func startServerWith(t *testing.T, src string, opts ServerOptions) (*Server, *Manager) {
	t.Helper()
	m := MustNew(parse.MustParse(src), Options{ReservationTimeout: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewCoordServerWith(CoordinatorFor(m), ln, opts)
	t.Cleanup(func() {
		s.Close()
		m.Close()
	})
	return s, m
}

// envForcedJSON reports whether the interop environment variables pin the
// whole process to JSON — negotiation-outcome assertions are meaningless
// then (the CI matrix runs the suite under exactly these variables).
func envForcedJSON() bool {
	return os.Getenv("IX_WIRE_PROTO") == ProtoJSON || os.Getenv("IX_WIRE_SERVER_PROTO") == ProtoJSON
}

// TestProtocolInteropMatrix runs the full protocol surface through every
// client × server codec pairing: v2 both ends, a JSON (pre-v2) client
// against a v2 server, a v2 client against a JSON-only (pre-v2) server,
// and JSON both ends. Every cell must behave identically — including the
// sentinel-error identities the cluster layer depends on.
func TestProtocolInteropMatrix(t *testing.T) {
	cells := []struct {
		name   string
		dial   DialOptions
		server ServerOptions
		proto  string // negotiated protocol, asserted unless env-forced
	}{
		{"v2-client/v2-server", DialOptions{}, ServerOptions{}, ProtoBinary},
		{"json-client/v2-server", DialOptions{Protocol: ProtoJSON}, ServerOptions{}, ProtoJSON},
		{"v2-client/json-server", DialOptions{}, ServerOptions{JSONOnly: true}, ProtoJSON},
		{"json-client/json-server", DialOptions{Protocol: ProtoJSON}, ServerOptions{JSONOnly: true}, ProtoJSON},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			s, _ := startServerWith(t, "(a - b)*", cell.server)
			c, err := DialWith(s.Addr(), cell.dial)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if !envForcedJSON() && c.Proto() != cell.proto {
				t.Fatalf("negotiated %q, want %q", c.Proto(), cell.proto)
			}

			// The Fig 10 cycle: probe, reserve, confirm, denial.
			if ok, err := c.Try(bg, act("a")); err != nil || !ok {
				t.Fatalf("try a: %v %v", ok, err)
			}
			tk, err := c.Ask(bg, act("a"))
			if err != nil {
				t.Fatalf("ask: %v", err)
			}
			if err := c.Confirm(bg, tk); err != nil {
				t.Fatalf("confirm: %v", err)
			}
			if _, err := c.Ask(bg, act("a")); !errors.Is(err, ErrDenied) {
				t.Fatalf("second ask: %v, want ErrDenied identity", err)
			}
			// Sentinel identity across the wire.
			if err := c.Confirm(bg, Ticket(9999)); !errors.Is(err, ErrUnknownTicket) {
				t.Fatalf("confirm of unknown ticket: %v, want ErrUnknownTicket identity", err)
			}
			if err := c.Request(bg, act("b")); err != nil {
				t.Fatalf("request b: %v", err)
			}
			if fin, err := c.Final(bg); err != nil || !fin {
				t.Fatalf("final: %v %v", fin, err)
			}

			// One pipelined burst with a per-slot failure in the middle.
			errs := c.RequestMany(bg, []expr.Action{act("a"), act("a"), act("b")})
			if errs[0] != nil || errs[2] != nil {
				t.Fatalf("burst: %v", errs)
			}
			if !errors.Is(errs[1], ErrDenied) {
				t.Fatalf("burst slot 1: %v, want ErrDenied identity", errs[1])
			}

			// Subscriptions: initial status, then a flip each way.
			sub, err := c.Subscribe(bg, act("a"))
			if err != nil {
				t.Fatal(err)
			}
			wait := func(want bool) {
				t.Helper()
				for {
					select {
					case inf := <-sub.C:
						if inf.Permissible == want {
							return
						}
					case <-time.After(2 * time.Second):
						t.Fatalf("inform %v timed out", want)
					}
				}
			}
			wait(true) // after "ab·ab", a is next
			if err := c.Request(bg, act("a")); err != nil {
				t.Fatal(err)
			}
			wait(false)
			if err := c.Request(bg, act("b")); err != nil {
				t.Fatal(err)
			}
			wait(true)
			if err := c.Unsubscribe(bg, sub); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNegotiationFallbackKeepsSession: a v2 client that lands on a
// pre-v2 server must keep the very same connection usable — the hello
// round trip degrades the codec, never the session.
func TestNegotiationFallbackKeepsSession(t *testing.T) {
	if envForcedJSON() {
		t.Skip("protocol pinned by environment")
	}
	s, _ := startServerWith(t, "(a)*", ServerOptions{JSONOnly: true})
	c, err := Dial(s.Addr()) // proposes bin2, must fall back
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Proto() != ProtoJSON {
		t.Fatalf("negotiated %q against a JSON-only server", c.Proto())
	}
	for i := 0; i < 3; i++ {
		if err := c.Request(bg, act("a")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMultiplexedSubscriptions: several wire subscriptions to one action
// on one connection must share a single coordinator subscription, joiners
// must get their initial status from the shared stream's cache, and a
// status flip must reach every subscription (on binary connections as one
// multi-id frame, fanned back out by the client).
func TestMultiplexedSubscriptions(t *testing.T) {
	s, m := startServerWith(t, "(a - b)*", ServerOptions{})
	c := dial(t, s)

	const n = 3
	subs := make([]*ClientSubscription, n)
	for i := range subs {
		sub, err := c.Subscribe(bg, act("a"))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	waitAll := func(want bool) {
		t.Helper()
		for i, sub := range subs {
		recv:
			for {
				select {
				case inf := <-sub.C:
					if inf.Permissible == want {
						break recv
					}
				case <-time.After(2 * time.Second):
					t.Fatalf("sub %d: inform %v timed out", i, want)
				}
			}
		}
	}
	waitAll(true) // every subscription sees its initial status

	// The server multiplexes: one coordinator subscription for all three.
	m.mu.Lock()
	groups := len(m.subs)
	m.mu.Unlock()
	if groups != 1 {
		t.Fatalf("3 wire subscriptions opened %d coordinator subscriptions, want 1", groups)
	}

	if err := c.Request(bg, act("a")); err != nil {
		t.Fatal(err)
	}
	waitAll(false)
	if err := c.Request(bg, act("b")); err != nil {
		t.Fatal(err)
	}
	waitAll(true)

	// The last unsubscribe tears the shared stream down.
	for _, sub := range subs {
		if err := c.Unsubscribe(bg, sub); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		m.mu.Lock()
		groups = len(m.subs)
		m.mu.Unlock()
		if groups == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d coordinator subscriptions left after all unsubscribes", groups)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// hangingCoord wedges Confirm and Abort until the handler's context
// expires — a coordinator stuck on a partitioned sync-replication ack.
type hangingCoord struct{ Coordinator }

func (h hangingCoord) Confirm(ctx context.Context, tk Ticket) error {
	<-ctx.Done()
	return ctx.Err()
}

func (h hangingCoord) Abort(ctx context.Context, tk Ticket) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestHungCoordinatorBounded: confirm and abort handlers must bound their
// wait with serverAskTimeout like every other op. Before the fix they
// passed a bare context.Background(), so a wedged coordinator hung the
// handler goroutine — and the client — forever.
func TestHungCoordinatorBounded(t *testing.T) {
	saved := serverAskTimeout
	serverAskTimeout = 200 * time.Millisecond
	defer func() { serverAskTimeout = saved }()

	m := MustNew(parse.MustParse("(a)*"), Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewCoordServerWith(hangingCoord{CoordinatorFor(m)}, ln, ServerOptions{})
	t.Cleanup(func() {
		s.Close()
		m.Close()
	})
	c := dial(t, s)

	tk, err := c.Ask(bg, act("a"))
	if err != nil {
		t.Fatal(err)
	}
	for _, call := range []struct {
		name string
		do   func(context.Context) error
	}{
		{"confirm", func(ctx context.Context) error { return c.Confirm(ctx, tk) }},
		{"abort", func(ctx context.Context) error { return c.Abort(ctx, tk) }},
	} {
		// The client itself imposes no deadline: the bound must come from
		// the server's handler context.
		start := time.Now()
		err := call.do(bg)
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("%s against a wedged coordinator succeeded", call.name)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("%s took %v: the handler wait is unbounded", call.name, elapsed)
		}
	}
}

// TestPendingInformRing: informs racing the subscribe reply buffer into a
// bounded ring that evicts the OLDEST entry — the latest status must win.
// Before the fix the buffer dropped the newest inform once full, so a
// subscriber could come up believing a stale status.
func TestPendingInformRing(t *testing.T) {
	c := &Client{
		subs:    make(map[uint64]chan Inform),
		pending: make(map[uint64][]Inform),
	}
	const id = 7
	const total = pendingInformCap + 4
	for i := 0; i < total; i++ {
		c.deliverInform(id, Inform{Action: act(fmt.Sprintf("a%d", i)), Permissible: i%2 == 0})
	}
	p := c.pending[id]
	if len(p) != pendingInformCap {
		t.Fatalf("pending buffer holds %d informs, want %d", len(p), pendingInformCap)
	}
	for i, inf := range p {
		want := fmt.Sprintf("a%d", total-pendingInformCap+i)
		if got := inf.Action.String(); got != want {
			t.Fatalf("pending[%d] = %s, want %s (oldest must be evicted, order preserved)", i, got, want)
		}
	}
}

// TestRegisteredInformDropOldest: a slow subscriber's full channel must
// also lose the oldest inform, not the newest.
func TestRegisteredInformDropOldest(t *testing.T) {
	c := &Client{
		subs:    make(map[uint64]chan Inform),
		pending: make(map[uint64][]Inform),
	}
	ch := make(chan Inform, 2)
	c.subs[5] = ch
	for i := 0; i < 3; i++ {
		c.deliverInform(5, Inform{Action: act(fmt.Sprintf("a%d", i))})
	}
	for i, want := range []string{"a1", "a2"} {
		select {
		case inf := <-ch:
			if got := inf.Action.String(); got != want {
				t.Fatalf("slot %d: %s, want %s", i, got, want)
			}
		default:
			t.Fatalf("slot %d: channel empty", i)
		}
	}
}
